(* Unit tests for the wavefront-parallel checker: a hand-built
   diamond-DAG trace whose schedule shape is known exactly, agreement
   with BF on both trace encodings, deterministic minimum-stream-index
   failure reporting, and degenerate pool shapes (more jobs than
   tasks). *)

let module_name = "par"

(* The 2-variable complete contradiction: (1 v 2), (-1 v 2), (1 v -2),
   (-1 v -2), ids 1..4. *)
let diamond_formula () =
  let f = Sat.Cnf.create 2 in
  let add lits = ignore (Sat.Cnf.add_clause f lits) in
  add [| Sat.Lit.make 1 false; Sat.Lit.make 2 false |];
  add [| Sat.Lit.make 1 true; Sat.Lit.make 2 false |];
  add [| Sat.Lit.make 1 false; Sat.Lit.make 2 true |];
  add [| Sat.Lit.make 1 true; Sat.Lit.make 2 true |];
  f

(* Diamond proof: 5 = (2) and 6 = (-2) in wavefront one, 7 = the empty
   clause in wavefront two, plus 8 = (1), valid but never used — BF (and
   therefore par) must still build it. *)
let diamond_events =
  [
    Trace.Event.Header { nvars = 2; num_original = 4 };
    Trace.Event.Learned { id = 5; sources = [| 1; 2 |] };
    Trace.Event.Learned { id = 6; sources = [| 3; 4 |] };
    Trace.Event.Learned { id = 7; sources = [| 5; 6 |] };
    Trace.Event.Learned { id = 8; sources = [| 1; 3 |] };
    Trace.Event.Final_conflict 7;
  ]

let source_of events fmt =
  let w = Trace.Writer.create fmt in
  List.iter (Trace.Writer.emit w) events;
  Trace.Reader.From_string (Trace.Writer.contents w)

let get_ok name = function
  | Ok r -> r
  | Error d ->
    Alcotest.failf "%s: valid trace rejected: %s" name
      (Checker.Diagnostics.to_string d)

let test_diamond_schedule () =
  let f = diamond_formula () in
  List.iter
    (fun jobs ->
      let r =
        get_ok
          (Printf.sprintf "par j%d" jobs)
          (Checker.Par.check ~jobs f (source_of diamond_events Trace.Writer.Ascii))
      in
      let ck name = Printf.sprintf "j%d %s" jobs name in
      Alcotest.(check int) (ck "total learned") 4 r.Checker.Report.total_learned;
      Alcotest.(check int) (ck "built") 4 r.Checker.Report.clauses_built;
      Alcotest.(check int) (ck "steps") 4 r.Checker.Report.resolution_steps;
      Alcotest.(check (list int)) (ck "built ids") [ 5; 6; 7; 8 ]
        r.Checker.Report.learned_built_ids;
      (* 5, 6 and 8 resolve originals (level 1); 7 needs 5 and 6 (level 2) *)
      Alcotest.(check int) (ck "wavefronts") 2 r.Checker.Report.wavefronts;
      Alcotest.(check int) (ck "max width") 3 r.Checker.Report.max_wavefront_width;
      Alcotest.(check int) (ck "jobs") jobs r.Checker.Report.jobs)
    [ 1; 2; 4 ]

let test_matches_bf_both_encodings () =
  let f = diamond_formula () in
  List.iter
    (fun fmt ->
      let bf =
        get_ok "bf" (Checker.Bf.check f (source_of diamond_events fmt))
      in
      let pr =
        get_ok "par"
          (Checker.Par.check ~jobs:3 f (source_of diamond_events fmt))
      in
      Alcotest.(check int) "built" bf.Checker.Report.clauses_built
        pr.Checker.Report.clauses_built;
      Alcotest.(check int) "steps" bf.Checker.Report.resolution_steps
        pr.Checker.Report.resolution_steps;
      Alcotest.(check (list int)) "built ids"
        bf.Checker.Report.learned_built_ids
        pr.Checker.Report.learned_built_ids;
      Alcotest.(check (list int)) "core" bf.Checker.Report.core_original_ids
        pr.Checker.Report.core_original_ids)
    [ Trace.Writer.Ascii; Trace.Writer.Binary ]

(* More workers than tasks: every domain past the third idles; the
   wavefront barrier must still drain. *)
let test_more_jobs_than_tasks () =
  let f = diamond_formula () in
  let r =
    get_ok "par j8"
      (Checker.Par.check ~jobs:8 f (source_of diamond_events Trace.Writer.Ascii))
  in
  Alcotest.(check int) "built" 4 r.Checker.Report.clauses_built

let test_jobs_below_one_rejected () =
  let f = diamond_formula () in
  Alcotest.check_raises "jobs 0"
    (Invalid_argument "Par.check: jobs must be >= 1") (fun () ->
      ignore
        (Checker.Par.check ~jobs:0 f (source_of diamond_events Trace.Writer.Ascii)))

(* Two invalid chains: id 6 fails at stream index 1 but sits in wavefront
   two, id 7 fails at stream index 2 in wavefront one.  The parallel
   checker hits 7 first, then must override it with 6 — the failure
   sequential BF stops at — so the two checkers' diagnostics are
   structurally identical. *)
let failing_events =
  [
    Trace.Event.Header { nvars = 2; num_original = 4 };
    Trace.Event.Learned { id = 5; sources = [| 1; 2 |] };
    Trace.Event.Learned { id = 6; sources = [| 5; 2 |] };  (* (2) vs (-1 2): no clash *)
    Trace.Event.Learned { id = 7; sources = [| 1; 1 |] };  (* self: no clash *)
    Trace.Event.Final_conflict 6;
  ]

let test_min_stream_failure_matches_bf () =
  let f = diamond_formula () in
  let bf_err =
    match Checker.Bf.check f (source_of failing_events Trace.Writer.Ascii) with
    | Ok _ -> Alcotest.fail "bf accepted an invalid trace"
    | Error d -> d
  in
  (match bf_err with
   | Checker.Diagnostics.No_clash { c1_id = 5; c2_id = 2; _ } -> ()
   | d ->
     Alcotest.failf "bf failed on the wrong record: %s"
       (Checker.Diagnostics.to_string d));
  List.iter
    (fun jobs ->
      match
        Checker.Par.check ~jobs f (source_of failing_events Trace.Writer.Ascii)
      with
      | Ok _ -> Alcotest.failf "par j%d accepted an invalid trace" jobs
      | Error d ->
        if d <> bf_err then
          Alcotest.failf "par j%d diagnostic differs from bf: %s vs %s" jobs
            (Checker.Diagnostics.to_string d)
            (Checker.Diagnostics.to_string bf_err))
    [ 1; 2; 4 ]

(* A solver-produced trace, both encodings, several job counts: the full
   report statistics must match BF field for field. *)
let test_solver_trace_agreement () =
  let f = Gen.Php.unsat ~holes:4 in
  let result, _stats, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php 4 must be unsat");
  let src = Trace.Reader.From_string trace in
  let bf = get_ok "bf" (Checker.Bf.check f src) in
  (* window 1 degenerates to sequential BF order; tiny windows force many
     window boundaries; the default leaves small traces unwindowed *)
  List.iter
    (fun (jobs, window) ->
      let pr = get_ok "par" (Checker.Par.check ~jobs ?window f src) in
      Alcotest.(check int) "learned" bf.Checker.Report.total_learned
        pr.Checker.Report.total_learned;
      Alcotest.(check int) "built" bf.Checker.Report.clauses_built
        pr.Checker.Report.clauses_built;
      Alcotest.(check int) "steps" bf.Checker.Report.resolution_steps
        pr.Checker.Report.resolution_steps;
      Alcotest.(check (list int)) "built ids"
        bf.Checker.Report.learned_built_ids
        pr.Checker.Report.learned_built_ids)
    [
      (1, None); (2, None); (4, None);
      (1, Some 1); (2, Some 1);
      (2, Some 3); (4, Some 7);
    ]

let suite =
  [
    ( module_name,
      [
        Alcotest.test_case "diamond schedule" `Quick test_diamond_schedule;
        Alcotest.test_case "matches bf, both encodings" `Quick
          test_matches_bf_both_encodings;
        Alcotest.test_case "more jobs than tasks" `Quick
          test_more_jobs_than_tasks;
        Alcotest.test_case "jobs < 1 rejected" `Quick
          test_jobs_below_one_rejected;
        Alcotest.test_case "min-stream failure matches bf" `Quick
          test_min_stream_failure_matches_bf;
        Alcotest.test_case "solver trace agreement" `Quick
          test_solver_trace_agreement;
      ] );
  ]
