The telemetry layer, end to end.  Its central contract: recording may
add files and stderr noise, but never changes what the tool prints or
decides.

  $ R=../bin/rescheck.exe

Checked artifacts are byte-identical with the full telemetry surface
on and off, across three families and both trace encodings:

  $ for fam in equiv_tiny php_6 ring_small; do
  >   for fmt in ascii binary; do
  >     $R gen $fam -o f.cnf > /dev/null
  >     $R solve f.cnf --trace f.trc --format $fmt > /dev/null
  >     $R check f.cnf f.trc --json > plain.json
  >     $R check f.cnf f.trc --json \
  >       --metrics m.json --trace-events t.json --progress=0.001 \
  >       > telem.json 2> /dev/null
  >     cmp plain.json telem.json || echo "MISMATCH $fam $fmt"
  >   done
  > done

A breadth-first check exports its two passes as Chrome "complete"
events, plus one mmap instant per file cursor it opens — one for each
pass (timestamps, durations and thread ids normalised):

  $ $R gen php_6 -o p.cnf > /dev/null
  $ $R solve p.cnf --trace p.trc > /dev/null
  [20]
  $ $R check p.cnf p.trc -s bf --trace-events bf.json > /dev/null
  $ sed -E -e 's/[0-9]+\.[0-9]{3}/T/g' -e 's/"tid":[0-9]+/"tid":N/g' bf.json
  [
  {"name":"trace.mmap","cat":"trace","ph":"X","ts":T,"dur":T,"pid":1,"tid":N},
  {"name":"check.pass_one","cat":"bf","ph":"X","ts":T,"dur":T,"pid":1,"tid":N},
  {"name":"check.pass_two","cat":"bf","ph":"X","ts":T,"dur":T,"pid":1,"tid":N},
  {"name":"trace.mmap","cat":"trace","ph":"X","ts":T,"dur":T,"pid":1,"tid":N}
  ]

Forcing the buffered channel path removes the mmap instants and nothing
else:

  $ $R check p.cnf p.trc -s bf --io channel --trace-events bfc.json > /dev/null
  $ sed -E -e 's/[0-9]+\.[0-9]{3}/T/g' -e 's/"tid":[0-9]+/"tid":N/g' bfc.json
  [
  {"name":"check.pass_one","cat":"bf","ph":"X","ts":T,"dur":T,"pid":1,"tid":N},
  {"name":"check.pass_two","cat":"bf","ph":"X","ts":T,"dur":T,"pid":1,"tid":N}
  ]

An online validate writes the structured run profile; solver, checker
and pipeline metrics all land in one schema, the progress series is
present, and the heartbeat went to stderr:

  $ $R validate p.cnf --mode online \
  >   --metrics m.json --trace-events t.json --progress=0.001 \
  >   > /dev/null 2> hb.err; echo "exit $?"
  exit 20
  $ grep -c '"rescheck-run-profile/1"' m.json
  1
  $ grep -o '"solver.conflicts"\|"kernel.chains"\|"trace.events"\|"pipeline.trace_bytes"\|"checker.clauses_built"' m.json | sort -u
  "checker.clauses_built"
  "kernel.chains"
  "pipeline.trace_bytes"
  "solver.conflicts"
  "trace.events"
  $ grep -c '"progress":' m.json
  1
  $ grep -q '^obs: t=' hb.err; echo "heartbeat $?"
  heartbeat 0

The trace-event file is a well-formed array of complete events with
monotone start times (the same checks CI runs):

  $ jq -e 'type == "array" and length > 0 and all(.[]; .ph == "X")' t.json > /dev/null; echo "exit $?"
  exit 0
  $ jq -e '[.[].ts] == ([.[].ts] | sort)' t.json > /dev/null; echo "exit $?"
  exit 0

Without the flags, no telemetry files appear and stderr stays quiet:

  $ rm -f m2.json t2.json
  $ $R check p.cnf p.trc > /dev/null 2> quiet.err
  $ ls m2.json t2.json 2> /dev/null; echo "exit $?"
  exit 2
  $ wc -c < quiet.err
  0
