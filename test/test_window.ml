(* Window-shifting checker: the schedule (spills, reloads, boundary
   shifts) must be invisible — verdicts, built sets, step counts and
   diagnostics identical to breadth-first at every window size — while
   the resident-clause gauge respects the configured bound. *)

let module_name = "window"

module G = Analysis.Dag

let window_sizes = [ 1; 16; 128; max_int ]

let encode ~format events =
  let w = Trace.Writer.create format in
  List.iter (Trace.Writer.emit w) events;
  Trace.Writer.contents w

let report_exn name = function
  | Ok r -> r
  | Error d ->
    Alcotest.failf "%s rejected a valid trace: %s" name
      (Checker.Diagnostics.to_string d)

let profile_exn trace =
  match G.run (Trace.Reader.From_string trace) with
  | Ok p -> p
  | Error e -> Alcotest.failf "dag refused: %s" e.G.message

(* --- the window sweep ---------------------------------------------------- *)

let sweep_instance ~name f trace =
  let src () = Trace.Reader.From_string trace in
  let bf = report_exn (name ^ " BF") (Checker.Bf.check f (src ())) in
  let predicted_bf = (profile_exn trace).G.predicted_peak_live.G.bf in
  List.iter
    (fun window ->
      let ck field =
        Printf.sprintf "%s: window %s %s" name
          (if window = max_int then "inf" else string_of_int window)
          field
      in
      let stats = ref None in
      let wr =
        report_exn (ck "check")
          (Checker.Window.check
             ~on_stats:(fun s -> stats := Some s)
             ~window f (src ()))
      in
      let i = Alcotest.check Alcotest.int in
      i (ck "learned") bf.Checker.Report.total_learned
        wr.Checker.Report.total_learned;
      i (ck "built") bf.Checker.Report.clauses_built
        wr.Checker.Report.clauses_built;
      i (ck "steps") bf.Checker.Report.resolution_steps
        wr.Checker.Report.resolution_steps;
      Alcotest.check (Alcotest.list Alcotest.int) (ck "built ids")
        bf.Checker.Report.learned_built_ids
        wr.Checker.Report.learned_built_ids;
      Alcotest.check (Alcotest.list Alcotest.int) (ck "core") []
        wr.Checker.Report.core_original_ids;
      let s =
        match !stats with
        | Some s -> s
        | None -> Alcotest.failf "%s: on_stats never fired" (ck "stats")
      in
      (* the configured bound holds: never more than [window] learned
         clauses arena-resident... *)
      if s.Checker.Window.max_resident > window then
        Alcotest.failf "%s: resident %d > window %d" (ck "bound")
          s.Checker.Window.max_resident window;
      (* ...and never more than the DAG's static breadth-first peak
         prediction, whatever the window (the scheduler still frees at
         refcount zero inside a window) *)
      if s.Checker.Window.max_resident > predicted_bf then
        Alcotest.failf "%s: resident %d > predicted bf peak %d" (ck "dag")
          s.Checker.Window.max_resident predicted_bf;
      (* a window that fits the whole proof never spills *)
      if window = max_int && s.Checker.Window.spilled > 0 then
        Alcotest.failf "%s: unbounded window spilled %d clauses" (ck "spill")
          s.Checker.Window.spilled;
      (* every reload must come from a spill *)
      if s.Checker.Window.spilled = 0 && s.Checker.Window.reloaded > 0 then
        Alcotest.failf "%s: %d reloads without spills" (ck "reload")
          s.Checker.Window.reloaded)
    window_sizes

(* three proof families x two encodings *)
let families () =
  let php = Gen.Php.unsat ~holes:4 in
  let rng = Sat.Rng.create 5151 in
  let rec unsat_of gen tries =
    if tries = 0 then Alcotest.fail "no unsat instance found"
    else
      let f = gen () in
      match Pipeline.Validate.solve_with_trace f with
      | Solver.Cdcl.Unsat, _, trace -> (f, trace)
      | (Solver.Cdcl.Sat _, _, _) ->
        unsat_of gen (tries - 1)
  in
  let solve f =
    match Pipeline.Validate.solve_with_trace f with
    | Solver.Cdcl.Unsat, _, trace -> (f, trace)
    | Solver.Cdcl.Sat _, _, _ -> Alcotest.fail "expected unsat"
  in
  let messy =
    unsat_of
      (fun () ->
        let nvars = 4 + Sat.Rng.int rng 8 in
        Helpers.random_messy_cnf rng ~nvars ~nclauses:(5 * nvars))
      500
  in
  let rand3 =
    unsat_of
      (fun () ->
        let nvars = 4 + Sat.Rng.int rng 8 in
        Gen.Random3sat.generate rng ~nvars ~nclauses:(6 * nvars))
      500
  in
  [ ("php", solve php); ("messy", messy); ("rand3", rand3) ]

let test_window_sweep () =
  List.iter
    (fun (fam, (f, trace)) ->
      let events = Trace.Reader.to_list (Trace.Reader.From_string trace) in
      List.iter
        (fun (enc, format) ->
          sweep_instance
            ~name:(Printf.sprintf "%s/%s" fam enc)
            f
            (encode ~format events))
        [ ("ascii", Trace.Writer.Ascii); ("binary", Trace.Writer.Binary) ])
    (families ())

(* --- failure identity ---------------------------------------------------- *)

(* a refuted proof is refuted identically at every window size *)
let test_window_failure_identity () =
  let f, events = Helpers.unsat_with_events () in
  let broken =
    List.filter_map
      (fun e ->
        match e with
        (* drop one mid-trace derivation so a later chain dangles *)
        | Trace.Event.Learned l when l.id mod 17 = 3 -> None
        | e -> Some e)
      events
  in
  let w = Trace.Writer.create Trace.Writer.Ascii in
  List.iter (Trace.Writer.emit w) broken;
  let trace = Trace.Writer.contents w in
  let bf_diag =
    match Checker.Bf.check f (Trace.Reader.From_string trace) with
    | Ok _ -> Alcotest.fail "BF accepted the broken trace"
    | Error d -> Checker.Diagnostics.to_string d
  in
  List.iter
    (fun window ->
      match Checker.Window.check ~window f (Trace.Reader.From_string trace) with
      | Ok _ -> Alcotest.failf "window %d accepted the broken trace" window
      | Error d ->
        Alcotest.check Alcotest.string
          (Printf.sprintf "window %d diagnostic" window)
          bf_diag
          (Checker.Diagnostics.to_string d))
    window_sizes

(* window mode refuses hinted traces like every non-hinted strategy *)
let test_window_refuses_hints () =
  let f, events = Helpers.unsat_with_events () in
  let w = Trace.Writer.create Trace.Writer.Ascii in
  List.iter (Trace.Writer.emit w) events;
  let hinted_w = Trace.Writer.create ~version:2 Trace.Writer.Ascii in
  (match
     G.hint
       (Trace.Reader.From_string (Trace.Writer.contents w))
       hinted_w
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "hint converter refused: %s" e.G.message);
  match
    Checker.Window.check ~window:16 f
      (Trace.Reader.From_string (Trace.Writer.contents hinted_w))
  with
  | Error Checker.Diagnostics.Hints_unsupported -> ()
  | Ok _ -> Alcotest.fail "window accepted a hinted trace"
  | Error d ->
    Alcotest.failf "expected Hints_unsupported, got %s"
      (Checker.Diagnostics.to_string d)

(* the bound is also visible through the telemetry surface: with
   recording on, the [window.resident_clauses] gauge carries the same
   high-water mark on_stats reports, and stays under the window *)
let test_window_gauge_bound () =
  let f = Gen.Php.unsat ~holes:4 in
  let trace =
    match Pipeline.Validate.solve_with_trace f with
    | Solver.Cdcl.Unsat, _, trace -> trace
    | Solver.Cdcl.Sat _, _, _ -> Alcotest.fail "php must be unsat"
  in
  let g = Obs.Metrics.gauge Obs.Metrics.global "window.resident_clauses" in
  Obs.Ctl.enable ();
  Fun.protect ~finally:Obs.Ctl.disable @@ fun () ->
  List.iter
    (fun window ->
      let stats = ref None in
      (match
         Checker.Window.check
           ~on_stats:(fun s -> stats := Some s)
           ~window f
           (Trace.Reader.From_string trace)
       with
      | Ok _ -> ()
      | Error d ->
        Alcotest.failf "window %d rejected: %s" window
          (Checker.Diagnostics.to_string d));
      let resident = int_of_float (Obs.Metrics.Gauge.get g) in
      (match !stats with
       | Some s ->
         Alcotest.check Alcotest.int
           (Printf.sprintf "window %d gauge mirrors stats" window)
           s.Checker.Window.max_resident resident
       | None -> Alcotest.fail "on_stats never fired");
      if resident > window then
        Alcotest.failf "window %d: gauge reports %d resident" window resident)
    [ 1; 16; 128 ]

let test_window_validates_size () =
  let f = Gen.Php.unsat ~holes:2 in
  match
    Checker.Window.check ~window:0 f (Trace.Reader.From_string "t 1 1\n")
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "window 0 was not rejected"

let suite =
  [
    ( module_name,
      [
        Alcotest.test_case "window sweep 3x2x4" `Quick test_window_sweep;
        Alcotest.test_case "failure identity" `Quick
          test_window_failure_identity;
        Alcotest.test_case "refuses hinted traces" `Quick
          test_window_refuses_hints;
        Alcotest.test_case "resident gauge bound" `Quick
          test_window_gauge_bound;
        Alcotest.test_case "window size validated" `Quick
          test_window_validates_size;
      ] );
  ]
