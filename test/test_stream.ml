(* Tests for the streaming event pipeline: sink/source combinators,
   encoder-sink equivalence with the buffering writer, round-trip fuzzing
   of both encodings, encoding auto-detection, and the online validation
   mode's bit-identity with the file-based breadth-first path. *)

let events_testable =
  Alcotest.testable (fun fmt e -> Trace.Event.pp fmt e) Trace.Event.equal

let sample_events =
  [
    Trace.Event.Header { nvars = 9; num_original = 4 };
    Trace.Event.Learned { id = 5; sources = [| 1; 2 |] };
    Trace.Event.Learned { id = 6; sources = [| 5; 3 |] };
    Trace.Event.Level0 { var = 2; value = false; ante = 6 };
    Trace.Event.Final_conflict 6;
  ]

(* --- sink combinators ---------------------------------------------------- *)

let test_tee_counting_buffer () =
  let b1, s1 = Trace.Sink.buffer () in
  let b2, s2 = Trace.Sink.buffer () in
  let counter, counted =
    Trace.Sink.counting ~measure:(Trace.Writer.encoded_size Trace.Writer.Binary)
      (Trace.Sink.tee [ s1; s2 ])
  in
  List.iter (Trace.Sink.push counted) sample_events;
  Trace.Sink.close counted;
  Alcotest.check (Alcotest.list events_testable) "tee branch 1" sample_events
    (Trace.Sink.buffered_events b1);
  Alcotest.check (Alcotest.list events_testable) "tee branch 2" sample_events
    (Trace.Sink.buffered_events b2);
  Alcotest.(check int) "events counted" (List.length sample_events)
    counter.Trace.Sink.events;
  let expected_bytes =
    List.fold_left
      (fun acc e -> acc + Trace.Writer.encoded_size Trace.Writer.Binary e)
      0 sample_events
  in
  Alcotest.(check int) "bytes measured" expected_bytes
    counter.Trace.Sink.bytes;
  (* close is idempotent and double-close must not re-run finalizers *)
  Trace.Sink.close counted

let test_tee_order () =
  let seen = ref [] in
  let tag name = Trace.Sink.make (fun _ -> seen := name :: !seen) in
  let t = Trace.Sink.tee [ tag "a"; tag "b"; tag "c" ] in
  Trace.Sink.push t (Trace.Event.Final_conflict 1);
  Alcotest.(check (list string)) "list order" [ "a"; "b"; "c" ]
    (List.rev !seen)

let test_source_tap_and_drain () =
  let src = Trace.Source.of_list sample_events in
  let tapped_positions = ref [] in
  let src =
    Trace.Source.tap
      (fun pos _ -> tapped_positions := pos :: !tapped_positions)
      src
  in
  let b, sink = Trace.Sink.buffer () in
  Trace.Source.drain src sink;
  Alcotest.check (Alcotest.list events_testable) "drained" sample_events
    (Trace.Sink.buffered_events b);
  Alcotest.(check int) "tap saw every event" (List.length sample_events)
    (List.length !tapped_positions)

(* --- encoder sink vs buffering writer ------------------------------------ *)

let write_legacy fmt events =
  let w = Trace.Writer.create fmt in
  List.iter (Trace.Writer.emit w) events;
  Trace.Writer.contents w

let write_sink ?flush_threshold fmt events =
  let buf = Buffer.create 256 in
  let stats, sink =
    Trace.Writer.sink ?flush_threshold fmt ~write:(Buffer.add_string buf)
  in
  List.iter (Trace.Sink.push sink) events;
  Trace.Sink.close sink;
  (stats, Buffer.contents buf)

let test_sink_matches_writer () =
  List.iter
    (fun fmt ->
      let legacy = write_legacy fmt sample_events in
      (* a tiny threshold forces many flushes; the bytes must not care *)
      let stats, streamed = write_sink ~flush_threshold:7 fmt sample_events in
      Alcotest.(check string) "bit-identical encoding" legacy streamed;
      Alcotest.(check int) "stats.bytes is the trace size"
        (String.length streamed) stats.Trace.Writer.bytes;
      Alcotest.(check bool) "peak bounded by threshold + one record" true
        (stats.Trace.Writer.peak_buffered <= 7 + 64))
    [ Trace.Writer.Ascii; Trace.Writer.Binary ]

let test_encoded_size_exact () =
  List.iter
    (fun fmt ->
      List.iter
        (fun e ->
          let w = Trace.Writer.create fmt in
          let before = Trace.Writer.bytes_written w in
          Trace.Writer.emit w e;
          Alcotest.(check int) "encoded_size matches the writer"
            (Trace.Writer.bytes_written w - before)
            (Trace.Writer.encoded_size fmt e))
        sample_events)
    [ Trace.Writer.Ascii; Trace.Writer.Binary ]

(* --- round-trip fuzzing --------------------------------------------------- *)

(* Structurally arbitrary (not necessarily checkable) event lists: the
   encodings must round-trip any well-typed event. *)
let event_gen =
  let open QCheck.Gen in
  let id = map (fun n -> 1 + abs n) small_int in
  let big = oneof [ id; map (fun n -> 1 + (abs n * 77777)) small_int ] in
  oneof
    [
      map2
        (fun nvars num_original ->
          Trace.Event.Header { nvars; num_original })
        big big;
      map2
        (fun i sources -> Trace.Event.Learned { id = i; sources })
        big
        (map Array.of_list (list_size (int_range 1 6) big));
      map3
        (fun var value ante -> Trace.Event.Level0 { var; value; ante })
        big bool big;
      map (fun i -> Trace.Event.Final_conflict i) big;
    ]

let events_arb =
  QCheck.make
    ~print:(fun es ->
      String.concat "; "
        (List.map (Format.asprintf "%a" Trace.Event.pp) es))
    QCheck.Gen.(list_size (int_range 0 40) event_gen)

let roundtrip fmt events =
  let s = write_legacy fmt events in
  let decoded = Trace.Reader.to_list (Trace.Reader.From_string s) in
  List.length decoded = List.length events
  && List.for_all2 Trace.Event.equal events decoded

let roundtrip_chunked fmt events =
  (* encode through the streaming sink with an adversarially small flush
     threshold, decode with the ordinary reader *)
  let _, s = write_sink ~flush_threshold:3 fmt events in
  let decoded = Trace.Reader.to_list (Trace.Reader.From_string s) in
  List.length decoded = List.length events
  && List.for_all2 Trace.Event.equal events decoded

let qcheck_roundtrips =
  [
    Helpers.qtest ~count:300 "ascii roundtrip fuzz" events_arb
      (roundtrip Trace.Writer.Ascii);
    Helpers.qtest ~count:300 "binary roundtrip fuzz" events_arb
      (roundtrip Trace.Writer.Binary);
    Helpers.qtest ~count:150 "ascii chunked-sink roundtrip fuzz" events_arb
      (roundtrip_chunked Trace.Writer.Ascii);
    Helpers.qtest ~count:150 "binary chunked-sink roundtrip fuzz" events_arb
      (roundtrip_chunked Trace.Writer.Binary);
  ]

(* --- encoding auto-detection ---------------------------------------------- *)

let test_detect () =
  let detect s = Trace.Reader.detect (Trace.Reader.From_string s) in
  let check name expected got =
    Alcotest.(check string) name expected
      (match got with
       | `Ascii -> "ascii"
       | `Binary -> "binary"
       | `Ambiguous _ -> "ambiguous")
  in
  check "ascii trace" "ascii" (detect (write_legacy Trace.Writer.Ascii sample_events));
  check "binary trace" "binary"
    (detect (write_legacy Trace.Writer.Binary sample_events));
  check "empty" "ambiguous" (detect "");
  check "magic prefix" "ambiguous" (detect "ZK");
  check "junk byte" "ambiguous" (detect "\x00\x01\x02");
  check "leading whitespace" "ascii" (detect "  t 1 1\nCONF 1\n")

(* --- online validation: bit-identity with file-based BF -------------------- *)

let check_outcomes_match name (file : Pipeline.Validate.outcome)
    (online : Pipeline.Validate.outcome) =
  Alcotest.(check int)
    (name ^ ": trace bytes")
    file.trace_bytes online.trace_bytes;
  match (file.verdict, online.verdict) with
  | Pipeline.Validate.Unsat_verified a, Pipeline.Validate.Unsat_verified b ->
    let ck field = Alcotest.(check int) (name ^ ": " ^ field) in
    ck "clauses_built" a.Checker.Report.clauses_built
      b.Checker.Report.clauses_built;
    ck "total_learned" a.Checker.Report.total_learned
      b.Checker.Report.total_learned;
    ck "resolution_steps" a.Checker.Report.resolution_steps
      b.Checker.Report.resolution_steps;
    ck "core_vars" a.Checker.Report.core_vars b.Checker.Report.core_vars;
    ck "peak_mem_words" a.Checker.Report.peak_mem_words
      b.Checker.Report.peak_mem_words;
    ck "peak_live_clauses" a.Checker.Report.peak_live_clauses
      b.Checker.Report.peak_live_clauses;
    ck "arena_bytes_resident" a.Checker.Report.arena_bytes_resident
      b.Checker.Report.arena_bytes_resident;
    Alcotest.(check (list int))
      (name ^ ": core_original_ids")
      a.Checker.Report.core_original_ids b.Checker.Report.core_original_ids;
    Alcotest.(check (list int))
      (name ^ ": learned_built_ids")
      a.Checker.Report.learned_built_ids b.Checker.Report.learned_built_ids
  | Pipeline.Validate.Sat_verified _, Pipeline.Validate.Sat_verified _ -> ()
  | _ -> Alcotest.failf "%s: verdicts disagree" name

let test_online_matches_file () =
  (* three benchmark families, both encodings on the first *)
  let cases =
    [
      ("equiv_tiny", Trace.Writer.Ascii);
      ("equiv_tiny", Trace.Writer.Binary);
      ("php_6", Trace.Writer.Ascii);
      ("ring_small", Trace.Writer.Binary);
    ]
  in
  List.iter
    (fun (fam_name, format) ->
      let fam =
        match Gen.Families.find fam_name with
        | Some fam -> fam
        | None -> Alcotest.failf "unknown family %s" fam_name
      in
      let f = fam.Gen.Families.generate () in
      let file =
        Pipeline.Validate.run ~format
          ~strategy:Pipeline.Validate.Breadth_first f
      in
      let online =
        Pipeline.Validate.run ~format ~strategy:Pipeline.Validate.Online f
      in
      let name =
        Printf.sprintf "%s/%s" fam_name
          (match format with
           | Trace.Writer.Ascii -> "ascii"
           | Trace.Writer.Binary -> "binary")
      in
      check_outcomes_match name file online;
      let info =
        match online.online with
        | Some i -> i
        | None -> Alcotest.failf "%s: online info missing" name
      in
      Alcotest.(check bool) (name ^ ": live lint clean") true
        (Analysis.Lint.clean info.Pipeline.Validate.lint))
    cases

let test_online_bounded_buffering () =
  (* a proof large enough that the whole trace cannot fit under the flush
     threshold: the encoder's high-water mark must stay put anyway *)
  let f = Gen.Php.unsat ~holes:8 in
  let o =
    Pipeline.Validate.run ~strategy:Pipeline.Validate.Online f
  in
  let info = Option.get o.Pipeline.Validate.online in
  Alcotest.(check bool) "trace exceeds the flush threshold" true
    (o.Pipeline.Validate.trace_bytes > 65536);
  Alcotest.(check bool) "peak buffered bounded by threshold + one record" true
    (info.Pipeline.Validate.peak_buffered_bytes <= 65536 + 4096);
  Alcotest.(check bool) "peak buffered below the trace size" true
    (info.Pipeline.Validate.peak_buffered_bytes
    < o.Pipeline.Validate.trace_bytes)

(* --- failure diagnostics: live ingest vs file replay ----------------------- *)

let diamond_formula () =
  let f = Sat.Cnf.create 2 in
  let add lits = ignore (Sat.Cnf.add_clause f lits) in
  add [| Sat.Lit.make 1 false; Sat.Lit.make 2 false |];
  add [| Sat.Lit.make 1 true; Sat.Lit.make 2 false |];
  add [| Sat.Lit.make 1 false; Sat.Lit.make 2 true |];
  add [| Sat.Lit.make 1 true; Sat.Lit.make 2 true |];
  f

let test_ingest_failure_matches_file () =
  let corruptions =
    [
      (* fails_at_feed: stream-order violations are recorded the moment
         the offending event is pushed; a dangling final conflict only
         surfaces in [finish] *)
      ( "forward reference", true,
        [
          Trace.Event.Header { nvars = 2; num_original = 4 };
          Trace.Event.Learned { id = 5; sources = [| 1; 9 |] };
          Trace.Event.Final_conflict 5;
        ] );
      ( "duplicate definition", true,
        [
          Trace.Event.Header { nvars = 2; num_original = 4 };
          Trace.Event.Learned { id = 5; sources = [| 1; 2 |] };
          Trace.Event.Learned { id = 5; sources = [| 3; 4 |] };
          Trace.Event.Final_conflict 5;
        ] );
      ( "undefined conflict id", false,
        [
          Trace.Event.Header { nvars = 2; num_original = 4 };
          Trace.Event.Learned { id = 5; sources = [| 1; 2 |] };
          Trace.Event.Final_conflict 9;
        ] );
      ( "shadows original", true,
        [
          Trace.Event.Header { nvars = 2; num_original = 4 };
          Trace.Event.Learned { id = 3; sources = [| 1; 2 |] };
          Trace.Event.Final_conflict 3;
        ] );
    ]
  in
  let f = diamond_formula () in
  List.iter
    (fun (name, fails_at_feed, events) ->
      let source =
        Trace.Reader.From_string (write_legacy Trace.Writer.Ascii events)
      in
      let file_diag =
        match Checker.Bf.check f source with
        | Ok _ -> Alcotest.failf "%s: file BF accepted a corrupt trace" name
        | Error d -> d
      in
      (* live push: the ingest records the failure instead of raising, so
         a solver mid-flight is never interrupted *)
      let g = Checker.Bf.ingest f in
      let sink = Checker.Bf.ingest_sink g in
      List.iter (Trace.Sink.push sink) events;
      Trace.Sink.close sink;
      Alcotest.(check bool) (name ^ ": failure recorded at feed time")
        fails_at_feed
        (Checker.Bf.ingest_failed g <> None);
      let live_diag =
        match Checker.Bf.finish g source with
        | Ok _ -> Alcotest.failf "%s: ingest accepted a corrupt trace" name
        | Error d -> d
      in
      Alcotest.(check string) (name ^ ": identical diagnostic")
        (Checker.Diagnostics.to_string file_diag)
        (Checker.Diagnostics.to_string live_diag))
    corruptions

let suite =
  [
    ( "stream",
      [
        Alcotest.test_case "tee counting buffer" `Quick
          test_tee_counting_buffer;
        Alcotest.test_case "tee order" `Quick test_tee_order;
        Alcotest.test_case "source tap drain" `Quick test_source_tap_and_drain;
        Alcotest.test_case "sink matches writer" `Quick
          test_sink_matches_writer;
        Alcotest.test_case "encoded size exact" `Quick test_encoded_size_exact;
        Alcotest.test_case "detect" `Quick test_detect;
        Alcotest.test_case "online matches file" `Slow
          test_online_matches_file;
        Alcotest.test_case "online bounded buffering" `Slow
          test_online_bounded_buffering;
        Alcotest.test_case "ingest failure matches file" `Quick
          test_ingest_failure_matches_file;
      ]
      @ qcheck_roundtrips );
  ]
