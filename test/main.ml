(* Aggregated test entry point: every module's suites under one runner so
   [dune runtest] exercises the whole stack. *)

let () =
  Alcotest.run "resolution_checker"
    (Test_vec.suite @ Test_rng.suite @ Test_lit_clause.suite
   @ Test_cnf_dimacs.suite @ Test_card.suite @ Test_assignment_model.suite @ Test_trace.suite
   @ Test_stream.suite
   @ Test_heap.suite @ Test_cdcl.suite @ Test_dll_dp.suite
   @ Test_assumptions.suite @ Test_selector_core.suite @ Test_resolution.suite @ Test_level0.suite @ Test_df.suite
   @ Test_bf.suite @ Test_hybrid.suite @ Test_par.suite
   @ Test_hint.suite @ Test_window.suite
   @ Test_cross_checker.suite
   @ Test_trim.suite @ Test_rup.suite @ Test_lint.suite @ Test_dag.suite
   @ Test_explain.suite
   @ Test_clause_db.suite
   @ Test_proof_stats.suite
   @ Test_interpolant.suite
   @ Test_pipeline.suite @ Test_bmc_engine.suite @ Test_mc_oracle.suite
   @ Test_circuit.suite
   @ Test_arith.suite @ Test_bdd.suite @ Test_gen.suite @ Test_simplify_muc.suite
   @ Test_presolve.suite
   @ Test_obs.suite
   @ Test_harness.suite @ Test_fuzz.suite)
