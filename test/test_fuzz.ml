(* Robustness fuzzing: arbitrary corruption of serialized artefacts must
   surface as a structured error (Parse_error / Check_failed / a checker
   Error value), never as a crash, a hang, or a silent acceptance of an
   invalid proof. *)

let mutate_string rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let n_edits = 1 + Sat.Rng.int rng 4 in
    for _ = 1 to n_edits do
      let i = Sat.Rng.int rng (Bytes.length b) in
      match Sat.Rng.int rng 3 with
      | 0 -> Bytes.set b i (Char.chr (Sat.Rng.int rng 256))
      | 1 -> Bytes.set b i '0'
      | _ -> Bytes.set b i ' '
    done;
    Bytes.to_string b
  end

let truncate_string rng s =
  if String.length s < 2 then s
  else String.sub s 0 (Sat.Rng.int rng (String.length s))

(* The reader either parses (possibly into a semantically broken trace,
   which the checkers must then reject or validly accept) or raises
   Parse_error.  Nothing else. *)
let test_fuzz_trace_bytes () =
  let f = Gen.Php.unsat ~holes:4 in
  let _, _, ascii = Pipeline.Validate.solve_with_trace f in
  let wb = Trace.Writer.create Trace.Writer.Binary in
  ignore (Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink wb) f);
  let binary = Trace.Writer.contents wb in
  let rng = Sat.Rng.create 60601 in
  let exercise payload =
    let source = Trace.Reader.From_string payload in
    match Trace.Reader.to_list source with
    | exception Trace.Reader.Parse_error _ -> ()
    | exception e ->
      Alcotest.failf "reader raised unexpected %s" (Printexc.to_string e)
    | _events -> (
      (* parsed: every checker must produce a structured verdict *)
      match
        ( Checker.Df.check f source,
          Checker.Bf.check f source,
          Checker.Hybrid.check f source )
      with
      | (Ok _ | Error _), (Ok _ | Error _), (Ok _ | Error _) -> ()
      | exception e ->
        Alcotest.failf "checker raised unexpected %s" (Printexc.to_string e))
  in
  for _ = 1 to 150 do
    exercise (mutate_string rng ascii);
    exercise (mutate_string rng binary);
    exercise (truncate_string rng ascii);
    exercise (truncate_string rng binary)
  done

(* Mutations must never turn a satisfiable formula's trace into an
   accepted proof: acceptance by any checker implies the formula really
   is unsatisfiable.  We fuzz traces from an UNSAT instance against a
   *different*, satisfiable formula: nothing may accept. *)
let test_no_cross_acceptance () =
  let unsat = Gen.Php.unsat ~holes:4 in
  let sat_formula =
    Gen.Random3sat.generate (Sat.Rng.create 5) ~nvars:20 ~nclauses:45
  in
  (match Solver.Cdcl.solve sat_formula with
   | Solver.Cdcl.Sat _, _ -> ()
   | Solver.Cdcl.Unsat, _ -> Alcotest.fail "control formula must be sat");
  let _, _, trace = Pipeline.Validate.solve_with_trace unsat in
  let source = Trace.Reader.From_string trace in
  (match Checker.Df.check sat_formula source with
   | Ok _ -> Alcotest.fail "DF accepted a proof for a satisfiable formula"
   | Error _ -> ());
  (match Checker.Bf.check sat_formula source with
   | Ok _ -> Alcotest.fail "BF accepted a proof for a satisfiable formula"
   | Error _ -> ());
  match Checker.Hybrid.check sat_formula source with
  | Ok _ -> Alcotest.fail "Hybrid accepted a proof for a satisfiable formula"
  | Error _ -> ()

(* DIMACS parser: corrupted documents raise Parse_error, never crash *)
let test_fuzz_dimacs () =
  let doc = Sat.Dimacs.to_string (Gen.Php.unsat ~holes:4) in
  let rng = Sat.Rng.create 60602 in
  for _ = 1 to 200 do
    let payload =
      if Sat.Rng.bool rng then mutate_string rng doc
      else truncate_string rng doc
    in
    match Sat.Dimacs.parse_string payload with
    | exception Sat.Dimacs.Parse_error _ -> ()
    | exception e ->
      Alcotest.failf "dimacs raised unexpected %s" (Printexc.to_string e)
    | _f -> ()
  done

(* DRUP text parser robustness *)
let test_fuzz_drup_text () =
  let f = Gen.Php.unsat ~holes:4 in
  let _, _, trace = Pipeline.Validate.solve_with_trace f in
  let derivation =
    match Pipeline.Drup.of_trace f (Trace.Reader.From_string trace) with
    | Ok d -> d
    | Error _ -> Alcotest.fail "conversion failed"
  in
  let text = Pipeline.Drup.to_string derivation in
  let rng = Sat.Rng.create 60603 in
  for _ = 1 to 100 do
    let payload = mutate_string rng text in
    match Pipeline.Drup.parse payload with
    | exception Failure _ -> ()
    | exception Invalid_argument _ -> ()
    | exception e ->
      Alcotest.failf "drup parse raised unexpected %s" (Printexc.to_string e)
    | clauses -> (
      (* parsed garbage must not check as a proof unless it genuinely is
         one — Rup.check decides; any structured outcome is fine *)
      match Checker.Rup.check f clauses with
      | Ok _ | Error _ -> ())
  done

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "trace bytes" `Slow test_fuzz_trace_bytes;
        Alcotest.test_case "no cross acceptance" `Quick
          test_no_cross_acceptance;
        Alcotest.test_case "dimacs bytes" `Quick test_fuzz_dimacs;
        Alcotest.test_case "drup text" `Quick test_fuzz_drup_text;
      ] );
  ]
