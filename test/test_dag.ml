(* The whole-proof static analyzer: hand-pinned DAG metrics on a small
   diamond proof, the structural-refusal corpus, and the trimmer's
   contract — trimmed traces are smaller, lint-clean, idempotent under
   re-trimming, keep exactly the depth-first checker's needed set, and
   every checking strategy (df/bf/hybrid/par/online ingest) accepts them
   with an unchanged verdict and unsat core.  Plus the acceptance-side
   memory story: the dag.table_bytes gauge stays proportional to clause
   ids and arcs, never to trace bytes. *)

module G = Analysis.Dag
module L = Analysis.Lint

let run_str ?format s = G.run ?format (Trace.Reader.From_string s)

let profile_exn name s =
  match run_str s with
  | Ok p -> p
  | Error e -> Alcotest.failf "%s: unexpected refusal: %s" name e.G.message

let expect_error name s =
  match run_str s with
  | Ok _ -> Alcotest.failf "%s: analyzer accepted a structurally broken trace" name
  | Error e ->
    if String.length e.G.message = 0 then
      Alcotest.failf "%s: empty error message" name

let serialize fmt events =
  let w = Trace.Writer.create fmt in
  List.iter (Trace.Writer.emit w) events;
  Trace.Writer.contents w

(* --- the diamond proof: every metric pinned by hand --------------------- *)

(* Ordinals (header = 0): CL4=1 CL5=2 CL6=3 CL7=4 CL8=5 CL9=6 VAR=7
   CONF=8.  Reachable from the conflict: 8 <- 6 <- {4,5} <- originals
   {1,2,3}; id 7 duplicates 6's source chain and is dead, id 9 is dead,
   id 8 is a singleton chain. *)
let diamond =
  "t 3 3\n\
   CL 4 1 2\n\
   CL 5 2 3\n\
   CL 6 4 5\n\
   CL 7 4 5\n\
   CL 8 6\n\
   CL 9 1 3\n\
   VAR 1 1 8\n\
   CONF 8\n"

let test_diamond_counts () =
  let p = profile_exn "diamond" diamond in
  let i = Alcotest.check Alcotest.int in
  i "events" 9 p.G.events;
  i "learned" 6 p.G.learned;
  i "level0" 1 p.G.level0;
  i "nvars" 3 p.G.nvars;
  i "originals" 3 p.G.originals;
  i "conflict id" 8 p.G.conflict_id;
  Alcotest.check Alcotest.bool "topological" true p.G.topological;
  i "forward refs" 0 p.G.forward_refs;
  i "dangling refs" 0 p.G.dangling_refs;
  i "reachable" 4 p.G.reachable_learned;
  i "dead" 2 p.G.dead_learned;
  i "core originals" 3 p.G.core_originals;
  i "duplicates" 1 p.G.duplicate_derivations;
  i "singletons" 1 p.G.singleton_chains;
  i "total arcs" 11 p.G.total_arcs

let test_diamond_shape () =
  let p = profile_exn "diamond" diamond in
  let i = Alcotest.check Alcotest.int in
  i "max depth" 3 p.G.max_depth;
  i "max width" 3 p.G.max_width;
  i "widest depth" 1 p.G.widest_depth;
  i "max fanin" 2 p.G.max_fanin;
  (* lifetimes, in record ordinals: id4 [1,4], id5 [2,4], id6 [3,5],
     id8 [5,8] (its last use is the final conflict); 7 and 9 are unused,
     so the mean is (3 + 2 + 2 + 3) / 4 *)
  i "lifetime max" 3 p.G.lifetime_max;
  Alcotest.check (Alcotest.float 1e-9) "lifetime mean" 2.5 p.G.lifetime_mean;
  i "first gap max" 2 p.G.first_gap_max;
  Alcotest.check (Alcotest.float 1e-9) "first gap mean" 1.75 p.G.first_gap_mean

let test_diamond_peaks () =
  let p = profile_exn "diamond" diamond in
  let i = Alcotest.check Alcotest.int in
  (* df keeps exactly the reachable set; bf's refcount sweep peaks at
     ordinal 4 with {4,5,6,7} live; the hybrid sweep skips the dead
     clauses and peaks at {4,5,6}; par and online share bf's schedule *)
  i "df" 4 p.G.predicted_peak_live.G.df;
  i "bf" 4 p.G.predicted_peak_live.G.bf;
  i "hybrid" 3 p.G.predicted_peak_live.G.hybrid;
  i "par" 4 p.G.predicted_peak_live.G.par;
  i "online" 4 p.G.predicted_peak_live.G.online

let test_diamond_diagnostics () =
  let p = profile_exn "diamond" diamond in
  Alcotest.check Alcotest.int "warnings" 4 p.G.warnings;
  Alcotest.check Alcotest.int "dropped" 0 p.G.dropped;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "by_code"
    [ ("L501", 2); ("L502", 1); ("L503", 1) ]
    p.G.by_code;
  (* the L5xx codes are a stable contract, like the linter's *)
  List.iter
    (fun (code, id) ->
      Alcotest.check Alcotest.string "code id" id (L.code_id code);
      match L.severity_of code with
      | L.Warning -> ()
      | L.Error -> Alcotest.failf "%s must be a warning" id)
    [
      (L.Dead_derivation, "L501");
      (L.Duplicate_derivation, "L502");
      (L.Singleton_chain, "L503");
    ]

let test_diamond_binary_identical () =
  (* the same proof through the binary encoding: every metric equal *)
  let events = Trace.Reader.to_list (Trace.Reader.From_string diamond) in
  let p_a = profile_exn "ascii" diamond in
  let p_b = profile_exn "binary" (serialize Trace.Writer.Binary events) in
  Alcotest.check Alcotest.bool "binary flag" true p_b.G.binary;
  Alcotest.check Alcotest.bool "metrics agree" true
    ({ p_a with G.binary = true; diagnostics = [] }
    = { p_b with G.diagnostics = [] })

let test_json_and_pp () =
  let p = profile_exn "diamond" diamond in
  let j = G.to_json p in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length j && (String.sub j i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun sub ->
      if not (contains sub) then Alcotest.failf "json missing %s in %s" sub j)
    [
      {|"reachable_learned":4|};
      {|"dead_learned":2|};
      {|"predicted_peak_live":{"df":4,"bf":4,"hybrid":3,"par":4,"online":4}|};
      {|"by_code":{"L501":2,"L502":1,"L503":1}|};
      {|"code":"L501"|};
    ];
  Alcotest.check Alcotest.string "warning summary" "L501:2 L502:1 L503:1"
    (G.warning_summary p)

(* --- structural refusals ------------------------------------------------ *)

let test_refusals () =
  List.iter
    (fun (name, s) -> expect_error name s)
    [
      ("parse error", "t 2 2\njunk\n");
      ("missing header", "CL 3 1 2\nCONF 3\n");
      ("duplicate header", "t 2 2\nt 2 2\nCL 3 1 2\nCONF 3\n");
      ("missing conflict", "t 2 2\nCL 3 1 2\n");
      ("undefined conflict", "t 2 2\nCL 3 1 2\nCONF 42\n");
      ("duplicate id", "t 2 2\nCL 3 1 2\nCL 3 1 2\nCONF 3\n");
      ("id shadows original", "t 2 2\nCL 2 1 2\nCONF 2\n");
      ("empty trace", "");
    ]

let test_forward_reference () =
  (* a forward reference profiles (topological = false) but cannot be
     safely trimmed: the reference order is already broken *)
  let s = "t 2 2\nCL 3 1 4\nCL 4 2 3\nCONF 4\n" in
  let p = profile_exn "forward" s in
  Alcotest.check Alcotest.bool "not topological" false p.G.topological;
  Alcotest.check Alcotest.int "forward refs" 1 p.G.forward_refs;
  let w = Trace.Writer.create Trace.Writer.Ascii in
  match G.trim (Trace.Reader.From_string s) w with
  | Ok _ -> Alcotest.fail "trim accepted a forward-referencing trace"
  | Error _ -> ()

let test_dangling_reference () =
  let s = "t 2 2\nCL 3 1 99\nCONF 3\n" in
  let p = profile_exn "dangling" s in
  Alcotest.check Alcotest.int "dangling refs" 1 p.G.dangling_refs;
  let w = Trace.Writer.create Trace.Writer.Ascii in
  match G.trim (Trace.Reader.From_string s) w with
  | Ok _ -> Alcotest.fail "trim accepted a dangling-referencing trace"
  | Error _ -> ()

(* --- the trimmer's contract on a real solver trace ---------------------- *)

let solve_unsat_trace ?format f =
  match Pipeline.Validate.solve_with_trace ?format f with
  | Solver.Cdcl.Unsat, _, trace -> trace
  | Solver.Cdcl.Sat _, _, _ -> Alcotest.fail "instance unexpectedly satisfiable"

let trim_str ?format s =
  let fmt =
    match format with Some f -> f | None -> Trace.Writer.Ascii
  in
  let w = Trace.Writer.create fmt in
  match G.trim ?format (Trace.Reader.From_string s) w with
  | Ok (stats, profile) -> (stats, profile, Trace.Writer.contents w)
  | Error e -> Alcotest.failf "trim refused: %s" e.G.message

let learned_ids s =
  Trace.Reader.to_list (Trace.Reader.From_string s)
  |> List.filter_map (function
       | Trace.Event.Learned { id; _ } -> Some id
       | _ -> None)
  |> List.sort compare

let test_trim_php5 () =
  let f = Gen.Php.unsat ~holes:5 in
  let trace = solve_unsat_trace f in
  let stats, profile, trimmed = trim_str trace in
  Alcotest.check Alcotest.bool "something was dropped" true
    (stats.G.dropped_learned > 0);
  Alcotest.check Alcotest.int "kept = reachable" profile.G.reachable_learned
    stats.G.kept_learned;
  Alcotest.check Alcotest.bool "bytes shrink" true
    (stats.G.bytes_out < stats.G.bytes_in);
  (* the trimmed trace lints clean against the formula *)
  let r = L.run ~formula:f (Trace.Reader.From_string trimmed) in
  if not (L.clean r) then Alcotest.fail "trimmed trace does not lint clean";
  Alcotest.check Alcotest.int "no warnings either" 0 r.L.warnings;
  (* trimming is idempotent, to the byte *)
  let stats2, _, trimmed2 = trim_str trimmed in
  Alcotest.check Alcotest.int "second trim drops nothing" 0
    stats2.G.dropped_learned;
  Alcotest.check Alcotest.string "re-trim is byte-identical" trimmed trimmed2;
  (* the static kept set is exactly the depth-first checker's needed set *)
  match Checker.Df.check f (Trace.Reader.From_string trace) with
  | Error d ->
    Alcotest.failf "df rejected the original: %s"
      (Checker.Diagnostics.to_string d)
  | Ok df ->
    Alcotest.check
      (Alcotest.list Alcotest.int)
      "kept ids = df built ids"
      (List.sort compare df.Checker.Report.learned_built_ids)
      (learned_ids trimmed)

(* --- verdict and core identity across every strategy -------------------- *)

(* The fifth "strategy" is the online ingest path: pass one pushed
   event-by-event, pass two over the same bytes. *)
let online_check f trace =
  let g = Checker.Bf.ingest f in
  let src = Trace.Reader.From_string trace in
  Trace.Reader.iter src (fun e -> Checker.Bf.ingest_event g e);
  Checker.Bf.finish g src

let strategies =
  [
    ("df", fun f src -> Checker.Df.check f src);
    ("bf", fun f src -> Checker.Bf.check f src);
    ("hybrid", fun f src -> Checker.Hybrid.check f src);
    ("par", fun f src -> Checker.Par.check ~jobs:2 f src);
  ]

let check_identity fam_name fmt_name f trace =
  let format =
    if fmt_name = "binary" then Trace.Writer.Binary else Trace.Writer.Ascii
  in
  let stats, _, trimmed = trim_str ~format trace in
  let tag s = Printf.sprintf "%s/%s: %s" fam_name fmt_name s in
  let get label check t =
    match check f (Trace.Reader.From_string t) with
    | Ok r -> r
    | Error d ->
      Alcotest.failf "%s rejected: %s" (tag label)
        (Checker.Diagnostics.to_string d)
  in
  List.iter
    (fun (name, check) ->
      let orig = get (name ^ " original") check trace in
      let trim = get (name ^ " trimmed") check trimmed in
      (* the depth-first checker's exact needed set and core are
         untouched by trimming; every checker's core survives it *)
      if name = "df" then begin
        Alcotest.check (Alcotest.list Alcotest.int)
          (tag "df built ids unchanged")
          orig.Checker.Report.learned_built_ids
          trim.Checker.Report.learned_built_ids;
        Alcotest.check Alcotest.int (tag "df steps unchanged")
          orig.Checker.Report.resolution_steps
          trim.Checker.Report.resolution_steps
      end;
      Alcotest.check (Alcotest.list Alcotest.int)
        (tag (name ^ " core unchanged"))
        orig.Checker.Report.core_original_ids
        trim.Checker.Report.core_original_ids;
      Alcotest.check Alcotest.int
        (tag (name ^ " trimmed total = kept"))
        stats.G.kept_learned trim.Checker.Report.total_learned)
    strategies;
  (* online ingest: accepts both, and on each trace its report matches
     the file-based breadth-first checker's *)
  List.iter
    (fun (label, t) ->
      let bf = get ("bf " ^ label) (fun f s -> Checker.Bf.check f s) t in
      match online_check f t with
      | Error d ->
        Alcotest.failf "%s rejected: %s"
          (tag ("online " ^ label))
          (Checker.Diagnostics.to_string d)
      | Ok olr ->
        Alcotest.check Alcotest.int
          (tag ("online " ^ label ^ " built"))
          bf.Checker.Report.clauses_built olr.Checker.Report.clauses_built;
        Alcotest.check Alcotest.int
          (tag ("online " ^ label ^ " steps"))
          bf.Checker.Report.resolution_steps
          olr.Checker.Report.resolution_steps;
        Alcotest.check (Alcotest.list Alcotest.int)
          (tag ("online " ^ label ^ " built ids"))
          bf.Checker.Report.learned_built_ids
          olr.Checker.Report.learned_built_ids)
    [ ("original", trace); ("trimmed", trimmed) ]

let first_unsat name gen =
  let rec go i =
    if i > 50 then Alcotest.failf "%s: no unsat instance in 50 tries" name
    else
      let f = gen i in
      match Pipeline.Validate.solve_with_trace f with
      | Solver.Cdcl.Unsat, _, _ -> f
      | Solver.Cdcl.Sat _, _, _ -> go (i + 1)
  in
  go 0

let test_strategy_identity () =
  let families =
    [
      ("php_5", Gen.Php.unsat ~holes:5);
      ( "rand3sat",
        first_unsat "rand3sat" (fun i ->
            Gen.Random3sat.generate_at_ratio
              (Sat.Rng.create (100 + i))
              ~nvars:60 ~ratio:5.2) );
      ( "messy",
        first_unsat "messy" (fun i ->
            let rng = Sat.Rng.create (200 + i) in
            Helpers.random_messy_cnf rng ~nvars:12 ~nclauses:70) );
    ]
  in
  List.iter
    (fun (fam_name, f) ->
      List.iter
        (fun (fmt_name, format) ->
          let trace = solve_unsat_trace ~format f in
          check_identity fam_name fmt_name f trace)
        [ ("ascii", Trace.Writer.Ascii); ("binary", Trace.Writer.Binary) ])
    families

(* --- property: trimming random unsat proofs ----------------------------- *)

let test_trim_properties_fuzzed () =
  let rng = Sat.Rng.create 777 in
  let seen = ref 0 in
  let round = ref 0 in
  while !seen < 15 && !round < 1000 do
    incr round;
    let nvars = 4 + Sat.Rng.int rng 10 in
    let f = Gen.Random3sat.generate rng ~nvars ~nclauses:(6 * nvars) in
    match Pipeline.Validate.solve_with_trace f with
    | Solver.Cdcl.Sat _, _, _ -> ()
    | Solver.Cdcl.Unsat, _, trace ->
      incr seen;
      let stats, _, trimmed = trim_str trace in
      let r = L.run ~formula:f (Trace.Reader.From_string trimmed) in
      if not (L.clean r) then
        Alcotest.failf "round %d: trimmed trace lints dirty" !round;
      let stats2, _, trimmed2 = trim_str trimmed in
      if trimmed2 <> trimmed then
        Alcotest.failf "round %d: trim not idempotent" !round;
      if stats2.G.dropped_learned <> 0 then
        Alcotest.failf "round %d: re-trim dropped %d" !round
          stats2.G.dropped_learned;
      if stats.G.bytes_out > stats.G.bytes_in then
        Alcotest.failf "round %d: trim grew the trace" !round
  done;
  if !seen < 15 then
    Alcotest.failf "only %d unsat instances in %d rounds" !seen !round

(* --- the memory gauge: tables scale with ids, not bytes ----------------- *)

let test_table_bytes_gauge () =
  let f = Gen.Php.unsat ~holes:5 in
  let trace = solve_unsat_trace f in
  Obs.Ctl.enable ();
  let finish () =
    Obs.Ctl.disable ();
    Obs.Metrics.reset Obs.Metrics.global;
    Obs.Span.reset ()
  in
  Fun.protect ~finally:finish (fun () ->
      let p = profile_exn "php_5" trace in
      let g name = Obs.Metrics.gauge Obs.Metrics.global name in
      let tracked = Obs.Metrics.Gauge.get (g "dag.tracked_ids") in
      let bytes = Obs.Metrics.Gauge.get (g "dag.table_bytes") in
      Alcotest.check (Alcotest.float 0.0) "tracked = learned + originals"
        (float_of_int (p.G.learned + p.G.originals))
        tracked;
      if bytes <= 0.0 then Alcotest.fail "table_bytes gauge not set";
      (* the single-pass tables hold a bounded number of words per id,
         per arc and per record — never per literal or per byte.  The
         growable arrays at most double, so 32 words/id + 2 words/arc +
         4 words/record plus fixed slack is a hard roof. *)
      let bound =
        8
        * ((32 * (p.G.learned + p.G.originals + p.G.level0))
          + (2 * p.G.total_arcs) + (4 * p.G.events) + 4096)
      in
      if int_of_float bytes > bound then
        Alcotest.failf "table_bytes %.0f exceeds the id-proportional roof %d"
          bytes bound)

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "dag",
      [
        tc "diamond: counts" test_diamond_counts;
        tc "diamond: shape" test_diamond_shape;
        tc "diamond: predicted peaks" test_diamond_peaks;
        tc "diamond: L5xx diagnostics" test_diamond_diagnostics;
        tc "diamond: binary encoding identical" test_diamond_binary_identical;
        tc "json and warning summary" test_json_and_pp;
        tc "structural refusals" test_refusals;
        tc "forward reference: profile yes, trim no" test_forward_reference;
        tc "dangling reference: profile yes, trim no" test_dangling_reference;
        tc "trim php_5: clean, idempotent, df-exact" test_trim_php5;
        Alcotest.test_case "strategy identity, trimmed vs original" `Slow
          test_strategy_identity;
        Alcotest.test_case "fuzzed trim properties x15" `Quick
          test_trim_properties_fuzzed;
        tc "table-bytes gauge is id-proportional" test_table_bytes_gauge;
      ] );
  ]
