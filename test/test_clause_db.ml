(* Clause_db lifetime guards and the freelist path: releasing the last
   reference must recycle the slot, and in debug mode any touch of a dead
   handle must raise instead of silently reading recycled memory. *)

module Db = Proof.Clause_db

let with_debug f =
  let was = Db.debug_enabled () in
  Db.set_debug true;
  Fun.protect ~finally:(fun () -> Db.set_debug was) f

let c ints = Sat.Clause.of_ints ints

let test_freelist_reuse () =
  let db = Db.create () in
  let h1 = Db.alloc db (c [ 1; -2; 3 ]) in
  Alcotest.check Alcotest.int "live" 1 (Db.live_clauses db);
  Db.release db h1;
  Alcotest.check Alcotest.int "live after release" 0 (Db.live_clauses db);
  (* same size bin: the freed slot must be recycled, not fresh arena *)
  let h2 = Db.alloc db (c [ 4; 5; -6 ]) in
  Alcotest.check Alcotest.int "slot reused" h1 h2;
  Alcotest.check Alcotest.int "size" 3 (Db.size db h2);
  let got = Array.to_list (Array.map Sat.Lit.to_int (Db.lits db h2)) in
  Alcotest.(check (list int)) "reused slot holds new clause"
    (List.sort compare [ 4; 5; -6 ])
    (List.sort compare got)

let test_use_after_free () =
  with_debug (fun () ->
      let db = Db.create () in
      let h = Db.alloc db (c [ 1; 2 ]) in
      Db.release db h;
      Alcotest.check_raises "size on dead handle" (Db.Use_after_free h)
        (fun () -> ignore (Db.size db h));
      Alcotest.check_raises "retain on dead handle" (Db.Use_after_free h)
        (fun () -> Db.retain db h))

let test_refcount_underflow () =
  with_debug (fun () ->
      let db = Db.create () in
      let h = Db.alloc db (c [ 1; 2; 3 ]) in
      Db.release db h;
      Alcotest.check_raises "double release" (Db.Refcount_underflow h)
        (fun () -> Db.release db h))

let test_retain_release_balance () =
  with_debug (fun () ->
      let db = Db.create () in
      let h = Db.alloc db (c [ 1; -2 ]) in
      Db.retain db h;
      Db.release db h;
      (* one reference left: still live and readable *)
      Alcotest.check Alcotest.int "still live" 2 (Db.size db h);
      Db.release db h;
      Alcotest.check_raises "now dead" (Db.Use_after_free h) (fun () ->
          ignore (Db.size db h)))

let suite =
  [
    ( "clause_db debug guards",
      [
        Alcotest.test_case "freelist reuses released slot" `Quick
          test_freelist_reuse;
        Alcotest.test_case "use-after-free raises in debug mode" `Quick
          test_use_after_free;
        Alcotest.test_case "refcount underflow raises in debug mode" `Quick
          test_refcount_underflow;
        Alcotest.test_case "retain/release balance" `Quick
          test_retain_release_balance;
      ] );
  ]
