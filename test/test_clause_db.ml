(* Clause_db lifetime guards and the freelist path: releasing the last
   reference must recycle the slot, and in debug mode any touch of a dead
   handle must raise instead of silently reading recycled memory. *)

module Db = Proof.Clause_db

let with_debug f =
  let was = Db.debug_enabled () in
  Db.set_debug true;
  Fun.protect ~finally:(fun () -> Db.set_debug was) f

let c ints = Sat.Clause.of_ints ints

let test_freelist_reuse () =
  let db = Db.create () in
  let h1 = Db.alloc db (c [ 1; -2; 3 ]) in
  Alcotest.check Alcotest.int "live" 1 (Db.live_clauses db);
  Db.release db h1;
  Alcotest.check Alcotest.int "live after release" 0 (Db.live_clauses db);
  (* same size bin: the freed slot must be recycled, not fresh arena *)
  let h2 = Db.alloc db (c [ 4; 5; -6 ]) in
  Alcotest.check Alcotest.int "slot reused" h1 h2;
  Alcotest.check Alcotest.int "size" 3 (Db.size db h2);
  let got = Array.to_list (Array.map Sat.Lit.to_int (Db.lits db h2)) in
  Alcotest.(check (list int)) "reused slot holds new clause"
    (List.sort compare [ 4; 5; -6 ])
    (List.sort compare got)

let test_use_after_free () =
  with_debug (fun () ->
      let db = Db.create () in
      let h = Db.alloc db (c [ 1; 2 ]) in
      Db.release db h;
      Alcotest.check_raises "size on dead handle" (Db.Use_after_free h)
        (fun () -> ignore (Db.size db h));
      Alcotest.check_raises "retain on dead handle" (Db.Use_after_free h)
        (fun () -> Db.retain db h))

let test_refcount_underflow () =
  with_debug (fun () ->
      let db = Db.create () in
      let h = Db.alloc db (c [ 1; 2; 3 ]) in
      Db.release db h;
      Alcotest.check_raises "double release" (Db.Refcount_underflow h)
        (fun () -> Db.release db h))

let test_retain_release_balance () =
  with_debug (fun () ->
      let db = Db.create () in
      let h = Db.alloc db (c [ 1; -2 ]) in
      Db.retain db h;
      Db.release db h;
      (* one reference left: still live and readable *)
      Alcotest.check Alcotest.int "still live" 2 (Db.size db h);
      Db.release db h;
      Alcotest.check_raises "now dead" (Db.Use_after_free h) (fun () ->
          ignore (Db.size db h)))

(* --- reserved region and frozen read-only views ------------------------ *)

let ints_of_ro ro h =
  List.init (Db.ro_size ro h) (fun i -> Sat.Lit.to_int (Db.ro_lit ro h i))

let test_reserve_and_freeze () =
  let db = Db.create ~reserve:4096 () in
  Alcotest.check Alcotest.bool "reservation honours the request" true
    (Db.reserved_words db >= 4096);
  let h = Db.alloc db (c [ 1; -2; 3 ]) in
  let ro = Db.freeze db in
  Alcotest.check Alcotest.int "ro_size" 3 (Db.ro_size ro h);
  Alcotest.(check (list int))
    "ro_lit reads the packed literals in place"
    (Array.to_list (Array.map Sat.Lit.to_int (Db.lits db h)))
    (ints_of_ro ro h);
  let dst = Array.make 8 0 in
  let n = Db.ro_copy_lits ro h dst in
  Alcotest.check Alcotest.int "ro_copy_lits returns the length" 3 n;
  Alcotest.(check (list int))
    "ro_copy_lits copies the same run" (ints_of_ro ro h)
    (List.init n (fun i -> Sat.Lit.to_int dst.(i)))

(* A frozen view is a stable snapshot: growing (and relocating) the
   arena after the freeze must not disturb reads through the old view,
   and a fresh freeze must see the same clause in the new arena. *)
let test_freeze_survives_growth () =
  let db = Db.create ~reserve:1024 () in
  let h = Db.alloc db (c [ 7; -8 ]) in
  let ro = Db.freeze db in
  let before = ints_of_ro ro h in
  let keep = ref [] in
  for i = 1 to 500 do
    keep := Db.alloc db (c [ (3 * i) + 10; -((3 * i) + 11); (3 * i) + 12 ]) :: !keep
  done;
  Alcotest.check Alcotest.bool "arena grew past the tiny reservation" true
    (Db.reserved_words db > 1024);
  Alcotest.(check (list int)) "frozen view is a stable snapshot" before
    (ints_of_ro ro h);
  let ro' = Db.freeze db in
  Alcotest.(check (list int)) "re-freeze reads the relocated arena" before
    (ints_of_ro ro' h)

let test_ro_stale_handle_guard () =
  with_debug (fun () ->
      let db = Db.create () in
      let h0 = Db.alloc db (c [ 1; 2 ]) in
      let ro = Db.freeze db in
      let h1 = Db.alloc db (c [ 3; 4 ]) in
      ignore (Db.ro_size ro h0);
      (* a handle allocated after the freeze lies past the frozen top *)
      Alcotest.check_raises "handle past the frozen top"
        (Db.Use_after_free h1) (fun () -> ignore (Db.ro_size ro h1)))

let suite =
  [
    ( "clause_db debug guards",
      [
        Alcotest.test_case "freelist reuses released slot" `Quick
          test_freelist_reuse;
        Alcotest.test_case "use-after-free raises in debug mode" `Quick
          test_use_after_free;
        Alcotest.test_case "refcount underflow raises in debug mode" `Quick
          test_refcount_underflow;
        Alcotest.test_case "retain/release balance" `Quick
          test_retain_release_balance;
        Alcotest.test_case "reserve and freeze" `Quick test_reserve_and_freeze;
        Alcotest.test_case "freeze survives growth" `Quick
          test_freeze_survives_growth;
        Alcotest.test_case "ro guard on stale handles" `Quick
          test_ro_stale_handle_guard;
      ] );
  ]
