(* Depth-first checker tests: acceptance of genuine traces across
   workload families and solver configurations, rejection of corrupted
   traces with precise diagnostics, and the §3.2 by-products (Built%,
   unsat core). *)

module D = Checker.Diagnostics

let ev_header nvars num_original = Trace.Event.Header { nvars; num_original }
let ev_cl id sources = Trace.Event.Learned { id; sources }
let ev_var var value ante = Trace.Event.Level0 { var; value; ante }
let ev_conf id = Trace.Event.Final_conflict id

(* the smallest unsat formula: (x1)(¬x1), original ids 1 and 2 *)
let tiny_formula =
  Sat.Cnf.of_clauses 1 [ Sat.Clause.of_ints [ 1 ]; Sat.Clause.of_ints [ -1 ] ]

let tiny_trace = [ ev_header 1 2; ev_var 1 true 1; ev_conf 2 ]

let df f events = Checker.Df.check f (Helpers.events_to_source events)

let test_tiny_accepted () =
  match df tiny_formula tiny_trace with
  | Ok r ->
    Alcotest.check Alcotest.int "no learned clauses" 0 r.total_learned;
    Alcotest.check (Alcotest.list Alcotest.int) "core is both clauses"
      [ 1; 2 ] r.core_original_ids;
    Alcotest.check Alcotest.int "core vars" 1 r.core_vars
  | Error d -> Alcotest.failf "rejected: %s" (D.to_string d)

let expect f events pred name =
  Helpers.expect_df_failure f events pred name

let test_missing_header () =
  expect tiny_formula [ ev_var 1 true 1; ev_conf 2 ]
    (function D.Missing_header -> true | _ -> false)
    "missing header"

let test_header_mismatch () =
  expect tiny_formula [ ev_header 5 2; ev_var 1 true 1; ev_conf 2 ]
    (function D.Header_mismatch _ -> true | _ -> false)
    "nvars mismatch";
  expect tiny_formula [ ev_header 1 9; ev_var 1 true 1; ev_conf 2 ]
    (function D.Header_mismatch _ -> true | _ -> false)
    "clause-count mismatch"

let test_missing_final_conflict () =
  expect tiny_formula [ ev_header 1 2; ev_var 1 true 1 ]
    (function D.Missing_final_conflict -> true | _ -> false)
    "missing final conflict"

let test_missing_var_record () =
  expect tiny_formula [ ev_header 1 2; ev_conf 2 ]
    (function D.Final_literal_not_false _ -> true | _ -> false)
    "missing level-0 record"

let test_wrong_var_value () =
  (* claiming x1=false makes the final clause (¬x1) satisfied *)
  expect tiny_formula [ ev_header 1 2; ev_var 1 false 2; ev_conf 2 ]
    (function D.Final_literal_not_false _ -> true | _ -> false)
    "flipped var value"

let test_bad_antecedent () =
  (* antecedent of x1=true must contain literal x1; clause 2 is (¬x1) *)
  expect tiny_formula [ ev_header 1 2; ev_var 1 true 2; ev_conf 2 ]
    (function D.Antecedent_mismatch _ -> true | _ -> false)
    "antecedent lacking implied literal"

let test_unknown_clause () =
  expect tiny_formula [ ev_header 1 2; ev_var 1 true 1; ev_conf 99 ]
    (function D.Unknown_clause u -> u.id = 99 | _ -> false)
    "unknown final conflict id"

let test_duplicate_definition () =
  expect tiny_formula
    [ ev_header 1 2; ev_cl 3 [| 1; 2 |]; ev_cl 3 [| 2; 1 |];
      ev_var 1 true 1; ev_conf 2 ]
    (function D.Duplicate_definition 3 -> true | _ -> false)
    "duplicate CL id"

let test_shadows_original () =
  expect tiny_formula
    [ ev_header 1 2; ev_cl 2 [| 1; 2 |]; ev_var 1 true 1; ev_conf 2 ]
    (function D.Shadows_original 2 -> true | _ -> false)
    "CL reusing original id"

let test_cycle_detected () =
  (* 3 and 4 defined in terms of each other; final conflict needs 3 *)
  expect tiny_formula
    [ ev_header 1 2; ev_cl 3 [| 4; 1 |]; ev_cl 4 [| 3; 2 |]; ev_conf 3 ]
    (function D.Cyclic_definition _ -> true | _ -> false)
    "cyclic sources"

let test_self_cycle () =
  expect tiny_formula
    [ ev_header 1 2; ev_cl 3 [| 3; 1 |]; ev_conf 3 ]
    (function D.Cyclic_definition _ -> true | _ -> false)
    "self-referential clause"

(* a bigger formula: (1 2)(¬2 3)(¬1 ¬2)(2)(¬3 ¬2) — unsat; craft a real
   resolution trace by hand *)
let crafted_formula =
  Sat.Cnf.of_clauses 3
    [
      Sat.Clause.of_ints [ 1; 2 ];
      Sat.Clause.of_ints [ -2; 3 ];
      Sat.Clause.of_ints [ -1; -2 ];
      Sat.Clause.of_ints [ 2 ];
      Sat.Clause.of_ints [ -3; -2 ];
    ]

(* x2 := true by clause 4; x3 := true by clause 2; x1 := false by clause 3;
   then clause 5 (¬3 ¬2) is conflicting at level 0 *)
let crafted_trace =
  [
    ev_header 3 5;
    ev_var 2 true 4;
    ev_var 3 true 2;
    ev_var 1 false 3;
    ev_conf 5;
  ]

let test_crafted_accepted () =
  match df crafted_formula crafted_trace with
  | Ok r ->
    (* the empty-clause construction should not need clause 1 or 3 *)
    Alcotest.check Alcotest.bool "core excludes unused clause 1" true
      (not (List.mem 1 r.core_original_ids));
    Alcotest.check Alcotest.bool "core includes conflict clause 5" true
      (List.mem 5 r.core_original_ids)
  | Error d -> Alcotest.failf "rejected: %s" (D.to_string d)

let test_no_clash_diagnostic () =
  (* sources (1 2) and (¬2 3) resolve fine; (1 2) and (2) do not clash *)
  expect crafted_formula
    [ ev_header 3 5; ev_cl 6 [| 1; 4 |]; ev_var 2 true 4; ev_var 3 true 2;
      ev_var 1 false 3; ev_cl 7 [| 6; 5 |]; ev_conf 7 ]
    (function D.No_clash _ -> true | _ -> false)
    "no clash in learned chain"

(* --- real traces, positive and mutated -------------------------------- *)

let families_accepted () =
  List.iter
    (fun (fam : Gen.Families.family) ->
      let f = fam.generate () in
      let result, _, trace = Pipeline.Validate.solve_with_trace f in
      match result with
      | Solver.Cdcl.Sat _ -> Alcotest.failf "%s unexpectedly sat" fam.name
      | Solver.Cdcl.Unsat -> (
        match Checker.Df.check f (Trace.Reader.From_string trace) with
        | Ok r ->
          Alcotest.check Alcotest.bool
            (fam.name ^ ": built ratio in (0,1]") true
            (Checker.Report.built_ratio r > 0.0
             && Checker.Report.built_ratio r <= 1.0)
        | Error d ->
          Alcotest.failf "%s rejected: %s" fam.name (D.to_string d)))
    (Gen.Families.quick ())

let binary_trace_accepted () =
  let f = Gen.Php.unsat ~holes:4 in
  let w = Trace.Writer.create Trace.Writer.Binary in
  (match Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink w) f with
   | Solver.Cdcl.Unsat, _ -> ()
   | Solver.Cdcl.Sat _, _ -> Alcotest.fail "php unsat");
  match
    Checker.Df.check f (Trace.Reader.From_string (Trace.Writer.contents w))
  with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "binary trace rejected: %s" (D.to_string d)

let mutation_drop_cl () =
  let f, events = Helpers.unsat_with_events () in
  (* drop the last CL record: it is the one the final conflict depends on
     (or at least plausibly so); the checker must not accept silently *)
  let last_cl =
    List.fold_left
      (fun acc e -> match e with Trace.Event.Learned l -> Some l.id | _ -> acc)
      None events
  in
  match last_cl with
  | None -> Alcotest.fail "expected learned clauses"
  | Some id ->
    let mutated =
      List.filter
        (function Trace.Event.Learned l -> l.id <> id | _ -> true)
        events
    in
    (* the dropped clause is referenced by the final conflict chain in
       php traces; expect Unknown_clause *)
    Helpers.expect_df_failure f mutated
      (function D.Unknown_clause _ -> true | _ -> false)
      "dropped CL"

let mutation_corrupt_sources () =
  let f, events = Helpers.unsat_with_events () in
  (* replace every CL's first source with an arbitrary original clause —
     at least the clauses on the proof path become wrong *)
  let mutated =
    List.map
      (function
        | Trace.Event.Learned l ->
          let sources = Array.copy l.sources in
          sources.(0) <- 1;
          Trace.Event.Learned { l with sources }
        | e -> e)
      events
  in
  match Checker.Df.check f (Helpers.events_to_source mutated) with
  | Ok _ -> Alcotest.fail "corrupted sources accepted"
  | Error _ -> ()

let mutation_flip_var_values () =
  let f, events = Helpers.unsat_with_events () in
  let mutated =
    List.map
      (function
        | Trace.Event.Level0 v -> Trace.Event.Level0 { v with value = not v.value }
        | e -> e)
      events
  in
  match Checker.Df.check f (Helpers.events_to_source mutated) with
  | Ok _ -> Alcotest.fail "flipped level-0 values accepted"
  | Error _ -> ()

let mutation_truncate () =
  let f, events = Helpers.unsat_with_events () in
  (* keep only the first half of the trace (plus no CONF) *)
  let n = List.length events / 2 in
  let mutated = List.filteri (fun i _ -> i < n) events in
  match Checker.Df.check f (Helpers.events_to_source mutated) with
  | Ok _ -> Alcotest.fail "truncated trace accepted"
  | Error _ -> ()

let test_deep_linear_proof () =
  (* a 50k-deep resolve-source chain: recursive_build implemented with
     an explicit stack must not overflow, and all three checkers agree *)
  let n = 50_000 in
  let clauses =
    Sat.Clause.of_ints [ 1 ]
    :: List.init (n - 1) (fun i ->
           Sat.Clause.of_ints [ -(i + 1); i + 2 ])
    @ [ Sat.Clause.of_ints [ -n ] ]
  in
  let f = Sat.Cnf.of_clauses n clauses in
  (* learned chain: L_k = (x_k), built from c_k and the previous link *)
  let events = ref [ ev_header n (n + 1) ] in
  for k = 2 to n do
    let id = n + k in
    let prev = if k = 2 then 1 else n + k - 1 in
    events := ev_cl id [| k; prev |] :: !events
  done;
  events := ev_var n true (2 * n) :: !events;
  events := ev_conf (n + 1) :: !events;
  let source = Helpers.events_to_source (List.rev !events) in
  (match Checker.Df.check f source with
   | Ok r ->
     Alcotest.check Alcotest.int "all links built" (n - 1) r.clauses_built
   | Error d -> Alcotest.failf "df: %s" (D.to_string d));
  (match Checker.Bf.check f source with
   | Ok _ -> ()
   | Error d -> Alcotest.failf "bf: %s" (D.to_string d));
  match Checker.Hybrid.check f source with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "hybrid: %s" (D.to_string d)

let df_memory_limit () =
  (* a small simulated budget turns the check into the paper's
     memory-out rows *)
  let f = Gen.Php.unsat ~holes:5 in
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php unsat");
  let meter = Harness.Meter.create ~limit_words:100 () in
  try
    ignore (Checker.Df.check ~meter f (Trace.Reader.From_string trace));
    Alcotest.fail "tiny budget not enforced"
  with Harness.Meter.Out_of_memory_simulated _ -> ()

let core_is_unsat () =
  (* §4: the original clauses touched by the proof form an unsatisfiable
     core *)
  let rng = Sat.Rng.create 909 in
  let tried = ref 0 in
  while !tried < 5 do
    let f = Helpers.random_3sat rng ~nvars:12 ~nclauses:70 in
    let result, _, trace = Pipeline.Validate.solve_with_trace f in
    match result with
    | Solver.Cdcl.Sat _ -> ()
    | Solver.Cdcl.Unsat -> (
      incr tried;
      match Checker.Df.check f (Trace.Reader.From_string trace) with
      | Error d -> Alcotest.failf "check failed: %s" (D.to_string d)
      | Ok r ->
        let core =
          Sat.Cnf.restrict_to f
            (List.map (fun id -> id - 1) r.core_original_ids)
        in
        (match Solver.Enumerate.solve core with
         | Solver.Cdcl.Unsat -> ()
         | Solver.Cdcl.Sat _ -> Alcotest.fail "proof core is satisfiable"))
  done

let suite =
  [
    ( "df-crafted",
      [
        Alcotest.test_case "tiny accepted" `Quick test_tiny_accepted;
        Alcotest.test_case "missing header" `Quick test_missing_header;
        Alcotest.test_case "header mismatch" `Quick test_header_mismatch;
        Alcotest.test_case "missing final conflict" `Quick
          test_missing_final_conflict;
        Alcotest.test_case "missing var record" `Quick test_missing_var_record;
        Alcotest.test_case "wrong var value" `Quick test_wrong_var_value;
        Alcotest.test_case "bad antecedent" `Quick test_bad_antecedent;
        Alcotest.test_case "unknown clause" `Quick test_unknown_clause;
        Alcotest.test_case "duplicate definition" `Quick
          test_duplicate_definition;
        Alcotest.test_case "shadows original" `Quick test_shadows_original;
        Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
        Alcotest.test_case "self cycle" `Quick test_self_cycle;
        Alcotest.test_case "crafted accepted + core" `Quick
          test_crafted_accepted;
        Alcotest.test_case "no-clash diagnostic" `Quick
          test_no_clash_diagnostic;
      ] );
    ( "df-real",
      [
        Alcotest.test_case "families accepted" `Slow families_accepted;
        Alcotest.test_case "binary trace accepted" `Quick
          binary_trace_accepted;
        Alcotest.test_case "mutation: drop CL" `Quick mutation_drop_cl;
        Alcotest.test_case "mutation: corrupt sources" `Quick
          mutation_corrupt_sources;
        Alcotest.test_case "mutation: flip values" `Quick
          mutation_flip_var_values;
        Alcotest.test_case "mutation: truncate" `Quick mutation_truncate;
        Alcotest.test_case "deep linear proof" `Quick test_deep_linear_proof;
        Alcotest.test_case "simulated memory limit" `Quick df_memory_limit;
        Alcotest.test_case "proof core is unsat" `Slow core_is_unsat;
      ] );
  ]
