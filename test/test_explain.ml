(* Refusal forensics: every corrupted-trace corpus entry must explain
   itself.  Each case corrupts a well-formed trace, lints it to get the
   positioned diagnostic the CLI would refuse with, writes the
   [rescheck-refusal/1] artifact, reads it back, and rebuilds the
   report — asserting the offending record is positioned inside the
   trace window, the cited L-code carries documentation, and the JSON
   rendering is schema-tagged.  The DAG-neighborhood and parse-refusal
   paths get their own cases, since those exercise the
   hostile-input tolerance of the window scan. *)

module L = Analysis.Lint
module E = Analysis.Explain

let serialize fmt events =
  let w = Trace.Writer.create fmt in
  List.iter (Trace.Writer.emit w) events;
  Trace.Writer.contents w

(* The corruption corpus, mirroring test_lint: (name, events, code). *)
let corpus =
  Trace.Event.
    [
      ( "duplicate id",
        [
          Header { nvars = 2; num_original = 2 };
          Learned { id = 3; sources = [| 1; 2 |] };
          Learned { id = 3; sources = [| 1; 2 |] };
          Final_conflict 3;
        ],
        "L102" );
      ( "forward reference",
        [
          Header { nvars = 2; num_original = 2 };
          Learned { id = 3; sources = [| 1; 4 |] };
          Learned { id = 4; sources = [| 2; 3 |] };
          Final_conflict 4;
        ],
        "L106" );
      ( "dangling reference",
        [
          Header { nvars = 2; num_original = 2 };
          Learned { id = 3; sources = [| 1; 99 |] };
          Final_conflict 3;
        ],
        "L106" );
      ( "out-of-range var",
        [
          Header { nvars = 2; num_original = 2 };
          Learned { id = 3; sources = [| 1; 2 |] };
          Level0 { var = 9; value = true; ante = 3 };
          Final_conflict 3;
        ],
        "L201" );
      ( "shadows original",
        [
          Header { nvars = 2; num_original = 2 };
          Learned { id = 2; sources = [| 1; 2 |] };
          Final_conflict 2;
        ],
        "L101" );
      ( "self source",
        [
          Header { nvars = 2; num_original = 2 };
          Learned { id = 3; sources = [| 1; 3 |] };
          Final_conflict 3;
        ],
        "L105" );
      ( "duplicate level0",
        [
          Header { nvars = 2; num_original = 2 };
          Learned { id = 3; sources = [| 1; 2 |] };
          Level0 { var = 1; value = true; ante = 3 };
          Level0 { var = 1; value = false; ante = 3 };
          Final_conflict 3;
        ],
        "L202" );
      ( "bad antecedent",
        [
          Header { nvars = 2; num_original = 2 };
          Level0 { var = 1; value = true; ante = 77 };
          Final_conflict 2;
        ],
        "L203" );
      ( "conflict unknown",
        [
          Header { nvars = 2; num_original = 2 };
          Learned { id = 3; sources = [| 1; 2 |] };
          Final_conflict 42;
        ],
        "L302" );
      ( "duplicate header",
        [
          Header { nvars = 2; num_original = 2 };
          Header { nvars = 2; num_original = 2 };
          Learned { id = 3; sources = [| 1; 2 |] };
          Final_conflict 3;
        ],
        "L003" );
      ( "event before header",
        [
          Learned { id = 3; sources = [| 1; 2 |] };
          Header { nvars = 2; num_original = 2 };
          Final_conflict 3;
        ],
        "L005" );
    ]

let tmp_refusal = Filename.temp_file "rescheck_refusal" ".json"

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* Lint the trace, refuse on its first error diagnostic exactly as the
   CLI does, then round-trip through the refusal file and rebuild. *)
let explain_of_corruption trace =
  let report = L.run (Trace.Reader.From_string trace) in
  let err =
    match
      List.find_opt
        (fun (d : L.diagnostic) -> L.severity_of d.code = L.Error)
        report.L.diagnostics
    with
    | Some d -> d
    | None -> Alcotest.fail "corpus entry produced no error diagnostic"
  in
  let codes =
    List.filter_map
      (fun (d : L.diagnostic) ->
        if L.severity_of d.code = L.Error then Some (L.code_id d.code) else None)
      report.L.diagnostics
  in
  E.write_refusal ~file:tmp_refusal ~command:"check" ~exit_code:2
    ~status:"s BAD TRACE (lint)"
    ~message:(Printf.sprintf "%s: %s" (L.code_id err.code) err.message)
    ~pos:err.pos ~codes ();
  let refusal =
    match E.read_refusal tmp_refusal with
    | Ok r -> r
    | Error msg -> Alcotest.failf "refusal did not round-trip: %s" msg
  in
  (err, E.build ~trace:(Trace.Reader.From_string trace) ~refusal ())

let check_corpus_entry name events expected_code () =
  List.iter
    (fun (fmt, tag) ->
      let trace = serialize fmt events in
      let err, report = explain_of_corruption trace in
      let f = report.E.e_refusal in
      Alcotest.check Alcotest.int
        (name ^ "/" ^ tag ^ ": exit code")
        2 f.E.r_exit_code;
      if not (List.mem expected_code f.E.r_codes) then
        Alcotest.failf "%s/%s: refusal lost code %s (has [%s])" name tag
          expected_code
          (String.concat "; " f.E.r_codes);
      (* the positioned record must be in the window, flagged, at the
         diagnostic's position *)
      (match
         List.find_opt (fun w -> w.E.w_offending) report.E.e_window
       with
       | None ->
         Alcotest.failf "%s/%s: no offending record in window" name tag
       | Some w ->
         Alcotest.check Alcotest.bool
           (name ^ "/" ^ tag ^ ": offending record at refusal position")
           true
           (w.E.w_pos = err.L.pos));
      Alcotest.check Alcotest.int
        (name ^ "/" ^ tag ^ ": exactly one offending record")
        1
        (List.length (List.filter (fun w -> w.E.w_offending) report.E.e_window));
      (* the cited code must come back with documentation *)
      if
        not
          (List.exists
             (fun (code, _title, doc) ->
               code = expected_code && String.length doc > 0)
             report.E.e_docs)
      then
        Alcotest.failf "%s/%s: no documentation for %s" name tag expected_code;
      (* and the JSON rendering is schema-tagged and self-consistent *)
      let j = E.to_json report in
      if not (contains j {|"schema":"rescheck-explain/1"|}) then
        Alcotest.failf "%s/%s: explain json missing schema" name tag;
      if not (contains j (Printf.sprintf {|"code":"%s"|} expected_code)) then
        Alcotest.failf "%s/%s: explain json missing code" name tag)
    [ (Trace.Writer.Ascii, "ascii"); (Trace.Writer.Binary, "binary") ]

(* A parse refusal: the offending window entry is the unparsable record
   itself, and the ASCII cursor still shows the records around it. *)
let test_parse_refusal_window () =
  let trace = "t 2 2\nCL 3 1 2\nnonsense here\nVAR 1 1 3\nCONF 3\n" in
  let err, report = explain_of_corruption trace in
  Alcotest.check Alcotest.bool "diagnostic is L001" true
    (L.code_id err.L.code = "L001");
  match List.find_opt (fun w -> w.E.w_offending) report.E.e_window with
  | None -> Alcotest.fail "no offending record"
  | Some w ->
    if not (contains w.E.w_text "<unparsable:") then
      Alcotest.failf "offending text should be the unparsable marker: %s"
        w.E.w_text;
    Alcotest.check Alcotest.int "records after the bad line still shown" 2
      (List.length
         (List.filter
            (fun o -> (not o.E.w_offending) && o.E.w_pos > w.E.w_pos)
            report.E.e_window))

(* A CHECK FAILED refusal names clause ids; the report must carry their
   DAG neighborhood. *)
let test_dag_neighborhood_in_report () =
  let trace = "t 2 2\nCL 3 1 99\nVAR 1 1 3\nCONF 3\n" in
  E.write_refusal ~file:tmp_refusal ~command:"check" ~exit_code:1
    ~status:"s CHECK FAILED"
    ~message:"clause 3 references clause id 99"
    ~pos:(Trace.Reader.Line 2) ~ids:[ 3; 99 ] ();
  let refusal =
    match E.read_refusal tmp_refusal with
    | Ok r -> r
    | Error msg -> Alcotest.failf "refusal did not round-trip: %s" msg
  in
  let report =
    E.build ~trace:(Trace.Reader.From_string trace) ~refusal ()
  in
  let node id =
    match
      List.find_opt (fun (n : Analysis.Dag.node) -> n.n_id = id)
        report.E.e_nodes
    with
    | Some n -> n
    | None -> Alcotest.failf "no dag node for clause %d" id
  in
  let n3 = node 3 in
  Alcotest.check Alcotest.bool "clause 3 is learned" true
    (n3.n_kind = `Learned);
  Alcotest.check Alcotest.bool "clause 3 defined at line 2" true
    (n3.n_def_pos = Some (Trace.Reader.Line 2));
  let n99 = node 99 in
  Alcotest.check Alcotest.bool "clause 99 never defined" true
    (n99.n_kind = `Undefined);
  Alcotest.check Alcotest.int "clause 99 used once" 1 n99.n_uses

(* The refusal file embeds the journal tail, and it survives the
   round-trip into the rebuilt report. *)
let test_refusal_embeds_journal () =
  Obs.Journal.arm ~capacity:8 ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Journal.disarm ();
      Obs.Journal.reset ())
    (fun () ->
      Obs.Journal.record ~sub:"solver" "restart" [ ("conflicts", 12) ];
      E.write_refusal ~file:tmp_refusal ~command:"check" ~exit_code:2
        ~status:"s BAD TRACE (parse)" ~message:"boom" ();
      let refusal =
        match E.read_refusal tmp_refusal with
        | Ok r -> r
        | Error msg -> Alcotest.failf "round-trip failed: %s" msg
      in
      let j = Obs.Json.to_string refusal.E.r_journal in
      if not (contains j {|"event":"restart"|}) then
        Alcotest.failf "journal entry lost in refusal: %s" j)

let test_code_docs_complete () =
  (* every code the linter can emit must have explain documentation *)
  List.iter
    (fun code ->
      match L.code_doc code with
      | Some (title, doc)
        when String.length title > 0 && String.length doc > 0 ->
        ()
      | _ -> Alcotest.failf "no documentation for %s" code)
    [
      "L001"; "L002"; "L003"; "L004"; "L005"; "L101"; "L102"; "L103";
      "L104"; "L105"; "L106"; "L107"; "L201"; "L202"; "L203"; "L301";
      "L302"; "L303"; "L401"; "L402"; "L403"; "L404"; "L501"; "L502";
      "L503"; "L601"; "L602"; "L603"; "L701"; "L702"; "L703";
    ]

let suite =
  [
    ( "explain",
      List.map
        (fun (name, events, code) ->
          Alcotest.test_case
            (Printf.sprintf "corpus: %s (%s)" name code)
            `Quick
            (check_corpus_entry name events code))
        corpus
      @ [
          Alcotest.test_case "parse refusal window" `Quick
            test_parse_refusal_window;
          Alcotest.test_case "dag neighborhood in report" `Quick
            test_dag_neighborhood_in_report;
          Alcotest.test_case "refusal embeds journal" `Quick
            test_refusal_embeds_journal;
          Alcotest.test_case "all lint codes documented" `Quick
            test_code_docs_complete;
        ] );
  ]
