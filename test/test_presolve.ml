(* Proof-emitting preprocessing: the simplifier's derivation records join
   the solver's in one trace that checks against the ORIGINAL formula.

   Coverage:
   - hand-pinned emitted records for each proof-emitting pass (unit
     shortening, self-subsuming resolution, bounded variable elimination,
     failed-literal probing);
   - fuzzed equisatisfiability of the pre pipeline against the plain
     solver, with SAT models reconstructed and re-verified against the
     original formula and UNSAT traces re-checked;
   - the seven-strategy agreement matrix on preprocessed runs over three
     structured families and both trace encodings, with unsat cores
     pinned to original DIMACS clause indices;
   - lint-clean acceptance for generated pre traces (plain and hinted);
   - L7xx linter codes on synthetic simplifier-shaped records;
   - inprocessing: traces from runs with a periodic level-0 database
     simplification still check (plain and hinted). *)

let module_name = "presolve"

let cnf nvars ints =
  let f = Sat.Cnf.create nvars in
  List.iter (fun c -> ignore (Sat.Cnf.add_clause f (Sat.Clause.of_ints c))) ints;
  f

let run_simplify ?config f =
  let buffered, sink = Trace.Sink.buffer () in
  let outcome, stats = Solver.Simplify.run ?config ~trace:sink f in
  (outcome, stats, Trace.Sink.buffered_events buffered)

let learned_events events =
  List.filter_map
    (function
      | Trace.Event.Learned { id; sources } -> Some (id, Array.to_list sources)
      | _ -> None)
    events

let check_learned name expected events =
  Alcotest.(check (list (pair int (list int))))
    name expected (learned_events events)

(* --- pinned records per pass -------------------------------------------- *)

(* Unit shortening: propagating the unit clause 1 shortens {-1,2,3} to
   {2,3}, recorded as a resolution of the clause against the unit. *)
let test_pin_unit_shorten () =
  let f = cnf 3 [ [ 1 ]; [ -1; 2; 3 ] ] in
  let outcome, stats, events = run_simplify f in
  (match List.hd events with
   | Trace.Event.Header { nvars; num_original } ->
     Alcotest.(check int) "header nvars" 3 nvars;
     Alcotest.(check int) "header norig" 2 num_original
   | _ -> Alcotest.fail "first event must be the header");
  check_learned "shortened clause" [ (3, [ 2; 1 ]) ] events;
  Alcotest.(check int) "one unit" 1 stats.units_propagated;
  match outcome with
  | Solver.Simplify.P_sat a ->
    Alcotest.(check bool) "model" true (Sat.Model.satisfies a f)
  | _ -> Alcotest.fail "everything simplifies away: P_sat"

(* Self-subsuming resolution: {-1,2} strengthens {1,2,3} to {2,3},
   recorded as resolving the clause (first) against the strengthener. *)
let test_pin_strengthen () =
  let f = cnf 3 [ [ 1; 2; 3 ]; [ -1; 2 ] ] in
  let config =
    { Solver.Simplify.default_config with enable_bve = false;
      enable_probe = false }
  in
  let _, stats, events = run_simplify ~config f in
  check_learned "strengthening resolvent" [ (3, [ 1; 2 ]) ] events;
  Alcotest.(check int) "one strengthening" 1 stats.strengthened

(* Bounded variable elimination: resolving {1,2} x {-1,3} away on
   variable 1 emits the resolvent {2,3} with the pair as sources.  The
   formula is built so no other pass fires first (no units, no pures, no
   subset pairs). *)
let test_pin_bve () =
  let f = cnf 4 [ [ 1; 2 ]; [ -1; 3 ]; [ -2; 4 ]; [ -3; -4 ]; [ 3; 4 ] ] in
  let config =
    { Solver.Simplify.default_config with enable_subsumption = false;
      enable_strengthen = false; enable_probe = false }
  in
  let outcome, stats, events = run_simplify ~config f in
  check_learned "elimination resolvent" [ (6, [ 1; 2 ]) ] events;
  Alcotest.(check bool) "some variable eliminated" true
    (stats.eliminated_vars >= 1);
  Alcotest.(check int) "one resolvent added" 1 stats.resolvents_added;
  match outcome with
  | Solver.Simplify.P_sat a ->
    Alcotest.(check bool) "model" true (Sat.Model.satisfies a f)
  | _ -> Alcotest.fail "expected P_sat"

(* Failed-literal probing: both phases of variable 1 fail under BCP, so
   probing alone refutes the formula — the emitted trace is a complete
   proof that must check against the original formula. *)
let test_pin_probe () =
  let f = cnf 3 [ [ -1; 2 ]; [ -1; -2 ]; [ 1; 3 ]; [ 1; -3 ] ] in
  let config =
    { Solver.Simplify.default_config with enable_subsumption = false;
      enable_strengthen = false; enable_bve = false }
  in
  let w = Trace.Writer.create ~version:1 Trace.Writer.Ascii in
  let outcome, stats =
    Solver.Simplify.run ~config ~trace:(Trace.Writer.as_sink w) f
  in
  (match outcome with
   | Solver.Simplify.P_unsat -> ()
   | _ -> Alcotest.fail "probing must refute this formula");
  Alcotest.(check bool) "probing fired" true (stats.failed_literals >= 1);
  let src = Trace.Reader.From_string (Trace.Writer.contents w) in
  match Checker.Df.check f src with
  | Ok _ -> ()
  | Error d ->
    Alcotest.failf "probe-only proof rejected: %s"
      (Checker.Diagnostics.to_string d)

(* --- fuzzed equisatisfiability and model reconstruction ------------------ *)

let test_fuzz_pre_roundtrip () =
  let rng = Sat.Rng.create 20260808 in
  let unsat_seen = ref 0 in
  for round = 1 to 120 do
    let nvars = 3 + Sat.Rng.int rng 10 in
    let nclauses = 1 + Sat.Rng.int rng (5 * nvars) in
    let f =
      if Sat.Rng.bool rng then Helpers.random_messy_cnf rng ~nvars ~nclauses
      else
        Gen.Random3sat.generate rng ~nvars ~nclauses:(min nclauses (6 * nvars))
    in
    let plain, _ = Solver.Cdcl.solve f in
    let result, _stats, trace =
      Pipeline.Validate.solve_with_trace ~pre:true f
    in
    if not (Helpers.same_status plain result) then
      Alcotest.failf "round %d: plain %s vs pre %s" round
        (Helpers.status_to_string plain)
        (Helpers.status_to_string result);
    match result with
    | Solver.Cdcl.Sat a ->
      (* the reconstructed model must satisfy the ORIGINAL formula *)
      if not (Sat.Model.satisfies a f) then
        Alcotest.failf "round %d: reconstructed model does not satisfy" round
    | Solver.Cdcl.Unsat ->
      incr unsat_seen;
      (match Checker.Df.check f (Trace.Reader.From_string trace) with
       | Ok _ -> ()
       | Error d ->
         Alcotest.failf "round %d: pre trace rejected: %s" round
           (Checker.Diagnostics.to_string d))
  done;
  if !unsat_seen < 10 then
    Alcotest.failf "only %d unsat instances fuzzed" !unsat_seen

(* --- seven-strategy agreement matrix over structured families ------------ *)

let families () =
  [
    ("php", Gen.Php.unsat ~holes:4);
    ("parity", Gen.Parity.odd_cycle 7);
    ( "rand",
      let rng = Sat.Rng.create 99 in
      Gen.Random3sat.generate rng ~nvars:12 ~nclauses:70 );
  ]

let strategies ~window =
  [
    ("df", Pipeline.Validate.Depth_first);
    ("bf", Pipeline.Validate.Breadth_first);
    ("hybrid", Pipeline.Validate.Hybrid);
    ("par", Pipeline.Validate.Parallel 2);
    ("online", Pipeline.Validate.Online);
    ("hint", Pipeline.Validate.Hinted);
    ("window", Pipeline.Validate.Window window);
  ]

let test_pre_strategy_matrix () =
  List.iter
    (fun (fname, f) ->
      (* sanity: each family really is UNSAT without preprocessing *)
      (match Solver.Cdcl.solve f with
       | Solver.Cdcl.Unsat, _ -> ()
       | Solver.Cdcl.Sat _, _ -> Alcotest.failf "%s must be unsat" fname);
      List.iter
        (fun format ->
          let reference = ref None in
          List.iter
            (fun (sname, strategy) ->
              let o = Pipeline.Validate.run ~format ~strategy ~pre:true f in
              let label what =
                Printf.sprintf "%s/%s/%s %s" fname
                  (match format with
                   | Trace.Writer.Ascii -> "ascii"
                   | Trace.Writer.Binary -> "binary")
                  sname what
              in
              (match o.pre with
               | Some _ -> ()
               | None -> Alcotest.fail (label "missing pre stats"));
              match o.verdict with
              | Pipeline.Validate.Unsat_verified report ->
                (* cores name original DIMACS clause indices *)
                let norig = Sat.Cnf.nclauses f in
                List.iter
                  (fun id ->
                    if id < 1 || id > norig then
                      Alcotest.failf "%s: core id %d outside 1..%d"
                        (label "core") id norig)
                  report.Checker.Report.core_original_ids;
                (* every strategy replays the same solver artefact: the
                   learned-record count is bit-identical across the row *)
                (match !reference with
                 | None -> reference := Some report.Checker.Report.total_learned
                 | Some n ->
                   Alcotest.(check int)
                     (label "total learned")
                     n report.Checker.Report.total_learned)
              | Pipeline.Validate.Sat_verified _
              | Pipeline.Validate.Sat_model_wrong _ ->
                Alcotest.fail (label "expected UNSAT")
              | Pipeline.Validate.Unsat_check_failed d ->
                Alcotest.failf "%s: %s" (label "check failed")
                  (Checker.Diagnostics.to_string d))
            (strategies ~window:16))
        [ Trace.Writer.Ascii; Trace.Writer.Binary ])
    (families ())

(* --- cores under --pre shrink like plain cores --------------------------- *)

let test_pre_core_extract () =
  let f = Gen.Php.unsat ~holes:4 in
  match Pipeline.Unsat_core.extract ~pre:true f with
  | Error _ -> Alcotest.fail "php core extraction failed"
  | Ok core ->
    Alcotest.(check bool) "core nonempty" true (core.num_clauses > 0);
    List.iter
      (fun i ->
        if i < 0 || i >= Sat.Cnf.nclauses f then
          Alcotest.failf "core index %d outside the input formula" i)
      core.clause_indices

(* --- lint-clean acceptance ------------------------------------------------ *)

let lint_clean_of ~version ?config f name =
  let result, _stats, trace =
    Pipeline.Validate.solve_with_trace ?config ~version ~pre:true f
  in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.failf "%s: expected UNSAT" name);
  let report =
    Analysis.Lint.run ~formula:f (Trace.Reader.From_string trace)
  in
  if not (Analysis.Lint.clean report) then
    Alcotest.failf "%s: pre trace lints dirty (%d errors)" name
      report.Analysis.Lint.errors

let test_pre_traces_lint_clean () =
  List.iter
    (fun (fname, f) ->
      lint_clean_of ~version:1 f (fname ^ "/plain");
      let config =
        { Solver.Cdcl.default_config with emit_deletes = true }
      in
      lint_clean_of ~version:2 ~config f (fname ^ "/hinted"))
    (families ())

(* --- L7xx synthetic records ----------------------------------------------- *)

let lint_string f s =
  Analysis.Lint.run ~formula:f (Trace.Reader.From_string s)

let code_count report id =
  match List.assoc_opt id report.Analysis.Lint.by_code with
  | Some n -> n
  | None -> 0

let test_l701_no_clash () =
  let f = cnf 3 [ [ 1; 2 ]; [ 1; 3 ] ] in
  let report = lint_string f "t 3 2\nCL 3 1 2\nVAR 1 1 1\nCONF 3\n" in
  Alcotest.(check int) "L701 fires" 1 (code_count report "L701");
  Alcotest.(check bool) "is an error" false (Analysis.Lint.clean report)

let test_l702_multi_clash () =
  let f = cnf 2 [ [ 1; 2 ]; [ -1; -2 ] ] in
  let report = lint_string f "t 2 2\nCL 3 1 2\nCONF 3\n" in
  Alcotest.(check int) "L702 fires" 1 (code_count report "L702");
  Alcotest.(check bool) "is an error" false (Analysis.Lint.clean report)

let test_l703_redundant () =
  let f = cnf 2 [ [ 1; 2 ]; [ -1; 2 ]; [ 2 ] ] in
  let report = lint_string f "t 2 3\nCL 4 1 2\nVAR 2 1 4\nVAR 1 1 1\nCONF 4\n" in
  Alcotest.(check int) "L703 fires" 1 (code_count report "L703");
  (* a warning, not an error: the derivation is valid, just pointless *)
  Alcotest.(check int) "no errors from it" 0 (code_count report "L701")

(* a healthy simplifier-shaped chain trips none of the L7xx codes *)
let test_l7xx_silent_on_valid_chain () =
  let f = cnf 3 [ [ 1 ]; [ -1; 2; 3 ] ] in
  let report =
    lint_string f "t 3 2\nCL 3 2 1\nVAR 1 1 1\nVAR 2 1 3\nCONF 3\n"
  in
  Alcotest.(check int) "no L701" 0 (code_count report "L701");
  Alcotest.(check int) "no L702" 0 (code_count report "L702");
  Alcotest.(check int) "no L703" 0 (code_count report "L703")

(* --- inprocessing ---------------------------------------------------------- *)

let test_inprocess_traces_check () =
  let f = Gen.Php.unsat ~holes:5 in
  let config =
    { Solver.Cdcl.default_config with inprocess_interval = 40 }
  in
  let result, _stats, trace =
    Pipeline.Validate.solve_with_trace ~config f
  in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php must be unsat");
  let src = Trace.Reader.From_string trace in
  (match Checker.Df.check f src with
   | Ok _ -> ()
   | Error d ->
     Alcotest.failf "inprocessed trace rejected by DF: %s"
       (Checker.Diagnostics.to_string d));
  (* hinted variant: inprocess deletions become v2 hints *)
  let config = { config with emit_deletes = true } in
  let result, _stats, trace =
    Pipeline.Validate.solve_with_trace ~config ~version:2 f
  in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php must be unsat");
  (match Checker.Hint.check f (Trace.Reader.From_string trace) with
   | Ok _ -> ()
   | Error d ->
     Alcotest.failf "hinted inprocessed trace rejected: %s"
       (Checker.Diagnostics.to_string d));
  (* fuzzed instances derive level-0 units mid-search, so the pass
     actually shortens clauses rather than running as a no-op *)
  let rng = Sat.Rng.create 7331 in
  let config =
    { Solver.Cdcl.default_config with inprocess_interval = 5 }
  in
  let unsat_seen = ref 0 in
  let round = ref 0 in
  while !unsat_seen < 15 && !round < 400 do
    incr round;
    let nvars = 4 + Sat.Rng.int rng 8 in
    let nclauses = 1 + Sat.Rng.int rng (5 * nvars) in
    let f = Helpers.random_messy_cnf rng ~nvars ~nclauses in
    let result, _stats, trace =
      Pipeline.Validate.solve_with_trace ~config f
    in
    match result with
    | Solver.Cdcl.Sat a ->
      if not (Sat.Model.satisfies a f) then
        Alcotest.failf "inprocess round %d: bad model" !round
    | Solver.Cdcl.Unsat -> (
      incr unsat_seen;
      match Checker.Df.check f (Trace.Reader.From_string trace) with
      | Ok _ -> ()
      | Error d ->
        Alcotest.failf "inprocess round %d: trace rejected: %s" !round
          (Checker.Diagnostics.to_string d))
  done;
  if !unsat_seen < 15 then Alcotest.fail "too few unsat instances"

(* pre + inprocess together: the full production pipeline *)
let test_pre_and_inprocess () =
  let f = Gen.Php.unsat ~holes:5 in
  let config =
    { Solver.Cdcl.default_config with inprocess_interval = 40 }
  in
  let result, _stats, trace =
    Pipeline.Validate.solve_with_trace ~config ~pre:true f
  in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php must be unsat");
  match Checker.Bf.check f (Trace.Reader.From_string trace) with
  | Ok _ -> ()
  | Error d ->
    Alcotest.failf "pre+inprocess trace rejected: %s"
      (Checker.Diagnostics.to_string d)

let suite =
  [
    ( module_name,
      [
        Alcotest.test_case "pin: unit shortening" `Quick test_pin_unit_shorten;
        Alcotest.test_case "pin: strengthening" `Quick test_pin_strengthen;
        Alcotest.test_case "pin: variable elimination" `Quick test_pin_bve;
        Alcotest.test_case "pin: failed-literal probing" `Quick test_pin_probe;
        Alcotest.test_case "fuzz: pre round-trip x120" `Quick
          test_fuzz_pre_roundtrip;
        Alcotest.test_case "pre agreement matrix 3x2x7" `Quick
          test_pre_strategy_matrix;
        Alcotest.test_case "pre core indices original" `Quick
          test_pre_core_extract;
        Alcotest.test_case "pre traces lint clean" `Quick
          test_pre_traces_lint_clean;
        Alcotest.test_case "L701 chain without clash" `Quick test_l701_no_clash;
        Alcotest.test_case "L702 chain with two clashes" `Quick
          test_l702_multi_clash;
        Alcotest.test_case "L703 rederived original" `Quick test_l703_redundant;
        Alcotest.test_case "L7xx silent on valid chain" `Quick
          test_l7xx_silent_on_valid_chain;
        Alcotest.test_case "inprocess traces check" `Quick
          test_inprocess_traces_check;
        Alcotest.test_case "pre + inprocess trace checks" `Quick
          test_pre_and_inprocess;
      ] );
  ]
