(* The linter's corrupted-trace corpus: every corruption class from the
   DESIGN.md error-code table, exercised in both the ASCII and binary
   encodings, asserting the *specific* lint code — the codes are a stable
   contract.  Plus the acceptance criterion: solver-generated traces from
   every registered benchmark family lint clean.  The runtime-sanitizer
   tests live here too, since the sanitizer is the other half of the
   static-analysis layer. *)

module L = Analysis.Lint

let lint ?formula s = L.run ?formula (Trace.Reader.From_string s)

let codes (r : L.report) =
  List.map (fun (d : L.diagnostic) -> L.code_id d.code) r.diagnostics

let expect_code name (r : L.report) c =
  if not (List.mem c (codes r)) then
    Alcotest.failf "%s: expected %s among [%s]" name c
      (String.concat "; " (codes r))

let expect_dirty name (r : L.report) c =
  expect_code name r c;
  if L.clean r then Alcotest.failf "%s: report unexpectedly clean" name

let expect_clean name (r : L.report) =
  if not (L.clean r) then
    Alcotest.failf "%s: expected clean, got errors [%s]" name
      (String.concat "; " (codes r))

(* A minimal well-formed trace: 2 vars, 2 original clauses, one learned
   clause resolving them, a level-0 implication, the final conflict. *)
let ok_events =
  Trace.Event.
    [
      Header { nvars = 2; num_original = 2 };
      Learned { id = 3; sources = [| 1; 2 |] };
      Level0 { var = 1; value = true; ante = 3 };
      Final_conflict 3;
    ]

let serialize fmt events =
  let w = Trace.Writer.create fmt in
  List.iter (Trace.Writer.emit w) events;
  Trace.Writer.contents w

(* Run one corruption case against both encodings. *)
let both name events expected =
  List.iter
    (fun (fmt, tag) ->
      expect_dirty (name ^ "/" ^ tag) (lint (serialize fmt events)) expected)
    [ (Trace.Writer.Ascii, "ascii"); (Trace.Writer.Binary, "binary") ]

let test_clean_trace () =
  expect_clean "ascii" (lint (serialize Trace.Writer.Ascii ok_events));
  let r = lint (serialize Trace.Writer.Binary ok_events) in
  expect_clean "binary" r;
  Alcotest.check Alcotest.bool "binary detected" true r.L.binary;
  Alcotest.check Alcotest.int "events" 4 r.L.events;
  Alcotest.check Alcotest.int "learned" 1 r.L.learned;
  Alcotest.check Alcotest.int "level0" 1 r.L.level0

let test_duplicate_id () =
  both "duplicate id"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 2 |] };
        Learned { id = 3; sources = [| 1; 2 |] };
        Final_conflict 3;
      ]
    "L102"

let test_forward_reference () =
  both "forward reference"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 4 |] };
        Learned { id = 4; sources = [| 2; 3 |] };
        Final_conflict 4;
      ]
    "L106"

let test_dangling_reference () =
  both "dangling reference"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 99 |] };
        Final_conflict 3;
      ]
    "L106"

let test_out_of_range_var () =
  both "var out of range"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 2 |] };
        Level0 { var = 9; value = true; ante = 3 };
        Final_conflict 3;
      ]
    "L201"

let test_missing_conflict () =
  both "missing conflict"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 2 |] };
      ]
    "L301"

let test_shadows_original () =
  both "shadows original"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 2; sources = [| 1; 2 |] };
        Final_conflict 2;
      ]
    "L101"

let test_self_source () =
  both "self source"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 3 |] };
        Final_conflict 3;
      ]
    "L105"

let test_duplicate_level0 () =
  both "duplicate level0"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 2 |] };
        Level0 { var = 1; value = true; ante = 3 };
        Level0 { var = 1; value = false; ante = 3 };
        Final_conflict 3;
      ]
    "L202"

let test_bad_antecedent () =
  both "bad antecedent"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Level0 { var = 1; value = true; ante = 77 };
        Final_conflict 2;
      ]
    "L203"

let test_conflict_unknown () =
  both "conflict unknown"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 2 |] };
        Final_conflict 42;
      ]
    "L302"

let test_duplicate_header () =
  both "duplicate header"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 2 |] };
        Final_conflict 3;
      ]
    "L003"

let test_event_before_header () =
  both "event before header"
    Trace.Event.
      [
        Learned { id = 3; sources = [| 1; 2 |] };
        Header { nvars = 2; num_original = 2 };
        Final_conflict 3;
      ]
    "L005"

let test_missing_header () =
  both "missing header"
    Trace.Event.[ Learned { id = 3; sources = [| 1; 2 |] } ]
    "L002"

let test_header_dims () =
  let r = lint "t 0 2\nCONF 1\n" in
  expect_dirty "zero vars" r "L004"

let test_empty_sources_binary () =
  (* the ASCII grammar cannot express an empty source list ("CL 3" does
     not parse), so this one is binary-only *)
  let s =
    serialize Trace.Writer.Binary
      Trace.Event.
        [
          Header { nvars = 2; num_original = 2 };
          Learned { id = 3; sources = [||] };
          Final_conflict 3;
        ]
  in
  expect_dirty "empty sources" (lint s) "L104"

(* --- warnings: suspicious but replayable, so the report stays clean --- *)

let expect_warn name events code =
  List.iter
    (fun (fmt, tag) ->
      let r = lint (serialize fmt events) in
      expect_code (name ^ "/" ^ tag) r code;
      expect_clean (name ^ "/" ^ tag) r;
      if r.L.warnings = 0 then
        Alcotest.failf "%s/%s: warning not counted" name tag)
    [ (Trace.Writer.Ascii, "ascii"); (Trace.Writer.Binary, "binary") ]

let test_nonmonotone_warning () =
  expect_warn "nonmonotone"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 3 };
        Learned { id = 5; sources = [| 1; 2 |] };
        Learned { id = 4; sources = [| 2; 3 |] };
        Final_conflict 5;
      ]
    "L103"

let test_after_conflict_warning () =
  expect_warn "after conflict"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 2 |] };
        Final_conflict 3;
        Learned { id = 4; sources = [| 1; 3 |] };
      ]
    "L303"

let test_repeated_source_warning () =
  expect_warn "repeated source"
    Trace.Event.
      [
        Header { nvars = 2; num_original = 2 };
        Learned { id = 3; sources = [| 1; 1 |] };
        Final_conflict 3;
      ]
    "L107"

(* --- truncation and garbage ------------------------------------------- *)

let test_ascii_truncation () =
  let s = serialize Trace.Writer.Ascii ok_events in
  (* cut mid-record: the CONF line loses its argument *)
  let cut = String.sub s 0 (String.length s - 2) in
  let r = lint cut in
  expect_dirty "ascii truncation" r "L001";
  expect_code "ascii truncation also misses conflict" r "L301"

let test_ascii_resync () =
  (* a garbled line in the middle: the ASCII cursor must resume on the
     next line, so the rest of the trace still gets linted *)
  let r = lint "t 2 2\nCL 3 1 2\nnonsense here\nVAR 1 1 3\nCONF 3\n" in
  expect_dirty "garbled line" r "L001";
  Alcotest.check Alcotest.int "later events still seen" 4 r.L.events;
  Alcotest.check Alcotest.int "only the bad line errors" 1 r.L.errors

let test_binary_truncation () =
  let s = serialize Trace.Writer.Binary ok_events in
  let cut = String.sub s 0 (String.length s - 3) in
  expect_dirty "binary truncation" (lint cut) "L001"

let test_binary_garbage () =
  (* valid magic, then bytes that are no valid record *)
  expect_dirty "binary garbage" (lint "ZKB1\xff\xff\xff\xff\xff") "L001";
  (* an over-long varint must not loop forever *)
  expect_dirty "garbled varint"
    (lint ("ZKB1\x01" ^ String.make 12 '\xff'))
    "L001"

(* --- formula cross-checks (L4xx) --------------------------------------- *)

let test_formula_mismatch () =
  let f = Sat.Cnf.of_clauses 5 [ Sat.Clause.of_ints [ 1; 2 ] ] in
  let r = L.run ~formula:f (Trace.Reader.From_string "t 2 2\nCONF 1\n") in
  expect_dirty "dims disagree" r "L401"

let test_formula_clause_lint () =
  let f =
    Sat.Cnf.of_clauses 2
      [ Sat.Clause.of_ints [ 1; -1 ]; Sat.Clause.of_ints [ 1; 1; 2 ] ]
  in
  let r = L.run ~formula:f (Trace.Reader.From_string "t 2 2\nCONF 1\n") in
  expect_code "tautology" r "L404";
  expect_code "duplicate literal" r "L403"

(* --- report plumbing ---------------------------------------------------- *)

let test_json_output () =
  let r =
    lint
      (serialize Trace.Writer.Ascii
         Trace.Event.
           [
             Header { nvars = 2; num_original = 2 };
             Learned { id = 3; sources = [| 1; 99 |] };
           ])
  in
  let j = L.to_json r in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length j && (String.sub j i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun sub ->
      if not (contains sub) then
        Alcotest.failf "json missing %s in %s" sub j)
    [ {|"format":"ascii"|}; {|"code":"L106"|}; {|"code":"L301"|}; {|"line":2|} ]

let test_by_code_counts () =
  let r =
    lint
      (serialize Trace.Writer.Ascii
         Trace.Event.
           [
             Header { nvars = 2; num_original = 2 };
             Learned { id = 3; sources = [| 1; 99 |] };
             Learned { id = 4; sources = [| 2; 98 |] };
           ])
  in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "per-code counts, sorted"
    [ ("L106", 2); ("L301", 1) ]
    r.L.by_code;
  let j = L.to_json r in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length j && (String.sub j i n = sub || go (i + 1))
    in
    go 0
  in
  if not (contains {|"by_code":{"L106":2,"L301":1}|}) then
    Alcotest.failf "json missing by_code block in %s" j

let test_by_code_uncapped () =
  (* the cap drops retained diagnostics, never the per-code counts *)
  let b = Buffer.create 256 in
  Buffer.add_string b "t 2 2\n";
  for i = 0 to 19 do
    Buffer.add_string b (Printf.sprintf "CL %d 1 99\n" (3 + i))
  done;
  Buffer.add_string b "CONF 3\n";
  let r =
    L.run ~max_diagnostics:5 (Trace.Reader.From_string (Buffer.contents b))
  in
  Alcotest.check
    (Alcotest.option Alcotest.int)
    "L106 counted past the cap" (Some 20)
    (List.assoc_opt "L106" r.L.by_code)

let test_diagnostic_cap () =
  let b = Buffer.create 256 in
  Buffer.add_string b "t 2 2\n";
  for i = 0 to 19 do
    Buffer.add_string b (Printf.sprintf "CL %d 1 99\n" (3 + i))
  done;
  Buffer.add_string b "CONF 3\n";
  let r = L.run ~max_diagnostics:5 (Trace.Reader.From_string (Buffer.contents b)) in
  Alcotest.check Alcotest.int "retained capped" 5 (List.length r.L.diagnostics);
  Alcotest.check Alcotest.int "errors keep counting" 20 r.L.errors;
  Alcotest.check Alcotest.int "dropped counted" 15 r.L.dropped

(* --- acceptance: real solver traces lint clean ------------------------- *)

let test_families_lint_clean () =
  List.iter
    (fun (fam : Gen.Families.family) ->
      let f = fam.generate () in
      let result, _stats, trace = Pipeline.Validate.solve_with_trace f in
      match result with
      | Solver.Cdcl.Sat _ -> ()  (* SAT runs produce no proof trace *)
      | Solver.Cdcl.Unsat ->
        let r = L.run ~formula:f (Trace.Reader.From_string trace) in
        if not (L.clean r) then
          Alcotest.failf "%s: solver trace not lint-clean: [%s]" fam.name
            (String.concat "; " (codes r)))
    (Gen.Families.suite ())

let test_binary_roundtrip_lint_clean () =
  let f = Gen.Php.unsat ~holes:5 in
  let w = Trace.Writer.create Trace.Writer.Binary in
  (match Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink w) f with
   | Solver.Cdcl.Unsat, _ -> ()
   | Solver.Cdcl.Sat _, _ -> Alcotest.fail "php must be unsat");
  let r = L.run ~formula:f (Trace.Reader.From_string (Trace.Writer.contents w)) in
  expect_clean "php binary trace" r;
  Alcotest.check Alcotest.bool "binary" true r.L.binary

(* --- runtime sanitizer -------------------------------------------------- *)

let sanitize_case scheme name =
  Alcotest.test_case name `Quick (fun () ->
      let config =
        { Solver.Cdcl.default_config with sanitize = true; bcp = scheme }
      in
      (* an UNSAT and a SAT instance, both solved under full invariant
         checking at every decision boundary; answers must be unchanged *)
      (match Solver.Cdcl.solve ~config (Gen.Php.unsat ~holes:4) with
       | Solver.Cdcl.Unsat, _ -> ()
       | Solver.Cdcl.Sat _, _ -> Alcotest.fail "php-4 sanitized: wrong answer");
      let rng = Sat.Rng.create 7 in
      let sat_f = Gen.Random3sat.generate rng ~nvars:20 ~nclauses:40 in
      match Solver.Cdcl.solve ~config sat_f with
      | Solver.Cdcl.Sat a, _ ->
        Alcotest.check Alcotest.bool "model valid" true
          (Sat.Model.satisfies a sat_f)
      | Solver.Cdcl.Unsat, _ ->
        Alcotest.fail "sparse random instance should be sat")

let tc name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "lint",
      [
        tc "clean trace, both formats" test_clean_trace;
        tc "duplicate id (L102)" test_duplicate_id;
        tc "forward reference (L106)" test_forward_reference;
        tc "dangling reference (L106)" test_dangling_reference;
        tc "out-of-range var (L201)" test_out_of_range_var;
        tc "missing conflict (L301)" test_missing_conflict;
        tc "shadows original (L101)" test_shadows_original;
        tc "self source (L105)" test_self_source;
        tc "duplicate level0 (L202)" test_duplicate_level0;
        tc "bad antecedent (L203)" test_bad_antecedent;
        tc "conflict unknown (L302)" test_conflict_unknown;
        tc "duplicate header (L003)" test_duplicate_header;
        tc "event before header (L005)" test_event_before_header;
        tc "missing header (L002)" test_missing_header;
        tc "header dims (L004)" test_header_dims;
        tc "empty sources, binary (L104)" test_empty_sources_binary;
        tc "nonmonotone ids warn (L103)" test_nonmonotone_warning;
        tc "records after conflict warn (L303)" test_after_conflict_warning;
        tc "repeated source warns (L107)" test_repeated_source_warning;
        tc "ascii truncation (L001)" test_ascii_truncation;
        tc "ascii resync after garbled line" test_ascii_resync;
        tc "binary truncation (L001)" test_binary_truncation;
        tc "binary garbage (L001)" test_binary_garbage;
        tc "formula dims mismatch (L401)" test_formula_mismatch;
        tc "formula clause lint (L403/L404)" test_formula_clause_lint;
        tc "json rendering" test_json_output;
        tc "by-code counts" test_by_code_counts;
        tc "by-code counts survive the cap" test_by_code_uncapped;
        tc "diagnostic cap" test_diagnostic_cap;
        Alcotest.test_case "all benchmark families lint clean" `Slow
          test_families_lint_clean;
        tc "binary solver trace lints clean" test_binary_roundtrip_lint_clean;
      ] );
    ( "sanitizer",
      [
        sanitize_case Solver.Cdcl.Two_watched "two-watched invariants hold";
        sanitize_case Solver.Cdcl.Counting "counting invariants hold";
      ] );
  ]
