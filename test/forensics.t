The forensics layer, end to end: the flight recorder never changes
what the tool prints or decides, its dumps are deterministic, a
refusal captures enough context for `explain` to reconstruct it, and
`profile diff` self-gates at zero drift.

  $ R=../bin/rescheck.exe

  $ $R gen php_6 -o p.cnf > /dev/null
  $ $R solve p.cnf --trace p.trc > /dev/null
  [20]

Verdicts and checked artifacts are byte-identical with the journal and
watchdog on and off (only the wall-clock timing line is filtered, on
both sides):

  $ $R check p.cnf p.trc | grep -v "c checked in" > plain.out
  $ $R check p.cnf p.trc --journal --journal-file j.json \
  >   | grep -v "c checked in" > rec.out
  $ cmp plain.out rec.out && echo identical
  identical
  $ $R check p.cnf p.trc --watchdog=60 --journal-file jw.json \
  >   | grep -v "c checked in" > wd.out
  $ cmp plain.out wd.out && echo identical
  identical
  $ cat plain.out
  clauses built: 788 / 946 (83.3%)
  resolution steps: 6166
  core: 133 clauses over 42 variables
  peak memory: 23514 words
  peak live clauses: 923 (98544 arena bytes)
  s VERIFIED UNSATISFIABLE

The journal carries no timestamps, so the same run dumps a
byte-identical flight record — here the parallel checker's wavefront
barriers:

  $ $R check p.cnf p.trc -s par --jobs 2 --journal --journal-file j1.json > /dev/null
  $ $R check p.cnf p.trc -s par --jobs 2 --journal --journal-file j2.json > /dev/null
  $ cmp j1.json j2.json && echo deterministic
  deterministic
  $ jq -r '.schema, (.recorded > 0), ((.entries | length) == .recorded)' j1.json
  rescheck-journal/1
  true
  true

A corrupted trace refuses with a positioned diagnostic and, under
--refusal, leaves a machine-readable artifact:

  $ sed '50s/.*/garbage here/' p.trc > bad.trc
  $ $R check p.cnf bad.trc --refusal r.json
  error L001 at line 50: unknown trace record "garbage"
  error L106 at line 52: clause 184 references source 182, which is neither an original clause nor a learned clause defined upstream
  trace lint: ascii format, 975 events (945 learned, 28 level-0), 2 errors, 0 warnings
  s BAD TRACE (lint)
  [2]
  $ jq -r '.schema, .exit_code, .pos.line, (.codes | join(","))' r.json
  rescheck-refusal/1
  2
  50
  L001,L106

`explain` reconstructs the refusal: the offending record flagged inside
its trace window, plus documentation for every cited code:

  $ $R explain bad.trc r.json | sed -n '1,8p'
  refusal: s BAD TRACE (lint) (exit 2) from `rescheck check`
    L001: unknown trace record "garbage"
    at line 50
  
  trace window:
       line 45: CL 177 <- 89 6 5 117 166 1 105 104 93 176
       line 46: CL 178 <- 5 166 105 104 93
       line 47: CL 179 <- 5 125 110 3 167 178 74 72 177 44 40 31 173 59 58 57 56 50
  $ $R explain bad.trc r.json | grep '>>'
    >> line 50: <unparsable: unknown trace record "garbage">
  $ $R explain bad.trc r.json | grep -c '^  L[0-9]* ('
  2
  $ $R explain bad.trc r.json --json > e.json
  $ jq -r '.schema, .refusal.pos.line, ([.window[] | select(.offending)] | length)' e.json
  rescheck-explain/1
  50
  1

A failed check names clause ids; explain then reconstructs their DAG
neighborhood from the trace.  Renaming a clause definition leaves a
parse-clean trace whose replay hits an unknown id:

  $ sed 's/^CL 182 /CL 1822 /' p.trc > bad2.trc
  $ $R check p.cnf bad2.trc --no-lint --refusal rc.json > /dev/null 2>&1
  [1]
  $ jq -r '.exit_code, (.ids | join(","))' rc.json
  1
  182
  $ $R explain bad2.trc rc.json | grep '^  clause'
    clause 182: never defined, 1 use (by 184)

The run profile doubles as a regression baseline: two runs of the same
seeded workload differ only in wall clock, so a zero-drift gate passes:

  $ $R validate p.cnf --mode online --metrics m1.json > /dev/null
  [20]
  $ $R validate p.cnf --mode online --metrics m2.json > /dev/null
  [20]
  $ $R profile diff m1.json m2.json --gate 0 | grep -v wall_seconds
  profile diff: m1.json vs m2.json
    74 metrics identical
  $ $R profile diff m1.json m2.json --json | jq -r '.schema, .over_gate'
  rescheck-profile-diff/1
  0

Drift beyond the gate fails loudly:

  $ jq '.metrics.counters["solver.conflicts"] += 100' m1.json > m3.json
  $ $R profile diff m3.json m2.json --gate 5 > /dev/null 2> drift.err; echo "exit $?"
  exit 1
  $ grep -c 'solver.conflicts drifted' drift.err
  1

The same registry also renders in the Prometheus text exposition:

  $ $R check p.cnf p.trc --metrics m.prom --metrics-format prom > /dev/null
  $ grep -c '^# TYPE rescheck_' m.prom
  71
  $ grep '^rescheck_checker_clauses_built ' m.prom
  rescheck_checker_clauses_built 788
