(* Tests for the trace formats: ASCII and binary writers, the streaming
   reader, format autodetection, and the compaction claim. *)

let sample_events =
  [
    Trace.Event.Header { nvars = 10; num_original = 5 };
    Trace.Event.Learned { id = 6; sources = [| 1; 2; 3 |] };
    Trace.Event.Learned { id = 7; sources = [| 6; 4 |] };
    Trace.Event.Level0 { var = 3; value = true; ante = 7 };
    Trace.Event.Level0 { var = 5; value = false; ante = 2 };
    Trace.Event.Final_conflict 7;
  ]

let write fmt events =
  let w = Trace.Writer.create fmt in
  List.iter (Trace.Writer.emit w) events;
  Trace.Writer.contents w

let events_testable =
  Alcotest.testable
    (fun fmt e -> Trace.Event.pp fmt e)
    Trace.Event.equal

let test_ascii_roundtrip () =
  let s = write Trace.Writer.Ascii sample_events in
  Alcotest.check (Alcotest.list events_testable) "ascii roundtrip"
    sample_events
    (Trace.Reader.to_list (Trace.Reader.From_string s))

let test_binary_roundtrip () =
  let s = write Trace.Writer.Binary sample_events in
  Alcotest.check (Alcotest.list events_testable) "binary roundtrip"
    sample_events
    (Trace.Reader.to_list (Trace.Reader.From_string s))

let test_binary_smaller () =
  (* the paper predicts 2-3x compaction from a binary encoding *)
  let f = Gen.Php.unsat ~holes:5 in
  let wa = Trace.Writer.create Trace.Writer.Ascii in
  let result, _ = Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink wa) f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php must be unsat");
  let wb = Trace.Writer.create Trace.Writer.Binary in
  let _ = Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink wb) f in
  let ra = Trace.Writer.bytes_written wa in
  let rb = Trace.Writer.bytes_written wb in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "binary (%dB) at most half of ascii (%dB)" rb ra)
    true
    (rb * 2 <= ra)

let test_binary_equivalent_to_ascii () =
  let f = Gen.Php.unsat ~holes:4 in
  let wa = Trace.Writer.create Trace.Writer.Ascii in
  ignore (Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink wa) f);
  let wb = Trace.Writer.create Trace.Writer.Binary in
  ignore (Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink wb) f);
  let ea = Trace.Reader.to_list (Trace.Reader.From_string (Trace.Writer.contents wa)) in
  let eb = Trace.Reader.to_list (Trace.Reader.From_string (Trace.Writer.contents wb)) in
  Alcotest.check (Alcotest.list events_testable)
    "both formats carry identical events" ea eb

let test_file_roundtrip () =
  let w = Trace.Writer.create Trace.Writer.Binary in
  List.iter (Trace.Writer.emit w) sample_events;
  let path = Filename.temp_file "trace_test" ".zkb" in
  Trace.Writer.to_file w path;
  let events = Trace.Reader.to_list (Trace.Reader.From_file path) in
  let size = Trace.Reader.size_bytes (Trace.Reader.From_file path) in
  Sys.remove path;
  Alcotest.check (Alcotest.list events_testable) "file roundtrip"
    sample_events events;
  Alcotest.check Alcotest.int "size matches writer" (Trace.Writer.bytes_written w) size

let expect_reader_error s name =
  try
    ignore (Trace.Reader.to_list (Trace.Reader.From_string s));
    Alcotest.failf "%s: accepted" name
  with Trace.Reader.Parse_error _ -> ()

let test_reader_errors () =
  expect_reader_error "CL 5\n" "CL without sources";
  expect_reader_error "VAR 3 2 1\n" "VAR with non-boolean value";
  expect_reader_error "FROB 1 2\n" "unknown record";
  expect_reader_error "CL x y\n" "non-numeric field";
  expect_reader_error "ZKB1\x09" "unknown binary tag";
  expect_reader_error "ZKB1\x01\x85" "truncated binary varint"

let test_fold_order () =
  let s = write Trace.Writer.Ascii sample_events in
  let count =
    Trace.Reader.fold (Trace.Reader.From_string s) (fun n _ -> n + 1) 0
  in
  Alcotest.check Alcotest.int "fold sees all events"
    (List.length sample_events) count

(* varint edge values survive the binary encoding *)
let prop_binary_varint =
  Helpers.qtest ~count:200 "binary roundtrip of large ids"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let events =
        [
          Trace.Event.Header { nvars = a; num_original = b };
          Trace.Event.Final_conflict (a + b);
        ]
      in
      let s = write Trace.Writer.Binary events in
      Trace.Reader.to_list (Trace.Reader.From_string s) = events)

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "ascii roundtrip" `Quick test_ascii_roundtrip;
        Alcotest.test_case "binary roundtrip" `Quick test_binary_roundtrip;
        Alcotest.test_case "binary compaction" `Quick test_binary_smaller;
        Alcotest.test_case "format equivalence" `Quick
          test_binary_equivalent_to_ascii;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        Alcotest.test_case "reader errors" `Quick test_reader_errors;
        Alcotest.test_case "fold order" `Quick test_fold_order;
        prop_binary_varint;
      ] );
  ]
