(* Tests for the trace formats: ASCII and binary writers, the streaming
   reader, format autodetection, and the compaction claim. *)

let sample_events =
  [
    Trace.Event.Header { nvars = 10; num_original = 5 };
    Trace.Event.Learned { id = 6; sources = [| 1; 2; 3 |] };
    Trace.Event.Learned { id = 7; sources = [| 6; 4 |] };
    Trace.Event.Level0 { var = 3; value = true; ante = 7 };
    Trace.Event.Level0 { var = 5; value = false; ante = 2 };
    Trace.Event.Final_conflict 7;
  ]

let write fmt events =
  let w = Trace.Writer.create fmt in
  List.iter (Trace.Writer.emit w) events;
  Trace.Writer.contents w

let events_testable =
  Alcotest.testable
    (fun fmt e -> Trace.Event.pp fmt e)
    Trace.Event.equal

let test_ascii_roundtrip () =
  let s = write Trace.Writer.Ascii sample_events in
  Alcotest.check (Alcotest.list events_testable) "ascii roundtrip"
    sample_events
    (Trace.Reader.to_list (Trace.Reader.From_string s))

let test_binary_roundtrip () =
  let s = write Trace.Writer.Binary sample_events in
  Alcotest.check (Alcotest.list events_testable) "binary roundtrip"
    sample_events
    (Trace.Reader.to_list (Trace.Reader.From_string s))

let test_binary_smaller () =
  (* the paper predicts 2-3x compaction from a binary encoding *)
  let f = Gen.Php.unsat ~holes:5 in
  let wa = Trace.Writer.create Trace.Writer.Ascii in
  let result, _ = Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink wa) f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php must be unsat");
  let wb = Trace.Writer.create Trace.Writer.Binary in
  let _ = Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink wb) f in
  let ra = Trace.Writer.bytes_written wa in
  let rb = Trace.Writer.bytes_written wb in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "binary (%dB) at most half of ascii (%dB)" rb ra)
    true
    (rb * 2 <= ra)

let test_binary_equivalent_to_ascii () =
  let f = Gen.Php.unsat ~holes:4 in
  let wa = Trace.Writer.create Trace.Writer.Ascii in
  ignore (Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink wa) f);
  let wb = Trace.Writer.create Trace.Writer.Binary in
  ignore (Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink wb) f);
  let ea = Trace.Reader.to_list (Trace.Reader.From_string (Trace.Writer.contents wa)) in
  let eb = Trace.Reader.to_list (Trace.Reader.From_string (Trace.Writer.contents wb)) in
  Alcotest.check (Alcotest.list events_testable)
    "both formats carry identical events" ea eb

let test_file_roundtrip () =
  let w = Trace.Writer.create Trace.Writer.Binary in
  List.iter (Trace.Writer.emit w) sample_events;
  let path = Filename.temp_file "trace_test" ".zkb" in
  Trace.Writer.to_file w path;
  let events = Trace.Reader.to_list (Trace.Reader.From_file path) in
  let size = Trace.Reader.size_bytes (Trace.Reader.From_file path) in
  Sys.remove path;
  Alcotest.check (Alcotest.list events_testable) "file roundtrip"
    sample_events events;
  Alcotest.check Alcotest.int "size matches writer" (Trace.Writer.bytes_written w) size

let expect_reader_error s name =
  try
    ignore (Trace.Reader.to_list (Trace.Reader.From_string s));
    Alcotest.failf "%s: accepted" name
  with Trace.Reader.Parse_error _ -> ()

let test_reader_errors () =
  expect_reader_error "CL 5\n" "CL without sources";
  expect_reader_error "VAR 3 2 1\n" "VAR with non-boolean value";
  expect_reader_error "FROB 1 2\n" "unknown record";
  expect_reader_error "CL x y\n" "non-numeric field";
  expect_reader_error "ZKB1\x09" "unknown binary tag";
  expect_reader_error "ZKB1\x01\x85" "truncated binary varint"

let test_fold_order () =
  let s = write Trace.Writer.Ascii sample_events in
  let count =
    Trace.Reader.fold (Trace.Reader.From_string s) (fun n _ -> n + 1) 0
  in
  Alcotest.check Alcotest.int "fold sees all events"
    (List.length sample_events) count

(* --- mmap-backed cursors: identical to the buffered channel path ------- *)

let with_temp_trace contents f =
  let path = Filename.temp_file "trace_mmap" ".trc" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

(* Drain a cursor completely, recording each event with the position it
   started at and the parse error (if any) that ended the drain — the
   full observable surface a checker sees, rendered to a string so a
   mismatch prints both transcripts. *)
let drain cur =
  let buf = Buffer.create 256 in
  (try
     let rec loop () =
       match Trace.Reader.next cur with
       | Some e ->
         Buffer.add_string buf
           (Format.asprintf "%s %a\n"
              (Trace.Reader.pos_to_string (Trace.Reader.last_pos cur))
              Trace.Event.pp e);
         loop ()
       | None -> Buffer.add_string buf "eof\n"
     in
     loop ()
   with Trace.Reader.Parse_error { pos; msg } ->
     Buffer.add_string buf
       (Printf.sprintf "error %s: %s\n" (Trace.Reader.pos_to_string pos) msg));
  Trace.Reader.close cur;
  Buffer.contents buf

let check_drains_equal name contents =
  with_temp_trace contents (fun path ->
      let via io =
        drain (Trace.Reader.cursor ~io (Trace.Reader.From_file path))
      in
      Alcotest.check Alcotest.string name (via `Channel) (via `Mmap))

(* Every truncation point of a well-formed trace — mid-magic, mid-tag,
   mid-varint, mid-line — must yield the same events, positions and
   error text from both backings. *)
let test_truncation_sweep () =
  List.iter
    (fun fmt ->
      let s = write fmt sample_events in
      for len = 0 to String.length s - 1 do
        check_drains_equal
          (Printf.sprintf "truncated at byte %d" len)
          (String.sub s 0 len)
      done)
    [ Trace.Writer.Ascii; Trace.Writer.Binary ]

let test_corrupt_drains_identical () =
  List.iter
    (fun (name, s) -> check_drains_equal name s)
    [
      ("CL without sources", "t 3 2\nCL 5\n");
      ("VAR with non-boolean value", "t 3 2\nVAR 1 2 0\n");
      ("unknown keyword", "t 3 2\nFROB 1\n");
      ("non-numeric field", "t 3 2\nCL 4 x y\n");
      ("garbage after valid events", write Trace.Writer.Ascii sample_events ^ "CL\n");
      ("unknown binary tag", "ZKB1\x09");
      ("garbled varint", "ZKB1\x01\x85");
      ( "mid-varint cut after valid events",
        write Trace.Writer.Binary sample_events ^ "\x01\x85" );
    ]

(* A single record bigger than the channel path's 64 KiB block buffer:
   the block refill logic and the in-place lexer must agree on it. *)
let test_record_larger_than_block () =
  let sources = Array.init 25_000 (fun i -> i + 1_000_000) in
  let events =
    [
      Trace.Event.Header { nvars = 9; num_original = 8 };
      Trace.Event.Learned { id = 2_000_000; sources };
      Trace.Event.Final_conflict 2_000_000;
    ]
  in
  List.iter
    (fun fmt ->
      let s = write fmt events in
      Alcotest.check Alcotest.bool "record spans several blocks" true
        (String.length s > 65_536);
      with_temp_trace s (fun path ->
          List.iter
            (fun io ->
              let cur =
                Trace.Reader.cursor ~io (Trace.Reader.From_file path)
              in
              let got = ref [] in
              Trace.Reader.iter_cursor cur (fun e -> got := e :: !got);
              Trace.Reader.close cur;
              Alcotest.check
                (Alcotest.list events_testable)
                "oversized record roundtrips" events
                (List.rev !got))
            [ `Mmap; `Channel ]))
    [ Trace.Writer.Ascii; Trace.Writer.Binary ]

let backing_name = function
  | `Memory -> "memory"
  | `Mmap -> "mmap"
  | `Channel -> "channel"

let test_backing_selection () =
  let s = write Trace.Writer.Binary sample_events in
  let io_of ?io src =
    let cur = Trace.Reader.cursor ?io src in
    let b = Trace.Reader.io_of_cursor cur in
    Trace.Reader.close cur;
    backing_name b
  in
  with_temp_trace s (fun path ->
      let file = Trace.Reader.From_file path in
      Alcotest.check Alcotest.string "auto maps regular files" "mmap"
        (io_of file);
      Alcotest.check Alcotest.string "`Channel never maps" "channel"
        (io_of ~io:`Channel file));
  Alcotest.check Alcotest.string "in-memory sources ignore io" "memory"
    (io_of ~io:`Mmap (Trace.Reader.From_string s));
  (* a 0-byte stat size is refused (procfs-style files lie about their
     size): silent channel fallback, and the drain is still clean *)
  with_temp_trace "" (fun path ->
      let cur =
        Trace.Reader.cursor ~io:`Mmap (Trace.Reader.From_file path)
      in
      Alcotest.check Alcotest.string "empty file falls back" "channel"
        (backing_name (Trace.Reader.io_of_cursor cur));
      Alcotest.check Alcotest.bool "empty file drains clean" true
        (Trace.Reader.next cur = None);
      Trace.Reader.close cur)

(* tiny (sub-magic) files: both backings classify them exactly like
   [detect] on the underlying file *)
let test_tiny_file_detection () =
  let show = function
    | `Ascii -> "ascii"
    | `Binary -> "binary"
    | `Ambiguous why -> "ambiguous: " ^ why
  in
  List.iter
    (fun s ->
      with_temp_trace s (fun path ->
          let expected =
            show (Trace.Reader.detect (Trace.Reader.From_file path))
          in
          List.iter
            (fun io ->
              let cur =
                Trace.Reader.cursor ~io (Trace.Reader.From_file path)
              in
              let got = show (Trace.Reader.detect_cursor cur) in
              Trace.Reader.close cur;
              Alcotest.check Alcotest.string
                (Printf.sprintf "detect agrees on %S" s)
                expected got)
            [ `Mmap; `Channel ]))
    [ ""; "Z"; "ZK"; "ZKB"; "ZKB1"; "\x00"; "t" ]

let test_mmap_rewind () =
  let s = write Trace.Writer.Ascii sample_events in
  with_temp_trace s (fun path ->
      let cur = Trace.Reader.cursor ~io:`Mmap (Trace.Reader.From_file path) in
      Alcotest.check Alcotest.string "mapped" "mmap"
        (backing_name (Trace.Reader.io_of_cursor cur));
      let pass () =
        let got = ref [] in
        Trace.Reader.iter_cursor cur (fun e -> got := e :: !got);
        List.rev !got
      in
      let once = pass () in
      Trace.Reader.rewind cur;
      let twice = pass () in
      Trace.Reader.close cur;
      Alcotest.check (Alcotest.list events_testable) "first pass" sample_events
        once;
      Alcotest.check (Alcotest.list events_testable) "rewind replays" once
        twice)

(* varint edge values survive the binary encoding *)
let prop_binary_varint =
  Helpers.qtest ~count:200 "binary roundtrip of large ids"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let events =
        [
          Trace.Event.Header { nvars = a; num_original = b };
          Trace.Event.Final_conflict (a + b);
        ]
      in
      let s = write Trace.Writer.Binary events in
      Trace.Reader.to_list (Trace.Reader.From_string s) = events)

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "ascii roundtrip" `Quick test_ascii_roundtrip;
        Alcotest.test_case "binary roundtrip" `Quick test_binary_roundtrip;
        Alcotest.test_case "binary compaction" `Quick test_binary_smaller;
        Alcotest.test_case "format equivalence" `Quick
          test_binary_equivalent_to_ascii;
        Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
        Alcotest.test_case "reader errors" `Quick test_reader_errors;
        Alcotest.test_case "fold order" `Quick test_fold_order;
        Alcotest.test_case "mmap/channel truncation sweep" `Quick
          test_truncation_sweep;
        Alcotest.test_case "mmap/channel corrupt traces" `Quick
          test_corrupt_drains_identical;
        Alcotest.test_case "record larger than one block" `Quick
          test_record_larger_than_block;
        Alcotest.test_case "backing selection and fallback" `Quick
          test_backing_selection;
        Alcotest.test_case "tiny file detection" `Quick
          test_tiny_file_detection;
        Alcotest.test_case "mmap rewind" `Quick test_mmap_rewind;
        prop_binary_varint;
      ] );
  ]
