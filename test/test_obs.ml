(* Tests for the telemetry layer: histogram bucketing pins, shard
   merging (including from real worker domains), span export validity,
   and the layer's central invariant — checker reports are identical
   with telemetry on and off.

   The registry update functions deliberately do not check [Ctl.on], so
   most tests drive a private registry directly with telemetry disabled;
   the tests that do enable recording guard the disable in a
   [Fun.protect] so a failure cannot leak enabled state into the rest of
   the suite. *)

module M = Obs.Metrics

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let with_recording f =
  Obs.Ctl.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Ctl.disable ();
      M.reset M.global;
      Obs.Span.reset ();
      Obs.Sampler.reset ())
    f

(* --- histogram bucketing ------------------------------------------------ *)

let test_bucket_index () =
  let pins =
    [ (-7, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4);
      (1023, 10); (1024, 11); (1025, 11); (max_int, 62) ]
  in
  List.iter
    (fun (v, b) ->
      Alcotest.check Alcotest.int (Printf.sprintf "bucket of %d" v) b
        (M.Histogram.bucket_index v))
    pins

let test_histogram_observe () =
  let t = M.create () in
  let h = M.histogram t "h" in
  List.iter (M.Histogram.observe h) [ 0; 1; 3; 3; 1000; 1024 ];
  Alcotest.check Alcotest.int "count" 6 (M.Histogram.count h);
  Alcotest.check (Alcotest.float 1e-9) "sum" 2031.0 (M.Histogram.sum h);
  Alcotest.check
    Alcotest.(list (pair int int))
    "buckets" [ (0, 1); (1, 1); (2, 2); (10, 1); (11, 1) ]
    (M.Histogram.buckets h)

(* --- counters, gauges, reset -------------------------------------------- *)

let test_counter_gauge_reset () =
  let t = M.create () in
  let c = M.counter t "c" and g = M.gauge t "g" in
  M.Counter.incr c 3;
  M.Counter.incr c 4;
  M.Gauge.set g 10.0;
  M.Gauge.set g 2.0;
  Alcotest.check Alcotest.int "counter" 7 (M.Counter.get c);
  Alcotest.check (Alcotest.float 0.0) "gauge level" 2.0 (M.Gauge.get g);
  Alcotest.check (Alcotest.float 0.0) "gauge high-water" 10.0
    (M.Gauge.max_value g);
  M.reset t;
  (* handles survive a reset: same cells, zeroed *)
  Alcotest.check Alcotest.int "counter after reset" 0 (M.Counter.get c);
  Alcotest.check (Alcotest.float 0.0) "gauge after reset" 0.0
    (M.Gauge.max_value g);
  M.Counter.incr c 1;
  Alcotest.check Alcotest.(list (pair string (float 0.0))) "snapshot"
    [ ("c", 1.0); ("g", 0.0) ]
    (M.snapshot t)

let test_kind_conflict () =
  let t = M.create () in
  ignore (M.counter t "x");
  Alcotest.check_raises "kind conflict"
    (Invalid_argument "Obs.Metrics: \"x\" is already registered as another kind")
    (fun () -> ignore (M.gauge t "x"))

(* --- shard merging ------------------------------------------------------ *)

let test_shard_merge () =
  let t = M.create () in
  let c = M.counter t "n" and g = M.gauge t "peak" in
  let h = M.histogram t "width" in
  M.Counter.incr c 5;
  M.Gauge.set g 10.0;
  M.Histogram.observe h 4;
  let s = M.shard () in
  let sc = M.shard_counter s "n" and sg = M.shard_gauge s "peak" in
  let sh = M.shard_histogram s "width" in
  M.Counter.incr sc 7;
  M.Gauge.set sg 3.0;
  M.Histogram.observe sh 4;
  M.Histogram.observe sh 9;
  M.merge_shard t s;
  Alcotest.check Alcotest.int "counters add" 12 (M.Counter.get c);
  Alcotest.check (Alcotest.float 0.0) "gauges keep high-water" 10.0
    (M.Gauge.max_value g);
  Alcotest.check Alcotest.int "histogram counts add" 3 (M.Histogram.count h);
  Alcotest.check
    Alcotest.(list (pair int int))
    "histogram buckets add" [ (3, 2); (4, 1) ]
    (M.Histogram.buckets h);
  (* merging zeroes the shard, so a second merge cannot double-count *)
  M.merge_shard t s;
  Alcotest.check Alcotest.int "merge is move, not copy" 12 (M.Counter.get c);
  (* a shard gauge above the parent's high-water does raise it *)
  M.Gauge.set sg 99.0;
  M.merge_shard t s;
  Alcotest.check (Alcotest.float 0.0) "higher shard gauge wins" 99.0
    (M.Gauge.max_value g)

let test_shard_merge_cross_domain () =
  let t = M.create () in
  let c = M.counter t "done" in
  let shards = Array.init 4 (fun _ -> M.shard ()) in
  let worker s () =
    let sc = M.shard_counter s "done" in
    for _ = 1 to 1000 do
      M.Counter.incr sc 1
    done
  in
  let domains =
    Array.map (fun s -> Domain.spawn (worker s)) shards
  in
  Array.iter Domain.join domains;
  (* all workers are at the barrier (joined): fold their shards in *)
  Array.iter (M.merge_shard t) shards;
  Alcotest.check Alcotest.int "all increments land" 4000 (M.Counter.get c)

(* --- span export -------------------------------------------------------- *)

let test_span_export () =
  with_recording @@ fun () ->
  Obs.Span.scope ~cat:"test" "outer" (fun () ->
      Obs.Span.scope ~cat:"test" ~args:[ ("width", 3) ] "inner" (fun () ->
          ignore (Sys.opaque_identity 0)));
  Obs.Span.instant ~cat:"test" "mark";
  Alcotest.check Alcotest.int "three events" 3 (Obs.Span.count ());
  let json = String.trim (Obs.Span.to_trace_json ()) in
  Alcotest.check Alcotest.bool "is a JSON array" true
    (String.length json >= 2
    && json.[0] = '['
    && json.[String.length json - 1] = ']');
  (* every event is a Chrome "complete" event with the stable prefix *)
  let lines =
    String.split_on_char '\n' json
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '[' && l.[0] <> ']')
  in
  Alcotest.check Alcotest.int "one event per line" 3 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.check Alcotest.bool "ph X" true (contains l "\"ph\":\"X\"");
      Alcotest.check Alcotest.bool "has ts" true (contains l "\"ts\":"))
    lines;
  (* sorted by start timestamp *)
  let ts_of l =
    let i = ref 0 in
    while not (contains (String.sub l !i 5) "\"ts\":") do
      incr i
    done;
    Scanf.sscanf (String.sub l (!i + 5) (String.length l - !i - 5)) "%f" Fun.id
  in
  let ts = List.map ts_of lines in
  Alcotest.check Alcotest.bool "monotone ts" true (List.sort compare ts = ts);
  (* args survive export *)
  let inner = List.find (fun l -> contains l "\"inner\"") lines in
  Alcotest.check Alcotest.bool "inner carries args" true
    (contains inner "\"args\":{\"width\":3}");
  (* the aggregate view the run profile embeds *)
  match Obs.Span.aggregate () with
  | [ ("inner", "test", 1, _); ("mark", "test", 1, _); ("outer", "test", 1, _) ]
    -> ()
  | other ->
    Alcotest.failf "unexpected aggregate (%d rows)" (List.length other)

let test_span_off_is_silent () =
  Obs.Span.reset ();
  Obs.Span.scope "ghost" (fun () -> ());
  Obs.Span.instant "ghost";
  Alcotest.check Alcotest.int "nothing recorded when off" 0
    (Obs.Span.count ());
  Alcotest.check Alcotest.string "empty timeline" "[\n]"
    (String.trim (Obs.Span.to_trace_json ()))

(* --- telemetry cannot perturb checked artifacts ------------------------- *)

let report_of f strategy =
  match Pipeline.Validate.run ~strategy f with
  | { verdict = Pipeline.Validate.Unsat_verified r; _ } -> r
  | _ -> Alcotest.fail "expected unsat-verified"

let test_reports_identical_on_off () =
  let f = Gen.Php.unsat ~holes:4 in
  List.iter
    (fun (strategy, tag) ->
      let off = report_of f strategy in
      let on =
        with_recording @@ fun () ->
        Obs.Sampler.configure ~interval:0.0001 ~heartbeat:false ();
        Fun.protect
          ~finally:(fun () -> Obs.Sampler.disarm ())
          (fun () -> report_of f strategy)
      in
      Alcotest.check Alcotest.string
        (tag ^ ": report identical with telemetry on")
        (Checker.Report.to_json off)
        (Checker.Report.to_json on))
    [
      (Pipeline.Validate.Depth_first, "df");
      (Pipeline.Validate.Breadth_first, "bf");
      (Pipeline.Validate.Hybrid, "hybrid");
      (Pipeline.Validate.Parallel 2, "par");
      (Pipeline.Validate.Online, "online");
    ]

(* --- prometheus exposition ---------------------------------------------- *)

let test_prom_exposition () =
  let t = M.create () in
  let c = M.counter t "solver.conflicts" and g = M.gauge t "arena/bytes" in
  let h = M.histogram t "chain width" in
  M.Counter.incr c 42;
  M.Gauge.set g 7.0;
  M.Gauge.set g 3.0;
  M.Histogram.observe h 1;
  M.Histogram.observe h 5;
  let p = M.to_prom t in
  List.iter
    (fun needle ->
      if not (contains p needle) then
        Alcotest.failf "prom output missing %S in:\n%s" needle p)
    [
      "# TYPE rescheck_solver_conflicts counter";
      "rescheck_solver_conflicts 42";
      "# TYPE rescheck_arena_bytes gauge";
      "rescheck_arena_bytes 3";
      "rescheck_arena_bytes_max 7";
      "# TYPE rescheck_chain_width histogram";
      {|rescheck_chain_width_bucket{le="1"} 1|};
      {|rescheck_chain_width_bucket{le="+Inf"} 2|};
      "rescheck_chain_width_sum 6";
      "rescheck_chain_width_count 2";
    ]

(* --- journal flight recorder -------------------------------------------- *)

let with_journal ?capacity f =
  Obs.Journal.arm ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Journal.disarm ();
      Obs.Journal.reset ())
    f

let record_fixed_run () =
  Obs.Journal.record ~sub:"solver" "restart" [ ("restarts", 1); ("conflicts", 64) ];
  Obs.Journal.record ~sub:"window" "spill" [ ("window", 2); ("clauses", 17) ];
  Obs.Journal.record ~sub:"arena" "grow" [ ("from_words", 4096); ("to_words", 8192) ]

let test_journal_deterministic_dump () =
  let d1 =
    with_journal ~capacity:8 (fun () ->
        record_fixed_run ();
        Obs.Journal.to_json ())
  in
  let d2 =
    with_journal ~capacity:8 (fun () ->
        record_fixed_run ();
        Obs.Journal.to_json ())
  in
  Alcotest.check Alcotest.string "same run, byte-identical dump" d1 d2;
  if not (contains d1 {|"schema":"rescheck-journal/1"|}) then
    Alcotest.failf "journal dump missing schema: %s" d1;
  if not (contains d1 {|"sub":"solver","event":"restart","args":{"restarts":1,"conflicts":64}|})
  then Alcotest.failf "journal dump missing entry payload: %s" d1

let test_journal_wraparound () =
  with_journal ~capacity:4 (fun () ->
      for i = 0 to 9 do
        Obs.Journal.record ~sub:"t" "e" [ ("i", i) ]
      done;
      Alcotest.check Alcotest.int "recorded counts every entry" 10
        (Obs.Journal.recorded ());
      Alcotest.check Alcotest.int "capacity" 4 (Obs.Journal.capacity ());
      let es = Obs.Journal.entries () in
      Alcotest.check Alcotest.int "ring keeps capacity entries" 4
        (List.length es);
      Alcotest.check
        (Alcotest.list Alcotest.int)
        "oldest-first, newest survive"
        [ 6; 7; 8; 9 ]
        (List.map (fun (e : Obs.Journal.entry) -> e.seq) es);
      let j = Obs.Journal.to_json () in
      if not (contains j {|"recorded":10|} && contains j {|"dropped":6|}) then
        Alcotest.failf "wraparound accounting wrong: %s" j)

let test_journal_guard_off () =
  Obs.Journal.disarm ();
  Alcotest.check Alcotest.bool "disarmed guard is false" false
    (Obs.Journal.on ());
  with_journal (fun () ->
      Alcotest.check Alcotest.bool "armed guard is true" true
        (Obs.Journal.on ()))

(* --- stall watchdog ------------------------------------------------------ *)

let test_watchdog_stall () =
  let fired = ref 0 in
  (* a huge real interval so only the explicit [poll]s below drive it *)
  Obs.Sampler.arm_watchdog ~strikes:2 ~interval:3600.0
    ~on_stall:(fun () -> incr fired)
    ();
  Fun.protect
    ~finally:(fun () -> Obs.Sampler.disarm_watchdog ())
    (fun () ->
      let base = Obs.Sampler.stalls () in
      Obs.Sampler.poll ();
      Alcotest.check Alcotest.int "one strike is not a stall" 0 !fired;
      Obs.Sampler.poll ();
      Alcotest.check Alcotest.int "second strike fires" 1 !fired;
      Obs.Sampler.poll ();
      Alcotest.check Alcotest.int "fires once per episode" 1 !fired;
      Obs.Sampler.tick ();
      Obs.Sampler.poll ();
      Alcotest.check Alcotest.int "progress re-arms without firing" 1 !fired;
      Obs.Sampler.poll ();
      Obs.Sampler.poll ();
      Alcotest.check Alcotest.int "new stall episode fires again" 2 !fired;
      Alcotest.check Alcotest.int "episodes counted" (base + 2)
        (Obs.Sampler.stalls ()))

(* --- json parser ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let src =
    {|{"schema":"rescheck-journal/1","n":3,"pi":3.5,"neg":-2,"ok":true,"no":false,"nil":null,"s":"a\"b\\c\ndA","l":[1,[2,3],{"k":"v"}]}|}
  in
  let j = Obs.Json.of_string src in
  let open Obs.Json in
  Alcotest.check
    (Alcotest.option Alcotest.string)
    "string member" (Some "rescheck-journal/1")
    (Option.bind (member "schema" j) string);
  Alcotest.check (Alcotest.option Alcotest.int) "int member" (Some 3)
    (Option.bind (member "n" j) int);
  Alcotest.check (Alcotest.option Alcotest.int) "non-integral int is None"
    None
    (Option.bind (member "pi" j) int);
  Alcotest.check (Alcotest.option Alcotest.int) "negative" (Some (-2))
    (Option.bind (member "neg" j) int);
  Alcotest.check (Alcotest.option Alcotest.bool) "bool" (Some true)
    (Option.bind (member "ok" j) bool);
  Alcotest.check
    (Alcotest.option Alcotest.string)
    "escapes decode" (Some "a\"b\\c\ndA")
    (Option.bind (member "s" j) string);
  (match Option.bind (member "l" j) list with
   | Some [ _; _; _ ] -> ()
   | _ -> Alcotest.fail "list member should have 3 elements");
  (* re-render and re-parse: the compact form is stable *)
  let r1 = to_string j in
  let r2 = to_string (of_string r1) in
  Alcotest.check Alcotest.string "render/parse fixpoint" r1 r2

let test_json_rejects_garbage () =
  let bad = [ ""; "{"; "[1,"; {|{"a":}|}; "tru"; {|"unterminated|}; "1 2" ] in
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "parser accepted %S" s)
    bad

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "histogram bucket pins" `Quick test_bucket_index;
        Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
        Alcotest.test_case "counter/gauge/reset" `Quick
          test_counter_gauge_reset;
        Alcotest.test_case "metric kind conflict" `Quick test_kind_conflict;
        Alcotest.test_case "shard merge" `Quick test_shard_merge;
        Alcotest.test_case "shard merge cross-domain" `Quick
          test_shard_merge_cross_domain;
        Alcotest.test_case "span export" `Quick test_span_export;
        Alcotest.test_case "spans silent when off" `Quick
          test_span_off_is_silent;
        Alcotest.test_case "reports identical on/off" `Quick
          test_reports_identical_on_off;
        Alcotest.test_case "prometheus exposition" `Quick test_prom_exposition;
        Alcotest.test_case "journal deterministic dump" `Quick
          test_journal_deterministic_dump;
        Alcotest.test_case "journal ring wraparound" `Quick
          test_journal_wraparound;
        Alcotest.test_case "journal guard off by default" `Quick
          test_journal_guard_off;
        Alcotest.test_case "watchdog fires on stall" `Quick test_watchdog_stall;
        Alcotest.test_case "json parser roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json parser rejects garbage" `Quick
          test_json_rejects_garbage;
      ] );
  ]
