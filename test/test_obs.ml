(* Tests for the telemetry layer: histogram bucketing pins, shard
   merging (including from real worker domains), span export validity,
   and the layer's central invariant — checker reports are identical
   with telemetry on and off.

   The registry update functions deliberately do not check [Ctl.on], so
   most tests drive a private registry directly with telemetry disabled;
   the tests that do enable recording guard the disable in a
   [Fun.protect] so a failure cannot leak enabled state into the rest of
   the suite. *)

module M = Obs.Metrics

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec go i = i + n <= m && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let with_recording f =
  Obs.Ctl.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Ctl.disable ();
      M.reset M.global;
      Obs.Span.reset ();
      Obs.Sampler.reset ())
    f

(* --- histogram bucketing ------------------------------------------------ *)

let test_bucket_index () =
  let pins =
    [ (-7, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4);
      (1023, 10); (1024, 11); (1025, 11); (max_int, 62) ]
  in
  List.iter
    (fun (v, b) ->
      Alcotest.check Alcotest.int (Printf.sprintf "bucket of %d" v) b
        (M.Histogram.bucket_index v))
    pins

let test_histogram_observe () =
  let t = M.create () in
  let h = M.histogram t "h" in
  List.iter (M.Histogram.observe h) [ 0; 1; 3; 3; 1000; 1024 ];
  Alcotest.check Alcotest.int "count" 6 (M.Histogram.count h);
  Alcotest.check (Alcotest.float 1e-9) "sum" 2031.0 (M.Histogram.sum h);
  Alcotest.check
    Alcotest.(list (pair int int))
    "buckets" [ (0, 1); (1, 1); (2, 2); (10, 1); (11, 1) ]
    (M.Histogram.buckets h)

(* --- counters, gauges, reset -------------------------------------------- *)

let test_counter_gauge_reset () =
  let t = M.create () in
  let c = M.counter t "c" and g = M.gauge t "g" in
  M.Counter.incr c 3;
  M.Counter.incr c 4;
  M.Gauge.set g 10.0;
  M.Gauge.set g 2.0;
  Alcotest.check Alcotest.int "counter" 7 (M.Counter.get c);
  Alcotest.check (Alcotest.float 0.0) "gauge level" 2.0 (M.Gauge.get g);
  Alcotest.check (Alcotest.float 0.0) "gauge high-water" 10.0
    (M.Gauge.max_value g);
  M.reset t;
  (* handles survive a reset: same cells, zeroed *)
  Alcotest.check Alcotest.int "counter after reset" 0 (M.Counter.get c);
  Alcotest.check (Alcotest.float 0.0) "gauge after reset" 0.0
    (M.Gauge.max_value g);
  M.Counter.incr c 1;
  Alcotest.check Alcotest.(list (pair string (float 0.0))) "snapshot"
    [ ("c", 1.0); ("g", 0.0) ]
    (M.snapshot t)

let test_kind_conflict () =
  let t = M.create () in
  ignore (M.counter t "x");
  Alcotest.check_raises "kind conflict"
    (Invalid_argument "Obs.Metrics: \"x\" is already registered as another kind")
    (fun () -> ignore (M.gauge t "x"))

(* --- shard merging ------------------------------------------------------ *)

let test_shard_merge () =
  let t = M.create () in
  let c = M.counter t "n" and g = M.gauge t "peak" in
  let h = M.histogram t "width" in
  M.Counter.incr c 5;
  M.Gauge.set g 10.0;
  M.Histogram.observe h 4;
  let s = M.shard () in
  let sc = M.shard_counter s "n" and sg = M.shard_gauge s "peak" in
  let sh = M.shard_histogram s "width" in
  M.Counter.incr sc 7;
  M.Gauge.set sg 3.0;
  M.Histogram.observe sh 4;
  M.Histogram.observe sh 9;
  M.merge_shard t s;
  Alcotest.check Alcotest.int "counters add" 12 (M.Counter.get c);
  Alcotest.check (Alcotest.float 0.0) "gauges keep high-water" 10.0
    (M.Gauge.max_value g);
  Alcotest.check Alcotest.int "histogram counts add" 3 (M.Histogram.count h);
  Alcotest.check
    Alcotest.(list (pair int int))
    "histogram buckets add" [ (3, 2); (4, 1) ]
    (M.Histogram.buckets h);
  (* merging zeroes the shard, so a second merge cannot double-count *)
  M.merge_shard t s;
  Alcotest.check Alcotest.int "merge is move, not copy" 12 (M.Counter.get c);
  (* a shard gauge above the parent's high-water does raise it *)
  M.Gauge.set sg 99.0;
  M.merge_shard t s;
  Alcotest.check (Alcotest.float 0.0) "higher shard gauge wins" 99.0
    (M.Gauge.max_value g)

let test_shard_merge_cross_domain () =
  let t = M.create () in
  let c = M.counter t "done" in
  let shards = Array.init 4 (fun _ -> M.shard ()) in
  let worker s () =
    let sc = M.shard_counter s "done" in
    for _ = 1 to 1000 do
      M.Counter.incr sc 1
    done
  in
  let domains =
    Array.map (fun s -> Domain.spawn (worker s)) shards
  in
  Array.iter Domain.join domains;
  (* all workers are at the barrier (joined): fold their shards in *)
  Array.iter (M.merge_shard t) shards;
  Alcotest.check Alcotest.int "all increments land" 4000 (M.Counter.get c)

(* --- span export -------------------------------------------------------- *)

let test_span_export () =
  with_recording @@ fun () ->
  Obs.Span.scope ~cat:"test" "outer" (fun () ->
      Obs.Span.scope ~cat:"test" ~args:[ ("width", 3) ] "inner" (fun () ->
          ignore (Sys.opaque_identity 0)));
  Obs.Span.instant ~cat:"test" "mark";
  Alcotest.check Alcotest.int "three events" 3 (Obs.Span.count ());
  let json = String.trim (Obs.Span.to_trace_json ()) in
  Alcotest.check Alcotest.bool "is a JSON array" true
    (String.length json >= 2
    && json.[0] = '['
    && json.[String.length json - 1] = ']');
  (* every event is a Chrome "complete" event with the stable prefix *)
  let lines =
    String.split_on_char '\n' json
    |> List.filter (fun l -> String.length l > 0 && l.[0] <> '[' && l.[0] <> ']')
  in
  Alcotest.check Alcotest.int "one event per line" 3 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.check Alcotest.bool "ph X" true (contains l "\"ph\":\"X\"");
      Alcotest.check Alcotest.bool "has ts" true (contains l "\"ts\":"))
    lines;
  (* sorted by start timestamp *)
  let ts_of l =
    let i = ref 0 in
    while not (contains (String.sub l !i 5) "\"ts\":") do
      incr i
    done;
    Scanf.sscanf (String.sub l (!i + 5) (String.length l - !i - 5)) "%f" Fun.id
  in
  let ts = List.map ts_of lines in
  Alcotest.check Alcotest.bool "monotone ts" true (List.sort compare ts = ts);
  (* args survive export *)
  let inner = List.find (fun l -> contains l "\"inner\"") lines in
  Alcotest.check Alcotest.bool "inner carries args" true
    (contains inner "\"args\":{\"width\":3}");
  (* the aggregate view the run profile embeds *)
  match Obs.Span.aggregate () with
  | [ ("inner", "test", 1, _); ("mark", "test", 1, _); ("outer", "test", 1, _) ]
    -> ()
  | other ->
    Alcotest.failf "unexpected aggregate (%d rows)" (List.length other)

let test_span_off_is_silent () =
  Obs.Span.reset ();
  Obs.Span.scope "ghost" (fun () -> ());
  Obs.Span.instant "ghost";
  Alcotest.check Alcotest.int "nothing recorded when off" 0
    (Obs.Span.count ());
  Alcotest.check Alcotest.string "empty timeline" "[\n]"
    (String.trim (Obs.Span.to_trace_json ()))

(* --- telemetry cannot perturb checked artifacts ------------------------- *)

let report_of f strategy =
  match Pipeline.Validate.run ~strategy f with
  | { verdict = Pipeline.Validate.Unsat_verified r; _ } -> r
  | _ -> Alcotest.fail "expected unsat-verified"

let test_reports_identical_on_off () =
  let f = Gen.Php.unsat ~holes:4 in
  List.iter
    (fun (strategy, tag) ->
      let off = report_of f strategy in
      let on =
        with_recording @@ fun () ->
        Obs.Sampler.configure ~interval:0.0001 ~heartbeat:false ();
        Fun.protect
          ~finally:(fun () -> Obs.Sampler.disarm ())
          (fun () -> report_of f strategy)
      in
      Alcotest.check Alcotest.string
        (tag ^ ": report identical with telemetry on")
        (Checker.Report.to_json off)
        (Checker.Report.to_json on))
    [
      (Pipeline.Validate.Depth_first, "df");
      (Pipeline.Validate.Breadth_first, "bf");
      (Pipeline.Validate.Hybrid, "hybrid");
      (Pipeline.Validate.Parallel 2, "par");
      (Pipeline.Validate.Online, "online");
    ]

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "histogram bucket pins" `Quick test_bucket_index;
        Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
        Alcotest.test_case "counter/gauge/reset" `Quick
          test_counter_gauge_reset;
        Alcotest.test_case "metric kind conflict" `Quick test_kind_conflict;
        Alcotest.test_case "shard merge" `Quick test_shard_merge;
        Alcotest.test_case "shard merge cross-domain" `Quick
          test_shard_merge_cross_domain;
        Alcotest.test_case "span export" `Quick test_span_export;
        Alcotest.test_case "spans silent when off" `Quick
          test_span_off_is_silent;
        Alcotest.test_case "reports identical on/off" `Quick
          test_reports_identical_on_off;
      ] );
  ]
