(* Tests for the shared resolution kernel's sorted-merge resolution and
   the arena-backed clause store beneath it, including agreement with the
   reference Clause.resolve. *)

let kernel () = Proof.Kernel.create (Sat.Cnf.create 64)

let resolve k c1 c2 =
  Proof.Kernel.resolve_lits k ~context:"test" ~c1_id:1 ~c2_id:2 c1 c2

let sorted c = List.sort Int.compare (Sat.Clause.to_ints c)

let test_basic () =
  let k = kernel () in
  let r, pivot =
    resolve k (Sat.Clause.of_ints [ 1; 2 ]) (Sat.Clause.of_ints [ -2; 3 ])
  in
  Alcotest.check Alcotest.int "pivot" 2 pivot;
  Alcotest.check (Alcotest.list Alcotest.int) "resolvent" [ 1; 3 ] (sorted r)

let test_dedup () =
  let k = kernel () in
  let r, _ =
    resolve k (Sat.Clause.of_ints [ 1; 3; 5 ]) (Sat.Clause.of_ints [ -1; 3; 5 ])
  in
  Alcotest.check (Alcotest.list Alcotest.int) "shared literals once"
    [ 3; 5 ] (sorted r)

let test_empty_resolvent () =
  let k = kernel () in
  let r, _ = resolve k (Sat.Clause.of_ints [ 9 ]) (Sat.Clause.of_ints [ -9 ]) in
  Alcotest.check Alcotest.int "empty" 0 (Array.length r)

let expect_failure f pred name =
  try
    ignore (f ());
    Alcotest.failf "%s: no failure raised" name
  with Checker.Diagnostics.Check_failed d ->
    if not (pred d) then
      Alcotest.failf "%s: wrong diagnostic %s" name
        (Checker.Diagnostics.to_string d)

let test_no_clash () =
  let k = kernel () in
  expect_failure
    (fun () -> resolve k (Sat.Clause.of_ints [ 1; 2 ]) (Sat.Clause.of_ints [ 2; 3 ]))
    (function Checker.Diagnostics.No_clash _ -> true | _ -> false)
    "no clash"

let test_multiple_clash () =
  let k = kernel () in
  expect_failure
    (fun () ->
      resolve k (Sat.Clause.of_ints [ 1; 2; 5 ]) (Sat.Clause.of_ints [ -1; -2 ]))
    (function
      | Checker.Diagnostics.Multiple_clash m -> m.vars = [ 1; 2 ]
      | _ -> false)
    "multiple clash"

let test_kernel_reuse () =
  (* scratch state from earlier rounds must not leak *)
  let k = kernel () in
  ignore (resolve k (Sat.Clause.of_ints [ 1; 2 ]) (Sat.Clause.of_ints [ -2; 3 ]));
  let r, _ =
    resolve k (Sat.Clause.of_ints [ 4; 5 ]) (Sat.Clause.of_ints [ -5; 6 ])
  in
  Alcotest.check (Alcotest.list Alcotest.int) "second round clean" [ 4; 6 ]
    (sorted r)

(* chain over pre-allocated store clauses, watching the step counter *)
let chain_over k clauses ids ~learned_id =
  let db = Proof.Kernel.db k in
  let handles =
    Array.map (fun c -> Proof.Clause_db.alloc db c) clauses
  in
  let before = Proof.Kernel.resolution_steps k in
  let h =
    Proof.Kernel.chain_ids k ~context:"test"
      ~fetch:(fun i -> handles.(i))
      ~learned_id ids
  in
  (Proof.Clause_db.lits db h, Proof.Kernel.resolution_steps k - before)

let test_chain_single () =
  let k = kernel () in
  let c, steps =
    chain_over k [| [||]; Sat.Clause.of_ints [ 1; 2 ] |] [| 1 |] ~learned_id:9
  in
  Alcotest.check Alcotest.int "no steps" 0 steps;
  Alcotest.check (Alcotest.list Alcotest.int) "clause itself" [ 1; 2 ] (sorted c)

let test_chain_sequence () =
  (* (1 2)(−2 3)(−3 4) chains to (1 4) in two steps *)
  let k = kernel () in
  let c, steps =
    chain_over k
      [| [||]; Sat.Clause.of_ints [ 1; 2 ]; Sat.Clause.of_ints [ -2; 3 ];
         Sat.Clause.of_ints [ -3; 4 ] |]
      [| 1; 2; 3 |] ~learned_id:9
  in
  Alcotest.check Alcotest.int "two steps" 2 steps;
  Alcotest.check (Alcotest.list Alcotest.int) "chained resolvent" [ 1; 4 ]
    (sorted c)

let test_chain_empty_sources () =
  let k = kernel () in
  expect_failure
    (fun () ->
      Proof.Kernel.chain_ids k ~context:"test"
        ~fetch:(fun _ -> Alcotest.fail "unexpected fetch")
        ~learned_id:7 [||])
    (function Checker.Diagnostics.Empty_source_list 7 -> true | _ -> false)
    "empty sources"

(* --- the clause store ---------------------------------------------------- *)

let test_db_sorts_and_dedups () =
  let db = Proof.Clause_db.create () in
  let h = Proof.Clause_db.alloc db (Sat.Clause.of_ints [ 3; -1; 3; 2; -1 ]) in
  Alcotest.check (Alcotest.list Alcotest.int) "sorted, duplicate-free"
    [ -1; 2; 3 ]
    (sorted (Proof.Clause_db.lits db h));
  (* both phases of a variable are distinct literals and are kept *)
  let t = Proof.Clause_db.alloc db (Sat.Clause.of_ints [ 1; -1 ]) in
  Alcotest.check Alcotest.int "tautology keeps both phases" 2
    (Proof.Clause_db.size db t)

let test_db_refcount_and_reuse () =
  let db = Proof.Clause_db.create () in
  let h = Proof.Clause_db.alloc db (Sat.Clause.of_ints [ 1; 2; 3 ]) in
  Proof.Clause_db.retain db h;
  Alcotest.check Alcotest.int "refcount after retain" 2
    (Proof.Clause_db.refcount db h);
  Proof.Clause_db.release db h;
  Alcotest.check Alcotest.int "still live" 1 (Proof.Clause_db.live_clauses db);
  Proof.Clause_db.release db h;
  Alcotest.check Alcotest.int "drained" 0 (Proof.Clause_db.live_clauses db);
  (* a same-capacity allocation reuses the freed slot *)
  let h' = Proof.Clause_db.alloc db (Sat.Clause.of_ints [ 4; 5; 6 ]) in
  Alcotest.check Alcotest.int "slot recycled" h h';
  Alcotest.check Alcotest.int "peak live" 1 (Proof.Clause_db.peak_live_clauses db)

let test_db_meter_accounting () =
  let meter = Harness.Meter.create () in
  let db = Proof.Clause_db.create ~meter () in
  let h = Proof.Clause_db.alloc db (Sat.Clause.of_ints [ 1; 2 ]) in
  (* historical checker rate: literals + 3 words *)
  Alcotest.check Alcotest.int "charged" 5 (Harness.Meter.live_words meter);
  Proof.Clause_db.release db h;
  Alcotest.check Alcotest.int "credited" 0 (Harness.Meter.live_words meter);
  Alcotest.check Alcotest.int "peak" 5 (Harness.Meter.peak_words meter)

let test_db_grows () =
  let db = Proof.Clause_db.create () in
  (* push well past the initial arena capacity *)
  let handles =
    List.init 500 (fun i ->
        Proof.Clause_db.alloc db (Sat.Clause.of_ints [ i + 1; -(i + 2); i + 3 ]))
  in
  List.iteri
    (fun i h ->
      Alcotest.check (Alcotest.list Alcotest.int)
        (Printf.sprintf "clause %d intact" i)
        (List.sort Int.compare [ i + 1; -(i + 2); i + 3 ])
        (sorted (Proof.Clause_db.lits db h)))
    handles

(* agreement with the reference implementation on random valid pairs *)
let prop_matches_reference =
  Helpers.qtest ~count:300 "kernel = Clause.resolve"
    QCheck.(small_int)
    (fun seed ->
      let rng = Sat.Rng.create seed in
      let nvars = 10 in
      let v = 1 + Sat.Rng.int rng nvars in
      let lits_without exclude n =
        List.init n (fun _ ->
            let u = ref v in
            while List.mem !u exclude do
              u := 1 + Sat.Rng.int rng nvars
            done;
            Sat.Lit.make !u (Sat.Rng.bool rng))
      in
      let c1 =
        Sat.Clause.of_lits (Sat.Lit.pos v :: lits_without [ v ] (Sat.Rng.int rng 5))
      in
      let c2 =
        Sat.Clause.of_lits (Sat.Lit.neg v :: lits_without [ v ] (Sat.Rng.int rng 5))
      in
      match Sat.Clause.clashing_vars c1 c2 with
      | [ u ] when u = v ->
        let reference = Sat.Clause.resolve c1 c2 v in
        let k = Proof.Kernel.create (Sat.Cnf.create nvars) in
        let r, pivot =
          Proof.Kernel.resolve_lits k ~context:"qc" ~c1_id:1 ~c2_id:2 c1 c2
        in
        pivot = v && sorted r = sorted reference
      | _ -> QCheck.assume_fail ())

let suite =
  [
    ( "resolution-kernel",
      [
        Alcotest.test_case "basic" `Quick test_basic;
        Alcotest.test_case "dedup" `Quick test_dedup;
        Alcotest.test_case "empty resolvent" `Quick test_empty_resolvent;
        Alcotest.test_case "no clash" `Quick test_no_clash;
        Alcotest.test_case "multiple clash" `Quick test_multiple_clash;
        Alcotest.test_case "kernel reuse" `Quick test_kernel_reuse;
        Alcotest.test_case "chain single" `Quick test_chain_single;
        Alcotest.test_case "chain sequence" `Quick test_chain_sequence;
        Alcotest.test_case "chain empty" `Quick test_chain_empty_sources;
        Alcotest.test_case "db sorts and dedups" `Quick test_db_sorts_and_dedups;
        Alcotest.test_case "db refcount and reuse" `Quick
          test_db_refcount_and_reuse;
        Alcotest.test_case "db meter accounting" `Quick test_db_meter_accounting;
        Alcotest.test_case "db arena growth" `Quick test_db_grows;
        prop_matches_reference;
      ] );
  ]
