The rescheck CLI, end to end on a pigeonhole instance.  Timing and
byte-count lines are filtered out for determinism.

  $ R=../bin/rescheck.exe

Generate a benchmark instance:

  $ $R gen php_8 -o php8.cnf
  c php_8: 72 vars, 297 clauses -> php8.cnf

  $ head -2 php8.cnf
  c php_8: analogue of hole-n (control)
  p cnf 72 297

Solve with a trace (exit code 20 = UNSAT):

  $ $R solve php8.cnf --trace php8.trc > solve.out; echo "exit $?"
  exit 20
  $ grep -o "s UNSATISFIABLE" solve.out
  s UNSATISFIABLE

Check the trace with each strategy:

  $ $R check php8.cnf php8.trc -s df | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R check php8.cnf php8.trc -s bf | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R check php8.cnf php8.trc -s hybrid | grep "^s "
  s VERIFIED UNSATISFIABLE

Lint the trace: structural validation in one streaming pass (exit 0 =
clean; warnings do not fail the lint):

  $ $R lint php8.trc -f php8.cnf > lint.out; echo "exit $?"
  exit 0
  $ grep "^s " lint.out
  s LINT OK

A corrupted (truncated) trace: the linter pinpoints the damage with a
stable error code and a position, and exits 1:

  $ head -c 2000 php8.trc > broken.trc
  $ $R lint broken.trc > lint-broken.out; echo "exit $?"
  exit 1
  $ grep -c "error L001" lint-broken.out
  1
  $ grep -c "error L301" lint-broken.out
  1
  $ grep "^s " lint-broken.out
  s LINT FAILED

The same report as JSON for tooling:

  $ $R lint broken.trc --json | grep -o '"code":"L001"'
  "code":"L001"

`check` runs the linter as a pre-pass, so structural corruption is a
bad-input failure (exit code 2), distinct from a semantic check failure:

  $ $R check php8.cnf broken.trc > check.out; echo "exit $?"
  exit 2
  $ grep "^s " check.out
  s BAD TRACE (lint)

A structurally well-formed trace that proves nothing is the checker's
job, not the linter's: lint passes, the resolution check fails (exit 1):

  $ printf 'p cnf 1 2\n1 0\n-1 0\n' > min.cnf
  $ printf 't 1 2\nCL 3 1 1\nVAR 1 1 1\nCONF 3\n' > bad.trc
  $ $R lint bad.trc | grep "^s "
  s LINT OK
  $ $R check min.cnf bad.trc > semantic.out; echo "exit $?"
  exit 1
  $ grep "^s " semantic.out
  s CHECK FAILED

A missing input file is a usage problem (exit code 2):

  $ $R lint no-such.trc 2>/dev/null; echo "exit $?"
  exit 2
  $ $R check php8.cnf no-such.trc 2>/dev/null; echo "exit $?"
  exit 2

The trace encoding is auto-detected; an empty or unclassifiable trace is
a usage error unless --format forces the encoding:

  $ : > empty.trc
  $ $R check php8.cnf empty.trc 2>&1 | grep -c "cannot tell the trace encoding"
  1
  $ $R check php8.cnf empty.trc 2>/dev/null; echo "exit $?"
  exit 2
  $ $R lint empty.trc 2>/dev/null; echo "exit $?"
  exit 2

A magic-less binary fragment only checks when the format is forced:

  $ $R solve php8.cnf --trace php8.bin --format binary > /dev/null
  [20]
  $ tail -c +5 php8.bin > nomagic.bin
  $ $R check php8.cnf nomagic.bin 2>/dev/null; echo "exit $?"
  exit 2
  $ $R check php8.cnf nomagic.bin --format binary -s bf | grep "^s "
  s VERIFIED UNSATISFIABLE

`check` reads the trace from stdin with `-`, spooling it for the
multi-pass strategies:

  $ $R check php8.cnf - -s bf < php8.trc | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R check php8.cnf - -s hybrid < php8.bin | grep "^s "
  s VERIFIED UNSATISFIABLE

The mmap'd and block-buffered data planes are interchangeable: every
strategy produces byte-identical reports either way (`--io channel`
forces the buffered path; the default maps regular files):

  $ for s in df bf hybrid par; do
  >   $R check php8.cnf php8.trc -s $s --io mmap --json > io-m.json
  >   $R check php8.cnf php8.trc -s $s --io channel --json > io-c.json
  >   cmp io-m.json io-c.json && echo "$s identical"
  > done
  df identical
  bf identical
  hybrid identical
  par identical
  $ $R check php8.cnf php8.bin -s bf --io mmap --json > iob-m.json
  $ $R check php8.cnf php8.bin -s bf --io channel --json > iob-c.json
  $ cmp iob-m.json iob-c.json && echo "binary identical"
  binary identical

Error reports are byte-identical too — same diagnostics, same lint
positions, same exit code on both paths:

  $ $R check php8.cnf broken.trc --io mmap > io-m.out 2>&1; echo "exit $?"
  exit 2
  $ $R check php8.cnf broken.trc --io channel > io-c.out 2>&1; echo "exit $?"
  exit 2
  $ cmp io-m.out io-c.out && echo "identical"
  identical

A trace file shorter than the 4-byte magic is ambiguous on both paths,
with the same message:

  $ printf 'ZK' > tiny.trc
  $ $R check php8.cnf tiny.trc 2> tiny-m.err; echo "exit $?"
  exit 2
  $ $R check php8.cnf tiny.trc --io channel 2> tiny-c.err; echo "exit $?"
  exit 2
  $ cmp tiny-m.err tiny-c.err && echo "identical"
  identical

A FIFO is not a regular file, so `check` streams it through the
channel path (spooling for the second pass) regardless of `--io`:

  $ mkfifo pipe.trc
  $ cat php8.trc > pipe.trc &
  $ $R check php8.cnf pipe.trc -s bf | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ wait

Online validation tees the live solver stream into the linter and the
checker's counting pass; the verdict matches the file-based path and the
encoder never buffers more than its flush threshold:

  $ $R validate php8.cnf --mode online > online.out; echo "exit $?"
  exit 20
  $ grep "^s " online.out
  s UNSATISFIABLE (proof verified)
  $ grep -c "^c online: peak buffered .* live lint clean" online.out
  1

`--mode online` belongs to validate, not check:

  $ $R check php8.cnf php8.trc --mode online 2>/dev/null; echo "exit $?"
  exit 2

The runtime sanitizer validates solver invariants at every decision
boundary without changing the answer:

  $ $R solve php8.cnf --sanitize > /dev/null; echo "exit $?"
  exit 20

A tiny simulated memory budget reproduces the paper's memory-out rows:

  $ $R check php8.cnf php8.trc --mem-limit 1000 > memout.out; echo "exit $?"
  exit 3
  $ grep -o "s MEMORY OUT" memout.out
  s MEMORY OUT

Solve-and-validate in one step:

  $ $R validate php8.cnf | grep "^s "
  s UNSATISFIABLE (proof verified)

Unsat-core iteration (php needs every clause, fixed point after round 1):

  $ $R core php8.cnf | grep "fixed point"
  c fixed point: true after 1 rounds

Trim the trace to its proof core and re-check it:

  $ $R trim php8.cnf php8.trc -o trimmed.trc > /dev/null; echo "exit $?"
  exit 0
  $ $R check php8.cnf trimmed.trc -s bf | grep "^s "
  s VERIFIED UNSATISFIABLE

Convert to DRUP and verify by reverse unit propagation:

  $ $R drup php8.cnf php8.trc -o php8.drup | grep -c "DRUP written"
  1

A satisfiable instance reports a verified model (exit code 10):

  $ printf 'p cnf 2 2\n1 2 0\n-1 2 0\n' > sat.cnf
  $ $R validate sat.cnf > sat.out; echo "exit $?"
  exit 10
  $ grep "^s " sat.out
  s SATISFIABLE (model verified)

Model checking built-in transition systems:

  $ $R mc ring:5 --unbounded | grep -o "s SAFE"
  s SAFE
  $ $R mc ring-buggy:4 -k 4 > mc.out; echo "exit $?"
  exit 1
  $ grep "^s " mc.out
  s UNSAFE (counterexample at depth 1)

Preprocessing reports its statistics:

  $ printf 'p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n' > units.cnf
  $ $R simplify units.cnf | grep "^s "
  s SATISFIABLE (by preprocessing)
