The rescheck CLI, end to end on a pigeonhole instance.  Timing and
byte-count lines are filtered out for determinism.

  $ R=../bin/rescheck.exe

Generate a benchmark instance:

  $ $R gen php_8 -o php8.cnf
  c php_8: 72 vars, 297 clauses -> php8.cnf

  $ head -2 php8.cnf
  c php_8: analogue of hole-n (control)
  p cnf 72 297

Solve with a trace (exit code 20 = UNSAT):

  $ $R solve php8.cnf --trace php8.trc > solve.out; echo "exit $?"
  exit 20
  $ grep -o "s UNSATISFIABLE" solve.out
  s UNSATISFIABLE

Check the trace with each strategy:

  $ $R check php8.cnf php8.trc -s df | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R check php8.cnf php8.trc -s bf | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R check php8.cnf php8.trc -s hybrid | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R check php8.cnf php8.trc -s window --window 16 | grep "^s "
  s VERIFIED UNSATISFIABLE

The hint converter rewrites a trace into the deletion-hinted format
(version 2), which the one-pass checker validates in a single read;
stripping the hints recovers the original byte for byte:

  $ $R hint php8.trc -o php8.hinted.trc | grep -c "^c hint: "
  1
  $ head -1 php8.hinted.trc
  v 2
  $ $R check php8.cnf php8.hinted.trc -s hint | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R check php8.cnf php8.trc -s hint | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R hint php8.hinted.trc -o php8.stripped.trc --strip > /dev/null
  $ cmp php8.trc php8.stripped.trc && echo same
  same

The non-hint modes refuse a hinted trace up front with a typed version
error (bad input, exit 2), never a mid-check parse crash:

  $ $R check php8.cnf php8.hinted.trc -s bf > version.out; echo "exit $?"
  exit 2
  $ grep "^s " version.out
  s BAD TRACE (version)
  $ $R check php8.cnf php8.hinted.trc -s par --jobs 2 2>/dev/null | grep "^s "
  s BAD TRACE (version)

A bad --window value is a usage error:

  $ $R check php8.cnf php8.trc -s window --window 0 2>/dev/null; echo "exit $?"
  exit 2

Lint the trace: structural validation in one streaming pass (exit 0 =
clean; warnings do not fail the lint):

  $ $R lint php8.trc -f php8.cnf > lint.out; echo "exit $?"
  exit 0
  $ grep "^s " lint.out
  s LINT OK

A corrupted (truncated) trace: the linter pinpoints the damage with a
stable error code and a position, and exits 1:

  $ head -c 2000 php8.trc > broken.trc
  $ $R lint broken.trc > lint-broken.out; echo "exit $?"
  exit 1
  $ grep -c "error L001" lint-broken.out
  1
  $ grep -c "error L301" lint-broken.out
  1
  $ grep "^s " lint-broken.out
  s LINT FAILED

The same report as JSON for tooling:

  $ $R lint broken.trc --json | grep -o '"code":"L001"'
  "code":"L001"

`check` runs the linter as a pre-pass, so structural corruption is a
bad-input failure (exit code 2), distinct from a semantic check failure:

  $ $R check php8.cnf broken.trc > check.out; echo "exit $?"
  exit 2
  $ grep "^s " check.out
  s BAD TRACE (lint)

With the formula in hand the pre-lint simulates chains over original
clauses, so a chain step with no clashing variable is caught before the
kernel runs (exit 2) even though the structural lint alone passes:

  $ printf 'p cnf 1 2\n1 0\n-1 0\n' > min.cnf
  $ printf 't 1 2\nCL 3 1 1\nVAR 1 1 1\nCONF 3\n' > bad.trc
  $ $R lint bad.trc | grep "^s "
  s LINT OK
  $ $R check min.cnf bad.trc > semantic.out; echo "exit $?"
  exit 2
  $ grep "^s " semantic.out
  s BAD TRACE (lint)

A trace that lints clean but proves nothing is still the checker's job:
the resolution steps are fine, the conflict claim is not (exit 1):

  $ printf 'p cnf 2 2\n1 2 0\n-1 2 0\n' > weak.cnf
  $ printf 't 2 2\nCL 3 1 2\nCONF 3\n' > weak.trc
  $ $R lint -f weak.cnf weak.trc | grep "^s "
  s LINT OK
  $ $R check weak.cnf weak.trc > semantic.out; echo "exit $?"
  exit 1
  $ grep "^s " semantic.out
  s CHECK FAILED

A missing input file is a usage problem (exit code 2):

  $ $R lint no-such.trc 2>/dev/null; echo "exit $?"
  exit 2
  $ $R check php8.cnf no-such.trc 2>/dev/null; echo "exit $?"
  exit 2

The trace encoding is auto-detected; an empty or unclassifiable trace is
a usage error unless --format forces the encoding:

  $ : > empty.trc
  $ $R check php8.cnf empty.trc 2>&1 | grep -c "cannot tell the trace encoding"
  1
  $ $R check php8.cnf empty.trc 2>/dev/null; echo "exit $?"
  exit 2
  $ $R lint empty.trc 2>/dev/null; echo "exit $?"
  exit 2

A magic-less binary fragment only checks when the format is forced:

  $ $R solve php8.cnf --trace php8.bin --format binary > /dev/null
  [20]
  $ tail -c +5 php8.bin > nomagic.bin
  $ $R check php8.cnf nomagic.bin 2>/dev/null; echo "exit $?"
  exit 2
  $ $R check php8.cnf nomagic.bin --format binary -s bf | grep "^s "
  s VERIFIED UNSATISFIABLE

`check` reads the trace from stdin with `-`, spooling it for the
multi-pass strategies:

  $ $R check php8.cnf - -s bf < php8.trc | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R check php8.cnf - -s hybrid < php8.bin | grep "^s "
  s VERIFIED UNSATISFIABLE

The mmap'd and block-buffered data planes are interchangeable: every
strategy produces byte-identical reports either way (`--io channel`
forces the buffered path; the default maps regular files):

  $ for s in df bf hybrid par; do
  >   $R check php8.cnf php8.trc -s $s --io mmap --json > io-m.json
  >   $R check php8.cnf php8.trc -s $s --io channel --json > io-c.json
  >   cmp io-m.json io-c.json && echo "$s identical"
  > done
  df identical
  bf identical
  hybrid identical
  par identical
  $ $R check php8.cnf php8.bin -s bf --io mmap --json > iob-m.json
  $ $R check php8.cnf php8.bin -s bf --io channel --json > iob-c.json
  $ cmp iob-m.json iob-c.json && echo "binary identical"
  binary identical

Error reports are byte-identical too — same diagnostics, same lint
positions, same exit code on both paths:

  $ $R check php8.cnf broken.trc --io mmap > io-m.out 2>&1; echo "exit $?"
  exit 2
  $ $R check php8.cnf broken.trc --io channel > io-c.out 2>&1; echo "exit $?"
  exit 2
  $ cmp io-m.out io-c.out && echo "identical"
  identical

A trace file shorter than the 4-byte magic is ambiguous on both paths,
with the same message:

  $ printf 'ZK' > tiny.trc
  $ $R check php8.cnf tiny.trc 2> tiny-m.err; echo "exit $?"
  exit 2
  $ $R check php8.cnf tiny.trc --io channel 2> tiny-c.err; echo "exit $?"
  exit 2
  $ cmp tiny-m.err tiny-c.err && echo "identical"
  identical

A FIFO is not a regular file, so `check` streams it through the
channel path (spooling for the second pass) regardless of `--io`:

  $ mkfifo pipe.trc
  $ cat php8.trc > pipe.trc &
  $ $R check php8.cnf pipe.trc -s bf | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ wait

Online validation tees the live solver stream into the linter and the
checker's counting pass; the verdict matches the file-based path and the
encoder never buffers more than its flush threshold:

  $ $R validate php8.cnf --mode online > online.out; echo "exit $?"
  exit 20
  $ grep "^s " online.out
  s UNSATISFIABLE (proof verified)
  $ grep -c "^c online: peak buffered .* live lint clean" online.out
  1

`--mode online` belongs to validate, not check:

  $ $R check php8.cnf php8.trc --mode online 2>/dev/null; echo "exit $?"
  exit 2

The runtime sanitizer validates solver invariants at every decision
boundary without changing the answer:

  $ $R solve php8.cnf --sanitize > /dev/null; echo "exit $?"
  exit 20

A tiny simulated memory budget reproduces the paper's memory-out rows:

  $ $R check php8.cnf php8.trc --mem-limit 1000 > memout.out; echo "exit $?"
  exit 3
  $ grep -o "s MEMORY OUT" memout.out
  s MEMORY OUT

Solve-and-validate in one step:

  $ $R validate php8.cnf | grep "^s "
  s UNSATISFIABLE (proof verified)

Unsat-core iteration (php needs every clause, fixed point after round 1):

  $ $R core php8.cnf | grep "fixed point"
  c fixed point: true after 1 rounds

Whole-proof static analysis: one streaming pass over ids and antecedent
lists profiles the resolution DAG — reachability, duplicates, shape,
lifetimes, predicted peak-live per strategy — and reports dead or
duplicated derivations as L5xx lint warnings:

  $ $R analyze php8.trc > analyze.out; echo "exit $?"
  exit 0
  $ grep "^s " analyze.out
  s ANALYZE OK
  $ grep -c "^proof dag:" analyze.out
  1
  $ grep -c "^predicted peak live:" analyze.out
  1
  $ [ $(grep -c "warning L501" analyze.out) -gt 0 ] && echo "dead derivations flagged"
  dead derivations flagged

The same profile as JSON, on either encoding:

  $ $R analyze php8.trc --json | grep -o '"predicted_peak_live":{"df":[0-9]*' | grep -c df
  1
  $ $R analyze php8.bin --json > analyze-bin.json
  $ grep -o '"format":"binary"' analyze-bin.json
  "format":"binary"
  $ grep -o '"by_code":{[^}]*"L501":[0-9]*' analyze-bin.json | grep -c L501
  1

Structurally broken input is a bad-input failure for analyze and trim
alike (exit 2), the same contract as check:

  $ $R analyze broken.trc > analyze-broken.out; echo "exit $?"
  exit 2
  $ grep "^s " analyze-broken.out
  s BAD TRACE (analyze)
  $ $R analyze empty.trc 2>/dev/null; echo "exit $?"
  exit 2
  $ $R analyze no-such.trc 2>/dev/null; echo "exit $?"
  exit 2
  $ $R trim php8.cnf broken.trc -o /dev/null > trim-broken.out; echo "exit $?"
  exit 2
  $ grep "^s " trim-broken.out
  s BAD TRACE (analyze)
  $ $R trim php8.cnf empty.trc -o /dev/null 2>/dev/null; echo "exit $?"
  exit 2
  $ $R trim php8.cnf no-such.trc -o /dev/null 2>/dev/null; echo "exit $?"
  exit 2

The per-code summary also lands in the lint JSON:

  $ $R lint broken.trc --json | grep -o '"by_code":{[^}]*}' | grep -c L001
  1

`check --analyze` and `validate --analyze` surface the same profile as a
two-line summary next to the verdict:

  $ $R check php8.cnf php8.trc --analyze > check-analyze.out
  $ grep -c "^c dag:" check-analyze.out
  2
  $ $R validate php8.cnf --analyze | grep -c "^c dag:"
  2
  $ $R validate php8.cnf --mode online --analyze | grep -c "^c dag:"
  2

Trim the trace to its proof core and re-check it:

  $ $R trim php8.cnf php8.trc -o trimmed.trc > trim.out; echo "exit $?"
  exit 0
  $ grep -c "^c trim: kept" trim.out
  1
  $ $R check php8.cnf trimmed.trc -s bf | grep "^s "
  s VERIFIED UNSATISFIABLE

Every strategy reaches the same verdict and core on the trimmed trace as
on the original (the dead derivations it drops were never resolved on):

  $ for s in df bf hybrid par; do
  >   $R check php8.cnf php8.trc -s $s | grep "^s " > v-orig.out
  >   $R check php8.cnf trimmed.trc -s $s | grep "^s " > v-trim.out
  >   cmp v-orig.out v-trim.out && echo "$s identical"
  > done
  df identical
  bf identical
  hybrid identical
  par identical
  $ $R check php8.cnf php8.trc -s df --json | grep -o '"core_original_ids":\[[0-9,]*\]' > core-orig.out
  $ $R check php8.cnf trimmed.trc -s df --json | grep -o '"core_original_ids":\[[0-9,]*\]' > core-trim.out
  $ cmp core-orig.out core-trim.out && echo "core identical"
  core identical

Trimming is idempotent — a second trim drops nothing and reproduces the
same bytes:

  $ $R trim php8.cnf trimmed.trc -o trimmed2.trc > /dev/null
  $ cmp trimmed.trc trimmed2.trc && echo "idempotent"
  idempotent

The output encoding defaults to the input's and can be forced; a binary
trim of the ASCII trace checks the same:

  $ $R trim php8.cnf php8.trc -o trimmed.bin --format binary > /dev/null
  $ $R check php8.cnf trimmed.bin -s bf | grep "^s "
  s VERIFIED UNSATISFIABLE

`trim --checked` replays the resolutions through the depth-first checker
before writing (the slow, paranoid path):

  $ $R trim php8.cnf php8.trc -o trimmed-dfs.trc --checked > /dev/null; echo "exit $?"
  exit 0
  $ $R check php8.cnf trimmed-dfs.trc -s df | grep "^s "
  s VERIFIED UNSATISFIABLE

Convert to DRUP and verify by reverse unit propagation:

  $ $R drup php8.cnf php8.trc -o php8.drup | grep -c "DRUP written"
  1

A satisfiable instance reports a verified model (exit code 10):

  $ printf 'p cnf 2 2\n1 2 0\n-1 2 0\n' > sat.cnf
  $ $R validate sat.cnf > sat.out; echo "exit $?"
  exit 10
  $ grep "^s " sat.out
  s SATISFIABLE (model verified)

Model checking built-in transition systems:

  $ $R mc ring:5 --unbounded | grep -o "s SAFE"
  s SAFE
  $ $R mc ring-buggy:4 -k 4 > mc.out; echo "exit $?"
  exit 1
  $ grep "^s " mc.out
  s UNSAFE (counterexample at depth 1)

Preprocessing reports per-pass statistics; a formula decided outright
exits like solve (10/20):

  $ printf 'p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n' > units.cnf
  $ $R simplify units.cnf; echo "exit $?"
  c units 3, pures 0, tautologies 0, subsumed 0, duplicates 0
  c strengthened 0, eliminated 0 vars (+0 resolvents), failed literals 0
  c 2 derived records in 2 rounds
  s SATISFIABLE (by preprocessing)
  exit 10

Every simplification justifies itself: the derivation records written by
--trace form a complete resolution proof when preprocessing alone
refutes the formula, checkable against the original DIMACS:

  $ printf 'p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n' > tiny.cnf
  $ $R simplify tiny.cnf --trace tiny.trc; echo "exit $?"
  c trace written to tiny.trc (50 bytes)
  c units 1, pures 0, tautologies 0, subsumed 0, duplicates 1
  c strengthened 4, eliminated 0 vars (+0 resolvents), failed literals 0
  c 3 derived records in 1 rounds
  s UNSATISFIABLE (by preprocessing)
  exit 20
  $ $R check tiny.cnf tiny.trc | grep "^s "
  s VERIFIED UNSATISFIABLE

The machine-readable report is deterministic:

  $ $R simplify tiny.cnf --json
  {"verdict":"unsat","original_clauses":4,"remaining_clauses":0,"rounds":1,"derived_records":3,"passes":{"units_propagated":1,"pure_literals":0,"tautologies_removed":0,"subsumed_removed":0,"duplicates_removed":1,"strengthened":4,"eliminated_vars":0,"resolvents_added":0,"failed_literals":0}}
  [20]

--pre runs the simplifier in front of the solver; the combined trace
still checks against the ORIGINAL formula under every strategy:

  $ $R solve php8.cnf --pre --trace php8pre.trc > presolve.out; echo "exit $?"
  exit 20
  $ $R check php8.cnf php8pre.trc -s df | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R check php8.cnf php8pre.trc -s hybrid | grep "^s "
  s VERIFIED UNSATISFIABLE
  $ $R lint -f php8.cnf php8pre.trc | grep "^s "
  s LINT OK
  $ $R validate php8.cnf --pre -s hint > preval.out; echo "exit $?"
  exit 20
  $ grep "^c pre" preval.out
  c pre: 0 units, 0 pures, 0 subsumed, 0 strengthened, 9 vars eliminated (+72 resolvents), 0 failed literals, 72 derived records, 2 rounds
  $ grep "^s " preval.out
  s UNSATISFIABLE (proof verified)
