(* Cross-checker property test: on fuzzed UNSAT instances all the
   checkers ride the same kernel, so they must all accept every valid
   trace and their statistics must line up — BF builds exactly the total
   learned set, the hybrid's built set sandwiches between DF's and BF's,
   DF's unsat core is contained in the hybrid's, resolution-step counts
   grow monotonically with the built sets, and the parallel wavefront
   checker, the hinted one-pass checker (on the plain trace and on its
   hinted rewrite) and the window scheduler at every window size are all
   bit-identical to BF — a seven-way agreement matrix. *)

let module_name = "cross-checker"

let subset a b =
  let tbl = Hashtbl.create 64 in
  List.iter (fun x -> Hashtbl.replace tbl x ()) b;
  List.for_all (Hashtbl.mem tbl) a

let check_instance ~round f trace =
  let src = Trace.Reader.From_string trace in
  let get name check =
    match check f src with
    | Ok r -> r
    | Error d ->
      Alcotest.failf "round %d: %s rejected a valid trace: %s" round name
        (Checker.Diagnostics.to_string d)
  in
  let df = get "DF" (fun f src -> Checker.Df.check f src) in
  let bf = get "BF" (fun f src -> Checker.Bf.check f src) in
  let hy = get "Hybrid" (fun f src -> Checker.Hybrid.check f src) in
  let ck name = Printf.sprintf "round %d: %s" round name in
  (* the trace is one fixed artefact: every checker sees the same count *)
  Alcotest.check Alcotest.int (ck "df/bf learned") df.Checker.Report.total_learned
    bf.Checker.Report.total_learned;
  Alcotest.check Alcotest.int (ck "df/hy learned") df.Checker.Report.total_learned
    hy.Checker.Report.total_learned;
  (* breadth-first always builds 100% of the learned clauses *)
  Alcotest.check Alcotest.int (ck "bf builds all") bf.total_learned
    bf.clauses_built;
  Alcotest.check Alcotest.int (ck "bf built ids exhaustive") bf.total_learned
    (List.length bf.learned_built_ids);
  (* the hybrid's needed set sandwiches between DF's exact set and BF's
     everything *)
  if not (df.clauses_built <= hy.clauses_built) then
    Alcotest.failf "round %d: df built %d > hybrid built %d" round
      df.clauses_built hy.clauses_built;
  if not (hy.clauses_built <= bf.clauses_built) then
    Alcotest.failf "round %d: hybrid built %d > bf built %d" round
      hy.clauses_built bf.clauses_built;
  if not (subset df.learned_built_ids hy.learned_built_ids) then
    Alcotest.failf "round %d: df built a clause the hybrid did not" round;
  (* resolution work grows with the built set *)
  if not
       (df.resolution_steps <= hy.resolution_steps
       && hy.resolution_steps <= bf.resolution_steps)
  then
    Alcotest.failf "round %d: steps not monotonic (df %d, hy %d, bf %d)"
      round df.resolution_steps hy.resolution_steps bf.resolution_steps;
  (* cores: DF's exact core inside the hybrid's; BF does not track one *)
  if df.core_original_ids = [] then
    Alcotest.failf "round %d: df core is empty" round;
  if not (subset df.core_original_ids hy.core_original_ids) then
    Alcotest.failf "round %d: df core not within hybrid core" round;
  Alcotest.check (Alcotest.list Alcotest.int) (ck "bf has no core") []
    bf.core_original_ids;
  (* the parallel checker replays BF's schedule as wavefronts: identical
     verdict, counters, built set and (empty) core at every job count *)
  List.iter
    (fun jobs ->
      let pr = get (Printf.sprintf "Par j%d" jobs)
          (fun f src -> Checker.Par.check ~jobs f src)
      in
      let pk name = ck (Printf.sprintf "par j%d %s" jobs name) in
      Alcotest.check Alcotest.int (pk "learned") bf.total_learned
        pr.Checker.Report.total_learned;
      Alcotest.check Alcotest.int (pk "built") bf.clauses_built
        pr.Checker.Report.clauses_built;
      Alcotest.check Alcotest.int (pk "steps") bf.resolution_steps
        pr.Checker.Report.resolution_steps;
      Alcotest.check (Alcotest.list Alcotest.int) (pk "built ids")
        bf.learned_built_ids pr.Checker.Report.learned_built_ids;
      Alcotest.check (Alcotest.list Alcotest.int) (pk "core") []
        pr.Checker.Report.core_original_ids;
      Alcotest.check Alcotest.int (pk "jobs echoed") jobs
        pr.Checker.Report.jobs;
      if pr.Checker.Report.total_learned > 0 && pr.Checker.Report.wavefronts < 1
      then Alcotest.failf "%s: no wavefronts reported" (pk "wavefronts"))
    [ 1; 2; 4 ];
  (* the hinted one-pass checker accepts a plain (version-1) trace too —
     it simply never frees — and must land exactly on BF's report *)
  let bf_identical name r =
    let rk field = ck (Printf.sprintf "%s %s" name field) in
    Alcotest.check Alcotest.int (rk "learned") bf.total_learned
      r.Checker.Report.total_learned;
    Alcotest.check Alcotest.int (rk "built") bf.clauses_built
      r.Checker.Report.clauses_built;
    Alcotest.check Alcotest.int (rk "steps") bf.resolution_steps
      r.Checker.Report.resolution_steps;
    Alcotest.check (Alcotest.list Alcotest.int) (rk "built ids")
      bf.learned_built_ids r.Checker.Report.learned_built_ids;
    Alcotest.check (Alcotest.list Alcotest.int) (rk "core") []
      r.Checker.Report.core_original_ids
  in
  bf_identical "hint" (get "Hint" (fun f src -> Checker.Hint.check f src));
  (* ...and the hinted rewrite of the same trace reaches the same report *)
  let hinted =
    let w = Trace.Writer.create ~version:2 Trace.Writer.Ascii in
    match Analysis.Dag.hint src w with
    | Ok _ -> Trace.Reader.From_string (Trace.Writer.contents w)
    | Error e ->
      Alcotest.failf "round %d: hint converter refused: %s" round
        e.Analysis.Dag.message
  in
  bf_identical "hint/v2"
    (get "Hint/v2" (fun f _ -> Checker.Hint.check f hinted));
  (* the window scheduler is invisible at every window size *)
  List.iter
    (fun window ->
      bf_identical
        (Printf.sprintf "window %d" window)
        (get
           (Printf.sprintf "Window %d" window)
           (fun f src -> Checker.Window.check ~window f src)))
    [ 1; 7; max_int ]

let fuzzed_agreement ~pre ~seed ~target () =
  let rng = Sat.Rng.create seed in
  let unsat_seen = ref 0 in
  let round = ref 0 in
  (* fuzz formulas until [target] UNSAT instances have been cross-checked *)
  while !unsat_seen < target && !round < 2000 do
    incr round;
    let nvars = 3 + Sat.Rng.int rng 10 in
    let nclauses = 1 + Sat.Rng.int rng (5 * nvars) in
    let f =
      if Sat.Rng.bool rng then
        Helpers.random_messy_cnf rng ~nvars ~nclauses
      else Gen.Random3sat.generate rng ~nvars ~nclauses:(min nclauses (6 * nvars))
    in
    let result, _stats, trace = Pipeline.Validate.solve_with_trace ~pre f in
    match result with
    | Solver.Cdcl.Sat _ -> ()
    | Solver.Cdcl.Unsat ->
      incr unsat_seen;
      check_instance ~round:!round f trace
  done;
  if !unsat_seen < target then
    Alcotest.failf "only %d unsat instances in %d rounds" !unsat_seen !round

let test_fuzzed_agreement () = fuzzed_agreement ~pre:false ~seed:424242 ~target:50 ()

(* same matrix on preprocessed runs: the trace opens with the
   simplifier's derivation records and still checks against the original
   formula under every strategy *)
let test_fuzzed_agreement_pre () =
  fuzzed_agreement ~pre:true ~seed:424243 ~target:30 ()

let suite =
  [
    ( module_name,
      [
        Alcotest.test_case "fuzzed agreement x50" `Quick test_fuzzed_agreement;
        Alcotest.test_case "fuzzed agreement x30 (pre)" `Quick
          test_fuzzed_agreement_pre;
      ] );
  ]
