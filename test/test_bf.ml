(* Breadth-first checker tests: agreement with DF on genuine traces,
   stream-order strictness, the bounded-memory guarantee, and rejection of
   corrupted traces. *)

module D = Checker.Diagnostics

let ev_header nvars num_original = Trace.Event.Header { nvars; num_original }
let ev_cl id sources = Trace.Event.Learned { id; sources }
let ev_var var value ante = Trace.Event.Level0 { var; value; ante }
let ev_conf id = Trace.Event.Final_conflict id

let tiny_formula =
  Sat.Cnf.of_clauses 1 [ Sat.Clause.of_ints [ 1 ]; Sat.Clause.of_ints [ -1 ] ]

let test_tiny_accepted () =
  match
    Checker.Bf.check tiny_formula
      (Helpers.events_to_source [ ev_header 1 2; ev_var 1 true 1; ev_conf 2 ])
  with
  | Ok r -> Alcotest.check Alcotest.int "nothing built" 0 r.clauses_built
  | Error d -> Alcotest.failf "rejected: %s" (D.to_string d)

let test_forward_reference () =
  (* clause 4 uses clause 5, defined later: legal for DF (it is a DAG),
     illegal for the streaming BF pass *)
  let f =
    Sat.Cnf.of_clauses 3
      [
        Sat.Clause.of_ints [ 1; 2 ];
        Sat.Clause.of_ints [ -2; 3 ];
        Sat.Clause.of_ints [ -3; -2 ];
        Sat.Clause.of_ints [ 2 ];
      ]
  in
  let events =
    [
      ev_header 3 4;
      ev_cl 5 [| 6; 3 |];   (* forward reference to 6 *)
      ev_cl 6 [| 1; 2 |];
      ev_var 2 true 4;
      ev_var 3 true 2;
      ev_conf 3;
    ]
  in
  Helpers.expect_bf_failure f events
    (function D.Forward_reference r -> r.id = 5 && r.source = 6 | _ -> false)
    "forward reference"

let test_agreement_with_df () =
  (* same verdict and same resolution-step count on genuine traces *)
  List.iter
    (fun (fam : Gen.Families.family) ->
      let f = fam.generate () in
      let result, _, trace = Pipeline.Validate.solve_with_trace f in
      match result with
      | Solver.Cdcl.Sat _ -> Alcotest.failf "%s unexpectedly sat" fam.name
      | Solver.Cdcl.Unsat -> (
        let src = Trace.Reader.From_string trace in
        match Checker.Df.check f src, Checker.Bf.check f src with
        | Ok df, Ok bf ->
          Alcotest.check Alcotest.int
            (fam.name ^ ": same learned count")
            df.total_learned bf.total_learned;
          Alcotest.check Alcotest.bool
            (fam.name ^ ": BF builds everything") true
            (bf.clauses_built = bf.total_learned);
          Alcotest.check Alcotest.bool
            (fam.name ^ ": DF builds a subset") true
            (df.clauses_built <= bf.clauses_built)
        | Error d, _ ->
          Alcotest.failf "%s: DF rejected: %s" fam.name (D.to_string d)
        | _, Error d ->
          Alcotest.failf "%s: BF rejected: %s" fam.name (D.to_string d)))
    (Gen.Families.quick ())

let test_memory_bounded () =
  (* the §3.3 guarantee: BF peak memory stays far below DF peak on a
     learning-heavy instance *)
  let f = Gen.Php.unsat ~holes:6 in
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php unsat");
  let src = Trace.Reader.From_string trace in
  let m_df = Harness.Meter.create () in
  let m_bf = Harness.Meter.create () in
  (match Checker.Df.check ~meter:m_df f src with
   | Ok _ -> ()
   | Error d -> Alcotest.failf "df: %s" (D.to_string d));
  (match Checker.Bf.check ~meter:m_bf f src with
   | Ok _ -> ()
   | Error d -> Alcotest.failf "bf: %s" (D.to_string d));
  let df_peak = Harness.Meter.peak_words m_df in
  let bf_peak = Harness.Meter.peak_words m_bf in
  Alcotest.check Alcotest.bool
    (Printf.sprintf "bf peak (%d) well below df peak (%d)" bf_peak df_peak)
    true
    (bf_peak * 3 < df_peak)

let test_bf_survives_df_memory_limit () =
  (* the paper's Table 2 star rows: a budget DF busts, BF fits *)
  let f = Gen.Php.unsat ~holes:6 in
  let _, _, trace = Pipeline.Validate.solve_with_trace f in
  let src = Trace.Reader.From_string trace in
  let m_df = Harness.Meter.create () in
  (match Checker.Df.check ~meter:m_df f src with
   | Ok _ -> ()
   | Error d -> Alcotest.failf "df: %s" (D.to_string d));
  (* a budget halfway between the two peaks *)
  let budget = Harness.Meter.peak_words m_df / 2 in
  (try
     let m = Harness.Meter.create ~limit_words:budget () in
     ignore (Checker.Df.check ~meter:m f src);
     Alcotest.fail "DF fit in half its own peak"
   with Harness.Meter.Out_of_memory_simulated _ -> ());
  let m = Harness.Meter.create ~limit_words:budget () in
  match Checker.Bf.check ~meter:m f src with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "bf under budget: %s" (D.to_string d)

let test_temp_file_counting () =
  (* the paper's literal implementation: counts in a real temporary file,
     chunked counting passes; must agree with the in-memory mode *)
  let f = Gen.Php.unsat ~holes:5 in
  let result, _, trace = Pipeline.Validate.solve_with_trace f in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php unsat");
  let src = Trace.Reader.From_string trace in
  let m_mem = Harness.Meter.create () in
  let m_file = Harness.Meter.create () in
  match
    ( Checker.Bf.check ~meter:m_mem f src,
      Checker.Bf.check ~meter:m_file ~counting:(`Temp_file 64) f src )
  with
  | Ok a, Ok b ->
    Alcotest.check Alcotest.int "same built" a.clauses_built b.clauses_built;
    Alcotest.check Alcotest.int "same steps" a.resolution_steps
      b.resolution_steps;
    Alcotest.check Alcotest.int "same peak"
      (Harness.Meter.peak_words m_mem)
      (Harness.Meter.peak_words m_file)
  | Error d, _ | _, Error d ->
    Alcotest.failf "bf failed: %s" (D.to_string d)

(* chunked counting must reproduce the in-memory report *exactly* —
   every field, including the meter peak — for degenerate chunk sizes
   (1 = one ID per pass, 2, and an odd 7), across two proof shapes *)
let test_temp_file_chunk_sizes () =
  let instances =
    [
      ("php", Gen.Php.unsat ~holes:4);
      ("parity", Gen.Parity.odd_cycle 8);
    ]
  in
  List.iter
    (fun (name, f) ->
      let result, _, trace = Pipeline.Validate.solve_with_trace f in
      (match result with
       | Solver.Cdcl.Unsat -> ()
       | Solver.Cdcl.Sat _ -> Alcotest.failf "%s: instance must be unsat" name);
      let src = Trace.Reader.From_string trace in
      let m_mem = Harness.Meter.create () in
      let reference =
        match Checker.Bf.check ~meter:m_mem f src with
        | Ok r -> r
        | Error d -> Alcotest.failf "%s in-memory: %s" name (D.to_string d)
      in
      List.iter
        (fun chunk ->
          let m_file = Harness.Meter.create () in
          match
            Checker.Bf.check ~meter:m_file ~counting:(`Temp_file chunk) f src
          with
          | Error d ->
            Alcotest.failf "%s chunk %d: %s" name chunk (D.to_string d)
          | Ok r ->
            let ctx fld = Printf.sprintf "%s chunk %d: %s" name chunk fld in
            Alcotest.check Alcotest.int (ctx "built") reference.clauses_built
              r.clauses_built;
            Alcotest.check Alcotest.int (ctx "learned")
              reference.total_learned r.total_learned;
            Alcotest.check Alcotest.int (ctx "steps")
              reference.resolution_steps r.resolution_steps;
            Alcotest.check (Alcotest.list Alcotest.int) (ctx "built ids")
              reference.learned_built_ids r.learned_built_ids;
            Alcotest.check Alcotest.int (ctx "peak words")
              reference.peak_mem_words r.peak_mem_words;
            Alcotest.check Alcotest.int (ctx "peak live clauses")
              reference.peak_live_clauses r.peak_live_clauses;
            Alcotest.check Alcotest.int (ctx "arena bytes")
              reference.arena_bytes_resident r.arena_bytes_resident;
            Alcotest.check Alcotest.int (ctx "meter peak")
              (Harness.Meter.peak_words m_mem)
              (Harness.Meter.peak_words m_file))
        [ 1; 2; 7 ])
    instances

let test_temp_file_counting_rejects () =
  let f, events = Helpers.unsat_with_events () in
  let broken =
    List.filter (function Trace.Event.Learned _ -> false | _ -> true) events
  in
  let w = Trace.Writer.create Trace.Writer.Ascii in
  List.iter (Trace.Writer.emit w) broken;
  match
    Checker.Bf.check ~counting:(`Temp_file 128) f
      (Trace.Reader.From_string (Trace.Writer.contents w))
  with
  | Ok _ -> Alcotest.fail "temp-file mode accepted a broken trace"
  | Error _ -> ()

let test_mutations_rejected () =
  let f, events = Helpers.unsat_with_events () in
  let cases =
    [
      ( "drop all CL",
        List.filter
          (function Trace.Event.Learned _ -> false | _ -> true)
          events );
      ( "drop VAR records",
        List.filter
          (function Trace.Event.Level0 _ -> false | _ -> true)
          events );
      ( "drop CONF",
        List.filter
          (function Trace.Event.Final_conflict _ -> false | _ -> true)
          events );
      ( "swap source order",
        List.map
          (function
            | Trace.Event.Learned l when Array.length l.sources >= 2 ->
              let sources = Array.copy l.sources in
              let tmp = sources.(0) in
              sources.(0) <- sources.(Array.length sources - 1);
              sources.(Array.length sources - 1) <- tmp;
              Trace.Event.Learned { l with sources }
            | e -> e)
          events );
    ]
  in
  List.iter
    (fun (name, mutated) ->
      match Checker.Bf.check f (Helpers.events_to_source mutated) with
      | Ok _ -> Alcotest.failf "%s: accepted" name
      | Error _ -> ())
    cases

let test_bf_detects_unused_bad_clause () =
  (* a learned clause never used by the proof but with invalid sources:
     DF skips it (never built), BF builds everything and catches it —
     exactly the structural difference between §3.2 and §3.3 *)
  let f, events = Helpers.unsat_with_events () in
  let max_id =
    List.fold_left
      (fun acc e -> match e with Trace.Event.Learned l -> max acc l.id | _ -> acc)
      0 events
  in
  (* sources [1; 1] cannot resolve: same clause twice has no clash *)
  let bogus = Trace.Event.Learned { id = max_id + 1; sources = [| 1; 1 |] } in
  let mutated =
    (* insert before the CONF record *)
    List.concat_map
      (function
        | Trace.Event.Final_conflict _ as e -> [ bogus; e ]
        | e -> [ e ])
      events
  in
  (match Checker.Df.check f (Helpers.events_to_source mutated) with
   | Ok _ -> () (* DF legitimately never builds the bogus clause *)
   | Error d ->
     Alcotest.failf "DF built an unused clause: %s" (D.to_string d));
  match Checker.Bf.check f (Helpers.events_to_source mutated) with
  | Ok _ -> Alcotest.fail "BF accepted a bogus (unused) clause"
  | Error (D.No_clash _) -> ()
  | Error d -> Alcotest.failf "unexpected diagnostic: %s" (D.to_string d)

let suite =
  [
    ( "bf",
      [
        Alcotest.test_case "tiny accepted" `Quick test_tiny_accepted;
        Alcotest.test_case "forward reference" `Quick test_forward_reference;
        Alcotest.test_case "agreement with DF" `Slow test_agreement_with_df;
        Alcotest.test_case "memory bounded" `Quick test_memory_bounded;
        Alcotest.test_case "survives DF's memory limit" `Quick
          test_bf_survives_df_memory_limit;
        Alcotest.test_case "temp-file counting" `Quick
          test_temp_file_counting;
        Alcotest.test_case "temp-file chunk sizes" `Quick
          test_temp_file_chunk_sizes;
        Alcotest.test_case "temp-file rejects" `Quick
          test_temp_file_counting_rejects;
        Alcotest.test_case "mutations rejected" `Quick test_mutations_rejected;
        Alcotest.test_case "unused bad clause caught" `Quick
          test_bf_detects_unused_bad_clause;
      ] );
  ]
