(* Hinted one-pass checking: the `rescheck hint` converter must produce
   hint-complete traces the one-pass checker validates with breadth-first
   identical reports at breadth-first peak residency, and a wrong,
   permuted, duplicated or dangling hint must be rejected with a
   positioned diagnostic — never silently change a verdict. *)

let module_name = "hint"

module G = Analysis.Dag

(* --- plumbing ----------------------------------------------------------- *)

let hinted_of ~format trace =
  let w = Trace.Writer.create ~version:2 format in
  match G.hint (Trace.Reader.From_string trace) w with
  | Ok (stats, profile) -> (Trace.Writer.contents w, stats, profile)
  | Error e -> Alcotest.failf "hint converter refused: %s" e.G.message

(* v2 writer: the plain [Helpers.events_to_source] uses a version-1
   writer, which refuses Delete records by design *)
let v2_source events =
  let w = Trace.Writer.create ~version:2 Trace.Writer.Ascii in
  List.iter (Trace.Writer.emit w) events;
  Trace.Reader.From_string (Trace.Writer.contents w)

let report_exn name = function
  | Ok r -> r
  | Error d ->
    Alcotest.failf "%s rejected a valid trace: %s" name
      (Checker.Diagnostics.to_string d)

(* the one-pass report must match breadth-first field for field *)
let assert_bf_identical ~ck bf hint =
  let i = Alcotest.check Alcotest.int in
  i (ck "learned") bf.Checker.Report.total_learned
    hint.Checker.Report.total_learned;
  i (ck "built") bf.Checker.Report.clauses_built
    hint.Checker.Report.clauses_built;
  i (ck "steps") bf.Checker.Report.resolution_steps
    hint.Checker.Report.resolution_steps;
  Alcotest.check (Alcotest.list Alcotest.int) (ck "built ids")
    bf.Checker.Report.learned_built_ids hint.Checker.Report.learned_built_ids;
  Alcotest.check (Alcotest.list Alcotest.int) (ck "core") []
    hint.Checker.Report.core_original_ids

(* --- hint completeness + bf identity (property) ------------------------- *)

(* Every learned clause in a hinted trace is either covered by a delete
   record or pinned for the final chain — nothing leaks past the
   converter's last-use analysis. *)
let assert_hint_complete ~ck hinted_trace =
  let events = Trace.Reader.to_list (Trace.Reader.From_string hinted_trace) in
  let learned = Hashtbl.create 64 in
  let deleted = Hashtbl.create 64 in
  let pinned = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e with
      | Trace.Event.Header _ -> ()
      | Trace.Event.Learned l -> Hashtbl.replace learned l.id ()
      | Trace.Event.Delete ids ->
        Array.iter (fun id -> Hashtbl.replace deleted id ()) ids
      | Trace.Event.Level0 v -> Hashtbl.replace pinned v.ante ()
      | Trace.Event.Final_conflict id -> Hashtbl.replace pinned id ())
    events;
  Hashtbl.iter
    (fun id () ->
      if not (Hashtbl.mem deleted id || Hashtbl.mem pinned id) then
        Alcotest.failf "%s: learned clause %d neither hinted nor pinned"
          (ck "completeness") id)
    learned

let check_instance ~round f trace =
  let ck name = Printf.sprintf "round %d: %s" round name in
  let bf =
    report_exn (ck "BF") (Checker.Bf.check f (Trace.Reader.From_string trace))
  in
  (* the one-pass checker accepts plain (version-1) traces too: it simply
     never frees, and the verdict still matches BF *)
  let plain =
    report_exn (ck "Hint/v1")
      (Checker.Hint.check f (Trace.Reader.From_string trace))
  in
  assert_bf_identical ~ck:(fun n -> ck ("v1 " ^ n)) bf plain;
  List.iter
    (fun format ->
      let fmt_name =
        match format with
        | Trace.Writer.Ascii -> "ascii"
        | Trace.Writer.Binary -> "binary"
      in
      let ck name = ck (Printf.sprintf "%s %s" fmt_name name) in
      let hinted, stats, _profile = hinted_of ~format trace in
      if stats.G.hints = 0 && bf.Checker.Report.total_learned > 1 then
        Alcotest.failf "%s: converter emitted no hints" (ck "hints");
      assert_hint_complete ~ck hinted;
      let hint =
        report_exn (ck "Hint")
          (Checker.Hint.check f (Trace.Reader.From_string hinted))
      in
      assert_bf_identical ~ck bf hint;
      (* one pass, breadth-first residency: the hint schedule is the
         refcount-zero schedule, so runtime peak matches BF's and never
         exceeds the DAG's static breadth-first prediction (learned
         clauses; originals ride on top for both checkers alike) *)
      if hint.Checker.Report.peak_live_clauses
         > bf.Checker.Report.peak_live_clauses
      then
        Alcotest.failf "%s: hinted peak %d > bf peak %d" (ck "peak")
          hint.Checker.Report.peak_live_clauses
          bf.Checker.Report.peak_live_clauses)
    [ Trace.Writer.Ascii; Trace.Writer.Binary ]

let test_fuzzed_hint_identity () =
  let rng = Sat.Rng.create 77007 in
  let target = 25 in
  let unsat_seen = ref 0 in
  let round = ref 0 in
  while !unsat_seen < target && !round < 2000 do
    incr round;
    let nvars = 3 + Sat.Rng.int rng 10 in
    let nclauses = 1 + Sat.Rng.int rng (5 * nvars) in
    let f =
      if Sat.Rng.bool rng then Helpers.random_messy_cnf rng ~nvars ~nclauses
      else
        Gen.Random3sat.generate rng ~nvars
          ~nclauses:(min nclauses (6 * nvars))
    in
    let result, _stats, trace = Pipeline.Validate.solve_with_trace f in
    match result with
    | Solver.Cdcl.Sat _ -> ()
    | Solver.Cdcl.Unsat ->
      incr unsat_seen;
      check_instance ~round:!round f trace
  done;
  if !unsat_seen < target then
    Alcotest.failf "only %d unsat instances in %d rounds" !unsat_seen !round

(* --- converter round trips ---------------------------------------------- *)

let test_hint_strip_roundtrip () =
  let f, events = Helpers.unsat_with_events () in
  ignore f;
  let w = Trace.Writer.create Trace.Writer.Ascii in
  List.iter (Trace.Writer.emit w) events;
  let plain = Trace.Writer.contents w in
  let hinted, _, _ = hinted_of ~format:Trace.Writer.Ascii plain in
  (* hinting is idempotent: stale hints are dropped and regenerated *)
  let hinted2, stats2, _ =
    hinted_of ~format:Trace.Writer.Ascii hinted
  in
  Alcotest.check Alcotest.string "hint idempotent" hinted hinted2;
  if stats2.G.dropped_hints = 0 then
    Alcotest.fail "re-hinting dropped no stale hints";
  (* stripping recovers the plain trace byte for byte *)
  let w1 = Trace.Writer.create ~version:1 Trace.Writer.Ascii in
  (match G.strip_hints (Trace.Reader.From_string hinted) w1 with
   | Error e -> Alcotest.failf "strip refused: %s" e.G.message
   | Ok _ -> ());
  Alcotest.check Alcotest.string "strip inverts hint" plain
    (Trace.Writer.contents w1)

(* --- native solver emission --------------------------------------------- *)

let test_solver_native_hints () =
  let f = Gen.Php.unsat ~holes:4 in
  let config =
    { Solver.Cdcl.default_config with Solver.Cdcl.emit_deletes = true }
  in
  let result, _stats, trace =
    Pipeline.Validate.solve_with_trace ~config ~version:2 f
  in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ -> Alcotest.fail "php must be unsat");
  let src = Trace.Reader.From_string trace in
  (* the one-pass checker validates the native hinted stream... *)
  let hint = report_exn "Hint" (Checker.Hint.check f src) in
  if hint.Checker.Report.total_learned = 0 then
    Alcotest.fail "no learned clauses in the native trace";
  (* ...and the non-hint engines refuse it at the version gate *)
  (match Checker.Bf.check f src with
   | Error Checker.Diagnostics.Hints_unsupported -> ()
   | Ok _ -> Alcotest.fail "BF accepted a hinted trace"
   | Error d ->
     Alcotest.failf "BF: expected Hints_unsupported, got %s"
       (Checker.Diagnostics.to_string d));
  match Checker.Df.check f src with
  | Error Checker.Diagnostics.Hints_unsupported -> ()
  | Ok _ -> Alcotest.fail "DF accepted a hinted trace"
  | Error d ->
    Alcotest.failf "DF: expected Hints_unsupported, got %s"
      (Checker.Diagnostics.to_string d)

(* --- bad hints are rejected, with positions ----------------------------- *)

let is_bad_hint ~substr = function
  | Checker.Diagnostics.Positioned
      { failure = Checker.Diagnostics.Bad_delete_hint { reason; _ }; _ } ->
    let len = String.length substr in
    let n = String.length reason in
    let rec scan i =
      i + len <= n && (String.sub reason i len = substr || scan (i + 1))
    in
    scan 0
  | _ -> false

let expect_hint_failure f events ~substr name =
  match Checker.Hint.check f (v2_source events) with
  | Ok _ -> Alcotest.failf "%s: bad hint was accepted" name
  | Error d ->
    if not (is_bad_hint ~substr d) then
      Alcotest.failf "%s: unexpected diagnostic: %s" name
        (Checker.Diagnostics.to_string d)

(* insert [x] right after the first event satisfying [p] *)
let insert_after p x events =
  let rec go = function
    | [] -> Alcotest.fail "insertion point not found"
    | e :: rest when p e -> e :: x :: rest
    | e :: rest -> e :: go rest
  in
  go events

let test_bad_hints_rejected () =
  let f, events = Helpers.unsat_with_events () in
  (* a learned id that some later learned clause resolves with *)
  let used_later =
    let defined = Hashtbl.create 64 in
    let found = ref None in
    List.iter
      (fun e ->
        match e with
        | Trace.Event.Learned l ->
          if !found = None then
            Array.iter
              (fun s ->
                if !found = None && Hashtbl.mem defined s then found := Some s)
              l.sources;
          Hashtbl.replace defined l.id ()
        | _ -> ())
      events;
    match !found with
    | Some id -> id
    | None -> Alcotest.fail "no learned-to-learned reference in the trace"
  in
  let is_def id = function
    | Trace.Event.Learned l -> l.id = id
    | _ -> false
  in
  (* premature hint: clause deleted right after its definition but used
     later — the use must fail, positioned at the offending record *)
  expect_hint_failure f
    (insert_after (is_def used_later)
       (Trace.Event.Delete [| used_later |])
       events)
    ~substr:"after its delete hint" "premature";
  (* duplicate hint *)
  expect_hint_failure f
    (insert_after (is_def used_later)
       (Trace.Event.Delete [| used_later; used_later |])
       events)
    ~substr:"deleted twice" "duplicate";
  (* dangling hint: an id nothing ever defines *)
  expect_hint_failure f
    (insert_after
       (function Trace.Event.Header _ -> true | _ -> false)
       (Trace.Event.Delete [| 999999 |])
       events)
    ~substr:"not defined" "dangling";
  (* an original clause may only be hinted once it was materialised *)
  expect_hint_failure f
    (insert_after
       (function Trace.Event.Header _ -> true | _ -> false)
       (Trace.Event.Delete [| 1 |])
       events)
    ~substr:"never referenced" "unreferenced original"

(* wrong hints can delay but never flip a verdict: permuting every hint
   to the very end of the trace (just before the conflict) must still
   verify — late hints only cost memory *)
let test_late_hints_still_verify () =
  let f, events = Helpers.unsat_with_events () in
  let w = Trace.Writer.create Trace.Writer.Ascii in
  List.iter (Trace.Writer.emit w) events;
  let hinted, _, _ =
    hinted_of ~format:Trace.Writer.Ascii (Trace.Writer.contents w)
  in
  let hevents = Trace.Reader.to_list (Trace.Reader.From_string hinted) in
  let deletes, rest =
    List.partition
      (function Trace.Event.Delete _ -> true | _ -> false)
      hevents
  in
  let late =
    let rec weave = function
      | [] -> Alcotest.fail "no final conflict"
      | Trace.Event.Final_conflict _ :: _ as tail -> deletes @ tail
      | e :: tl -> e :: weave tl
    in
    weave rest
  in
  match Checker.Hint.check f (v2_source late) with
  | Ok _ -> ()
  | Error d ->
    Alcotest.failf "late hints rejected: %s"
      (Checker.Diagnostics.to_string d)

let suite =
  [
    ( module_name,
      [
        Alcotest.test_case "fuzzed hint identity x25" `Quick
          test_fuzzed_hint_identity;
        Alcotest.test_case "hint/strip round trip" `Quick
          test_hint_strip_roundtrip;
        Alcotest.test_case "solver native hints" `Quick
          test_solver_native_hints;
        Alcotest.test_case "bad hints rejected" `Quick
          test_bad_hints_rejected;
        Alcotest.test_case "late hints still verify" `Quick
          test_late_hints_still_verify;
      ] );
  ]
