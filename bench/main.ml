(* Benchmark harness: regenerates every table of the paper's evaluation
   (Tables 1-3; Figures 1-3 are pseudocode, implemented as the solver and
   checker themselves), plus Bechamel micro-benchmarks for the hot paths
   and the design-choice ablations called out in DESIGN.md.

   Usage:  dune exec bench/main.exe
             [table1|table2|table3|proofshape|scaling|ablation|baseline|
              par|par_quick|stream|stream_quick|trim|trim_quick|
              hint|hint_quick|simplify|simplify_quick|parse|overhead|micro|
              all]

   Absolute numbers are machine-specific; EXPERIMENTS.md records how the
   *shapes* compare with the paper (who wins, by what factor, where the
   outliers sit). *)

let table = Harness.Table.render
let fmt_f = Harness.Table.fmt_float
let fmt_pct = Harness.Table.fmt_pct

let started = Unix.gettimeofday ()

(* Every table is also dumped as BENCH_<mode>.json next to the working
   directory, so dashboards and regression scripts can diff runs without
   scraping the pretty-printed output. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let emit_json mode ~headers rows =
  let oc = open_out (Printf.sprintf "BENCH_%s.json" mode) in
  let cell c = Printf.sprintf "\"%s\"" (json_escape c) in
  let row r = "[" ^ String.concat ", " (List.map cell r) ^ "]" in
  (* every table carries the same environment block — wall clock, GC
     words, build id — so runs from different checkouts are comparable *)
  let env =
    Obs.Profile.env_json ~wall_seconds:(Unix.gettimeofday () -. started)
  in
  Printf.fprintf oc
    "{\n  \"table\": %s,\n  \"env\": %s,\n  \"headers\": %s,\n  \"rows\": [\n%s\n  ]\n}\n"
    (cell mode) env (row headers)
    (String.concat ",\n" (List.map (fun r -> "    " ^ row r) rows));
  close_out oc

let print_table mode ~headers ?align rows =
  emit_json mode ~headers rows;
  Harness.Table.print (table ~headers ?align rows)

(* The simulated memory budget for Table 2, in words.  It plays the role
   of the paper's 800 MB cap, scaled to our instance sizes: every checker
   gets the same budget; the depth-first checker busts it on the two
   hardest instances (the paper's starred 6pipe/7pipe rows) while
   breadth-first — and the §5 hybrid — fit everywhere. *)
let simulated_budget_words = 7_000_000

type prepared = {
  fam : Gen.Families.family;
  f : Sat.Cnf.t;
  stats : Solver.Cdcl.stats;
  trace : string;
  time_off : float;
  time_on : float;
}

(* median of three runs for instances fast enough that scheduler noise
   would otherwise dominate the overhead column *)
let timed_median f =
  let x, t1 = Harness.Timer.time f in
  let reps = if t1 > 5.0 then 0 else if t1 > 1.0 then 2 else 4 in
  if reps = 0 then (x, t1)
  else begin
    let ts = t1 :: List.init reps (fun _ -> Harness.Timer.time_only f) in
    let ts = List.sort Float.compare ts in
    (x, List.nth ts (List.length ts / 2))
  end

let prepare (fam : Gen.Families.family) =
  let f = fam.generate () in
  let _, time_off = timed_median (fun () -> Solver.Cdcl.solve f) in
  let (result, stats, trace), time_on =
    timed_median (fun () -> Pipeline.Validate.solve_with_trace f)
  in
  (match result with
   | Solver.Cdcl.Unsat -> ()
   | Solver.Cdcl.Sat _ ->
     failwith (fam.name ^ ": benchmark instance unexpectedly satisfiable"));
  { fam; f; stats; trace; time_off; time_on }

let prepared_suite = lazy (List.map prepare (Gen.Families.suite ()))

(* --- Table 1: trace-generation overhead -------------------------------- *)

let table1 () =
  print_endline
    "Table 1. Statistics of the solver with trace generation off and on";
  print_endline
    "(paper: overhead 1.7%-12%, smaller for harder instances)\n";
  let rows =
    List.map
      (fun p ->
        let overhead =
          if p.time_off > 0.0 then (p.time_on -. p.time_off) /. p.time_off
          else 0.0
        in
        [
          p.fam.name;
          p.fam.paper_analogue;
          string_of_int (Sat.Cnf.nvars p.f);
          string_of_int (Sat.Cnf.nclauses p.f);
          string_of_int p.stats.learned_clauses;
          fmt_f ~decimals:3 p.time_off;
          fmt_f ~decimals:3 p.time_on;
          fmt_pct overhead;
        ])
      (Lazy.force prepared_suite)
  in
  print_table "table1"
    ~headers:
      [
        "instance"; "stands for"; "vars"; "clauses"; "learned";
        "trace off (s)"; "trace on (s)"; "overhead";
      ]
    ~align:[ Harness.Table.Left; Harness.Table.Left ]
    rows

(* --- Table 2: the two checking strategies ------------------------------ *)

let run_checker check p =
  let meter = Harness.Meter.create ~limit_words:simulated_budget_words () in
  try
    let checked, seconds =
      Harness.Timer.time (fun () ->
          check ~meter p.f (Trace.Reader.From_string p.trace))
    in
    match checked with
    | Ok r -> `Ok (r, seconds, Harness.Meter.peak_words meter)
    | Error d -> `Failed d
  with Harness.Meter.Out_of_memory_simulated _ -> `Memory_out

let table2 () =
  Printf.printf
    "Table 2. Statistics for the checking strategies\n\
     (simulated memory budget: %d words = %d KB for every checker; '*' = \
     memory out, as in the paper's 6pipe/7pipe rows; the hybrid columns \
     are the paper's §5 future work)\n\n"
    simulated_budget_words (simulated_budget_words * 8 / 1024);
  let kb words = string_of_int (words * 8 / 1024) in
  let rows =
    List.map
      (fun p ->
        let base =
          [ p.fam.name; string_of_int (String.length p.trace / 1024) ]
        in
        let df_cells =
          match run_checker (fun ~meter f src -> Checker.Df.check ~meter f src) p with
          | `Ok (r, seconds, peak) ->
            [
              string_of_int r.Checker.Report.clauses_built;
              fmt_pct (Checker.Report.built_ratio r);
              fmt_f ~decimals:3 seconds;
              kb peak;
            ]
          | `Memory_out -> [ "*"; "*"; "*"; "*" ]
          | `Failed d ->
            failwith ("DF check failed: " ^ Checker.Diagnostics.to_string d)
        in
        let bf_cells =
          match run_checker (fun ~meter f src -> Checker.Bf.check ~meter f src) p with
          | `Ok (_, seconds, peak) -> [ fmt_f ~decimals:3 seconds; kb peak ]
          | `Memory_out -> [ "*"; "*" ]
          | `Failed d ->
            failwith ("BF check failed: " ^ Checker.Diagnostics.to_string d)
        in
        let hybrid_cells =
          match run_checker (fun ~meter f src -> Checker.Hybrid.check ~meter f src) p with
          | `Ok (_, seconds, peak) -> [ fmt_f ~decimals:3 seconds; kb peak ]
          | `Memory_out -> [ "*"; "*" ]
          | `Failed d ->
            failwith
              ("Hybrid check failed: " ^ Checker.Diagnostics.to_string d)
        in
        base @ df_cells @ bf_cells @ hybrid_cells)
      (Lazy.force prepared_suite)
  in
  print_table "table2"
    ~headers:
      [
        "instance"; "trace (KB)"; "df built"; "built%"; "df time (s)";
        "df peak (KB)"; "bf time (s)"; "bf peak (KB)"; "hy time (s)";
        "hy peak (KB)";
      ]
    ~align:[ Harness.Table.Left ]
    rows

(* --- Table 3: iterated unsat-core shrinking ----------------------------- *)

(* like the paper, the hardest instances are left out of the 30-round
   iteration (each round re-solves the core) *)
let table3_excluded = [ "pipe_5"; "pipe_6" ]

let table3 () =
  print_endline
    "Table 3. Original clauses/variables involved in the proof\n\
     (first iteration, then up to 30 iterations or a fixed point)\n";
  let rows =
    List.filter_map
      (fun (p : prepared) ->
        if List.mem p.fam.name table3_excluded then None
        else
          match Pipeline.Unsat_core.shrink ~max_rounds:30 p.f with
          | Error _ -> failwith (p.fam.name ^ ": core shrinking failed")
          | Ok s ->
            let first =
              match s.iterations with
              | it :: _ -> it
              | [] -> s.initial
            in
            let last =
              match List.rev s.iterations with
              | it :: _ -> it
              | [] -> s.initial
            in
            Some
              [
                p.fam.name;
                string_of_int s.initial.clauses;
                string_of_int s.initial.vars;
                string_of_int first.clauses;
                string_of_int first.vars;
                string_of_int last.clauses;
                string_of_int last.vars;
                (if s.reached_fixpoint then string_of_int s.rounds
                 else Printf.sprintf ">%d" s.rounds);
              ])
      (Lazy.force prepared_suite)
  in
  print_table "table3"
    ~headers:
      [
        "instance"; "orig cls"; "orig vars"; "iter1 cls"; "iter1 vars";
        "final cls"; "final vars"; "iterations";
      ]
    ~align:[ Harness.Table.Left ]
    rows

(* --- Ablation: solver design choices ------------------------------------ *)

(* The design decisions DESIGN.md stars: restarts, learned-clause
   deletion, random decisions, and the BCP scheme — each toggled on a
   medium suite, reporting solve time and conflicts. *)
let ablation () =
  print_endline
    "Ablation. Solver configurations on a medium suite (time s / conflicts)\n";
  let base = Solver.Cdcl.default_config in
  let configs =
    [
      ("default", base);
      ("no restarts", { base with enable_restarts = false });
      ("no deletion", { base with enable_deletion = false });
      ("no random decisions", { base with random_decision_freq = 0.0 });
      ("clause minimization (post-paper)",
       { base with enable_minimization = true });
      ("luby restarts",
       { base with restart_sequence = Solver.Cdcl.Luby; restart_first = 32 });
      ("counting BCP", { base with bcp = Solver.Cdcl.Counting });
      ("no learning-aids at all",
       { base with enable_restarts = false; enable_deletion = false;
         random_decision_freq = 0.0 });
    ]
  in
  let instances =
    [
      ("php_7", Gen.Php.unsat ~holes:7);
      ("longmult_hi", Gen.Multiplier.miter_high_bits ~width:6 ~bits:5);
      ("pipe_2", Gen.Pipeline_cpu.correct ~regs:4 ~width:4 ~depth:2);
      ("rand_unsat",
       Gen.Random3sat.generate_at_ratio (Sat.Rng.create 5) ~nvars:180
         ~ratio:4.6);
    ]
  in
  let rows =
    List.map
      (fun (cname, config) ->
        cname
        :: List.concat_map
             (fun (_, f) ->
               let (_, stats), seconds =
                 Harness.Timer.time (fun () -> Solver.Cdcl.solve ~config f)
               in
               [ fmt_f ~decimals:2 seconds; string_of_int stats.conflicts ])
             instances)
      configs
  in
  let headers =
    "config"
    :: List.concat_map
         (fun (name, _) -> [ name ^ " (s)"; "cfl" ])
         instances
  in
  print_table "ablation" ~headers ~align:[ Harness.Table.Left ] rows

(* --- Scaling series ------------------------------------------------------ *)

(* Check time vs solve time as instances grow (the paper's headline claim
   that checking is always much cheaper than solving), on the pigeonhole
   ladder. *)
let scaling () =
  print_endline
    "Scaling. Solve vs check time on the pigeonhole ladder (PHP(n+1, n))\n";
  let rows =
    List.map
      (fun holes ->
        let f = Gen.Php.unsat ~holes in
        let (result, stats, trace), solve_s =
          Harness.Timer.time (fun () -> Pipeline.Validate.solve_with_trace f)
        in
        (match result with
         | Solver.Cdcl.Unsat -> ()
         | Solver.Cdcl.Sat _ -> failwith "php sat?");
        let src () = Trace.Reader.From_string trace in
        let df_s =
          Harness.Timer.time_only (fun () ->
              ignore (Checker.Df.check f (src ())))
        in
        let bf_s =
          Harness.Timer.time_only (fun () ->
              ignore (Checker.Bf.check f (src ())))
        in
        let hy_s =
          Harness.Timer.time_only (fun () ->
              ignore (Checker.Hybrid.check f (src ())))
        in
        [
          string_of_int holes;
          string_of_int stats.conflicts;
          string_of_int (String.length trace / 1024);
          fmt_f ~decimals:3 solve_s;
          fmt_f ~decimals:3 df_s;
          fmt_f ~decimals:3 bf_s;
          fmt_f ~decimals:3 hy_s;
          fmt_f ~decimals:1 (solve_s /. Float.max 1e-6 df_s);
        ])
      [ 4; 5; 6; 7; 8; 9 ]
  in
  print_table "scaling"
    ~headers:
      [
        "holes"; "conflicts"; "trace (KB)"; "solve (s)"; "df check (s)";
        "bf check (s)"; "hy check (s)"; "solve/df ratio";
      ]
    rows

(* --- Proof shape ---------------------------------------------------------- *)

(* structural statistics of the checked proofs, the data behind Built% *)
let proofshape () =
  print_endline
    "Proof shape. Structure of the checked resolution proofs\n";
  let rows =
    List.map
      (fun p ->
        match
          Checker.Proof_stats.analyze p.f (Trace.Reader.From_string p.trace)
        with
        | Error d ->
          failwith
            (p.fam.name ^ ": " ^ Checker.Diagnostics.to_string d)
        | Ok s ->
          [
            p.fam.name;
            string_of_int s.learned_total;
            string_of_int s.learned_needed;
            fmt_pct
              (if s.learned_total = 0 then 1.0
               else
                 float_of_int s.learned_needed
                 /. float_of_int s.learned_total);
            string_of_int s.resolution_steps;
            string_of_int s.dag_depth;
            fmt_f ~decimals:1 s.mean_clause_width;
            string_of_int s.max_clause_width;
            string_of_int s.final_chain_length;
          ])
      (Lazy.force prepared_suite)
  in
  print_table "proofshape"
    ~headers:
      [
        "instance"; "learned"; "needed"; "needed%"; "resolutions";
        "dag depth"; "mean width"; "max width"; "final chain";
      ]
    ~align:[ Harness.Table.Left ]
    rows

(* --- Baseline: BDD CEC vs validated SAT CEC ------------------------------ *)

(* The technology contrast of the paper's era: canonical-form equivalence
   checking via ROBDDs against the SAT+checker flow.  Adders favour BDDs,
   multipliers blow them up exponentially; SAT handles both, and its
   UNSAT answers come with a checked proof. *)
let baseline () =
  print_endline
    "Baseline. Equivalence checking: ROBDD vs validated SAT\n\
     (node limit 300k; 'blow-up' = BDD construction exceeded it)\n";
  let cec_pair name build =
    let c = Circuit.Netlist.create () in
    let o1, o2 = build c in
    let bdd_cell, bdd_time =
      Harness.Timer.time (fun () ->
          match Bdd.Cec.check ~node_limit:300_000 c o1 o2 with
          | Bdd.Cec.Equivalent -> "equivalent"
          | Bdd.Cec.Counterexample _ -> "DIFFERENT?!"
          | Bdd.Cec.Node_limit -> "blow-up")
    in
    let miter = Circuit.Miter.equivalence_cnf c o1 o2 in
    let sat_cell, sat_time =
      Harness.Timer.time (fun () ->
          let o = Pipeline.Validate.run miter in
          match o.Pipeline.Validate.verdict with
          | Pipeline.Validate.Unsat_verified _ -> "equivalent+proof"
          | Pipeline.Validate.Sat_verified _ -> "DIFFERENT?!"
          | Pipeline.Validate.Sat_model_wrong _ | Pipeline.Validate.Unsat_check_failed _ ->
            "CHECK FAILED")
    in
    [ name; bdd_cell; fmt_f ~decimals:3 bdd_time; sat_cell;
      fmt_f ~decimals:3 sat_time ]
  in
  (* blocked input order (all of a, then all of b): pathological for BDDs
     on adders; interleaved (a0 b0 a1 b1 …): the good order *)
  let adder_blocked w c =
    let a = Circuit.Arith.word_input c "a" w in
    let b = Circuit.Arith.word_input c "b" w in
    (Circuit.Arith.add_mod c a b w, Circuit.Arith.add_mod c b a w)
  in
  let adder_interleaved w c =
    let bits =
      List.init w (fun i ->
          let a = Circuit.Netlist.input c (Printf.sprintf "a_%d" i) in
          let b = Circuit.Netlist.input c (Printf.sprintf "b_%d" i) in
          (a, b))
    in
    let a = List.map fst bits and b = List.map snd bits in
    (Circuit.Arith.add_mod c a b w, Circuit.Arith.add_mod c b a w)
  in
  let mult w c =
    let a = Circuit.Arith.word_input c "a" w in
    let b = Circuit.Arith.word_input c "b" w in
    (Circuit.Arith.mul_shift_add c a b, Circuit.Arith.mul_msb_first c a b)
  in
  let rows =
    [
      cec_pair "adder_8 (blocked order)" (adder_blocked 8);
      cec_pair "adder_16 (blocked order)" (adder_blocked 16);
      cec_pair "adder_16 (interleaved)" (adder_interleaved 16);
      cec_pair "mult_4" (mult 4);
      cec_pair "mult_6" (mult 6);
    ]
  in
  print_table "baseline"
    ~headers:
      [ "circuit"; "bdd verdict"; "bdd time (s)"; "sat verdict";
        "sat time (s)" ]
    ~align:[ Harness.Table.Left; Harness.Table.Left ]
    rows

(* --- Parallel checker: jobs sweep --------------------------------------- *)

(* Wall-clock median of three-to-five runs.  The sweep measures elapsed
   time (not CPU seconds) because domain-level parallelism only shows up
   on the wall clock. *)
let wall_median f =
  let x, t1 = Harness.Timer.wall_time f in
  let reps = if t1 > 5.0 then 0 else if t1 > 1.0 then 2 else 4 in
  if reps = 0 then (x, t1)
  else begin
    let ts =
      t1 :: List.init reps (fun _ -> snd (Harness.Timer.wall_time f))
    in
    let ts = List.sort Float.compare ts in
    (x, List.nth ts (List.length ts / 2))
  end

(* Sequential BF against the wavefront-parallel checker at 1, 2 and 4
   worker domains.  Every parallel run is cross-checked against the BF
   report (built clauses, steps, built ids) before its time is trusted;
   the live-clause columns track the windowed scheduler's memory bound
   (par peak live must stay within ~10% of BF's). *)
let par_sweep instances =
  Printf.printf
    "Parallel check. Wavefront-parallel BF, wall-clock jobs sweep\n\
     (baseline: sequential BF; this host reports %d core(s) — elapsed \
     speedup above 1.0 needs a multicore host, see EXPERIMENTS.md)\n\n"
    (Domain.recommended_domain_count ());
  let rows =
    List.map
      (fun (name, generate) ->
        let f = generate () in
        let result, _stats, trace = Pipeline.Validate.solve_with_trace f in
        (match result with
         | Solver.Cdcl.Unsat -> ()
         | Solver.Cdcl.Sat _ ->
           failwith (name ^ ": benchmark instance unexpectedly satisfiable"));
        let src = Trace.Reader.From_string trace in
        let bf, bf_s =
          wall_median (fun () ->
              match Checker.Bf.check f src with
              | Ok r -> r
              | Error d ->
                failwith (name ^ ": bf: " ^ Checker.Diagnostics.to_string d))
        in
        let par jobs =
          wall_median (fun () ->
              match Checker.Par.check ~jobs f src with
              | Ok r -> r
              | Error d ->
                failwith
                  (Printf.sprintf "%s: par j%d: %s" name jobs
                     (Checker.Diagnostics.to_string d)))
        in
        let p1, s1 = par 1 in
        let p2, s2 = par 2 in
        let p4, s4 = par 4 in
        List.iter
          (fun (p : Checker.Report.t) ->
            if
              p.clauses_built <> bf.Checker.Report.clauses_built
              || p.resolution_steps <> bf.Checker.Report.resolution_steps
              || p.learned_built_ids <> bf.Checker.Report.learned_built_ids
            then failwith (name ^ ": par report diverged from bf"))
          [ p1; p2; p4 ];
        let live_delta =
          if bf.Checker.Report.peak_live_clauses = 0 then 0.0
          else
            float_of_int
              (p4.Checker.Report.peak_live_clauses
              - bf.Checker.Report.peak_live_clauses)
            /. float_of_int bf.Checker.Report.peak_live_clauses
        in
        [
          name;
          string_of_int bf.Checker.Report.resolution_steps;
          string_of_int p4.Checker.Report.wavefronts;
          string_of_int p4.Checker.Report.max_wavefront_width;
          fmt_f ~decimals:3 bf_s;
          fmt_f ~decimals:3 s1;
          fmt_f ~decimals:3 s2;
          fmt_f ~decimals:3 s4;
          fmt_f ~decimals:2 (bf_s /. Float.max 1e-6 s4);
          string_of_int bf.Checker.Report.peak_live_clauses;
          string_of_int p4.Checker.Report.peak_live_clauses;
          fmt_pct live_delta;
        ])
      instances
  in
  print_table "par"
    ~headers:
      [
        "instance"; "resolutions"; "wavefronts"; "max width"; "bf (s)";
        "par j1 (s)"; "par j2 (s)"; "par j4 (s)"; "speedup@4"; "bf live";
        "par live"; "live delta";
      ]
    ~align:[ Harness.Table.Left ]
    rows

(* php_8 is the ≥100k-resolution family the acceptance sweep targets
   (~169k resolutions); php_7 gives a second, lighter point. *)
let par_full () =
  par_sweep
    [
      ("php_7", fun () -> Gen.Php.unsat ~holes:7);
      ("php_8", fun () -> Gen.Php.unsat ~holes:8);
    ]

(* CI-sized sweep: one small family, same columns and JSON artifact. *)
let par_quick () = par_sweep [ ("php_5", fun () -> Gen.Php.unsat ~holes:5) ]

(* --- stream: materialized vs online validation -------------------------- *)

(* Contrast the buffered pipeline (solve into an in-memory trace, then
   check it) with the online one (lint + BF pass one tee'd off the live
   solver stream, reconstruction off a spooled temp file).  The encoder
   high-water mark is the online mode's memory story: bounded by the
   flush threshold while the buffered path holds the whole encoded
   trace.  OCaml's top-heap high-water mark is monotonic per process, so
   the online run goes first and the buffered run can only push the mark
   higher — the delta column is the materialization cost the online mode
   avoids. *)
let stream_bench instances =
  print_endline
    "Stream. Materialized (bf) vs online validation: wall time and \
     buffering\n";
  let mb words = float_of_int (words * 8) /. 1e6 in
  let rows =
    List.concat_map
      (fun (name, gen) ->
        let f : Sat.Cnf.t = gen () in
        List.map
          (fun (fmt_name, format) ->
            Gc.compact ();
            let online, online_s =
              Harness.Timer.time (fun () ->
                  Pipeline.Validate.run ~format
                    ~strategy:Pipeline.Validate.Online f)
            in
            let heap_after_online = (Gc.quick_stat ()).Gc.top_heap_words in
            let buffered, buffered_s =
              Harness.Timer.time (fun () ->
                  Pipeline.Validate.run ~format
                    ~strategy:Pipeline.Validate.Breadth_first f)
            in
            let heap_after_buffered = (Gc.quick_stat ()).Gc.top_heap_words in
            (match (online.Pipeline.Validate.verdict,
                    buffered.Pipeline.Validate.verdict) with
             | Pipeline.Validate.Unsat_verified _,
               Pipeline.Validate.Unsat_verified _ -> ()
             | _ -> failwith (name ^ ": expected verified UNSAT both ways"));
            let info = Option.get online.Pipeline.Validate.online in
            [
              name;
              fmt_name;
              string_of_int online.Pipeline.Validate.trace_bytes;
              string_of_int info.Pipeline.Validate.peak_buffered_bytes;
              fmt_f ~decimals:3 buffered_s;
              fmt_f ~decimals:3 online_s;
              fmt_f ~decimals:1 (mb heap_after_online);
              fmt_f ~decimals:1 (mb heap_after_buffered);
            ])
          [ ("ascii", Trace.Writer.Ascii); ("binary", Trace.Writer.Binary) ])
      instances
  in
  print_table "stream"
    ~headers:
      [
        "instance"; "format"; "trace (B)"; "peak buffered (B)";
        "buffered (s)"; "online (s)"; "heap@online (MB)"; "heap@buffered (MB)";
      ]
    ~align:[ Harness.Table.Left; Harness.Table.Left ]
    rows

let stream_full () =
  stream_bench
    [
      ("php_7", fun () -> Gen.Php.unsat ~holes:7);
      ("php_8", fun () -> Gen.Php.unsat ~holes:8);
    ]

(* CI-sized run: one small family, same columns and JSON artifact. *)
let stream_quick () =
  stream_bench [ ("php_5", fun () -> Gen.Php.unsat ~holes:5) ]

(* --- trim: static core-reachable trimming -------------------------------- *)

(* Size reduction and downstream payoff of the {!Analysis.Dag} trimmer:
   per family and encoding, records/bytes before and after, the dead
   fraction dropped, the one-shot static trim cost, and the bf re-check
   wall time on the original vs the trimmed trace.  Every trimmed trace
   is re-verified before its timing is trusted: bf must accept it, and
   the clauses it builds must be exactly the trimmer's kept set. *)
let trim_bench instances =
  print_endline
    "Trim. Static core-reachable trimming: size, cost, re-check payoff\n";
  let rows =
    List.concat_map
      (fun (name, generate) ->
        let f : Sat.Cnf.t = generate () in
        List.map
          (fun (fmt_name, format) ->
            let result, _stats, trace =
              Pipeline.Validate.solve_with_trace ~format f
            in
            (match result with
             | Solver.Cdcl.Unsat -> ()
             | Solver.Cdcl.Sat _ ->
               failwith
                 (name ^ ": benchmark instance unexpectedly satisfiable"));
            let do_trim () =
              let w = Trace.Writer.create format in
              match
                Analysis.Dag.trim (Trace.Reader.From_string trace) w
              with
              | Ok (stats, _profile) -> (stats, Trace.Writer.contents w)
              | Error e ->
                failwith
                  (Printf.sprintf "%s/%s: trim: %s" name fmt_name
                     e.Analysis.Dag.message)
            in
            let (stats, trimmed), trim_s = timed_median do_trim in
            let recheck label t =
              match Checker.Bf.check f (Trace.Reader.From_string t) with
              | Ok r -> r
              | Error d ->
                failwith
                  (Printf.sprintf "%s/%s: bf on %s trace: %s" name fmt_name
                     label
                     (Checker.Diagnostics.to_string d))
            in
            let _, orig_s =
              timed_median (fun () -> recheck "original" trace)
            in
            let r_trim, trimmed_s =
              timed_median (fun () -> recheck "trimmed" trimmed)
            in
            if r_trim.Checker.Report.clauses_built <> stats.Analysis.Dag.kept_learned
            then
              failwith
                (Printf.sprintf
                   "%s/%s: bf built %d clauses on the trimmed trace, trimmer \
                    kept %d"
                   name fmt_name r_trim.Checker.Report.clauses_built
                   stats.Analysis.Dag.kept_learned);
            let learned_in =
              stats.Analysis.Dag.kept_learned
              + stats.Analysis.Dag.dropped_learned
            in
            let dead_frac =
              if learned_in = 0 then 0.0
              else
                float_of_int stats.Analysis.Dag.dropped_learned
                /. float_of_int learned_in
            in
            [
              name;
              fmt_name;
              string_of_int stats.Analysis.Dag.records_in;
              string_of_int stats.Analysis.Dag.records_out;
              string_of_int stats.Analysis.Dag.bytes_in;
              string_of_int stats.Analysis.Dag.bytes_out;
              fmt_pct dead_frac;
              fmt_f ~decimals:3 trim_s;
              fmt_f ~decimals:3 orig_s;
              fmt_f ~decimals:3 trimmed_s;
              fmt_f ~decimals:2 (orig_s /. Float.max 1e-6 trimmed_s);
            ])
          [ ("ascii", Trace.Writer.Ascii); ("binary", Trace.Writer.Binary) ])
      instances
  in
  print_table "trim"
    ~headers:
      [
        "instance"; "format"; "recs in"; "recs out"; "bytes in"; "bytes out";
        "dead"; "trim (s)"; "bf orig (s)"; "bf trim (s)"; "recheck speedup";
      ]
    ~align:[ Harness.Table.Left; Harness.Table.Left ]
    rows

let trim_full () =
  trim_bench
    [
      ("php_7", fun () -> Gen.Php.unsat ~holes:7);
      ("php_8", fun () -> Gen.Php.unsat ~holes:8);
    ]

(* CI-sized run: one small family, same columns and JSON artifact. *)
let trim_quick () = trim_bench [ ("php_5", fun () -> Gen.Php.unsat ~holes:5) ]

(* --- hinted one-pass vs breadth-first ----------------------------------- *)

(* The hinted trade: `rescheck hint` pays one static conversion pass so
   every later check runs in a single trace read at breadth-first's peak
   residency.  Per family and encoding: the conversion cost, trace
   growth, wall time and learned-clause throughput for bf (two passes)
   vs the one-pass hinted check, and the peak-live story against df.
   Two hard gates ride along: the hinted report must be bit-identical
   to bf's, and hinted peak-live must stay at-or-below both bf's runtime
   peak and df's (the memory the hints exist to avoid).  The wall-clock
   "gate" column flags a hinted check slower than bf beyond noise —
   one pass should never lose to two. *)
let hint_bench instances =
  print_endline
    "Hint. One-pass checking of deletion-hinted traces vs breadth-first\n";
  let rows =
    List.concat_map
      (fun (name, generate) ->
        let f : Sat.Cnf.t = generate () in
        List.map
          (fun (fmt_name, format) ->
            let result, _stats, trace =
              Pipeline.Validate.solve_with_trace ~format f
            in
            (match result with
             | Solver.Cdcl.Unsat -> ()
             | Solver.Cdcl.Sat _ ->
               failwith
                 (name ^ ": benchmark instance unexpectedly satisfiable"));
            let do_hint () =
              let w = Trace.Writer.create ~version:2 format in
              match
                Analysis.Dag.hint (Trace.Reader.From_string trace) w
              with
              | Ok (stats, profile) ->
                (stats, profile, Trace.Writer.contents w)
              | Error e ->
                failwith
                  (Printf.sprintf "%s/%s: hint: %s" name fmt_name
                     e.Analysis.Dag.message)
            in
            let (hstats, dag, hinted), hint_conv_s = timed_median do_hint in
            let check label checker t =
              match checker f (Trace.Reader.From_string t) with
              | Ok r -> r
              | Error d ->
                failwith
                  (Printf.sprintf "%s/%s: %s: %s" name fmt_name label
                     (Checker.Diagnostics.to_string d))
            in
            let bf, bf_s =
              timed_median (fun () -> check "bf" Checker.Bf.check trace)
            in
            let df, _ =
              timed_median (fun () -> check "df" Checker.Df.check trace)
            in
            let hint, hint_s =
              timed_median (fun () ->
                  check "hint" Checker.Hint.check hinted)
            in
            (* identity gate: the one-pass report matches bf bit for bit *)
            if
              hint.Checker.Report.clauses_built
              <> bf.Checker.Report.clauses_built
              || hint.Checker.Report.resolution_steps
                 <> bf.Checker.Report.resolution_steps
              || hint.Checker.Report.learned_built_ids
                 <> bf.Checker.Report.learned_built_ids
            then
              failwith
                (Printf.sprintf "%s/%s: hinted report differs from bf" name
                   fmt_name);
            (* memory gate: the hints must deliver bf residency, which in
               turn undercuts df — that is the whole point of the format *)
            if
              hint.Checker.Report.peak_live_clauses
              > bf.Checker.Report.peak_live_clauses
            then
              failwith
                (Printf.sprintf "%s/%s: hinted peak %d > bf peak %d" name
                   fmt_name hint.Checker.Report.peak_live_clauses
                   bf.Checker.Report.peak_live_clauses);
            if
              hint.Checker.Report.peak_live_clauses
              > df.Checker.Report.peak_live_clauses
            then
              failwith
                (Printf.sprintf "%s/%s: hinted peak %d > df peak %d" name
                   fmt_name hint.Checker.Report.peak_live_clauses
                   df.Checker.Report.peak_live_clauses);
            let predicted_df =
              dag.Analysis.Dag.predicted_peak_live.Analysis.Dag.df
            in
            if hint.Checker.Report.peak_live_clauses > predicted_df then
              failwith
                (Printf.sprintf
                   "%s/%s: hinted peak %d > df static prediction %d" name
                   fmt_name hint.Checker.Report.peak_live_clauses
                   predicted_df);
            let throughput r s =
              float_of_int r.Checker.Report.clauses_built
              /. Float.max 1e-6 s
            in
            (* wall-clock gate, with slack for timer noise on CI boxes *)
            let gate = if hint_s <= bf_s *. 1.15 then "ok" else "FAIL" in
            [
              name;
              fmt_name;
              string_of_int bf.Checker.Report.total_learned;
              string_of_int hstats.Analysis.Dag.hints;
              fmt_f ~decimals:3 hint_conv_s;
              fmt_f ~decimals:3 bf_s;
              fmt_f ~decimals:3 hint_s;
              fmt_f ~decimals:2 (bf_s /. Float.max 1e-6 hint_s);
              fmt_f ~decimals:0 (throughput bf bf_s);
              fmt_f ~decimals:0 (throughput hint hint_s);
              string_of_int df.Checker.Report.peak_live_clauses;
              string_of_int predicted_df;
              string_of_int bf.Checker.Report.peak_live_clauses;
              string_of_int hint.Checker.Report.peak_live_clauses;
              gate;
            ])
          [ ("ascii", Trace.Writer.Ascii); ("binary", Trace.Writer.Binary) ])
      instances
  in
  print_table "hint"
    ~headers:
      [
        "instance"; "format"; "learned"; "hints"; "hint (s)"; "bf (s)";
        "1pass (s)"; "speedup"; "bf cl/s"; "1pass cl/s"; "df peak";
        "df pred"; "bf peak"; "1pass peak"; "gate";
      ]
    ~align:[ Harness.Table.Left; Harness.Table.Left ]
    rows;
  if List.exists (fun r -> List.mem "FAIL" r) rows then begin
    prerr_endline
      "hint: one-pass checking lost to breadth-first beyond the noise \
       budget";
    exit 1
  end

let hint_full () =
  hint_bench
    [
      ("php_7", fun () -> Gen.Php.unsat ~holes:7);
      ("php_8", fun () -> Gen.Php.unsat ~holes:8);
    ]

(* CI-sized run: one small family, same columns, JSON artifact and gate. *)
let hint_quick () = hint_bench [ ("php_5", fun () -> Gen.Php.unsat ~holes:5) ]

(* --- simplify: proof-emitting preprocessing ------------------------------ *)

(* The cost/benefit of running the proof-emitting simplifier in front of
   the solver.  Per family and encoding: trace size and end-to-end wall
   time (solve + bf check) with preprocessing off vs on.  Both traces are
   checked against the ORIGINAL formula — the pre trace opens with the
   simplifier's derivation records, so the checker never needs the
   simplified formula.  Hard gates: both runs must verify, and the pre
   run's unsat core must stay within the original clause indices. *)
let simplify_bench instances =
  print_endline
    "Simplify. Proof-emitting preprocessing: trace size and end-to-end \
     payoff\n\
     (e2e = solve + bf check; the pre trace checks against the original \
     formula)\n";
  (* acceptance gate: preprocessing must pay for itself somewhere — at
     least one family/encoding must shrink the trace while keeping the
     end-to-end time within 1.1x of the plain run *)
  let wins = ref false in
  let rows =
    List.concat_map
      (fun (fam : Gen.Families.family) ->
        let f = fam.generate () in
        List.map
          (fun (fmt_name, format) ->
            let run ~pre () =
              let result, _stats, trace =
                Pipeline.Validate.solve_with_trace ~format ~pre f
              in
              (match result with
               | Solver.Cdcl.Unsat -> ()
               | Solver.Cdcl.Sat _ ->
                 failwith
                   (fam.name ^ ": benchmark instance unexpectedly \
                    satisfiable"));
              trace
            in
            let check label trace =
              match Checker.Bf.check f (Trace.Reader.From_string trace) with
              | Ok r -> r
              | Error d ->
                failwith
                  (Printf.sprintf "%s/%s: bf on %s trace: %s" fam.name
                     fmt_name label
                     (Checker.Diagnostics.to_string d))
            in
            let trace_off, solve_off = timed_median (run ~pre:false) in
            let _, check_off =
              timed_median (fun () -> check "plain" trace_off)
            in
            let trace_on, solve_on = timed_median (run ~pre:true) in
            let _, check_on = timed_median (fun () -> check "pre" trace_on) in
            (* core gate: the pre proof's core still indexes the original
               DIMACS (df tracks the core; bf does not) *)
            (match
               Checker.Df.check f (Trace.Reader.From_string trace_on)
             with
             | Error d ->
               failwith
                 (Printf.sprintf "%s/%s: df on pre trace: %s" fam.name
                    fmt_name
                    (Checker.Diagnostics.to_string d))
             | Ok r ->
               let n = Sat.Cnf.nclauses f in
               List.iter
                 (fun id ->
                   if id < 1 || id > n then
                     failwith
                       (Printf.sprintf
                          "%s/%s: pre core id %d outside original 1..%d"
                          fam.name fmt_name id n))
                 r.Checker.Report.core_original_ids);
            let b_off = String.length trace_off
            and b_on = String.length trace_on in
            let e2e_off = solve_off +. check_off
            and e2e_on = solve_on +. check_on in
            if b_on < b_off && e2e_on <= e2e_off *. 1.1 then wins := true;
            [
              fam.name;
              fmt_name;
              string_of_int b_off;
              string_of_int b_on;
              fmt_pct
                (float_of_int (b_off - b_on) /. float_of_int (max 1 b_off));
              fmt_f ~decimals:3 solve_off;
              fmt_f ~decimals:3 solve_on;
              fmt_f ~decimals:3 check_off;
              fmt_f ~decimals:3 check_on;
              fmt_f ~decimals:3 e2e_off;
              fmt_f ~decimals:3 e2e_on;
              fmt_f ~decimals:2 (e2e_on /. Float.max 1e-6 e2e_off);
            ])
          [ ("ascii", Trace.Writer.Ascii); ("binary", Trace.Writer.Binary) ])
      instances
  in
  print_table "simplify"
    ~headers:
      [
        "instance"; "format"; "bytes off"; "bytes on"; "saved";
        "solve off (s)"; "solve on (s)"; "check off (s)"; "check on (s)";
        "e2e off (s)"; "e2e on (s)"; "e2e ratio";
      ]
    ~align:[ Harness.Table.Left; Harness.Table.Left ]
    rows;
  if not !wins then begin
    prerr_endline
      "simplify: no family shrank its trace within the 1.1x end-to-end \
       budget";
    exit 1
  end

let simplify_families names =
  List.map
    (fun n ->
      match Gen.Families.find n with
      | Some fam -> fam
      | None -> failwith ("unknown family " ^ n))
    names

let simplify_full () =
  simplify_bench
    (simplify_families
       [ "php_8"; "rand_unsat"; "bw_grid"; "fpga_route"; "counter_bmc" ])

(* CI-sized run: two small families, same columns and JSON artifact. *)
let simplify_quick () =
  simplify_bench (simplify_families [ "php_8"; "counter_bmc" ])

(* --- parse-path micro-bench: ascii/binary x mmap/channel ---------------- *)

(* Throughput and allocation of the trace decode alone (no checking):
   every record of a php trace is parsed and dropped.  The wall-clock
   columns are machine-specific; the allocation columns are the
   deterministic contract of the zero-copy path — the mmap backing
   decodes in place, so its minor words per record are bounded by the
   event values themselves (the [Learned] sources array), with no line
   buffers or block copies, and its major-heap churn during the parse
   stays near zero. *)
let parse_bench () =
  print_endline
    "Parse path: records/sec, MB/sec and GC allocation per backing\n\
     (php_8 trace; mmap decodes in place, channel streams 64 KiB blocks)\n";
  let f = Gen.Php.unsat ~holes:8 in
  let trace_file fmt =
    let w = Trace.Writer.create fmt in
    ignore (Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink w) f);
    let path = Filename.temp_file "bench_parse" ".trc" in
    Trace.Writer.to_file w path;
    (path, Trace.Writer.bytes_written w)
  in
  let drain path io () =
    let cur = Trace.Reader.cursor ~io (Trace.Reader.From_file path) in
    let n = ref 0 in
    Trace.Reader.iter_cursor cur (fun _ -> incr n);
    Trace.Reader.close cur;
    !n
  in
  let gc_delta run =
    let s0 = Gc.quick_stat () in
    let x = run () in
    let s1 = Gc.quick_stat () in
    ( x,
      s1.Gc.minor_words -. s0.Gc.minor_words,
      (s1.Gc.major_words -. s0.Gc.major_words)
      -. (s1.Gc.promoted_words -. s0.Gc.promoted_words) )
  in
  let rows =
    List.concat_map
      (fun (fmt_name, fmt) ->
        let path, bytes = trace_file fmt in
        let rows =
          List.map
            (fun (io_name, io) ->
              let run = drain path io in
              let records, minor, major = gc_delta run in
              let _, seconds = timed_median (fun () -> ignore (run ())) in
              [
                fmt_name;
                io_name;
                string_of_int records;
                fmt_f ~decimals:2 (float_of_int bytes /. 1.048576e6);
                fmt_f ~decimals:0 (float_of_int records /. seconds);
                fmt_f ~decimals:1
                  (float_of_int bytes /. 1.048576e6 /. seconds);
                fmt_f ~decimals:1 (minor /. float_of_int (max 1 records));
                fmt_f ~decimals:0 major;
              ])
            [ ("mmap", `Mmap); ("channel", `Channel) ]
        in
        Sys.remove path;
        rows)
      [ ("ascii", Trace.Writer.Ascii); ("binary", Trace.Writer.Binary) ]
  in
  print_table "parse"
    ~headers:
      [
        "encoding"; "io"; "records"; "MB"; "rec/s"; "MB/s";
        "minor w/rec"; "major words";
      ]
    ~align:[ Harness.Table.Left; Harness.Table.Left ]
    rows

(* --- Bechamel micro-benchmarks ------------------------------------------ *)

let micro () =
  print_endline
    "Micro-benchmarks (Bechamel, monotonic clock, ns/run estimates)\n";
  let php6 = Gen.Php.unsat ~holes:6 in
  let php5 = Gen.Php.unsat ~holes:5 in
  let counting_cfg =
    { Solver.Cdcl.default_config with bcp = Solver.Cdcl.Counting }
  in
  let trace5 =
    let _, _, t = Pipeline.Validate.solve_with_trace php5 in
    t
  in
  let trace5_bin =
    let w = Trace.Writer.create Trace.Writer.Binary in
    ignore (Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink w) php5);
    Trace.Writer.contents w
  in
  let kernel = Proof.Kernel.create (Sat.Cnf.create 64) in
  let c1 = Sat.Clause.of_ints [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let c2 = Sat.Clause.of_ints [ -1; 9; 10; 11; 12; 13; 14; 15 ] in
  let tests =
    [
      (* ablation: Chaff's two-watched scheme vs counter-based BCP *)
      Bechamel.Test.make ~name:"solve/php6/two-watched-bcp"
        (Bechamel.Staged.stage (fun () -> Solver.Cdcl.solve php6));
      Bechamel.Test.make ~name:"solve/php6/counting-bcp"
        (Bechamel.Staged.stage (fun () ->
             Solver.Cdcl.solve ~config:counting_cfg php6));
      (* solving with and without trace generation (Table 1's contrast) *)
      Bechamel.Test.make ~name:"solve/php5/trace-off"
        (Bechamel.Staged.stage (fun () -> Solver.Cdcl.solve php5));
      Bechamel.Test.make ~name:"solve/php5/trace-on"
        (Bechamel.Staged.stage (fun () ->
             let w = Trace.Writer.create Trace.Writer.Ascii in
             Solver.Cdcl.solve ~trace:(Trace.Writer.as_sink w) php5));
      (* the two checkers (Table 2's contrast) *)
      Bechamel.Test.make ~name:"check/php5/depth-first"
        (Bechamel.Staged.stage (fun () ->
             Checker.Df.check php5 (Trace.Reader.From_string trace5)));
      Bechamel.Test.make ~name:"check/php5/breadth-first"
        (Bechamel.Staged.stage (fun () ->
             Checker.Bf.check php5 (Trace.Reader.From_string trace5)));
      (* trace parsing, ascii vs binary (the paper's compaction remark) *)
      Bechamel.Test.make ~name:"trace/parse/ascii"
        (Bechamel.Staged.stage (fun () ->
             Trace.Reader.fold (Trace.Reader.From_string trace5)
               (fun n _ -> n + 1)
               0));
      Bechamel.Test.make ~name:"trace/parse/binary"
        (Bechamel.Staged.stage (fun () ->
             Trace.Reader.fold (Trace.Reader.From_string trace5_bin)
               (fun n _ -> n + 1)
               0));
      (* one checked resolution step through the shared kernel *)
      Bechamel.Test.make ~name:"resolution/checked-step"
        (Bechamel.Staged.stage (fun () ->
             Proof.Kernel.resolve_lits kernel ~context:"bench" ~c1_id:1
               ~c2_id:2 c1 c2));
    ]
  in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:200
      ~quota:(Bechamel.Time.second 0.5)
      ~kde:None ()
  in
  let ols =
    Bechamel.Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Hashtbl.create 16 in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let m =
            Bechamel.Benchmark.run cfg
              [ Bechamel.Toolkit.Instance.monotonic_clock ]
              elt
          in
          Hashtbl.replace results (Bechamel.Test.Elt.name elt)
            (Bechamel.Analyze.one ols Bechamel.Toolkit.Instance.monotonic_clock m))
        (Bechamel.Test.elements test))
    tests;
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Bechamel.Analyze.OLS.estimates est with
          | Some [ t ] -> t
          | _ -> nan
        in
        [ name; Printf.sprintf "%.0f" ns; fmt_f ~decimals:3 (ns /. 1e6) ]
        :: acc)
      results []
    |> List.sort compare
  in
  print_table "micro"
    ~headers:[ "benchmark"; "ns/run"; "ms/run" ]
    ~align:[ Harness.Table.Left ]
    rows

(* --- overhead: cost of the telemetry layer ----------------------------- *)

(* Gates the zero-cost-when-disabled claim.  Pitting two "identical up
   to the guard" synthetic loops against each other turned out to
   measure code-layout luck, not the guard (the deltas swung 20-120%
   run to run), so the probe models the overhead instead:

   1. Measure the per-call cost of the disabled guard itself — the exact
      statement every instrumentation site uses,
      [if Obs.Ctl.on () then incr] — against an opaque always-false
      branch, in a tight loop where the call dominates.

   2. Run the real workload (breadth-first validation of PHP(7,6)) once
      with telemetry on to *count* guard firings: sites fire per
      conflict, per trace event and per resolution chain, never per
      literal, so the counters bound the firing rate.  A generous
      [site_factor] covers the handful of guarded statements each
      counted event passes through across layers.

   3. Modeled overhead = guard cost x firings / disabled wall time.
      Exceeding the budget (default 2%, override with
      RESCHECK_OVERHEAD_PCT) exits non-zero so CI can gate on it.

   The off-vs-on wall times of the same workload are printed as an
   informational row: what fully *enabled* telemetry costs. *)
let overhead () =
  let budget_pct =
    match Sys.getenv_opt "RESCHECK_OVERHEAD_PCT" with
    | Some s -> (try float_of_string s with _ -> 2.0)
    | None -> 2.0
  in
  (* 1. per-call guard cost *)
  let m = Obs.Metrics.counter Obs.Metrics.global "bench.overhead_probe" in
  let n_calls = 20_000_000 in
  let guard_loop () =
    for _ = 1 to n_calls do
      if Obs.Ctl.on () then Obs.Metrics.Counter.incr m 1
    done
  in
  let base_loop () =
    for _ = 1 to n_calls do
      if Sys.opaque_identity false then Obs.Metrics.Counter.incr m 1
    done
  in
  (* the journal guard is the same shape as the telemetry guard but a
     separate flag; measure it separately so the gate covers both *)
  Obs.Journal.disarm ();
  let journal_loop () =
    for _ = 1 to n_calls do
      if Obs.Journal.on () then
        Obs.Journal.record ~sub:"bench" "probe" []
    done
  in
  let reps = 7 in
  let best f =
    let t = ref infinity in
    for _ = 1 to reps do
      let x = Harness.Timer.time_only f in
      if x < !t then t := x
    done;
    !t
  in
  let t_base = best base_loop and t_guard = best guard_loop in
  let t_journal = best journal_loop in
  let guard_ns =
    Float.max 0.0 ((t_guard -. t_base) /. float_of_int n_calls *. 1e9)
  in
  let journal_ns =
    Float.max 0.0 ((t_journal -. t_base) /. float_of_int n_calls *. 1e9)
  in
  (* 2. count guard firings on the real workload *)
  let f = Gen.Php.unsat ~holes:6 in
  let run () =
    match
      Pipeline.Validate.run ~strategy:Pipeline.Validate.Breadth_first f
    with
    | { verdict = Pipeline.Validate.Unsat_verified _; _ } -> ()
    | _ -> failwith "overhead: php_6 did not verify"
  in
  let t_off = best run in
  Obs.Ctl.enable ();
  Obs.Metrics.reset Obs.Metrics.global;
  let t_on = Harness.Timer.time_only run in
  let snapshot = Obs.Metrics.snapshot Obs.Metrics.global in
  Obs.Ctl.disable ();
  Obs.Metrics.reset Obs.Metrics.global;
  Obs.Span.reset ();
  let counted = [ "solver.conflicts"; "trace.events"; "kernel.chains" ] in
  let firings =
    List.fold_left
      (fun acc name ->
        match List.assoc_opt name snapshot with
        | Some v -> acc +. v
        | None -> acc)
      0.0 counted
  in
  let site_factor = 4.0 in
  (* journal sites (restarts, spills, arena growth ...) fire far less
     often than the counted hot metrics; charging them at one guard
     evaluation per counted firing is a deliberate over-estimate *)
  let journal_site_factor = 1.0 in
  (* 3. model and gate *)
  let modeled_pct =
    ((guard_ns *. site_factor) +. (journal_ns *. journal_site_factor))
    *. 1e-9 *. firings /. t_off *. 100.0
  in
  let workload_pct = (t_on -. t_off) /. t_off *. 100.0 in
  print_table "overhead"
    ~headers:[ "probe"; "value"; "overhead %"; "budget %"; "verdict" ]
    ~align:[ Harness.Table.Left ]
    [
      [ "disabled guard cost (ns/call)";
        fmt_f ~decimals:2 guard_ns; "-"; "-"; "info" ];
      [ "disabled journal guard (ns/call)";
        fmt_f ~decimals:2 journal_ns; "-"; "-"; "info" ];
      [ "guard firings, validate php_6 bf";
        Printf.sprintf "%.0f x%.0f" firings site_factor; "-"; "-"; "info" ];
      [ "modeled disabled overhead";
        fmt_f ~decimals:4 t_off;
        fmt_f ~decimals:3 modeled_pct;
        fmt_f ~decimals:1 budget_pct;
        (if modeled_pct <= budget_pct then "ok" else "FAIL") ];
      [ "validate php_6 bf, off vs on (s)";
        Printf.sprintf "%s / %s" (fmt_f ~decimals:4 t_off)
          (fmt_f ~decimals:4 t_on);
        fmt_f ~decimals:2 workload_pct; "-"; "info" ];
    ];
  if modeled_pct > budget_pct then begin
    Printf.eprintf
      "overhead: disabled telemetry modeled at %.3f%% > %.1f%% budget \
       (guard %.2f ns, %.0f firings)\n"
      modeled_pct budget_pct guard_ns firings;
    exit 1
  end

(* --- regress: diff fresh BENCH tables against committed baselines ------- *)

(* The solver is seeded, so every count/byte column in a BENCH table is
   machine-independent; only wall-clock-derived columns vary run to run.
   [regress] therefore compares a freshly produced BENCH_<t>.json
   against the committed baseline cell by cell: headers and row counts
   must match exactly, timing-flavoured columns (recognised by header
   substrings) are skipped, non-numeric cells must be identical, and
   numeric cells may drift at most RESCHECK_REGRESS_PCT percent
   (default 2).  Gated drift exits non-zero, turning the bench series
   into an enforced trajectory rather than eyeballed artifacts. *)

let timing_column header =
  let h = String.lowercase_ascii header in
  let contains sub =
    let nh = String.length h and ns = String.length sub in
    let rec go i = i + ns <= nh && (String.sub h i ns = sub || go (i + 1)) in
    go 0
  in
  List.exists contains
    [
      "(s)"; "(mb)"; "/s"; "speedup"; "ratio"; "ns/"; "ms/"; "overhead";
      "budget"; "value"; "buffered"; "verdict";
    ]

let cell_number s =
  let s = String.trim s in
  let n = String.length s in
  let s =
    if n > 0 && (s.[n - 1] = '%' || s.[n - 1] = 'x') then String.sub s 0 (n - 1)
    else s
  in
  float_of_string_opt s

let regress () =
  let dir =
    if Array.length Sys.argv > 2 then Sys.argv.(2) else "bench/baselines"
  in
  let budget_pct =
    match Sys.getenv_opt "RESCHECK_REGRESS_PCT" with
    | Some s -> (try float_of_string s with _ -> 2.0)
    | None -> 2.0
  in
  let baselines =
    match Sys.readdir dir with
    | entries ->
      Array.to_list entries
      |> List.filter (fun f ->
             String.length f > 10
             && String.sub f 0 6 = "BENCH_"
             && Filename.check_suffix f ".json")
      |> List.sort String.compare
    | exception Sys_error msg ->
      Printf.eprintf "regress: cannot read baseline dir: %s\n" msg;
      exit 2
  in
  if baselines = [] then begin
    Printf.eprintf "regress: no BENCH_*.json baselines in %s\n" dir;
    exit 2
  end;
  let strings_of j =
    match Obs.Json.list j with
    | Some l -> List.filter_map Obs.Json.string l
    | None -> []
  in
  let load path =
    let j = Obs.Json.of_file path in
    let headers =
      match Obs.Json.member "headers" j with Some h -> strings_of h | None -> []
    in
    let rows =
      match Obs.Json.(Option.bind (member "rows" j) list) with
      | Some rs -> List.map strings_of rs
      | None -> []
    in
    (headers, rows)
  in
  let any_fail = ref false in
  let report_rows =
    List.map
      (fun file ->
        let table =
          Filename.chop_suffix file ".json"
          |> fun s -> String.sub s 6 (String.length s - 6)
        in
        if not (Sys.file_exists file) then
          [ table; "-"; "-"; "-"; "skip (no fresh table)" ]
        else
          match (load (Filename.concat dir file), load file) with
          | exception Obs.Json.Parse_error msg ->
            any_fail := true;
            Printf.eprintf "regress: %s: %s\n" file msg;
            [ table; "-"; "-"; "-"; "FAIL (unparsable)" ]
          | (bh, brows), (fh, frows) ->
            if bh <> fh then begin
              any_fail := true;
              [ table; "-"; "-"; "-"; "FAIL (headers changed)" ]
            end
            else if List.length brows <> List.length frows then begin
              any_fail := true;
              Printf.eprintf "regress: %s: %d baseline rows, %d fresh\n"
                table (List.length brows) (List.length frows);
              [ table; "-"; "-"; "-"; "FAIL (row count)" ]
            end
            else begin
              let checked = ref 0 and skipped = ref 0 in
              let worst = ref 0.0 in
              let failures = ref [] in
              List.iteri
                (fun ri (brow, frow) ->
                  List.iteri
                    (fun ci (b, f) ->
                      let header = List.nth bh ci in
                      if timing_column header then incr skipped
                      else begin
                        incr checked;
                        match (cell_number b, cell_number f) with
                        | Some nb, Some nf ->
                          let drift =
                            if nb = 0.0 then if nf = 0.0 then 0.0 else infinity
                            else Float.abs (nf -. nb) /. Float.abs nb *. 100.0
                          in
                          if drift > !worst then worst := drift;
                          if drift > budget_pct then
                            failures :=
                              Printf.sprintf
                                "%s row %d %S: %s -> %s (%.2f%% > %.1f%%)"
                                table ri header b f drift budget_pct
                              :: !failures
                        | _ ->
                          if b <> f then
                            failures :=
                              Printf.sprintf "%s row %d %S: %S -> %S" table
                                ri header b f
                              :: !failures
                      end)
                    (List.combine brow frow))
                (List.combine brows frows);
              if !failures <> [] then begin
                any_fail := true;
                List.iter
                  (fun m -> Printf.eprintf "regress: %s\n" m)
                  (List.rev !failures)
              end;
              [
                table;
                string_of_int (List.length brows);
                Printf.sprintf "%d/%d" !checked (!checked + !skipped);
                (if Float.is_finite !worst then
                   Printf.sprintf "%.3f%%" !worst
                 else "inf");
                (if !failures = [] then "ok"
                 else Printf.sprintf "FAIL (%d cells)" (List.length !failures));
              ]
            end)
      baselines
  in
  print_table "regress"
    ~headers:[ "table"; "rows"; "cells checked"; "worst drift"; "verdict" ]
    ~align:[ Harness.Table.Left ]
    report_rows;
  if !any_fail then exit 1

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match mode with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "micro" -> micro ()
  | "ablation" -> ablation ()
  | "scaling" -> scaling ()
  | "baseline" -> baseline ()
  | "proofshape" -> proofshape ()
  | "par" -> par_full ()
  | "par_quick" -> par_quick ()
  | "stream" -> stream_full ()
  | "stream_quick" -> stream_quick ()
  | "trim" -> trim_full ()
  | "trim_quick" -> trim_quick ()
  | "hint" -> hint_full ()
  | "hint_quick" -> hint_quick ()
  | "simplify" -> simplify_full ()
  | "simplify_quick" -> simplify_quick ()
  | "parse" -> parse_bench ()
  | "overhead" -> overhead ()
  | "regress" -> regress ()
  | "all" ->
    table1 ();
    print_newline ();
    table2 ();
    print_newline ();
    table3 ();
    print_newline ();
    proofshape ();
    print_newline ();
    scaling ();
    print_newline ();
    ablation ();
    print_newline ();
    baseline ();
    print_newline ();
    par_full ();
    print_newline ();
    stream_full ();
    print_newline ();
    trim_full ();
    print_newline ();
    hint_full ();
    print_newline ();
    simplify_full ();
    print_newline ();
    micro ()
  | other ->
    Printf.eprintf
      "unknown mode %S (expected \
       table1|table2|table3|proofshape|scaling|ablation|baseline|par|\
       par_quick|stream|stream_quick|trim|trim_quick|hint|hint_quick|\
       simplify|simplify_quick|parse|overhead|regress|micro|all)\n"
      other;
    exit 2
