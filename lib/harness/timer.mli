(** CPU-time measurement for the experiment tables.  [Sys.time] (process
    CPU seconds) is used rather than wall clock: the benches are
    single-threaded and CPU time is robust against machine noise, matching
    how solver papers of the period reported runtimes.

    The parallel checker additionally needs wall clock — CPU seconds sum
    over domains and cannot show a speedup — so {!wall} and {!wall_time}
    expose [Unix.gettimeofday]. *)

(** [time f] runs [f ()] and returns its result with elapsed CPU seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_only f] is the elapsed CPU seconds of [f ()], discarding the
    result. *)
val time_only : (unit -> 'a) -> float

(** [wall ()] is the current wall-clock time in seconds. *)
val wall : unit -> float

(** [wall_time f] runs [f ()] and returns its result with elapsed
    wall-clock seconds. *)
val wall_time : (unit -> 'a) -> 'a * float
