let time f =
  let t0 = Sys.time () in
  let x = f () in
  let t1 = Sys.time () in
  (x, t1 -. t0)

let time_only f = snd (time f)

let wall () = Unix.gettimeofday ()

let wall_time f =
  let t0 = wall () in
  let x = f () in
  let t1 = wall () in
  (x, t1 -. t0)
