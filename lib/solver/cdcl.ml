type result =
  | Sat of Sat.Assignment.t
  | Unsat

type bcp_scheme = Two_watched | Counting

type restart_sequence = Geometric | Luby

type config = {
  var_decay : float;
  restart_first : int;
  restart_inc : float;
  restart_sequence : restart_sequence;
  enable_restarts : bool;
  enable_deletion : bool;
  enable_minimization : bool;
  max_learned_factor : float;
  max_learned_inc : float;
  random_decision_freq : float;
  seed : int;
  bcp : bcp_scheme;
  sanitize : bool;
  emit_deletes : bool;
  inprocess_interval : int;
}

let default_config = {
  var_decay = 0.95;
  restart_first = 100;
  restart_inc = 1.5;
  restart_sequence = Geometric;
  enable_restarts = true;
  enable_deletion = true;
  (* off by default: conflict-clause minimization postdates the paper
     (MiniSat 1.13); enabling it keeps traces valid — see the ablation *)
  enable_minimization = false;
  max_learned_factor = 1.0 /. 3.0;
  max_learned_inc = 1.1;
  random_decision_freq = 0.02;
  seed = 91648253;
  bcp = Two_watched;
  sanitize = false;
  emit_deletes = false;
  inprocess_interval = 0;
}

type stats = {
  decisions : int;
  propagations : int;
  conflicts : int;
  learned_clauses : int;
  learned_literals : int;
  deleted_clauses : int;
  restarts : int;
  max_decision_level : int;
}

(* for outcomes settled before search starts (e.g. by the simplifier) *)
let empty_stats = {
  decisions = 0;
  propagations = 0;
  conflicts = 0;
  learned_clauses = 0;
  learned_literals = 0;
  deleted_clauses = 0;
  restarts = 0;
  max_decision_level = 0;
}

(* Telemetry handles, resolved once at load.  Every update below is
   guarded by [Obs.Ctl.on ()] at per-conflict granularity — never inside
   propagation — so the disabled path costs one branch per conflict. *)
let m_conflicts = Obs.Metrics.counter Obs.Metrics.global "solver.conflicts"
let m_decisions = Obs.Metrics.gauge Obs.Metrics.global "solver.decisions"
let m_propagations = Obs.Metrics.gauge Obs.Metrics.global "solver.propagations"
let m_learned_alive = Obs.Metrics.gauge Obs.Metrics.global "solver.learned_alive"
let m_learned_lits =
  Obs.Metrics.histogram Obs.Metrics.global "solver.learned_clause_lits"

(* variable truth values packed as ints for speed *)
let v_false = 0
let v_true = 1
let v_unassigned = 2

type clause_rec = {
  cid : int;
  mutable lits : int array;      (* slots 0 and 1 are the watched literals *)
  learned : bool;
  mutable activity : float;
  mutable deleted : bool;
  attached : bool;               (* unit and tautological clauses are not watched *)
}

type t = {
  cfg : config;
  tracer : Trace.Sink.t option;
  nvars : int;
  clauses : clause_rec Sat.Vec.t;           (* index cid-1 *)
  watches : int Sat.Vec.t array;            (* per literal: watching cids *)
  occurs : int Sat.Vec.t array;             (* Counting scheme occurrence lists *)
  n_false : int Sat.Vec.t;                  (* Counting: false-literal count per cid-1 *)
  n_true : int Sat.Vec.t;                   (* Counting: true-literal count per cid-1 *)
  value : int array;                        (* per var *)
  level : int array;                        (* per var *)
  reason : int array;                       (* per var: antecedent cid or 0 *)
  pos : int array;                          (* per var: trail position *)
  trail : int Sat.Vec.t;                    (* literals, assignment order *)
  trail_lim : int Sat.Vec.t;                (* trail length at each decision *)
  mutable qhead : int;
  activity : float array;                   (* per var: VSIDS score *)
  mutable var_inc : float;
  mutable cla_inc : float;
  order : Heap.t;
  phase : Bytes.t;                          (* per var: saved polarity *)
  seen : Bytes.t;                           (* per var: conflict-analysis mark *)
  rng : Sat.Rng.t;
  mutable n_learned_alive : int;
  mutable max_learned : float;
  mutable last_inprocess : int;
  mutable s_decisions : int;
  mutable s_propagations : int;
  mutable s_conflicts : int;
  mutable s_learned : int;
  mutable s_learned_lits : int;
  mutable s_deleted : int;
  mutable s_restarts : int;
  mutable s_max_level : int;
}

let lit_value s l =
  let v = s.value.(Sat.Lit.var l) in
  if v = v_unassigned then v_unassigned
  else if Sat.Lit.is_neg l then 1 - v
  else v

let decision_level s = Sat.Vec.length s.trail_lim

let clause_of s cid = Sat.Vec.get s.clauses (cid - 1)

let emit s e =
  match s.tracer with
  | None -> ()
  | Some sink -> Trace.Sink.push sink e

(* --- assignment ------------------------------------------------------- *)

(* Counters are maintained at assignment/unassignment time so that they
   are exact even when a conflict aborts propagation mid-queue. *)
let bump_counters s l delta =
  Sat.Vec.iter
    (fun cid ->
      Sat.Vec.set s.n_true (cid - 1) (Sat.Vec.get s.n_true (cid - 1) + delta))
    s.occurs.(l);
  Sat.Vec.iter
    (fun cid ->
      Sat.Vec.set s.n_false (cid - 1) (Sat.Vec.get s.n_false (cid - 1) + delta))
    s.occurs.(Sat.Lit.negate l)

let enqueue s l reason =
  let v = Sat.Lit.var l in
  assert (s.value.(v) = v_unassigned);
  s.value.(v) <- (if Sat.Lit.is_neg l then v_false else v_true);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.pos.(v) <- Sat.Vec.length s.trail;
  Sat.Vec.push s.trail l;
  if s.cfg.bcp = Counting then bump_counters s l 1

(* --- two-watched-literal propagation ---------------------------------- *)

let attach_watch s c =
  Sat.Vec.push s.watches.(c.lits.(0)) c.cid;
  Sat.Vec.push s.watches.(c.lits.(1)) c.cid

let detach_watch s c =
  Sat.Vec.filter_in_place (fun cid -> cid <> c.cid) s.watches.(c.lits.(0));
  Sat.Vec.filter_in_place (fun cid -> cid <> c.cid) s.watches.(c.lits.(1))

(* Propagate all pending assignments; returns the cid of a conflicting
   clause, or 0.  This is the hot loop: when literal [fl] becomes false we
   visit only the clauses watching [fl], trying to move the watch to a
   non-false literal (MiniSat-style in-place watch repair). *)
let propagate_watched s =
  let conflict = ref 0 in
  while !conflict = 0 && s.qhead < Sat.Vec.length s.trail do
    let l = Sat.Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.s_propagations <- s.s_propagations + 1;
    let fl = Sat.Lit.negate l in
    let ws = s.watches.(fl) in
    let n = Sat.Vec.length ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let cid = Sat.Vec.get ws !i in
      incr i;
      let c = clause_of s cid in
      if not c.deleted then begin
        (* normalise: watched false literal at slot 1 *)
        if c.lits.(0) = fl then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- fl
        end;
        let first = c.lits.(0) in
        if lit_value s first = v_true then begin
          (* clause satisfied; keep the watch *)
          Sat.Vec.set ws !j cid;
          incr j
        end
        else begin
          (* search a replacement watch *)
          let len = Array.length c.lits in
          let k = ref 2 in
          while !k < len && lit_value s c.lits.(!k) = v_false do incr k done;
          if !k < len then begin
            c.lits.(1) <- c.lits.(!k);
            c.lits.(!k) <- fl;
            Sat.Vec.push s.watches.(c.lits.(1)) cid
            (* watch moved: do not keep in ws *)
          end
          else begin
            (* unit or conflicting *)
            Sat.Vec.set ws !j cid;
            incr j;
            if lit_value s first = v_false then begin
              conflict := cid;
              (* keep the remaining watches intact *)
              while !i < n do
                Sat.Vec.set ws !j (Sat.Vec.get ws !i);
                incr i;
                incr j
              done
            end
            else enqueue s first cid
          end
        end
      end
    done;
    Sat.Vec.shrink ws !j
  done;
  if !conflict <> 0 then s.qhead <- Sat.Vec.length s.trail;
  !conflict

(* --- counter-based propagation (ablation baseline) -------------------- *)

let propagate_counting s =
  let conflict = ref 0 in
  while !conflict = 0 && s.qhead < Sat.Vec.length s.trail do
    let l = Sat.Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.s_propagations <- s.s_propagations + 1;
    let fl = Sat.Lit.negate l in
    let occ = s.occurs.(fl) in
    let n = Sat.Vec.length occ in
    let i = ref 0 in
    while !conflict = 0 && !i < n do
      let cid = Sat.Vec.get occ !i in
      incr i;
      let c = clause_of s cid in
      if not c.deleted && Sat.Vec.get s.n_true (cid - 1) = 0 then begin
        let size = Array.length c.lits in
        let nf = Sat.Vec.get s.n_false (cid - 1) in
        if nf = size then conflict := cid
        else if nf = size - 1 then begin
          (* the single non-false literal must be unassigned: were it
             true, n_true would be positive *)
          let m = ref Sat.Lit.undef in
          Array.iter
            (fun q -> if lit_value s q <> v_false then m := q)
            c.lits;
          if !m <> Sat.Lit.undef && lit_value s !m = v_unassigned then
            enqueue s !m cid
        end
      end
    done
  done;
  !conflict

let propagate s =
  match s.cfg.bcp with
  | Two_watched -> propagate_watched s
  | Counting -> propagate_counting s

(* --- backtracking ------------------------------------------------------ *)

let unassign s l =
  let v = Sat.Lit.var l in
  if s.cfg.bcp = Counting then bump_counters s l (-1);
  Bytes.set s.phase v (if s.value.(v) = v_true then '\001' else '\000');
  s.value.(v) <- v_unassigned;
  s.reason.(v) <- 0;
  Heap.insert s.order v

(* Undo all assignments above [lvl]; this is the paper's assertion-based
   back_track(blevel). *)
let backtrack s lvl =
  if decision_level s > lvl then begin
    let keep = Sat.Vec.get s.trail_lim lvl in
    for i = Sat.Vec.length s.trail - 1 downto keep do
      unassign s (Sat.Vec.get s.trail i)
    done;
    Sat.Vec.shrink s.trail keep;
    Sat.Vec.shrink s.trail_lim lvl;
    s.qhead <- keep
  end

(* --- VSIDS -------------------------------------------------------------- *)

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 1 to s.nvars do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  Heap.update s.order v

let var_decay s = s.var_inc <- s.var_inc /. s.cfg.var_decay

let cla_bump s (c : clause_rec) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Sat.Vec.iter
      (fun cr -> if cr.learned then cr.activity <- cr.activity *. 1e-20)
      s.clauses;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* --- conflict analysis (paper Figure 2, 1UIP stop criterion) ----------- *)

(* Returns (learned literal array with the UIP at slot 0, asserting level,
   resolve sources in resolution order).  The source list is what §3.1's
   first solver modification records: the conflicting clause followed by
   every antecedent resolved against. *)
let analyze s confl_cid =
  let cur_level = decision_level s in
  let sources = ref [ confl_cid ] in
  let learnt = Sat.Vec.create ~dummy:Sat.Lit.undef in
  Sat.Vec.push learnt Sat.Lit.undef;   (* slot 0 reserved for the UIP *)
  let path_count = ref 0 in
  let p = ref Sat.Lit.undef in
  let idx = ref (Sat.Vec.length s.trail - 1) in
  let confl = ref confl_cid in
  let continue = ref true in
  while !continue do
    let c = clause_of s !confl in
    if c.learned then cla_bump s c;
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = Sat.Lit.var q in
          if Bytes.get s.seen v = '\000' && s.level.(v) > 0 then begin
            Bytes.set s.seen v '\001';
            var_bump s v;
            if s.level.(v) >= cur_level then incr path_count
            else Sat.Vec.push learnt q
          end
        end)
      c.lits;
    (* next literal to expand: deepest marked trail entry *)
    while Bytes.get s.seen (Sat.Lit.var (Sat.Vec.get s.trail !idx)) = '\000' do
      decr idx
    done;
    p := Sat.Vec.get s.trail !idx;
    decr idx;
    Bytes.set s.seen (Sat.Lit.var !p) '\000';
    decr path_count;
    if !path_count = 0 then continue := false
    else begin
      let r = s.reason.(Sat.Lit.var !p) in
      assert (r <> 0);
      sources := r :: !sources;
      confl := r
    end
  done;
  Sat.Vec.set learnt 0 (Sat.Lit.negate !p);
  (* Local clause minimization: a literal q is redundant when every other
     literal of reason(var q) is already in the clause or was assigned at
     level 0.  Each removal is one more resolution, so the reason IDs are
     appended to the resolve sources; processing removable literals in
     decreasing trail position guarantees no removed literal is ever
     re-introduced (a reason only mentions earlier assignments), keeping
     the checker's left-to-right chain exact up to level-0 literals. *)
  if s.cfg.enable_minimization && Sat.Vec.length learnt > 1 then begin
    for i = 1 to Sat.Vec.length learnt - 1 do
      Bytes.set s.seen (Sat.Lit.var (Sat.Vec.get learnt i)) '\001'
    done;
    let removable q =
      let v = Sat.Lit.var q in
      let r = s.reason.(v) in
      r <> 0
      && Array.for_all
           (fun l ->
             let u = Sat.Lit.var l in
             u = v || s.level.(u) = 0 || Bytes.get s.seen u = '\001')
           (clause_of s r).lits
    in
    let removed = ref [] in
    Sat.Vec.filter_in_place
      (fun q ->
        if q = Sat.Vec.get learnt 0 then true
        else if removable q then begin
          removed := q :: !removed;
          false
        end
        else true)
      learnt;
    (* hmm: filter_in_place sees the UIP too; guarded above *)
    List.iter (fun q -> Bytes.set s.seen (Sat.Lit.var q) '\000') !removed;
    for i = 0 to Sat.Vec.length learnt - 1 do
      Bytes.set s.seen (Sat.Lit.var (Sat.Vec.get learnt i)) '\000'
    done;
    let by_pos_desc =
      List.sort
        (fun a b -> Int.compare s.pos.(Sat.Lit.var b) s.pos.(Sat.Lit.var a))
        !removed
    in
    List.iter
      (fun q -> sources := s.reason.(Sat.Lit.var q) :: !sources)
      by_pos_desc
  end;
  (* asserting level: deepest among the non-UIP literals *)
  let blevel = ref 0 in
  let swap_slot = ref 1 in
  for i = 1 to Sat.Vec.length learnt - 1 do
    let lv = s.level.(Sat.Lit.var (Sat.Vec.get learnt i)) in
    if lv > !blevel then begin
      blevel := lv;
      swap_slot := i
    end
  done;
  (* put a deepest literal at slot 1 so the new clause is correctly
     watched after backtracking *)
  if Sat.Vec.length learnt > 1 then begin
    let tmp = Sat.Vec.get learnt 1 in
    Sat.Vec.set learnt 1 (Sat.Vec.get learnt !swap_slot);
    Sat.Vec.set learnt !swap_slot tmp
  end;
  Sat.Vec.iter (fun q -> Bytes.set s.seen (Sat.Lit.var q) '\000') learnt;
  (Sat.Vec.to_array learnt, !blevel, List.rev !sources)

(* --- learned clause management ----------------------------------------- *)

let new_clause s lits learned attached =
  let cid = Sat.Vec.length s.clauses + 1 in
  let c = { cid; lits; learned; activity = 0.0; deleted = false; attached } in
  Sat.Vec.push s.clauses c;
  if s.cfg.bcp = Counting && attached then begin
    Array.iter (fun l -> Sat.Vec.push s.occurs.(l) cid) lits;
    (* counters start from the current assignment *)
    let nf = ref 0 and nt = ref 0 in
    Array.iter
      (fun l ->
        match lit_value s l with
        | v when v = v_false -> incr nf
        | v when v = v_true -> incr nt
        | _ -> ())
      lits;
    Sat.Vec.push s.n_false !nf;
    Sat.Vec.push s.n_true !nt
  end
  else begin
    Sat.Vec.push s.n_false 0;
    Sat.Vec.push s.n_true 0
  end;
  if attached && s.cfg.bcp = Two_watched && Array.length lits >= 2 then
    attach_watch s c;
  c

let delete_clause s c =
  if not c.deleted then begin
    c.deleted <- true;
    s.s_deleted <- s.s_deleted + 1;
    if c.learned then s.n_learned_alive <- s.n_learned_alive - 1;
    if c.attached && s.cfg.bcp = Two_watched && Array.length c.lits >= 2 then
      detach_watch s c
  end

(* Remove low-activity learned clauses.  Clauses that are the antecedent of
   a currently assigned variable are kept — the paper's §2.1 requirement —
   as are binary clauses. *)
let reduce_db s =
  let candidates = ref [] in
  Sat.Vec.iter
    (fun c ->
      let locked =
        Array.exists
          (fun l ->
            let v = Sat.Lit.var l in
            s.value.(v) <> v_unassigned && s.reason.(v) = c.cid)
          c.lits
      in
      if c.learned && not c.deleted && Array.length c.lits > 2 && not locked
      then candidates := c :: !candidates)
    s.clauses;
  let arr = Array.of_list !candidates in
  Array.sort (fun (a : clause_rec) b -> Float.compare a.activity b.activity) arr;
  let to_delete = Array.length arr / 2 in
  for i = 0 to to_delete - 1 do
    delete_clause s arr.(i)
  done;
  (* native deletion hints (trace format version 2): one batched delete
     per reduction, covering exactly the clauses removed above.  Sound
     because deleted clauses are invisible to BCP from here on — they
     can never become an antecedent, a learned source, or the final
     conflict — and locked clauses (reasons on the trail, level 0
     included) are never candidates. *)
  if s.cfg.emit_deletes && to_delete > 0 && s.tracer <> None then begin
    let ids = Array.init to_delete (fun i -> arr.(i).cid) in
    Array.sort compare ids;
    emit s (Trace.Event.Delete ids)
  end;
  if Obs.Journal.on () then
    Obs.Journal.record ~sub:"solver" "db_reduce"
      [
        ("candidates", Array.length arr);
        ("deleted", to_delete);
        ("learned_alive", s.n_learned_alive);
        ("conflicts", s.s_conflicts);
      ]

(* --- trace for the final level-0 conflict (§3.1 modifications 2 and 3) - *)

let emit_final_conflict s confl_cid =
  (match s.tracer with
   | None -> ()
   | Some _ ->
     Sat.Vec.iter
       (fun l ->
         let v = Sat.Lit.var l in
         emit s
           (Trace.Event.Level0
              { var = v; value = s.value.(v) = v_true; ante = s.reason.(v) }))
       s.trail);
  emit s (Trace.Event.Final_conflict confl_cid)

(* --- inprocessing (level-0 clause simplification during search) --------- *)

(* Simplify the attached clause set against the level-0 assignment.  Runs
   at decision level 0 on a BCP fixpoint, so an unsatisfied clause's
   literals are level-0-false or unassigned:
   - a clause with a true literal at level 0 is deleted (no proof needed,
     removal only weakens the formula);
   - a clause with false literals at level 0 is replaced by its
     shortening, emitted as a [Learned] record whose chain resolves the
     old clause against the reasons of the removed variables in
     decreasing trail position — the exact shape conflict-clause
     minimization already emits, so the checker carries the extra
     level-0 literals of the reasons and the final conflict chain
     resolves them away.
   Locked clauses (reasons of level-0 assignments) are skipped, which
   also keeps every level-0 antecedent alive for the final conflict.
   Replacements inherit the learned flag: a strengthened original must
   never become eligible for clause-database reduction. *)
let inprocess s =
  assert (decision_level s = 0);
  let hints = ref [] in
  let hint c =
    (* originals are only safe to hint once a chain has referenced them:
       a satisfied original was possibly never materialised by the
       checker, so only learned clauses are hinted on deletion *)
    if s.cfg.emit_deletes && s.tracer <> None then hints := c.cid :: !hints
  in
  let n = Sat.Vec.length s.clauses in
  for i = 0 to n - 1 do
    let c = Sat.Vec.get s.clauses i in
    if c.attached && not c.deleted then begin
      let locked =
        Array.exists
          (fun l ->
            let v = Sat.Lit.var l in
            s.value.(v) <> v_unassigned && s.reason.(v) = c.cid)
          c.lits
      in
      if not locked then begin
        let n_true = ref 0 and false_lits = ref [] in
        Array.iter
          (fun l ->
            match lit_value s l with
            | v when v = v_true -> incr n_true
            | v when v = v_false -> false_lits := l :: !false_lits
            | _ -> ())
          c.lits;
        if !n_true > 0 then begin
          delete_clause s c;
          if c.learned then hint c
        end
        else if !false_lits <> [] then begin
          let keep =
            Array.of_list
              (List.filter (fun l -> lit_value s l <> v_false)
                 (Array.to_list c.lits))
          in
          (* [keep] has >= 2 literals on a conflict-free BCP fixpoint: an
             empty or unit remainder would have conflicted or propagated *)
          if Array.length keep >= 2
             && Array.for_all
                  (fun l -> s.reason.(Sat.Lit.var l) <> 0)
                  (Array.of_list !false_lits)
          then begin
            let by_pos_desc =
              List.sort
                (fun a b ->
                  Int.compare s.pos.(Sat.Lit.var b) s.pos.(Sat.Lit.var a))
                !false_lits
            in
            let sources =
              c.cid
              :: List.map (fun l -> s.reason.(Sat.Lit.var l)) by_pos_desc
            in
            let cr = new_clause s keep c.learned true in
            if c.learned then s.n_learned_alive <- s.n_learned_alive + 1;
            emit s
              (Trace.Event.Learned
                 { id = cr.cid; sources = Array.of_list sources });
            delete_clause s c;
            (* the old clause was just referenced, so the checker has it
               materialised whether learned or original: safe to hint *)
            if s.cfg.emit_deletes && s.tracer <> None then
              hints := c.cid :: !hints
          end
        end
      end
    end
  done;
  if !hints <> [] then begin
    let ids = Array.of_list !hints in
    Array.sort compare ids;
    emit s (Trace.Event.Delete ids)
  end

(* --- runtime sanitizer (ASan-style invariant checks) -------------------- *)

exception Sanitizer_violation of string

let violation fmt =
  Printf.ksprintf (fun m -> raise (Sanitizer_violation m)) fmt

(* Verify the solver's internal invariants wholesale.  Enabled by
   [config.sanitize] and run at decision boundaries (BCP fixpoints), where
   every invariant below is supposed to hold; each check is O(state size),
   so the sanitizer multiplies runtime but changes no behaviour.  The
   checks, in order:
     1. trail / decision-level consistency (trail_lim monotone, every
        trail literal true with matching [pos] and [level], assignment
        count equals trail length, queue drained);
     2. implication-graph sanity and acyclicity: each assigned variable's
        reason clause is alive, contains the variable's true literal, and
        has every other literal false and assigned strictly earlier on
        the trail — edges only point backwards, so no cycle can exist;
     3. BCP-fixpoint semantics for attached clauses: none falsified, no
        unpropagated unit;
     4. two-watched integrity: watch lists reference alive clauses
        through their slot-0/1 literals, and every watchable clause is
        watched exactly twice;
     5. counter integrity ([Counting] scheme): stored false/true counts
        match the assignment. *)
let sanitize_state s =
  let n = Sat.Vec.length s.trail in
  let nlevels = Sat.Vec.length s.trail_lim in
  if s.qhead <> n then
    violation "propagation queue not drained: qhead %d, trail %d" s.qhead n;
  for d = 1 to nlevels - 1 do
    if Sat.Vec.get s.trail_lim (d - 1) > Sat.Vec.get s.trail_lim d then
      violation "trail_lim not monotone at level %d" d
  done;
  if nlevels > 0 && Sat.Vec.get s.trail_lim (nlevels - 1) > n then
    violation "trail_lim exceeds trail length";
  let d = ref 0 in
  for i = 0 to n - 1 do
    while !d < nlevels && Sat.Vec.get s.trail_lim !d <= i do incr d done;
    let l = Sat.Vec.get s.trail i in
    let v = Sat.Lit.var l in
    if v < 1 || v > s.nvars then violation "trail var %d out of range" v;
    if lit_value s l <> v_true then
      violation "trail literal %s not true" (Sat.Lit.to_string l);
    if s.pos.(v) <> i then
      violation "var %d: pos %d but trail index %d" v s.pos.(v) i;
    if s.level.(v) <> !d then
      violation "var %d: level %d but trail says %d" v s.level.(v) !d
  done;
  let assigned = ref 0 in
  for v = 1 to s.nvars do
    if s.value.(v) <> v_unassigned then incr assigned
  done;
  if !assigned <> n then
    violation "%d variables assigned but trail holds %d" !assigned n;
  for v = 1 to s.nvars do
    if s.value.(v) <> v_unassigned && s.reason.(v) <> 0 then begin
      let r = s.reason.(v) in
      if r < 1 || r > Sat.Vec.length s.clauses then
        violation "var %d: reason %d is not a clause id" v r;
      let c = clause_of s r in
      if c.deleted then violation "var %d: reason clause %d deleted" v r;
      let found = ref false in
      Array.iter
        (fun q ->
          if Sat.Lit.var q = v then begin
            found := true;
            if lit_value s q <> v_true then
              violation "reason %d holds var %d in the false phase" r v
          end
          else begin
            if lit_value s q <> v_false then
              violation "reason %d of var %d: literal %s not false" r v
                (Sat.Lit.to_string q);
            if s.pos.(Sat.Lit.var q) >= s.pos.(v) then
              violation
                "implication edge not chronological: var %d implied at \
                 trail %d by var %d at trail %d"
                v s.pos.(v) (Sat.Lit.var q)
                s.pos.(Sat.Lit.var q)
          end)
        c.lits;
      if not !found then violation "reason %d never mentions var %d" r v
    end
  done;
  Sat.Vec.iter
    (fun c ->
      if c.attached && not c.deleted then begin
        let len = Array.length c.lits in
        let nf = ref 0 and nt = ref 0 in
        Array.iter
          (fun l ->
            match lit_value s l with
            | v when v = v_false -> incr nf
            | v when v = v_true -> incr nt
            | _ -> ())
          c.lits;
        if !nt = 0 then begin
          if !nf = len then
            violation "clause %d falsified at a decision boundary" c.cid;
          if !nf = len - 1 then
            violation "clause %d unit but not propagated" c.cid
        end;
        if s.cfg.bcp = Counting then begin
          if Sat.Vec.get s.n_false (c.cid - 1) <> !nf then
            violation "clause %d: false-count %d, assignment says %d" c.cid
              (Sat.Vec.get s.n_false (c.cid - 1))
              !nf;
          if Sat.Vec.get s.n_true (c.cid - 1) <> !nt then
            violation "clause %d: true-count %d, assignment says %d" c.cid
              (Sat.Vec.get s.n_true (c.cid - 1))
              !nt
        end
      end)
    s.clauses;
  if s.cfg.bcp = Two_watched then begin
    let watch_count = Hashtbl.create 256 in
    Array.iteri
      (fun l ws ->
        Sat.Vec.iter
          (fun cid ->
            if cid < 1 || cid > Sat.Vec.length s.clauses then
              violation "watch list of %d holds bogus clause id %d" l cid;
            let c = clause_of s cid in
            if c.deleted then
              violation "watch list of %d holds deleted clause %d" l cid;
            if Array.length c.lits < 2 || (c.lits.(0) <> l && c.lits.(1) <> l)
            then
              violation "clause %d watched on literal %d, not in its slots"
                cid l;
            Hashtbl.replace watch_count cid
              (1 + Option.value ~default:0 (Hashtbl.find_opt watch_count cid)))
          ws)
      s.watches;
    Sat.Vec.iter
      (fun c ->
        if c.attached && not c.deleted && Array.length c.lits >= 2 then begin
          let w = Option.value ~default:0 (Hashtbl.find_opt watch_count c.cid) in
          if w <> 2 then
            violation "clause %d carried by %d watch lists, expected 2" c.cid w
        end)
      s.clauses
  end

(* --- decisions ---------------------------------------------------------- *)

let pick_branch_var s =
  let v = ref 0 in
  if
    s.cfg.random_decision_freq > 0.0
    && Sat.Rng.float s.rng < s.cfg.random_decision_freq
  then begin
    let u = 1 + Sat.Rng.int s.rng s.nvars in
    if s.value.(u) = v_unassigned then v := u
  end;
  (try
     while !v = 0 do
       let u = Heap.pop_max s.order in
       if s.value.(u) = v_unassigned then v := u
     done
   with Not_found -> ());
  !v

let decide s =
  let v = pick_branch_var s in
  if v = 0 then false
  else begin
    s.s_decisions <- s.s_decisions + 1;
    Sat.Vec.push s.trail_lim (Sat.Vec.length s.trail);
    if decision_level s > s.s_max_level then s.s_max_level <- decision_level s;
    let sign = Bytes.get s.phase v = '\001' in
    enqueue s (Sat.Lit.make v (not sign)) 0;
    true
  end

(* --- initial clause loading -------------------------------------------- *)

(* Load the original clauses, preserving the paper's ID convention:
   clause i of the file owns ID i+1 whether or not it is degenerate.
   Returns the cid of an immediately conflicting clause, or 0. *)
let load_original s f =
  let conflict = ref 0 in
  Sat.Cnf.iter_clauses
    (fun _ c ->
      let dedup =
        match Sat.Clause.normalize c with
        | Some d -> d
        | None -> [||]   (* tautology: keep the record, never attach *)
      in
      let taut = Sat.Clause.is_tautology c in
      if !conflict <> 0 then
        ignore (new_clause s (Array.copy c) false false)
      else if taut then ignore (new_clause s (Array.copy c) false false)
      else
        match Array.length dedup with
        | 0 ->
          let cr = new_clause s [||] false false in
          conflict := cr.cid
        | 1 ->
          let cr = new_clause s dedup false false in
          let l = dedup.(0) in
          (match lit_value s l with
           | v when v = v_false -> conflict := cr.cid
           | v when v = v_true -> ()
           | _ -> enqueue s l cr.cid)
        | _ -> ignore (new_clause s dedup false true))
    f;
  !conflict

(* --- top level (paper Figure 1) ---------------------------------------- *)

let make_state cfg tracer nvars =
  let activity = Array.make (nvars + 1) 0.0 in
  let order = Heap.create nvars ~score:(fun v -> activity.(v)) in
  let s = {
    cfg;
    tracer;
    nvars;
    clauses = Sat.Vec.create
        ~dummy:{ cid = 0; lits = [||]; learned = false; activity = 0.0;
                 deleted = true; attached = false };
    watches = Array.init ((2 * nvars) + 2) (fun _ -> Sat.Vec.create ~dummy:0);
    occurs = Array.init ((2 * nvars) + 2) (fun _ -> Sat.Vec.create ~dummy:0);
    n_false = Sat.Vec.create ~dummy:0;
    n_true = Sat.Vec.create ~dummy:0;
    value = Array.make (nvars + 1) v_unassigned;
    level = Array.make (nvars + 1) 0;
    reason = Array.make (nvars + 1) 0;
    pos = Array.make (nvars + 1) 0;
    trail = Sat.Vec.create ~dummy:0;
    trail_lim = Sat.Vec.create ~dummy:0;
    qhead = 0;
    activity;
    var_inc = 1.0;
    cla_inc = 1.0;
    order;
    phase = Bytes.make (nvars + 1) '\000';
    seen = Bytes.make (nvars + 1) '\000';
    rng = Sat.Rng.create cfg.seed;
    n_learned_alive = 0;
    max_learned = 0.0;
    last_inprocess = 0;
    s_decisions = 0;
    s_propagations = 0;
    s_conflicts = 0;
    s_learned = 0;
    s_learned_lits = 0;
    s_deleted = 0;
    s_restarts = 0;
    s_max_level = 0;
  } in
  for v = 1 to nvars do
    Heap.insert s.order v
  done;
  s

let stats_of s = {
  decisions = s.s_decisions;
  propagations = s.s_propagations;
  conflicts = s.s_conflicts;
  learned_clauses = s.s_learned;
  learned_literals = s.s_learned_lits;
  deleted_clauses = s.s_deleted;
  restarts = s.s_restarts;
  max_decision_level = s.s_max_level;
}

let extract_model s =
  let a = Sat.Assignment.create s.nvars in
  for v = 1 to s.nvars do
    (* variables untouched by any clause stay unassigned in the model and
       are defaulted to false so the model is total *)
    Sat.Assignment.set a v (s.value.(v) = v_true)
  done;
  a

(* Collect the subset of assumptions a falsified assumption literal [p]
   depends on: walk the implication graph from [p] back to assumption
   decisions (MiniSat's analyzeFinal). *)
let analyze_final s p =
  if decision_level s = 0 then [ p ]
  else begin
    let failed = ref [ p ] in
    Bytes.set s.seen (Sat.Lit.var p) '\001';
    let bottom = Sat.Vec.get s.trail_lim 0 in
    for i = Sat.Vec.length s.trail - 1 downto bottom do
      let l = Sat.Vec.get s.trail i in
      let v = Sat.Lit.var l in
      if Bytes.get s.seen v = '\001' then begin
        (if s.reason.(v) = 0 then
           (* a decision inside the assumption prefix: an assumption
              (possibly the complement of [p] itself, when contradictory
              literals were both assumed) *)
           failed := l :: !failed
         else
           Array.iter
             (fun q ->
               let u = Sat.Lit.var q in
               if s.level.(u) > 0 then Bytes.set s.seen u '\001')
             (clause_of s s.reason.(v)).lits);
        Bytes.set s.seen v '\000'
      end
    done;
    Bytes.set s.seen (Sat.Lit.var p) '\000';
    !failed
  end

type search_outcome =
  | O_sat of Sat.Assignment.t
  | O_unsat_formula
  | O_unsat_assumptions of int list

(* The main CDCL loop (paper Figure 1), with an assumption prefix: the
   first [n] decision levels are reserved for the assumption literals; a
   falsified assumption ends the search with the failed subset. *)
(* the Luby sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (0-based index),
   ported from MiniSat's luby() *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let search s config assumptions =
  let assumptions = Array.of_list assumptions in
  let n_assumptions = Array.length assumptions in
  let restart_index = ref 0 in
  let restart_budget = ref config.restart_first in
  let conflicts_since_restart = ref 0 in
  let answer = ref None in
  while !answer = None do
    let confl = propagate s in
    if confl <> 0 then begin
      s.s_conflicts <- s.s_conflicts + 1;
      incr conflicts_since_restart;
      if Obs.Ctl.on () then begin
        Obs.Metrics.Counter.incr m_conflicts 1;
        Obs.Metrics.Gauge.set m_decisions (float_of_int s.s_decisions);
        Obs.Metrics.Gauge.set m_propagations (float_of_int s.s_propagations);
        Obs.Metrics.Gauge.set m_learned_alive (float_of_int s.n_learned_alive);
        Obs.Sampler.tick ()
      end;
      if decision_level s = 0 then begin
        emit_final_conflict s confl;
        answer := Some O_unsat_formula
      end
      else begin
        let lits, blevel, sources = analyze s confl in
        let cr = new_clause s lits true true in
        s.s_learned <- s.s_learned + 1;
        s.s_learned_lits <- s.s_learned_lits + Array.length lits;
        s.n_learned_alive <- s.n_learned_alive + 1;
        if Obs.Ctl.on () then
          Obs.Metrics.Histogram.observe m_learned_lits (Array.length lits);
        emit s
          (Trace.Event.Learned
             { id = cr.cid; sources = Array.of_list sources });
        backtrack s blevel;
        enqueue s lits.(0) cr.cid;
        var_decay s;
        cla_decay s
      end
    end
    else begin
      (* no conflict: a BCP fixpoint, i.e. a decision boundary — the spot
         where every sanitizer invariant must hold *)
      if config.sanitize then sanitize_state s;
      (* maybe restart, maybe reduce, then branch *)
      if
        config.enable_restarts
        && !conflicts_since_restart >= !restart_budget
        && decision_level s > 0
      then begin
        s.s_restarts <- s.s_restarts + 1;
        conflicts_since_restart := 0;
        incr restart_index;
        (match config.restart_sequence with
         | Geometric ->
           (* growing interval: the termination caveat of §2.2 *)
           restart_budget :=
             int_of_float
               (float_of_int !restart_budget *. config.restart_inc)
         | Luby ->
           restart_budget := config.restart_first * luby !restart_index);
        if Obs.Journal.on () then
          Obs.Journal.record ~sub:"solver" "restart"
            [
              ("restarts", s.s_restarts);
              ("conflicts", s.s_conflicts);
              ("next_budget", !restart_budget);
              ("learned_alive", s.n_learned_alive);
            ];
        backtrack s 0
      end;
      if
        config.enable_deletion
        && float_of_int s.n_learned_alive > s.max_learned
      then begin
        reduce_db s;
        s.max_learned <- s.max_learned *. config.max_learned_inc
      end;
      if
        config.inprocess_interval > 0
        && s.s_conflicts - s.last_inprocess >= config.inprocess_interval
      then begin
        s.last_inprocess <- s.s_conflicts;
        backtrack s 0;
        inprocess s
      end;
      (* place pending assumptions as decisions, then branch freely *)
      let rec branch () =
        let dl = decision_level s in
        if dl < n_assumptions then begin
          let p = assumptions.(dl) in
          let v = lit_value s p in
          if v = v_true then begin
            (* already holds: open an empty decision level for it *)
            Sat.Vec.push s.trail_lim (Sat.Vec.length s.trail);
            branch ()
          end
          else if v = v_false then
            answer := Some (O_unsat_assumptions (analyze_final s p))
          else begin
            s.s_decisions <- s.s_decisions + 1;
            Sat.Vec.push s.trail_lim (Sat.Vec.length s.trail);
            enqueue s p 0
          end
        end
        else if not (decide s) then answer := Some (O_sat (extract_model s))
      in
      branch ()
    end
  done;
  match !answer with
  | Some o -> o
  | None -> assert false

(* one-shot setup: build the state, load the clauses, run the level-0
   preprocessing BCP *)
let setup config trace f =
  let s = make_state config trace (Sat.Cnf.nvars f) in
  emit s
    (Trace.Event.Header
       { nvars = s.nvars; num_original = Sat.Cnf.nclauses f });
  s.max_learned <-
    config.max_learned_factor *. float_of_int (Sat.Cnf.nclauses f);
  let initial_conflict = load_original s f in
  if initial_conflict <> 0 then begin
    emit_final_conflict s initial_conflict;
    (s, false)
  end
  else begin
    let pre = propagate s in
    if pre <> 0 then begin
      s.s_conflicts <- s.s_conflicts + 1;
      if Obs.Ctl.on () then Obs.Metrics.Counter.incr m_conflicts 1;
      emit_final_conflict s pre;
      (s, false)
    end
    else begin
      if config.sanitize then sanitize_state s;
      (s, true)
    end
  end

let solve ?(config = default_config) ?trace f =
  Obs.Span.scope ~cat:"solver" "solve" @@ fun () ->
  let s, alive = setup config trace f in
  if not alive then (Unsat, stats_of s)
  else
    match search s config [] with
    | O_sat a -> (Sat a, stats_of s)
    | O_unsat_formula -> (Unsat, stats_of s)
    | O_unsat_assumptions _ -> assert false

(* --- solving a pre-seeded id space (checked preprocessing) -------------- *)

type seed = {
  seed_nvars : int;
  seed_clauses : (int * Sat.Clause.t) list;
  seed_first_learned : int;
}

(* Ids the simplifier used for clauses it has since removed are parked as
   deleted, unattached placeholders so the cid = vector-index + 1
   convention keeps holding; the parallel counting vectors stay aligned. *)
let pad_to s id =
  while Sat.Vec.length s.clauses + 1 < id do
    let cid = Sat.Vec.length s.clauses + 1 in
    Sat.Vec.push s.clauses
      {
        cid;
        lits = [||];
        learned = false;
        activity = 0.0;
        deleted = true;
        attached = false;
      };
    Sat.Vec.push s.n_false 0;
    Sat.Vec.push s.n_true 0
  done

(* Load the surviving clause set under the simplifier's ids.  The clauses
   arrive normalized (no tautologies, no duplicate literals) and at a
   propagation fixpoint, so an immediate conflict cannot arise — but the
   degenerate paths are kept for robustness.  Returns the cid of an
   immediately conflicting clause, or 0. *)
let load_seeded s seed =
  let conflict = ref 0 in
  List.iter
    (fun (id, c) ->
      pad_to s id;
      if Sat.Vec.length s.clauses + 1 <> id then
        invalid_arg "Cdcl.solve_seeded: seed clause ids not increasing";
      match Array.length c with
      | 0 ->
        let cr = new_clause s [||] false false in
        if !conflict = 0 then conflict := cr.cid
      | 1 ->
        let cr = new_clause s c false false in
        let l = c.(0) in
        if !conflict = 0 then (
          match lit_value s l with
          | v when v = v_false -> conflict := cr.cid
          | v when v = v_true -> ()
          | _ -> enqueue s l cr.cid)
      | _ -> ignore (new_clause s c false true))
    seed.seed_clauses;
  pad_to s seed.seed_first_learned;
  !conflict

(* [solve_seeded] continues a trace the simplifier opened: no header is
   emitted (the simplifier owns it), learned ids start at
   [seed_first_learned], and level-0 records cite the seeded unit
   clauses, so the combined trace checks against the original formula. *)
let solve_seeded ?(config = default_config) ?trace seed =
  Obs.Span.scope ~cat:"solver" "solve_seeded" @@ fun () ->
  let s = make_state config trace seed.seed_nvars in
  s.max_learned <-
    config.max_learned_factor
    *. float_of_int (List.length seed.seed_clauses);
  let seed =
    {
      seed with
      seed_clauses =
        List.sort
          (fun (a, _) (b, _) -> compare a b)
          seed.seed_clauses;
    }
  in
  let initial_conflict = load_seeded s seed in
  if initial_conflict <> 0 then begin
    emit_final_conflict s initial_conflict;
    (Unsat, stats_of s)
  end
  else begin
    let pre = propagate s in
    if pre <> 0 then begin
      s.s_conflicts <- s.s_conflicts + 1;
      if Obs.Ctl.on () then Obs.Metrics.Counter.incr m_conflicts 1;
      emit_final_conflict s pre;
      (Unsat, stats_of s)
    end
    else begin
      if config.sanitize then sanitize_state s;
      match search s config [] with
      | O_sat a -> (Sat a, stats_of s)
      | O_unsat_formula -> (Unsat, stats_of s)
      | O_unsat_assumptions _ -> assert false
    end
  end

type assumed_result =
  | A_sat of Sat.Assignment.t
  | A_unsat_assumptions of Sat.Lit.t list
  | A_unsat

module Incremental = struct
  type session = {
    state : t;
    config : config;
    mutable alive : bool;
  }

  type nonrec t = session

  let create ?(config = default_config) f =
    let state, alive = setup config None f in
    { state; config; alive }

  let stats i = stats_of i.state

  let add_clause i c =
    let s = i.state in
    Array.iter
      (fun l ->
        let v = Sat.Lit.var l in
        if v < 1 || v > s.nvars then
          invalid_arg "Incremental.add_clause: variable out of range")
      c;
    if i.alive then begin
      backtrack s 0;
      match Sat.Clause.normalize c with
      | None -> ignore (new_clause s (Array.copy c) false false)
      | Some d -> (
        match Array.length d with
        | 0 -> i.alive <- false
        | 1 -> (
          let cr = new_clause s d false false in
          match lit_value s d.(0) with
          | v when v = v_true -> ()
          | v when v = v_false -> i.alive <- false
          | _ ->
            enqueue s d.(0) cr.cid;
            if propagate s <> 0 then i.alive <- false)
        | _ -> (
          (* attach, watching non-false slots when possible so level-0
             units propagate immediately *)
          let d = Array.copy d in
          let len = Array.length d in
          let place slot from =
            let k = ref from in
            while !k < len && lit_value s d.(!k) = v_false do incr k done;
            if !k < len then begin
              let tmp = d.(slot) in
              d.(slot) <- d.(!k);
              d.(!k) <- tmp;
              true
            end
            else false
          in
          let have0 = place 0 0 in
          let have1 = have0 && place 1 1 in
          if not have0 then i.alive <- false
          else if not have1 then begin
            let cr = new_clause s d false false in
            if lit_value s d.(0) = v_unassigned then begin
              enqueue s d.(0) cr.cid;
              if propagate s <> 0 then i.alive <- false
            end
          end
          else ignore (new_clause s d false true)))
    end

  let solve ?(assumptions = []) i =
    let s = i.state in
    List.iter
      (fun l ->
        let v = Sat.Lit.var l in
        if v < 1 || v > s.nvars then
          invalid_arg "Incremental.solve: assumption variable out of range")
      assumptions;
    if not i.alive then A_unsat
    else begin
      backtrack s 0;
      if propagate s <> 0 then begin
        i.alive <- false;
        A_unsat
      end
      else
        match search s i.config assumptions with
        | O_sat a ->
          let a' = Sat.Assignment.copy a in
          backtrack s 0;
          A_sat a'
        | O_unsat_formula ->
          i.alive <- false;
          A_unsat
        | O_unsat_assumptions failed ->
          backtrack s 0;
          A_unsat_assumptions failed
    end
end
