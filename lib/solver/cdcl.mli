(** Chaff-style CDCL SAT solver (paper §2, Figures 1 and 2), extended with
    the three trace-generating modifications of §3.1.

    The solver satisfies the checker's two requirements from §1: it is
    DLL-based and it uses {e assertion-based backtracking} — every conflict
    is analysed by iterated resolution down to an asserting (1UIP) clause,
    the solver backtracks to the asserting level, and the flipped variable
    is implied by the learned clause.  Consequently every variable assigned
    at decision level 0 has an antecedent, which is what makes the final
    empty-clause construction of Proposition 3 possible.

    When a trace {!Trace.Sink.t} is supplied, the solver pushes, in
    stream order:
    - a header event up front;
    - one [Learned] event per learned clause, listing its resolve sources
      in resolution order (conflicting clause first, then antecedents);
    - on the final (level-0) conflict, the [Level0] records for the whole
      trail in chronological order followed by the [Final_conflict] id.

    Learned clauses drop literals already false at level 0 (standard CDCL
    practice); the checker compensates by carrying those literals through
    its rebuilt clauses and eliminating them with the level-0 antecedents,
    so the recorded source lists remain a valid resolution proof. *)

type result =
  | Sat of Sat.Assignment.t  (** a full model, independently verifiable *)
  | Unsat

(** Boolean-constraint-propagation implementation.  [Two_watched] is the
    Chaff scheme ([6] in the paper); [Counting] is the classic
    occurrence-list + counter scheme it displaced, kept as an ablation
    baseline. *)
type bcp_scheme = Two_watched | Counting

(** Restart-interval schedule.  [Geometric] grows the interval by
    [restart_inc] each restart (the paper's §2.2 termination argument);
    [Luby] follows the Luby–Sinclair–Zuckerman sequence scaled by
    [restart_first], the schedule later adopted by MiniSat. *)
type restart_sequence = Geometric | Luby

type config = {
  var_decay : float;         (** VSIDS decay applied between conflicts *)
  restart_first : int;       (** conflicts before the first restart *)
  restart_inc : float;       (** geometric restart-interval growth (>1
                                 ensures termination, §2.2 Prop. 1) *)
  restart_sequence : restart_sequence;
  enable_restarts : bool;
  enable_deletion : bool;    (** learned-clause database reduction *)
  enable_minimization : bool;
      (** local learned-clause minimization: redundant literals are
          resolved away using their antecedents, which are appended to
          the clause's recorded resolve sources so the trace remains a
          valid proof *)
  max_learned_factor : float;(** learned limit = factor × #original *)
  max_learned_inc : float;   (** limit growth applied at each reduction *)
  random_decision_freq : float; (** fraction of random decisions *)
  seed : int;
  bcp : bcp_scheme;
  sanitize : bool;
      (** run the runtime sanitizer at every decision boundary: validates
          two-watched-literal integrity, trail/level consistency,
          implication-graph acyclicity and BCP-fixpoint semantics, raising
          {!Sanitizer_violation} on the first broken invariant.  Debugging
          aid in the ASan spirit — heavy slowdown, no behaviour change.
          Off by default. *)
  emit_deletes : bool;
      (** emit native deletion hints: each database reduction pushes one
          batched [Trace.Event.Delete] naming exactly the clauses it
          removed, making the trace a format-version-2 hinted trace (the
          sink must lead to a version-2 writer).  Hints are memory
          advice for the hinted one-pass checker; search behaviour and
          the proof itself are unchanged.  Off by default. *)
  inprocess_interval : int;
      (** when positive, every [inprocess_interval] conflicts the solver
          backtracks to level 0 and simplifies the clause database
          against the level-0 assignment: satisfied clauses are deleted
          and clauses with level-0-false literals are replaced by their
          shortening, each emitted as a [Learned] record resolving the
          old clause against the removed variables' antecedents (the
          same chain shape as minimization), so traces stay checkable
          under every strategy.  0 (the default) disables the pass. *)
}

val default_config : config

(** Raised by the sanitizer ({!config.sanitize}) when a solver-internal
    invariant is broken; the message names the invariant and the offending
    variable/clause.  Reaching this is always a solver bug, never an input
    problem. *)
exception Sanitizer_violation of string

type stats = {
  decisions : int;
  propagations : int;        (** literals enqueued by BCP *)
  conflicts : int;
  learned_clauses : int;
  learned_literals : int;
  deleted_clauses : int;
  restarts : int;
  max_decision_level : int;
}

(** All-zero statistics, for outcomes settled before search starts. *)
val empty_stats : stats

(** [solve ?config ?trace f] decides [f].  A [Sat] answer always carries a
    model that satisfies [f] (checked by the test suite through
    {!Sat.Model.satisfies}); an [Unsat] answer is what the checker
    validates from the trace.  [trace] receives the proof events as they
    are produced (it is {e not} closed — the caller owns the sink, and
    may have teed it into several consumers). *)
val solve : ?config:config -> ?trace:Trace.Sink.t -> Sat.Cnf.t -> result * stats

(** A pre-seeded clause space, as produced by {!Simplify.run}: the
    surviving clauses (including one unit clause per justified forced
    literal) keep the ids they hold in the trace the simplifier already
    emitted, and the solver's own learned clauses start at
    [seed_first_learned]. *)
type seed = {
  seed_nvars : int;
  seed_clauses : (int * Sat.Clause.t) list;
      (** id-tagged normalized clauses, any order; ids must be distinct
          and below [seed_first_learned] *)
  seed_first_learned : int;  (** first id owned by the solver *)
}

(** [solve_seeded ?config ?trace seed] continues the proof the
    simplifier started: no header event is emitted (the simplifier's
    sink already carries one), learned records take ids from
    [seed_first_learned] upwards, and the final level-0 records cite the
    seeded unit clauses — so appending this run to the simplifier's
    events yields one trace that checks against the {e original}
    formula.  A [Sat] model covers the seeded clause set only; lift it
    with the simplifier's [reconstruct]. *)
val solve_seeded :
  ?config:config -> ?trace:Trace.Sink.t -> seed -> result * stats

(** Result of solving under assumptions. *)
type assumed_result =
  | A_sat of Sat.Assignment.t
      (** satisfiable with every assumption holding *)
  | A_unsat_assumptions of Sat.Lit.t list
      (** unsatisfiable under the assumptions; the carried list is the
          subset of assumptions the conflict actually depends on (MiniSat's
          analyzeFinal) — an assumption-level unsat core *)
  | A_unsat
      (** the formula itself is unsatisfiable, regardless of assumptions *)

(** Incremental interface: keep one solver alive across queries so learned
    clauses are reused, add clauses between queries, and solve under
    assumption literals.  The trace-producing path is the one-shot
    {!solve}; incremental sessions do not emit traces (a cross-query trace
    has no single final conflict to anchor the §3.1 records to). *)
module Incremental : sig
  type t

  (** [create ?config f] starts a session on [f]; the variable space is
      fixed at creation. *)
  val create : ?config:config -> Sat.Cnf.t -> t

  (** [add_clause t c] conjoins a clause between queries.
      @raise Invalid_argument if [c] mentions variables beyond the
      session's space. *)
  val add_clause : t -> Sat.Clause.t -> unit

  (** [solve ?assumptions t] decides the current formula under the given
      assumption literals (tried in order). *)
  val solve : ?assumptions:Sat.Lit.t list -> t -> assumed_result

  val stats : t -> stats
end
