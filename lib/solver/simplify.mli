(** Checked CNF preprocessing: satisfiability-preserving simplification
    applied before search, in the spirit of the preprocess() step of the
    paper's Figure 1 — but as a {e proof-emitting} layer, not a
    formula→formula black box.

    Techniques (iterated to a fixed point, each independently gated by
    {!config}):
    - unit propagation — forced assignments are applied, satisfied
      clauses removed, falsified literals resolved away;
    - pure-literal elimination — a variable occurring in one phase only
      is assigned that phase (no proof records needed: removals only);
    - tautology and duplicate-literal removal;
    - subsumption — a clause containing another as a subset is removed;
    - self-subsuming resolution (clause strengthening) — when
      [D \ {¬l} ⊆ C \ {l}], the resolvent [C \ {l}] replaces [C];
    - bounded variable elimination — a variable whose resolvent set does
      not grow the formula is resolved away entirely;
    - failed-literal probing — a literal whose BCP closure conflicts
      forces its negation.

    {b End-to-end guarantee.}  When a {!Trace.Sink.t} is supplied, every
    clause the simplifier {e derives} (shortened clauses, strengthening
    resolvents, variable-elimination resolvents, probed units) is emitted
    as an ordinary [Learned] record whose sources form a left-to-right
    resolution chain over original (and earlier-derived) clause ids —
    exactly the records the solver emits during search.  Original clauses
    keep their DIMACS ids [1..num_original]; derived clauses take fresh
    increasing ids from [num_original + 1].  Continuing the search with
    {!Cdcl.solve_seeded} on the simplified clause set appends the CDCL
    records to the same trace, so the combined trace checks against the
    {e original} DIMACS formula under every checking strategy, and unsat
    cores name original clause indices.  (The historical caveat that a
    preprocessed run had to be validated against the simplified formula
    is gone — that is the point of this module.)

    Clause {e removals} (satisfied, subsumed, duplicate, eliminated) need
    no justification for the UNSAT direction; with
    {!config.emit_deletes} they become format-version-2 [Delete] hints so
    the hinted one-pass checker frees them eagerly.  Removals that affect
    the SAT direction are undone by [reconstruct], which lifts a model of
    the simplified clause set to a model of the original formula by
    replaying forced, pure and eliminated-variable assignments in
    reverse. *)

(** Pass gates and budgets.  The defaults enable everything with
    conservative limits. *)
type config = {
  enable_subsumption : bool;
  enable_strengthen : bool;  (** self-subsuming resolution *)
  enable_bve : bool;         (** bounded variable elimination *)
  enable_probe : bool;       (** failed-literal probing *)
  bve_occ_limit : int;
      (** skip elimination of variables with more occurrences than this
          in either phase *)
  bve_growth : int;
      (** allow at most [removed + growth] resolvents per elimination *)
  probe_limit : int;         (** maximum probes per round *)
  max_rounds : int;          (** fixed-point iteration cap *)
  emit_deletes : bool;
      (** emit version-2 [Delete] hints for removed clauses (the sink
          must lead to a version-2 writer); original clauses are only
          hinted once a resolution chain has referenced them, matching
          the hinted checker's materialisation rule *)
}

val default_config : config

type stats = {
  units_propagated : int;
  pure_literals : int;
  tautologies_removed : int;
  subsumed_removed : int;
  duplicates_removed : int;
  strengthened : int;        (** self-subsuming resolution steps *)
  eliminated_vars : int;     (** variables removed by elimination *)
  resolvents_added : int;    (** clauses added by variable elimination *)
  failed_literals : int;     (** literals forced by probing *)
  derived_records : int;     (** [Learned] records emitted *)
  rounds : int;              (** fixed-point rounds executed *)
}

(** Outcome of the proof-emitting entry point.  Ids refer to the shared
    trace id space: originals [1..num_original], derived clauses above. *)
type proof_outcome =
  | P_simplified of {
      clauses : (int * Sat.Clause.t) list;
          (** surviving non-unit clauses, id-tagged, ascending ids *)
      units : (int * Sat.Lit.t) list;
          (** justified forced literals with their unit-clause ids, in
              assignment order — seed these as unit clauses so the
              solver's level-0 records have antecedents *)
      next_id : int;
          (** first free id: seed {!Cdcl.solve_seeded} with it *)
      forced : (Sat.Lit.var * bool) list;
          (** every assignment applied (unit-justified and pure), in
              order *)
      reconstruct : Sat.Assignment.t -> Sat.Assignment.t;
          (** lift a model of the simplified clause set to a model of
              the original formula *)
    }
  | P_unsat
      (** the trace already ends in a checked final conflict *)
  | P_sat of Sat.Assignment.t
      (** everything simplified away; a model of the input *)

(** [run ?config ?trace f] simplifies [f], pushing the trace header and
    one [Learned] record per derived clause into [trace] (which is not
    closed — the caller owns it, and typically hands it on to
    {!Cdcl.solve_seeded}).  On [P_unsat] the level-0 records and the
    final-conflict record have already been emitted. *)
val run :
  ?config:config ->
  ?trace:Trace.Sink.t ->
  Sat.Cnf.t ->
  proof_outcome * stats

(** Legacy formula→formula view, kept for callers that do not thread a
    trace. *)
type outcome =
  | Simplified of {
      formula : Sat.Cnf.t;
      forced : (Sat.Lit.var * bool) list;
          (** assignments applied by propagation / purity, in order *)
      reconstruct : Sat.Assignment.t -> Sat.Assignment.t;
          (** lift a model of [formula] to a model of the input *)
    }
  | Proved_unsat  (** simplification alone derived the empty clause *)
  | Proved_sat of Sat.Assignment.t
      (** everything simplified away; a model of the input *)

(** [simplify f] is {!run} without a trace, presenting the surviving
    clauses as a formula over the same variable space. *)
val simplify : Sat.Cnf.t -> outcome * stats
