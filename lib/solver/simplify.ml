(* Proof-emitting CNF simplification.

   Unlike the solver, which discovers clauses by conflict analysis, the
   simplifier *transforms* the clause set — so its proof obligations come
   in exactly two shapes:

   - a derived clause (shortened under the level-0 assignment, a
     self-subsuming-resolution strengthening, a variable-elimination
     resolvent, a probed failed literal) is justified by an ordinary
     [Learned] record whose sources are a left-to-right resolution chain
     over already-present ids, indistinguishable from a CDCL learned
     clause to every checker;
   - a removed clause (satisfied, subsumed, duplicate, eliminated) needs
     no justification for UNSAT — removal only weakens the formula — and
     with [emit_deletes] becomes a version-2 [Delete] hint; the SAT
     direction is repaired by [reconstruct] replaying removals in
     reverse.

   The load-bearing invariant throughout is that *live clauses mention
   only unassigned, uneliminated variables*: the moment a variable is
   assigned, every clause containing it is either buried (satisfied) or
   replaced by a derived shortening.  That invariant is what makes every
   chain below single-clash (a pair of live clauses cannot clash on an
   assigned variable), keeps probing purely local (the base assignment
   never interferes), and makes model reconstruction compositional (a
   clause saved when variable v was eliminated cannot mention any
   variable forced or eliminated earlier, so reverse replay sees all its
   variables decided). *)

module Lit = Sat.Lit
module Clause = Sat.Clause
module Cnf = Sat.Cnf
module Assignment = Sat.Assignment
module Event = Trace.Event
module Sink = Trace.Sink

type config = {
  enable_subsumption : bool;
  enable_strengthen : bool;
  enable_bve : bool;
  enable_probe : bool;
  bve_occ_limit : int;
  bve_growth : int;
  probe_limit : int;
  max_rounds : int;
  emit_deletes : bool;
}

let default_config =
  {
    enable_subsumption = true;
    enable_strengthen = true;
    enable_bve = true;
    enable_probe = true;
    bve_occ_limit = 16;
    bve_growth = 0;
    probe_limit = 256;
    max_rounds = 10;
    emit_deletes = false;
  }

type stats = {
  units_propagated : int;
  pure_literals : int;
  tautologies_removed : int;
  subsumed_removed : int;
  duplicates_removed : int;
  strengthened : int;
  eliminated_vars : int;
  resolvents_added : int;
  failed_literals : int;
  derived_records : int;
  rounds : int;
}

type proof_outcome =
  | P_simplified of {
      clauses : (int * Sat.Clause.t) list;
      units : (int * Sat.Lit.t) list;
      next_id : int;
      forced : (Sat.Lit.var * bool) list;
      reconstruct : Sat.Assignment.t -> Sat.Assignment.t;
    }
  | P_unsat
  | P_sat of Sat.Assignment.t

type outcome =
  | Simplified of {
      formula : Sat.Cnf.t;
      forced : (Sat.Lit.var * bool) list;
      reconstruct : Sat.Assignment.t -> Sat.Assignment.t;
    }
  | Proved_unsat
  | Proved_sat of Sat.Assignment.t

(* Telemetry handles, resolved once at load (same discipline as Cdcl). *)
let m_derived =
  Obs.Metrics.counter Obs.Metrics.global "simplify.derived_records"

let m_removed =
  Obs.Metrics.counter Obs.Metrics.global "simplify.removed_clauses"

let m_rounds = Obs.Metrics.gauge Obs.Metrics.global "simplify.rounds"

(* --- internal state ----------------------------------------------------- *)

type cls = { id : int; lits : Clause.t; mutable dead : bool }

type recon =
  | R_forced of Lit.var * bool (* unit-justified or pure assignment *)
  | R_bve of Lit.var * Clause.t list
      (* occurrences removed when the variable was eliminated *)

type st = {
  cfg : config;
  tr : Sink.t option;
  nvars : int;
  num_original : int;
  mutable next_id : int;
  occ : cls list array; (* literal-indexed; lazily skips dead entries *)
  mutable all : cls list; (* every clause ever added; compacted per round *)
  value : Assignment.t;
  unit_id : int array; (* var -> justifying unit clause id; 0 = pure *)
  mutable forced_rev : (Lit.var * bool * int) list;
  eliminated : bool array;
  mutable recon_rev : recon list;
  dup_keys : (string, int) Hashtbl.t; (* canonical lits -> live clause id *)
  referenced : (int, unit) Hashtbl.t; (* ids used as chain sources *)
  protected : (int, unit) Hashtbl.t; (* level-0 antecedents: never hinted *)
  queue : (Lit.t * int) Queue.t; (* pending unit assignments *)
  mutable dead_batch : int list; (* delete hints awaiting a flush *)
  mutable dirty : int; (* bumped on every change; fixpoint detector *)
  mutable s_units : int;
  mutable s_pures : int;
  mutable s_tauts : int;
  mutable s_subsumed : int;
  mutable s_dups : int;
  mutable s_strengthened : int;
  mutable s_elim : int;
  mutable s_resolvents : int;
  mutable s_failed : int;
  mutable s_records : int;
  mutable s_rounds : int;
}

(* [Conflict cid] escapes to [run]: clause [cid] is falsified by the
   justified level-0 assignment (or is a just-emitted empty clause), so
   the trace finishes with the level-0 records and a final conflict. *)
exception Conflict of int

let make cfg tr f =
  let nvars = Cnf.nvars f in
  {
    cfg;
    tr;
    nvars;
    num_original = Cnf.nclauses f;
    next_id = Cnf.nclauses f + 1;
    occ = Array.make ((2 * nvars) + 2) [];
    all = [];
    value = Assignment.create nvars;
    unit_id = Array.make (nvars + 1) 0;
    forced_rev = [];
    eliminated = Array.make (nvars + 1) false;
    recon_rev = [];
    dup_keys = Hashtbl.create 257;
    referenced = Hashtbl.create 257;
    protected = Hashtbl.create 64;
    queue = Queue.create ();
    dead_batch = [];
    dirty = 0;
    s_units = 0;
    s_pures = 0;
    s_tauts = 0;
    s_subsumed = 0;
    s_dups = 0;
    s_strengthened = 0;
    s_elim = 0;
    s_resolvents = 0;
    s_failed = 0;
    s_records = 0;
    s_rounds = 0;
  }

let emit st ev = match st.tr with Some t -> Sink.push t ev | None -> ()

(* Canonical key of a normalized (sorted, deduplicated) literal array. *)
let key lits =
  let b = Buffer.create 32 in
  Array.iter
    (fun l ->
      Buffer.add_string b (string_of_int l);
      Buffer.add_char b ' ')
    lits;
  Buffer.contents b

let flush_deletes st =
  match st.tr with
  | Some t when st.dead_batch <> [] ->
    let ids = Array.of_list st.dead_batch in
    st.dead_batch <- [];
    Array.sort compare ids;
    Sink.push t (Event.Delete ids)
  | _ -> st.dead_batch <- []

(* A clause leaves the live set.  It becomes a delete hint only when the
   hinted checker could act on it: derived clauses always, originals only
   once a chain has referenced (materialised) them, and never a clause
   protected as a level-0 antecedent — those are fetched again by the
   final conflict chain at the very end of the trace. *)
let bury st c =
  c.dead <- true;
  st.dirty <- st.dirty + 1;
  if Obs.Ctl.on () then Obs.Metrics.Counter.incr m_removed 1;
  let k = key c.lits in
  (match Hashtbl.find_opt st.dup_keys k with
  | Some id when id = c.id -> Hashtbl.remove st.dup_keys k
  | _ -> ());
  if
    st.tr <> None && st.cfg.emit_deletes
    && (not (Hashtbl.mem st.protected c.id))
    && (c.id > st.num_original || Hashtbl.mem st.referenced c.id)
  then st.dead_batch <- c.id :: st.dead_batch

let attach st c =
  st.all <- c :: st.all;
  Array.iter (fun l -> st.occ.(l) <- c :: st.occ.(l)) c.lits;
  Hashtbl.replace st.dup_keys (key c.lits) c.id

(* Emit a derived clause and register it.  [lits] must be normalized;
   [sources] is the left-to-right resolution chain.  Returns [None]
   without emitting when an identical live clause already exists (the
   derivation is then redundant — the existing clause carries the
   meaning).  Raises [Conflict] after emitting when the clause is empty. *)
let derive st lits sources =
  match Hashtbl.find_opt st.dup_keys (key lits) with
  | Some _ ->
    st.s_dups <- st.s_dups + 1;
    None
  | None ->
    let id = st.next_id in
    st.next_id <- id + 1;
    List.iter (fun s -> Hashtbl.replace st.referenced s ()) sources;
    emit st (Event.Learned { id; sources = Array.of_list sources });
    st.s_records <- st.s_records + 1;
    st.dirty <- st.dirty + 1;
    if Obs.Ctl.on () then Obs.Metrics.Counter.incr m_derived 1;
    if Array.length lits = 0 then raise (Conflict id);
    let c = { id; lits; dead = false } in
    attach st c;
    if Array.length lits = 1 then Queue.add (lits.(0), id) st.queue;
    Some id

let record_assign st l uid =
  let v = Lit.var l in
  let b = not (Lit.is_neg l) in
  Assignment.set st.value v b;
  st.unit_id.(v) <- uid;
  st.forced_rev <- (v, b, uid) :: st.forced_rev;
  st.recon_rev <- R_forced (v, b) :: st.recon_rev;
  if uid <> 0 then begin
    Hashtbl.replace st.protected uid ();
    st.s_units <- st.s_units + 1
  end
  else st.s_pures <- st.s_pures + 1;
  st.dirty <- st.dirty + 1

(* Replace a live clause containing falsified literals by its shortening
   under the current assignment: resolve each falsified literal away
   against the unit clause that justified the assignment. *)
let shorten st c =
  let rest = ref [] and units = ref [] and sat = ref false in
  Array.iter
    (fun l ->
      match Assignment.lit_value st.value l with
      | Assignment.True -> sat := true
      | Assignment.False -> units := st.unit_id.(Lit.var l) :: !units
      | Assignment.Unassigned -> rest := l :: !rest)
    c.lits;
  if !sat then bury st c
  else if !rest = [] then raise (Conflict c.id)
  else begin
    let lits = Array.of_list (List.rev !rest) in
    let sources = c.id :: List.rev !units in
    ignore (derive st lits sources : int option);
    bury st c
  end

let apply_unit st l uid =
  record_assign st l uid;
  let sat = st.occ.(l) in
  st.occ.(l) <- [];
  List.iter (fun c -> if not c.dead then bury st c) sat;
  let fal = st.occ.(Lit.negate l) in
  st.occ.(Lit.negate l) <- [];
  List.iter (fun c -> if not c.dead then shorten st c) fal

let drain st =
  while not (Queue.is_empty st.queue) do
    let l, uid = Queue.take st.queue in
    match Assignment.lit_value st.value l with
    | Assignment.True -> ()
    | Assignment.False ->
      (* the pending unit clause itself is falsified — it is the final
         conflict clause, so make sure no hint ever freed it *)
      Hashtbl.replace st.protected uid ();
      raise (Conflict uid)
    | Assignment.Unassigned -> apply_unit st l uid
  done

(* --- loading ------------------------------------------------------------ *)

let load st f =
  for i = 0 to Cnf.nclauses f - 1 do
    let id = i + 1 in
    match Clause.normalize (Cnf.clause f i) with
    | None -> st.s_tauts <- st.s_tauts + 1
    | Some lits ->
      if Array.length lits = 0 then raise (Conflict id)
      else if Hashtbl.mem st.dup_keys (key lits) then
        st.s_dups <- st.s_dups + 1
      else begin
        let c = { id; lits; dead = false } in
        attach st c;
        if Array.length lits = 1 then Queue.add (lits.(0), id) st.queue
      end
  done

(* --- passes ------------------------------------------------------------- *)

let compact st =
  st.all <- List.filter (fun c -> not c.dead) st.all;
  Array.fill st.occ 0 (Array.length st.occ) [];
  List.iter
    (fun c -> Array.iter (fun l -> st.occ.(l) <- c :: st.occ.(l)) c.lits)
    st.all

let live_clauses st =
  st.all <- List.filter (fun c -> not c.dead) st.all;
  st.all

(* [subset small big]: sorted-array subset test (literals are ordered by
   the packed-int order [normalize] uses). *)
let subset small big =
  let ns = Array.length small and nb = Array.length big in
  let rec go i j =
    if i >= ns then true
    else if j >= nb then false
    else if small.(i) = big.(j) then go (i + 1) (j + 1)
    else if small.(i) > big.(j) then go i (j + 1)
    else false
  in
  go 0 0

let live_occ_len st l =
  List.fold_left (fun n c -> if c.dead then n else n + 1) 0 st.occ.(l)

(* Forward subsumption: for each clause (shortest first), scan the
   occurrence list of its rarest literal for supersets. *)
let subsume_pass st =
  let arr = Array.of_list (live_clauses st) in
  Array.sort
    (fun a b -> compare (Array.length a.lits) (Array.length b.lits))
    arr;
  Array.iter
    (fun c ->
      if not c.dead then begin
        let best = ref c.lits.(0) and best_len = ref max_int in
        Array.iter
          (fun l ->
            let n = live_occ_len st l in
            if n < !best_len then begin
              best := l;
              best_len := n
            end)
          c.lits;
        List.iter
          (fun d ->
            if
              (not d.dead) && d.id <> c.id
              && Array.length d.lits >= Array.length c.lits
              && subset c.lits d.lits
            then begin
              st.s_subsumed <- st.s_subsumed + 1;
              bury st d
            end)
          st.occ.(!best)
      end)
    arr

(* Self-subsuming resolution: when D = (D' ∨ ¬l) with D' ⊆ C \ {l}, the
   resolvent of C and D on l is exactly C \ {l} — C is strengthened.  The
   two-clause chain [C; D] is always a valid single-clash step: a second
   clashing variable w would put both w and ¬w into C (D \ {¬l} ⊆ C), and
   C is not a tautology. *)
let strengthen_pass st =
  let budget = ref 200_000 in
  List.iter
    (fun c ->
      if (not c.dead) && !budget > 0 then
        Array.iter
          (fun l ->
            if not c.dead then begin
              let nl = Lit.negate l in
              List.iter
                (fun d ->
                  if
                    (not c.dead) && (not d.dead) && !budget > 0
                    && d.id <> c.id
                    && Array.length d.lits <= Array.length c.lits
                  then begin
                    decr budget;
                    if
                      Array.for_all
                        (fun m -> m = nl || Clause.mem m c.lits)
                        d.lits
                    then begin
                      let lits =
                        Array.of_list
                          (List.filter
                             (fun m -> m <> l)
                             (Array.to_list c.lits))
                      in
                      st.s_strengthened <- st.s_strengthened + 1;
                      ignore (derive st lits [ c.id; d.id ] : int option);
                      bury st c
                    end
                  end)
                st.occ.(nl)
            end)
          c.lits)
    (live_clauses st)

(* Pure literals: the assignment only removes satisfied clauses, so no
   proof records are needed — the negation of a pure literal occurs in no
   live clause and can never reappear in a derived one (resolvents only
   combine live-clause literals). *)
let pure_pass st =
  let cnt = Array.make ((2 * st.nvars) + 2) 0 in
  List.iter
    (fun c -> Array.iter (fun l -> cnt.(l) <- cnt.(l) + 1) c.lits)
    (live_clauses st);
  for v = 1 to st.nvars do
    if (not st.eliminated.(v)) && not (Assignment.is_assigned st.value v)
    then begin
      let p = cnt.(Lit.pos v) and n = cnt.(Lit.neg v) in
      let lit =
        if p > 0 && n = 0 then Some (Lit.pos v)
        else if n > 0 && p = 0 then Some (Lit.neg v)
        else None
      in
      match lit with
      | None -> ()
      | Some l ->
        record_assign st l 0;
        List.iter
          (fun c ->
            if not c.dead then begin
              Array.iter (fun m -> cnt.(m) <- cnt.(m) - 1) c.lits;
              bury st c
            end)
          st.occ.(l);
        st.occ.(l) <- []
    end
  done

(* Bounded variable elimination: replace the occurrences of v by all
   non-tautological resolvents on v, gated so the clause count does not
   grow.  Tautological resolvents are dropped (always satisfied);
   resolvents identical to a live clause are not re-derived. *)
let bve_pass st =
  drain st;
  let live_of l = List.filter (fun c -> not c.dead) st.occ.(l) in
  let candidates = ref [] in
  for v = 1 to st.nvars do
    if (not st.eliminated.(v)) && not (Assignment.is_assigned st.value v)
    then begin
      let p = live_occ_len st (Lit.pos v)
      and n = live_occ_len st (Lit.neg v) in
      if
        p > 0 && n > 0
        && p <= st.cfg.bve_occ_limit
        && n <= st.cfg.bve_occ_limit
      then candidates := (p + n, v) :: !candidates
    end
  done;
  let candidates = List.sort compare (List.rev !candidates) in
  List.iter
    (fun (_, v) ->
      if (not st.eliminated.(v)) && not (Assignment.is_assigned st.value v)
      then begin
        let ps = live_of (Lit.pos v) and ns = live_of (Lit.neg v) in
        let np = List.length ps and nn = List.length ns in
        if
          np > 0 && nn > 0
          && np <= st.cfg.bve_occ_limit
          && nn <= st.cfg.bve_occ_limit
        then begin
          let resolvents = ref [] and cnt = ref 0 and ok = ref true in
          List.iter
            (fun p ->
              List.iter
                (fun n ->
                  if !ok then
                    match Clause.clashing_vars p.lits n.lits with
                    | [ w ] when w = v ->
                      let r =
                        match
                          Clause.normalize (Clause.resolve p.lits n.lits v)
                        with
                        | Some r -> r
                        | None -> assert false (* single clash: no taut *)
                      in
                      if not (Hashtbl.mem st.dup_keys (key r)) then begin
                        incr cnt;
                        if !cnt > np + nn + st.cfg.bve_growth then ok := false
                        else resolvents := (r, p.id, n.id) :: !resolvents
                      end
                    | _ -> () (* tautological resolvent *))
                ns)
            ps;
          if !ok then begin
            List.iter
              (fun (r, pid, nid) ->
                match derive st r [ pid; nid ] with
                | Some _ -> st.s_resolvents <- st.s_resolvents + 1
                | None -> ())
              (List.rev !resolvents);
            let removed = ps @ ns in
            st.recon_rev <-
              R_bve (v, List.map (fun c -> c.lits) removed) :: st.recon_rev;
            List.iter (fun c -> bury st c) removed;
            st.eliminated.(v) <- true;
            st.s_elim <- st.s_elim + 1;
            drain st
          end
        end
      end)
    candidates

(* Failed-literal probing.  At the propagation fixpoint live clauses
   mention no assigned variables, so a probe's BCP closure is entirely
   local.  On a conflict, resolving the conflicting clause against the
   local reasons in reverse propagation order yields exactly {¬l} (every
   local assignment descends from the probe decision), or the empty
   clause — a direct UNSAT proof. *)
let probe_pass st =
  drain st;
  let budget = ref st.cfg.probe_limit in
  let lval = Array.make (st.nvars + 1) 0 in
  let probe l =
    let trail = ref [] in
    (* literal truth under the local assignment only *)
    let local m =
      let s = lval.(Lit.var m) in
      if s = 0 then Assignment.Unassigned
      else if s = 1 <> Lit.is_neg m then Assignment.True
      else Assignment.False
    in
    let assign m reason =
      lval.(Lit.var m) <- (if Lit.is_neg m then -1 else 1);
      trail := (m, reason) :: !trail
    in
    let q = Queue.create () in
    assign l None;
    Queue.add l q;
    let conflict = ref None in
    while !conflict = None && not (Queue.is_empty q) do
      let m = Queue.take q in
      List.iter
        (fun c ->
          if !conflict = None && not c.dead then begin
            let sat = ref false and un = ref [] in
            Array.iter
              (fun x ->
                match local x with
                | Assignment.True -> sat := true
                | Assignment.False -> ()
                | Assignment.Unassigned -> un := x :: !un)
              c.lits;
            if not !sat then
              match !un with
              | [] -> conflict := Some c
              | [ u ] ->
                assign u (Some c);
                Queue.add u q
              | _ -> ()
          end)
        st.occ.(Lit.negate m)
    done;
    let result =
      match !conflict with
      | None -> None
      | Some k ->
        (* walk the local trail newest-first: every literal a reason
           clause contributed was assigned strictly earlier, so it is
           still ahead of us when we reach it *)
        let acc = ref k.lits and extra = ref [] in
        List.iter
          (fun (m, reason) ->
            if Clause.mem (Lit.negate m) !acc then
              match reason with
              | Some rc ->
                acc := Clause.resolve !acc rc.lits (Lit.var m);
                extra := rc.id :: !extra
              | None -> () (* the probe decision: ¬l stays *))
          !trail;
        Some (!acc, k.id :: List.rev !extra)
    in
    List.iter (fun (m, _) -> lval.(Lit.var m) <- 0) !trail;
    result
  in
  let v = ref 1 in
  while !v <= st.nvars && !budget > 0 do
    if
      (not st.eliminated.(!v))
      && (not (Assignment.is_assigned st.value !v))
      && live_occ_len st (Lit.pos !v) + live_occ_len st (Lit.neg !v) > 0
    then
      List.iter
        (fun l ->
          if
            !budget > 0 && not (Assignment.is_assigned st.value (Lit.var l))
          then begin
            decr budget;
            match probe l with
            | None -> ()
            | Some (res, sources) ->
              st.s_failed <- st.s_failed + 1;
              let lits =
                match Clause.normalize res with
                | Some r -> r
                | None -> assert false (* all literals false: no taut *)
              in
              ignore (derive st lits sources : int option);
              drain st
          end)
        [ Lit.pos !v; Lit.neg !v ];
    incr v
  done

(* --- driver ------------------------------------------------------------- *)

let fixpoint st =
  let continue_ = ref true in
  while !continue_ && st.s_rounds < st.cfg.max_rounds do
    let before = st.dirty in
    st.s_rounds <- st.s_rounds + 1;
    compact st;
    drain st;
    if st.cfg.enable_subsumption then subsume_pass st;
    if st.cfg.enable_strengthen then begin
      strengthen_pass st;
      drain st
    end;
    pure_pass st;
    if st.cfg.enable_bve then bve_pass st;
    if st.cfg.enable_probe then probe_pass st;
    drain st;
    flush_deletes st;
    if st.dirty = before then continue_ := false
  done

(* The final conflict clause's literals are all falsified by
   unit-justified assignments (pure literals never falsify anything), so
   the chronological level-0 records below give the final-conflict chain
   everything it resolves against. *)
let finalize_unsat st cid =
  flush_deletes st;
  List.iter
    (fun (v, b, uid) ->
      if uid <> 0 then
        emit st (Event.Level0 { var = v; value = b; ante = uid }))
    (List.rev st.forced_rev);
  emit st (Event.Final_conflict cid)

let snapshot st =
  {
    units_propagated = st.s_units;
    pure_literals = st.s_pures;
    tautologies_removed = st.s_tauts;
    subsumed_removed = st.s_subsumed;
    duplicates_removed = st.s_dups;
    strengthened = st.s_strengthened;
    eliminated_vars = st.s_elim;
    resolvents_added = st.s_resolvents;
    failed_literals = st.s_failed;
    derived_records = st.s_records;
    rounds = st.s_rounds;
  }

let clause_sat a c =
  Array.exists (fun l -> Assignment.lit_value a l = Assignment.True) c

(* Lift a model of the simplified clause set to the original formula:
   totalize, then replay removals newest-first.  A variable eliminated at
   step i only appears in clauses saved at step i over variables decided
   later in the replay (see the module-head invariant), and one of the
   two phases always satisfies every saved clause because the model
   satisfies all resolvents. *)
let reconstruct_fn nvars recon_rev model =
  let a = Assignment.copy model in
  for v = 1 to nvars do
    if not (Assignment.is_assigned a v) then Assignment.set a v false
  done;
  List.iter
    (function
      | R_forced (v, b) -> Assignment.set a v b
      | R_bve (v, saved) ->
        Assignment.set a v true;
        if not (List.for_all (clause_sat a) saved) then
          Assignment.set a v false)
    recon_rev;
  a

let run ?(config = default_config) ?trace f =
  Obs.Span.scope ~cat:"solver" "simplify.run" @@ fun () ->
  let st = make config trace f in
  emit st (Event.Header { nvars = st.nvars; num_original = st.num_original });
  let outcome =
    try
      load st f;
      fixpoint st;
      flush_deletes st;
      let live = List.sort (fun a b -> compare a.id b.id) (live_clauses st) in
      let forced = List.rev_map (fun (v, b, _) -> (v, b)) st.forced_rev in
      let reconstruct = reconstruct_fn st.nvars st.recon_rev in
      if live = [] then P_sat (reconstruct (Assignment.create st.nvars))
      else
        P_simplified
          {
            clauses = List.map (fun c -> (c.id, c.lits)) live;
            units =
              List.filter_map
                (fun (v, b, uid) ->
                  if uid = 0 then None else Some (uid, Lit.make v (not b)))
                (List.rev st.forced_rev);
            next_id = st.next_id;
            forced;
            reconstruct;
          }
    with Conflict cid ->
      finalize_unsat st cid;
      P_unsat
  in
  if Obs.Ctl.on () then
    Obs.Metrics.Gauge.set m_rounds (float_of_int st.s_rounds);
  (outcome, snapshot st)

let simplify f =
  let po, stats = run f in
  let outcome =
    match po with
    | P_unsat -> Proved_unsat
    | P_sat a -> Proved_sat a
    | P_simplified { clauses; forced; reconstruct; _ } ->
      Simplified
        {
          formula = Cnf.of_clauses (Cnf.nvars f) (List.map snd clauses);
          forced;
          reconstruct;
        }
  in
  (outcome, stats)
