module N = Circuit.Netlist
module D = Checker.Diagnostics

type t = {
  circuit : N.t;
  root : N.node;
  shared_vars : Sat.Lit.var list;
  input_of_var : Sat.Lit.var -> N.node;
}

type state = {
  a_side : bool array;          (* per 0-based clause index *)
  in_a : bool array;            (* per var: occurs in an A clause *)
  in_b : bool array;            (* per var: occurs in a B clause *)
  circuit : N.t;
  inputs : (Sat.Lit.var, N.node) Hashtbl.t;
}

let input_node st v =
  match Hashtbl.find_opt st.inputs v with
  | Some n -> n
  | None ->
    let n = N.input st.circuit (Printf.sprintf "v%d" v) in
    Hashtbl.replace st.inputs v n;
    n

let lit_node st l =
  let n = input_node st (Sat.Lit.var l) in
  if Sat.Lit.is_neg l then N.not_ st.circuit n else n

(* McMillan base case for an original clause *)
let base_itp st id lits =
  if st.a_side.(id - 1) then
    (* disjunction of the literals over B-shared variables *)
    N.big_or st.circuit
      (Array.to_list lits
      |> List.filter (fun l -> st.in_b.(Sat.Lit.var l))
      |> List.map (lit_node st))
  else N.const st.circuit true

(* McMillan resolution rule *)
let combine st ~pivot i1 i2 =
  (* "local to A" = occurs in A and not in B *)
  if st.in_a.(pivot) && not st.in_b.(pivot) then N.or_ st.circuit i1 i2
  else N.and_ st.circuit i1 i2

let compute formula ~a_indices source =
  let nvars = Sat.Cnf.nvars formula in
  let nclauses = Sat.Cnf.nclauses formula in
  let a_side = Array.make nclauses false in
  List.iter
    (fun i ->
      if i < 0 || i >= nclauses then invalid_arg "Interpolant: bad A index";
      a_side.(i) <- true)
    a_indices;
  let in_a = Array.make (nvars + 1) false in
  let in_b = Array.make (nvars + 1) false in
  Sat.Cnf.iter_clauses
    (fun i c ->
      let mark = if a_side.(i) then in_a else in_b in
      Array.iter (fun l -> mark.(Sat.Lit.var l) <- true) c)
    formula;
  let st = { a_side; in_a; in_b; circuit = N.create (); inputs = Hashtbl.create 64 } in
  let k = Proof.Kernel.create formula in
  try
    let src =
      Trace.Source.of_cursor ~close_cursor:true (Trace.Reader.cursor source)
    in
    let proof = Proof.Kernel.load k src in
    let conf_id =
      match proof.Proof.Kernel.final_conflict with
      | Some id -> id
      | None -> D.fail D.Missing_final_conflict
    in
    (* McMillan's annotation rides the kernel's depth-first traversal *)
    let spec = {
      Proof.Kernel.of_original = (fun id lits -> base_itp st id lits);
      combine = (fun ~pivot i1 i2 -> combine st ~pivot i1 i2);
    } in
    let b = Proof.Kernel.builder k ~sources:proof.Proof.Kernel.sources spec in
    let fetch id = Proof.Kernel.build b id in
    let root, (_ : int) =
      Proof.Kernel.final_chain k ~l0:proof.Proof.Kernel.l0 ~fetch
        ~combine:(fun ~pivot i1 i2 -> combine st ~pivot i1 i2)
        ~conflict_id:conf_id
    in
    let shared_vars =
      List.filter (fun v -> in_a.(v) && in_b.(v))
        (List.init nvars (fun i -> i + 1))
    in
    Ok {
      circuit = st.circuit;
      root;
      shared_vars;
      input_of_var =
        (fun v ->
          match Hashtbl.find_opt st.inputs v with
          | Some n -> n
          | None -> raise Not_found);
    }
  with
  | D.Check_failed d -> Error d
  | Trace.Reader.Parse_error { pos; msg } ->
    Error (D.of_parse_error ~pos msg)

let of_formulas ?config a b =
  (* conjoin over a common variable space; A clauses first *)
  let nvars = max (Sat.Cnf.nvars a) (Sat.Cnf.nvars b) in
  let combined = Sat.Cnf.create nvars in
  Sat.Cnf.iter_clauses (fun _ c -> ignore (Sat.Cnf.add_clause combined c)) a;
  Sat.Cnf.iter_clauses (fun _ c -> ignore (Sat.Cnf.add_clause combined c)) b;
  let result, _stats, trace = Validate.solve_with_trace ?config combined in
  match result with
  | Solver.Cdcl.Sat m -> Error (`Sat m)
  | Solver.Cdcl.Unsat -> (
    let a_indices = List.init (Sat.Cnf.nclauses a) (fun i -> i) in
    match compute combined ~a_indices (Trace.Reader.From_string trace) with
    | Ok itp -> Ok itp
    | Error d -> Error (`Check_failed d))

let eval (itp : t) valuation =
  let inputs =
    List.filter_map
      (fun v ->
        match itp.input_of_var v with
        | n ->
          ignore n;
          let value =
            match List.assoc_opt v valuation with
            | Some b -> b
            | None -> false
          in
          Some (Printf.sprintf "v%d" v, value)
        | exception Not_found -> None)
      itp.shared_vars
  in
  (* inputs may also exist for non-shared A-local vars never pruned from
     the circuit; supply every declared input *)
  let declared = N.input_names itp.circuit in
  let inputs =
    List.map
      (fun name ->
        match List.assoc_opt name inputs with
        | Some b -> (name, b)
        | None -> (
          (* name is "v<var>" *)
          let v = int_of_string (String.sub name 1 (String.length name - 1)) in
          match List.assoc_opt v valuation with
          | Some b -> (name, b)
          | None -> (name, false)))
      declared
  in
  Circuit.Sim.eval1 itp.circuit ~inputs itp.root

let size (itp : t) = N.num_nodes itp.circuit
