(** End-to-end validation workflow: run the solver with trace generation
    and validate its answer with an independent check — the full loop the
    paper advocates for mission-critical EDA deployments (§1).

    SAT answers are checked in linear time against the formula; UNSAT
    answers are checked by replaying the resolution trace with the chosen
    checker. *)

type strategy =
  | Depth_first
  | Breadth_first
  | Hybrid  (** the §5 future-work checker, see {!Checker.Hybrid} *)
  | Parallel of int
      (** wavefront-parallel BF with this many worker domains, see
          {!Checker.Par} *)
  | Online
      (** tee the solver's live event stream into the linter and BF's
          pass-one ingest concurrently with solving; the reconstruction
          pass re-reads a spooled temp file.  Verdicts, cores, reports and
          diagnostics are bit-identical to [Breadth_first] (timings
          aside), but the full encoded trace is never held in memory. *)
  | Hinted
      (** the solver emits native deletion hints
          ({!Solver.Cdcl.config.emit_deletes}) into a format-version-2
          trace, and the one-pass hinted checker ({!Checker.Hint})
          validates it in a single forward read with eager frees. *)
  | Window of int
      (** window-shifting BF ({!Checker.Window}) with this window size:
          at most that many learned clauses are ever arena-resident,
          boundary clauses spill through frozen arena views. *)

type verdict =
  | Sat_verified of Sat.Assignment.t
      (** solver said SAT; the model satisfies the formula *)
  | Unsat_verified of Checker.Report.t
      (** solver said UNSAT; the trace is a valid resolution proof *)
  | Sat_model_wrong of int
      (** solver said SAT but clause [i] (0-based) is not satisfied: the
          solver is buggy *)
  | Unsat_check_failed of Checker.Diagnostics.failure
      (** solver said UNSAT but the proof does not check: the solver (or
          its trace generation) is buggy *)

(** What the {!Online} strategy additionally observes while streaming. *)
type online_info = {
  peak_buffered_bytes : int;
      (** high-water mark of encoded trace bytes resident in the encoder:
          bounded by its flush threshold, not the proof size *)
  lint : Analysis.Lint.report;
      (** the streaming lint of the live events; for a SAT answer the
          partial trace legitimately lints dirty (no final conflict) *)
}

type outcome = {
  verdict : verdict;
  stats : Solver.Cdcl.stats;
  trace_bytes : int;
  solve_seconds : float;
  check_seconds : float;
  online : online_info option;  (** present iff the strategy was {!Online} *)
  dag : Analysis.Dag.profile option;
      (** present when [analyze] was requested and the solver produced a
          complete proof trace: the whole-proof static profile.  Online
          runs tee the analyzer into the live stream; buffered runs
          profile the trace string. *)
  pre : Solver.Simplify.stats option;
      (** present iff [pre] was requested: the proof-emitting
          simplifier's per-pass statistics *)
}

(** [run ?config ?format ?strategy ?meter ?analyze ?pre f] solves and
    validates [f].  [analyze] (default false) additionally runs the
    {!Analysis.Dag} static analysis over the proof trace, surfacing its
    profile in [dag].  [pre] (default false) runs the proof-emitting
    simplifier ({!Solver.Simplify.run}) first and continues search with
    {!Solver.Cdcl.solve_seeded} on the same trace: UNSAT traces still
    check against the {e original} formula (under every strategy —
    hinted runs additionally carry the simplifier's deletion hints), and
    SAT models are reconstructed to models of the original before
    verification. *)
val run :
  ?config:Solver.Cdcl.config ->
  ?format:Trace.Writer.format ->
  ?strategy:strategy ->
  ?meter:Harness.Meter.t ->
  ?analyze:bool ->
  ?pre:bool ->
  Sat.Cnf.t ->
  outcome

(** [solve_with_trace ?config ?version ?format ?pre f] is the solving
    half: result, stats, and the serialised trace.  [version] (default
    1) selects the trace format version — pass 2 together with a config
    enabling {!Solver.Cdcl.config.emit_deletes} for a hinted trace.
    With [pre] the trace opens with the simplifier's derivation records
    and, when [version] is 2, its deletion hints; a [Sat] model is
    already reconstructed against the original formula. *)
val solve_with_trace :
  ?config:Solver.Cdcl.config ->
  ?version:int ->
  ?format:Trace.Writer.format ->
  ?pre:bool ->
  Sat.Cnf.t ->
  Solver.Cdcl.result * Solver.Cdcl.stats * string
