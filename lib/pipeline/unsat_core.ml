type core = {
  clause_indices : int list;
  num_clauses : int;
  num_vars : int;
}

let extract ?config ?pre f =
  Obs.Span.scope ~cat:"pipeline" "core.extract" @@ fun () ->
  let result, _stats, trace = Validate.solve_with_trace ?config ?pre f in
  match result with
  | Solver.Cdcl.Sat _ -> Error `Sat
  | Solver.Cdcl.Unsat -> (
    match Checker.Df.check f (Trace.Reader.From_string trace) with
    | Error d -> Error (`Check_failed d)
    | Ok report ->
      let indices =
        List.map (fun id -> id - 1) report.Checker.Report.core_original_ids
      in
      Ok {
        clause_indices = indices;
        num_clauses = List.length indices;
        num_vars = report.Checker.Report.core_vars;
      })

type iteration = { clauses : int; vars : int }

type shrink_outcome = {
  initial : iteration;
  iterations : iteration list;
  reached_fixpoint : bool;
  rounds : int;
  final_core : Sat.Cnf.t;
  final_indices : int list;
}

let shrink ?config ?pre ?(max_rounds = 30) f =
  let initial =
    { clauses = Sat.Cnf.nclauses f; vars = Sat.Cnf.num_distinct_vars f }
  in
  (* indices of the current core, relative to the original formula *)
  let rec loop round current current_indices acc =
    if round > max_rounds then
      Ok (List.rev acc, false, current, current_indices)
    else
      match extract ?config ?pre current with
      | Error e -> Error e
      | Ok core ->
        let next = Sat.Cnf.restrict_to current core.clause_indices in
        let next_indices =
          (* compose the restriction with the accumulated indices *)
          let arr = Array.of_list current_indices in
          List.map (fun i -> arr.(i)) core.clause_indices
        in
        let it = { clauses = core.num_clauses; vars = core.num_vars } in
        if core.num_clauses = Sat.Cnf.nclauses current then
          (* every clause was needed: fixed point *)
          Ok (List.rev (it :: acc), true, next, next_indices)
        else loop (round + 1) next next_indices (it :: acc)
  in
  let all_indices = List.init (Sat.Cnf.nclauses f) (fun i -> i) in
  match loop 1 f all_indices [] with
  | Error e -> Error e
  | Ok (iterations, reached_fixpoint, final_core, final_indices) ->
    Ok {
      initial;
      iterations;
      reached_fixpoint;
      rounds = List.length iterations;
      final_core;
      final_indices;
    }
