module N = Circuit.Netlist
module T = Circuit.Transition
module R = Bdd.Robdd

type bmc_result =
  | Cex of int
  | Safe_up_to of int
  | Check_failed of Checker.Diagnostics.failure

(* unroll [depth] frames from the constant initial state and return the
   violation node at the final frame *)
let unroll_bad (ts : T.t) c depth =
  let state =
    ref (List.map (fun b -> N.const c b) ts.T.init)
  in
  for frame = 1 to depth do
    state := ts.T.step c ~frame ~state:!state
  done;
  ts.T.bad c !state

let bmc ?config ~max_depth ts =
  let rec loop depth =
    if depth > max_depth then Safe_up_to max_depth
    else begin
      let c = N.create () in
      let bad = unroll_bad ts c depth in
      match N.gate c bad with
      | N.G_const false -> loop (depth + 1)   (* folded away: trivially safe *)
      | N.G_const true -> Cex depth
      | N.G_input _ | N.G_not _ | N.G_and _ | N.G_or _ | N.G_xor _ -> (
        let enc = Circuit.Tseitin.encode c ~constraints:[ (bad, true) ] in
        let outcome = Validate.run ?config enc.Circuit.Tseitin.cnf in
        match outcome.verdict with
        | Validate.Sat_verified _ -> Cex depth
        | Validate.Unsat_verified _ -> loop (depth + 1)
        | Validate.Sat_model_wrong i ->
          Check_failed
            (Checker.Diagnostics.malformed
               (Printf.sprintf
                  "solver returned a model that falsifies clause %d" i))
        | Validate.Unsat_check_failed d -> Check_failed d)
    end
  in
  loop 0

type mc_result =
  | Proved_safe of { iterations : int; reachable_nodes : int }
  | Counterexample of { depth : int }
  | Inconclusive of { iterations : int }
  | Mc_check_failed of Checker.Diagnostics.failure

(* A-side: R(s0) ∧ one transition; returns its CNF and the CNF variables
   of the cut (the s1 signals).  Cut variables may alias when two state
   bits compute the same function — handled downstream. *)
let encode_a (ts : T.t) man r_bdd =
  let c = N.create () in
  let s0 =
    List.init ts.T.state_width (fun i -> N.input c (Printf.sprintf "s0_%d" i))
  in
  let s0_arr = Array.of_list s0 in
  let r_node =
    R.to_netlist man r_bdd c ~input_of_var:(fun v -> s0_arr.(v - 1))
  in
  let s1 = ts.T.step c ~frame:0 ~state:s0 in
  let enc = Circuit.Tseitin.encode c ~constraints:[ (r_node, true) ] in
  let cut = List.map (fun n -> enc.Circuit.Tseitin.var_of_node n) s1 in
  (enc.Circuit.Tseitin.cnf, cut)

(* B-side: a suffix of [depth] further transitions from fresh cut inputs,
   with the violation asserted somewhere along it (including at the cut
   itself). *)
let encode_b (ts : T.t) depth =
  let c = N.create () in
  let s1 =
    List.init ts.T.state_width (fun i -> N.input c (Printf.sprintf "s1_%d" i))
  in
  let bads = ref [ ts.T.bad c s1 ] in
  let state = ref s1 in
  for frame = 1 to depth do
    state := ts.T.step c ~frame ~state:!state;
    bads := ts.T.bad c !state :: !bads
  done;
  let bad_any = N.big_or c !bads in
  let enc = Circuit.Tseitin.encode c ~constraints:[ (bad_any, true) ] in
  let cut =
    List.map
      (fun i -> enc.Circuit.Tseitin.var_of_input (Printf.sprintf "s1_%d" i))
      (List.init ts.T.state_width (fun i -> i))
  in
  (enc.Circuit.Tseitin.cnf, cut)

(* Merge A and B into one CNF over a shared cut: B's cut variables are
   renamed onto A's, every other B variable is offset past A's space. *)
let merge_cnfs cnf_a cut_a cnf_b cut_b =
  let n_a = Sat.Cnf.nvars cnf_a in
  let n_b = Sat.Cnf.nvars cnf_b in
  let rename = Array.make (n_b + 1) 0 in
  List.iter2 (fun vb va -> rename.(vb) <- va) cut_b cut_a;
  for v = 1 to n_b do
    if rename.(v) = 0 then rename.(v) <- n_a + v
  done;
  let combined = Sat.Cnf.create (n_a + n_b) in
  Sat.Cnf.iter_clauses
    (fun _ cl -> ignore (Sat.Cnf.add_clause combined cl))
    cnf_a;
  let n_a_clauses = Sat.Cnf.nclauses combined in
  Sat.Cnf.iter_clauses
    (fun _ cl ->
      let cl' =
        Array.map
          (fun l -> Sat.Lit.make rename.(Sat.Lit.var l) (Sat.Lit.is_neg l))
          cl
      in
      ignore (Sat.Cnf.add_clause combined cl'))
    cnf_b;
  (combined, n_a_clauses)

let init_bdd man (ts : T.t) =
  List.fold_left
    (fun acc (i, b) ->
      let v = if b then R.var man (i + 1) else R.nvar man (i + 1) in
      R.and_ man acc v)
    (R.top man)
    (List.mapi (fun i b -> (i, b)) ts.T.init)

let interpolation_mc ?config ?(initial_depth = 1) ?(max_iterations = 64) ts =
  let man = R.create ~nvars:ts.T.state_width () in
  (* depth-0: does the initial state itself violate the property? *)
  let init_ok =
    let c = N.create () in
    match N.gate c (unroll_bad ts c 0) with
    | N.G_const b -> not b
    | N.G_input _ | N.G_not _ | N.G_and _ | N.G_or _ | N.G_xor _ -> true
  in
  if not init_ok then Counterexample { depth = 0 }
  else begin
    let result = ref None in
    let r = ref (init_bdd man ts) in
    let r_is_init = ref true in
    let depth = ref initial_depth in
    let iterations = ref 0 in
    while !result = None do
      incr iterations;
      if !iterations > max_iterations then
        result := Some (Inconclusive { iterations = !iterations - 1 })
      else begin
        let cnf_a, cut_a = encode_a ts man !r in
        let cnf_b, cut_b = encode_b ts !depth in
        let combined, n_a_clauses = merge_cnfs cnf_a cut_a cnf_b cut_b in
        let solve_result, _stats, trace =
          Validate.solve_with_trace ?config combined
        in
        match solve_result with
        | Solver.Cdcl.Sat _ ->
          if !r_is_init then
            (* a genuine execution: one A-transition plus at most [depth]
               B-transitions *)
            result := Some (Counterexample { depth = !depth + 1 })
          else begin
            (* spurious hit on the over-approximation: deepen and restart *)
            depth := !depth + 1;
            r := init_bdd man ts;
            r_is_init := true
          end
        | Solver.Cdcl.Unsat -> (
          let a_indices = List.init n_a_clauses (fun i -> i) in
          match
            Interpolant.compute combined ~a_indices
              (Trace.Reader.From_string trace)
          with
          | Error d -> result := Some (Mc_check_failed d)
          | Ok itp ->
            (* map interpolant inputs (cut variables) back to state bits;
               aliased cut variables pick their first state index *)
            let index_of_var = Hashtbl.create 16 in
            List.iteri
              (fun i v ->
                if not (Hashtbl.mem index_of_var v) then
                  Hashtbl.replace index_of_var v i)
              cut_a;
            let var_of_input name =
              (* inputs are named "v<cnf var>" *)
              let v = int_of_string (String.sub name 1 (String.length name - 1)) in
              match Hashtbl.find_opt index_of_var v with
              | Some i -> i + 1
              | None ->
                (* interpolant variables are always cut variables *)
                assert false
            in
            let image =
              match
                R.of_netlist_mapped man itp.Interpolant.circuit
                  [ itp.Interpolant.root ] ~var_of_input
              with
              | [ b ] -> b
              | _ -> assert false
            in
            let r' = R.or_ man !r image in
            if R.equal r' !r then
              result :=
                Some
                  (Proved_safe
                     { iterations = !iterations; reachable_nodes = R.size man !r })
            else begin
              r := r';
              r_is_init := false
            end)
      end
    done;
    match !result with
    | Some out -> out
    | None -> assert false
  end
