(** Minimal unsatisfiable core (MUC) extraction.

    The paper's §4 iteration converges to a fixed point where every
    clause participates in {e some} proof — but that is not minimality:
    a clause can be used by the particular proof found while a different
    proof avoids it.  The reference the paper cites for small cores
    (Bruni & Sassano [16]) asks for irredundant subformulas; this module
    finishes the job with the classic destructive algorithm: try deleting
    each clause, keep the deletion when the rest is still unsatisfiable.

    The result is {e minimal}: removing any single clause makes it
    satisfiable (verified by the test suite). *)

type result = {
  indices : int list;      (** 0-based indices into the input formula *)
  formula : Sat.Cnf.t;     (** the minimal core itself *)
  solver_calls : int;      (** SAT calls spent minimising *)
}

(** [minimize ?config ?pre ?seed_with_proof_core f] returns a minimal
    unsatisfiable core of [f], or [Error `Sat].  When
    [seed_with_proof_core] (default true), the §4 fixpoint core is
    computed first so the destructive loop starts from a small set;
    [pre] (default false) makes those seeding extractions run the
    proof-emitting simplifier — indices still point into the input
    formula. *)
val minimize :
  ?config:Solver.Cdcl.config ->
  ?pre:bool ->
  ?seed_with_proof_core:bool ->
  Sat.Cnf.t ->
  (result, [ `Sat ]) Stdlib.result
