(** Unsatisfiable-core extraction and the iterated shrinking loop of the
    paper's §4 (Table 3).

    The depth-first check marks exactly the original clauses involved in
    the empty-clause derivation — a (not necessarily minimal) unsatisfiable
    core.  Feeding the core back to the solver and re-extracting shrinks
    it further; after some iterations it reaches a fixed point where every
    remaining clause is used by the proof.  The paper's applications:
    explaining infeasible AI plans, locating unroutable FPGA channel
    constraints, Alloy model debugging. *)

type core = {
  clause_indices : int list;  (** 0-based indices into the input formula *)
  num_clauses : int;
  num_vars : int;             (** distinct variables in the core clauses *)
}

(** [extract ?config ?pre f] solves [f] with tracing and returns the
    proof core.  [Error `Sat] when the formula is satisfiable;
    [Error (`Check_failed d)] if the produced trace does not check (a
    solver bug — should be impossible with the in-tree solver).  [pre]
    (default false) runs the proof-emitting simplifier first; because
    original clauses keep their DIMACS ids through the simplifier's
    records, the returned indices still point into the {e input}
    formula. *)
val extract :
  ?config:Solver.Cdcl.config ->
  ?pre:bool ->
  Sat.Cnf.t ->
  (core, [ `Sat | `Check_failed of Checker.Diagnostics.failure ]) result

type iteration = { clauses : int; vars : int }

type shrink_outcome = {
  initial : iteration;           (** the input formula's dimensions
                                     (occurring variables only, per the
                                     paper's Table 3 note) *)
  iterations : iteration list;   (** core size after each round *)
  reached_fixpoint : bool;       (** all clauses needed by the last proof *)
  rounds : int;                  (** rounds executed *)
  final_core : Sat.Cnf.t;        (** the last (smallest) core formula *)
  final_indices : int list;      (** its 0-based indices into the input *)
}

(** [shrink ?config ?pre ?max_rounds f] iterates extraction until a
    fixed point or [max_rounds] (default 30, as measured in Table 3).
    [pre] is threaded to each {!extract} round. *)
val shrink :
  ?config:Solver.Cdcl.config ->
  ?pre:bool ->
  ?max_rounds:int ->
  Sat.Cnf.t ->
  (shrink_outcome, [ `Sat | `Check_failed of Checker.Diagnostics.failure ]) result
