type strategy =
  | Depth_first
  | Breadth_first
  | Hybrid
  | Parallel of int  (* worker domains *)
  | Online
  | Hinted           (* native deletion hints + one-pass hinted check *)
  | Window of int    (* window-shifting BF with this window size *)

type verdict =
  | Sat_verified of Sat.Assignment.t
  | Unsat_verified of Checker.Report.t
  | Sat_model_wrong of int
  | Unsat_check_failed of Checker.Diagnostics.failure

type online_info = {
  peak_buffered_bytes : int;
  lint : Analysis.Lint.report;
}

type outcome = {
  verdict : verdict;
  stats : Solver.Cdcl.stats;
  trace_bytes : int;
  solve_seconds : float;
  check_seconds : float;
  online : online_info option;
  dag : Analysis.Dag.profile option;
  pre : Solver.Simplify.stats option;
}

(* Telemetry mirrors of the outcome's byte statistics. *)
let m_trace_bytes =
  Obs.Metrics.gauge Obs.Metrics.global "pipeline.trace_bytes"
let m_peak_buffered =
  Obs.Metrics.gauge Obs.Metrics.global "pipeline.peak_buffered_bytes"

(* Simplify then continue the same proof with the seeded solver: the
   simplifier's records and the CDCL records land in the one sink, so
   the combined trace checks against the original formula.  The SAT
   model is lifted back through [reconstruct] before it leaves this
   function, so callers always hold a model of the input. *)
let solve_into_sink ?config ~pre ~version sink f =
  if not pre then
    let result, stats = Solver.Cdcl.solve ?config ~trace:sink f in
    (result, stats, None)
  else begin
    let sconfig =
      { Solver.Simplify.default_config with emit_deletes = version = 2 }
    in
    let outcome, sstats = Solver.Simplify.run ~config:sconfig ~trace:sink f in
    let result, stats =
      match outcome with
      | Solver.Simplify.P_unsat -> (Solver.Cdcl.Unsat, Solver.Cdcl.empty_stats)
      | Solver.Simplify.P_sat a -> (Solver.Cdcl.Sat a, Solver.Cdcl.empty_stats)
      | Solver.Simplify.P_simplified
          { clauses; units; next_id; reconstruct; _ } ->
        let seed =
          {
            Solver.Cdcl.seed_nvars = Sat.Cnf.nvars f;
            seed_clauses =
              clauses @ List.map (fun (id, l) -> (id, [| l |])) units;
            seed_first_learned = next_id;
          }
        in
        let result, stats = Solver.Cdcl.solve_seeded ?config ~trace:sink seed in
        (match result with
         | Solver.Cdcl.Sat a -> (Solver.Cdcl.Sat (reconstruct a), stats)
         | Solver.Cdcl.Unsat -> (Solver.Cdcl.Unsat, stats))
    in
    (result, stats, Some sstats)
  end

let solve_encode ?config ~version ~format ~pre f =
  let w = Trace.Writer.create ~version format in
  let result, stats, pre_stats =
    Obs.Span.scope ~cat:"pipeline" "pipeline.solve_encode" @@ fun () ->
    solve_into_sink ?config ~pre ~version (Trace.Writer.as_sink w) f
  in
  (result, stats, pre_stats, Trace.Writer.contents w)

let solve_with_trace ?config ?(version = 1) ?(format = Trace.Writer.Ascii)
    ?(pre = false) f =
  let result, stats, _pre_stats, trace =
    solve_encode ?config ~version ~format ~pre f
  in
  (result, stats, trace)

let observe_verdict v =
  if Obs.Ctl.on () then
    match v with
    | Unsat_verified report -> Checker.Report.observe report
    | Sat_verified _ | Sat_model_wrong _ | Unsat_check_failed _ -> ()

let run_buffered ?config ?format ~strategy ?meter ~analyze ~pre f =
  (* the hinted strategy asks the solver for native deletion hints,
     which need a version-2 trace *)
  let config, version =
    match strategy with
    | Hinted ->
      let c = Option.value ~default:Solver.Cdcl.default_config config in
      (Some { c with Solver.Cdcl.emit_deletes = true }, 2)
    | _ -> (config, 1)
  in
  let format = Option.value ~default:Trace.Writer.Ascii format in
  let (result, stats, pre_stats, trace), solve_seconds =
    Harness.Timer.time (fun () -> solve_encode ?config ~version ~format ~pre f)
  in
  if Obs.Ctl.on () then
    Obs.Metrics.Gauge.set m_trace_bytes (float_of_int (String.length trace));
  let verdict, check_seconds =
    Harness.Timer.time (fun () ->
        Obs.Span.scope ~cat:"pipeline" "pipeline.check" @@ fun () ->
        match result with
        | Solver.Cdcl.Sat a -> (
          match Sat.Model.first_falsified a f with
          | None -> Sat_verified a
          | Some i -> Sat_model_wrong i)
        | Solver.Cdcl.Unsat -> (
          let source = Trace.Reader.From_string trace in
          let checked =
            match strategy with
            | Depth_first -> Checker.Df.check ?meter f source
            | Breadth_first -> Checker.Bf.check ?meter f source
            | Hybrid -> Checker.Hybrid.check ?meter f source
            | Parallel jobs -> Checker.Par.check ?meter ~jobs f source
            | Hinted -> Checker.Hint.check ?meter f source
            | Window window -> Checker.Window.check ?meter ~window f source
            | Online -> assert false
          in
          match checked with
          | Ok report -> Unsat_verified report
          | Error failure -> Unsat_check_failed failure))
  in
  (* the analyze stage profiles the proof DAG from the buffered trace; a
     SAT answer has no proof to profile *)
  let dag =
    if analyze && result = Solver.Cdcl.Unsat then
      match Analysis.Dag.run (Trace.Reader.From_string trace) with
      | Ok p -> Some p
      | Error _ -> None
    else None
  in
  observe_verdict verdict;
  { verdict; stats; trace_bytes = String.length trace; solve_seconds;
    check_seconds; online = None; dag; pre = pre_stats }

(* Online validation: the solver's live event stream is teed into the
   linter, the streaming encoder (which spools encoded chunks to a temp
   file for the checker's second pass) and BF's pass-one ingest, so
   counting and linting overlap solving and the full encoded trace is
   never resident — the encoder's [peak_buffered] is bounded by its flush
   threshold, not the proof size.  The ingest drives the exact same
   kernel validation and the reconstruction pass re-reads the identical
   bytes, so verdicts, reports, cores and failure diagnostics match the
   file-based breadth-first path bit for bit (timings aside). *)
let run_online ?config ~format ?meter ~analyze ~pre f =
  let spool = Filename.temp_file "rescheck_online" ".trc" in
  let oc = open_out_bin spool in
  let cleanup () =
    close_out_noerr oc;
    try Sys.remove spool with Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      let wstats, encoder = Trace.Writer.to_channel format oc in
      let ingest = Checker.Bf.ingest ?meter f in
      let binary = format = Trace.Writer.Binary in
      let lint_stream = Analysis.Lint.stream_start ~formula:f ~binary () in
      let counter, tail =
        Trace.Sink.counting
          (Trace.Sink.tee [ encoder; Checker.Bf.ingest_sink ingest ])
      in
      (* the linter comes first in the tee: its position for an event is
         the encoder's state *before* that event is written, which is
         exactly where a re-parse of the spooled trace reports it *)
      let pos () =
        if binary then Trace.Reader.Byte wstats.Trace.Writer.bytes
        else Trace.Reader.Line (counter.Trace.Sink.events + 1)
      in
      (* the DAG analyzer rides the same tee as the linter: it profiles
         the live stream with no extra read of the trace *)
      let dag_stream =
        if analyze then Some (Analysis.Dag.stream_start ~binary ()) else None
      in
      let sink =
        Trace.Sink.tee
          (Analysis.Lint.sink lint_stream ~pos
           ::
           (match dag_stream with
            | Some t -> [ Analysis.Dag.sink t ~pos; tail ]
            | None -> [ tail ]))
      in
      let (result, stats, pre_stats), solve_seconds =
        Harness.Timer.time (fun () ->
            (* on the online timeline this span brackets solving plus the
               teed lint/encode/ingest work interleaved with it *)
            Obs.Span.scope ~cat:"pipeline" "pipeline.online_stream"
            @@ fun () -> solve_into_sink ?config ~pre ~version:1 sink f)
      in
      Trace.Sink.close sink;
      flush oc;
      let lint = Analysis.Lint.stream_finish lint_stream in
      let online =
        Some { peak_buffered_bytes = wstats.Trace.Writer.peak_buffered; lint }
      in
      if Obs.Ctl.on () then begin
        Obs.Metrics.Gauge.set m_trace_bytes
          (float_of_int wstats.Trace.Writer.bytes);
        Obs.Metrics.Gauge.set m_peak_buffered
          (float_of_int wstats.Trace.Writer.peak_buffered)
      end;
      let verdict, check_seconds =
        Harness.Timer.time (fun () ->
            Obs.Span.scope ~cat:"pipeline" "pipeline.check" @@ fun () ->
            match result with
            | Solver.Cdcl.Sat a -> (
              match Sat.Model.first_falsified a f with
              | None -> Sat_verified a
              | Some i -> Sat_model_wrong i)
            | Solver.Cdcl.Unsat -> (
              match
                Checker.Bf.finish ingest (Trace.Reader.From_file spool)
              with
              | Ok report -> Unsat_verified report
              | Error failure -> Unsat_check_failed failure))
      in
      observe_verdict verdict;
      (* a SAT answer's partial trace has no conflict, so the analyzer
         legitimately refuses it — the profile is simply absent *)
      let dag =
        match dag_stream with
        | Some t -> (
          match Analysis.Dag.stream_finish t with
          | Ok p -> Some p
          | Error _ -> None)
        | None -> None
      in
      { verdict; stats; trace_bytes = wstats.Trace.Writer.bytes;
        solve_seconds; check_seconds; online; dag; pre = pre_stats })

let run ?config ?format ?(strategy = Depth_first) ?meter ?(analyze = false)
    ?(pre = false) f =
  match strategy with
  | Online ->
    let format = Option.value ~default:Trace.Writer.Ascii format in
    run_online ?config ~format ?meter ~analyze ~pre f
  | _ -> run_buffered ?config ?format ~strategy ?meter ~analyze ~pre f
