type strategy =
  | Depth_first
  | Breadth_first
  | Hybrid
  | Parallel of int  (* worker domains *)

type verdict =
  | Sat_verified of Sat.Assignment.t
  | Unsat_verified of Checker.Report.t
  | Sat_model_wrong of int
  | Unsat_check_failed of Checker.Diagnostics.failure

type outcome = {
  verdict : verdict;
  stats : Solver.Cdcl.stats;
  trace_bytes : int;
  solve_seconds : float;
  check_seconds : float;
}

let solve_with_trace ?config ?(format = Trace.Writer.Ascii) f =
  let w = Trace.Writer.create format in
  let result, stats = Solver.Cdcl.solve ?config ~trace:w f in
  (result, stats, Trace.Writer.contents w)

let run ?config ?format ?(strategy = Depth_first) ?meter f =
  let (result, stats, trace), solve_seconds =
    Harness.Timer.time (fun () -> solve_with_trace ?config ?format f)
  in
  let verdict, check_seconds =
    Harness.Timer.time (fun () ->
        match result with
        | Solver.Cdcl.Sat a -> (
          match Sat.Model.first_falsified a f with
          | None -> Sat_verified a
          | Some i -> Sat_model_wrong i)
        | Solver.Cdcl.Unsat -> (
          let source = Trace.Reader.From_string trace in
          let checked =
            match strategy with
            | Depth_first -> Checker.Df.check ?meter f source
            | Breadth_first -> Checker.Bf.check ?meter f source
            | Hybrid -> Checker.Hybrid.check ?meter f source
            | Parallel jobs -> Checker.Par.check ?meter ~jobs f source
          in
          match checked with
          | Ok report -> Unsat_verified report
          | Error failure -> Unsat_check_failed failure))
  in
  { verdict; stats; trace_bytes = String.length trace; solve_seconds;
    check_seconds }
