type result = {
  indices : int list;
  formula : Sat.Cnf.t;
  solver_calls : int;
}

let is_unsat config f =
  match Solver.Cdcl.solve ?config f with
  | Solver.Cdcl.Unsat, _ -> true
  | Solver.Cdcl.Sat _, _ -> false

let minimize ?config ?pre ?(seed_with_proof_core = true) f =
  let calls = ref 0 in
  let solve_unsat g =
    incr calls;
    is_unsat config g
  in
  if not (solve_unsat f) then Error `Sat
  else begin
    (* seed: the §4 fixpoint core (cheap and usually much smaller) *)
    let start_indices =
      if seed_with_proof_core then
        match Unsat_core.shrink ?config ?pre f with
        | Ok s ->
          calls := !calls + s.rounds;
          s.final_indices
        | Error _ -> List.init (Sat.Cnf.nclauses f) (fun i -> i)
      else List.init (Sat.Cnf.nclauses f) (fun i -> i)
    in
    (* destructive minimisation: one pass is enough — a clause proven
       necessary against a superset stays necessary against any subset
       (satisfiability is monotone under clause removal) *)
    let rec try_each kept = function
      | [] -> List.rev kept
      | idx :: rest ->
        let candidate = List.rev_append kept rest in
        if solve_unsat (Sat.Cnf.restrict_to f candidate) then
          try_each kept rest        (* idx is redundant: drop it *)
        else try_each (idx :: kept) rest
    in
    let indices = List.sort Int.compare (try_each [] start_indices) in
    Ok {
      indices;
      formula = Sat.Cnf.restrict_to f indices;
      solver_calls = !calls;
    }
  end
