module D = Checker.Diagnostics

(* Rebuild every learned clause in stream order (the breadth-first
   discipline) through the shared kernel and record its literals. *)
let of_trace f source =
  let k = Proof.Kernel.create f in
  let src = Trace.Source.of_cursor ~close_cursor:true (Trace.Reader.cursor source) in
  let context = "drup conversion" in
  let fetch id = Proof.Kernel.find k ~context id in
  let order = ref [] in
  try
    let (_ : Proof.Kernel.pass) =
      Proof.Kernel.stream_pass k ~stream_order:true
        ~on_event:(fun e ->
          match e with
          | Trace.Event.Learned l ->
            let h =
              Proof.Kernel.chain_ids k ~context ~fetch ~learned_id:l.id
                l.sources
            in
            Proof.Kernel.define k l.id h;
            order := Proof.Clause_db.lits (Proof.Kernel.db k) h :: !order
          | Trace.Event.Header _ | Trace.Event.Level0 _
          | Trace.Event.Final_conflict _ | Trace.Event.Delete _ -> ())
        src
    in
    Ok (List.rev ([||] :: !order))
  with
  | D.Check_failed d -> Error d
  | Trace.Reader.Parse_error { pos; msg } ->
    Error (D.of_parse_error ~pos msg)

let to_string derivation =
  let buf = Buffer.create 4096 in
  List.iter
    (fun c ->
      Array.iter
        (fun l ->
          Buffer.add_string buf (Sat.Lit.to_string l);
          Buffer.add_char buf ' ')
        c;
      Buffer.add_string buf "0\n")
    derivation;
  Buffer.contents buf

let parse s =
  let clauses = ref [] in
  let cur = ref [] in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" && line.[0] <> 'c' then
           String.split_on_char ' ' line
           |> List.iter (fun w ->
                  if w <> "" then
                    match int_of_string_opt w with
                    | Some 0 ->
                      clauses := Sat.Clause.of_lits (List.rev !cur) :: !clauses;
                      cur := []
                    | Some d -> cur := Sat.Lit.of_int d :: !cur
                    | None -> failwith ("Drup.parse: bad token " ^ w)));
  if !cur <> [] then failwith "Drup.parse: trailing literals";
  List.rev !clauses
