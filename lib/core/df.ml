(* Depth-first checking (§3.2, Figure 3) on the shared kernel: load the
   whole trace (charged to the meter — the paper's stated DF
   disadvantage), then reconstruct on demand through the resolve-source
   DAG from the final conflict, so only proof-relevant clauses are ever
   built and the touched originals form an unsat core. *)

let check ?meter ?format ?io ?first_pass formula source =
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let k = Proof.Kernel.create ~meter formula in
  try
    (* depth-first reads the trace exactly once, so the whole check can
       run off a single-shot stream (pipe/FIFO) with no re-read *)
    let src =
      match first_pass with
      | Some s -> s
      | None ->
        Trace.Source.of_cursor ~close_cursor:true
          (Trace.Reader.cursor ?format ?io source)
    in
    let proof, pass_one_seconds =
      Harness.Timer.wall_time (fun () ->
          Obs.Span.scope ~cat:"df" "check.pass_one" @@ fun () ->
          Fun.protect
            ~finally:(fun () -> Trace.Source.close src)
            (fun () -> Proof.Kernel.load k ~charge:`Full src))
    in
    let conf_id =
      match proof.Proof.Kernel.final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    let (), pass_two_seconds =
      Harness.Timer.wall_time (fun () ->
          Obs.Span.scope ~cat:"df" "check.pass_two" @@ fun () ->
          let b =
            Proof.Kernel.builder k ~sources:proof.Proof.Kernel.sources
              Proof.Kernel.unit_annotation
          in
          let fetch id = fst (Proof.Kernel.build b id) in
          let (_ : int) =
            Proof.Kernel.final_chain_ids k ~l0:proof.Proof.Kernel.l0 ~fetch
              ~conflict_id:conf_id
          in
          ())
    in
    let learned_built_ids = Proof.Kernel.built_ids k in
    let c = Proof.Kernel.counters k in
    Ok {
      Report.clauses_built = List.length learned_built_ids;
      learned_built_ids;
      total_learned = proof.Proof.Kernel.total_learned;
      resolution_steps = c.Proof.Kernel.resolution_steps;
      core_original_ids = Proof.Kernel.core_ids k;
      core_vars = Proof.Kernel.core_var_count k;
      peak_mem_words = Harness.Meter.peak_words meter;
      peak_live_clauses = c.Proof.Kernel.peak_live_clauses;
      arena_bytes_resident = c.Proof.Kernel.arena_peak_bytes;
      jobs = 1;
      wavefronts = 0;
      max_wavefront_width = 0;
      pass_one_seconds;
      pass_two_seconds;
    }
  with
  | Diagnostics.Check_failed f -> Error f
  | Trace.Reader.Parse_error { pos; msg } ->
    Error (Diagnostics.of_parse_error ~pos msg)
