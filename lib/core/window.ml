(* Window-shifting breadth-first checking.

   Pass one is breadth-first's counting pass verbatim: validate record
   shape and stream order, count every clause's uses.  Pass two replays
   the trace through a window scheduler: learned records are processed
   in windows of [window] definitions, and when a window fills, every
   clause still alive — learned clauses with undrained use counts, plus
   any materialised originals — is evicted from the arena.  Learned
   clauses are spilled byte-for-byte through a frozen arena view
   ({!Proof.Clause_db.freeze}) into a temp file; originals need no spill
   because the formula itself backs them.  A later reference reloads the
   clause transiently for the one chain that needs it and releases it
   right after, so the arena never holds more than [window] learned
   clauses plus one chain's operands.

   The schedule changes nothing the checker observes: verdicts, cores
   (empty, like breadth-first), built sets, resolution step counts and
   diagnostics are identical to {!Bf.check} on every trace. *)

type stats = {
  windows : int;      (* boundaries crossed *)
  spilled : int;      (* learned clauses written to the spill file *)
  reloaded : int;     (* transient reloads from the spill file *)
  max_resident : int; (* high-water defined-and-live learned clauses *)
}

let g_resident =
  Obs.Metrics.gauge Obs.Metrics.global "window.resident_clauses"

let g_spilled = Obs.Metrics.gauge Obs.Metrics.global "window.spilled_clauses"

type spill = {
  path : string;
  oc : out_channel;
  ic : in_channel;
  index : (int, int * int) Hashtbl.t; (* id -> (byte offset, lit count) *)
}

let spill_create () =
  let path = Filename.temp_file "window_spill" ".bin" in
  { path; oc = open_out_bin path; ic = open_in_bin path;
    index = Hashtbl.create 256 }

let spill_close s =
  close_out_noerr s.oc;
  close_in_noerr s.ic;
  try Sys.remove s.path with Sys_error _ -> ()

type state = {
  kernel : Proof.Kernel.t;
  counts : (int, int) Hashtbl.t;
  live : (int, unit) Hashtbl.t;      (* learned ids resident in the arena *)
  orig_live : (int, unit) Hashtbl.t; (* originals materialised this window *)
  spill : spill;
  mutable scratch : int array;
  mutable transients : Proof.Clause_db.handle list;
  mutable fill : int;       (* learned records in the current window *)
  mutable windows : int;
  mutable spilled : int;
  mutable reloaded : int;
  mutable max_resident : int;
}

let get_count st id = Option.value ~default:0 (Hashtbl.find_opt st.counts id)

let release_use st id =
  match get_count st id with
  | 0 -> ()
  | n when n <= 1 ->
    Hashtbl.remove st.counts id;
    Proof.Kernel.release_id st.kernel id;
    Hashtbl.remove st.live id;
    Hashtbl.remove st.orig_live id;
    Hashtbl.remove st.spill.index id
  | n -> Hashtbl.replace st.counts id (n - 1)

let ensure_scratch st n =
  if Array.length st.scratch < n then
    st.scratch <- Array.make (max n (2 * Array.length st.scratch)) 0

(* Shift the window: spill every live learned clause out through a frozen
   view, drop materialised originals (the formula backs them), and start
   the next window with an empty arena. *)
let boundary st =
  st.windows <- st.windows + 1;
  st.fill <- 0;
  if Hashtbl.length st.live > 0 then begin
    let db = Proof.Kernel.db st.kernel in
    let ro = Proof.Clause_db.freeze db in
    let ids = Hashtbl.fold (fun id () acc -> id :: acc) st.live [] in
    List.iter
      (fun id ->
        let h = Option.get (Proof.Kernel.peek st.kernel id) in
        let n = Proof.Clause_db.ro_size ro h in
        ensure_scratch st n;
        let n = Proof.Clause_db.ro_copy_lits ro h st.scratch in
        let off = pos_out st.spill.oc in
        for i = 0 to n - 1 do
          output_binary_int st.spill.oc st.scratch.(i)
        done;
        Hashtbl.replace st.spill.index id (off, n);
        st.spilled <- st.spilled + 1;
        Proof.Kernel.release_id st.kernel id)
      ids;
    if Obs.Journal.on () then
      Obs.Journal.record ~sub:"window" "spill"
        [
          ("window", st.windows);
          ("clauses", List.length ids);
          ("spilled_total", st.spilled);
        ];
    Hashtbl.reset st.live;
    flush st.spill.oc
  end;
  Hashtbl.iter
    (fun id () -> Proof.Kernel.release_id st.kernel id)
    st.orig_live;
  Hashtbl.reset st.orig_live

let reload st ~context id =
  match Hashtbl.find_opt st.spill.index id with
  | None -> Proof.Kernel.find st.kernel ~context id (* raises Unknown_clause *)
  | Some (off, n) ->
    ensure_scratch st n;
    seek_in st.spill.ic off;
    for i = 0 to n - 1 do
      st.scratch.(i) <- input_binary_int st.spill.ic
    done;
    st.reloaded <- st.reloaded + 1;
    if Obs.Journal.on () then
      Obs.Journal.record ~sub:"window" "reload"
        [ ("id", id); ("lits", n); ("reloaded_total", st.reloaded) ];
    let h =
      Proof.Clause_db.alloc_sorted (Proof.Kernel.db st.kernel) st.scratch n
    in
    st.transients <- h :: st.transients;
    h

(* Clause lookup for pass two and the final chain: arena-resident first,
   then originals from the formula, then the spill file. *)
let fetch st ~context id =
  match Proof.Kernel.peek st.kernel id with
  | Some h -> h
  | None ->
    if Proof.Kernel.is_original st.kernel id then begin
      let h = Proof.Kernel.find st.kernel ~context id in
      Hashtbl.replace st.orig_live id ();
      h
    end
    else reload st ~context id

let drop_transients st =
  let db = Proof.Kernel.db st.kernel in
  List.iter (fun h -> Proof.Clause_db.release db h) st.transients;
  st.transients <- []

let build_pass st ~window cur =
  let k = st.kernel in
  let context = "breadth-first reconstruction" in
  let fetch = fetch st ~context in
  Trace.Reader.rewind cur;
  Trace.Reader.iter_cursor cur (fun e ->
      match e with
      | Trace.Event.Header _ | Trace.Event.Level0 _
      | Trace.Event.Final_conflict _ | Trace.Event.Delete _ -> ()
      | Trace.Event.Learned l ->
        let h =
          Proof.Kernel.chain_ids k ~context ~fetch ~learned_id:l.id l.sources
        in
        drop_transients st;
        if get_count st l.id > 0 then begin
          Proof.Kernel.define k l.id h;
          Hashtbl.replace st.live l.id ();
          let r = Hashtbl.length st.live in
          if r > st.max_resident then st.max_resident <- r
        end
        else Proof.Clause_db.release (Proof.Kernel.db k) h;
        Array.iter (fun s -> release_use st s) l.sources;
        st.fill <- st.fill + 1;
        if st.fill >= window then boundary st)

let check ?meter ?format ?io ?first_pass ?on_stats ~window formula source =
  if window < 1 then
    invalid_arg "Window.check: window size must be at least 1";
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let kernel = Proof.Kernel.create ~meter formula in
  let l0 = Proof.Level0.create () in
  let stream =
    Proof.Kernel.stream_start kernel ~stream_order:true ~l0 ()
  in
  let st =
    {
      kernel;
      counts = Hashtbl.create 4096;
      live = Hashtbl.create 256;
      orig_live = Hashtbl.create 256;
      spill = spill_create ();
      scratch = Array.make 64 0;
      transients = [];
      fill = 0;
      windows = 0;
      spilled = 0;
      reloaded = 0;
      max_resident = 0;
    }
  in
  let add_use id = Hashtbl.replace st.counts id (1 + get_count st id) in
  let finish () =
    spill_close st.spill;
    if Obs.Ctl.on () then begin
      Obs.Metrics.Gauge.set g_resident (float_of_int st.max_resident);
      Obs.Metrics.Gauge.set g_spilled (float_of_int st.spilled)
    end;
    match on_stats with
    | None -> ()
    | Some f ->
      f
        {
          windows = st.windows;
          spilled = st.spilled;
          reloaded = st.reloaded;
          max_resident = st.max_resident;
        }
  in
  try
    (* pass one: breadth-first's validating/counting pass *)
    let (), pass_one_seconds =
      Harness.Timer.wall_time (fun () ->
          Obs.Span.scope ~cat:"window" "check.pass_one" @@ fun () ->
          let src =
            match first_pass with
            | Some s -> s
            | None ->
              Trace.Source.of_cursor ~close_cursor:true
                (Trace.Reader.cursor ?format ?io source)
          in
          Fun.protect
            ~finally:(fun () -> Trace.Source.close src)
            (fun () ->
              Trace.Source.iter
                (fun e ->
                  Proof.Kernel.stream_feed stream e;
                  match e with
                  | Trace.Event.Header _ -> ()
                  | Trace.Event.Learned l -> Array.iter add_use l.sources
                  | Trace.Event.Level0 v -> add_use v.ante
                  | Trace.Event.Final_conflict id -> add_use id
                  (* unreachable: stream_feed refuses hints first *)
                  | Trace.Event.Delete _ -> ())
                src))
    in
    let pass = Proof.Kernel.stream_finish stream in
    let conf_id =
      match pass.Proof.Kernel.final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    (* pass two: windowed reconstruction with eager frees and spills *)
    let (), pass_two_seconds =
      Harness.Timer.wall_time (fun () ->
          Obs.Span.scope ~cat:"window" "check.pass_two" @@ fun () ->
          let cur = Trace.Reader.cursor ?format ?io source in
          build_pass st ~window cur;
          Trace.Reader.close cur;
          let fetch = fetch st ~context:"empty-clause construction" in
          let (_ : int) =
            Proof.Kernel.final_chain_ids kernel ~l0 ~fetch
              ~conflict_id:conf_id
          in
          drop_transients st)
    in
    let c = Proof.Kernel.counters kernel in
    let r =
      {
        Report.clauses_built = c.Proof.Kernel.clauses_built;
        total_learned = pass.Proof.Kernel.total_learned;
        resolution_steps = c.Proof.Kernel.resolution_steps;
        core_original_ids = [];
        learned_built_ids = Proof.Kernel.built_ids kernel;
        core_vars = 0;
        peak_mem_words = Harness.Meter.peak_words meter;
        peak_live_clauses = c.Proof.Kernel.peak_live_clauses;
        arena_bytes_resident = c.Proof.Kernel.arena_peak_bytes;
        jobs = 1;
        wavefronts = 0;
        max_wavefront_width = 0;
        pass_one_seconds;
        pass_two_seconds;
      }
    in
    finish ();
    Ok r
  with
  | Diagnostics.Check_failed f ->
    finish ();
    Error f
  | Trace.Reader.Parse_error { pos; msg } ->
    finish ();
    Error (Diagnostics.of_parse_error ~pos msg)
