(* Parallel breadth-first checking: the §3.3 two-pass discipline with
   pass two executed as topological wavefronts across OCaml domains.

   Pass one is the sequential BF counting pass, extended to label every
   learned clause with its level — [1 + max (level of sources)], originals
   at level 0 — so clauses in the same wavefront cannot depend on each
   other.  Pass two replays one wavefront at a time: a fixed pool of
   worker domains pulls chunks of the wavefront's resolution chains off a
   shared queue and replays them through the re-entrant
   {!Proof.Kernel.resolve_ro}, reading store operands in place from a
   {!Proof.Clause_db.ro} view frozen at dispatch — only the running
   resolvent lives in domain-local scratch — while the shared
   {!Proof.Clause_db} stays read-only.  At the wavefront barrier
   the main thread — alone — commits every result in stream order:
   allocates the resolvents, folds the counter deltas in, defines or
   drops each clause by its use count, and releases drained sources.
   All mutation being single-threaded and in stream order makes verdicts,
   cores and diagnostics bit-identical to sequential BF at any job count.

   Global wavefronts would wreck BF's memory guarantee: level-1 clauses
   from the very start and the very end of the trace would all be built
   (and stay live) before any level-2 clause releases its sources,
   inflating the live window several-fold.  Wavefronts are therefore
   scheduled {e within stream windows} of [window] learned clauses:
   inside a window the level rule applies with sources from earlier
   windows (already committed) counting as level 0.  At every window
   boundary the live set is exactly sequential BF's at the same stream
   point, so peak live clauses exceed BF's by at most one window's delayed
   releases, while each window still exposes its internal width to the
   worker pool.

   Failures keep BF's first-failure semantics without giving up
   parallelism: workers skip any task at or past the earliest failing
   stream index seen so far, later wavefronts run restricted to earlier
   stream indices, and the reported failure is the minimum-stream-index
   one — exactly the failure sequential BF stops at. *)

type task = {
  id : int;
  sources : int array;
  seq : int;    (* index among learned records, stream order *)
  words : int;  (* meter words this source list holds until its barrier *)
}

type outcome =
  | Single  (* one-source chain: the learned clause aliases its source *)
  | Clause of { lits : int array; steps : int; merges : int }
  | Fail of Diagnostics.failure
  | Skipped

(* Domain-local scratch: the running resolvent ping-pongs between [cur]
   and [out].  Store operands are no longer staged here — they are read
   in place from the wavefront's frozen view.  Nothing here is shared. *)
type scratch = {
  mutable cur : int array;
  mutable out : int array;
}

let make_scratch () = { cur = Array.make 64 0; out = Array.make 64 0 }

let grown a n =
  if Array.length a >= n then a else Array.make (max n (2 * Array.length a)) 0

(* BF uses this context string for every chain failure; reusing it verbatim
   keeps parallel diagnostics bit-identical to sequential ones. *)
let context = "breadth-first reconstruction"

(* Main-thread telemetry handles.  Worker domains never touch these: they
   record into a private {!Obs.Metrics.shard} that the main thread folds
   into the global registry at each wavefront barrier. *)
let m_width = Obs.Metrics.histogram Obs.Metrics.global "par.wavefront_width"
let m_fronts = Obs.Metrics.counter Obs.Metrics.global "par.fronts_replayed"

let peek_handle k id =
  match Proof.Kernel.peek k id with
  | Some h -> h
  | None ->
    (* unreachable for sources.(0): pass one enforced stream order and
       originals are materialised before their wavefront is dispatched *)
    Diagnostics.fail (Diagnostics.Unknown_clause { context; id })

(* Replay one learned clause's chain in scratch — the worker-side mirror
   of {!Proof.Kernel.chain}, including its [c1_id] convention:
   intermediate resolvents belong to the learned id.  The first source is
   copied once to seed the running resolvent; every other operand is read
   in place from the frozen view. *)
let run_task k view sc t =
  let n = Array.length t.sources in
  if n = 1 then Single
  else
    try
      let len =
        ref
          (let h = peek_handle k t.sources.(0) in
           sc.cur <- grown sc.cur (Proof.Clause_db.ro_size view h);
           Proof.Clause_db.ro_copy_lits view h sc.cur)
      in
      let merges = ref 0 in
      let c1_id = ref t.sources.(0) in
      for i = 1 to n - 1 do
        let h = peek_handle k t.sources.(i) in
        let nb = Proof.Clause_db.ro_size view h in
        sc.out <- grown sc.out (!len + nb);
        let len', _pivot, m =
          Proof.Kernel.resolve_ro ~context ~c1_id:!c1_id
            ~c2_id:t.sources.(i) sc.cur !len view h sc.out
        in
        let tmp = sc.cur in
        sc.cur <- sc.out;
        sc.out <- tmp;
        len := len';
        merges := !merges + m;
        c1_id := t.id
      done;
      Clause { lits = Array.sub sc.cur 0 !len; steps = n - 1; merges = !merges }
    with Diagnostics.Check_failed f -> Fail f

(* --- the worker pool ---------------------------------------------------- *)

(* Workers claim chunks of the current wavefront off [next]; the main
   thread publishes a wavefront under the mutex and sleeps on [finished]
   until [unfinished] drains.  Mutex hand-offs order the workers' result
   writes before the main thread's barrier reads, so the plain [results]
   array needs no atomics: each slot has exactly one writer per wavefront
   and is read only after the barrier. *)
type pool = {
  m : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable tasks : task array;
  mutable results : outcome array;
  mutable view : Proof.Clause_db.ro;  (* frozen at every dispatch *)
  mutable next : int;
  mutable unfinished : int;
  mutable limit_seq : int;  (* run only tasks with [seq] below this *)
  mutable chunk : int;      (* claim granularity for this wavefront *)
  mutable stop : bool;
  mutable crashed : exn option;  (* first non-diagnostic worker exception *)
}

let make_pool db =
  {
    m = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    tasks = [||];
    results = [||];
    view = Proof.Clause_db.freeze db;
    next = 0;
    unfinished = 0;
    limit_seq = max_int;
    chunk = 1;
    stop = false;
    crashed = None;
  }

let worker kernel pool shard () =
  let sc = make_scratch () in
  (* lock-free per-domain telemetry: the shard has one writer (this
     worker) and is read and zeroed by the main thread only at barriers *)
  let sh_tasks = Obs.Metrics.shard_counter shard "par.tasks_replayed" in
  let sh_steps = Obs.Metrics.shard_counter shard "par.steps_replayed" in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    while pool.next >= Array.length pool.tasks && not pool.stop do
      Condition.wait pool.work pool.m
    done;
    if pool.stop then begin
      Mutex.unlock pool.m;
      running := false
    end
    else begin
      let lo = pool.next in
      let hi = min (Array.length pool.tasks) (lo + pool.chunk) in
      pool.next <- hi;
      let limit = pool.limit_seq in
      (* the mutex hand-off that published this wavefront also published
         its frozen view, so the read is ordered after the freeze *)
      let view = pool.view in
      Mutex.unlock pool.m;
      for i = lo to hi - 1 do
        let t = pool.tasks.(i) in
        let r =
          if t.seq >= limit then Skipped
          else
            try run_task kernel view sc t
            with e ->
              Mutex.lock pool.m;
              if pool.crashed = None then pool.crashed <- Some e;
              Mutex.unlock pool.m;
              Skipped
        in
        (if Obs.Ctl.on () then
           match r with
           | Clause { steps; _ } ->
             Obs.Metrics.Counter.incr sh_tasks 1;
             Obs.Metrics.Counter.incr sh_steps steps
           | Single -> Obs.Metrics.Counter.incr sh_tasks 1
           | Fail _ | Skipped -> ());
        pool.results.(i) <- r
      done;
      Mutex.lock pool.m;
      pool.unfinished <- pool.unfinished - (hi - lo);
      if pool.unfinished = 0 then Condition.signal pool.finished;
      Mutex.unlock pool.m
    end
  done

let dispatch pool tasks results ~view ~limit_seq ~jobs =
  Mutex.lock pool.m;
  pool.tasks <- tasks;
  pool.results <- results;
  pool.view <- view;
  pool.next <- 0;
  pool.unfinished <- Array.length tasks;
  pool.limit_seq <- limit_seq;
  (* ~4 claims per worker per wavefront: cheap balancing on narrow fronts,
     bounded queue traffic on wide ones *)
  pool.chunk <- max 1 (min 32 (Array.length tasks / (jobs * 4)));
  Condition.broadcast pool.work;
  while pool.unfinished > 0 do
    Condition.wait pool.finished pool.m
  done;
  pool.tasks <- [||];
  Mutex.unlock pool.m

let shutdown pool domains =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  List.iter Domain.join domains

(* --- the checker -------------------------------------------------------- *)

let default_window = 128

let check ?meter ?format ?io ?(jobs = 1) ?(window = default_window)
    ?first_pass formula source =
  if jobs < 1 then invalid_arg "Par.check: jobs must be >= 1";
  let window = max 1 window in
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let kernel = Proof.Kernel.create ~meter formula in
  (* pass one is the only trace read (tasks are kept in memory), so the
     whole check can run off a single-shot stream *)
  let src =
    match first_pass with
    | Some s -> s
    | None ->
      Trace.Source.of_cursor ~close_cursor:true
        (Trace.Reader.cursor ?format ?io source)
  in
  let use = Hashtbl.create 4096 in
  let get_count id = Option.value ~default:0 (Hashtbl.find_opt use id) in
  let add_use id = Hashtbl.replace use id (1 + get_count id) in
  let release_one_use id =
    match get_count id with
    | 0 -> ()
    | n when n <= 1 ->
      Hashtbl.remove use id;
      Proof.Kernel.release_id kernel id
    | n -> Hashtbl.replace use id (n - 1)
  in
  try
    (* pass one: BF's counting/validation pass, also collecting the
       resolve-source lists as tasks.  The lists are charged to the meter
       (the parallel checker, unlike BF, must hold them until their
       wavefront commits). *)
    let tasks_rev = ref [] in
    let seq = ref 0 in
    let l0 = Proof.Level0.create () in
    let pass, pass_one_seconds =
      Harness.Timer.wall_time (fun () ->
          Obs.Span.scope ~cat:"par" "check.pass_one" @@ fun () ->
          Fun.protect
            ~finally:(fun () -> Trace.Source.close src)
            (fun () ->
              Proof.Kernel.stream_pass kernel ~stream_order:true ~l0
                ~charge:`Defs
                ~on_event:(fun e ->
                  match e with
                  | Trace.Event.Header _ -> ()
                  | Trace.Event.Learned l ->
                    Array.iter add_use l.sources;
                    tasks_rev :=
                      {
                        id = l.id;
                        sources = l.sources;
                        seq = !seq;
                        words = 2 + Array.length l.sources;
                      }
                      :: !tasks_rev;
                    incr seq
                  | Trace.Event.Level0 v -> add_use v.ante
                  | Trace.Event.Final_conflict id -> add_use id
                  | Trace.Event.Delete _ -> ())
                src))
    in
    let conf_id =
      match pass.Proof.Kernel.final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    (* cut the stream into windows and bucket each window's tasks into
       wavefronts by their window-local level (sources from earlier
       windows are committed before the window starts, hence level 0) *)
    let tasks = Array.of_list (List.rev !tasks_rev) in
    let n_tasks = Array.length tasks in
    let fronts_rev = ref [] in
    let llevel = Hashtbl.create 256 in
    let start = ref 0 in
    while !start < n_tasks do
      let stop = min n_tasks (!start + window) in
      Hashtbl.reset llevel;
      let depth = ref 0 in
      for i = !start to stop - 1 do
        let t = tasks.(i) in
        let l =
          1
          + Array.fold_left
              (fun acc s ->
                match Hashtbl.find_opt llevel s with
                | Some ls -> max acc ls
                | None -> acc)
              0 t.sources
        in
        Hashtbl.replace llevel t.id l;
        if l > !depth then depth := l
      done;
      let buckets = Array.make !depth [] in
      for i = stop - 1 downto !start do
        let t = tasks.(i) in
        let l = Hashtbl.find llevel t.id in
        buckets.(l - 1) <- t :: buckets.(l - 1)
      done;
      Array.iter (fun b -> fronts_rev := Array.of_list b :: !fronts_rev) buckets;
      start := stop
    done;
    let fronts = Array.of_list (List.rev !fronts_rev) in
    let max_width =
      Array.fold_left (fun acc f -> max acc (Array.length f)) 0 fronts
    in
    let min_fail = ref None in
    let min_fail_seq = ref max_int in
    let record_failure t f =
      if t.seq < !min_fail_seq then begin
        min_fail := Some f;
        min_fail_seq := t.seq
      end
    in
    (* the single-threaded barrier commit: stream order within the
       wavefront, mirroring BF's define-then-release per learned clause *)
    let db = Proof.Kernel.db kernel in
    let commit tasks results =
      Array.iteri
        (fun i t ->
          match results.(i) with
          | Skipped -> ()
          | Fail f -> record_failure t f
          | Single ->
            if t.seq < !min_fail_seq then begin
              let h = Proof.Kernel.find kernel ~context t.sources.(0) in
              Proof.Kernel.record_external_chain kernel ~learned_id:t.id
                ~steps:0 ~merges:0;
              if get_count t.id > 0 then begin
                Proof.Clause_db.retain db h;
                Proof.Kernel.define kernel t.id h
              end;
              Array.iter release_one_use t.sources
            end
          | Clause { lits; steps; merges } ->
            if t.seq < !min_fail_seq then begin
              let h = Proof.Clause_db.alloc_sorted db lits (Array.length lits) in
              Proof.Kernel.record_external_chain kernel ~learned_id:t.id
                ~steps ~merges;
              if get_count t.id > 0 then Proof.Kernel.define kernel t.id h
              else Proof.Clause_db.release db h;
              Array.iter release_one_use t.sources
            end)
        tasks;
      Harness.Meter.free meter
        (Array.fold_left (fun acc t -> acc + t.words) 0 tasks)
    in
    (* materialise the originals a wavefront resolves against before its
       workers start, so the store is strictly read-only while they run *)
    let materialise_originals tasks =
      Array.iter
        (fun t ->
          Array.iter
            (fun s ->
              if
                Proof.Kernel.is_original kernel s
                && Proof.Kernel.peek kernel s = None
              then ignore (Proof.Kernel.find kernel ~context s))
            t.sources)
        tasks
    in
    let pool = make_pool db in
    let shards = Array.init jobs (fun _ -> Obs.Metrics.shard ()) in
    let domains =
      if jobs > 1 && Array.length fronts > 0 then
        List.init jobs (fun i -> Domain.spawn (worker kernel pool shards.(i)))
      else []
    in
    let inline_scratch = make_scratch () in
    let (), pass_two_seconds =
      Harness.Timer.wall_time (fun () ->
          Obs.Span.scope ~cat:"par" "check.pass_two" @@ fun () ->
          Fun.protect
            ~finally:(fun () -> shutdown pool domains)
            (fun () ->
              Array.iter
                (fun front ->
                  let width = Array.length front in
                  let sp =
                    Obs.Span.enter ~cat:"par"
                      ~args:[ ("width", width) ] "check.wavefront"
                  in
                  materialise_originals front;
                  (* freeze after materialisation: the view must cover
                     every original this wavefront resolves against, and
                     any relocation the materialisation caused *)
                  let view = Proof.Clause_db.freeze db in
                  let results = Array.make width Skipped in
                  if domains = [] then
                    Array.iteri
                      (fun i t ->
                        results.(i) <-
                          (if t.seq >= !min_fail_seq then Skipped
                           else run_task kernel view inline_scratch t))
                      front
                  else begin
                    dispatch pool front results ~view ~limit_seq:!min_fail_seq
                      ~jobs;
                    (* [dispatch] returning is the barrier: every worker is
                       idle again, so folding the shards races with no one *)
                    if Obs.Ctl.on () then
                      Array.iter
                        (Obs.Metrics.merge_shard Obs.Metrics.global)
                        shards;
                    match pool.crashed with
                    | Some e -> raise e
                    | None -> ()
                  end;
                  commit front results;
                  if Obs.Ctl.on () then begin
                    Obs.Metrics.Counter.incr m_fronts 1;
                    Obs.Metrics.Histogram.observe m_width width;
                    Obs.Sampler.tick ()
                  end;
                  if Obs.Journal.on () then
                    Obs.Journal.record ~sub:"par" "wavefront"
                      [ ("width", width); ("jobs", jobs) ];
                  Obs.Span.leave sp)
                fronts;
              match !min_fail with
              | Some f -> Diagnostics.fail f
              | None ->
                let fetch id =
                  Proof.Kernel.find kernel
                    ~context:"empty-clause construction" id
                in
                let (_ : int) =
                  Proof.Kernel.final_chain_ids kernel ~l0 ~fetch
                    ~conflict_id:conf_id
                in
                ()))
    in
    let c = Proof.Kernel.counters kernel in
    Ok {
      Report.clauses_built = c.Proof.Kernel.clauses_built;
      total_learned = pass.Proof.Kernel.total_learned;
      resolution_steps = c.Proof.Kernel.resolution_steps;
      core_original_ids = [];
      learned_built_ids = Proof.Kernel.built_ids kernel;
      core_vars = 0;
      peak_mem_words = Harness.Meter.peak_words meter;
      peak_live_clauses = c.Proof.Kernel.peak_live_clauses;
      arena_bytes_resident = c.Proof.Kernel.arena_peak_bytes;
      jobs;
      wavefronts = Array.length fronts;
      max_wavefront_width = max_width;
      pass_one_seconds;
      pass_two_seconds;
    }
  with
  | Diagnostics.Check_failed f -> Error f
  | Trace.Reader.Parse_error { pos; msg } ->
    Error (Diagnostics.of_parse_error ~pos msg)
