type t = {
  clauses_built : int;
  total_learned : int;
  resolution_steps : int;
  core_original_ids : int list;
  learned_built_ids : int list;
  core_vars : int;
  peak_mem_words : int;
  peak_live_clauses : int;
  arena_bytes_resident : int;
}

let built_ratio r =
  if r.total_learned = 0 then 1.0
  else float_of_int r.clauses_built /. float_of_int r.total_learned

let pp fmt r =
  Format.fprintf fmt
    "@[<v>clauses built: %d / %d (%.1f%%)@,resolution steps: %d@,core: %d \
     clauses over %d variables@,peak memory: %d words@,peak live clauses: \
     %d (%d arena bytes)@]"
    r.clauses_built r.total_learned
    (100.0 *. built_ratio r)
    r.resolution_steps
    (List.length r.core_original_ids)
    r.core_vars r.peak_mem_words r.peak_live_clauses r.arena_bytes_resident
