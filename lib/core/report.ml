type t = {
  clauses_built : int;
  total_learned : int;
  resolution_steps : int;
  core_original_ids : int list;
  learned_built_ids : int list;
  core_vars : int;
  peak_mem_words : int;
  peak_live_clauses : int;
  arena_bytes_resident : int;
  jobs : int;
  wavefronts : int;
  max_wavefront_width : int;
  pass_one_seconds : float;
  pass_two_seconds : float;
}

let built_ratio r =
  if r.total_learned = 0 then 1.0
  else float_of_int r.clauses_built /. float_of_int r.total_learned

let pp fmt r =
  Format.fprintf fmt
    "@[<v>clauses built: %d / %d (%.1f%%)@,resolution steps: %d@,core: %d \
     clauses over %d variables@,peak memory: %d words@,peak live clauses: \
     %d (%d arena bytes)"
    r.clauses_built r.total_learned
    (100.0 *. built_ratio r)
    r.resolution_steps
    (List.length r.core_original_ids)
    r.core_vars r.peak_mem_words r.peak_live_clauses r.arena_bytes_resident;
  (* the parallel checker's schedule shape; elapsed seconds stay out of
     the report text so checker output is reproducible *)
  if r.wavefronts > 0 then
    Format.fprintf fmt "@,wavefronts: %d (max width %d, %d jobs)"
      r.wavefronts r.max_wavefront_width r.jobs;
  Format.fprintf fmt "@]"

(* Same reproducibility contract as [pp]: elapsed seconds stay out, so
   the JSON is byte-identical across runs (and with telemetry on/off —
   the identity cram test diffs exactly this output). *)
let to_json r =
  let buf = Buffer.create 512 in
  let ids l =
    Buffer.add_char buf '[';
    List.iteri
      (fun i id ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int id))
      l;
    Buffer.add_char buf ']'
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "\"clauses_built\":%d,\n\"total_learned\":%d,\n"
       r.clauses_built r.total_learned);
  Buffer.add_string buf
    (Printf.sprintf "\"built_ratio\":%.4f,\n\"resolution_steps\":%d,\n"
       (built_ratio r) r.resolution_steps);
  Buffer.add_string buf "\"core_original_ids\":";
  ids r.core_original_ids;
  Buffer.add_string buf ",\n\"learned_built_ids\":";
  ids r.learned_built_ids;
  Buffer.add_string buf
    (Printf.sprintf ",\n\"core_vars\":%d,\n\"peak_mem_words\":%d,\n"
       r.core_vars r.peak_mem_words);
  Buffer.add_string buf
    (Printf.sprintf "\"peak_live_clauses\":%d,\n\"arena_bytes_resident\":%d,\n"
       r.peak_live_clauses r.arena_bytes_resident);
  Buffer.add_string buf
    (Printf.sprintf
       "\"jobs\":%d,\n\"wavefronts\":%d,\n\"max_wavefront_width\":%d\n}"
       r.jobs r.wavefronts r.max_wavefront_width);
  Buffer.contents buf

(* Telemetry handles for the folded-in report statistics; set once per
   check from the success path of every checker. *)
let g_built = Obs.Metrics.gauge Obs.Metrics.global "checker.clauses_built"
let g_learned = Obs.Metrics.gauge Obs.Metrics.global "checker.total_learned"
let g_steps = Obs.Metrics.gauge Obs.Metrics.global "checker.resolution_steps"
let g_core = Obs.Metrics.gauge Obs.Metrics.global "checker.core_clauses"
let g_peak_mem = Obs.Metrics.gauge Obs.Metrics.global "checker.peak_mem_words"
let g_peak_live =
  Obs.Metrics.gauge Obs.Metrics.global "kernel.peak_live_clauses"
let g_arena_peak =
  Obs.Metrics.gauge Obs.Metrics.global "kernel.arena_peak_bytes"
let g_jobs = Obs.Metrics.gauge Obs.Metrics.global "par.jobs"
let g_wavefronts = Obs.Metrics.gauge Obs.Metrics.global "par.wavefronts"
let g_max_width =
  Obs.Metrics.gauge Obs.Metrics.global "par.max_wavefront_width"

let observe r =
  if Obs.Ctl.on () then begin
    let set g v = Obs.Metrics.Gauge.set g (float_of_int v) in
    set g_built r.clauses_built;
    set g_learned r.total_learned;
    set g_steps r.resolution_steps;
    set g_core (List.length r.core_original_ids);
    set g_peak_mem r.peak_mem_words;
    set g_peak_live r.peak_live_clauses;
    set g_arena_peak r.arena_bytes_resident;
    if r.wavefronts > 0 then begin
      set g_jobs r.jobs;
      set g_wavefronts r.wavefronts;
      set g_max_width r.max_wavefront_width
    end
  end
