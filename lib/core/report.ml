type t = {
  clauses_built : int;
  total_learned : int;
  resolution_steps : int;
  core_original_ids : int list;
  learned_built_ids : int list;
  core_vars : int;
  peak_mem_words : int;
  peak_live_clauses : int;
  arena_bytes_resident : int;
  jobs : int;
  wavefronts : int;
  max_wavefront_width : int;
  pass_one_seconds : float;
  pass_two_seconds : float;
}

let built_ratio r =
  if r.total_learned = 0 then 1.0
  else float_of_int r.clauses_built /. float_of_int r.total_learned

let pp fmt r =
  Format.fprintf fmt
    "@[<v>clauses built: %d / %d (%.1f%%)@,resolution steps: %d@,core: %d \
     clauses over %d variables@,peak memory: %d words@,peak live clauses: \
     %d (%d arena bytes)"
    r.clauses_built r.total_learned
    (100.0 *. built_ratio r)
    r.resolution_steps
    (List.length r.core_original_ids)
    r.core_vars r.peak_mem_words r.peak_live_clauses r.arena_bytes_resident;
  (* the parallel checker's schedule shape; elapsed seconds stay out of
     the report text so checker output is reproducible *)
  if r.wavefronts > 0 then
    Format.fprintf fmt "@,wavefronts: %d (max width %d, %d jobs)"
      r.wavefronts r.max_wavefront_width r.jobs;
  Format.fprintf fmt "@]"
