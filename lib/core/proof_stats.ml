type t = {
  learned_total : int;
  learned_needed : int;
  resolution_steps : int;
  dag_depth : int;
  max_clause_width : int;
  mean_clause_width : float;
  final_chain_length : int;
}

(* Measure while rebuilding breadth-first through the kernel: clause
   literals give widths, the source lists give DAG depth (originals have
   depth 0), and a reverse sweep gives the needed set. *)
let analyze formula source =
  let k = Proof.Kernel.create formula in
  let src = Trace.Source.of_cursor ~close_cursor:true (Trace.Reader.cursor source) in
  let is_original id = Proof.Kernel.is_original k id in
  let context = "proof statistics" in
  let fetch id = Proof.Kernel.find k ~context id in
  let depth = Hashtbl.create 1024 in
  let defs = ref [] in
  let antes = ref [] in
  let l0 = Proof.Level0.create () in
  let width_sum = ref 0 in
  let width_max = ref 0 in
  let depth_of id =
    if is_original id then 0
    else Option.value ~default:0 (Hashtbl.find_opt depth id)
  in
  try
    let pass =
      Proof.Kernel.stream_pass k ~stream_order:true ~l0
        ~on_event:(fun e ->
          match e with
          | Trace.Event.Header _ | Trace.Event.Final_conflict _
          | Trace.Event.Delete _ -> ()
          | Trace.Event.Learned l ->
            let h =
              Proof.Kernel.chain_ids k ~context ~fetch ~learned_id:l.id
                l.sources
            in
            Proof.Kernel.define k l.id h;
            let w = Proof.Clause_db.size (Proof.Kernel.db k) h in
            width_sum := !width_sum + w;
            if w > !width_max then width_max := w;
            let d =
              1
              + Array.fold_left (fun acc s -> max acc (depth_of s)) 0 l.sources
            in
            Hashtbl.replace depth l.id d;
            defs := (l.id, l.sources) :: !defs
          | Trace.Event.Level0 v -> antes := v.ante :: !antes)
        src
    in
    let total = pass.Proof.Kernel.total_learned in
    let conf_id =
      match pass.Proof.Kernel.final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    (* run the final chain for its length and validity *)
    let chain_len =
      Proof.Kernel.final_chain_ids k ~l0 ~fetch ~conflict_id:conf_id
    in
    (* needed set: conflict + antecedents, closed backwards over defs
       (defs is in reverse stream order already) *)
    let needed = Hashtbl.create 1024 in
    Hashtbl.replace needed conf_id ();
    List.iter (fun a -> Hashtbl.replace needed a ()) !antes;
    List.iter
      (fun (id, sources) ->
        if Hashtbl.mem needed id then
          Array.iter (fun s -> Hashtbl.replace needed s ()) sources)
      !defs;
    let learned_needed =
      Hashtbl.fold
        (fun id () acc -> if is_original id then acc else acc + 1)
        needed 0
    in
    Ok {
      learned_total = total;
      learned_needed;
      resolution_steps = Proof.Kernel.resolution_steps k;
      dag_depth =
        List.fold_left
          (fun acc id -> max acc (depth_of id))
          (depth_of conf_id) !antes;
      max_clause_width = !width_max;
      mean_clause_width =
        (if total = 0 then 0.0
         else float_of_int !width_sum /. float_of_int total);
      final_chain_length = chain_len;
    }
  with
  | Diagnostics.Check_failed d -> Error d
  | Trace.Reader.Parse_error { pos; msg } ->
    Error (Diagnostics.of_parse_error ~pos msg)

let pp fmt s =
  Format.fprintf fmt
    "@[<v>learned: %d (%d needed)@,resolution steps: %d@,DAG depth: %d@,\
     clause width: mean %.1f, max %d@,final chain: %d steps@]"
    s.learned_total s.learned_needed s.resolution_steps s.dag_depth
    s.mean_clause_width s.max_clause_width s.final_chain_length
