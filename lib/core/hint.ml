(* Hinted one-pass forward checking (trace format version 2).

   The trace's resolve-source lists already carry the resolution order,
   so the only information breadth-first checking buys with its counting
   pass is each clause's last use.  A hinted trace supplies exactly that
   as [Event.Delete] records, letting this checker run a single forward
   pass: every learned clause is rebuilt and defined the moment its
   record arrives, and freed the moment a hint says its uses are
   drained.  Peak residency follows the hint schedule (the refcount-zero
   schedule when hints come from [rescheck hint]) at one trace read.

   Hints are advice about memory, never about validity: a wrong hint can
   only make the checker fail (clause referenced after its delete hint)
   or retain clauses longer — it can never produce a wrong verdict.  On
   a version-1 trace (no hints) the pass still checks everything and
   simply never frees, so verdicts, cores and diagnostics match
   breadth-first on every trace both can read. *)

let check ?meter ?format ?io ?first_pass formula source =
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let kernel = Proof.Kernel.create ~meter formula in
  let l0 = Proof.Level0.create () in
  let stream =
    Proof.Kernel.stream_start kernel ~stream_order:true ~l0
      ~accept_hints:true ()
  in
  let context = "hinted one-pass reconstruction" in
  (* ids already freed by a hint, kept only to diagnose bad hints — the
     hot path never touches this table until something goes wrong *)
  let deleted = Hashtbl.create 256 in
  let src =
    match first_pass with
    | Some s -> s
    | None ->
      Trace.Source.of_cursor ~close_cursor:true
        (Trace.Reader.cursor ?format ?io source)
  in
  let bad_hint id reason =
    Diagnostics.fail
      (Diagnostics.Positioned
         {
           pos = Trace.Source.last_pos src;
           failure = Diagnostics.Bad_delete_hint { id; reason };
         })
  in
  (* Every clause lookup funnels through here so a reference to a clause
     a hint already freed is reported as the bad hint it is, not as a
     bare unknown id. *)
  let fetch id =
    match Proof.Kernel.peek kernel id with
    | Some h -> h
    | None ->
      if Hashtbl.mem deleted id then
        bad_hint id "is referenced after its delete hint"
      else Proof.Kernel.find kernel ~context id
  in
  let delete ids =
    Array.iter
      (fun id ->
        match Proof.Kernel.peek kernel id with
        | Some _ ->
          Hashtbl.replace deleted id ();
          Proof.Kernel.release_id kernel id
        | None ->
          if Hashtbl.mem deleted id then bad_hint id "is deleted twice"
          else if Proof.Kernel.is_original kernel id then
            bad_hint id "is an original clause that was never referenced"
          else bad_hint id "is not defined at this point in the trace")
      ids
  in
  try
    let (), pass_one_seconds =
      Harness.Timer.wall_time (fun () ->
          Obs.Span.scope ~cat:"hint" "check.one_pass" @@ fun () ->
          Fun.protect
            ~finally:(fun () -> Trace.Source.close src)
            (fun () ->
              let rec drain () =
                match Trace.Source.next src with
                | None -> ()
                | Some e ->
                  Proof.Kernel.stream_feed stream e;
                  (match e with
                   | Trace.Event.Header _ | Trace.Event.Level0 _
                   | Trace.Event.Final_conflict _ -> ()
                   | Trace.Event.Learned l ->
                     let h =
                       Proof.Kernel.chain_ids kernel ~context ~fetch
                         ~learned_id:l.id l.sources
                     in
                     Proof.Kernel.define kernel l.id h
                   | Trace.Event.Delete ids -> delete ids);
                  drain ()
              in
              drain ()))
    in
    let pass = Proof.Kernel.stream_finish stream in
    let conf_id =
      match pass.Proof.Kernel.final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    let (_ : int) =
      Proof.Kernel.final_chain_ids kernel ~l0 ~fetch ~conflict_id:conf_id
    in
    let c = Proof.Kernel.counters kernel in
    Ok
      {
        Report.clauses_built = c.Proof.Kernel.clauses_built;
        total_learned = pass.Proof.Kernel.total_learned;
        resolution_steps = c.Proof.Kernel.resolution_steps;
        core_original_ids = [];
        learned_built_ids = Proof.Kernel.built_ids kernel;
        core_vars = 0;
        peak_mem_words = Harness.Meter.peak_words meter;
        peak_live_clauses = c.Proof.Kernel.peak_live_clauses;
        arena_bytes_resident = c.Proof.Kernel.arena_peak_bytes;
        jobs = 1;
        wavefronts = 0;
        max_wavefront_width = 0;
        pass_one_seconds;
        pass_two_seconds = 0.;
      }
  with
  | Diagnostics.Check_failed f -> Error f
  | Trace.Reader.Parse_error { pos; msg } ->
    Error (Diagnostics.of_parse_error ~pos msg)
