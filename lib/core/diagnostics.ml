(* Re-exported from the shared proof kernel so existing
   [Checker.Diagnostics] users (and the [Check_failed] exception itself)
   keep working unchanged. *)
include Proof.Diagnostics
