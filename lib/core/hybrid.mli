(** Hybrid checker — the paper's §5 future work, implemented: "a checker
    that has the advantage of both the depth-first and breadth-first
    approaches without suffering from their respective shortcomings".

    Three phases over two streaming passes:

    + pass one streams the trace keeping only the resolve-source ID lists
      (no literals) and the level-0/final-conflict records;
    + a reverse sweep over those lists marks exactly the clauses reachable
      from the final conflict — the same "needed" set the depth-first
      checker discovers — and counts each needed clause's uses; the source
      lists are then released;
    + pass two re-streams the trace and rebuilds {e only the needed}
      clauses in stream order, releasing each the moment its use count
      drains, exactly like the breadth-first checker.

    Compared to Table 2's two columns: it constructs the depth-first
    checker's Built% (not 100%), yet its peak residency is the source-ID
    lists plus the small live window — far below depth-first's
    trace-plus-every-built-clause, and it degrades gracefully where
    depth-first runs out of memory.  The reverse sweep is the in-memory
    stand-in for the external-memory graph traversal the paper cites
    ([18]); like the breadth-first checker's use counts, the
    needed/use-count tables are conceptually on disk and are not charged
    to the meter. *)

(** [check ?first_pass f source] — pass one pulls from [first_pass] when
    given (closed once drained), pass two always re-reads [source]; a
    piped pass one therefore needs [source] to be a spooled copy.
    [io] selects the
    file backing for every cursor the check opens (default [`Auto]:
    mmap regular files, falling back to the buffered channel). *)
val check :
  ?meter:Harness.Meter.t ->
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?first_pass:Trace.Source.t ->
  Sat.Cnf.t ->
  Trace.Reader.source ->
  (Report.t, Diagnostics.failure) result
