(* Re-exported from the shared proof kernel. *)
include Proof.Level0
