(** Window-shifting breadth-first checking.

    Breadth-first's counting pass followed by a windowed reconstruction
    pass: learned records are processed in windows of a configured size,
    and when a window fills every clause still alive is evicted from
    the arena — learned clauses spill byte-for-byte through a frozen
    arena view ({!Proof.Clause_db.freeze}) into a temp file, originals
    simply drop (the formula backs them).  Later references reload the
    clause transiently for the one chain that needs it, so the arena
    never holds more than the window size in learned clauses plus one
    chain's operands.

    The schedule is invisible to the checker proper: verdicts, cores
    (empty), built sets, resolution step counts and diagnostics are
    identical to {!Bf.check} on every trace.  Deletion-hinted traces
    (format version 2) are refused like every non-hinted strategy. *)

(** Per-run scheduler counters, also exported as the
    [window.resident_clauses] / [window.spilled_clauses] gauges. *)
type stats = {
  windows : int;      (** boundaries crossed *)
  spilled : int;      (** learned clauses written to the spill file *)
  reloaded : int;     (** transient reloads from the spill file *)
  max_resident : int; (** high-water arena-resident learned clauses —
                          never exceeds the configured window size *)
}

(** [check ~window formula source] checks the trace with window-shifted
    reconstruction; [on_stats] receives the scheduler counters just
    before the verdict is returned (on failures too).
    @raise Invalid_argument when [window < 1]; pass [max_int] for an
    unbounded window (plain breadth-first scheduling). *)
val check :
  ?meter:Harness.Meter.t ->
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?first_pass:Trace.Source.t ->
  ?on_stats:(stats -> unit) ->
  window:int ->
  Sat.Cnf.t ->
  Trace.Reader.source ->
  (Report.t, Diagnostics.failure) result
