(** Hinted one-pass forward checking (trace format version 2).

    Breadth-first checking ({!Bf}) reads the trace twice because it must
    learn each clause's last use before it can free eagerly.  A hinted
    trace carries that information inline as [Event.Delete] records
    (written by [rescheck hint] or emitted natively by the solver), so
    this checker validates and rebuilds the whole proof in one forward
    pass, defining each learned clause at its record and releasing
    clauses exactly where the hints say their uses are drained.

    Hints are memory advice, never validity input: a wrong, permuted or
    dangling hint makes the check fail with a positioned
    {!Diagnostics.Bad_delete_hint}, and can never change a verdict.  A
    version-1 trace (no hints) is accepted too — the pass simply never
    frees — so verdicts, cores and diagnostics agree with breadth-first
    on every trace both can read. *)

(** [check formula source] validates the trace in a single forward pass.
    With [first_pass] the events are drained from that source instead of
    decoding [source] — the whole check rides an already-open tee'd
    parse, and [source] is never read.  The report matches {!Bf.check}
    field for field (every learned clause built, empty core); the whole
    pass is charged to [pass_one_seconds].
    @raise nothing — failures are returned, parse errors included. *)
val check :
  ?meter:Harness.Meter.t ->
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?first_pass:Trace.Source.t ->
  Sat.Cnf.t ->
  Trace.Reader.source ->
  (Report.t, Diagnostics.failure) result
