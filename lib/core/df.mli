(** Depth-first checker (paper §3.2, Figure 3).

    The whole trace is read into memory, then clause literals are built on
    demand by recursing through the resolve-source DAG starting from the
    final conflicting clause — so only the clauses actually involved in
    the proof are ever constructed (Table 2's Built% column), and those
    constructed original clauses form an unsatisfiable core of the input
    (§4, Table 3).

    Pros/cons exactly as the paper measures them: fastest, but peak memory
    is the full trace plus every built clause, so huge proofs exhaust
    memory (simulate with {!Harness.Meter}'s limit to reproduce the
    paper's starred rows). *)

(** [check ?meter f trace] validates that [trace] is a resolution proof of
    the unsatisfiability of [f].  [meter] accounts simulated memory (trace
    residency + built clauses); allocation beyond its limit raises
    {!Harness.Meter.Out_of_memory_simulated}, mirroring the paper's
    memory-out entries.  Depth-first reads the trace once: with
    [first_pass] (a single-shot stream, closed when drained) the
    re-readable source is never touched.  [io] selects the
    file backing for every cursor the check opens (default [`Auto]:
    mmap regular files, falling back to the buffered channel). *)
val check :
  ?meter:Harness.Meter.t ->
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?first_pass:Trace.Source.t ->
  Sat.Cnf.t ->
  Trace.Reader.source ->
  (Report.t, Diagnostics.failure) result
