(** Result of a successful check, carrying the statistics the paper's
    Table 2 reports per checker, plus the unsatisfiable-core by-product of
    the depth-first traversal (§3.2, §4). *)

type t = {
  clauses_built : int;
      (** learned clauses whose literals were actually constructed —
          Table 2's "Num. Cls Built" *)
  total_learned : int;
      (** learned clauses recorded in the trace *)
  resolution_steps : int;
      (** checked resolution operations performed *)
  core_original_ids : int list;
      (** original clause IDs (1-based) involved in the proof; exact for
          the depth-first checker, and the empty list for breadth-first,
          which does not track the core (the paper presents the core as a
          DF by-product) *)
  learned_built_ids : int list;
      (** IDs of the learned clauses the checker constructed — for the
          depth-first checker this is exactly the proof-relevant set,
          which {!Trim} persists as a trimmed trace *)
  core_vars : int;
      (** distinct variables among the core clauses *)
  peak_mem_words : int;
      (** simulated peak memory, from {!Harness.Meter} *)
  peak_live_clauses : int;
      (** most clauses simultaneously live in the shared clause store *)
  arena_bytes_resident : int;
      (** peak clause-store arena residency, in bytes *)
  jobs : int;
      (** worker domains that replayed resolutions — 1 for the
          sequential checkers *)
  wavefronts : int;
      (** topological levels the parallel schedule replayed; 0 for the
          sequential checkers *)
  max_wavefront_width : int;
      (** learned clauses in the widest wavefront — an upper bound on
          exploitable parallelism; 0 for the sequential checkers *)
  pass_one_seconds : float;
      (** wall-clock seconds spent in pass one (counting / loading) *)
  pass_two_seconds : float;
      (** wall-clock seconds spent in pass two (reconstruction and the
          empty-clause chain) *)
}

(** [built_ratio r] is Table 2's "Built%" — constructed learned clauses
    over total learned clauses ([1.0] when nothing was learned). *)
val built_ratio : t -> float

(** [pp] prints every reproducible statistic; elapsed seconds are
    deliberately omitted so checker output can be diffed across runs. *)
val pp : Format.formatter -> t -> unit

(** [to_json r] renders the same reproducible statistics (no elapsed
    seconds) as one deterministic JSON object with a stable field order —
    the payload behind [rescheck check --json]. *)
val to_json : t -> string

(** [observe r] publishes the report's scalar statistics as telemetry
    gauges ([checker.*] plus the [par.*] schedule shape) so the run
    profile carries them under the same schema for every checker.  No-op
    when telemetry is off. *)
val observe : t -> unit
