(** Parallel breadth-first checker: the §3.3 two-pass discipline with
    pass two scheduled as topological wavefronts across OCaml domains.

    Pass one is the sequential counting/validation pass, additionally
    labelling every learned clause with its level —
    [1 + max (level of sources)], originals at level 0 — so all chains in
    one wavefront are mutually independent.  Pass two dispatches each
    wavefront's resolution chains to a fixed pool of worker domains
    (stdlib [Domain]/[Mutex]/[Condition], chunked work queue); workers
    replay chains through {!Proof.Kernel.resolve_arrays} into per-domain
    scratch while the shared clause store is read-only.  At each
    wavefront barrier the main thread alone commits results in stream
    order — allocation, use-count definition/release and counter updates
    all stay single-threaded and deterministic.

    Verdicts, unsat cores (empty, as for BF) and failure diagnostics are
    bit-identical to {!Bf.check} at every job count: a failing run
    reports the minimum-stream-index failure, which is exactly the first
    failure sequential BF stops at.

    Wavefronts are levelled {e within stream windows} of [window] learned
    clauses rather than globally: global levelling would build level-1
    clauses from the whole trace before releasing anything, inflating the
    live window several-fold, while window-local levelling pins the live
    set to sequential BF's at every window boundary.  Peak live clauses
    therefore stay within one window's delayed releases of BF's.

    Memory is that BF-like live window plus the resolve-source lists,
    which — unlike BF, which re-reads them from the trace — must be held
    (and are charged to the meter) until their wavefront commits. *)

(** [check ?meter ?jobs ?window formula source] checks the trace with
    [jobs] worker domains ([jobs = 1], the default, replays inline on the
    calling domain — same code path, no domains spawned).  [window]
    (default 128, clamped to at least 1) trades live-window size for
    exposed parallelism; results are identical for every value.  Pass one
    is the only trace read (tasks stay in memory), so with [first_pass]
    (closed once drained) the re-readable source is never touched.
    [io] selects the
    file backing for every cursor the check opens (default [`Auto]:
    mmap regular files, falling back to the buffered channel).
    @raise Invalid_argument when [jobs < 1]. *)
val check :
  ?meter:Harness.Meter.t ->
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?jobs:int ->
  ?window:int ->
  ?first_pass:Trace.Source.t ->
  Sat.Cnf.t ->
  Trace.Reader.source ->
  (Report.t, Diagnostics.failure) result
