type trimmed = {
  events : Trace.Event.t list;
  kept_learned : int;
  dropped_learned : int;
}

let trim f source =
  match Df.check f source with
  | Error d -> Error d
  | Ok report ->
    let events = Trace.Reader.to_list source in
    (* the depth-first checker reports exactly the learned clauses the
       proof constructs — keep those and nothing else *)
    let needed = Hashtbl.create 1024 in
    List.iter
      (fun id -> Hashtbl.replace needed id ())
      report.Report.learned_built_ids;
    let kept = ref 0 in
    let dropped = ref 0 in
    let trimmed =
      List.filter
        (fun e ->
          match e with
          | Trace.Event.Learned l ->
            if Hashtbl.mem needed l.id then begin
              incr kept;
              true
            end
            else begin
              incr dropped;
              false
            end
          | Trace.Event.Header _ | Trace.Event.Level0 _
          | Trace.Event.Final_conflict _ | Trace.Event.Delete _ -> true)
        events
    in
    Ok { events = trimmed; kept_learned = !kept; dropped_learned = !dropped }

let write w r = List.iter (Trace.Writer.emit w) r.events
