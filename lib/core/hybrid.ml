(* The paper's §5 future-work checker on the shared kernel: pass one keeps
   only the resolve-source ID lists (charged to the meter, like DF's trace
   residency but literal-free), a reverse sweep computes the exact needed
   set and per-clause use counts, the lists are released, and pass two
   rebuilds only the needed clauses BF-style with use-count freeing. *)

type state = {
  kernel : Proof.Kernel.t;
  needed : (int, unit) Hashtbl.t;   (* reachable from the conflict *)
  use_count : (int, int) Hashtbl.t; (* uses among needed clauses *)
}

let add_need st id =
  Hashtbl.replace st.needed id ();
  Hashtbl.replace st.use_count id
    (1 + Option.value ~default:0 (Hashtbl.find_opt st.use_count id))

(* Reverse sweep: because stream order forbids forward references, one
   backward pass over the definitions computes the exact reachable set
   from the final conflict and per-clause use counts. *)
let mark_needed st ~defs ~antes conf_id =
  add_need st conf_id;
  (* every recorded antecedent may be used by the empty-clause chain *)
  Sat.Vec.iter (fun ante -> add_need st ante) antes;
  for i = Sat.Vec.length defs - 1 downto 0 do
    let id, sources = Sat.Vec.get defs i in
    if Hashtbl.mem st.needed id then Array.iter (fun s -> add_need st s) sources
  done

let release_one_use st id =
  match Hashtbl.find_opt st.use_count id with
  | None -> ()
  | Some n when n <= 1 ->
    Hashtbl.remove st.use_count id;
    Proof.Kernel.release_id st.kernel id
  | Some n -> Hashtbl.replace st.use_count id (n - 1)

(* Pass two: rebuild only the needed clauses, in stream order. *)
let build_pass st cur =
  let k = st.kernel in
  let context = "hybrid reconstruction" in
  let fetch id = Proof.Kernel.find k ~context id in
  Trace.Reader.rewind cur;
  Trace.Reader.iter_cursor cur (fun e ->
      match e with
      | Trace.Event.Learned l when Hashtbl.mem st.needed l.id ->
        let h =
          Proof.Kernel.chain_ids k ~context ~fetch ~learned_id:l.id l.sources
        in
        Proof.Kernel.define k l.id h;
        Array.iter (fun s -> release_one_use st s) l.sources
      | Trace.Event.Learned _ | Trace.Event.Header _ | Trace.Event.Level0 _
      | Trace.Event.Final_conflict _ | Trace.Event.Delete _ -> ())

let check ?meter ?format ?io ?first_pass formula source =
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let kernel = Proof.Kernel.create ~meter formula in
  let st = {
    kernel;
    needed = Hashtbl.create 1024;
    use_count = Hashtbl.create 1024;
  } in
  try
    (* pass one: collect source lists (charged: this is the part of the
       trace the hybrid must hold, like DF) and validate record shape and
       stream order, like BF *)
    let src =
      match first_pass with
      | Some s -> s
      | None ->
        Trace.Source.of_cursor ~close_cursor:true
          (Trace.Reader.cursor ?format ?io source)
    in
    let l0 = Proof.Level0.create () in
    let defs = Sat.Vec.create ~dummy:(0, [||]) in
    let antes = Sat.Vec.create ~dummy:0 in
    let pass, pass_one_seconds =
      Harness.Timer.wall_time (fun () ->
          Obs.Span.scope ~cat:"hybrid" "check.pass_one" @@ fun () ->
          Fun.protect
            ~finally:(fun () -> Trace.Source.close src)
            (fun () ->
              Proof.Kernel.stream_pass kernel ~stream_order:true ~l0
                ~charge:`Defs
                ~on_event:(fun e ->
                  match e with
                  | Trace.Event.Learned l -> Sat.Vec.push defs (l.id, l.sources)
                  | Trace.Event.Level0 v -> Sat.Vec.push antes v.ante
                  | Trace.Event.Header _ | Trace.Event.Final_conflict _
                  | Trace.Event.Delete _ -> ())
                src))
    in
    let conf_id =
      match pass.Proof.Kernel.final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    mark_needed st ~defs ~antes conf_id;
    (* release the source lists: pass two re-reads them from the stream *)
    let defs_words =
      Sat.Vec.fold (fun acc (_, s) -> acc + 2 + Array.length s) 0 defs
    in
    Sat.Vec.clear defs;
    Harness.Meter.free meter defs_words;
    let (), pass_two_seconds =
      Harness.Timer.wall_time (fun () ->
          Obs.Span.scope ~cat:"hybrid" "check.pass_two" @@ fun () ->
          let cur = Trace.Reader.cursor ?format ?io source in
          build_pass st cur;
          Trace.Reader.close cur;
          let fetch id =
            Proof.Kernel.find kernel ~context:"empty-clause construction" id
          in
          let (_ : int) =
            Proof.Kernel.final_chain_ids kernel ~l0 ~fetch ~conflict_id:conf_id
          in
          ())
    in
    let c = Proof.Kernel.counters kernel in
    Ok {
      Report.clauses_built = c.Proof.Kernel.clauses_built;
      total_learned = pass.Proof.Kernel.total_learned;
      resolution_steps = c.Proof.Kernel.resolution_steps;
      core_original_ids = Proof.Kernel.core_ids kernel;
      learned_built_ids = Proof.Kernel.built_ids kernel;
      core_vars = Proof.Kernel.core_var_count kernel;
      peak_mem_words = Harness.Meter.peak_words meter;
      peak_live_clauses = c.Proof.Kernel.peak_live_clauses;
      arena_bytes_resident = c.Proof.Kernel.arena_peak_bytes;
      jobs = 1;
      wavefronts = 0;
      max_wavefront_width = 0;
      pass_one_seconds;
      pass_two_seconds;
    }
  with
  | Diagnostics.Check_failed f -> Error f
  | Trace.Reader.Parse_error { pos; msg } ->
    Error (Diagnostics.of_parse_error ~pos msg)
