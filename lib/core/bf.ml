type counting = [ `In_memory | `Temp_file of int (* chunk size *) ]

(* The use counts are the paper's "temporary file".  In-memory mode keeps
   one hash table; temp-file mode writes totals to a real file on disk in
   chunked counting passes and caches counters in memory only for clauses
   currently alive. *)
type counts =
  | Mem_counts of (int, int) Hashtbl.t
  | File_counts of { ic : in_channel; live : (int, int) Hashtbl.t }

type state = {
  kernel : Proof.Kernel.t;
  mutable counts : counts;
}

let read_count_from_file ic id =
  seek_in ic (4 * id);
  let b0 = input_byte ic in
  let b1 = input_byte ic in
  let b2 = input_byte ic in
  let b3 = input_byte ic in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let get_count st id =
  match st.counts with
  | Mem_counts tbl -> Option.value ~default:0 (Hashtbl.find_opt tbl id)
  | File_counts { ic; live } -> (
    match Hashtbl.find_opt live id with
    | Some n -> n
    | None -> ( try read_count_from_file ic id with End_of_file -> 0))

let set_count st id n =
  match st.counts with
  | Mem_counts tbl -> if n <= 0 then Hashtbl.remove tbl id else Hashtbl.replace tbl id n
  | File_counts { live; _ } ->
    if n <= 0 then Hashtbl.remove live id else Hashtbl.replace live id n

let add_use st id = set_count st id (1 + get_count st id)

(* Temp-file counting: stream the trace once per chunk of the ID space,
   accumulate that chunk's use counts in a bounded slab, and append the
   slab to the file — the paper's multi-pass variant of pass one. *)
let iter_use_ids cur f =
  Trace.Reader.rewind cur;
  Trace.Reader.iter_cursor cur (fun e ->
      match e with
      | Trace.Event.Header _ -> ()
      | Trace.Event.Learned l -> Array.iter f l.sources
      | Trace.Event.Level0 v -> f v.ante
      | Trace.Event.Final_conflict id -> f id
      | Trace.Event.Delete _ -> ())

let write_counts_file cur ~chunk =
  let chunk = max 1 chunk in
  let max_id = ref 0 in
  iter_use_ids cur (fun id -> if id > !max_id then max_id := id);
  let path = Filename.temp_file "bf_counts" ".bin" in
  let oc = open_out_bin path in
  let slab = Array.make chunk 0 in
  let lo = ref 0 in
  while !lo <= !max_id do
    Array.fill slab 0 chunk 0;
    let hi = !lo + chunk in
    iter_use_ids cur (fun id ->
        if id >= !lo && id < hi then slab.(id - !lo) <- slab.(id - !lo) + 1);
    for i = 0 to chunk - 1 do
      let n = slab.(i) in
      output_byte oc (n land 0xff);
      output_byte oc ((n lsr 8) land 0xff);
      output_byte oc ((n lsr 16) land 0xff);
      output_byte oc ((n lsr 24) land 0xff)
    done;
    lo := hi
  done;
  close_out oc;
  path

let release_one_use st id =
  match get_count st id with
  | 0 -> ()
  | n when n <= 1 ->
    set_count st id 0;
    Proof.Kernel.release_id st.kernel id
  | n -> set_count st id (n - 1)

(* Pass two: rebuild each learned clause in stream order — all sources are
   guaranteed to be already constructed (pass one enforced stream order) —
   and release a clause the moment its use count drains.  Breadth-first
   builds every learned clause (the 100% Built column); ones with no
   recorded use are validated but not stored. *)
let build_pass st cur =
  let k = st.kernel in
  let context = "breadth-first reconstruction" in
  let fetch id = Proof.Kernel.find k ~context id in
  Trace.Reader.rewind cur;
  Trace.Reader.iter_cursor cur (fun e ->
      match e with
      | Trace.Event.Header _ -> ()
      | Trace.Event.Learned l ->
        let h = Proof.Kernel.chain_ids k ~context ~fetch ~learned_id:l.id l.sources in
        if get_count st l.id > 0 then begin
          Proof.Kernel.define k l.id h;
          (* temp-file mode: cache the counter while the clause is alive *)
          set_count st l.id (get_count st l.id)
        end
        else Proof.Clause_db.release (Proof.Kernel.db k) h;
        Array.iter (fun s -> release_one_use st s) l.sources
      | Trace.Event.Level0 _ -> ()
      | Trace.Event.Final_conflict _ -> ()
      | Trace.Event.Delete _ -> ())

(* Incremental pass-one ingest: the same counting/validation state, but
   fed one event at a time so it can sit behind a {!Trace.Sink.t} and
   consume the solver's live event stream (online validation) as well as
   a decoded file.  A violation is recorded, not raised — the solver
   cannot be interrupted mid-push — and every later event is ignored, so
   the first failure reported is exactly the one file-based BF stops
   at. *)
type ingest = {
  ist : state;
  stream : Proof.Kernel.stream;
  l0 : Proof.Level0.t;
  meter : Harness.Meter.t;
  count_in_memory : bool;
  mutable failed : Diagnostics.failure option;
}

let make_ingest ?meter ~count_in_memory formula =
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let kernel = Proof.Kernel.create ~meter formula in
  let l0 = Proof.Level0.create () in
  let stream = Proof.Kernel.stream_start kernel ~stream_order:true ~l0 () in
  {
    ist = { kernel; counts = Mem_counts (Hashtbl.create 4096) };
    stream;
    l0;
    meter;
    count_in_memory;
    failed = None;
  }

let ingest ?meter formula = make_ingest ?meter ~count_in_memory:true formula

let ingest_failed g = g.failed

let ingest_event g e =
  if g.failed = None then
    try
      Proof.Kernel.stream_feed g.stream e;
      if g.count_in_memory then
        match e with
        | Trace.Event.Header _ -> ()
        | Trace.Event.Learned l -> Array.iter (add_use g.ist) l.sources
        | Trace.Event.Level0 v -> add_use g.ist v.ante
        | Trace.Event.Final_conflict id -> add_use g.ist id
        (* unreachable: stream_feed refuses hints first *)
        | Trace.Event.Delete _ -> ()
    with Diagnostics.Check_failed f -> g.failed <- Some f

let ingest_sink g = Trace.Sink.make (ingest_event g)

let finish ?format ?io ?(pass_one_seconds = 0.) g source =
  try
    match g.failed with
    | Some f -> Error f
    | None ->
      let pass = Proof.Kernel.stream_finish g.stream in
      let conf_id =
        match pass.Proof.Kernel.final_conflict with
        | Some id -> id
        | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
      in
      let kernel = g.ist.kernel in
      let (), pass_two_seconds =
        Harness.Timer.wall_time (fun () ->
            Obs.Span.scope ~cat:"bf" "check.pass_two" @@ fun () ->
            let cur = Trace.Reader.cursor ?format ?io source in
            build_pass g.ist cur;
            Trace.Reader.close cur;
            let fetch id =
              Proof.Kernel.find kernel ~context:"empty-clause construction" id
            in
            let (_ : int) =
              Proof.Kernel.final_chain_ids kernel ~l0:g.l0 ~fetch
                ~conflict_id:conf_id
            in
            ())
      in
      let c = Proof.Kernel.counters kernel in
      Ok {
        Report.clauses_built = c.Proof.Kernel.clauses_built;
        total_learned = pass.Proof.Kernel.total_learned;
        resolution_steps = c.Proof.Kernel.resolution_steps;
        core_original_ids = [];
        learned_built_ids = Proof.Kernel.built_ids kernel;
        core_vars = 0;
        peak_mem_words = Harness.Meter.peak_words g.meter;
        peak_live_clauses = c.Proof.Kernel.peak_live_clauses;
        arena_bytes_resident = c.Proof.Kernel.arena_peak_bytes;
        jobs = 1;
        wavefronts = 0;
        max_wavefront_width = 0;
        pass_one_seconds;
        pass_two_seconds;
      }
  with
  | Diagnostics.Check_failed f -> Error f
  | Trace.Reader.Parse_error { pos; msg } ->
    Error (Diagnostics.of_parse_error ~pos msg)

let check ?meter ?format ?io ?(counting = `In_memory) ?first_pass formula
    source =
  let count_in_memory =
    match counting with `In_memory -> true | `Temp_file _ -> false
  in
  let g = make_ingest ?meter ~count_in_memory formula in
  let temp = ref None in
  let cleanup () =
    match !temp with
    | Some (path, ic) ->
      close_in_noerr ic;
      (try Sys.remove path with Sys_error _ -> ())
    | None -> ()
  in
  try
    (* pass one: validate record shape / stream order and count uses;
       ingest records the first violation, so draining stops there *)
    let src =
      match first_pass with
      | Some s -> s
      | None ->
        Trace.Source.of_cursor ~close_cursor:true
          (Trace.Reader.cursor ?format ?io source)
    in
    let (), pass_one_seconds =
      Harness.Timer.wall_time (fun () ->
          Obs.Span.scope ~cat:"bf" "check.pass_one" @@ fun () ->
          Fun.protect
            ~finally:(fun () -> Trace.Source.close src)
            (fun () ->
              let rec drain () =
                if g.failed = None then
                  match Trace.Source.next src with
                  | Some e ->
                    ingest_event g e;
                    drain ()
                  | None -> ()
              in
              drain ()))
    in
    (match counting with
     | `In_memory -> ()
     | `Temp_file chunk ->
       (* the paper's chunked counting passes re-read the trace from its
          re-readable source; only now is a spooled stream complete *)
       let cur = Trace.Reader.cursor ?format ?io source in
       let path = write_counts_file cur ~chunk in
       Trace.Reader.close cur;
       let ic = open_in_bin path in
       temp := Some (path, ic);
       g.ist.counts <- File_counts { ic; live = Hashtbl.create 256 });
    let r = finish ?format ?io ~pass_one_seconds g source in
    cleanup ();
    r
  with
  | Diagnostics.Check_failed f ->
    cleanup ();
    Error f
  | Trace.Reader.Parse_error { pos; msg } ->
    cleanup ();
    Error (Diagnostics.of_parse_error ~pos msg)
