type counting = [ `In_memory | `Temp_file of int (* chunk size *) ]

(* The use counts are the paper's "temporary file".  In-memory mode keeps
   one hash table; temp-file mode writes totals to a real file on disk in
   chunked counting passes and caches counters in memory only for clauses
   currently alive. *)
type counts =
  | Mem_counts of (int, int) Hashtbl.t
  | File_counts of { ic : in_channel; live : (int, int) Hashtbl.t }

type state = {
  kernel : Proof.Kernel.t;
  mutable counts : counts;
}

let read_count_from_file ic id =
  seek_in ic (4 * id);
  let b0 = input_byte ic in
  let b1 = input_byte ic in
  let b2 = input_byte ic in
  let b3 = input_byte ic in
  b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)

let get_count st id =
  match st.counts with
  | Mem_counts tbl -> Option.value ~default:0 (Hashtbl.find_opt tbl id)
  | File_counts { ic; live } -> (
    match Hashtbl.find_opt live id with
    | Some n -> n
    | None -> ( try read_count_from_file ic id with End_of_file -> 0))

let set_count st id n =
  match st.counts with
  | Mem_counts tbl -> if n <= 0 then Hashtbl.remove tbl id else Hashtbl.replace tbl id n
  | File_counts { live; _ } ->
    if n <= 0 then Hashtbl.remove live id else Hashtbl.replace live id n

let add_use st id = set_count st id (1 + get_count st id)

(* Temp-file counting: stream the trace once per chunk of the ID space,
   accumulate that chunk's use counts in a bounded slab, and append the
   slab to the file — the paper's multi-pass variant of pass one. *)
let iter_use_ids cur f =
  Trace.Reader.rewind cur;
  Trace.Reader.iter_cursor cur (fun e ->
      match e with
      | Trace.Event.Header _ -> ()
      | Trace.Event.Learned l -> Array.iter f l.sources
      | Trace.Event.Level0 v -> f v.ante
      | Trace.Event.Final_conflict id -> f id)

let write_counts_file cur ~chunk =
  let chunk = max 1 chunk in
  let max_id = ref 0 in
  iter_use_ids cur (fun id -> if id > !max_id then max_id := id);
  let path = Filename.temp_file "bf_counts" ".bin" in
  let oc = open_out_bin path in
  let slab = Array.make chunk 0 in
  let lo = ref 0 in
  while !lo <= !max_id do
    Array.fill slab 0 chunk 0;
    let hi = !lo + chunk in
    iter_use_ids cur (fun id ->
        if id >= !lo && id < hi then slab.(id - !lo) <- slab.(id - !lo) + 1);
    for i = 0 to chunk - 1 do
      let n = slab.(i) in
      output_byte oc (n land 0xff);
      output_byte oc ((n lsr 8) land 0xff);
      output_byte oc ((n lsr 16) land 0xff);
      output_byte oc ((n lsr 24) land 0xff)
    done;
    lo := hi
  done;
  close_out oc;
  path

let release_one_use st id =
  match get_count st id with
  | 0 -> ()
  | n when n <= 1 ->
    set_count st id 0;
    Proof.Kernel.release_id st.kernel id
  | n -> set_count st id (n - 1)

(* Pass two: rebuild each learned clause in stream order — all sources are
   guaranteed to be already constructed (pass one enforced stream order) —
   and release a clause the moment its use count drains.  Breadth-first
   builds every learned clause (the 100% Built column); ones with no
   recorded use are validated but not stored. *)
let build_pass st cur =
  let k = st.kernel in
  let context = "breadth-first reconstruction" in
  let fetch id = Proof.Kernel.find k ~context id in
  Trace.Reader.rewind cur;
  Trace.Reader.iter_cursor cur (fun e ->
      match e with
      | Trace.Event.Header _ -> ()
      | Trace.Event.Learned l ->
        let h = Proof.Kernel.chain_ids k ~context ~fetch ~learned_id:l.id l.sources in
        if get_count st l.id > 0 then begin
          Proof.Kernel.define k l.id h;
          (* temp-file mode: cache the counter while the clause is alive *)
          set_count st l.id (get_count st l.id)
        end
        else Proof.Clause_db.release (Proof.Kernel.db k) h;
        Array.iter (fun s -> release_one_use st s) l.sources
      | Trace.Event.Level0 _ -> ()
      | Trace.Event.Final_conflict _ -> ())

let check ?meter ?(counting = `In_memory) formula source =
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let kernel = Proof.Kernel.create ~meter formula in
  let cur = Trace.Reader.cursor source in
  let counts, temp_path =
    match counting with
    | `In_memory -> (Mem_counts (Hashtbl.create 4096), None)
    | `Temp_file chunk ->
      let path = write_counts_file cur ~chunk in
      let ic = open_in_bin path in
      (File_counts { ic; live = Hashtbl.create 256 }, Some (path, ic))
  in
  let st = { kernel; counts } in
  let cleanup () =
    match temp_path with
    | Some (path, ic) ->
      close_in_noerr ic;
      (try Sys.remove path with Sys_error _ -> ())
    | None -> ()
  in
  let count_in_memory =
    match counting with `In_memory -> true | `Temp_file _ -> false
  in
  try
    (* pass one: validate record shape / stream order and count uses *)
    let l0 = Proof.Level0.create () in
    let pass, pass_one_seconds =
      Harness.Timer.wall_time (fun () ->
          Proof.Kernel.stream_pass kernel ~stream_order:true ~l0
            ~on_event:(fun e ->
              if count_in_memory then
                match e with
                | Trace.Event.Header _ -> ()
                | Trace.Event.Learned l -> Array.iter (add_use st) l.sources
                | Trace.Event.Level0 v -> add_use st v.ante
                | Trace.Event.Final_conflict id -> add_use st id)
            cur)
    in
    let conf_id =
      match pass.Proof.Kernel.final_conflict with
      | Some id -> id
      | None -> Diagnostics.fail Diagnostics.Missing_final_conflict
    in
    let (), pass_two_seconds =
      Harness.Timer.wall_time (fun () ->
          build_pass st cur;
          let fetch id =
            Proof.Kernel.find kernel ~context:"empty-clause construction" id
          in
          let (_ : int) =
            Proof.Kernel.final_chain_ids kernel ~l0 ~fetch ~conflict_id:conf_id
          in
          ())
    in
    let c = Proof.Kernel.counters kernel in
    Ok {
      Report.clauses_built = c.Proof.Kernel.clauses_built;
      total_learned = pass.Proof.Kernel.total_learned;
      resolution_steps = c.Proof.Kernel.resolution_steps;
      core_original_ids = [];
      learned_built_ids = Proof.Kernel.built_ids kernel;
      core_vars = 0;
      peak_mem_words = Harness.Meter.peak_words meter;
      peak_live_clauses = c.Proof.Kernel.peak_live_clauses;
      arena_bytes_resident = c.Proof.Kernel.arena_peak_bytes;
      jobs = 1;
      wavefronts = 0;
      max_wavefront_width = 0;
      pass_one_seconds;
      pass_two_seconds;
    }
    |> fun r ->
    cleanup ();
    r
  with
  | Diagnostics.Check_failed f ->
    cleanup ();
    Error f
  | Trace.Reader.Parse_error { pos; msg } ->
    cleanup ();
    Error (Diagnostics.of_parse_error ~pos msg)
