(** Breadth-first checker (paper §3.3).

    The trace is streamed twice.  Pass one counts, for every clause ID,
    how many times it is used as a resolve source (plus one use for each
    antecedent/final-conflict reference).  Pass two rebuilds each learned
    clause in trace order — all its sources are guaranteed to be already
    constructed — and releases a clause the moment its use count drains.

    This is the paper's memory guarantee: the checker never holds more
    clauses than the solver itself did while producing the trace, so if
    the solver finished, the checker cannot run out of memory.  The price
    is building 100% of the learned clauses (Table 2: slower, typically
    around 2x, but a small bounded footprint; it finishes the instances
    where depth-first dies).

    The use counts are the paper's temporary file.  [`In_memory] (the
    default) keeps them in a hash table, uncharged to the meter;
    [`Temp_file chunk] reproduces the paper's implementation literally — the
    counting pass is broken into chunks of [chunk] clause IDs, each
    chunk's counts are written to a real temporary file on disk, and
    during the resolution pass a clause's total count is read back from
    the file when the clause is constructed, so main memory holds
    counters only for clauses that are currently alive ("we may also
    need to break the first pass into several passes so that we can
    count the number of usages of the clauses in one range at a time"). *)

type counting = [ `In_memory | `Temp_file of int (* chunk size *) ]

(** [check ?first_pass f source] validates the trace.  Pass one pulls
    from [first_pass] when given (a single-shot stream — a tee of a live
    pipe, say) and from a fresh cursor over [source] otherwise; it is
    closed once drained.  Pass two (and temp-file counting) always
    re-reads [source], so when pass one came from a pipe, [source] must
    be a spooled copy of the same bytes.  [format] forces the encoding
    on every cursor the check opens (needed for magic-less binary
    traces, which auto-detection cannot classify); [io] selects the
    file backing for every cursor the check opens (default [`Auto]:
    mmap regular files, falling back to the buffered channel). *)
val check :
  ?meter:Harness.Meter.t ->
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?counting:counting ->
  ?first_pass:Trace.Source.t ->
  Sat.Cnf.t ->
  Trace.Reader.source ->
  (Report.t, Diagnostics.failure) result

(** {2 Incremental pass-one ingest}

    The counting/validation pass as a push-driven state machine: the
    online validator tees the solver's live event stream straight into it
    so pass one overlaps solving.  A violation is {e recorded}, not
    raised (the solver cannot be interrupted mid-push), and later events
    are ignored — so the failure {!finish} reports is exactly the one
    the file-based [check] stops at. *)

type ingest

val ingest : ?meter:Harness.Meter.t -> Sat.Cnf.t -> ingest
val ingest_event : ingest -> Trace.Event.t -> unit
val ingest_sink : ingest -> Trace.Sink.t

(** [ingest_failed g] is the first recorded violation, if any. *)
val ingest_failed : ingest -> Diagnostics.failure option

(** [finish g source] completes pass one (header/conflict presence) and
    runs the breadth-first reconstruction pass over [source], which must
    serialise exactly the events that were ingested.  [pass_one_seconds]
    is threaded into the report (the online validator's pass one is
    interleaved with solving and reports 0). *)
val finish :
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?pass_one_seconds:float ->
  ingest ->
  Trace.Reader.source ->
  (Report.t, Diagnostics.failure) result
