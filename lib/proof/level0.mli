(** The level-0 assignment recorded by the solver's third trace
    modification (§3.1): for every variable assigned at decision level 0,
    its value, its antecedent clause, and its chronological position.
    This is the data Proposition 3's empty-clause construction consumes:
    resolving in reverse chronological order guarantees no variable is
    chosen twice and the chain terminates within [n] steps. *)

type t

(** [create ()] is an empty record set. *)
val create : unit -> t

(** [add t ~var ~value ~ante] registers the next chronological record.
    @raise Diagnostics.Check_failed with [Level0_duplicate_var] if [var]
    was already recorded. *)
val add : t -> var:Sat.Lit.var -> value:bool -> ante:int -> unit

val count : t -> int
val mem : t -> Sat.Lit.var -> bool

(** [value t v] / [ante t v] / [order t v].
    @raise Diagnostics.Check_failed with [Level0_var_unrecorded] when [v]
    has no record. *)
val value : t -> Sat.Lit.var -> bool
val ante : t -> Sat.Lit.var -> int
val order : t -> Sat.Lit.var -> int

(** [lit_false t l] holds when [l] evaluates to false under the recorded
    values; unrecorded variables are not false. *)
val lit_false : t -> Sat.Lit.t -> bool

(** [check_antecedent t ~var built] verifies that clause [built] really was
    the unit clause that implied [var] (the paper's antecedent check):
    it must contain the literal of [var] with the recorded value, and
    every other literal must be over an earlier-recorded variable and be
    falsified.  Returns the reason string on failure. *)
val check_antecedent : t -> var:Sat.Lit.var -> Sat.Clause.t -> string option
