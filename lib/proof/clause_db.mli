(** Arena-backed clause store shared by every checker.

    Clauses live as packed, sorted, duplicate-free literal runs inside one
    growable [Bigarray] integer region and are addressed by integer
    handles, so the hot resolution path touches a single flat buffer
    instead of per-clause heap arrays.  Each clause carries a reference
    count; releasing the last reference returns its slot to a size-binned
    freelist for reuse.

    Every allocation is charged to the store's {!Harness.Meter} at the
    historical checker rate of [literals + 3] words per clause, so the
    simulated-memory experiments (Table 2's starred rows) keep their
    meaning, and the store additionally tracks live/peak clause counts and
    arena-resident words for {!Report}. *)

type t

(** A clause handle: the clause's offset in the arena.  Valid until the
    last reference is released. *)
type handle = int

(** Raised (debug mode only) when a clause-level accessor or {!retain}
    touches a handle whose last reference was already released. *)
exception Use_after_free of handle

(** Raised (debug mode only) when {!release} is called on a dead handle —
    the slot may already belong to the freelist or to a new clause. *)
exception Refcount_underflow of handle

(** [set_debug true] arms the lifetime guards above on every store.  Off
    by default: the checks cost one flag read per clause operation on the
    resolution hot path.  The test suite runs with them armed. *)
val set_debug : bool -> unit

val debug_enabled : unit -> bool

(** [create ?meter ?reserve ()] is an empty store.  Without [meter] a
    fresh unlimited meter is used.  [reserve] (words, default 8 Mi) sizes
    the arena's up-front virtual reservation: pages are only committed as
    the bump pointer reaches them, and if the reservation itself does not
    fit (tight [ulimit -v]) it halves until it does, after which the old
    doubling grower covers any overflow.  A store that stays within its
    reservation never relocates, which is what keeps {!freeze}d views
    stable between barriers. *)
val create : ?meter:Harness.Meter.t -> ?reserve:int -> unit -> t

val meter : t -> Harness.Meter.t

(** [reserved_words db] is the arena's current capacity in words (also
    exported as the [arena.reserved_bytes] gauge, at 8 bytes per word).
    Distinct from {!live_words}/{!peak_words}, which keep their
    historical meaning of clause-resident words — the reservation is
    address space, not clause payload, and is never double-counted. *)
val reserved_words : t -> int

(** [alloc db lits] stores [lits] sorted and duplicate-free, with an
    initial reference count of 1, and charges the meter.
    @raise Harness.Meter.Out_of_memory_simulated past the meter's limit. *)
val alloc : t -> Sat.Lit.t array -> handle

(** [alloc_sorted db buf n] stores the first [n] ints of [buf], which must
    already be sorted, duplicate-free packed literals (the resolution
    kernel's merge output). *)
val alloc_sorted : t -> int array -> int -> handle

(** [size db h] is the clause's literal count. *)
val size : t -> handle -> int

(** [lit db h i] is the [i]-th literal (packed order). *)
val lit : t -> handle -> int -> Sat.Lit.t

(** [lits db h] copies the clause out as a literal array. *)
val lits : t -> handle -> Sat.Lit.t array

val iter_lits : t -> handle -> (Sat.Lit.t -> unit) -> unit

(** [copy_lits db h dst] copies the clause's literals into
    [dst.(0 .. n-1)] and returns [n], without allocating — the parallel
    checker's workers use it to pull operands into domain-local scratch.
    Safe to call from several domains at once as long as no domain is
    allocating into or releasing from the store (the wavefront barrier
    discipline).
    @raise Invalid_argument when [dst] is too small. *)
val copy_lits : t -> handle -> int array -> int

(** [retain db h] adds a reference. *)
val retain : t -> handle -> unit

(** [release db h] drops a reference; at zero the clause's words are
    credited back to the meter and the slot is recycled. *)
val release : t -> handle -> unit

val refcount : t -> handle -> int

(** Counters threaded into {!Report}. *)

val live_clauses : t -> int
val peak_live_clauses : t -> int
val clauses_allocated : t -> int

(** [live_words db] / [peak_words db]: words currently / maximally
    resident in the arena (headers included, freelist slack excluded). *)
val live_words : t -> int
val peak_words : t -> int

(** {2 Frozen read-only views}

    A {!ro} view pins the arena region and its bump pointer at freeze
    time so worker domains can read shared clauses in place — no
    per-domain copies, no locks, no GC traffic.  The contract is the
    wavefront barrier discipline: workers only read handles that were
    live and published before {!freeze} was called, the coordinator only
    allocates into or releases from the store while no worker holds the
    view, and the view is re-frozen at every dispatch (a store that
    outgrows its reservation relocates, which invalidates older views). *)

type ro

(** [freeze db] is a constant-time snapshot view of the store. *)
val freeze : t -> ro

(** [ro_size ro h] is the clause's literal count.  In debug mode a handle
    past the frozen bump pointer raises {!Use_after_free}. *)
val ro_size : ro -> handle -> int

(** [ro_lit ro h i] is the [i]-th literal (packed order), read directly
    from the shared region. *)
val ro_lit : ro -> handle -> int -> Sat.Lit.t

(** [ro_copy_lits ro h dst] copies the clause's literals into
    [dst.(0 .. n-1)] and returns [n], without allocating.
    @raise Invalid_argument when [dst] is too small. *)
val ro_copy_lits : ro -> handle -> int array -> int
