(** Arena-backed clause store shared by every checker.

    Clauses live as packed, sorted, duplicate-free literal runs inside one
    growable [Bigarray] integer region and are addressed by integer
    handles, so the hot resolution path touches a single flat buffer
    instead of per-clause heap arrays.  Each clause carries a reference
    count; releasing the last reference returns its slot to a size-binned
    freelist for reuse.

    Every allocation is charged to the store's {!Harness.Meter} at the
    historical checker rate of [literals + 3] words per clause, so the
    simulated-memory experiments (Table 2's starred rows) keep their
    meaning, and the store additionally tracks live/peak clause counts and
    arena-resident words for {!Report}. *)

type t

(** A clause handle: the clause's offset in the arena.  Valid until the
    last reference is released. *)
type handle = int

(** Raised (debug mode only) when a clause-level accessor or {!retain}
    touches a handle whose last reference was already released. *)
exception Use_after_free of handle

(** Raised (debug mode only) when {!release} is called on a dead handle —
    the slot may already belong to the freelist or to a new clause. *)
exception Refcount_underflow of handle

(** [set_debug true] arms the lifetime guards above on every store.  Off
    by default: the checks cost one flag read per clause operation on the
    resolution hot path.  The test suite runs with them armed. *)
val set_debug : bool -> unit

val debug_enabled : unit -> bool

(** [create ?meter ()] is an empty store.  Without [meter] a fresh
    unlimited meter is used. *)
val create : ?meter:Harness.Meter.t -> unit -> t

val meter : t -> Harness.Meter.t

(** [alloc db lits] stores [lits] sorted and duplicate-free, with an
    initial reference count of 1, and charges the meter.
    @raise Harness.Meter.Out_of_memory_simulated past the meter's limit. *)
val alloc : t -> Sat.Lit.t array -> handle

(** [alloc_sorted db buf n] stores the first [n] ints of [buf], which must
    already be sorted, duplicate-free packed literals (the resolution
    kernel's merge output). *)
val alloc_sorted : t -> int array -> int -> handle

(** [size db h] is the clause's literal count. *)
val size : t -> handle -> int

(** [lit db h i] is the [i]-th literal (packed order). *)
val lit : t -> handle -> int -> Sat.Lit.t

(** [lits db h] copies the clause out as a literal array. *)
val lits : t -> handle -> Sat.Lit.t array

val iter_lits : t -> handle -> (Sat.Lit.t -> unit) -> unit

(** [copy_lits db h dst] copies the clause's literals into
    [dst.(0 .. n-1)] and returns [n], without allocating — the parallel
    checker's workers use it to pull operands into domain-local scratch.
    Safe to call from several domains at once as long as no domain is
    allocating into or releasing from the store (the wavefront barrier
    discipline).
    @raise Invalid_argument when [dst] is too small. *)
val copy_lits : t -> handle -> int array -> int

(** [retain db h] adds a reference. *)
val retain : t -> handle -> unit

(** [release db h] drops a reference; at zero the clause's words are
    credited back to the meter and the slot is recycled. *)
val release : t -> handle -> unit

val refcount : t -> handle -> int

(** Counters threaded into {!Report}. *)

val live_clauses : t -> int
val peak_live_clauses : t -> int
val clauses_allocated : t -> int

(** [live_words db] / [peak_words db]: words currently / maximally
    resident in the arena (headers included, freelist slack excluded). *)
val live_words : t -> int
val peak_words : t -> int
