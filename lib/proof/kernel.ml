type t = {
  db : Clause_db.t;
  meter : Harness.Meter.t;
  formula : Sat.Cnf.t;
  num_original : int;
  handles : (int, Clause_db.handle) Hashtbl.t;  (* one ref owned per entry *)
  core : (int, unit) Hashtbl.t;                 (* original ids materialised *)
  mutable built_ids : int list;                 (* learned ids chained *)
  mutable built_sorted : int list option;       (* memoised sorted built_ids *)
  mutable core_sorted : int list option;        (* memoised sorted core ids *)
  mutable built : int;
  mutable steps : int;
  mutable merges : int;
  mutable scratch : int array;                  (* merge output buffer *)
}

(* Telemetry handles, resolved once.  The kernel updates them at chain
   granularity (one learned clause), never per resolution step. *)
let m_chains = Obs.Metrics.counter Obs.Metrics.global "kernel.chains"
let m_steps = Obs.Metrics.counter Obs.Metrics.global "kernel.resolution_steps"
let m_live = Obs.Metrics.gauge Obs.Metrics.global "kernel.live_clauses"
let m_arena = Obs.Metrics.gauge Obs.Metrics.global "kernel.arena_bytes"
let m_chain_len =
  Obs.Metrics.histogram Obs.Metrics.global "kernel.chain_length"
let m_stream_events =
  Obs.Metrics.counter Obs.Metrics.global "kernel.stream_events"

let create ?meter formula =
  let db = Clause_db.create ?meter () in
  {
    db;
    meter = Clause_db.meter db;
    formula;
    num_original = Sat.Cnf.nclauses formula;
    handles = Hashtbl.create 1024;
    core = Hashtbl.create 256;
    built_ids = [];
    built_sorted = None;
    core_sorted = None;
    built = 0;
    steps = 0;
    merges = 0;
    scratch = Array.make 64 0;
  }

let db t = t.db
let meter t = t.meter
let num_original t = t.num_original
let is_original t id = id >= 1 && id <= t.num_original

(* --- id table ---------------------------------------------------------- *)

let define t id h = Hashtbl.replace t.handles id h
let defined t id = Hashtbl.mem t.handles id

let find t ~context id =
  match Hashtbl.find_opt t.handles id with
  | Some h -> h
  | None ->
    if is_original t id then begin
      Hashtbl.replace t.core id ();
      t.core_sorted <- None;
      let h = Clause_db.alloc t.db (Sat.Cnf.clause t.formula (id - 1)) in
      Hashtbl.replace t.handles id h;
      h
    end
    else Diagnostics.fail (Diagnostics.Unknown_clause { context; id })

let release_id t id =
  match Hashtbl.find_opt t.handles id with
  | None -> ()
  | Some h ->
    Hashtbl.remove t.handles id;
    Clause_db.release t.db h

(* --- resolution -------------------------------------------------------- *)

let phase_bit l = if Sat.Lit.is_neg l then 2 else 1
let swap_mask m = ((m land 1) lsl 1) lor ((m lsr 1) land 1)

(* Both operands are sorted duplicate-free packed-literal runs, so both
   phases of a variable sit adjacently and one linear merge walk finds the
   clashing variables: a variable whose phase masks overlap crosswise. *)
let clashing_vars t h1 h2 =
  let db = t.db in
  let n1 = Clause_db.size db h1 and n2 = Clause_db.size db h2 in
  let clashes = ref [] in
  let i = ref 0 and j = ref 0 in
  let var_mask h n r =
    let v = Sat.Lit.var (Clause_db.lit db h !r) in
    let m = ref 0 in
    while !r < n && Sat.Lit.var (Clause_db.lit db h !r) = v do
      m := !m lor phase_bit (Clause_db.lit db h !r);
      incr r
    done;
    (v, !m)
  in
  while !i < n1 && !j < n2 do
    let v1 = Sat.Lit.var (Clause_db.lit db h1 !i)
    and v2 = Sat.Lit.var (Clause_db.lit db h2 !j) in
    if v1 < v2 then ignore (var_mask h1 n1 i)
    else if v2 < v1 then ignore (var_mask h2 n2 j)
    else begin
      let _, m1 = var_mask h1 n1 i in
      let _, m2 = var_mask h2 n2 j in
      if m1 land swap_mask m2 <> 0 then clashes := v1 :: !clashes
    end
  done;
  List.rev !clashes

let ensure_scratch t n =
  if Array.length t.scratch < n then
    t.scratch <- Array.make (max n (2 * Array.length t.scratch)) 0

let resolve t ~context ~c1_id ~c2_id h1 h2 =
  let db = t.db in
  let pivot =
    match clashing_vars t h1 h2 with
    | [ v ] -> v
    | [] ->
      Diagnostics.fail
        (Diagnostics.No_clash
           { context; c1_id; c2_id;
             c1 = Clause_db.lits db h1; c2 = Clause_db.lits db h2 })
    | vars ->
      Diagnostics.fail
        (Diagnostics.Multiple_clash { context; c1_id; c2_id; vars })
  in
  let n1 = Clause_db.size db h1 and n2 = Clause_db.size db h2 in
  ensure_scratch t (n1 + n2);
  let out = t.scratch in
  let k = ref 0 and i = ref 0 and j = ref 0 in
  let emit l =
    if Sat.Lit.var l <> pivot then begin
      out.(!k) <- l;
      incr k
    end
  in
  while !i < n1 && !j < n2 do
    let l1 = Clause_db.lit db h1 !i and l2 = Clause_db.lit db h2 !j in
    if l1 = l2 then begin
      emit l1;
      if Sat.Lit.var l1 <> pivot then t.merges <- t.merges + 1;
      incr i;
      incr j
    end
    else if l1 < l2 then begin
      emit l1;
      incr i
    end
    else begin
      emit l2;
      incr j
    end
  done;
  while !i < n1 do
    emit (Clause_db.lit db h1 !i);
    incr i
  done;
  while !j < n2 do
    emit (Clause_db.lit db h2 !j);
    incr j
  done;
  t.steps <- t.steps + 1;
  (Clause_db.alloc_sorted db out !k, pivot)

let resolve_lits t ~context ~c1_id ~c2_id c1 c2 =
  let h1 = Clause_db.alloc t.db c1 in
  let h2 = Clause_db.alloc t.db c2 in
  let r, pivot = resolve t ~context ~c1_id ~c2_id h1 h2 in
  let out = Clause_db.lits t.db r in
  Clause_db.release t.db r;
  Clause_db.release t.db h1;
  Clause_db.release t.db h2;
  (out, pivot)

(* --- re-entrant scratch resolution -------------------------------------- *)

(* The same checked resolution as {!resolve}, but on caller-owned literal
   arrays: no kernel counters, no shared-arena allocation, no mutable
   kernel state at all.  The parallel checker's worker domains run whole
   chains through this while the shared store is read-only, and commit
   the results (and the counter deltas) at the wavefront barrier. *)

let clashing_vars_arrays a na b nb =
  let clashes = ref [] in
  let i = ref 0 and j = ref 0 in
  let var_mask c n r =
    let v = Sat.Lit.var c.(!r) in
    let m = ref 0 in
    while !r < n && Sat.Lit.var c.(!r) = v do
      m := !m lor phase_bit c.(!r);
      incr r
    done;
    (v, !m)
  in
  while !i < na && !j < nb do
    let v1 = Sat.Lit.var a.(!i) and v2 = Sat.Lit.var b.(!j) in
    if v1 < v2 then ignore (var_mask a na i)
    else if v2 < v1 then ignore (var_mask b nb j)
    else begin
      let _, m1 = var_mask a na i in
      let _, m2 = var_mask b nb j in
      if m1 land swap_mask m2 <> 0 then clashes := v1 :: !clashes
    end
  done;
  List.rev !clashes

(* [resolve_arrays ~context ~c1_id ~c2_id a na b nb out] resolves the
   sorted duplicate-free runs [a.(0..na-1)] and [b.(0..nb-1)] into [out]
   (capacity at least [na + nb]) and returns
   [(resolvent length, pivot, merged literal count)].  Raises the same
   diagnostics as {!resolve}. *)
let resolve_arrays ~context ~c1_id ~c2_id a na b nb out =
  let pivot =
    match clashing_vars_arrays a na b nb with
    | [ v ] -> v
    | [] ->
      Diagnostics.fail
        (Diagnostics.No_clash
           { context; c1_id; c2_id; c1 = Array.sub a 0 na; c2 = Array.sub b 0 nb })
    | vars ->
      Diagnostics.fail (Diagnostics.Multiple_clash { context; c1_id; c2_id; vars })
  in
  let k = ref 0 and i = ref 0 and j = ref 0 in
  let merges = ref 0 in
  let emit l =
    if Sat.Lit.var l <> pivot then begin
      out.(!k) <- l;
      incr k
    end
  in
  while !i < na && !j < nb do
    let l1 = a.(!i) and l2 = b.(!j) in
    if l1 = l2 then begin
      emit l1;
      if Sat.Lit.var l1 <> pivot then incr merges;
      incr i;
      incr j
    end
    else if l1 < l2 then begin
      emit l1;
      incr i
    end
    else begin
      emit l2;
      incr j
    end
  done;
  while !i < na do
    emit a.(!i);
    incr i
  done;
  while !j < nb do
    emit b.(!j);
    incr j
  done;
  (!k, pivot, !merges)

(* --- frozen-view resolution --------------------------------------------- *)

(* The same checked resolution again, with the second operand read in
   place from a {!Clause_db.ro} view instead of a scratch copy.  This is
   the zero-copy half of the wavefront workers' hot loop: the running
   resolvent lives in domain-local scratch, every store operand stays in
   the shared arena. *)

let clashing_vars_ro a na ro h2 nb =
  let clashes = ref [] in
  let i = ref 0 and j = ref 0 in
  let var_mask_a () =
    let v = Sat.Lit.var a.(!i) in
    let m = ref 0 in
    while !i < na && Sat.Lit.var a.(!i) = v do
      m := !m lor phase_bit a.(!i);
      incr i
    done;
    (v, !m)
  in
  let var_mask_b () =
    let v = Sat.Lit.var (Clause_db.ro_lit ro h2 !j) in
    let m = ref 0 in
    while
      !j < nb && Sat.Lit.var (Clause_db.ro_lit ro h2 !j) = v
    do
      m := !m lor phase_bit (Clause_db.ro_lit ro h2 !j);
      incr j
    done;
    (v, !m)
  in
  while !i < na && !j < nb do
    let v1 = Sat.Lit.var a.(!i)
    and v2 = Sat.Lit.var (Clause_db.ro_lit ro h2 !j) in
    if v1 < v2 then ignore (var_mask_a ())
    else if v2 < v1 then ignore (var_mask_b ())
    else begin
      let _, m1 = var_mask_a () in
      let _, m2 = var_mask_b () in
      if m1 land swap_mask m2 <> 0 then clashes := v1 :: !clashes
    end
  done;
  List.rev !clashes

let resolve_ro ~context ~c1_id ~c2_id a na ro h2 out =
  let nb = Clause_db.ro_size ro h2 in
  let pivot =
    match clashing_vars_ro a na ro h2 nb with
    | [ v ] -> v
    | [] ->
      Diagnostics.fail
        (Diagnostics.No_clash
           {
             context;
             c1_id;
             c2_id;
             c1 = Array.sub a 0 na;
             c2 = Array.init nb (Clause_db.ro_lit ro h2);
           })
    | vars ->
      Diagnostics.fail
        (Diagnostics.Multiple_clash { context; c1_id; c2_id; vars })
  in
  let k = ref 0 and i = ref 0 and j = ref 0 in
  let merges = ref 0 in
  let emit l =
    if Sat.Lit.var l <> pivot then begin
      out.(!k) <- l;
      incr k
    end
  in
  while !i < na && !j < nb do
    let l1 = a.(!i) and l2 = Clause_db.ro_lit ro h2 !j in
    if l1 = l2 then begin
      emit l1;
      if Sat.Lit.var l1 <> pivot then incr merges;
      incr i;
      incr j
    end
    else if l1 < l2 then begin
      emit l1;
      incr i
    end
    else begin
      emit l2;
      incr j
    end
  done;
  while !i < na do
    emit a.(!i);
    incr i
  done;
  while !j < nb do
    emit (Clause_db.ro_lit ro h2 !j);
    incr j
  done;
  (!k, pivot, !merges)

(* [peek t id] is the read-only id lookup: never materialises an original,
   never mutates — the only table access worker domains are allowed. *)
let peek t id = Hashtbl.find_opt t.handles id

(* [record_external_chain t ~learned_id ~steps ~merges] folds the counter
   deltas of a chain performed outside the kernel (through
   {!resolve_arrays}) into the kernel's totals, so reports agree exactly
   with a sequential run.  Single-threaded: call only at a barrier. *)
(* One telemetry update per completed chain: counters for the chain and
   its resolution steps, live gauges for the arena, and a sampler tick. *)
let observe_chain t ~nsources ~steps =
  if Obs.Ctl.on () then begin
    Obs.Metrics.Counter.incr m_chains 1;
    Obs.Metrics.Counter.incr m_steps steps;
    Obs.Metrics.Histogram.observe m_chain_len nsources;
    Obs.Metrics.Gauge.set m_live (float_of_int (Clause_db.live_clauses t.db));
    Obs.Metrics.Gauge.set m_arena
      (float_of_int (8 * Clause_db.live_words t.db));
    Obs.Sampler.tick ()
  end

let record_external_chain t ~learned_id ~steps ~merges =
  t.built <- t.built + 1;
  t.built_ids <- learned_id :: t.built_ids;
  t.built_sorted <- None;
  t.steps <- t.steps + steps;
  t.merges <- t.merges + merges;
  observe_chain t ~nsources:(steps + 1) ~steps

let chain t ~context ~fetch ~combine ~learned_id ids =
  if Array.length ids = 0 then
    Diagnostics.fail (Diagnostics.Empty_source_list learned_id);
  t.built <- t.built + 1;
  t.built_ids <- learned_id :: t.built_ids;
  t.built_sorted <- None;
  let steps_before = t.steps in
  let h0, a0 = fetch ids.(0) in
  if Array.length ids = 1 then begin
    (* a degenerate learned clause is the source clause itself *)
    Clause_db.retain t.db h0;
    observe_chain t ~nsources:1 ~steps:0;
    (h0, a0)
  end
  else begin
    let cur = ref h0 and ann = ref a0 in
    let cur_id = ref ids.(0) in
    let owned = ref false in
    for idx = 1 to Array.length ids - 1 do
      let h, a = fetch ids.(idx) in
      let r, pivot =
        resolve t ~context ~c1_id:!cur_id ~c2_id:ids.(idx) !cur h
      in
      if !owned then Clause_db.release t.db !cur;
      owned := true;
      cur := r;
      ann := combine ~pivot !ann a;
      cur_id := learned_id (* intermediate resolvents belong to the learned id *)
    done;
    observe_chain t ~nsources:(Array.length ids) ~steps:(t.steps - steps_before);
    (!cur, !ann)
  end

let unit_combine ~pivot:_ () () = ()

let chain_ids t ~context ~fetch ~learned_id ids =
  fst
    (chain t ~context
       ~fetch:(fun id -> (fetch id, ()))
       ~combine:unit_combine ~learned_id ids)

(* --- streaming traversal ----------------------------------------------- *)

type pass = {
  total_learned : int;
  final_conflict : int option;
}

type residency = [ `Full | `Defs | `None ]

let residency_words = function
  | Trace.Event.Header _ -> 2
  | Trace.Event.Learned l -> 2 + Array.length l.sources
  | Trace.Event.Level0 _ -> 3
  | Trace.Event.Final_conflict _ -> 1
  | Trace.Event.Delete ids -> 1 + Array.length ids

(* The validating pass is an incremental state machine so that it can be
   driven either by pulling from a {!Trace.Source.t} ({!stream_pass}, the
   file-based checkers) or by having events pushed into it live from the
   solver (the online validator's BF ingest).  Both drivers share the
   exact same per-event validation and meter charges, which is what makes
   online and file-based reports bit-identical. *)

type stream = {
  sk : t;
  s_stream_order : bool;
  s_l0 : Level0.t option;
  s_charge : residency;
  s_accept_hints : bool;
  seen : (int, unit) Hashtbl.t;
  mutable saw_header : bool;
  mutable s_total : int;
  mutable s_conf : int option;
}

let stream_start t ?(stream_order = true) ?l0 ?(charge = `None)
    ?(accept_hints = false) () =
  {
    sk = t;
    s_stream_order = stream_order;
    s_l0 = l0;
    s_charge = charge;
    s_accept_hints = accept_hints;
    seen = Hashtbl.create 1024;
    saw_header = false;
    s_total = 0;
    s_conf = None;
  }

let stream_feed st e =
  let t = st.sk in
  if Obs.Ctl.on () then begin
    Obs.Metrics.Counter.incr m_stream_events 1;
    Obs.Sampler.tick ()
  end;
  (match st.s_charge with
   | `Full -> Harness.Meter.alloc t.meter (residency_words e)
   | `Defs -> (
     match e with
     | Trace.Event.Learned l ->
       Harness.Meter.alloc t.meter (2 + Array.length l.sources)
     | _ -> ())
   | `None -> ());
  match e with
  | Trace.Event.Header h ->
    st.saw_header <- true;
    if h.nvars <> Sat.Cnf.nvars t.formula || h.num_original <> t.num_original
    then
      Diagnostics.fail
        (Diagnostics.Header_mismatch
           { trace_nvars = h.nvars; trace_norig = h.num_original;
             formula_nvars = Sat.Cnf.nvars t.formula;
             formula_norig = t.num_original })
  | Trace.Event.Learned l ->
    if is_original t l.id then
      Diagnostics.fail (Diagnostics.Shadows_original l.id);
    if Hashtbl.mem st.seen l.id then
      Diagnostics.fail (Diagnostics.Duplicate_definition l.id);
    if Array.length l.sources = 0 then
      Diagnostics.fail (Diagnostics.Empty_source_list l.id);
    if st.s_stream_order then
      Array.iter
        (fun s ->
          if not (is_original t s) && not (Hashtbl.mem st.seen s) then
            Diagnostics.fail
              (Diagnostics.Forward_reference { id = l.id; source = s }))
        l.sources;
    Hashtbl.replace st.seen l.id ();
    st.s_total <- st.s_total + 1
  | Trace.Event.Level0 v -> (
    match st.s_l0 with
    | Some l0 -> Level0.add l0 ~var:v.var ~value:v.value ~ante:v.ante
    | None -> ())
  | Trace.Event.Final_conflict id -> st.s_conf <- Some id
  | Trace.Event.Delete _ ->
    (* deletion hints are advice the hinted checker acts on itself; every
       other mode refuses them up front so a version-2 trace can never be
       silently mis-checked by a hint-blind strategy *)
    if not st.s_accept_hints then
      Diagnostics.fail Diagnostics.Hints_unsupported

let stream_finish st =
  if not st.saw_header then Diagnostics.fail Diagnostics.Missing_header;
  { total_learned = st.s_total; final_conflict = st.s_conf }

let stream_pass t ?stream_order ?l0 ?charge ?on_event src =
  let st = stream_start t ?stream_order ?l0 ?charge () in
  Trace.Source.iter
    (fun e ->
      stream_feed st e;
      match on_event with Some f -> f e | None -> ())
    src;
  stream_finish st

type proof = {
  sources : (int, int array) Hashtbl.t;
  defs : (int * int array) array;
  l0 : Level0.t;
  final_conflict : int option;
  total_learned : int;
  mutable defs_words : int;
}

let load t ?(stream_order = false) ?(charge = `None) src =
  let sources = Hashtbl.create 1024 in
  let defs = ref [] in
  let defs_words = ref 0 in
  let l0 = Level0.create () in
  let pass =
    stream_pass t ~stream_order ~l0 ~charge
      ~on_event:(function
        | Trace.Event.Learned l ->
          Hashtbl.replace sources l.id l.sources;
          defs := (l.id, l.sources) :: !defs;
          defs_words := !defs_words + 2 + Array.length l.sources
        | _ -> ())
      src
  in
  {
    sources;
    defs = Array.of_list (List.rev !defs);
    l0;
    final_conflict = pass.final_conflict;
    total_learned = pass.total_learned;
    defs_words = !defs_words;
  }

let free_defs t proof =
  Harness.Meter.free t.meter proof.defs_words;
  proof.defs_words <- 0

(* --- recursive traversal ------------------------------------------------ *)

type 'a annotation = {
  of_original : int -> Sat.Lit.t array -> 'a;
  combine : pivot:Sat.Lit.var -> 'a -> 'a -> 'a;
}

let unit_annotation =
  { of_original = (fun _ _ -> ()); combine = (fun ~pivot:_ () () -> ()) }

type 'a builder = {
  bk : t;
  bsources : (int, int array) Hashtbl.t;
  ann : (int, 'a) Hashtbl.t;
  spec : 'a annotation;
  in_progress : (int, unit) Hashtbl.t;
}

let builder t ~sources spec =
  {
    bk = t;
    bsources = sources;
    ann = Hashtbl.create 1024;
    spec;
    in_progress = Hashtbl.create 64;
  }

let context_build = "depth-first build"

let materialise_original b id =
  let h = find b.bk ~context:context_build id in
  Hashtbl.replace b.ann id (b.spec.of_original id (Clause_db.lits b.bk.db h))

(* Figure 3's recursive_build, iteratively with an explicit work stack so
   deep proofs cannot overflow the OCaml call stack. *)
let build b root =
  let k = b.bk in
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
      if defined k id then begin
        Hashtbl.remove b.in_progress id;
        stack := rest
      end
      else if is_original k id then begin
        materialise_original b id;
        stack := rest
      end
      else begin
        match Hashtbl.find_opt b.bsources id with
        | None ->
          Diagnostics.fail
            (Diagnostics.Unknown_clause { context = context_build; id })
        | Some srcs ->
          let missing = ref 0 in
          Array.iter
            (fun s ->
              if !missing = 0 && not (defined k s) && not (is_original k s)
              then missing := s)
            srcs;
          (* original sources are built inline: they never recurse *)
          Array.iter
            (fun s ->
              if is_original k s && not (defined k s) then
                materialise_original b s)
            srcs;
          if !missing = 0 then begin
            let fetch s =
              (* find first: it raises Unknown_clause for ids the proof
                 never defined (e.g. a 0 source), before any annotation
                 lookup *)
              let h = find k ~context:context_build s in
              match Hashtbl.find_opt b.ann s with
              | Some a -> (h, a)
              | None ->
                (* an original materialised outside this builder *)
                let a = b.spec.of_original s (Clause_db.lits k.db h) in
                Hashtbl.replace b.ann s a;
                (h, a)
            in
            let h, a =
              chain k ~context:"learned-clause reconstruction" ~fetch
                ~combine:(fun ~pivot a1 a2 -> b.spec.combine ~pivot a1 a2)
                ~learned_id:id srcs
            in
            define k id h;
            Hashtbl.replace b.ann id a;
            Hashtbl.remove b.in_progress id;
            stack := rest
          end
          else begin
            if Hashtbl.mem b.in_progress !missing then
              Diagnostics.fail (Diagnostics.Cyclic_definition !missing);
            Hashtbl.replace b.in_progress id ();
            Hashtbl.replace b.in_progress !missing ();
            stack := !missing :: !stack
          end
      end
  done;
  let h = find b.bk ~context:context_build root in
  match Hashtbl.find_opt b.ann root with
  | Some a -> (h, a)
  | None ->
    let a = b.spec.of_original root (Clause_db.lits b.bk.db h) in
    Hashtbl.replace b.ann root a;
    (h, a)

(* --- the empty-clause construction -------------------------------------- *)

let context_final = "empty-clause construction"

let final_chain t ~l0 ~fetch ~combine ~conflict_id =
  let db = t.db in
  let h0, a0 = fetch conflict_id in
  Clause_db.iter_lits db h0 (fun l ->
      if not (Level0.lit_false l0 l) then
        Diagnostics.fail
          (Diagnostics.Final_literal_not_false
             { clause_id = conflict_id; lit = l }));
  let cur = ref h0 and ann = ref a0 in
  let cur_id = ref conflict_id in
  let owned = ref false in
  let steps = ref 0 in
  while Clause_db.size db !cur > 0 do
    (* reverse chronological choice: the literal whose variable was
       assigned last — the paper's choose_literal, which guarantees
       termination in at most n resolutions *)
    let v = ref (-1) and best = ref (-1) in
    Clause_db.iter_lits db !cur (fun l ->
        let u = Sat.Lit.var l in
        let o = Level0.order l0 u in
        if o > !best then begin
          best := o;
          v := u
        end);
    let v = !v in
    let ante_id = Level0.ante l0 v in
    let ha, aa = fetch ante_id in
    (match Level0.check_antecedent l0 ~var:v (Clause_db.lits db ha) with
     | None -> ()
     | Some reason ->
       Diagnostics.fail
         (Diagnostics.Antecedent_mismatch { var = v; ante = ante_id; reason }));
    let r, pivot =
      resolve t ~context:context_final ~c1_id:!cur_id ~c2_id:ante_id !cur ha
    in
    if pivot <> v then
      Diagnostics.fail
        (Diagnostics.Wrong_pivot
           { context = context_final; expected = v; actual = pivot });
    if !owned then Clause_db.release db !cur;
    owned := true;
    incr steps;
    ann := combine ~pivot !ann aa;
    cur := r;
    cur_id := -1 (* intermediate chain resolvent *)
  done;
  if !owned then Clause_db.release db !cur;
  (!ann, !steps)

let final_chain_ids t ~l0 ~fetch ~conflict_id =
  snd
    (final_chain t ~l0
       ~fetch:(fun id -> (fetch id, ()))
       ~combine:unit_combine ~conflict_id)

(* --- counters ----------------------------------------------------------- *)

type counters = {
  clauses_built : int;
  resolution_steps : int;
  merged_literals : int;
  peak_live_clauses : int;
  arena_peak_bytes : int;
}

let counters t =
  {
    clauses_built = t.built;
    resolution_steps = t.steps;
    merged_literals = t.merges;
    peak_live_clauses = Clause_db.peak_live_clauses t.db;
    arena_peak_bytes = 8 * Clause_db.peak_words t.db;
  }

let resolution_steps t = t.steps

(* Both sorted views are memoised: they are re-read per report (and the
   hybrid re-reads the core for its report too), and an O(n log n) sort
   per call shows up on large traces.  The caches are invalidated on the
   two mutation points — {!chain}/{!record_external_chain} for built ids,
   original materialisation in {!find} for the core. *)
let built_ids t =
  match t.built_sorted with
  | Some ids -> ids
  | None ->
    let ids = List.sort Int.compare t.built_ids in
    t.built_sorted <- Some ids;
    ids

let core_ids t =
  match t.core_sorted with
  | Some ids -> ids
  | None ->
    let ids =
      List.sort Int.compare
        (Hashtbl.fold (fun id () acc -> id :: acc) t.core [])
    in
    t.core_sorted <- Some ids;
    ids

let core_var_count t =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id () ->
      Array.iter
        (fun l -> Hashtbl.replace seen (Sat.Lit.var l) ())
        (Sat.Cnf.clause t.formula (id - 1)))
    t.core;
  Hashtbl.length seen
