type record = { value : bool; ante : int; order : int }

type t = { tbl : (Sat.Lit.var, record) Hashtbl.t; mutable next : int }

let create () = { tbl = Hashtbl.create 64; next = 0 }

let add t ~var ~value ~ante =
  if Hashtbl.mem t.tbl var then
    Diagnostics.fail (Diagnostics.Level0_duplicate_var var);
  Hashtbl.replace t.tbl var { value; ante; order = t.next };
  t.next <- t.next + 1

let count t = Hashtbl.length t.tbl
let mem t v = Hashtbl.mem t.tbl v

let get t v =
  match Hashtbl.find_opt t.tbl v with
  | Some r -> r
  | None -> Diagnostics.fail (Diagnostics.Level0_var_unrecorded v)

let value t v = (get t v).value
let ante t v = (get t v).ante
let order t v = (get t v).order

let lit_false t l =
  match Hashtbl.find_opt t.tbl (Sat.Lit.var l) with
  | None -> false
  | Some r -> r.value = Sat.Lit.is_neg l

let check_antecedent t ~var built =
  let implied = Sat.Lit.make var (not (value t var)) in
  if not (Sat.Clause.mem implied built) then
    Some
      (Printf.sprintf "clause does not contain the implied literal %s"
         (Sat.Lit.to_string implied))
  else begin
    let my_order = order t var in
    let bad = ref None in
    Array.iter
      (fun l ->
        if !bad = None && Sat.Lit.var l <> var then begin
          let v = Sat.Lit.var l in
          match Hashtbl.find_opt t.tbl v with
          | None ->
            bad :=
              Some
                (Printf.sprintf
                   "literal %s is over a variable with no level-0 record"
                   (Sat.Lit.to_string l))
          | Some r ->
            if not (lit_false t l) then
              bad :=
                Some
                  (Printf.sprintf "literal %s is not falsified at level 0"
                     (Sat.Lit.to_string l))
            else if r.order >= my_order then
              bad :=
                Some
                  (Printf.sprintf
                     "literal %s was assigned after variable %d, so the \
                      clause was not yet unit"
                     (Sat.Lit.to_string l) var)
        end)
      built;
    !bad
  end
