(** The shared resolution kernel: one checked sorted-merge resolution
    routine plus the proof-DAG traversal machinery every checker is built
    on.

    A kernel owns a {!Clause_db}, the formula's original clauses
    (materialised into the store on first use, which also marks them as
    unsat-core members), an id → handle table for clauses the proof has
    defined, and the counters every checker reports uniformly.

    Two traversal styles drive the checkers, both fed by a
    {!Trace.Reader.cursor}:

    - {!stream_pass} / {!load}: validated one-pass forward streaming, the
      §3.3 breadth-first discipline (and the load phase of §3.2);
    - {!builder} / {!build}: on-demand recursive reconstruction through
      the resolve-source DAG with cycle detection, the §3.2 depth-first
      discipline, generalised over a clause annotation so interpolation
      (McMillan's rule) rides the same traversal as plain checking.

    Every resolution performed anywhere in the system goes through
    {!resolve} here, which enforces the paper's side condition: exactly
    one variable in opposite phases, no tautological resolvents. *)

type t

val create : ?meter:Harness.Meter.t -> Sat.Cnf.t -> t

val db : t -> Clause_db.t
val meter : t -> Harness.Meter.t
val num_original : t -> int
val is_original : t -> int -> bool

(** {2 The id → clause table} *)

(** [define t id h] binds [id] to [h], transferring one reference to the
    table. *)
val define : t -> int -> Clause_db.handle -> unit

val defined : t -> int -> bool

(** [find t ~context id] looks [id] up; original clauses are materialised
    into the store on demand (and recorded in the unsat core).
    @raise Diagnostics.Check_failed with [Unknown_clause] otherwise. *)
val find : t -> context:string -> int -> Clause_db.handle

(** [release_id t id] drops the table's binding and its reference; a
    no-op when [id] is not bound (the clause was never stored or has
    already drained). *)
val release_id : t -> int -> unit

(** {2 Resolution} *)

(** [resolve t ~context ~c1_id ~c2_id h1 h2] is the checked resolvent (a
    fresh handle owned by the caller) and the pivot variable.
    @raise Diagnostics.Check_failed with [No_clash] or [Multiple_clash]
    when the side condition fails. *)
val resolve :
  t ->
  context:string ->
  c1_id:int ->
  c2_id:int ->
  Clause_db.handle ->
  Clause_db.handle ->
  Clause_db.handle * Sat.Lit.var

(** [resolve_lits] is {!resolve} on plain literal arrays (tests and
    micro-benchmarks); the operands are staged through the store and
    released. *)
val resolve_lits :
  t ->
  context:string ->
  c1_id:int ->
  c2_id:int ->
  Sat.Lit.t array ->
  Sat.Lit.t array ->
  Sat.Lit.t array * Sat.Lit.var

(** {2 Re-entrant scratch resolution}

    The parallel checker's worker domains replay resolution chains while
    the shared store is read-only; these entry points touch no kernel
    state, so any number of domains may run them concurrently. *)

(** [resolve_arrays ~context ~c1_id ~c2_id a na b nb out] is the same
    checked resolution as {!resolve}, on the sorted duplicate-free packed
    literal runs [a.(0..na-1)] and [b.(0..nb-1)], writing the resolvent
    into the caller-owned [out] (capacity at least [na + nb]).  Returns
    [(resolvent length, pivot, merged literal count)]; updates no
    counters and allocates nothing in any shared arena.
    @raise Diagnostics.Check_failed with [No_clash] or [Multiple_clash]
    when the side condition fails. *)
val resolve_arrays :
  context:string ->
  c1_id:int ->
  c2_id:int ->
  int array ->
  int ->
  int array ->
  int ->
  int array ->
  int * Sat.Lit.var * int

(** [resolve_ro ~context ~c1_id ~c2_id a na ro h2 out] is
    {!resolve_arrays} with the second operand read in place from the
    frozen store view [ro] (handle [h2]) instead of a caller copy —
    worker domains resolve against shared clauses with zero per-operand
    copying.  Same result, counters and diagnostics as copying the
    clause out first. *)
val resolve_ro :
  context:string ->
  c1_id:int ->
  c2_id:int ->
  int array ->
  int ->
  Clause_db.ro ->
  Clause_db.handle ->
  int array ->
  int * Sat.Lit.var * int

(** [peek t id] is the read-only id lookup: [None] when [id] is unbound,
    never materialises an original clause, never mutates.  The only id
    table access allowed from a worker domain. *)
val peek : t -> int -> Clause_db.handle option

(** [record_external_chain t ~learned_id ~steps ~merges] folds the
    counter deltas of one learned-clause chain performed through
    {!resolve_arrays} into the kernel totals (one built clause, [steps]
    resolutions, [merges] merged literals), keeping reports identical to
    a sequential run.  Single-threaded: call only at a barrier. *)
val record_external_chain :
  t -> learned_id:int -> steps:int -> merges:int -> unit

(** [chain t ~context ~fetch ~combine ~learned_id ids] folds checked
    resolution left-to-right over the clauses named by [ids], threading an
    annotation through [combine] at each step, and returns the final
    clause (a handle owned by the caller — for a single-element chain, a
    retained alias of the source) with its annotation.  Counts one built
    clause.
    @raise Diagnostics.Check_failed on any invalid step, and with
    [Empty_source_list] when [ids] is empty. *)
val chain :
  t ->
  context:string ->
  fetch:(int -> Clause_db.handle * 'a) ->
  combine:(pivot:Sat.Lit.var -> 'a -> 'a -> 'a) ->
  learned_id:int ->
  int array ->
  Clause_db.handle * 'a

(** [chain_ids] is {!chain} without annotations. *)
val chain_ids :
  t ->
  context:string ->
  fetch:(int -> Clause_db.handle) ->
  learned_id:int ->
  int array ->
  Clause_db.handle

(** {2 Streaming traversal (breadth-first style)} *)

type pass = {
  total_learned : int;
  final_conflict : int option;
}

(** What a streaming pass charges to the meter as it goes: the full
    parsed-trace residency (§3.2 depth-first holds the whole trace), just
    the resolve-source lists (the hybrid's pass one), or nothing. *)
type residency = [ `Full | `Defs | `None ]

(** The validating pass as an incremental state machine, so it can be
    driven by pulling from a source ({!stream_pass}) or by pushing events
    into it live from the solver (the online validator).  Both drivers
    run the identical per-event validation and meter charges. *)
type stream

val stream_start :
  t ->
  ?stream_order:bool ->
  ?l0:Level0.t ->
  ?charge:residency ->
  ?accept_hints:bool ->
  unit ->
  stream

(** [stream_feed st e] validates one event: header matching the formula,
    no learned id shadowing an original or defined twice, no empty source
    list — and, with [stream_order] (default), no forward references.
    Deletion-hint records ([Event.Delete]) fail with
    {!Diagnostics.Hints_unsupported} unless the stream was started with
    [accept_hints] — the hinted checker acts on them itself; every other
    strategy must refuse a version-2 trace rather than silently ignore
    its hints.
    @raise Diagnostics.Check_failed on the first violation. *)
val stream_feed : stream -> Trace.Event.t -> unit

(** [stream_finish st] checks a header was seen and returns the totals. *)
val stream_finish : stream -> pass

(** [stream_pass t src] drains [src] through {!stream_feed} and finishes.
    The source is consumed from its current position — callers wanting
    the whole trace pass a fresh source (or rewind their cursor first).
    [on_event] sees each event after validation. *)
val stream_pass :
  t ->
  ?stream_order:bool ->
  ?l0:Level0.t ->
  ?charge:residency ->
  ?on_event:(Trace.Event.t -> unit) ->
  Trace.Source.t ->
  pass

(** A fully loaded proof skeleton: resolve-source lists, level-0 records,
    definition order — what the depth-first and hybrid checkers keep in
    memory. *)
type proof = {
  sources : (int, int array) Hashtbl.t;
  defs : (int * int array) array;  (** stream order *)
  l0 : Level0.t;
  final_conflict : int option;
  total_learned : int;
  mutable defs_words : int;        (** meter words held by the defs *)
}

val load :
  t ->
  ?stream_order:bool ->
  ?charge:residency ->
  Trace.Source.t ->
  proof

(** [free_defs t proof] credits the meter for the proof's source lists
    (the hybrid releases them after its reverse marking sweep). *)
val free_defs : t -> proof -> unit

(** [residency_words e] is the trace-residency charge of one event. *)
val residency_words : Trace.Event.t -> int

(** {2 Recursive traversal (depth-first style)} *)

(** How to annotate clauses during a depth-first build: [of_original] is
    the base case, [combine] the per-resolution step.  Plain checking
    uses {!unit_annotation}; interpolation supplies McMillan's rule. *)
type 'a annotation = {
  of_original : int -> Sat.Lit.t array -> 'a;
  combine : pivot:Sat.Lit.var -> 'a -> 'a -> 'a;
}

val unit_annotation : unit annotation

type 'a builder

(** [builder t ~sources spec] prepares on-demand reconstruction through
    the resolve-source lists in [sources]. *)
val builder : t -> sources:(int, int array) Hashtbl.t -> 'a annotation -> 'a builder

(** [build b id] reconstructs clause [id] (memoised in the kernel's id
    table) with an explicit work stack, so arbitrarily deep proofs cannot
    overflow the call stack.
    @raise Diagnostics.Check_failed with [Unknown_clause] or
    [Cyclic_definition] on broken DAGs. *)
val build : 'a builder -> int -> Clause_db.handle * 'a

(** {2 The empty-clause construction (Proposition 3)} *)

(** [final_chain t ~l0 ~fetch ~combine ~conflict_id] resolves the final
    conflicting clause against recorded antecedents in reverse
    chronological order down to the empty clause, checking antecedent
    validity and pivot choice at each step.  Returns the final annotation
    and the chain length. *)
val final_chain :
  t ->
  l0:Level0.t ->
  fetch:(int -> Clause_db.handle * 'a) ->
  combine:(pivot:Sat.Lit.var -> 'a -> 'a -> 'a) ->
  conflict_id:int ->
  'a * int

(** [final_chain_ids] is {!final_chain} without annotations; returns the
    chain length. *)
val final_chain_ids :
  t ->
  l0:Level0.t ->
  fetch:(int -> Clause_db.handle) ->
  conflict_id:int ->
  int

(** {2 Counters and by-products} *)

type counters = {
  clauses_built : int;       (** chain-resolved learned clauses *)
  resolution_steps : int;    (** checked pairwise resolutions *)
  merged_literals : int;     (** shared literals emitted once by merges *)
  peak_live_clauses : int;
  arena_peak_bytes : int;    (** peak arena residency, in bytes *)
}

val counters : t -> counters
val resolution_steps : t -> int

(** [built_ids t] is the sorted list of learned ids {!chain} (or
    {!record_external_chain}) has built.  The sort is memoised and
    invalidated on mutation, so per-report re-reads are O(1). *)
val built_ids : t -> int list

(** [core_ids t] is the sorted list of original clause ids materialised so
    far — the unsat core of a completed depth-first or hybrid check.
    Memoised like {!built_ids}. *)
val core_ids : t -> int list

(** [core_var_count t] counts distinct variables over the core clauses. *)
val core_var_count : t -> int
