(** Failure reporting.  The paper stresses that when checking fails the
    checker should "provide as much information as possible about the
    failure to help debug the solver" (§3.2); every way a trace can be
    wrong maps to a distinct constructor carrying the offending IDs and
    clauses, and {!pp} renders a bug report a solver author can act on. *)

type failure =
  | Malformed_trace of { pos : Trace.Reader.pos option; msg : string }
      (** the trace stream failed to parse; [pos] locates the offending
          record (line for ASCII traces, byte offset for binary ones)
          when the reader could tell *)
  | Missing_header
      (** trace has no [t nvars norig] record *)
  | Header_mismatch of { trace_nvars : int; trace_norig : int;
                         formula_nvars : int; formula_norig : int }
      (** trace and formula disagree on dimensions *)
  | Missing_final_conflict
      (** solver never recorded the level-0 conflicting clause (§3.1
          modification 2 missing) *)
  | Unknown_clause of { context : string; id : int }
      (** a resolve source / antecedent ID that is neither an original
          clause nor a learned clause defined by the trace *)
  | Duplicate_definition of int
      (** two [CL] records claim the same ID *)
  | Shadows_original of int
      (** a [CL] record reuses an original clause's ID *)
  | Empty_source_list of int
      (** a learned clause with no resolve sources *)
  | Cyclic_definition of int
      (** the resolve-source graph is not acyclic at this ID *)
  | Forward_reference of { id : int; source : int }
      (** breadth-first only: a source not yet defined in stream order *)
  | No_clash of { context : string; c1_id : int; c2_id : int;
                  c1 : Sat.Clause.t; c2 : Sat.Clause.t }
      (** resolution attempted between clauses with no variable in
          opposite phases *)
  | Multiple_clash of { context : string; c1_id : int; c2_id : int;
                        vars : Sat.Lit.var list }
      (** more than one clashing variable: the resolvent would be a
          tautology, which a correct CDCL run never produces *)
  | Wrong_pivot of { context : string; expected : Sat.Lit.var;
                     actual : Sat.Lit.var }
      (** the final chain resolved on a different variable than the
          level-0 record dictates *)
  | Level0_var_unrecorded of Sat.Lit.var
      (** a variable needed by the empty-clause construction has no VAR
          record *)
  | Level0_duplicate_var of Sat.Lit.var
  | Final_literal_not_false of { clause_id : int; lit : Sat.Lit.t }
      (** the claimed final conflicting clause has a literal not falsified
          by the level-0 assignment *)
  | Antecedent_mismatch of { var : Sat.Lit.var; ante : int; reason : string }
      (** the recorded antecedent was not actually the unit clause that
          implied the variable (paper §3.2's antecedent check); this also
          guarantees the empty-clause chain terminates, since every
          resolution strictly decreases the latest assignment position in
          the clause *)
  | Hints_unsupported
      (** the trace carries deletion hints (format version 2) but the
          selected checking mode cannot honour them — a version
          negotiation failure, reported as bad input (exit 2), never as a
          wrong proof *)
  | Bad_delete_hint of { id : int; reason : string }
      (** hinted mode only: a delete record names a clause that is not
          live (dangling id, double delete) or frees a clause the rest of
          the proof still needs *)
  | Positioned of { pos : Trace.Reader.pos; failure : failure }
      (** wraps a failure with the trace position of the record that
          triggered it — the one-pass hinted checker localises every
          failure this way since it never revisits the trace *)

(** Raised internally by checker passes; both public checkers catch it and
    return the failure as data. *)
exception Check_failed of failure

val fail : failure -> 'a

(** [malformed ?pos msg] / [of_parse_error ~pos msg] build a
    {!Malformed_trace}; the latter is the standard adapter for
    {!Trace.Reader.Parse_error} payloads. *)
val malformed : ?pos:Trace.Reader.pos -> string -> failure

val of_parse_error : pos:Trace.Reader.pos -> string -> failure
val pp : Format.formatter -> failure -> unit
val to_string : failure -> string

(** [ids f] is the clause ids the failure names, in message order —
    structured access for refusal reports, so forensics tooling never
    re-parses the rendered text.  Empty for failures about the trace as
    a whole. *)
val ids : failure -> int list

(** [position f] is where the failure was localised: the wrapping
    {!Positioned} position, or a {!Malformed_trace}'s own. *)
val position : failure -> Trace.Reader.pos option
