type failure =
  | Malformed_trace of { pos : Trace.Reader.pos option; msg : string }
  | Missing_header
  | Header_mismatch of { trace_nvars : int; trace_norig : int;
                         formula_nvars : int; formula_norig : int }
  | Missing_final_conflict
  | Unknown_clause of { context : string; id : int }
  | Duplicate_definition of int
  | Shadows_original of int
  | Empty_source_list of int
  | Cyclic_definition of int
  | Forward_reference of { id : int; source : int }
  | No_clash of { context : string; c1_id : int; c2_id : int;
                  c1 : Sat.Clause.t; c2 : Sat.Clause.t }
  | Multiple_clash of { context : string; c1_id : int; c2_id : int;
                        vars : Sat.Lit.var list }
  | Wrong_pivot of { context : string; expected : Sat.Lit.var;
                     actual : Sat.Lit.var }
  | Level0_var_unrecorded of Sat.Lit.var
  | Level0_duplicate_var of Sat.Lit.var
  | Final_literal_not_false of { clause_id : int; lit : Sat.Lit.t }
  | Antecedent_mismatch of { var : Sat.Lit.var; ante : int; reason : string }
  | Hints_unsupported
  | Bad_delete_hint of { id : int; reason : string }
  | Positioned of { pos : Trace.Reader.pos; failure : failure }

exception Check_failed of failure

let fail f = raise (Check_failed f)

let malformed ?pos msg = Malformed_trace { pos; msg }

let of_parse_error ~pos msg = Malformed_trace { pos = Some pos; msg }

let rec pp fmt = function
  | Malformed_trace { pos = None; msg } ->
    Format.fprintf fmt "trace does not parse: %s" msg
  | Malformed_trace { pos = Some p; msg } ->
    Format.fprintf fmt "trace does not parse at %a: %s" Trace.Reader.pp_pos p
      msg
  | Missing_header -> Format.fprintf fmt "trace has no header record"
  | Header_mismatch h ->
    Format.fprintf fmt
      "trace header (%d vars, %d clauses) disagrees with formula (%d vars, %d clauses)"
      h.trace_nvars h.trace_norig h.formula_nvars h.formula_norig
  | Missing_final_conflict ->
    Format.fprintf fmt
      "no final conflicting clause recorded: the solver claimed UNSAT \
       without reaching a level-0 conflict, or trace generation is \
       incomplete"
  | Unknown_clause u ->
    Format.fprintf fmt "%s references clause id %d, which is neither \
                        original nor defined by the trace" u.context u.id
  | Duplicate_definition id ->
    Format.fprintf fmt "clause id %d defined twice in the trace" id
  | Shadows_original id ->
    Format.fprintf fmt "learned-clause record reuses original clause id %d" id
  | Empty_source_list id ->
    Format.fprintf fmt "learned clause %d has an empty resolve-source list" id
  | Cyclic_definition id ->
    Format.fprintf fmt "resolve sources of clause %d form a cycle" id
  | Forward_reference f ->
    Format.fprintf fmt
      "clause %d uses source %d before it is defined (stream order)" f.id
      f.source
  | No_clash n ->
    Format.fprintf fmt
      "%s: no clashing variable between clause %d %a and clause %d %a"
      n.context n.c1_id Sat.Clause.pp n.c1 n.c2_id Sat.Clause.pp n.c2
  | Multiple_clash m ->
    Format.fprintf fmt
      "%s: clauses %d and %d clash on several variables (%s); the \
       resolvent would be tautological"
      m.context m.c1_id m.c2_id
      (String.concat ", " (List.map string_of_int m.vars))
  | Wrong_pivot w ->
    Format.fprintf fmt "%s: expected resolution pivot %d, got %d" w.context
      w.expected w.actual
  | Level0_var_unrecorded v ->
    Format.fprintf fmt
      "variable %d is needed by the empty-clause construction but has no \
       level-0 record" v
  | Level0_duplicate_var v ->
    Format.fprintf fmt "variable %d has two level-0 records" v
  | Final_literal_not_false f ->
    Format.fprintf fmt
      "claimed final conflicting clause %d contains literal %a which the \
       level-0 assignment does not falsify" f.clause_id Sat.Lit.pp f.lit
  | Antecedent_mismatch a ->
    Format.fprintf fmt
      "clause %d is not a valid antecedent for variable %d: %s" a.ante a.var
      a.reason
  | Hints_unsupported ->
    Format.fprintf fmt
      "trace carries deletion hints (format version 2), which this \
       checking mode does not support — re-run with --mode hint or strip \
       the hints with `rescheck hint --strip`"
  | Bad_delete_hint b ->
    Format.fprintf fmt "bad deletion hint: clause %d %s" b.id b.reason
  | Positioned p ->
    Format.fprintf fmt "at %a: %a" Trace.Reader.pp_pos p.pos pp p.failure

let to_string f = Format.asprintf "%a" pp f

(* Structured accessors for refusal forensics: [rescheck explain] wants
   the clause ids a failure talks about and where it happened, without
   re-parsing the rendered message. *)
let rec ids = function
  | Malformed_trace _ | Missing_header | Header_mismatch _
  | Missing_final_conflict | Level0_var_unrecorded _ | Level0_duplicate_var _
  | Wrong_pivot _ | Hints_unsupported ->
    []
  | Unknown_clause u -> [ u.id ]
  | Duplicate_definition id
  | Shadows_original id
  | Empty_source_list id
  | Cyclic_definition id ->
    [ id ]
  | Forward_reference f -> [ f.id; f.source ]
  | No_clash n -> [ n.c1_id; n.c2_id ]
  | Multiple_clash m -> [ m.c1_id; m.c2_id ]
  | Final_literal_not_false f -> [ f.clause_id ]
  | Antecedent_mismatch a -> [ a.ante ]
  | Bad_delete_hint b -> [ b.id ]
  | Positioned p -> ids p.failure

let position = function
  | Positioned p -> Some p.pos
  | Malformed_trace { pos; _ } -> pos
  | _ -> None
