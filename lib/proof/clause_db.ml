type handle = int

exception Use_after_free of handle
exception Refcount_underflow of handle

(* Debug guards: when enabled, API entry points verify the handle still
   holds a reference, and releasing past zero raises instead of silently
   corrupting the freelist.  One flag read per clause-level operation (the
   per-literal [lit] accessor stays unguarded — it sits in the resolution
   kernel's innermost loop). *)
let debug = ref false
let set_debug b = debug := b
let debug_enabled () = !debug

type arena =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Per-clause layout at offset [h]:
     arena.{h}     length (also the slot's capacity)
     arena.{h+1}   reference count
     arena.{h+2..} sorted duplicate-free packed literals
   The meter is charged [len + clause_overhead] words per clause — the
   accounting the individual checkers used before the shared store, kept
   so the simulated-memory experiments stay comparable. *)
let header_words = 2
let clause_overhead = 3

type t = {
  mutable arena : arena;
  mutable top : int;                    (* bump pointer *)
  freelist : (int, int list) Hashtbl.t; (* capacity -> free offsets *)
  meter : Harness.Meter.t;
  mutable live : int;
  mutable peak_live : int;
  mutable allocated : int;
  mutable resident : int;               (* live arena words *)
  mutable peak_resident : int;
}

let make_arena n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

(* Virtual address space is cheap on 64-bit hosts: one large reservation
   up front makes growth-by-relocation a cold path instead of a steady
   doubling, which is what lets {!freeze} hand out stable views between
   wavefront barriers.  The pages are untouched until the bump pointer
   reaches them, so the reservation costs address space, not RSS; under a
   tight [ulimit -v] the allocation itself can fail, in which case the
   reservation halves until it fits (the doubling grower then covers the
   rest, exactly as before). *)
let default_reserve_words = 1 lsl 23 (* 8 Mi words = 64 MiB *)

let min_reserve_words = 1024

let m_reserved =
  Obs.Metrics.gauge Obs.Metrics.global "arena.reserved_bytes"

let note_reserved words =
  if Obs.Ctl.on () then
    Obs.Metrics.Gauge.set m_reserved (float_of_int (8 * words))

let rec reserve_arena words =
  if words <= min_reserve_words then make_arena min_reserve_words
  else
    match make_arena words with
    | arena -> arena
    | exception Out_of_memory ->
      if Obs.Journal.on () then
        Obs.Journal.record ~sub:"arena" "reserve_fallback"
          [ ("wanted_words", words); ("retry_words", words / 2) ];
      reserve_arena (words / 2)

let create ?meter ?(reserve = default_reserve_words) () =
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  let arena = reserve_arena (max min_reserve_words reserve) in
  note_reserved (Bigarray.Array1.dim arena);
  {
    arena;
    top = 0;
    freelist = Hashtbl.create 64;
    meter;
    live = 0;
    peak_live = 0;
    allocated = 0;
    resident = 0;
    peak_resident = 0;
  }

let meter db = db.meter

let reserved_words db = Bigarray.Array1.dim db.arena

let ensure_capacity db words =
  let cap = Bigarray.Array1.dim db.arena in
  if db.top + words > cap then begin
    let cap' = ref (cap * 2) in
    while db.top + words > !cap' do
      cap' := !cap' * 2
    done;
    let arena' = make_arena !cap' in
    Bigarray.Array1.blit db.arena (Bigarray.Array1.sub arena' 0 cap);
    db.arena <- arena';
    if Obs.Journal.on () then
      Obs.Journal.record ~sub:"arena" "grow"
        [ ("from_words", cap); ("to_words", !cap') ];
    (* the gauge tracks the current reservation, not a running sum — a
       relocation replaces the old region rather than adding to it *)
    note_reserved !cap'
  end

let slot db n =
  match Hashtbl.find_opt db.freelist n with
  | Some (h :: rest) ->
    (if rest = [] then Hashtbl.remove db.freelist n
     else Hashtbl.replace db.freelist n rest);
    h
  | Some [] | None ->
    ensure_capacity db (header_words + n);
    let h = db.top in
    db.top <- db.top + header_words + n;
    h

let account_alloc db n =
  (* the meter may refuse (simulated memory-out) — charge it first so a
     refused clause leaves the store untouched *)
  Harness.Meter.alloc db.meter (n + clause_overhead);
  db.live <- db.live + 1;
  if db.live > db.peak_live then db.peak_live <- db.live;
  db.allocated <- db.allocated + 1;
  db.resident <- db.resident + header_words + n;
  if db.resident > db.peak_resident then db.peak_resident <- db.resident

let alloc_sorted db buf n =
  account_alloc db n;
  let h = slot db n in
  db.arena.{h} <- n;
  db.arena.{h + 1} <- 1;
  for i = 0 to n - 1 do
    db.arena.{h + header_words + i} <- buf.(i)
  done;
  h

let alloc db c =
  let n = Array.length c in
  let buf = Array.make n 0 in
  Array.blit c 0 buf 0 n;
  Array.sort Int.compare buf;
  (* drop exact duplicates in place; both phases of a variable are
     distinct packed ints and are kept *)
  let k = ref 0 in
  for i = 0 to n - 1 do
    if !k = 0 || buf.(!k - 1) <> buf.(i) then begin
      buf.(!k) <- buf.(i);
      incr k
    end
  done;
  alloc_sorted db buf !k

let check_live db h =
  if !debug && db.arena.{h + 1} <= 0 then raise (Use_after_free h)

let size db h =
  check_live db h;
  db.arena.{h}

let lit db h i : Sat.Lit.t = db.arena.{h + header_words + i}

let lits db h =
  let n = size db h in
  Array.init n (fun i -> lit db h i)

let iter_lits db h f =
  let n = size db h in
  for i = 0 to n - 1 do
    f (lit db h i)
  done

let copy_lits db h dst =
  let n = size db h in
  if Array.length dst < n then
    invalid_arg "Clause_db.copy_lits: destination too small";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i db.arena.{h + header_words + i}
  done;
  n

let refcount db h = db.arena.{h + 1}

let retain db h =
  check_live db h;
  db.arena.{h + 1} <- db.arena.{h + 1} + 1

let release db h =
  if !debug && db.arena.{h + 1} <= 0 then raise (Refcount_underflow h);
  let rc = db.arena.{h + 1} - 1 in
  db.arena.{h + 1} <- rc;
  if rc <= 0 then begin
    let n = db.arena.{h} in
    Harness.Meter.free db.meter (n + clause_overhead);
    db.live <- db.live - 1;
    db.resident <- db.resident - (header_words + n);
    let free = Option.value ~default:[] (Hashtbl.find_opt db.freelist n) in
    Hashtbl.replace db.freelist n (h :: free)
  end

let live_clauses db = db.live
let peak_live_clauses db = db.peak_live
let clauses_allocated db = db.allocated
let live_words db = db.resident
let peak_words db = db.peak_resident

(* A frozen view pins the arena region and the bump pointer at freeze
   time.  Reads go straight to the shared region — no copies, no locks,
   no GC traffic — which is safe under the wavefront discipline: workers
   only read handles published before the freeze, and the coordinator
   only allocates/releases between freezes.  A (rare) relocation of a
   reservation-overflowing arena invalidates outstanding views, so the
   coordinator re-freezes at every dispatch. *)
type ro = {
  ro_arena : arena;
  ro_top : int;
}

let freeze db = { ro_arena = db.arena; ro_top = db.top }

let check_frozen ro h =
  if !debug && (h < 0 || h + header_words > ro.ro_top) then
    raise (Use_after_free h)

let ro_size ro h =
  check_frozen ro h;
  ro.ro_arena.{h}

let ro_lit ro h i : Sat.Lit.t = ro.ro_arena.{h + header_words + i}

let ro_copy_lits ro h dst =
  let n = ro_size ro h in
  if Array.length dst < n then
    invalid_arg "Clause_db.ro_copy_lits: destination too small";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i ro.ro_arena.{h + header_words + i}
  done;
  n
