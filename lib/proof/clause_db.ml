type handle = int

exception Use_after_free of handle
exception Refcount_underflow of handle

(* Debug guards: when enabled, API entry points verify the handle still
   holds a reference, and releasing past zero raises instead of silently
   corrupting the freelist.  One flag read per clause-level operation (the
   per-literal [lit] accessor stays unguarded — it sits in the resolution
   kernel's innermost loop). *)
let debug = ref false
let set_debug b = debug := b
let debug_enabled () = !debug

type arena =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Per-clause layout at offset [h]:
     arena.{h}     length (also the slot's capacity)
     arena.{h+1}   reference count
     arena.{h+2..} sorted duplicate-free packed literals
   The meter is charged [len + clause_overhead] words per clause — the
   accounting the individual checkers used before the shared store, kept
   so the simulated-memory experiments stay comparable. *)
let header_words = 2
let clause_overhead = 3

type t = {
  mutable arena : arena;
  mutable top : int;                    (* bump pointer *)
  freelist : (int, int list) Hashtbl.t; (* capacity -> free offsets *)
  meter : Harness.Meter.t;
  mutable live : int;
  mutable peak_live : int;
  mutable allocated : int;
  mutable resident : int;               (* live arena words *)
  mutable peak_resident : int;
}

let make_arena n = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let create ?meter () =
  let meter =
    match meter with Some m -> m | None -> Harness.Meter.create ()
  in
  {
    arena = make_arena 1024;
    top = 0;
    freelist = Hashtbl.create 64;
    meter;
    live = 0;
    peak_live = 0;
    allocated = 0;
    resident = 0;
    peak_resident = 0;
  }

let meter db = db.meter

let ensure_capacity db words =
  let cap = Bigarray.Array1.dim db.arena in
  if db.top + words > cap then begin
    let cap' = ref (cap * 2) in
    while db.top + words > !cap' do
      cap' := !cap' * 2
    done;
    let arena' = make_arena !cap' in
    Bigarray.Array1.blit db.arena (Bigarray.Array1.sub arena' 0 cap);
    db.arena <- arena'
  end

let slot db n =
  match Hashtbl.find_opt db.freelist n with
  | Some (h :: rest) ->
    (if rest = [] then Hashtbl.remove db.freelist n
     else Hashtbl.replace db.freelist n rest);
    h
  | Some [] | None ->
    ensure_capacity db (header_words + n);
    let h = db.top in
    db.top <- db.top + header_words + n;
    h

let account_alloc db n =
  (* the meter may refuse (simulated memory-out) — charge it first so a
     refused clause leaves the store untouched *)
  Harness.Meter.alloc db.meter (n + clause_overhead);
  db.live <- db.live + 1;
  if db.live > db.peak_live then db.peak_live <- db.live;
  db.allocated <- db.allocated + 1;
  db.resident <- db.resident + header_words + n;
  if db.resident > db.peak_resident then db.peak_resident <- db.resident

let alloc_sorted db buf n =
  account_alloc db n;
  let h = slot db n in
  db.arena.{h} <- n;
  db.arena.{h + 1} <- 1;
  for i = 0 to n - 1 do
    db.arena.{h + header_words + i} <- buf.(i)
  done;
  h

let alloc db c =
  let n = Array.length c in
  let buf = Array.make n 0 in
  Array.blit c 0 buf 0 n;
  Array.sort Int.compare buf;
  (* drop exact duplicates in place; both phases of a variable are
     distinct packed ints and are kept *)
  let k = ref 0 in
  for i = 0 to n - 1 do
    if !k = 0 || buf.(!k - 1) <> buf.(i) then begin
      buf.(!k) <- buf.(i);
      incr k
    end
  done;
  alloc_sorted db buf !k

let check_live db h =
  if !debug && db.arena.{h + 1} <= 0 then raise (Use_after_free h)

let size db h =
  check_live db h;
  db.arena.{h}

let lit db h i : Sat.Lit.t = db.arena.{h + header_words + i}

let lits db h =
  let n = size db h in
  Array.init n (fun i -> lit db h i)

let iter_lits db h f =
  let n = size db h in
  for i = 0 to n - 1 do
    f (lit db h i)
  done

let copy_lits db h dst =
  let n = size db h in
  if Array.length dst < n then
    invalid_arg "Clause_db.copy_lits: destination too small";
  for i = 0 to n - 1 do
    Array.unsafe_set dst i db.arena.{h + header_words + i}
  done;
  n

let refcount db h = db.arena.{h + 1}

let retain db h =
  check_live db h;
  db.arena.{h + 1} <- db.arena.{h + 1} + 1

let release db h =
  if !debug && db.arena.{h + 1} <= 0 then raise (Refcount_underflow h);
  let rc = db.arena.{h + 1} - 1 in
  db.arena.{h + 1} <- rc;
  if rc <= 0 then begin
    let n = db.arena.{h} in
    Harness.Meter.free db.meter (n + clause_overhead);
    db.live <- db.live - 1;
    db.resident <- db.resident - (header_words + n);
    let free = Option.value ~default:[] (Hashtbl.find_opt db.freelist n) in
    Hashtbl.replace db.freelist n (h :: free)
  end

let live_clauses db = db.live
let peak_live_clauses db = db.peak_live
let clauses_allocated db = db.allocated
let live_words db = db.resident
let peak_words db = db.peak_resident
