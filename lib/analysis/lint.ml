type severity =
  | Error
  | Warning

type code =
  | Parse
  | Missing_header
  | Duplicate_header
  | Header_dims
  | Event_before_header
  | Shadows_original
  | Duplicate_id
  | Nonmonotone_id
  | Empty_sources
  | Self_source
  | Bad_reference
  | Repeated_source
  | Var_out_of_range
  | Duplicate_level0
  | Bad_antecedent
  | Missing_conflict
  | Conflict_unknown
  | After_conflict
  | Formula_mismatch
  | Formula_var_range
  | Formula_duplicate_lit
  | Formula_tautology
  | Dead_derivation
  | Duplicate_derivation
  | Singleton_chain
  | Dangling_delete
  | Duplicate_delete
  | Use_after_delete
  | Chain_no_clash
  | Chain_multi_clash
  | Redundant_derivation

let code_id = function
  | Parse -> "L001"
  | Missing_header -> "L002"
  | Duplicate_header -> "L003"
  | Header_dims -> "L004"
  | Event_before_header -> "L005"
  | Shadows_original -> "L101"
  | Duplicate_id -> "L102"
  | Nonmonotone_id -> "L103"
  | Empty_sources -> "L104"
  | Self_source -> "L105"
  | Bad_reference -> "L106"
  | Repeated_source -> "L107"
  | Var_out_of_range -> "L201"
  | Duplicate_level0 -> "L202"
  | Bad_antecedent -> "L203"
  | Missing_conflict -> "L301"
  | Conflict_unknown -> "L302"
  | After_conflict -> "L303"
  | Formula_mismatch -> "L401"
  | Formula_var_range -> "L402"
  | Formula_duplicate_lit -> "L403"
  | Formula_tautology -> "L404"
  | Dead_derivation -> "L501"
  | Duplicate_derivation -> "L502"
  | Singleton_chain -> "L503"
  | Dangling_delete -> "L601"
  | Duplicate_delete -> "L602"
  | Use_after_delete -> "L603"
  | Chain_no_clash -> "L701"
  | Chain_multi_clash -> "L702"
  | Redundant_derivation -> "L703"

(* One paragraph per stable L-code, keyed by the printed id so [explain]
   can document a refusal without knowing the variant.  The first string
   is a short title, the second what the condition means and what
   usually causes it. *)
let code_doc id =
  let d title text = Some (title, text) in
  match id with
  | "L001" ->
    d "parse error"
      "The record at this position is not a well-formed trace line: \
       unknown keyword, malformed integer, or a truncated binary record. \
       Usually a corrupted or truncated trace file, or mismatched \
       encoding/version detection."
  | "L002" ->
    d "missing header"
      "The trace carries no problem header, so clause ids cannot be \
       split into originals and learned clauses."
  | "L003" -> d "duplicate header" "More than one problem header appears."
  | "L004" ->
    d "header dimensions mismatch"
      "The header's variable or clause counts disagree with the DIMACS \
       formula the trace is checked against."
  | "L005" ->
    d "event before header"
      "A derivation record precedes the problem header; ids cannot be \
       classified yet."
  | "L101" ->
    d "learned id shadows an original"
      "A learned clause reuses an id in the original-clause range. Ids \
       must be disjoint: originals first, learned clauses above them."
  | "L102" ->
    d "duplicate learned id"
      "Two learned clauses define the same id; every derivation must \
       have a unique name."
  | "L103" ->
    d "non-monotone learned id"
      "Learned ids do not increase in stream order. Checkers tolerate \
       this but it usually signals a reordered or interleaved trace."
  | "L104" ->
    d "empty source list"
      "A learned clause lists no antecedents; a resolution chain needs \
       at least two sources."
  | "L105" ->
    d "self-referential source"
      "A learned clause lists itself among its sources."
  | "L106" ->
    d "unknown source id"
      "A source id names a clause that is neither an original (per the \
       header) nor a previously defined learned clause. Typically a \
       truncated prefix, a deleted clause, or a corrupted id."
  | "L107" ->
    d "repeated source"
      "The same id appears more than once in one source list; harmless \
       to resolution but usually a generator bug."
  | "L201" ->
    d "level-0 variable out of range"
      "A level-0 assignment names a variable outside the header's range."
  | "L202" ->
    d "duplicate level-0 assignment"
      "The same variable is assigned at level 0 twice."
  | "L203" ->
    d "bad level-0 antecedent"
      "A level-0 assignment cites an antecedent clause that is not \
       defined at that point."
  | "L301" ->
    d "missing final conflict"
      "The trace ends without a final conflict record; an UNSAT proof \
       must name the clause whose literals are all false at level 0."
  | "L302" ->
    d "final conflict names unknown clause"
      "The final conflict record cites an id that was never defined."
  | "L303" ->
    d "events after final conflict"
      "Records follow the final conflict; they are dead weight and \
       usually indicate a concatenated or truncated-then-resumed trace."
  | "L401" ->
    d "original clause mismatch"
      "An original clause in the trace disagrees with the DIMACS \
       formula at the same id — wrong formula for this trace."
  | "L402" ->
    d "formula variable out of range"
      "The DIMACS formula uses a variable beyond its declared count."
  | "L403" ->
    d "duplicate literal in formula clause"
      "A formula clause repeats a literal (normalized away, but noted)."
  | "L404" ->
    d "tautological formula clause"
      "A formula clause contains a literal and its negation."
  | "L501" ->
    d "dead derivation"
      "The learned clause is never used on any path to the final \
       conflict; trimming would remove it."
  | "L502" ->
    d "duplicate derivation"
      "Two learned clauses derive the same literal set; the later one \
       is redundant."
  | "L503" ->
    d "singleton chain"
      "A derivation lists exactly one source — a copy, not a resolution."
  | "L601" ->
    d "dangling delete hint"
      "A delete hint names an id that is not live at that point: never \
       defined, or already deleted."
  | "L602" ->
    d "duplicate delete hint"
      "The same id is deleted twice with no intervening definition."
  | "L603" ->
    d "use after delete"
      "A source list cites a clause after a delete hint removed it. A \
       one-pass hinted checker must refuse this; the hint generator is \
       deleting too eagerly."
  | "L701" ->
    d "chain has no clashing pair"
      "Simulating the resolution chain found two adjacent resolvents \
       with no complementary literal — the chain cannot resolve."
  | "L702" ->
    d "chain has multiple clashing pairs"
      "Two chain clauses clash on more than one variable; resolution on \
       either pivot leaves a tautology, so the chain is ambiguous."
  | "L703" ->
    d "redundant derivation"
      "The simulated chain result is subsumed by an existing clause; \
       the derivation adds nothing."
  | _ -> None

let severity_of = function
  | Nonmonotone_id | Repeated_source | After_conflict | Formula_duplicate_lit
  | Formula_tautology | Dead_derivation | Duplicate_derivation
  | Singleton_chain | Redundant_derivation ->
    Warning
  | Parse | Missing_header | Duplicate_header | Header_dims
  | Event_before_header | Shadows_original | Duplicate_id | Empty_sources
  | Self_source | Bad_reference | Var_out_of_range | Duplicate_level0
  | Bad_antecedent | Missing_conflict | Conflict_unknown | Formula_mismatch
  | Formula_var_range | Dangling_delete | Duplicate_delete | Use_after_delete
  | Chain_no_clash | Chain_multi_clash ->
    Error

type diagnostic = {
  code : code;
  pos : Trace.Reader.pos;
  message : string;
}

type report = {
  binary : bool;
  events : int;
  learned : int;
  level0 : int;
  errors : int;
  warnings : int;
  diagnostics : diagnostic list;
  dropped : int;
  by_code : (string * int) list;
}

let clean r = r.errors = 0

(* --- linter state ------------------------------------------------------- *)

type state = {
  cap : int;
  mutable diags : diagnostic list;      (* reverse stream order *)
  mutable kept : int;
  mutable n_dropped : int;
  mutable n_errors : int;
  mutable n_warnings : int;
  code_counts : (string, int) Hashtbl.t;  (* code id -> count, uncapped *)
  mutable n_events : int;
  mutable n_learned : int;
  mutable n_level0 : int;
  (* trace structure *)
  mutable header : (int * int) option;  (* nvars, num_original *)
  mutable pre_header_reported : bool;
  mutable last_learned_id : int;
  defined : (int, unit) Hashtbl.t;      (* learned ids, stream order *)
  level0_vars : (int, unit) Hashtbl.t;
  deleted : (int, unit) Hashtbl.t;      (* ids named by delete hints *)
  mutable conflict_seen : bool;
  mutable after_conflict_reported : bool;
  (* normalized original clauses ([None] = tautological), id-1 indexed;
     empty without a formula.  Feeds the L7xx chain simulation. *)
  originals : Sat.Clause.t option array;
  orig_keys : (string, int) Hashtbl.t;  (* normalized-clause key -> id *)
}

(* Canonical key of a normalized clause: [Clause.normalize] sorts
   literals, so equal clause sets render identically. *)
let clause_key c =
  String.concat "," (List.map string_of_int (Sat.Clause.to_ints c))

(* Telemetry handles; updates are guarded at the few lint hot points. *)
let m_events = Obs.Metrics.counter Obs.Metrics.global "lint.events"
let m_errors = Obs.Metrics.counter Obs.Metrics.global "lint.errors"
let m_warnings = Obs.Metrics.counter Obs.Metrics.global "lint.warnings"

let count_code counts code =
  let id = code_id code in
  let n = try Hashtbl.find counts id with Not_found -> 0 in
  Hashtbl.replace counts id (n + 1)

(* [code_counts counts] seals a per-code count table into the sorted
   association list reports carry.  Shared with [Dag], whose semantic
   diagnostics flow through the same machinery. *)
let code_counts counts =
  Hashtbl.fold (fun id n acc -> (id, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let emit st pos code fmt =
  Printf.ksprintf
    (fun message ->
      count_code st.code_counts code;
      (match severity_of code with
       | Error ->
         st.n_errors <- st.n_errors + 1;
         if Obs.Ctl.on () then Obs.Metrics.Counter.incr m_errors 1
       | Warning ->
         st.n_warnings <- st.n_warnings + 1;
         if Obs.Ctl.on () then Obs.Metrics.Counter.incr m_warnings 1);
      if st.kept < st.cap then begin
        st.diags <- { code; pos; message } :: st.diags;
        st.kept <- st.kept + 1
      end
      else st.n_dropped <- st.n_dropped + 1)
    fmt

(* A reference is resolvable when it names an original clause or a learned
   clause already defined upstream.  Stream-order referencing makes the
   resolve-source graph acyclic by construction, which is exactly the
   discipline the solver's emission order guarantees and the breadth-first
   checker requires. *)
let resolvable st id =
  id >= 1
  && ((match st.header with
       | Some (_, norig) -> id <= norig
       | None -> false)
     || Hashtbl.mem st.defined id)

let check_header st pos (h : int * int) =
  let nvars, norig = h in
  (match st.header with
   | Some _ -> emit st pos Duplicate_header "second header record"
   | None -> st.header <- Some h);
  if nvars <= 0 || norig <= 0 then
    emit st pos Header_dims "header declares %d variables, %d original clauses"
      nvars norig

let check_learned st pos id sources =
  st.n_learned <- st.n_learned + 1;
  let norig = match st.header with Some (_, n) -> n | None -> 0 in
  let duplicate = Hashtbl.mem st.defined id in
  if id <= norig then
    emit st pos Shadows_original
      "learned-clause id %d lies in the original range 1..%d" id norig
  else if duplicate then
    emit st pos Duplicate_id "learned-clause id %d defined twice" id
  else if id <= st.last_learned_id then
    emit st pos Nonmonotone_id
      "learned-clause id %d not above the previous one (%d)" id
      st.last_learned_id;
  if Array.length sources = 0 then
    emit st pos Empty_sources "learned clause %d has no resolve sources" id;
  let repeated = ref false in
  Array.iteri
    (fun i s ->
      if s = id then
        emit st pos Self_source "clause %d lists itself as a source" id
      else if not (resolvable st s) then
        emit st pos Bad_reference
          "clause %d references source %d, which is neither an original \
           clause nor a learned clause defined upstream"
          id s
      else if Hashtbl.mem st.deleted s then
        emit st pos Use_after_delete
          "clause %d resolves with source %d after its delete hint" id s;
      if (not !repeated) && i > 0 && sources.(i - 1) = s then begin
        repeated := true;
        emit st pos Repeated_source
          "clause %d resolves with source %d twice in a row" id s
      end)
    sources;
  (* define even a flawed id: downstream references to it are not the
     record to blame *)
  if not duplicate then Hashtbl.replace st.defined id ();
  if id > st.last_learned_id then st.last_learned_id <- id;
  (* L7xx: a chain whose sources are all original clauses — the shape the
     proof-emitting simplifier produces — is fully simulable from the
     formula alone, with no clause database: replay it left to right and
     flag steps the resolution kernel would refuse (no clashing variable,
     or several).  Chains touching learned sources are skipped: their
     rebuilt clauses may carry level-0 literals the stream does not show.
     Tautological originals are skipped too (already L404). *)
  let n_orig_known = Array.length st.originals in
  if
    n_orig_known > 0
    && Array.length sources >= 2
    && Array.for_all (fun s -> s >= 1 && s <= n_orig_known) sources
    && Array.for_all (fun s -> st.originals.(s - 1) <> None) sources
  then begin
    let get s = Option.get st.originals.(s - 1) in
    let acc = ref (get sources.(0)) in
    let step_ok = ref true in
    let i = ref 1 in
    while !step_ok && !i < Array.length sources do
      let s = sources.(!i) in
      let c = get s in
      (match Sat.Clause.clashing_vars !acc c with
       | [ v ] -> acc := Sat.Clause.resolve !acc c v
       | [] ->
         step_ok := false;
         emit st pos Chain_no_clash
           "clause %d: chain step %d resolves against original clause %d \
            with no clashing variable"
           id !i s
       | _ :: _ :: _ ->
         step_ok := false;
         emit st pos Chain_multi_clash
           "clause %d: chain step %d resolves against original clause %d \
            with more than one clashing variable (tautological resolvent)"
           id !i s);
      incr i
    done;
    if !step_ok then
      match Sat.Clause.normalize !acc with
      | None -> ()
      | Some r -> (
        match Hashtbl.find_opt st.orig_keys (clause_key r) with
        | Some oid ->
          emit st pos Redundant_derivation
            "clause %d rederives original clause %d verbatim" id oid
        | None -> ())
  end

let check_level0 st pos var ante =
  st.n_level0 <- st.n_level0 + 1;
  (match st.header with
   | Some (nvars, _) ->
     if var < 1 || var > nvars then
       emit st pos Var_out_of_range
         "level-0 record for variable %d, outside 1..%d" var nvars
   | None -> ());
  if Hashtbl.mem st.level0_vars var then
    emit st pos Duplicate_level0 "variable %d has two level-0 records" var
  else Hashtbl.replace st.level0_vars var ();
  if not (resolvable st ante) then
    emit st pos Bad_antecedent
      "level-0 record for variable %d names undefined antecedent %d" var ante
  else if Hashtbl.mem st.deleted ante then
    emit st pos Use_after_delete
      "level-0 record for variable %d names antecedent %d after its delete \
       hint"
      var ante

let check_conflict st pos id =
  if not (resolvable st id) then
    emit st pos Conflict_unknown
      "final conflict references undefined clause %d" id
  else if Hashtbl.mem st.deleted id then
    emit st pos Use_after_delete
      "final conflict references clause %d after its delete hint" id;
  st.conflict_seen <- true

(* Delete-hint records (format version 2, L6xx): each listed id must name
   a clause that is currently live — defined upstream and not already
   deleted.  A hint that is merely premature (the clause is used again
   later) surfaces at the use site as [Use_after_delete]. *)
let check_delete st pos ids =
  Array.iter
    (fun id ->
      if not (resolvable st id) then
        emit st pos Dangling_delete
          "delete hint names clause %d, which is neither an original clause \
           nor a learned clause defined upstream"
          id
      else if Hashtbl.mem st.deleted id then
        emit st pos Duplicate_delete "clause %d deleted twice" id
      else Hashtbl.replace st.deleted id ())
    ids

let handle_event st pos (e : Trace.Event.t) =
  st.n_events <- st.n_events + 1;
  if Obs.Ctl.on () then Obs.Metrics.Counter.incr m_events 1;
  if st.conflict_seen && not st.after_conflict_reported then begin
    st.after_conflict_reported <- true;
    emit st pos After_conflict "records continue after the final conflict"
  end;
  (match e, st.header with
   | Trace.Event.Header _, _ | _, Some _ -> ()
   | _, None ->
     if not st.pre_header_reported then begin
       st.pre_header_reported <- true;
       emit st pos Event_before_header "record precedes the trace header"
     end);
  match e with
  | Trace.Event.Header h -> check_header st pos (h.nvars, h.num_original)
  | Trace.Event.Learned l -> check_learned st pos l.id l.sources
  | Trace.Event.Level0 v -> check_level0 st pos v.var v.ante
  | Trace.Event.Final_conflict id -> check_conflict st pos id
  | Trace.Event.Delete ids -> check_delete st pos ids

(* Formula-side lint (L4xx): the trace proves the *formula* unsat, so
   degenerate original clauses — out-of-range, duplicate or tautological
   literals — are corruption the replay would only surface indirectly. *)
let check_formula st pos f =
  let nvars = Sat.Cnf.nvars f in
  Sat.Cnf.iter_clauses
    (fun i c ->
      let id = i + 1 in
      let seen_lit = Hashtbl.create 8 in
      let dup = ref false and taut = ref false in
      Array.iter
        (fun l ->
          let v = Sat.Lit.var l in
          if v < 1 || v > nvars then
            emit st pos Formula_var_range
              "formula clause %d mentions variable %d, outside 1..%d" id v
              nvars;
          if (not !dup) && Hashtbl.mem seen_lit l then begin
            dup := true;
            emit st pos Formula_duplicate_lit
              "formula clause %d repeats literal %s" id (Sat.Lit.to_string l)
          end;
          if (not !taut) && Hashtbl.mem seen_lit (Sat.Lit.negate l) then begin
            taut := true;
            emit st pos Formula_tautology
              "formula clause %d is tautological on variable %d" id v
          end;
          Hashtbl.replace seen_lit l ())
        c)
    f

let check_formula_header st pos f =
  match st.header with
  | None -> ()
  | Some (nvars, norig) ->
    if nvars <> Sat.Cnf.nvars f || norig <> Sat.Cnf.nclauses f then
      emit st pos Formula_mismatch
        "trace header (%d vars, %d clauses) disagrees with the formula \
         (%d vars, %d clauses)"
        nvars norig (Sat.Cnf.nvars f) (Sat.Cnf.nclauses f)

(* The linter as an incremental stream: events (or parse errors) are fed
   one at a time, so the same diagnostics accumulate whether the trace is
   decoded from a file or observed live as the solver emits it.  The
   formula cross-checks run up front ([stream_start]) and at the end
   ([stream_finish]), exactly as the one-shot [run] always did. *)

type stream = {
  st : state;
  s_binary : bool;
  s_formula : Sat.Cnf.t option;
  mutable end_pos : Trace.Reader.pos;  (* where the last fed record started *)
}

let stream_start ?formula ?(max_diagnostics = 100) ~binary () =
  let originals, orig_keys =
    match formula with
    | None -> ([||], Hashtbl.create 1)
    | Some f ->
      let arr = Array.make (Sat.Cnf.nclauses f) None in
      let keys = Hashtbl.create (2 * Sat.Cnf.nclauses f + 1) in
      Sat.Cnf.iter_clauses
        (fun i c ->
          match Sat.Clause.normalize c with
          | None -> ()
          | Some n ->
            arr.(i) <- Some n;
            (* first definition wins: duplicates report the earliest id *)
            let k = clause_key n in
            if not (Hashtbl.mem keys k) then Hashtbl.add keys k (i + 1))
        f;
      (arr, keys)
  in
  let st = {
    cap = max max_diagnostics 0;
    diags = [];
    kept = 0;
    n_dropped = 0;
    n_errors = 0;
    n_warnings = 0;
    code_counts = Hashtbl.create 16;
    n_events = 0;
    n_learned = 0;
    n_level0 = 0;
    header = None;
    pre_header_reported = false;
    last_learned_id = 0;
    defined = Hashtbl.create 1024;
    level0_vars = Hashtbl.create 256;
    deleted = Hashtbl.create 256;
    conflict_seen = false;
    after_conflict_reported = false;
    originals;
    orig_keys;
  } in
  let origin = if binary then Trace.Reader.Byte 0 else Trace.Reader.Line 0 in
  (match formula with
   | Some f -> check_formula st origin f
   | None -> ());
  {
    st;
    s_binary = binary;
    s_formula = formula;
    (* matches a fresh cursor's [last_pos]: byte 4 is right behind the
       binary magic *)
    end_pos = (if binary then Trace.Reader.Byte 4 else Trace.Reader.Line 1);
  }

let stream_event t pos e =
  t.end_pos <- pos;
  handle_event t.st pos e

let stream_parse_error t pos msg =
  t.end_pos <- pos;
  emit t.st pos Parse "%s" msg

let stream_finish ?end_pos t =
  let st = t.st in
  let end_pos = match end_pos with Some p -> p | None -> t.end_pos in
  (match st.header with
   | None -> emit st end_pos Missing_header "trace has no header record"
   | Some _ -> ());
  (match t.s_formula with
   | Some f -> check_formula_header st end_pos f
   | None -> ());
  if not st.conflict_seen then
    emit st end_pos Missing_conflict
      "trace ends without a final-conflict record";
  {
    binary = t.s_binary;
    events = st.n_events;
    learned = st.n_learned;
    level0 = st.n_level0;
    errors = st.n_errors;
    warnings = st.n_warnings;
    diagnostics = List.rev st.diags;
    dropped = st.n_dropped;
    by_code = code_counts st.code_counts;
  }

let sink ?downstream t ~pos =
  Trace.Sink.make
    ~close:(fun () ->
      match downstream with Some s -> Trace.Sink.close s | None -> ())
    (fun e ->
      stream_event t (pos ()) e;
      match downstream with Some s -> Trace.Sink.push s e | None -> ())

let run ?format ?io ?formula ?max_diagnostics source =
  Obs.Span.scope ~cat:"lint" "lint.run" @@ fun () ->
  let cur = Trace.Reader.cursor ?format ?io source in
  let binary = Trace.Reader.is_binary_cursor cur in
  let t = stream_start ?formula ?max_diagnostics ~binary () in
  let running = ref true in
  while !running do
    match Trace.Reader.next cur with
    | Some e -> stream_event t (Trace.Reader.last_pos cur) e
    | None -> running := false
    | exception Trace.Reader.Parse_error { pos; msg } ->
      stream_parse_error t pos msg;
      (* ASCII resynchronises on the next line; binary records have no
         framing to recover with, so the pass ends here *)
      if binary then running := false
  done;
  let report = stream_finish ~end_pos:(Trace.Reader.last_pos cur) t in
  Trace.Reader.close cur;
  report

(* --- rendering ---------------------------------------------------------- *)

let severity_string = function Error -> "error" | Warning -> "warning"

let pp_diagnostic fmt d =
  Format.fprintf fmt "%s %s at %a: %s"
    (severity_string (severity_of d.code))
    (code_id d.code) Trace.Reader.pp_pos d.pos d.message

let pp fmt r =
  List.iter (fun d -> Format.fprintf fmt "%a@," pp_diagnostic d) r.diagnostics;
  if r.dropped > 0 then
    Format.fprintf fmt "... %d further diagnostics dropped@," r.dropped;
  Format.fprintf fmt
    "trace lint: %s format, %d events (%d learned, %d level-0), %d errors, \
     %d warnings"
    (if r.binary then "binary" else "ascii")
    r.events r.learned r.level0 r.errors r.warnings

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let by_code_json by_code =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (id, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" id n))
    by_code;
  Buffer.add_char buf '}';
  Buffer.contents buf

let diagnostics_json diagnostics =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      let where =
        match d.pos with
        | Trace.Reader.Line n -> Printf.sprintf "\"line\":%d" n
        | Trace.Reader.Byte n -> Printf.sprintf "\"byte\":%d" n
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"code\":\"%s\",\"severity\":\"%s\",%s,\"message\":\"%s\"}"
           (code_id d.code)
           (severity_string (severity_of d.code))
           where (json_escape d.message)))
    diagnostics;
  Buffer.add_char buf ']';
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"format\":\"%s\",\"events\":%d,\"learned\":%d,\"level0\":%d,\
        \"errors\":%d,\"warnings\":%d,\"dropped\":%d,\"by_code\":%s,\
        \"diagnostics\":%s}"
       (if r.binary then "binary" else "ascii")
       r.events r.learned r.level0 r.errors r.warnings r.dropped
       (by_code_json r.by_code)
       (diagnostics_json r.diagnostics));
  Buffer.contents buf
