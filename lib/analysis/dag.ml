type peaks = {
  df : int;
  bf : int;
  hybrid : int;
  par : int;
  online : int;
}

type hist = (int * int) list

type profile = {
  binary : bool;
  events : int;
  learned : int;
  level0 : int;
  nvars : int;
  originals : int;
  conflict_id : int;
  topological : bool;
  forward_refs : int;
  dangling_refs : int;
  reachable_learned : int;
  dead_learned : int;
  core_originals : int;
  duplicate_derivations : int;
  singleton_chains : int;
  max_depth : int;
  depth_hist : hist;
  max_width : int;
  widest_depth : int;
  max_fanin : int;
  total_arcs : int;
  lifetime_max : int;
  lifetime_mean : float;
  lifetime_hist : hist;
  first_gap_max : int;
  first_gap_mean : float;
  predicted_peak_live : peaks;
  warnings : int;
  dropped : int;
  by_code : (string * int) list;
  diagnostics : Lint.diagnostic list;
}

type error = {
  pos : Trace.Reader.pos;
  message : string;
}

(* --- growable int arrays ------------------------------------------------- *)

(* The whole analysis state lives in a few of these: flat int storage, no
   per-record boxing, so memory stays a small constant times the number of
   clause ids plus antecedent arcs — the property the dag.table_bytes
   gauge reports and the acceptance test bounds. *)
type ibuf = {
  mutable a : int array;
  mutable n : int;
}

let ibuf_create cap = { a = Array.make (max cap 16) 0; n = 0 }

let ibuf_push b x =
  if b.n = Array.length b.a then begin
    let a' = Array.make (2 * Array.length b.a) 0 in
    Array.blit b.a 0 a' 0 b.n;
    b.a <- a'
  end;
  b.a.(b.n) <- x;
  b.n <- b.n + 1

let ibuf_get b i = b.a.(i)

(* --- telemetry ----------------------------------------------------------- *)

let m_records = Obs.Metrics.counter Obs.Metrics.global "dag.records"
let m_dead = Obs.Metrics.counter Obs.Metrics.global "dag.dead_derivations"

let m_duplicates =
  Obs.Metrics.counter Obs.Metrics.global "dag.duplicate_derivations"

let m_trim_kept = Obs.Metrics.counter Obs.Metrics.global "dag.trim_kept"
let m_trim_dropped = Obs.Metrics.counter Obs.Metrics.global "dag.trim_dropped"
let g_ids = Obs.Metrics.gauge Obs.Metrics.global "dag.tracked_ids"
let g_bytes = Obs.Metrics.gauge Obs.Metrics.global "dag.table_bytes"

(* --- streaming state ----------------------------------------------------- *)

type stream = {
  cap : int;
  s_binary : bool;
  mutable err : error option;  (* first structural defect, if any *)
  mutable end_pos : Trace.Reader.pos;
  mutable n_events : int;
  mutable n_learned : int;
  mutable n_level0 : int;
  mutable header : (int * int) option;  (* nvars, num_original *)
  slot_of_id : (int, int) Hashtbl.t;    (* learned id -> slot *)
  ids : ibuf;   (* slot -> clause id *)
  ord : ibuf;   (* slot -> record ordinal of the definition *)
  dpos : ibuf;  (* slot -> definition position (line or byte) *)
  off : ibuf;   (* slot -> offset into [arcs] *)
  len : ibuf;   (* slot -> source count *)
  arcs : ibuf;  (* flattened antecedent ids *)
  l0_ante : ibuf;  (* pre-conflict level-0 antecedent ids *)
  l0_ord : ibuf;
  mutable conflict : (int * int * int) option;  (* id, ordinal, position *)
}

let pos_int = function
  | Trace.Reader.Line n -> n
  | Trace.Reader.Byte n -> n

let pos_of t n = if t.s_binary then Trace.Reader.Byte n else Trace.Reader.Line n

let stream_start ?(max_diagnostics = 100) ~binary () =
  {
    cap = max max_diagnostics 0;
    s_binary = binary;
    err = None;
    end_pos = (if binary then Trace.Reader.Byte 4 else Trace.Reader.Line 1);
    n_events = 0;
    n_learned = 0;
    n_level0 = 0;
    header = None;
    slot_of_id = Hashtbl.create 1024;
    ids = ibuf_create 1024;
    ord = ibuf_create 1024;
    dpos = ibuf_create 1024;
    off = ibuf_create 1024;
    len = ibuf_create 1024;
    arcs = ibuf_create 4096;
    l0_ante = ibuf_create 64;
    l0_ord = ibuf_create 64;
    conflict = None;
  }

let fail t pos fmt =
  Printf.ksprintf
    (fun message -> if t.err = None then t.err <- Some { pos; message })
    fmt

let stream_event t pos (e : Trace.Event.t) =
  t.end_pos <- pos;
  match t.err with
  | Some _ -> ()
  | None ->
    let ordinal = t.n_events in
    t.n_events <- ordinal + 1;
    if Obs.Ctl.on () then Obs.Metrics.Counter.incr m_records 1;
    (match e, t.header with
     | Trace.Event.Header _, _ | _, Some _ -> ()
     | _, None -> fail t pos "record precedes the trace header");
    (match e with
     | Trace.Event.Header h ->
       (match t.header with
        | Some _ -> fail t pos "second header record"
        | None ->
          if h.nvars <= 0 || h.num_original <= 0 then
            fail t pos "header declares %d variables, %d original clauses"
              h.nvars h.num_original
          else t.header <- Some (h.nvars, h.num_original))
     | Trace.Event.Learned { id; sources } ->
       t.n_learned <- t.n_learned + 1;
       let norig = match t.header with Some (_, n) -> n | None -> 0 in
       if id <= norig then
         fail t pos "learned-clause id %d lies in the original range 1..%d" id
           norig
       else if Hashtbl.mem t.slot_of_id id then
         fail t pos "learned-clause id %d defined twice" id
       else begin
         Hashtbl.replace t.slot_of_id id t.ids.n;
         ibuf_push t.ids id;
         ibuf_push t.ord ordinal;
         ibuf_push t.dpos (pos_int pos);
         ibuf_push t.off t.arcs.n;
         ibuf_push t.len (Array.length sources);
         Array.iter (fun s -> ibuf_push t.arcs s) sources
       end
     | Trace.Event.Level0 { ante; _ } ->
       t.n_level0 <- t.n_level0 + 1;
       (* roots of the reachability closure — but only while the proof is
          still in progress: trailing level-0 records after the conflict
          are dropped by the trimmer and must not revive dead clauses *)
       if t.conflict = None then begin
         ibuf_push t.l0_ante ante;
         ibuf_push t.l0_ord ordinal
       end
     | Trace.Event.Final_conflict id ->
       if t.conflict = None then
         t.conflict <- Some (id, ordinal, pos_int pos)
     | Trace.Event.Delete _ ->
       (* deletion hints are memory advice, not proof structure: they do
          not affect reachability, lifetimes, or the predicted peaks *)
       ())

let sink t ~pos = Trace.Sink.make (fun e -> stream_event t (pos ()) e)

(* --- sealing the analysis ------------------------------------------------ *)

let hist_of_values values =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun v ->
      let b = Obs.Metrics.Histogram.bucket_index v in
      let n = try Hashtbl.find tbl b with Not_found -> 0 in
      Hashtbl.replace tbl b (n + 1))
    values;
  Hashtbl.fold (fun b n acc -> (b, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Peak of the refcount-zero deletion schedule: each selected clause is
   resident from its defining record to its last use (a never-used clause
   is built and freed within its own record), so the peak is the maximum
   overlap of those intervals — a diff-array sweep over record ordinals. *)
let sweep_peak ~n_events ~selected ~ord_of ~last_use_of count =
  let diff = Array.make (n_events + 2) 0 in
  for i = 0 to count - 1 do
    if selected i then begin
      let s = ord_of i in
      let e = max s (last_use_of i) in
      diff.(s) <- diff.(s) + 1;
      diff.(e + 1) <- diff.(e + 1) - 1
    end
  done;
  let live = ref 0 and peak = ref 0 in
  Array.iter
    (fun d ->
      live := !live + d;
      if !live > !peak then peak := !live)
    diff;
  !peak

(* [finish_internal] seals the stream and additionally returns the
   reachability predicate over learned ids, which the trimmer's second
   pass filters with. *)
let finish_internal ?end_pos t =
  let end_pos = match end_pos with Some p -> p | None -> t.end_pos in
  match t.err with
  | Some e -> Error e
  | None ->
    (match t.header, t.conflict with
     | None, _ -> Error { pos = end_pos; message = "trace has no header record" }
     | _, None ->
       Error
         {
           pos = end_pos;
           message = "trace ends without a final-conflict record";
         }
     | Some (nvars, norig), Some (conflict_id, conflict_ord, conflict_pos) ->
       let n = t.ids.n in
       let defined id =
         id >= 1 && (id <= norig || Hashtbl.mem t.slot_of_id id)
       in
       if not (defined conflict_id) then
         Error
           {
             pos = pos_of t conflict_pos;
             message =
               Printf.sprintf "final conflict references undefined clause %d"
                 conflict_id;
           }
       else begin
         let slot id = Hashtbl.find_opt t.slot_of_id id in
         (* -- pass over the arcs: reference classes, depth, uses -------- *)
         let forward_refs = ref 0 and dangling_refs = ref 0 in
         let depth = Array.make (max n 1) 0 in
         let last_use = Array.make (max n 1) (-1) in
         let first_use = Array.make (max n 1) max_int in
         let use ~ordinal j =
           if ordinal > last_use.(j) then last_use.(j) <- ordinal;
           if ordinal < first_use.(j) then first_use.(j) <- ordinal
         in
         let classify ~ordinal ~def_slot s =
           (* [def_slot] is the slot being defined, or [-1] for level-0 /
              conflict reference sites *)
           if s >= 1 && s <= norig then ()
           else
             match slot s with
             | None -> incr dangling_refs
             | Some j ->
               if def_slot >= 0 && j >= def_slot then incr forward_refs
               else if def_slot < 0 && ibuf_get t.ord j > ordinal then
                 incr forward_refs
               else use ~ordinal j
         in
         for i = 0 to n - 1 do
           let o = ibuf_get t.off i and l = ibuf_get t.len i in
           let ordinal = ibuf_get t.ord i in
           let d = ref 0 in
           for k = o to o + l - 1 do
             let s = ibuf_get t.arcs k in
             classify ~ordinal ~def_slot:i s;
             (match slot s with
              | Some j when j < i -> if depth.(j) > !d then d := depth.(j)
              | Some _ | None -> ())
           done;
           depth.(i) <- !d + 1
         done;
         for k = 0 to t.l0_ante.n - 1 do
           classify ~ordinal:(ibuf_get t.l0_ord k) ~def_slot:(-1)
             (ibuf_get t.l0_ante k)
         done;
         classify ~ordinal:conflict_ord ~def_slot:(-1) conflict_id;
         (* -- backward reachability from the conflict + level-0 roots -- *)
         let reach = Array.make (max n 1) false in
         let orig_used = Array.make (norig + 1) false in
         let stack = ref [] in
         let root id =
           if id >= 1 && id <= norig then orig_used.(id) <- true
           else
             match slot id with
             | Some j when not reach.(j) ->
               reach.(j) <- true;
               stack := j :: !stack
             | Some _ | None -> ()
         in
         root conflict_id;
         for k = 0 to t.l0_ante.n - 1 do
           root (ibuf_get t.l0_ante k)
         done;
         while !stack <> [] do
           match !stack with
           | [] -> ()
           | i :: rest ->
             stack := rest;
             let o = ibuf_get t.off i and l = ibuf_get t.len i in
             for k = o to o + l - 1 do
               root (ibuf_get t.arcs k)
             done
         done;
         let reachable_learned = ref 0 in
         Array.iteri (fun i r -> if r && i < n then incr reachable_learned)
           reach;
         let reachable_learned = !reachable_learned in
         let core_originals = ref 0 in
         Array.iter (fun u -> if u then incr core_originals) orig_used;
         (* -- duplicate derivations ------------------------------------- *)
         let dup_of = Array.make (max n 1) (-1) in
         let chains = Hashtbl.create (max n 16) in
         let key = Buffer.create 64 in
         for i = 0 to n - 1 do
           Buffer.clear key;
           let o = ibuf_get t.off i and l = ibuf_get t.len i in
           for k = o to o + l - 1 do
             Buffer.add_string key (string_of_int (ibuf_get t.arcs k));
             Buffer.add_char key ','
           done;
           let k = Buffer.contents key in
           match Hashtbl.find_opt chains k with
           | Some first -> dup_of.(i) <- first
           | None -> Hashtbl.replace chains k i
         done;
         (* -- shape: depth histogram, per-depth width, fan-in ----------- *)
         let max_depth = Array.fold_left max 0 (Array.sub depth 0 n) in
         let width = Array.make (max_depth + 1) 0 in
         for i = 0 to n - 1 do
           width.(depth.(i)) <- width.(depth.(i)) + 1
         done;
         let max_width = ref 0 and widest_depth = ref 0 in
         Array.iteri
           (fun d w ->
             if w > !max_width then begin
               max_width := w;
               widest_depth := d
             end)
           width;
         let max_fanin = ref 0 in
         for i = 0 to n - 1 do
           if ibuf_get t.len i > !max_fanin then max_fanin := ibuf_get t.len i
         done;
         (* -- lifetimes ------------------------------------------------- *)
         let lifetimes = ref [] and gaps = ref [] in
         let lifetime_max = ref 0 and lifetime_sum = ref 0 in
         let gap_max = ref 0 and gap_sum = ref 0 in
         let used = ref 0 in
         for i = 0 to n - 1 do
           if last_use.(i) >= 0 then begin
             incr used;
             let span = last_use.(i) - ibuf_get t.ord i in
             let gap = first_use.(i) - ibuf_get t.ord i in
             lifetimes := span :: !lifetimes;
             gaps := gap :: !gaps;
             lifetime_sum := !lifetime_sum + span;
             gap_sum := !gap_sum + gap;
             if span > !lifetime_max then lifetime_max := span;
             if gap > !gap_max then gap_max := gap
           end
         done;
         let mean sum = if !used = 0 then 0.0 else float sum /. float !used in
         (* -- predicted peaks ------------------------------------------- *)
         let ord_of i = ibuf_get t.ord i in
         let bf_peak =
           sweep_peak ~n_events:t.n_events
             ~selected:(fun _ -> true)
             ~ord_of
             ~last_use_of:(fun i -> last_use.(i))
             n
         in
         (* hybrid rebuilds only the core-reachable clauses, so a clause's
            last use is its last use by a *reachable* consumer (or a
            level-0 / conflict site, which are reachable by definition) *)
         let hyb_last = Array.make (max n 1) (-1) in
         let hyb_use ~ordinal j =
           if ordinal > hyb_last.(j) then hyb_last.(j) <- ordinal
         in
         for i = 0 to n - 1 do
           if reach.(i) then begin
             let o = ibuf_get t.off i and l = ibuf_get t.len i in
             for k = o to o + l - 1 do
               match slot (ibuf_get t.arcs k) with
               | Some j when j < i -> hyb_use ~ordinal:(ibuf_get t.ord i) j
               | Some _ | None -> ()
             done
           end
         done;
         for k = 0 to t.l0_ante.n - 1 do
           match slot (ibuf_get t.l0_ante k) with
           | Some j -> hyb_use ~ordinal:(ibuf_get t.l0_ord k) j
           | None -> ()
         done;
         (match slot conflict_id with
          | Some j -> hyb_use ~ordinal:conflict_ord j
          | None -> ());
         let hybrid_peak =
           sweep_peak ~n_events:t.n_events
             ~selected:(fun i -> reach.(i))
             ~ord_of
             ~last_use_of:(fun i -> hyb_last.(i))
             n
         in
         let predicted_peak_live =
           {
             df = reachable_learned;
             bf = bf_peak;
             hybrid = hybrid_peak;
             par = bf_peak;
             online = bf_peak;
           }
         in
         (* -- L5xx diagnostics, in record order ------------------------- *)
         let dup_count = ref 0 and singleton_count = ref 0 in
         let dead_count = ref 0 in
         let diags = ref [] and kept = ref 0 and dropped = ref 0 in
         let warnings = ref 0 in
         let counts = Hashtbl.create 8 in
         let emit i code fmt =
           Printf.ksprintf
             (fun message ->
               incr warnings;
               Lint.count_code counts code;
               if !kept < t.cap then begin
                 incr kept;
                 diags :=
                   { Lint.code; pos = pos_of t (ibuf_get t.dpos i); message }
                   :: !diags
               end
               else incr dropped)
             fmt
         in
         for i = 0 to n - 1 do
           let id = ibuf_get t.ids i in
           if dup_of.(i) >= 0 then begin
             incr dup_count;
             emit i Lint.Duplicate_derivation
               "clause %d repeats the derivation of clause %d" id
               (ibuf_get t.ids dup_of.(i))
           end;
           if ibuf_get t.len i = 1 then begin
             incr singleton_count;
             emit i Lint.Singleton_chain
               "clause %d is derived from the single source %d" id
               (ibuf_get t.arcs (ibuf_get t.off i))
           end;
           if not reach.(i) then begin
             incr dead_count;
             emit i Lint.Dead_derivation
               "clause %d is never used to reach the final conflict" id
           end
         done;
         (* -- telemetry: the analysis footprint is a few int tables ----- *)
         if Obs.Ctl.on () then begin
           Obs.Metrics.Counter.incr m_dead !dead_count;
           Obs.Metrics.Counter.incr m_duplicates !dup_count;
           Obs.Metrics.Gauge.set g_ids (float (n + norig));
           let words =
             Array.length t.ids.a + Array.length t.ord.a
             + Array.length t.dpos.a + Array.length t.off.a
             + Array.length t.len.a + Array.length t.arcs.a
             + Array.length t.l0_ante.a + Array.length t.l0_ord.a
             + Array.length depth + Array.length last_use
             + Array.length first_use + Array.length hyb_last
             + Array.length dup_of + Array.length reach
             + Array.length orig_used + Array.length width
             + (2 * (t.n_events + 2))
           in
           Obs.Metrics.Gauge.set g_bytes (float (8 * words))
         end;
         let profile =
           {
             binary = t.s_binary;
             events = t.n_events;
             learned = t.n_learned;
             level0 = t.n_level0;
             nvars;
             originals = norig;
             conflict_id;
             topological = !forward_refs = 0;
             forward_refs = !forward_refs;
             dangling_refs = !dangling_refs;
             reachable_learned;
             dead_learned = !dead_count;
             core_originals = !core_originals;
             duplicate_derivations = !dup_count;
             singleton_chains = !singleton_count;
             max_depth;
             depth_hist =
               hist_of_values (Array.to_list (Array.sub depth 0 n));
             max_width = !max_width;
             widest_depth = !widest_depth;
             max_fanin = !max_fanin;
             total_arcs = t.arcs.n;
             lifetime_max = !lifetime_max;
             lifetime_mean = mean !lifetime_sum;
             lifetime_hist = hist_of_values !lifetimes;
             first_gap_max = !gap_max;
             first_gap_mean = mean !gap_sum;
             predicted_peak_live;
             warnings = !warnings;
             dropped = !dropped;
             by_code = Lint.code_counts counts;
             diagnostics = List.rev !diags;
           }
         in
         let reachable id =
           match Hashtbl.find_opt t.slot_of_id id with
           | Some i -> reach.(i)
           | None -> false
         in
         Ok (profile, reachable)
       end)

let stream_finish ?end_pos t =
  match finish_internal ?end_pos t with
  | Ok (profile, _) -> Ok profile
  | Error e -> Error e

(* --- one-shot drivers ---------------------------------------------------- *)

(* Feed a whole serialised trace through a stream.  Unlike the linter a
   parse failure is terminal: a trace that does not decode has no DAG. *)
let feed ?format ?io ?max_diagnostics source =
  let cur = Trace.Reader.cursor ?format ?io source in
  let binary = Trace.Reader.is_binary_cursor cur in
  let t = stream_start ?max_diagnostics ~binary () in
  let result =
    try
      let continue = ref true in
      while !continue do
        match Trace.Reader.next cur with
        | Some e -> stream_event t (Trace.Reader.last_pos cur) e
        | None -> continue := false
      done;
      Ok t
    with Trace.Reader.Parse_error { pos; msg } -> Error { pos; message = msg }
  in
  let end_pos = Trace.Reader.last_pos cur in
  Trace.Reader.close cur;
  (result, end_pos)

let run ?format ?io ?max_diagnostics source =
  Obs.Span.scope ~cat:"analysis" "dag.run" @@ fun () ->
  match feed ?format ?io ?max_diagnostics source with
  | Error e, _ -> Error e
  | Ok t, end_pos -> stream_finish ~end_pos t

type trim_stats = {
  records_in : int;
  records_out : int;
  kept_learned : int;
  dropped_learned : int;
  dropped_after_conflict : int;
  bytes_in : int;
  bytes_out : int;
}

let trim ?format ?io ?max_diagnostics source w =
  Obs.Span.scope ~cat:"analysis" "dag.trim" @@ fun () ->
  match feed ?format ?io ?max_diagnostics source with
  | Error e, _ -> Error e
  | Ok t, end_pos ->
    (match finish_internal ~end_pos t with
     | Error e -> Error e
     | Ok (profile, reachable) ->
       if profile.forward_refs > 0 || profile.dangling_refs > 0 then
         Error
           {
             pos = end_pos;
             message =
               Printf.sprintf
                 "trace has %d forward and %d dangling references; refusing \
                  to trim a proof whose reference order is broken"
                 profile.forward_refs profile.dangling_refs;
           }
       else begin
         (* pass two: re-read and emit only the core-reachable subgraph;
            the event stream is never materialised *)
         let cur = Trace.Reader.cursor ?format ?io source in
         let records_out = ref 0 and kept_learned = ref 0 in
         let dropped_learned = ref 0 and dropped_after = ref 0 in
         let seen_conflict = ref false in
         let emit e =
           incr records_out;
           Trace.Writer.emit w e
         in
         Trace.Reader.iter_cursor cur (fun e ->
             if !seen_conflict then incr dropped_after
             else
               match e with
               | Trace.Event.Header _ | Trace.Event.Level0 _ -> emit e
               | Trace.Event.Learned { id; _ } ->
                 if reachable id then begin
                   incr kept_learned;
                   emit e
                 end
                 else incr dropped_learned
               | Trace.Event.Final_conflict _ ->
                 seen_conflict := true;
                 emit e
               | Trace.Event.Delete ids ->
                 (* keep only hints for clauses that survive the trim *)
                 let norig =
                   match t.header with Some (_, n) -> n | None -> 0
                 in
                 let kept =
                   Array.of_list
                     (List.filter
                        (fun id -> id <= norig || reachable id)
                        (Array.to_list ids))
                 in
                 if Array.length kept > 0 then
                   emit (Trace.Event.Delete kept));
         Trace.Reader.close cur;
         if Obs.Ctl.on () then begin
           Obs.Metrics.Counter.incr m_trim_kept !kept_learned;
           Obs.Metrics.Counter.incr m_trim_dropped
             (!dropped_learned + !dropped_after)
         end;
         Ok
           ( {
               records_in = t.n_events;
               records_out = !records_out;
               kept_learned = !kept_learned;
               dropped_learned = !dropped_learned;
               dropped_after_conflict = !dropped_after;
               bytes_in = Trace.Reader.size_bytes source;
               bytes_out = Trace.Writer.bytes_written w;
             },
             profile )
       end)

(* --- deletion-hint conversion -------------------------------------------- *)

type hint_stats = {
  h_records_in : int;
  h_records_out : int;
  hints : int;
  hinted_clauses : int;
  pinned : int;
  dropped_hints : int;
}

(* [hint source w] rewrites a trace into its deletion-hinted form: every
   clause id gets a [Delete] record right after the record of its last
   use (dead derivations right after their own definition), except ids
   the empty-clause construction needs at the very end — the final
   conflict and every level-0 antecedent stay pinned.  Existing hints in
   the input are discarded and regenerated, so hinting is idempotent. *)
let hint ?format ?io ?max_diagnostics source w =
  Obs.Span.scope ~cat:"analysis" "dag.hint" @@ fun () ->
  if Trace.Writer.version w < 2 then
    invalid_arg "Dag.hint: deletion hints require a version-2 trace writer";
  match feed ?format ?io ?max_diagnostics source with
  | Error e, _ -> Error e
  | Ok t, end_pos ->
    (match finish_internal ~end_pos t with
     | Error e -> Error e
     | Ok (profile, _reachable) ->
       if profile.forward_refs > 0 || profile.dangling_refs > 0 then
         Error
           {
             pos = end_pos;
             message =
               Printf.sprintf
                 "trace has %d forward and %d dangling references; refusing \
                  to hint a proof whose reference order is broken"
                 profile.forward_refs profile.dangling_refs;
           }
       else begin
         (* pass two: last-use ordinal of every referenced id, originals
            included (the stream pass only tracks learned lifetimes);
            level-0 antecedents and the conflict clause are pinned — the
            empty-clause construction resolves with them after the last
            trace record *)
         let last_use = Hashtbl.create 1024 in
         let pinned_ids = Hashtbl.create 64 in
         let cur = Trace.Reader.cursor ?format ?io source in
         let ord = ref 0 in
         Trace.Reader.iter_cursor cur (fun e ->
             (match e with
              | Trace.Event.Header _ | Trace.Event.Delete _ -> ()
              | Trace.Event.Learned l ->
                Array.iter
                  (fun s -> Hashtbl.replace last_use s !ord)
                  l.sources
              | Trace.Event.Level0 v -> Hashtbl.replace pinned_ids v.ante ()
              | Trace.Event.Final_conflict id ->
                Hashtbl.replace pinned_ids id ());
             incr ord);
         let die_at = Hashtbl.create 1024 in
         Hashtbl.iter
           (fun id o ->
             if not (Hashtbl.mem pinned_ids id) then
               Hashtbl.replace die_at o
                 (id
                 :: Option.value ~default:[] (Hashtbl.find_opt die_at o)))
           last_use;
         (* pass three: re-emit with grouped deletes where ids drain *)
         Trace.Reader.rewind cur;
         let records_in = ref 0 and records_out = ref 0 in
         let hints = ref 0 and hinted = ref 0 and dropped = ref 0 in
         let seen_conflict = ref false in
         let ord = ref 0 in
         let emit e =
           incr records_out;
           Trace.Writer.emit w e
         in
         let emit_delete ids =
           emit (Trace.Event.Delete ids);
           incr hints;
           hinted := !hinted + Array.length ids
         in
         Trace.Reader.iter_cursor cur (fun e ->
             incr records_in;
             let o = !ord in
             incr ord;
             (match e with
              | Trace.Event.Delete _ -> incr dropped
              | Trace.Event.Final_conflict _ ->
                seen_conflict := true;
                emit e
              | Trace.Event.Header _ | Trace.Event.Level0 _ -> emit e
              | Trace.Event.Learned l ->
                emit e;
                if
                  (not !seen_conflict)
                  && (not (Hashtbl.mem last_use l.id))
                  && not (Hashtbl.mem pinned_ids l.id)
                then
                  (* dead derivation: checked, then freed on the spot *)
                  emit_delete [| l.id |]);
             if not !seen_conflict then
               match Hashtbl.find_opt die_at o with
               | Some ids ->
                 emit_delete (Array.of_list (List.sort compare ids))
               | None -> ());
         Trace.Reader.close cur;
         Ok
           ( {
               h_records_in = !records_in;
               h_records_out = !records_out;
               hints = !hints;
               hinted_clauses = !hinted;
               pinned = Hashtbl.length pinned_ids;
               dropped_hints = !dropped;
             },
             profile )
       end)

(* [strip_hints source w] is the downgrade path: drop every [Delete]
   record and emit the rest unchanged, turning a version-2 trace back
   into one every hint-blind strategy accepts. *)
let strip_hints ?format ?io source w =
  try
    let cur = Trace.Reader.cursor ?format ?io source in
    let records_in = ref 0 and records_out = ref 0 and dropped = ref 0 in
    Trace.Reader.iter_cursor cur (fun e ->
        incr records_in;
        match e with
        | Trace.Event.Delete _ -> incr dropped
        | Trace.Event.Header _ | Trace.Event.Learned _ | Trace.Event.Level0 _
        | Trace.Event.Final_conflict _ ->
          incr records_out;
          Trace.Writer.emit w e);
    Trace.Reader.close cur;
    Ok
      {
        h_records_in = !records_in;
        h_records_out = !records_out;
        hints = 0;
        hinted_clauses = 0;
        pinned = 0;
        dropped_hints = !dropped;
      }
  with Trace.Reader.Parse_error { pos; msg } -> Error { pos; message = msg }

(* --- rendering ----------------------------------------------------------- *)

let warning_summary p =
  match p.by_code with
  | [] -> "none"
  | l -> String.concat " " (List.map (fun (id, n) -> Printf.sprintf "%s:%d" id n) l)

let pp fmt p =
  List.iter
    (fun d -> Format.fprintf fmt "%a@," Lint.pp_diagnostic d)
    p.diagnostics;
  if p.dropped > 0 then
    Format.fprintf fmt "... %d further diagnostics dropped@," p.dropped;
  Format.fprintf fmt
    "proof dag: %s format, %d records (%d learned, %d level-0, %d originals), \
     conflict clause %d@,"
    (if p.binary then "binary" else "ascii")
    p.events p.learned p.level0 p.originals p.conflict_id;
  Format.fprintf fmt
    "reachable: %d/%d learned, %d dead, core %d/%d originals; topological %s \
     (%d forward, %d dangling refs)@,"
    p.reachable_learned p.learned p.dead_learned p.core_originals p.originals
    (if p.topological then "yes" else "no")
    p.forward_refs p.dangling_refs;
  Format.fprintf fmt
    "shape: depth %d, max width %d at depth %d, max fan-in %d, %d arcs@,"
    p.max_depth p.max_width p.widest_depth p.max_fanin p.total_arcs;
  Format.fprintf fmt
    "lifetime: last-use span max %d mean %.1f, first-use gap max %d mean \
     %.1f@,"
    p.lifetime_max p.lifetime_mean p.first_gap_max p.first_gap_mean;
  Format.fprintf fmt
    "predicted peak live: df %d, bf %d, hybrid %d, par %d, online %d; \
     warnings %s"
    p.predicted_peak_live.df p.predicted_peak_live.bf
    p.predicted_peak_live.hybrid p.predicted_peak_live.par
    p.predicted_peak_live.online (warning_summary p)

let hist_json h =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i (b, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%d,%d]" b n))
    h;
  Buffer.add_char buf ']';
  Buffer.contents buf

let to_json p =
  let f = Obs.Metrics.json_float in
  Printf.sprintf
    "{\"format\":\"%s\",\"events\":%d,\"learned\":%d,\"level0\":%d,\
     \"nvars\":%d,\"originals\":%d,\"conflict_id\":%d,\"topological\":%b,\
     \"forward_refs\":%d,\"dangling_refs\":%d,\"reachable_learned\":%d,\
     \"dead_learned\":%d,\"core_originals\":%d,\"duplicate_derivations\":%d,\
     \"singleton_chains\":%d,\
     \"depth\":{\"max\":%d,\"buckets\":%s},\
     \"width\":{\"max\":%d,\"at_depth\":%d},\
     \"fanin\":{\"max\":%d,\"total_arcs\":%d},\
     \"lifetime\":{\"max\":%d,\"mean\":%s,\"buckets\":%s},\
     \"first_use_gap\":{\"max\":%d,\"mean\":%s},\
     \"predicted_peak_live\":{\"df\":%d,\"bf\":%d,\"hybrid\":%d,\"par\":%d,\
     \"online\":%d},\
     \"warnings\":%d,\"dropped\":%d,\"by_code\":%s,\"diagnostics\":%s}"
    (if p.binary then "binary" else "ascii")
    p.events p.learned p.level0 p.nvars p.originals p.conflict_id
    p.topological p.forward_refs p.dangling_refs p.reachable_learned
    p.dead_learned p.core_originals p.duplicate_derivations p.singleton_chains
    p.max_depth (hist_json p.depth_hist) p.max_width p.widest_depth p.max_fanin
    p.total_arcs p.lifetime_max (f p.lifetime_mean) (hist_json p.lifetime_hist)
    p.first_gap_max (f p.first_gap_mean) p.predicted_peak_live.df
    p.predicted_peak_live.bf p.predicted_peak_live.hybrid
    p.predicted_peak_live.par p.predicted_peak_live.online p.warnings p.dropped
    (Lint.by_code_json p.by_code)
    (Lint.diagnostics_json p.diagnostics)

(* --- DAG neighborhood (refusal forensics) -------------------------------- *)

type node = {
  n_id : int;
  n_kind : [ `Original | `Learned | `Undefined ];
  n_def_pos : Trace.Reader.pos option;
  n_sources : int array;
  n_uses : int;
  n_used_by : int list;
  n_deleted_at : Trace.Reader.pos option;
}

let neighborhood ?format ?io ?(max_used_by = 8) ~ids source =
  (* Best-effort by contract: [explain] runs this over the very traces
     the checker refused, so a parse error simply ends the pass — what
     was collected up to the refusal point is exactly the context a
     positioned failure can see anyway. *)
  let targets = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace targets id ()) ids;
  let nodes = Hashtbl.create 8 in
  let node id =
    match Hashtbl.find_opt nodes id with
    | Some n -> n
    | None ->
      let n =
        ref
          {
            n_id = id;
            n_kind = `Undefined;
            n_def_pos = None;
            n_sources = [||];
            n_uses = 0;
            n_used_by = [];
            n_deleted_at = None;
          }
      in
      Hashtbl.replace nodes id n;
      n
  in
  let originals = ref 0 in
  let cur = Trace.Reader.cursor ?format ?io source in
  (try
     let continue = ref true in
     while !continue do
       match Trace.Reader.next cur with
       | None -> continue := false
       | Some e -> (
         let pos = Trace.Reader.last_pos cur in
         match e with
         | Trace.Event.Header h -> originals := h.num_original
         | Trace.Event.Learned l ->
           if Hashtbl.mem targets l.id then begin
             let n = node l.id in
             if !n.n_def_pos = None then
               n :=
                 {
                   !n with
                   n_kind = `Learned;
                   n_def_pos = Some pos;
                   n_sources = Array.copy l.sources;
                 }
           end;
           Array.iter
             (fun s ->
               if Hashtbl.mem targets s then begin
                 let n = node s in
                 let used_by =
                   if List.length !n.n_used_by < max_used_by then
                     !n.n_used_by @ [ l.id ]
                   else !n.n_used_by
                 in
                 n := { !n with n_uses = !n.n_uses + 1; n_used_by = used_by }
               end)
             l.sources
         | Trace.Event.Level0 v ->
           if Hashtbl.mem targets v.ante then begin
             let n = node v.ante in
             n := { !n with n_uses = !n.n_uses + 1 }
           end
         | Trace.Event.Final_conflict id ->
           if Hashtbl.mem targets id then begin
             let n = node id in
             n := { !n with n_uses = !n.n_uses + 1 }
           end
         | Trace.Event.Delete del ->
           Array.iter
             (fun id ->
               if Hashtbl.mem targets id then begin
                 let n = node id in
                 if !n.n_deleted_at = None then
                   n := { !n with n_deleted_at = Some pos }
               end)
             del)
     done
   with Trace.Reader.Parse_error _ -> ());
  Trace.Reader.close cur;
  List.map
    (fun id ->
      let n = !(node id) in
      if n.n_kind = `Undefined && id >= 1 && id <= !originals then
        { n with n_kind = `Original }
      else n)
    (List.sort_uniq compare ids)
