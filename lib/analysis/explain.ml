type refusal = {
  r_command : string;
  r_exit_code : int;
  r_status : string;
  r_message : string;
  r_pos : Trace.Reader.pos option;
  r_ids : int list;
  r_codes : string list;
  r_journal : Obs.Json.t;
}

let esc = Obs.Metrics.json_escape

let pos_json = function
  | None -> "null"
  | Some (Trace.Reader.Line n) -> Printf.sprintf {|{"line":%d}|} n
  | Some (Trace.Reader.Byte n) -> Printf.sprintf {|{"byte":%d}|} n

let refusal_json r =
  Printf.sprintf
    {|{"schema":"rescheck-refusal/1","command":"%s","exit_code":%d,"status":"%s","message":"%s","pos":%s,"ids":[%s],"codes":[%s],"journal":%s}|}
    (esc r.r_command) r.r_exit_code (esc r.r_status) (esc r.r_message)
    (pos_json r.r_pos)
    (String.concat "," (List.map string_of_int r.r_ids))
    (String.concat ","
       (List.map (fun c -> Printf.sprintf {|"%s"|} (esc c)) r.r_codes))
    (Obs.Json.to_string r.r_journal)

let write_refusal ~file ~command ~exit_code ~status ~message ?pos ?(ids = [])
    ?(codes = []) () =
  let journal =
    (* parse our own journal rendering back into a [Json.t]; the writer
       is total so this cannot fail, and it keeps the refusal record a
       single self-contained document *)
    Obs.Json.of_string (Obs.Journal.to_json ())
  in
  let r =
    {
      r_command = command;
      r_exit_code = exit_code;
      r_status = status;
      r_message = message;
      r_pos = pos;
      r_ids = List.sort_uniq compare ids;
      r_codes = List.sort_uniq compare codes;
      r_journal = journal;
    }
  in
  try
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (refusal_json r);
        output_char oc '\n')
  with Sys_error msg -> Printf.eprintf "rescheck: cannot write refusal: %s\n" msg

let read_refusal file =
  match Obs.Json.of_file file with
  | exception Sys_error msg -> Error msg
  | exception Obs.Json.Parse_error msg ->
    Error (Printf.sprintf "%s: %s" file msg)
  | j -> (
    let open Obs.Json in
    match member "schema" j |> Option.map string with
    | Some (Some "rescheck-refusal/1") ->
      let str k d = Option.value ~default:d (Option.bind (member k j) string) in
      let pos =
        match member "pos" j with
        | Some (Obj _ as p) -> (
          match (Option.bind (member "line" p) int, Option.bind (member "byte" p) int) with
          | Some n, _ -> Some (Trace.Reader.Line n)
          | None, Some n -> Some (Trace.Reader.Byte n)
          | None, None -> None)
        | _ -> None
      in
      let ints k =
        match Option.bind (member k j) list with
        | Some l -> List.filter_map int l
        | None -> []
      in
      let strs k =
        match Option.bind (member k j) list with
        | Some l -> List.filter_map string l
        | None -> []
      in
      Ok
        {
          r_command = str "command" "";
          r_exit_code =
            Option.value ~default:2 (Option.bind (member "exit_code" j) int);
          r_status = str "status" "";
          r_message = str "message" "";
          r_pos = pos;
          r_ids = ints "ids";
          r_codes = strs "codes";
          r_journal =
            Option.value ~default:(Obj []) (member "journal" j);
        }
    | _ -> Error (Printf.sprintf "%s: not a rescheck-refusal/1 file" file))

(* --- trace window --------------------------------------------------------- *)

type window_entry = {
  w_pos : Trace.Reader.pos;
  w_text : string;
  w_offending : bool;
}

type report = {
  e_refusal : refusal;
  e_window : window_entry list;
  e_nodes : Dag.node list;
  e_docs : (string * string * string) list;
}

let pos_ord = function Trace.Reader.Line n -> n | Trace.Reader.Byte n -> n

(* Collect up to [window] records on each side of the refusal position.
   The trace is hostile (the checker refused it), so a record that does
   not decode becomes an ["<unparsable: ...>"] window entry — for parse
   refusals that entry is the offending record itself.  ASCII cursors
   re-synchronise on the next line after an error; binary ones cannot,
   so the window simply ends there. *)
let trace_window ?format ?io ~window ~pos source =
  let cur = Trace.Reader.cursor ?format ?io source in
  let target = Option.map pos_ord pos in
  let before = Queue.create () in
  let offending = ref None in
  let after = ref [] in
  let n_after = ref 0 in
  let classify p text =
    let o = pos_ord p in
    match target with
    | Some t when o < t ->
      Queue.push (p, text) before;
      if Queue.length before > window then ignore (Queue.pop before);
      true
    | Some t when !offending = None && o >= t ->
      (* first record at or past the position is the offending one; a
         byte position inside a record still lands here *)
      offending := Some (p, text);
      true
    | None when !offending = None && Queue.length before < window ->
      (* no position: the window is the head of the trace *)
      Queue.push (p, text) before;
      true
    | None -> false
    | Some _ ->
      after := (p, text) :: !after;
      incr n_after;
      !n_after < window
  in
  let continue = ref true in
  while !continue do
    match Trace.Reader.next cur with
    | None -> continue := false
    | Some e ->
      let p = Trace.Reader.last_pos cur in
      let text = Format.asprintf "%a" Trace.Event.pp e in
      if not (classify p text) then continue := false
    | exception Trace.Reader.Parse_error { pos = p; msg } ->
      let text = Printf.sprintf "<unparsable: %s>" msg in
      if not (classify p text) then continue := false
      else if Trace.Reader.is_binary_cursor cur then continue := false
  done;
  Trace.Reader.close cur;
  let entries =
    List.concat
      [
        Queue.fold (fun acc (p, t) -> (p, t, false) :: acc) [] before
        |> List.rev;
        (match !offending with Some (p, t) -> [ (p, t, true) ] | None -> []);
        List.rev_map (fun (p, t) -> (p, t, false)) !after;
      ]
  in
  List.map
    (fun (w_pos, w_text, w_offending) -> { w_pos; w_text; w_offending })
    entries

let build ?format ?io ?(window = 5) ~trace ~refusal () =
  let e_window =
    trace_window ?format ?io ~window ~pos:refusal.r_pos trace
  in
  let e_nodes =
    if refusal.r_ids = [] then []
    else Dag.neighborhood ?format ?io ~ids:refusal.r_ids trace
  in
  let e_docs =
    List.filter_map
      (fun code ->
        Option.map (fun (title, doc) -> (code, title, doc)) (Lint.code_doc code))
      (List.sort_uniq compare refusal.r_codes)
  in
  { e_refusal = refusal; e_window; e_nodes; e_docs }

(* --- rendering ------------------------------------------------------------ *)

let journal_entries j =
  match Obs.Json.(Option.bind (member "entries" j) list) with
  | Some l -> l
  | None -> []

let pp fmt r =
  let f = r.e_refusal in
  Format.fprintf fmt "refusal: %s (exit %d) from `rescheck %s`@\n" f.r_status
    f.r_exit_code f.r_command;
  Format.fprintf fmt "  %s@\n" f.r_message;
  (match f.r_pos with
   | Some p -> Format.fprintf fmt "  at %a@\n" Trace.Reader.pp_pos p
   | None -> ());
  if r.e_window <> [] then begin
    Format.fprintf fmt "@\ntrace window:@\n";
    List.iter
      (fun w ->
        Format.fprintf fmt "  %s %a: %s@\n"
          (if w.w_offending then ">>" else "  ")
          Trace.Reader.pp_pos w.w_pos w.w_text)
      r.e_window
  end;
  if r.e_nodes <> [] then begin
    Format.fprintf fmt "@\ndag neighborhood:@\n";
    List.iter
      (fun (n : Dag.node) ->
        Format.fprintf fmt "  clause %d: %s" n.Dag.n_id
          (match n.Dag.n_kind with
           | `Original -> "original"
           | `Learned -> "learned"
           | `Undefined -> "never defined");
        (match n.Dag.n_def_pos with
         | Some p -> Format.fprintf fmt ", defined at %a" Trace.Reader.pp_pos p
         | None -> ());
        if Array.length n.Dag.n_sources > 0 then
          Format.fprintf fmt ", sources [%s]"
            (String.concat " "
               (Array.to_list (Array.map string_of_int n.Dag.n_sources)));
        Format.fprintf fmt ", %d use%s" n.Dag.n_uses
          (if n.Dag.n_uses = 1 then "" else "s");
        if n.Dag.n_used_by <> [] then
          Format.fprintf fmt " (by %s)"
            (String.concat " " (List.map string_of_int n.Dag.n_used_by));
        (match n.Dag.n_deleted_at with
         | Some p -> Format.fprintf fmt ", deleted at %a" Trace.Reader.pp_pos p
         | None -> ());
        Format.fprintf fmt "@\n")
      r.e_nodes
  end;
  if r.e_docs <> [] then begin
    Format.fprintf fmt "@\nlint codes:@\n";
    List.iter
      (fun (code, title, doc) ->
        Format.fprintf fmt "  %s (%s): %s@\n" code title doc)
      r.e_docs
  end;
  let tail = journal_entries f.r_journal in
  if tail <> [] then begin
    Format.fprintf fmt "@\njournal tail (%d entries):@\n" (List.length tail);
    List.iter
      (fun e -> Format.fprintf fmt "  %s@\n" (Obs.Json.to_string e))
      tail
  end

let to_json r =
  let b = Buffer.create 2048 in
  Buffer.add_string b {|{"schema":"rescheck-explain/1","refusal":|};
  Buffer.add_string b (refusal_json r.e_refusal);
  Buffer.add_string b {|,"window":[|};
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf {|{"pos":%s,"text":"%s","offending":%b}|}
           (pos_json (Some w.w_pos))
           (esc w.w_text) w.w_offending))
    r.e_window;
  Buffer.add_string b {|],"dag":[|};
  List.iteri
    (fun i (n : Dag.node) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           {|{"id":%d,"kind":"%s","def_pos":%s,"sources":[%s],"uses":%d,"used_by":[%s],"deleted_at":%s}|}
           n.Dag.n_id
           (match n.Dag.n_kind with
            | `Original -> "original"
            | `Learned -> "learned"
            | `Undefined -> "undefined")
           (pos_json n.Dag.n_def_pos)
           (String.concat ","
              (Array.to_list (Array.map string_of_int n.Dag.n_sources)))
           n.Dag.n_uses
           (String.concat "," (List.map string_of_int n.Dag.n_used_by))
           (pos_json n.Dag.n_deleted_at)))
    r.e_nodes;
  Buffer.add_string b {|],"codes":[|};
  List.iteri
    (fun i (code, title, doc) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf {|{"code":"%s","title":"%s","doc":"%s"}|} (esc code)
           (esc title) (esc doc)))
    r.e_docs;
  Buffer.add_string b "]}";
  Buffer.contents b
