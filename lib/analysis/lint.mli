(** Streaming trace linter: structural validation of resolution traces in
    one pass over the event stream, with no clause construction and no
    resolution.

    The semantic checkers ([Checker.Df] / [Bf] / [Hybrid]) replay the
    proof and therefore surface a malformed trace as a confusing failure
    deep inside the resolution kernel.  The linter catches the cheap
    structural corruption classes up front — truncated or garbled
    encodings, duplicate or non-monotone clause ids, forward and dangling
    references, out-of-range variables, duplicate level-0 records,
    missing final conflict — and reports each as a typed diagnostic with
    a stable error code and a precise position (line for ASCII traces,
    byte offset for binary ones) instead of an exception.

    Cycle-freedom of the resolve-source graph is a corollary: the linter
    enforces stream-order referencing (every source precedes its use), so
    a lint-clean trace is acyclic by construction.

    Memory is O(#learned clauses) — one hash table of ids — and no
    [Proof.Clause_db] is ever created. *)

type severity =
  | Error    (** the trace cannot possibly check; replay would fail *)
  | Warning  (** suspicious but replayable *)

(** Stable diagnostic codes.  The numeric ids ([L001]…) are part of the
    tool's contract: tests, scripts and the DESIGN.md table key on them.
    Groups: L0xx stream/framing, L1xx clause records, L2xx level-0
    records, L3xx final conflict, L4xx trace-vs-formula, L5xx whole-proof
    semantics (emitted by {!Dag}, which reasons about the complete
    resolution DAG rather than one record at a time), L6xx deletion
    hints, L7xx simplifier-derivation shape (chains over original
    clauses only — the records {!Solver.Simplify} emits — are simulated
    against the formula; a simplifier record with {e no} sources at all
    is already the generic L104). *)
type code =
  | Parse                  (** L001 record does not parse / truncated / garbled *)
  | Missing_header         (** L002 no [t nvars norig] record *)
  | Duplicate_header       (** L003 second header record *)
  | Header_dims            (** L004 nonpositive dimensions in the header *)
  | Event_before_header    (** L005 a record precedes the header *)
  | Shadows_original       (** L101 learned id inside the original-id range *)
  | Duplicate_id           (** L102 learned id defined twice *)
  | Nonmonotone_id         (** L103 learned ids not strictly increasing *)
  | Empty_sources          (** L104 learned clause with no resolve sources *)
  | Self_source            (** L105 clause listed among its own sources *)
  | Bad_reference          (** L106 source id undefined at point of use
                               (forward or dangling reference) *)
  | Repeated_source        (** L107 same source twice in a row in a chain *)
  | Var_out_of_range       (** L201 level-0 variable outside [1..nvars] *)
  | Duplicate_level0       (** L202 two level-0 records for one variable *)
  | Bad_antecedent         (** L203 level-0 antecedent id undefined *)
  | Missing_conflict       (** L301 trace ends without a final conflict *)
  | Conflict_unknown       (** L302 final conflict references an undefined id *)
  | After_conflict         (** L303 records after the final conflict *)
  | Formula_mismatch       (** L401 header dims disagree with the formula *)
  | Formula_var_range      (** L402 formula literal out of declared range *)
  | Formula_duplicate_lit  (** L403 formula clause repeats a literal *)
  | Formula_tautology      (** L404 formula clause is tautological *)
  | Dead_derivation        (** L501 learned clause unreachable from the
                               final conflict — dead weight in the proof *)
  | Duplicate_derivation   (** L502 identical source chain derived twice *)
  | Singleton_chain        (** L503 single-source chain: the clause is a
                               copy of (or subsumed by) its one source *)
  | Dangling_delete        (** L601 delete hint names an undefined clause *)
  | Duplicate_delete       (** L602 clause deleted twice *)
  | Use_after_delete       (** L603 clause referenced after its delete hint *)
  | Chain_no_clash         (** L701 all-original chain step with no clashing
                               variable — the kernel would refuse it *)
  | Chain_multi_clash      (** L702 all-original chain step with several
                               clashing variables (tautological resolvent) —
                               not a valid self-subsuming-resolution /
                               elimination step shape *)
  | Redundant_derivation   (** L703 all-original chain rederives an original
                               clause verbatim — valid but pointless work *)

(** [code_id c] is the stable "Lnnn" identifier. *)
val code_id : code -> string

val severity_of : code -> severity

(** [code_doc id] is the documentation for a printed lint code id
    (e.g. ["L106"]): a short title and a paragraph describing the
    condition and its usual causes.  [None] for unknown ids.  Covers
    every stable code; [rescheck explain] embeds these in refusal
    reports. *)
val code_doc : string -> (string * string) option

type diagnostic = {
  code : code;
  pos : Trace.Reader.pos;
  message : string;
}

type report = {
  binary : bool;             (** format the magic bytes selected *)
  events : int;              (** events successfully parsed *)
  learned : int;             (** learned-clause records seen *)
  level0 : int;              (** level-0 records seen *)
  errors : int;
  warnings : int;
  diagnostics : diagnostic list;  (** stream order, capped — counts are not *)
  dropped : int;             (** diagnostics beyond the cap, counted only *)
  by_code : (string * int) list;
      (** per-code counts keyed by the stable "Lnnn" id, sorted by id and
          never capped — lets CI and tests assert on a specific
          diagnostic class instead of grepping message text *)
}

(** [run ?formula ?max_diagnostics source] lints the trace in one
    streaming pass.  With [formula], the header is cross-checked against
    the formula's dimensions and the original clauses are linted for
    out-of-range, duplicate and tautological literals (L4xx codes).
    [max_diagnostics] (default 100) caps the retained diagnostics;
    [errors]/[warnings] keep counting past the cap.  [format] forces the
    encoding instead of auto-detecting it from the magic bytes.  Never
    raises on malformed traces: parse failures become L001 diagnostics,
    and an ASCII cursor resumes on the next line so one pass can report
    several of them.  [io] selects the
    file backing for every cursor the check opens (default [`Auto]:
    mmap regular files, falling back to the buffered channel). *)
val run :
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?formula:Sat.Cnf.t ->
  ?max_diagnostics:int ->
  Trace.Reader.source ->
  report

(** {2 Streaming interface}

    The same linter as an incremental stream, so diagnostics accumulate
    identically whether the trace is decoded from a file or observed live
    as the solver emits it.  [binary] selects position bookkeeping (byte
    offsets vs line numbers) and the format named in the report. *)

type stream

(** [stream_start ~binary ()] runs the up-front formula checks (L4xx)
    and returns an empty stream state. *)
val stream_start :
  ?formula:Sat.Cnf.t -> ?max_diagnostics:int -> binary:bool -> unit -> stream

(** [stream_event t pos e] lints one event; [pos] is where its record
    starts in the serialised trace. *)
val stream_event : stream -> Trace.Reader.pos -> Trace.Event.t -> unit

(** [stream_parse_error t pos msg] records a decode failure as L001. *)
val stream_parse_error : stream -> Trace.Reader.pos -> string -> unit

(** [stream_finish t] runs the end-of-trace checks (missing header /
    conflict, header-vs-formula) and seals the report.  [end_pos]
    overrides the tracked position the end-of-trace diagnostics anchor
    to. *)
val stream_finish : ?end_pos:Trace.Reader.pos -> stream -> report

(** [sink t ~pos ?downstream] is the linter as a transformer sink: each
    pushed event is linted at position [pos ()] and forwarded to
    [downstream] (closed with the sink) when given.  Retrieve the report
    with {!stream_finish} after closing. *)
val sink : ?downstream:Trace.Sink.t -> stream -> pos:(unit -> Trace.Reader.pos) -> Trace.Sink.t

(** [clean r] holds when no error-severity diagnostic was found. *)
val clean : report -> bool

val pp_diagnostic : Format.formatter -> diagnostic -> unit

(** [pp fmt r] renders the human-readable report: one line per retained
    diagnostic followed by a summary line. *)
val pp : Format.formatter -> report -> unit

(** [to_json r] is a machine-readable rendering (self-contained, no
    external JSON dependency): [{"format":…, "events":…, "errors":…,
    "warnings":…, "by_code":{"Lnnn":count,…},
    "diagnostics":[{"code","severity","line"|"byte","message"},…]}]. *)
val to_json : report -> string

(** {2 Shared rendering helpers}

    Used by {!Dag}, whose semantic diagnostics are {!diagnostic} values
    with L5xx codes and must render identically. *)

(** [by_code_json l] renders a per-code count list as a JSON object. *)
val by_code_json : (string * int) list -> string

(** [diagnostics_json l] renders diagnostics as the JSON array
    {!to_json} embeds. *)
val diagnostics_json : diagnostic list -> string

(** [code_counts tbl] seals a per-code count table into the sorted
    association list reports carry. *)
val code_counts : (string, int) Hashtbl.t -> (string * int) list

(** [count_code tbl c] bumps [c]'s entry in a per-code count table. *)
val count_code : (string, int) Hashtbl.t -> code -> unit
