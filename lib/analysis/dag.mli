(** Whole-proof static analysis: one streaming pass over a resolution
    trace builds the proof's dependency DAG — clause ids and antecedent
    lists only, never clause literals — and derives the global facts no
    record-at-a-time pass can see:

    - backward reachability from the final conflict (which learned
      clauses are {e dead} — derived but never needed, the fraction the
      trimmer removes);
    - duplicate derivations (identical source chains) and forward or
      dangling references (topological validity of the emission order);
    - chain shape: depth, per-depth width, fan-in distribution;
    - per-id first-use/last-use lifetime spans (the def/use intervals a
      window-shifting scheduler needs);
    - a static prediction of peak simultaneously-live learned clauses
      under each checking strategy's deletion schedule (the paper's
      refcount-zero discipline), computed without running a checker.

    Findings that are properties of single clauses surface as {!Lint}
    diagnostics with stable L5xx codes, so `rescheck analyze` reports
    them through the same machinery as the structural linter.  Memory is
    O(#clause ids + #antecedent arcs): a handful of int tables, no
    [Proof.Clause_db], no literal arrays. *)

(** Predicted peak live learned clauses per checking strategy, from the
    refcount-zero deletion schedule each strategy implies.  [df] keeps
    every clause it builds (the core-reachable set); [bf] rebuilds all
    learned clauses and frees each after its last use; [hybrid] does the
    bf sweep restricted to core-reachable clauses with uses recounted
    among them; [par] levels within one window of sequential bf and
    [online] is bf fed live, so both share bf's schedule. *)
type peaks = {
  df : int;
  bf : int;
  hybrid : int;
  par : int;
  online : int;
}

(** Log-scale (base-2) histogram as non-empty [(bucket, count)] pairs in
    bucket order; bucket semantics follow
    {!Obs.Metrics.Histogram.bucket_index}. *)
type hist = (int * int) list

type profile = {
  binary : bool;                 (** format the magic bytes selected *)
  events : int;                  (** records in the trace, header included *)
  learned : int;                 (** learned-clause records *)
  level0 : int;                  (** level-0 records *)
  nvars : int;
  originals : int;               (** original-clause count from the header *)
  conflict_id : int;             (** clause the final conflict names *)
  topological : bool;            (** every source precedes its use *)
  forward_refs : int;            (** refs to ids defined later (or self) *)
  dangling_refs : int;           (** refs to ids never defined *)
  reachable_learned : int;       (** backward-reachable from the conflict *)
  dead_learned : int;            (** learned but never needed (L501) *)
  core_originals : int;          (** originals the reachable closure touches *)
  duplicate_derivations : int;   (** L502 count *)
  singleton_chains : int;        (** L503 count *)
  max_depth : int;               (** longest derivation chain (originals = 0) *)
  depth_hist : hist;
  max_width : int;               (** most learned clauses at one depth *)
  widest_depth : int;            (** first depth attaining [max_width] *)
  max_fanin : int;               (** longest single resolve chain *)
  total_arcs : int;              (** antecedent references across the DAG *)
  lifetime_max : int;            (** def-to-last-use span, in records *)
  lifetime_mean : float;         (** over used learned clauses *)
  lifetime_hist : hist;
  first_gap_max : int;           (** def-to-first-use span, in records *)
  first_gap_mean : float;
  predicted_peak_live : peaks;
  warnings : int;                (** L5xx diagnostics, uncapped count *)
  dropped : int;                 (** diagnostics beyond the cap *)
  by_code : (string * int) list; (** per-code counts, sorted, uncapped *)
  diagnostics : Lint.diagnostic list;  (** record order, capped *)
}

(** A structural defect that leaves the DAG meaningless — the trace does
    not parse, lacks a header or final conflict, defines an id twice, or
    names a conflict no record defines.  These are exactly the conditions
    {!Lint} reports as errors; the analyzer refuses rather than profile
    garbage, and the CLI maps them to the bad-input exit code (2). *)
type error = {
  pos : Trace.Reader.pos;
  message : string;
}

(** {2 Streaming interface}

    Mirrors {!Lint}'s: the analyzer can tap a live event stream — the
    checker's single parse, the online validator's solver feed — and
    profile the proof without a second read of the trace. *)

type stream

val stream_start : ?max_diagnostics:int -> binary:bool -> unit -> stream
val stream_event : stream -> Trace.Reader.pos -> Trace.Event.t -> unit

(** [stream_finish t] seals the stream: reachability, shape metrics,
    lifetime sweeps and L5xx diagnostics are all computed here, from the
    id tables the pass accumulated. *)
val stream_finish :
  ?end_pos:Trace.Reader.pos -> stream -> (profile, error) result

(** [sink t ~pos] is the analyzer as a sink for tee'ing into a push
    pipeline; [pos] supplies each record's start position. *)
val sink : stream -> pos:(unit -> Trace.Reader.pos) -> Trace.Sink.t

(** {2 One-shot drivers} *)

(** [run source] analyzes a serialised trace in one streaming pass.
    [format] forces the encoding instead of auto-detecting it;
    [io] selects the file backing; [max_diagnostics] (default 100) caps
    retained diagnostics (counts are never capped).  Unlike {!Lint.run},
    a parse failure aborts the analysis into [Error] — a trace that does
    not decode has no DAG to profile. *)
val run :
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?max_diagnostics:int ->
  Trace.Reader.source ->
  (profile, error) result

type trim_stats = {
  records_in : int;
  records_out : int;
  kept_learned : int;
  dropped_learned : int;          (** dead derivations removed *)
  dropped_after_conflict : int;   (** trailing records removed *)
  bytes_in : int;
  bytes_out : int;
}

(** [trim source w] rewrites the trace to its core-reachable subgraph:
    pass one analyzes (as {!run}), pass two re-reads the trace and emits
    through [w] only the header, level-0 records, the final conflict and
    the learned clauses backward-reachable from them — dead derivations
    and anything after the final conflict are dropped.  Reachability is
    closed under the source relation, so every kept reference stays
    defined: the output lints clean whenever the input did, every
    checking strategy reaches an identical verdict and core on it, and
    trimming is idempotent.  Refuses ([Error]) traces with forward or
    dangling references in addition to {!run}'s structural failures: a
    proof whose reference order is broken cannot be safely rewritten.
    [format] forces the {e input} encoding; the output encoding is the
    writer's. *)
val trim :
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?max_diagnostics:int ->
  Trace.Reader.source ->
  Trace.Writer.t ->
  (trim_stats * profile, error) result

(** {2 Deletion-hint conversion} *)

type hint_stats = {
  h_records_in : int;
  h_records_out : int;
  hints : int;            (** delete records emitted *)
  hinted_clauses : int;   (** clause ids covered by emitted hints *)
  pinned : int;           (** ids kept alive for the final chain *)
  dropped_hints : int;    (** input delete records discarded *)
}

(** [hint source w] rewrites the trace into its deletion-hinted form
    (format version 2): every clause id — originals included — gets a
    [Delete] record right after the record of its last use, grouped per
    record, and a dead derivation is deleted right after its own
    definition.  Ids the empty-clause construction needs at the very
    end (the final conflict, every level-0 antecedent) are pinned and
    never deleted, and no hint is emitted at or after the final
    conflict.  Existing hints are discarded and regenerated, so hinting
    is idempotent.  The hinted trace reaches identical verdicts, cores
    and diagnostics under every strategy that accepts it, and drives
    {!Checker.Hint.check}'s peak residency down to the refcount-zero
    schedule.  Refuses traces with forward or dangling references, like
    {!trim}.
    @raise Invalid_argument when [w] is not a version-2 writer. *)
val hint :
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?max_diagnostics:int ->
  Trace.Reader.source ->
  Trace.Writer.t ->
  (hint_stats * profile, error) result

(** [strip_hints source w] drops every [Delete] record and emits the
    rest unchanged — the downgrade path back to a version-1 trace that
    hint-blind strategies accept.  No structural validation is run. *)
val strip_hints :
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  Trace.Reader.source ->
  Trace.Writer.t ->
  (hint_stats, error) result

(** {2 DAG neighborhood}

    Refusal forensics: the local view of a handful of clause ids, for
    [rescheck explain].  Unlike {!run} this pass is {e best-effort} — it
    is run over the very traces the checker refused, so a parse error
    simply ends the scan and the nodes report what the stream defined up
    to that point, which is exactly the context visible at a positioned
    failure. *)

type node = {
  n_id : int;
  n_kind : [ `Original | `Learned | `Undefined ];
      (** [`Original] when the id falls in the header's original range
          and no learned record redefines it; [`Undefined] when nothing
          defines it before the scan ends — the typical L106 culprit *)
  n_def_pos : Trace.Reader.pos option;  (** defining record, if learned *)
  n_sources : int array;                (** its antecedent list *)
  n_uses : int;  (** total references: sources, level-0 antecedents,
                     final conflict *)
  n_used_by : int list;  (** learned ids citing it, stream order, capped *)
  n_deleted_at : Trace.Reader.pos option;  (** first delete hint naming it *)
}

(** [neighborhood ~ids source] scans the trace once and reports one
    {!node} per distinct id in [ids] (sorted).  [max_used_by] caps the
    retained citing ids (default 8; [n_uses] is never capped). *)
val neighborhood :
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?max_used_by:int ->
  ids:int list ->
  Trace.Reader.source ->
  node list

(** {2 Rendering} *)

(** [pp fmt p] renders the full human-readable report: retained
    diagnostics first, then the profile summary ("proof dag: …"). *)
val pp : Format.formatter -> profile -> unit

(** [warning_summary p] is a compact "L501:3 L502:1" rendering of
    [by_code] ("none" when empty) for one-line reports. *)
val warning_summary : profile -> string

(** [to_json p] is the deterministic machine rendering of the profile;
    diagnostics use {!Lint.to_json}'s element schema. *)
val to_json : profile -> string
