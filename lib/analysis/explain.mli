(** Refusal forensics: capture a checker refusal as a structured
    artifact, and reconstruct its context into a self-contained report.

    The flow has two halves.  At refusal time the CLI calls
    {!write_refusal} with the plain facts — command, exit code, status
    line, message, position, the clause ids and lint codes involved —
    and the file it writes ([rescheck-refusal/1]) embeds the
    {!Obs.Journal} flight record as of that moment.  Later (possibly on
    another machine) [rescheck explain <trace> <refusal.json>] calls
    {!build}, which re-reads the trace to extract the offending record
    with a surrounding window, runs {!Dag.neighborhood} over the ids the
    failure names, attaches {!Lint.code_doc} documentation for each
    cited L-code, and carries the journal tail through — so every exit-2
    becomes a report a human can audit without re-running the checker.

    Everything here is best-effort over hostile input by design: the
    trace being explained is one the checker {e refused}, so window
    extraction tolerates parse errors (the unparsable record is itself
    usually the story) and the DAG pass stops at the first undecodable
    record. *)

type refusal = {
  r_command : string;  (** the subcommand that refused, e.g. ["check"] *)
  r_exit_code : int;
  r_status : string;  (** the printed verdict line, e.g. ["s BAD TRACE (lint)"] *)
  r_message : string;  (** the human diagnostic that went to stderr *)
  r_pos : Trace.Reader.pos option;
  r_ids : int list;  (** clause ids the failure names *)
  r_codes : string list;  (** lint code ids involved, e.g. ["L106"] *)
  r_journal : Obs.Json.t;  (** embedded [rescheck-journal/1] document *)
}

(** [write_refusal ~file ~command ~exit_code ~status ~message ?pos ?ids
    ?codes ()] writes the [rescheck-refusal/1] JSON, embedding the
    current {!Obs.Journal} contents (an empty journal when disarmed).
    Best-effort: an unwritable [file] prints a warning to stderr rather
    than masking the refusal itself. *)
val write_refusal :
  file:string ->
  command:string ->
  exit_code:int ->
  status:string ->
  message:string ->
  ?pos:Trace.Reader.pos ->
  ?ids:int list ->
  ?codes:string list ->
  unit ->
  unit

(** [read_refusal file] parses a [rescheck-refusal/1] file.
    [Error msg] on unreadable, unparsable or wrong-schema input. *)
val read_refusal : string -> (refusal, string) result

(** One record of the reconstructed trace window.  [w_text] is the
    record rendered through {!Trace.Event.pp}, or a
    ["<unparsable: reason>"] marker when the record does not decode —
    for a parse refusal that marker {e is} the offending record. *)
type window_entry = {
  w_pos : Trace.Reader.pos;
  w_text : string;
  w_offending : bool;
}

type report = {
  e_refusal : refusal;
  e_window : window_entry list;  (** trace order, at most [2*window+1] *)
  e_nodes : Dag.node list;  (** neighborhood of [r_ids], sorted by id *)
  e_docs : (string * string * string) list;
      (** [(code, title, doc)] for each cited code, sorted *)
}

(** [build ~trace ~refusal ()] reconstructs the report.  [window]
    (default 5) is the number of context records kept on each side of
    the offending one; with no position in the refusal the window is the
    trace's first records.  [format]/[io] follow {!Trace.Reader.cursor}. *)
val build :
  ?format:Trace.Writer.format ->
  ?io:Trace.Reader.io ->
  ?window:int ->
  trace:Trace.Reader.source ->
  refusal:refusal ->
  unit ->
  report

val pp : Format.formatter -> report -> unit

(** [to_json r] is the deterministic [rescheck-explain/1] document. *)
val to_json : report -> string
