(** The metrics registry: named counters, gauges and log-scale
    histograms, plus per-domain shards merged at barriers.

    Handles are obtained once (typically at module initialisation — the
    registry exists whether or not telemetry is recording) and updated
    directly, so the hot path never touches the name table.  Updates are
    unsynchronised: a metric handle must have a single writer at a time.
    Worker domains therefore never write to {!global} — they record into
    a private {!shard} and the coordinating thread folds the shard in
    with {!merge_shard} at a barrier, which is the lock-free discipline
    the wavefront-parallel checker uses.

    Instrumentation sites are expected to guard updates with
    [Ctl.on ()]; the update functions themselves do not check, so tests
    can drive the registry directly. *)

type t

(** {2 Metric handles} *)

type counter
type gauge
type histogram

module Counter : sig
  (** Monotone event counts. *)

  val incr : counter -> int -> unit
  val get : counter -> int
end

module Gauge : sig
  (** Instantaneous levels; [max] tracks the high-water mark across all
      [set]s since the last reset. *)

  val set : gauge -> float -> unit
  val get : gauge -> float
  val max_value : gauge -> float
end

module Histogram : sig
  (** Log-scale (base-2) bucketed distributions of non-negative integer
      observations: bucket [0] holds values [<= 0] and bucket [k >= 1]
      holds values in [[2^(k-1), 2^k)]. *)

  val observe : histogram -> int -> unit
  val count : histogram -> int
  val sum : histogram -> float

  (** [bucket_index v] is the bucket [observe] files [v] under. *)
  val bucket_index : int -> int

  (** [buckets h] is the non-empty buckets as [(index, count)] pairs in
      index order. *)
  val buckets : histogram -> (int * int) list
end

(** {2 Registries} *)

val create : unit -> t

(** The process-wide registry every instrumented subsystem records
    into.  One registry per run profile. *)
val global : t

(** [counter t name] is the counter registered under [name], created on
    first use.  @raise Invalid_argument if [name] is already registered
    as a different metric kind.  Same contract for [gauge] and
    [histogram]. *)
val counter : t -> string -> counter

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** [reset t] zeroes every registered metric.  Handles stay valid — the
    name table is kept, only values are cleared — so module-cached
    handles survive a reset between runs. *)
val reset : t -> unit

(** {2 Per-domain shards} *)

(** A shard is a private registry owned by one domain: recording into it
    takes no locks.  [merge_shard parent shard] folds the shard's values
    into [parent] — counters and histograms add, gauges merge by
    high-water mark — and zeroes the shard, so merging at every barrier
    never double-counts.  Only the coordinating thread may call
    [merge_shard], and only while the shard's owner is idle (i.e. at a
    barrier). *)
type shard

val shard : unit -> shard
val shard_counter : shard -> string -> counter
val shard_gauge : shard -> string -> gauge
val shard_histogram : shard -> string -> histogram
val merge_shard : t -> shard -> unit

(** {2 Export} *)

(** [snapshot t] is every metric's current scalar value — counters as
    their count, gauges as their level — sorted by name.  Histograms
    contribute ["<name>.count"].  This feeds the progress sampler. *)
val snapshot : t -> (string * float) list

(** [to_json t] renders the registry sorted by name, with stable field
    order:
    [{"counters":{...},"gauges":{"n":{"value":v,"max":m}},
      "histograms":{"n":{"count":c,"sum":s,"buckets":[[k,n],...]}}}] *)
val to_json : t -> string

(** [to_prom t] renders the registry in the Prometheus text exposition
    format, sorted by name.  Metric names are prefixed with [rescheck_]
    and separators folded to underscores; gauges export a companion
    [<name>_max] high-water series; log2 histograms become cumulative
    [le]-bucketed Prometheus histograms. *)
val to_prom : t -> string

(** JSON helpers shared by the other [Obs] exporters: [json_escape] is a
    string-body escaper, [json_float] prints integral values exactly and
    everything else as [%.6g]. *)
val json_escape : string -> string

val json_float : float -> string
