(** Run profiles: wiring the registry, span timeline and sampler to the
    CLI flags, and writing the output files exactly once per run.

    [configure] is the single entry point the CLI uses: it enables
    telemetry, resets all recording state, arms the sampler, and
    registers an [at_exit] finalizer — the command handlers call [exit]
    from deep inside, and the finalizer guarantees the files are still
    written on every path.  [finalize] is idempotent, so eager callers
    and the exit hook compose.

    The run-profile JSON (schema ["rescheck-run-profile/1"]) bundles the
    build environment, wall clock, GC totals, every metric, the progress
    time-series and the per-span aggregates into one self-describing
    file; the trace-events file is the raw Chrome timeline from
    {!Span.to_trace_json}. *)

(** [configure ?metrics_file ?trace_events_file ?progress ?heartbeat ()]
    enables telemetry for the rest of the process.  [progress] is the
    sampling interval in seconds; [heartbeat] (default off) echoes each
    sample to stderr.  With all arguments absent this is a no-op and
    telemetry stays disabled. *)
val configure :
  ?metrics_file:string ->
  ?trace_events_file:string ->
  ?progress:float ->
  ?heartbeat:bool ->
  unit ->
  unit

(** [finalize ()] takes a last progress sample, writes the configured
    files and disables telemetry.  Safe to call when telemetry was never
    configured, and safe to call twice — the second call is a no-op. *)
val finalize : unit -> unit

(** [build_id ()] identifies the binary: [$RESCHECK_BUILD_ID] when set
    (kept deterministic in test sandboxes), else [git describe --always
    --dirty], else ["unknown"].  Memoised. *)
val build_id : unit -> string

(** [env_json ~wall_seconds] is the uniform environment block every
    [BENCH_*.json] embeds:
    [{"build_id":...,"ocaml":...,"wall_seconds":...,
      "gc":{"minor_words":...,"major_words":...,"major_collections":...}}]. *)
val env_json : wall_seconds:float -> string

(** [run_profile_json ()] renders the full run profile for the
    [--metrics] file. *)
val run_profile_json : unit -> string
