(** Run profiles: wiring the registry, span timeline and sampler to the
    CLI flags, and writing the output files exactly once per run.

    [configure] is the single entry point the CLI uses: it enables
    telemetry, resets all recording state, arms the sampler, and
    registers an [at_exit] finalizer — the command handlers call [exit]
    from deep inside, and the finalizer guarantees the files are still
    written on every path.  [finalize] is idempotent, so eager callers
    and the exit hook compose.

    The run-profile JSON (schema ["rescheck-run-profile/1"]) bundles the
    build environment, wall clock, GC totals, every metric, the progress
    time-series and the per-span aggregates into one self-describing
    file; the trace-events file is the raw Chrome timeline from
    {!Span.to_trace_json}. *)

(** [configure ?metrics_file ?metrics_format ?trace_events_file
    ?progress ?heartbeat ?journal ?journal_file ?watchdog ()] enables
    telemetry and/or forensics for the rest of the process.  [progress]
    is the sampling interval in seconds; [heartbeat] (default off)
    echoes each sample to stderr; [metrics_format] (default [`Json])
    selects the run-profile JSON or the Prometheus text exposition for
    the [metrics_file].

    [journal] arms the {!Journal} flight recorder with the given ring
    capacity and schedules a dump at process exit — to [journal_file]
    when given, else stderr — plus a [SIGUSR1] dump handler.  [watchdog]
    arms the {!Sampler} stall watchdog with the given poll interval;
    it implies telemetry (stall detection is keyed on sampler ticks)
    and arms the journal too, so a stall dump has content.

    With all arguments absent this is a no-op and telemetry stays
    disabled. *)
val configure :
  ?metrics_file:string ->
  ?metrics_format:[ `Json | `Prom ] ->
  ?trace_events_file:string ->
  ?progress:float ->
  ?heartbeat:bool ->
  ?journal:int ->
  ?journal_file:string ->
  ?watchdog:float ->
  unit ->
  unit

(** [finalize ()] takes a last progress sample, writes the configured
    files and disables telemetry.  Safe to call when telemetry was never
    configured, and safe to call twice — the second call is a no-op. *)
val finalize : unit -> unit

(** [build_id ()] identifies the binary: [$RESCHECK_BUILD_ID] when set
    (kept deterministic in test sandboxes), else [git describe --always
    --dirty], else ["unknown"].  Memoised. *)
val build_id : unit -> string

(** [peak_rss_bytes ()] is the process's high-water resident set size,
    read from [/proc/self/status] (VmHWM).  [None] where the proc
    filesystem is absent; never raises. *)
val peak_rss_bytes : unit -> int option

(** [env_json ~wall_seconds] is the uniform environment block every
    [BENCH_*.json] embeds:
    [{"build_id":...,"ocaml":...,"wall_seconds":...,
      "peak_rss_bytes":<bytes or null>,
      "gc":{"minor_words":...,"major_words":...,"major_collections":...}}]. *)
val env_json : wall_seconds:float -> string

(** [run_profile_json ()] renders the full run profile for the
    [--metrics] file. *)
val run_profile_json : unit -> string
