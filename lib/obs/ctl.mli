(** The telemetry master switch and the shared span/sample clock.

    Everything in [Obs] is built around one invariant: when telemetry is
    disabled (the default), every instrumentation site in the codebase
    reduces to a single mutable-bool load and a predictable branch — the
    static no-op backend.  Instrumented code is expected to guard its
    recording with [if Ctl.on () then ...]; [on] is small enough that the
    compiler inlines it cross-module, so the disabled path allocates
    nothing and calls nothing.  The [bench overhead] probe pins this.

    The clock is wall time relative to [enable] (or process start),
    clamped to be non-decreasing so exported span timestamps are monotone
    even if the system clock steps backwards. *)

(** [on ()] is whether telemetry is currently recording. *)
val on : unit -> bool

(** [enable ()] turns recording on and re-bases the clock at now. *)
val enable : unit -> unit

(** [disable ()] turns recording off.  Recorded data stays readable. *)
val disable : unit -> unit

(** [now_s ()] is seconds since the clock base, non-decreasing. *)
val now_s : unit -> float

(** [now_us ()] is microseconds since the clock base, non-decreasing —
    the unit Chrome trace events use. *)
val now_us : unit -> float
