type span =
  | Off
  | Open of {
      name : string;
      cat : string;
      args : (string * int) list;
      ts : float; (* us *)
      tid : int;
    }

type event = {
  e_name : string;
  e_cat : string;
  e_args : (string * int) list;
  e_ts : float;
  e_dur : float;
  e_tid : int;
  e_seq : int; (* insertion order, the sort tiebreak *)
}

(* The timeline is shared across domains (parallel-checker workers record
   wavefront replay spans); appends only happen when telemetry is on, so
   the mutex is never touched on the disabled path. *)
let lock = Mutex.create ()
let events : event list ref = ref []
let n_events = ref 0

let record e =
  Mutex.lock lock;
  events := e :: !events;
  incr n_events;
  Mutex.unlock lock

let enter ?(cat = "") ?(args = []) name =
  if not (Ctl.on ()) then Off
  else
    Open
      {
        name;
        cat;
        args;
        ts = Ctl.now_us ();
        tid = (Domain.self () :> int);
      }

let leave s =
  match s with
  | Off -> ()
  | Open { name; cat; args; ts; tid } ->
    record
      {
        e_name = name;
        e_cat = cat;
        e_args = args;
        e_ts = ts;
        e_dur = Ctl.now_us () -. ts;
        e_tid = tid;
        e_seq = 0;
      }

let scope ?cat ?args name f =
  if not (Ctl.on ()) then f ()
  else begin
    let s = enter ?cat ?args name in
    Fun.protect ~finally:(fun () -> leave s) f
  end

let instant ?cat name =
  if Ctl.on () then leave (enter ?cat name)

let count () =
  Mutex.lock lock;
  let n = !n_events in
  Mutex.unlock lock;
  n

let reset () =
  Mutex.lock lock;
  events := [];
  n_events := 0;
  Mutex.unlock lock

let sorted () =
  Mutex.lock lock;
  let evs = !events in
  Mutex.unlock lock;
  (* restore insertion order as the tiebreak for equal timestamps *)
  let evs = List.rev evs in
  let evs = List.mapi (fun i e -> { e with e_seq = i }) evs in
  List.sort
    (fun a b ->
      match Float.compare a.e_ts b.e_ts with
      | 0 -> Int.compare a.e_seq b.e_seq
      | c -> c)
    evs

let event_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"name\":\"";
  Buffer.add_string buf (Metrics.json_escape e.e_name);
  Buffer.add_string buf "\",\"cat\":\"";
  Buffer.add_string buf (Metrics.json_escape e.e_cat);
  Buffer.add_string buf "\",\"ph\":\"X\",\"ts\":";
  Buffer.add_string buf (Printf.sprintf "%.3f" e.e_ts);
  Buffer.add_string buf ",\"dur\":";
  Buffer.add_string buf (Printf.sprintf "%.3f" e.e_dur);
  Buffer.add_string buf ",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int e.e_tid);
  if e.e_args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (Metrics.json_escape k);
        Buffer.add_string buf "\":";
        Buffer.add_string buf (string_of_int v))
      e.e_args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_trace_json () =
  let evs = sorted () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      Buffer.add_string buf (event_json e))
    evs;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let aggregate () =
  let totals = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let key = (e.e_name, e.e_cat) in
      let n, t =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt totals key)
      in
      Hashtbl.replace totals key (n + 1, t +. e.e_dur))
    (sorted ());
  Hashtbl.fold (fun (name, cat) (n, t) acc -> (name, cat, n, t) :: acc) totals []
  |> List.sort compare
