(** Periodic progress sampling: a time-series of the global registry's
    live values, driven by cheap ticks from instrumented hot paths.

    Long-running phases call {!tick} at natural unit-of-work boundaries
    (a solver conflict, a checked chain, a streamed trace event).  A tick
    is a counter bump; only every 64th tick reads the clock, and a sample
    is taken when the configured interval has elapsed.  Each sample
    snapshots every counter and gauge in {!Metrics.global} — live
    clauses, arena bytes, encoder buffer occupancy — plus a derived
    [solver.conflicts_per_s] rate, and optionally prints a one-line
    heartbeat to stderr.

    Ticks may arrive from any domain but sampling state is unsynchronised
    by design: a lost or duplicated sample under contention only
    perturbs the time-series, never the checked artifacts.  With no
    interval configured, {!tick} is a no-op beyond its counter bump. *)

(** [configure ~interval ~heartbeat ()] arms the sampler: a sample is
    taken roughly every [interval] seconds (non-positive disables);
    [heartbeat] additionally prints each sample to stderr. *)
val configure : interval:float -> heartbeat:bool -> unit -> unit

(** [disarm ()] stops sampling and clears the configuration (recorded
    samples are kept until {!reset}). *)
val disarm : unit -> unit

(** [tick ()] notes one unit of work.  Call only under [Ctl.on ()]. *)
val tick : unit -> unit

(** [sample_now ()] forces a sample, bypassing the interval check. *)
val sample_now : unit -> unit

(** {2 Stall watchdog}

    Liveness, defined as tick advancement: a real-interval timer
    ([setitimer]/[SIGALRM]) polls the tick counter, and [strikes]
    consecutive polls with no new ticks count as a stall — a heartbeat
    line goes to stderr and [on_stall] runs (the CLI dumps the
    {!Journal} there).  The watchdog fires once per stall episode;
    resumed progress re-arms it.  This is the liveness primitive the
    future [rescheck serve] daemon reuses per job. *)

(** [arm_watchdog ?strikes ~interval ~on_stall ()] starts the watchdog
    polling every [interval] seconds (non-positive is a no-op);
    [strikes] defaults to 2. *)
val arm_watchdog :
  ?strikes:int -> interval:float -> on_stall:(unit -> unit) -> unit -> unit

val disarm_watchdog : unit -> unit

(** [poll ()] is one watchdog inspection — exactly what the timer signal
    runs.  Exposed so tests can drive stall detection deterministically
    without timers or sleeps. *)
val poll : unit -> unit

(** [stalls ()] is how many stall episodes have fired since process
    start. *)
val stalls : unit -> int

(** [samples ()] is the recorded time-series, oldest first. *)
val samples : unit -> (float * (string * float) list) list

val reset : unit -> unit

(** [to_json ()] renders the series as
    [[{"t":seconds,"values":{...}},...]]. *)
val to_json : unit -> string
