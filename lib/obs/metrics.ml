type counter = { mutable count : int }
type gauge = { mutable value : float; mutable high : float }

let nbuckets = 63

type histogram = {
  buckets : int array; (* log2 buckets, see [Histogram.bucket_index] *)
  mutable n : int;
  mutable total : float;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

(* The name table is touched only at handle creation and export, both off
   the hot path, so one mutex suffices. *)
type t = { table : (string, metric) Hashtbl.t; lock : Mutex.t }

let create () = { table = Hashtbl.create 64; lock = Mutex.create () }
let global = create ()

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let register t name make describe =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.replace t.table name m;
        m)
  |> fun m ->
  match describe m with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %S is already registered as another kind"
         name)

let counter t name =
  register t name
    (fun () -> M_counter { count = 0 })
    (function M_counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () -> M_gauge { value = 0.0; high = 0.0 })
    (function M_gauge g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun () -> M_histogram { buckets = Array.make nbuckets 0; n = 0; total = 0.0 })
    (function M_histogram h -> Some h | _ -> None)

module Counter = struct
  let[@inline] incr c n = c.count <- c.count + n
  let get c = c.count
end

module Gauge = struct
  let[@inline] set g v =
    g.value <- v;
    if v > g.high then g.high <- v

  let get g = g.value
  let max_value g = g.high
end

module Histogram = struct
  (* bucket 0: v <= 0; bucket k >= 1: 2^(k-1) <= v < 2^k.  The top bucket
     absorbs everything wider. *)
  let bucket_index v =
    if v <= 0 then 0
    else begin
      let bits = ref 0 in
      let n = ref v in
      while !n <> 0 do
        incr bits;
        n := !n lsr 1
      done;
      min (nbuckets - 1) !bits
    end

  let observe h v =
    h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
    h.n <- h.n + 1;
    h.total <- h.total +. float_of_int v

  let count h = h.n
  let sum h = h.total

  let buckets h =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if h.buckets.(i) <> 0 then acc := (i, h.buckets.(i)) :: !acc
    done;
    !acc
end

let reset t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | M_counter c -> c.count <- 0
          | M_gauge g ->
            g.value <- 0.0;
            g.high <- 0.0
          | M_histogram h ->
            Array.fill h.buckets 0 nbuckets 0;
            h.n <- 0;
            h.total <- 0.0)
        t.table)

(* --- shards -------------------------------------------------------------- *)

type shard = t

let shard () = create ()
let shard_counter = counter
let shard_gauge = gauge
let shard_histogram = histogram

let merge_shard parent sh =
  with_lock sh (fun () ->
      Hashtbl.iter
        (fun name m ->
          match m with
          | M_counter c ->
            Counter.incr (counter parent name) c.count;
            c.count <- 0
          | M_gauge g ->
            let pg = gauge parent name in
            (* cross-domain gauges are high-water marks: keep the max *)
            if g.high > pg.high then pg.high <- g.high;
            if g.value > pg.value then pg.value <- g.value;
            g.value <- 0.0;
            g.high <- 0.0
          | M_histogram h ->
            let ph = histogram parent name in
            for i = 0 to nbuckets - 1 do
              ph.buckets.(i) <- ph.buckets.(i) + h.buckets.(i);
              h.buckets.(i) <- 0
            done;
            ph.n <- ph.n + h.n;
            ph.total <- ph.total +. h.total;
            h.n <- 0;
            h.total <- 0.0)
        sh.table)

(* --- export -------------------------------------------------------------- *)

let sorted_items t =
  with_lock t (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  List.map
    (fun (name, m) ->
      match m with
      | M_counter c -> (name, float_of_int c.count)
      | M_gauge g -> (name, g.value)
      | M_histogram h -> (name ^ ".count", float_of_int h.n))
    (sorted_items t)

(* JSON floats: integral values print as integers so the common case
   (counts, byte sizes) stays exact and diffable *)
let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Prometheus text exposition.  Metric names become
   [rescheck_<name with separators folded to '_'>]; gauges export their
   level and a companion [_max] high-water series; log2 histograms map
   to cumulative [le] buckets whose bounds are each bucket's largest
   representable integer. *)
let prom_name name =
  let b = Buffer.create (String.length name + 9) in
  Buffer.add_string b "rescheck_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let to_prom t =
  let items = sorted_items t in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, m) ->
      let pn = prom_name name in
      match m with
      | M_counter c ->
        line "# TYPE %s counter" pn;
        line "%s %d" pn c.count
      | M_gauge g ->
        line "# TYPE %s gauge" pn;
        line "%s %s" pn (json_float g.value);
        line "# TYPE %s_max gauge" pn;
        line "%s_max %s" pn (json_float g.high)
      | M_histogram h ->
        line "# TYPE %s histogram" pn;
        let cum = ref 0 in
        List.iter
          (fun (k, n) ->
            cum := !cum + n;
            (* bucket 0 holds v <= 0; bucket k >= 1 holds [2^(k-1), 2^k) *)
            let upper = if k = 0 then 0 else (1 lsl k) - 1 in
            line "%s_bucket{le=\"%d\"} %d" pn upper !cum)
          (Histogram.buckets h);
        line "%s_bucket{le=\"+Inf\"} %d" pn h.n;
        line "%s_sum %s" pn (json_float h.total);
        line "%s_count %d" pn h.n)
    items;
  Buffer.contents b

let to_json t =
  let items = sorted_items t in
  let pick f = List.filter_map f items in
  let obj fields = "{" ^ String.concat "," fields ^ "}" in
  let field name value = Printf.sprintf "\"%s\":%s" (json_escape name) value in
  let counters =
    pick (function
      | name, M_counter c -> Some (field name (string_of_int c.count))
      | _ -> None)
  in
  let gauges =
    pick (function
      | name, M_gauge g ->
        Some
          (field name
             (obj
                [
                  field "value" (json_float g.value);
                  field "max" (json_float g.high);
                ]))
      | _ -> None)
  in
  let histograms =
    pick (function
      | name, M_histogram h ->
        let buckets =
          Histogram.buckets h
          |> List.map (fun (k, n) -> Printf.sprintf "[%d,%d]" k n)
          |> String.concat ","
        in
        Some
          (field name
             (obj
                [
                  field "count" (string_of_int h.n);
                  field "sum" (json_float h.total);
                  field "buckets" ("[" ^ buckets ^ "]");
                ]))
      | _ -> None)
  in
  obj
    [
      field "counters" (obj counters);
      field "gauges" (obj gauges);
      field "histograms" (obj histograms);
    ]
