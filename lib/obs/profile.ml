let build_id_memo = ref None

let git_describe () =
  (* best-effort: a missing git binary or a non-repo checkout must not
     break telemetry, so swallow every failure mode *)
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let build_id () =
  match !build_id_memo with
  | Some id -> id
  | None ->
    let id =
      match Sys.getenv_opt "RESCHECK_BUILD_ID" with
      | Some id when id <> "" -> id
      | _ -> ( match git_describe () with Some id -> id | None -> "unknown")
    in
    build_id_memo := Some id;
    id

let gc_json () =
  let st = Gc.quick_stat () in
  Printf.sprintf
    "{\"minor_words\":%s,\"major_words\":%s,\"major_collections\":%d}"
    (Metrics.json_float st.Gc.minor_words)
    (Metrics.json_float st.Gc.major_words)
    st.Gc.major_collections

let peak_rss_bytes () =
  (* Linux exposes the high-water RSS as VmHWM in /proc/self/status;
     elsewhere (or in stripped sandboxes) the file is absent and the
     profile reports null.  Best-effort by contract: never raises. *)
  try
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          match input_line ic with
          | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6))
                " %d kB" (fun kb -> Some (kb * 1024))
            else scan ()
          | exception End_of_file -> None
        in
        scan ())
  with Sys_error _ | Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let env_json ~wall_seconds =
  Printf.sprintf
    "{\"build_id\":\"%s\",\"ocaml\":\"%s\",\"wall_seconds\":%.6f,\"peak_rss_bytes\":%s,\"gc\":%s}"
    (Metrics.json_escape (build_id ()))
    (Metrics.json_escape Sys.ocaml_version)
    wall_seconds
    (match peak_rss_bytes () with
     | Some bytes -> string_of_int bytes
     | None -> "null")
    (gc_json ())

let spans_json () =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i (name, cat, n, total_us) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"count\":%d,\"total_us\":%.3f}"
           (Metrics.json_escape name) (Metrics.json_escape cat) n total_us))
    (Span.aggregate ());
  Buffer.add_char buf ']';
  Buffer.contents buf

let run_profile_json () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n\"schema\":\"rescheck-run-profile/1\",\n";
  Buffer.add_string buf (Printf.sprintf "\"env\":%s,\n" (env_json ~wall_seconds:(Ctl.now_s ())));
  Buffer.add_string buf (Printf.sprintf "\"metrics\":%s,\n" (Metrics.to_json Metrics.global));
  Buffer.add_string buf (Printf.sprintf "\"progress\":%s,\n" (Sampler.to_json ()));
  Buffer.add_string buf (Printf.sprintf "\"spans\":%s\n}\n" (spans_json ()));
  Buffer.contents buf

type config = {
  mutable metrics_file : string option;
  mutable metrics_format : [ `Json | `Prom ];
  mutable trace_events_file : string option;
  mutable progress : float option;
  mutable journal_file : string option;
  mutable finalized : bool;
  mutable journal_finalized : bool;
  mutable exit_hooked : bool;
}

let cfg =
  {
    metrics_file = None;
    metrics_format = `Json;
    trace_events_file = None;
    progress = None;
    journal_file = None;
    finalized = false;
    journal_finalized = false;
    exit_hooked = false;
  }

let write_file path contents =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents)
  with Sys_error msg -> Printf.eprintf "rescheck: obs: cannot write %s\n" msg

let dump_journal () =
  match cfg.journal_file with
  | Some path -> write_file path (Journal.to_json () ^ "\n")
  | None -> Journal.dump stderr

let finalize () =
  (* The journal path is independent of [Ctl]: [--journal] alone arms
     the recorder without enabling metrics, and its dump must still land
     on every exit — including the deep [exit 2] refusal paths. *)
  if Journal.on () && not cfg.journal_finalized then begin
    cfg.journal_finalized <- true;
    Sampler.disarm_watchdog ();
    dump_journal ();
    Journal.disarm ()
  end;
  if Ctl.on () && not cfg.finalized then begin
    cfg.finalized <- true;
    if cfg.progress <> None then Sampler.sample_now ();
    Sampler.disarm ();
    Sampler.disarm_watchdog ();
    (match cfg.metrics_file with
     | Some path ->
       write_file path
         (match cfg.metrics_format with
          | `Json -> run_profile_json ()
          | `Prom -> Metrics.to_prom Metrics.global)
     | None -> ());
    (match cfg.trace_events_file with
     | Some path -> write_file path (Span.to_trace_json ())
     | None -> ());
    Ctl.disable ()
  end

let hook_exit () =
  (* the CLI handlers call [exit] from arbitrary depths; the hook makes
     sure the profile and journal still land on disk *)
  if not cfg.exit_hooked then begin
    cfg.exit_hooked <- true;
    at_exit finalize
  end

let configure ?metrics_file ?(metrics_format = `Json) ?trace_events_file
    ?progress ?(heartbeat = false) ?journal ?journal_file ?watchdog () =
  let telemetry =
    metrics_file <> None || trace_events_file <> None || progress <> None
  in
  let forensics = journal <> None || watchdog <> None in
  if forensics then begin
    (match journal with
     | Some capacity -> Journal.arm ~capacity ()
     | None -> Journal.arm ());
    cfg.journal_file <- journal_file;
    cfg.journal_finalized <- false;
    Journal.install_sigusr1 ();
    (match watchdog with
     | Some interval when interval > 0.0 ->
       (* stall detection is keyed on sampler ticks, which only fire
          under [Ctl.on] — the watchdog therefore implies telemetry *)
       Ctl.enable ();
       Sampler.arm_watchdog ~interval ~on_stall:dump_journal ()
     | _ -> ());
    hook_exit ()
  end;
  if telemetry then begin
    cfg.metrics_file <- metrics_file;
    cfg.metrics_format <- metrics_format;
    cfg.trace_events_file <- trace_events_file;
    cfg.progress <- progress;
    cfg.finalized <- false;
    Metrics.reset Metrics.global;
    Span.reset ();
    Sampler.reset ();
    (match progress with
     | Some interval -> Sampler.configure ~interval ~heartbeat ()
     | None -> Sampler.disarm ());
    Ctl.enable ();
    hook_exit ()
  end
