(** A minimal JSON reader for the observability artifacts rescheck
    itself emits — run profiles, journals, refusal reports, BENCH
    tables.  One recursive-descent pass, no dependencies, strict enough
    for round-tripping our own writers; not a general-purpose validator
    (it accepts a few lenient forms such as lone [NaN] never emitted by
    us anyway).

    Parsed numbers keep their [float] value; object fields keep file
    order (our writers emit deterministically sorted fields, and diffs
    want to preserve that order in reports). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a byte offset and a reason. *)

val of_string : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val of_file : string -> t
(** Reads and parses a whole file.
    @raise Sys_error if unreadable, [Parse_error] if malformed. *)

(** {2 Accessors} — total functions returning options; [None] on a kind
    mismatch as well as on absence, so callers degrade gracefully when a
    schema evolves. *)

val member : string -> t -> t option
(** [member k j] is field [k] of object [j]. *)

val string : t -> string option
val number : t -> float option
val int : t -> int option
val bool : t -> bool option
val list : t -> t list option
val obj : t -> (string * t) list option

val to_string : t -> string
(** Re-render (compact, field order preserved); used by tests to check
    round-trips and by [explain] to embed sub-documents verbatim. *)
