(** The flight recorder: a bounded ring buffer of structured
    per-subsystem events, kept cheap enough to compile into every build.

    Where {!Metrics} aggregates (how many restarts?) and {!Span} times
    (how long did pass two take?), the journal remembers {e what
    happened, in order}: the last N notable events — solver restarts and
    learned-DB reductions, checker window spills and reloads, parser
    slow-path bails, arena reservation fallbacks, wavefront barriers —
    so a refusal, a stall or a crash can explain itself instead of
    leaving a bare exit code.

    The discipline mirrors {!Ctl}: when the journal is disarmed (the
    default), every recording site reduces to one mutable-bool load and
    a predictable branch — sites guard with [if Journal.on () then
    Journal.record ...], and [bench overhead] models the disabled-guard
    cost next to the metrics guard.  Recording is unsynchronised by
    design: entries may arrive from any domain, and a lost entry under
    contention only perturbs the flight record, never a checked
    artifact.

    Dumps are {e deterministic}: an entry is a sequence number, a
    subsystem, an event name and integer arguments — no wall-clock
    timestamps — so the same run produces a byte-identical journal,
    which is what lets tests and CI diff dumps across runs.  Triggers:
    the [--journal[=N]] flag dumps at process exit, [SIGUSR1] dumps
    immediately to stderr, the {!Sampler} watchdog dumps on a detected
    stall, and a positioned refusal embeds the tail in its
    [rescheck-refusal/1] report. *)

type entry = {
  seq : int;  (** 0-based position in the whole recording, pre-wrap *)
  sub : string;  (** subsystem, e.g. ["solver"], ["window"], ["arena"] *)
  event : string;  (** event name within the subsystem, e.g. ["restart"] *)
  args : (string * int) list;  (** small integer payload, field order kept *)
}

(** [on ()] is whether the journal is currently recording.  The guard
    every instrumentation site uses; small enough to inline. *)
val on : unit -> bool

(** [arm ?capacity ()] starts recording into a fresh ring of [capacity]
    entries (default 1024, clamped to at least 1).  Re-arming resets the
    ring and the sequence counter. *)
val arm : ?capacity:int -> unit -> unit

(** [disarm ()] stops recording; the recorded entries stay readable
    until the next [arm]. *)
val disarm : unit -> unit

(** [record ~sub event args] appends one entry, overwriting the oldest
    when the ring is full.  Call only under [on ()]. *)
val record : sub:string -> string -> (string * int) list -> unit

(** [recorded ()] is the total number of entries ever recorded since the
    last [arm] — entries beyond the capacity have been overwritten, so
    [recorded () - List.length (entries ())] is the number lost to
    wraparound. *)
val recorded : unit -> int

val capacity : unit -> int

(** [entries ()] is the ring's current contents, oldest first. *)
val entries : unit -> entry list

(** [reset ()] clears the ring and sequence counter without changing
    the armed state. *)
val reset : unit -> unit

(** [to_json ()] renders the flight record deterministically:
    [{"schema":"rescheck-journal/1","capacity":N,"recorded":N,
      "dropped":N,"entries":[{"seq":..,"sub":..,"event":..,
      "args":{..}},...]}]. *)
val to_json : unit -> string

(** [dump oc] writes [to_json ()] followed by a newline. *)
val dump : out_channel -> unit

(** [install_sigusr1 ()] installs a [SIGUSR1] handler that dumps the
    journal to stderr — live introspection of a wedged or long run.
    Best-effort: platforms without the signal are a no-op. *)
val install_sigusr1 : unit -> unit
