type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg =
  raise (Parse_error (Printf.sprintf "byte %d: %s" pos msg))

(* One mutable cursor over the input string; each [parse_*] leaves the
   cursor just past what it consumed. *)
type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st.pos (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

let parse_string_body st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
      st.pos <- st.pos + 1;
      match peek st with
      | None -> fail st.pos "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then
            fail st.pos "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail st.pos "bad \\u escape"
          in
          st.pos <- st.pos + 4;
          (* Our own writers only escape control characters, so a plain
             UTF-8 encode of the code point covers everything we read
             back (surrogate pairs from foreign files decode as two
             replacement-range chars, which is fine for reports). *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail st.pos (Printf.sprintf "bad escape \\%c" c));
        go ())
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let n = String.length st.src in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < n && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some v -> Number v
  | None -> fail start (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws st;
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st.pos "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st.pos "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st.pos "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      of_string s)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let string = function String s -> Some s | _ -> None
let number = function Number v -> Some v | _ -> None

let int = function
  | Number v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None
let obj = function Obj l -> Some l | _ -> None

let rec to_string = function
  | Null -> "null"
  | Bool true -> "true"
  | Bool false -> "false"
  | Number v -> Metrics.json_float v
  | String s -> Printf.sprintf {|"%s"|} (Metrics.json_escape s)
  | List items ->
    "[" ^ String.concat "," (List.map to_string items) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf {|"%s":%s|} (Metrics.json_escape k) (to_string v))
           fields)
    ^ "}"
