let enabled = ref false

let[@inline] on () = !enabled

let base = ref (Unix.gettimeofday ())

(* wall clock clamped to non-decreasing: exported span timestamps must be
   monotone (the CI trace validation asserts it), and gettimeofday may
   step under NTP *)
let last = ref 0.0

let now_s () =
  let t = Unix.gettimeofday () -. !base in
  if t > !last then begin
    last := t;
    t
  end
  else !last

let now_us () = now_s () *. 1e6

let enable () =
  base := Unix.gettimeofday ();
  last := 0.0;
  enabled := true

let disable () = enabled := false
