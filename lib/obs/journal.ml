type entry = {
  seq : int;
  sub : string;
  event : string;
  args : (string * int) list;
}

(* The armed flag is the hot-path guard: [on] compiles to a load and a
   branch, same shape as [Ctl.on], so journal sites cost nothing
   measurable while disarmed.  The ring itself is plain mutable state
   with no lock — concurrent recorders may occasionally clobber one
   slot, which is acceptable for a flight record and keeps the armed
   cost at two stores per event. *)
let armed = ref false
let on () = !armed

let default_capacity = 1024

(* [ring] slots hold [None] until first written; [total] counts every
   record since the last arm/reset, so the write index is just
   [total mod capacity] and wraparound needs no extra bookkeeping. *)
let ring : entry option array ref = ref [||]
let total = ref 0

let arm ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  ring := Array.make capacity None;
  total := 0;
  armed := true

let disarm () = armed := false
let capacity () = Array.length !ring
let recorded () = !total

let reset () =
  let n = Array.length !ring in
  if n > 0 then Array.fill !ring 0 n None;
  total := 0

let record ~sub event args =
  let cap = Array.length !ring in
  if cap > 0 then begin
    let seq = !total in
    !ring.(seq mod cap) <- Some { seq; sub; event; args };
    total := seq + 1
  end

let entries () =
  let cap = Array.length !ring in
  if cap = 0 then []
  else begin
    (* Oldest surviving entry sits at the write index once we have
       wrapped; before that the ring is simply a prefix. *)
    let n = !total in
    let start = if n <= cap then 0 else n mod cap in
    let count = min n cap in
    let out = ref [] in
    for i = count - 1 downto 0 do
      match !ring.((start + i) mod cap) with
      | Some e -> out := e :: !out
      | None -> ()
    done;
    !out
  end

let entry_json b e =
  Buffer.add_string b
    (Printf.sprintf {|{"seq":%d,"sub":"%s","event":"%s","args":{|} e.seq
       (Metrics.json_escape e.sub)
       (Metrics.json_escape e.event));
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf {|"%s":%d|} (Metrics.json_escape k) v))
    e.args;
  Buffer.add_string b "}}"

let to_json () =
  let es = entries () in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"schema":"rescheck-journal/1","capacity":%d,"recorded":%d,"dropped":%d,"entries":[|}
       (capacity ()) !total
       (max 0 (!total - List.length es)));
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      entry_json b e)
    es;
  Buffer.add_string b "]}";
  Buffer.contents b

let dump oc =
  output_string oc (to_json ());
  output_char oc '\n';
  flush oc

let sigusr1_installed = ref false

let install_sigusr1 () =
  if not !sigusr1_installed then begin
    sigusr1_installed := true;
    try
      Sys.set_signal Sys.sigusr1
        (Sys.Signal_handle (fun _ -> if !armed then dump stderr))
    with Invalid_argument _ | Sys_error _ -> ()
  end
