let interval = ref 0.0
let heartbeat = ref false
let ticks = ref 0
let next_due = ref infinity
let series : (float * (string * float) list) list ref = ref []
let last_conflicts = ref 0.0
let last_sample_t = ref 0.0

let configure ~interval:iv ~heartbeat:hb () =
  interval := iv;
  heartbeat := hb;
  next_due := if iv > 0.0 then 0.0 else infinity;
  last_conflicts := 0.0;
  last_sample_t := 0.0

let disarm () =
  interval := 0.0;
  heartbeat := false;
  next_due := infinity

let reset () =
  series := [];
  ticks := 0;
  last_conflicts := 0.0;
  last_sample_t := 0.0

(* the handful of metrics a human watches scroll by; everything else is
   in the sample rows and the run profile *)
let heartbeat_keys =
  [
    "solver.conflicts";
    "solver.conflicts_per_s";
    "kernel.live_clauses";
    "kernel.arena_bytes";
    "trace.buffered_bytes";
  ]

let print_heartbeat t values =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (Printf.sprintf "obs: t=%.2fs" t);
  List.iter
    (fun key ->
      match List.assoc_opt key values with
      | Some v ->
        Buffer.add_string buf
          (Printf.sprintf " %s=%s"
             (match String.rindex_opt key '.' with
              | Some i -> String.sub key (i + 1) (String.length key - i - 1)
              | None -> key)
             (Metrics.json_float v))
      | None -> ())
    heartbeat_keys;
  prerr_endline (Buffer.contents buf)

let sample_now () =
  let t = Ctl.now_s () in
  let values = Metrics.snapshot Metrics.global in
  (* derived conflict rate between consecutive samples *)
  let values =
    match List.assoc_opt "solver.conflicts" values with
    | Some c ->
      let dt = t -. !last_sample_t in
      let rate = if dt > 0.0 then (c -. !last_conflicts) /. dt else 0.0 in
      last_conflicts := c;
      ("solver.conflicts_per_s", Float.max 0.0 rate) :: values
    | None -> values
  in
  last_sample_t := t;
  series := (t, values) :: !series;
  if !heartbeat then print_heartbeat t values

let tick () =
  incr ticks;
  (* read the clock only every 64 ticks: ticking must stay cheap even at
     per-conflict granularity *)
  if !ticks land 63 = 0 && !interval > 0.0 then begin
    let t = Ctl.now_s () in
    if t >= !next_due then begin
      next_due := t +. !interval;
      sample_now ()
    end
  end

(* --- stall watchdog ------------------------------------------------------ *)

(* Liveness is defined as tick advancement: instrumented hot paths tick
   per unit of work, so a wall-clock interval with no new ticks means
   the process is wedged (or off doing unticked work — the strike count
   exists to absorb short excursions).  The timer is a real [setitimer]
   so detection works even when the main loop is stuck; [poll] holds the
   whole decision so tests can drive it without signals or sleeps. *)
let wd_interval = ref 0.0
let wd_strike_limit = ref 2
let wd_strikes = ref 0
let wd_last_ticks = ref 0
let wd_fired = ref false
let wd_stall_count = ref 0
let wd_on_stall : (unit -> unit) ref = ref (fun () -> ())

let poll () =
  if !wd_interval > 0.0 then begin
    let t = !ticks in
    if t = !wd_last_ticks then begin
      incr wd_strikes;
      if !wd_strikes >= !wd_strike_limit && not !wd_fired then begin
        (* fire once per stall episode; progress re-arms it *)
        wd_fired := true;
        incr wd_stall_count;
        prerr_endline
          (Printf.sprintf
             "obs: watchdog: no forward progress in %.3gs (%d ticks); dumping journal"
             (float_of_int !wd_strikes *. !wd_interval)
             t);
        !wd_on_stall ()
      end
    end
    else begin
      wd_last_ticks := t;
      wd_strikes := 0;
      wd_fired := false
    end
  end

let set_timer seconds =
  try
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = seconds; it_value = seconds })
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let arm_watchdog ?(strikes = 2) ~interval ~on_stall () =
  if interval > 0.0 then begin
    wd_interval := interval;
    wd_strike_limit := max 1 strikes;
    wd_strikes := 0;
    wd_last_ticks := !ticks;
    wd_fired := false;
    wd_on_stall := on_stall;
    (try Sys.set_signal Sys.sigalrm (Sys.Signal_handle (fun _ -> poll ()))
     with Invalid_argument _ | Sys_error _ -> ());
    set_timer interval
  end

let disarm_watchdog () =
  if !wd_interval > 0.0 then begin
    wd_interval := 0.0;
    set_timer 0.0
  end

let stalls () = !wd_stall_count

let samples () = List.rev !series

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i (t, values) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"t\":%.3f,\"values\":{" t);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (Metrics.json_escape k);
          Buffer.add_string buf "\":";
          Buffer.add_string buf (Metrics.json_float v))
        values;
      Buffer.add_string buf "}}")
    (samples ());
  Buffer.add_char buf ']';
  Buffer.contents buf
