(** Monotonic-clock spans and the Chrome trace-event exporter.

    A span brackets one phase of work (solve, a checker pass, a
    wavefront, an encoder flush) with enter/leave timestamps from
    {!Ctl}'s monotone clock.  Completed spans accumulate in a
    process-wide timeline and export as a JSON array of Chrome
    "complete" ([ph = "X"]) events, which loads directly in
    [chrome://tracing] and Perfetto.

    Span naming convention (see DESIGN.md "Observability"):
    [<subsystem>.<phase>], with the category carrying the variant — e.g.
    [check.pass_one] with category [bf] vs [df].  The exporter sorts by
    start timestamp, so timelines are stable for sequential runs and the
    CI monotonicity check holds for parallel ones.

    When telemetry is off, {!enter} returns a static dummy and {!scope}
    tail-calls its body: one branch, no allocation. *)

type span

(** [enter ?cat ?args name] opens a span.  [args] (small integer
    annotations, e.g. a wavefront width) are attached to the exported
    event.  Returns a no-op token when telemetry is off. *)
val enter : ?cat:string -> ?args:(string * int) list -> string -> span

(** [leave s] closes the span and records the event.  No-op on the dummy
    token. *)
val leave : span -> unit

(** [scope ?cat ?args name f] runs [f ()] inside a span; the span is
    recorded even when [f] raises. *)
val scope : ?cat:string -> ?args:(string * int) list -> string -> (unit -> 'a) -> 'a

(** [instant ?cat name] records a zero-duration event. *)
val instant : ?cat:string -> string -> unit

(** [count ()] is the number of recorded events. *)
val count : unit -> int

(** [reset ()] drops every recorded event. *)
val reset : unit -> unit

(** [to_trace_json ()] renders the timeline as a Chrome trace-event JSON
    array, one event per line, sorted by start timestamp, each with the
    stable field order [name, cat, ph, ts, dur, pid, tid(, args)].
    Timestamps and durations are microseconds. *)
val to_trace_json : unit -> string

(** [aggregate ()] is per-(name, cat) totals [(name, cat, count,
    total_us)] sorted by name — the summary the run profile embeds. *)
val aggregate : unit -> (string * string * int * float) list
