(** Push-based event consumers.

    A sink is the downstream half of the streaming trace pipeline: the
    solver (or a decoder replaying a file) pushes {!Event.t} values into
    it one at a time, and [close] finalizes whatever the sink was
    accumulating — flushing an encoder's buffer, sealing a lint report,
    completing a checker's counting pass.  Sinks compose: {!tee} fans one
    stream out to several consumers, {!counting} threads accounting
    through, and {!buffer} recovers the old materialize-everything
    behaviour as just another sink. *)

type t

(** [make ?close push] wraps a push function into a sink.  [close] runs at
    most once, on the first {!close}. *)
val make : ?close:(unit -> unit) -> (Event.t -> unit) -> t

val push : t -> Event.t -> unit

(** [close t] finalizes the sink.  Idempotent: second and later calls are
    no-ops. *)
val close : t -> unit

(** Discards everything. *)
val null : t

(** [tee sinks] pushes every event to each of [sinks] in list order
    (order is observable — the online validator relies on its lint sink
    seeing an event before the encoder advances its byte counter) and
    closes them all, in list order, on close. *)
val tee : t list -> t

(** Live accounting cell updated before the event is forwarded. *)
type counter = {
  mutable events : int;
  mutable bytes : int;  (** stays [0] unless [measure] was given *)
}

(** [counting ?measure next] threads event (and, with [measure], byte)
    accounting around [next]: the returned sink forwards everything to
    [next] and closes it on close.  [measure] is typically
    {!Writer.encoded_size}. *)
val counting : ?measure:(Event.t -> int) -> t -> counter * t

(** The materializing sink: keeps every pushed event. *)
type buffered

val buffer : unit -> buffered * t

(** [buffered_events b] are the pushed events in push order. *)
val buffered_events : buffered -> Event.t list
