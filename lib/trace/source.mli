(** Pull-based event producers.

    A source is the upstream half of the streaming pipeline: callers pull
    events one at a time with {!next} until [None].  Decoding cursors
    ({!Reader.cursor}) wrap into sources with {!of_cursor}; {!tap} lets a
    bystander (the linter) observe each event in passing, which is how
    [rescheck check] lints and checks in a single parse.

    Unlike a {!Reader.cursor}, a source is single-shot: there is no
    rewind.  Multi-pass checkers take a source for their first pass and a
    re-readable {!Reader.source} for the rest. *)

type t

(** [make ?close ?pos next] builds a source from a pull function.  [pos]
    reports where the most recently yielded event started (used for
    diagnostics); it defaults to a constant. *)
val make :
  ?close:(unit -> unit) -> ?pos:(unit -> Reader.pos) -> (unit -> Event.t option) -> t

(** [next t] pulls the next event, or [None] at end of stream.
    @raise Reader.Parse_error if the underlying decoder does. *)
val next : t -> Event.t option

(** [last_pos t] is where the most recently yielded event starts. *)
val last_pos : t -> Reader.pos

(** [close t] releases underlying resources; idempotent. *)
val close : t -> unit

(** [of_cursor cur] pulls from a decoding cursor, reporting its positions.
    The cursor is not rewound first; with [~close_cursor:true] closing the
    source closes the cursor. *)
val of_cursor : ?close_cursor:bool -> Reader.cursor -> t

(** [of_list events] replays an in-memory event list (positions are
    1-based event ordinals rendered as lines). *)
val of_list : Event.t list -> t

(** [tap f t] forwards [t] unchanged, calling [f pos event] on each event
    as it passes through. *)
val tap : (Reader.pos -> Event.t -> unit) -> t -> t

val iter : (Event.t -> unit) -> t -> unit
val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

(** [drain t sink] pushes every remaining event of [t] into [sink].
    Closes neither side. *)
val drain : t -> Sink.t -> unit
