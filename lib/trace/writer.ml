type format = Ascii | Binary

let binary_magic = "ZKB1"
let binary_magic_v2 = "ZKB2"

(* Format versions.  Version 1 is the original paper trace; version 2
   adds deletion-hint records ([Event.Delete]).  The version is carried
   in-band — binary traces bake it into the fourth magic byte, ASCII
   traces open with a [v 2] directive line — so old readers refuse new
   traces cleanly instead of misparsing them. *)

let check_version v =
  if v <> 1 && v <> 2 then
    invalid_arg
      (Printf.sprintf "Trace.Writer: unsupported trace format version %d" v)

let magic_of_version v = if v = 2 then binary_magic_v2 else binary_magic

let ascii_prologue v = if v = 2 then "v 2\n" else ""

let check_event version (e : Event.t) =
  match e with
  | Delete _ when version < 2 ->
    invalid_arg
      "Trace.Writer: Delete records require trace format version 2"
  | Header _ | Learned _ | Level0 _ | Final_conflict _ | Delete _ -> ()

let add_varint buf n =
  assert (n >= 0);
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      loop (n lsr 7)
    end
  in
  loop n

(* Trace emission sits on the solver's hot path (Table 1 measures its
   overhead), so integers are rendered by hand instead of through
   Printf's interpreter. *)
let add_uint buf n =
  assert (n >= 0);
  if n < 10 then Buffer.add_char buf (Char.chr (Char.code '0' + n))
  else begin
    let digits = Bytes.create 19 in
    let rec fill i n =
      if n = 0 then i
      else begin
        Bytes.set digits i (Char.chr (Char.code '0' + (n mod 10)));
        fill (i + 1) (n / 10)
      end
    in
    let len = fill 0 n in
    for i = len - 1 downto 0 do
      Buffer.add_char buf (Bytes.get digits i)
    done
  end

let emit_ascii buf (e : Event.t) =
  (match e with
   | Header h ->
     Buffer.add_string buf "t ";
     add_uint buf h.nvars;
     Buffer.add_char buf ' ';
     add_uint buf h.num_original
   | Learned l ->
     Buffer.add_string buf "CL ";
     add_uint buf l.id;
     Array.iter
       (fun s ->
         Buffer.add_char buf ' ';
         add_uint buf s)
       l.sources
   | Level0 v ->
     Buffer.add_string buf "VAR ";
     add_uint buf v.var;
     Buffer.add_string buf (if v.value then " 1 " else " 0 ");
     add_uint buf v.ante
   | Final_conflict id ->
     Buffer.add_string buf "CONF ";
     add_uint buf id
   | Delete ids ->
     Buffer.add_char buf 'D';
     Array.iter
       (fun id ->
         Buffer.add_char buf ' ';
         add_uint buf id)
       ids);
  Buffer.add_char buf '\n'

let emit_binary buf (e : Event.t) =
  match e with
  | Header h ->
    Buffer.add_char buf '\000';
    add_varint buf h.nvars;
    add_varint buf h.num_original
  | Learned l ->
    Buffer.add_char buf '\001';
    add_varint buf l.id;
    add_varint buf (Array.length l.sources);
    Array.iter (add_varint buf) l.sources
  | Level0 v ->
    Buffer.add_char buf '\002';
    add_varint buf ((v.var * 2) + if v.value then 1 else 0);
    add_varint buf v.ante
  | Final_conflict id ->
    Buffer.add_char buf '\003';
    add_varint buf id
  | Delete ids ->
    Buffer.add_char buf '\004';
    add_varint buf (Array.length ids);
    Array.iter (add_varint buf) ids

let emit_event fmt buf e =
  match fmt with
  | Ascii -> emit_ascii buf e
  | Binary -> emit_binary buf e

(* Exact encoded sizes, without encoding.  Used by the {!Sink.counting}
   combinator and by the online validator to compute the byte offset a
   re-parse of the spooled trace would report for each event — so they
   must match the emitters above digit for digit (the round-trip fuzz
   test pins this). *)

let uint_digits n =
  assert (n >= 0);
  let rec loop n acc = if n < 10 then acc else loop (n / 10) (acc + 1) in
  loop n 1

let varint_len n =
  assert (n >= 0);
  let rec loop n acc = if n < 0x80 then acc else loop (n lsr 7) (acc + 1) in
  loop n 1

let encoded_size fmt (e : Event.t) =
  match fmt with
  | Ascii -> (
    match e with
    | Header h -> 2 + uint_digits h.nvars + 1 + uint_digits h.num_original + 1
    | Learned l ->
      3 + uint_digits l.id
      + Array.fold_left (fun acc s -> acc + 1 + uint_digits s) 0 l.sources
      + 1
    | Level0 v -> 4 + uint_digits v.var + 3 + uint_digits v.ante + 1
    | Final_conflict id -> 5 + uint_digits id + 1
    | Delete ids ->
      1 + Array.fold_left (fun acc id -> acc + 1 + uint_digits id) 0 ids + 1)
  | Binary -> (
    match e with
    | Header h -> 1 + varint_len h.nvars + varint_len h.num_original
    | Learned l ->
      1 + varint_len l.id
      + varint_len (Array.length l.sources)
      + Array.fold_left (fun acc s -> acc + varint_len s) 0 l.sources
    | Level0 v ->
      1 + varint_len ((v.var * 2) + if v.value then 1 else 0) + varint_len v.ante
    | Final_conflict id -> 1 + varint_len id
    | Delete ids ->
      1
      + varint_len (Array.length ids)
      + Array.fold_left (fun acc id -> acc + varint_len id) 0 ids)

(* Streaming encoder: events in, encoded chunks out through [write].  The
   scratch buffer is flushed whenever it crosses [flush_threshold], so
   the resident encoded bytes stay bounded by the threshold plus one
   record — this is what lets the online validator prove it never holds
   the whole trace ([stats.peak_buffered] vs [stats.bytes]). *)

type stats = {
  mutable bytes : int;          (* total encoded bytes, magic included *)
  mutable peak_buffered : int;  (* high-water mark of unflushed bytes *)
}

(* Telemetry mirrors of the sink stats, so the progress sampler can see
   buffer occupancy while a stream is live.  Updates are guarded at the
   push site; the handles are resolved once here. *)
let m_events = Obs.Metrics.counter Obs.Metrics.global "trace.events"
let m_bytes = Obs.Metrics.gauge Obs.Metrics.global "trace.bytes"
let m_buffered = Obs.Metrics.gauge Obs.Metrics.global "trace.buffered_bytes"

let default_flush_threshold = 65536

let sink ?(flush_threshold = default_flush_threshold) ?(version = 1) fmt
    ~write =
  check_version version;
  let scratch = Buffer.create (min flush_threshold 65536) in
  (match fmt with
   | Binary -> Buffer.add_string scratch (magic_of_version version)
   | Ascii -> Buffer.add_string scratch (ascii_prologue version));
  let st = { bytes = Buffer.length scratch; peak_buffered = Buffer.length scratch } in
  let flush () =
    if Buffer.length scratch > 0 then begin
      write (Buffer.contents scratch);
      Buffer.clear scratch
    end
  in
  let push e =
    check_event version e;
    let before = Buffer.length scratch in
    emit_event fmt scratch e;
    let len = Buffer.length scratch in
    st.bytes <- st.bytes + (len - before);
    if len > st.peak_buffered then st.peak_buffered <- len;
    if Obs.Ctl.on () then begin
      Obs.Metrics.Counter.incr m_events 1;
      Obs.Metrics.Gauge.set m_bytes (float_of_int st.bytes);
      Obs.Metrics.Gauge.set m_buffered (float_of_int len);
      Obs.Sampler.tick ()
    end;
    if len >= flush_threshold then flush ()
  in
  (st, Sink.make ~close:flush push)

let to_channel ?flush_threshold ?version fmt oc =
  let st, s =
    sink ?flush_threshold ?version fmt
      ~write:(fun chunk -> output_string oc chunk)
  in
  (st, Sink.make ~close:(fun () -> Sink.close s; flush oc) (Sink.push s))

(* Legacy materializing writer: a buffer-backed sink with the trace kept
   in memory, retained for callers (tests, the file-based pipeline) that
   want the whole encoded artefact as a string. *)

type t = { fmt : format; version : int; buf : Buffer.t }

let create ?(version = 1) fmt =
  check_version version;
  let buf = Buffer.create 65536 in
  (match fmt with
   | Binary -> Buffer.add_string buf (magic_of_version version)
   | Ascii -> Buffer.add_string buf (ascii_prologue version));
  { fmt; version; buf }

let format w = w.fmt

let version w = w.version

let emit w e =
  check_event w.version e;
  emit_event w.fmt w.buf e

let bytes_written w = Buffer.length w.buf

let contents w = Buffer.contents w.buf

let to_file w path =
  let oc = open_out_bin path in
  Buffer.output_buffer oc w.buf;
  close_out oc

let as_sink w = Sink.make (emit w)
