type t = {
  push : Event.t -> unit;
  close : unit -> unit;
  mutable closed : bool;
}

let make ?(close = fun () -> ()) push = { push; close; closed = false }

let push t e = t.push e

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close ()
  end

let null = { push = ignore; close = ignore; closed = false }

let tee sinks =
  match sinks with
  | [] -> null
  | [ s ] -> s
  | _ ->
    make
      ~close:(fun () -> List.iter close sinks)
      (fun e -> List.iter (fun s -> s.push e) sinks)

type counter = {
  mutable events : int;
  mutable bytes : int;
}

let counting ?measure next =
  let c = { events = 0; bytes = 0 } in
  let push =
    match measure with
    | None ->
      fun e ->
        c.events <- c.events + 1;
        next.push e
    | Some size ->
      fun e ->
        c.events <- c.events + 1;
        c.bytes <- c.bytes + size e;
        next.push e
  in
  (c, make ~close:(fun () -> close next) push)

type buffered = { mutable rev_events : Event.t list }

let buffer () =
  let b = { rev_events = [] } in
  (b, make (fun e -> b.rev_events <- e :: b.rev_events))

let buffered_events b = List.rev b.rev_events
