(** Trace serialisation.  Two on-disk formats, as discussed in the paper's
    §4: a human-readable ASCII format (the default, large) and a compact
    binary format using LEB128 varints (the "2-3x compaction" the paper
    predicts, which also speeds up checking since parsing dominates).

    ASCII grammar, one event per line:
    {v
    t <nvars> <num_original>
    CL <id> <src_1> ... <src_k>
    VAR <var> <0|1> <ante_id>
    CONF <id>
    D <id_1> ... <id_k>          (version 2 only)
    v}

    Binary format: magic "ZKB1", then per event a tag byte
    (0 header, 1 learned, 2 level0, 3 final-conflict, 4 delete) followed
    by LEB128 unsigned varints; the learned-source and delete id lists
    are length-prefixed; the level-0 value is folded into the variable
    varint's low bit.

    Format versions: version 1 (the default) is the original paper
    trace.  Version 2 — the hinted variant — additionally allows
    {!Event.Delete} records; its binary magic is "ZKB2" and its ASCII
    form opens with a [v 2] directive line, so version-1 readers refuse
    hinted traces with a typed error instead of misparsing them.
    Emitting a [Delete] through a version-1 encoder raises
    [Invalid_argument].

    Encoders are {!Sink.t}s: {!sink} streams encoded chunks out through a
    callback with bounded buffering, {!to_channel} does so into a channel,
    and the legacy {!t} writer materializes the whole trace in memory. *)

type format = Ascii | Binary

(** [encoded_size fmt e] is the exact number of bytes {!emit} (or a
    streaming sink) produces for [e] — the magic is not included.  Feeds
    {!Sink.counting}'s [measure] and the online validator's position
    accounting. *)
val encoded_size : format -> Event.t -> int

(** Accounting for a streaming encoder sink.  [bytes] is the total
    encoded size so far, magic included — after [close] it equals the
    byte size of the written trace.  [peak_buffered] is the high-water
    mark of encoded bytes resident in the sink between flushes: bounded
    by the flush threshold plus one record, never by the proof size. *)
type stats = {
  mutable bytes : int;
  mutable peak_buffered : int;
}

(** [sink fmt ~write] is an encoding sink that emits serialised chunks
    through [write] whenever [flush_threshold] (default 64 KiB) bytes
    accumulate, and on close.  Binary traces start with the magic and
    ASCII version-2 traces with the [v 2] directive, counted in
    [stats.bytes] from creation.  [version] defaults to 1;
    @raise Invalid_argument on an unsupported version. *)
val sink :
  ?flush_threshold:int ->
  ?version:int ->
  format ->
  write:(string -> unit) ->
  stats * Sink.t

(** [to_channel fmt oc] encodes into [oc]; close flushes the channel but
    does not close it. *)
val to_channel :
  ?flush_threshold:int -> ?version:int -> format -> out_channel ->
  stats * Sink.t

(** A writer appends events to an internal buffer.  [bytes_written] lets
    the harness report trace sizes (Table 2, column "Trace Size"). *)
type t

val create : ?version:int -> format -> t
val format : t -> format
val version : t -> int
val emit : t -> Event.t -> unit
val bytes_written : t -> int

(** [contents w] is the serialised trace so far. *)
val contents : t -> string

(** [to_file w path] writes the serialised trace to disk. *)
val to_file : t -> string -> unit

(** [as_sink w] views the materializing writer as a sink (close is a
    no-op; the buffer stays readable through {!contents}). *)
val as_sink : t -> Sink.t
