(** Events of a resolution trace, in the order the solver emits them
    (paper §3.1).  Clause IDs are positive: the original clauses of the
    formula own IDs [1 .. num_original] in order of appearance; learned
    clauses take fresh increasing IDs.

    The three solver modifications of §3.1 map to three event kinds:
    - modification 1 → [Learned]: a learned clause's ID with its resolve
      sources (first the conflicting clause, then each antecedent, in
      resolution order);
    - modification 3 → [Level0]: on the final conflict, every variable
      assigned at decision level 0, chronologically, with its value and
      antecedent clause ID;
    - modification 2 → [Final_conflict]: the ID of one clause that is
      conflicting at decision level 0.

    The hinted (version-2) trace variant adds one event kind on top:
    - [Delete]: a batch of clause IDs the checker may free — each listed
      clause has had its last use, so a one-pass checker can release it
      immediately and keep peak-resident memory at the depth-first
      prediction.  Deletion hints are advice about memory, never about
      validity: a checker that ignores them must reach the same verdict. *)

type t =
  | Header of { nvars : int; num_original : int }
  | Learned of { id : int; sources : int array }
  | Level0 of { var : Sat.Lit.var; value : bool; ante : int }
  | Final_conflict of int
  | Delete of int array

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
