type t =
  | Header of { nvars : int; num_original : int }
  | Learned of { id : int; sources : int array }
  | Level0 of { var : Sat.Lit.var; value : bool; ante : int }
  | Final_conflict of int
  | Delete of int array

let equal a b =
  match a, b with
  | Header h1, Header h2 ->
    h1.nvars = h2.nvars && h1.num_original = h2.num_original
  | Learned l1, Learned l2 -> l1.id = l2.id && l1.sources = l2.sources
  | Level0 v1, Level0 v2 ->
    v1.var = v2.var && v1.value = v2.value && v1.ante = v2.ante
  | Final_conflict c1, Final_conflict c2 -> c1 = c2
  | Delete d1, Delete d2 -> d1 = d2
  | (Header _ | Learned _ | Level0 _ | Final_conflict _ | Delete _), _ ->
    false

let pp fmt = function
  | Header h ->
    Format.fprintf fmt "HEADER vars=%d original=%d" h.nvars h.num_original
  | Learned l ->
    Format.fprintf fmt "CL %d <-" l.id;
    Array.iter (fun s -> Format.fprintf fmt " %d" s) l.sources
  | Level0 v ->
    Format.fprintf fmt "VAR %d = %b (ante %d)" v.var v.value v.ante
  | Final_conflict id -> Format.fprintf fmt "CONF %d" id
  | Delete ids ->
    Format.fprintf fmt "DELETE";
    Array.iter (fun id -> Format.fprintf fmt " %d" id) ids
