(** Streaming trace reader.  The breadth-first checker (§3.3) must be able
    to scan the trace several times without holding a parsed copy in
    memory, so a reader is created from a re-readable {!source} and
    exposes both a one-shot fold-style pass and a rewindable {!cursor}.
    Format (ASCII vs binary) is auto-detected from the magic bytes. *)

(** Location inside a trace: 1-based line for the ASCII format, 0-based
    byte offset (magic included) for the binary one. *)
type pos =
  | Line of int
  | Byte of int

val pp_pos : Format.formatter -> pos -> unit
val pos_to_string : pos -> string

(** Raised on malformed input, carrying where the offending record starts
    and a human-readable reason.  The analysis layer turns these into
    [L001] lint diagnostics instead of letting them escape. *)
exception Parse_error of { pos : pos; msg : string }

type source =
  | From_string of string  (** in-memory trace, e.g. from {!Writer.contents} *)
  | From_file of string    (** trace file on disk *)

(** A resumable read position into a trace.  In-memory sources are read in
    place; file sources are streamed through a fixed [Bytes] block buffer,
    so a cursor never holds more than one block of the raw trace at a time
    — multi-pass counting stays cheap (no per-record channel reads)
    without slurping the file.  The checkers {!rewind} the same cursor
    between passes; positions are identical for both backings. *)
type cursor

(** [cursor source] opens a cursor positioned at the first event. *)
val cursor : source -> cursor

(** [close c] releases the file descriptor of a file-backed cursor (also
    done by a GC finaliser; a closed cursor must not be read again);
    no-op for in-memory sources. *)
val close : cursor -> unit

(** [is_binary_cursor c] tells which format the magic bytes selected. *)
val is_binary_cursor : cursor -> bool

(** [next c] yields the next event, or [None] at end of trace.
    After an ASCII parse error the cursor stands at the next line, so the
    caller may resume; after a binary one the remaining bytes cannot be
    re-synchronised and resuming yields garbage.
    @raise Parse_error on malformed input. *)
val next : cursor -> Event.t option

(** [last_pos c] is where the most recently yielded event starts (also
    set when {!next} raises, to the failing record's start). *)
val last_pos : cursor -> pos

(** [rewind c] repositions [c] at the first event. *)
val rewind : cursor -> unit

(** [iter_cursor c f] streams the remaining events of [c] through [f]. *)
val iter_cursor : cursor -> (Event.t -> unit) -> unit

(** [iter source f] streams every event of the trace through [f], in file
    order.  @raise Parse_error on malformed input. *)
val iter : source -> (Event.t -> unit) -> unit

(** [fold source f init] folds [f] over the events in file order. *)
val fold : source -> ('a -> Event.t -> 'a) -> 'a -> 'a

(** [to_list source] materialises all events (used by tests and the
    trace trimmer). *)
val to_list : source -> Event.t list

(** [size_bytes source] is the byte length of the serialised trace. *)
val size_bytes : source -> int
