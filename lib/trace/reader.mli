(** Streaming trace reader.  The breadth-first checker (§3.3) must be able
    to scan the trace several times without holding a parsed copy in
    memory, so a reader is created from a re-readable {!source} and
    exposes both a one-shot fold-style pass and a rewindable {!cursor}.
    Format (ASCII vs binary) is auto-detected from the magic bytes, with
    an explicit override available; {!channel_cursor} additionally decodes
    non-seekable inputs (pipes, FIFOs, stdin) in one forward pass. *)

(** Location inside a trace: 1-based line for the ASCII format, 0-based
    byte offset (magic included) for the binary one. *)
type pos =
  | Line of int
  | Byte of int

val pp_pos : Format.formatter -> pos -> unit
val pos_to_string : pos -> string

(** Raised on malformed input, carrying where the offending record starts
    and a human-readable reason.  The analysis layer turns these into
    [L001] lint diagnostics instead of letting them escape. *)
exception Parse_error of { pos : pos; msg : string }

type source =
  | From_string of string  (** in-memory trace, e.g. from {!Writer.contents} *)
  | From_file of string    (** trace file on disk *)

(** [detect src] sniffs the encoding from the first bytes: a "ZKB" magic
    (any version digit) means binary, a byte that can start an ASCII
    record means ASCII, and anything else (empty trace, strict prefix of
    the magic, unrecognized first byte) is ambiguous — the CLI turns
    [`Ambiguous] into a usage error unless the user forces a format. *)
val detect : source -> [ `Ascii | `Binary | `Ambiguous of string ]

(** [sniff_version src] peeks the trace's format version without opening
    a cursor: the magic's version digit for binary traces, the leading
    [v <n>] directive (absent means 1) for ASCII ones.  Unknown future
    versions are returned as-is so callers can refuse them up front.
    Version 1 is the original paper trace; version 2 is the hinted
    variant that additionally carries {!Event.Delete} records. *)
val sniff_version : source -> int

(** A resumable read position into a trace.  In-memory sources are read in
    place.  Regular files are mmap'd by default ([`Auto]) and decoded in
    place straight out of the page cache — no block copies and no
    per-record heap traffic; when mapping fails (a 0-length stat —
    procfs-style files lie about their size — exhausted address space,
    an mmap-less filesystem) or is refused ([`Channel]),
    the file is streamed through a fixed [Bytes] block buffer instead, so
    a cursor never holds more than one block of the raw trace at a time.
    The checkers {!rewind} the same cursor between passes; positions,
    yielded events and {!Parse_error}s are identical for every backing. *)
type cursor

(** How file-backed cursors read their bytes.  [`Auto] and [`Mmap] both
    map the file and silently fall back to the buffered channel path when
    mapping fails (counted by the [trace.mmap_fallbacks] metric);
    [`Channel] never maps.  Irrelevant for [From_string] and channel
    cursors. *)
type io =
  [ `Auto | `Mmap | `Channel ]

(** [cursor source] opens a cursor positioned at the first event.
    [format] forces the encoding instead of auto-detecting from the
    magic: forced-binary skips the magic when present, forced-ASCII
    parses from the very first byte.  [io] selects the file backing
    (default [`Auto]). *)
val cursor : ?format:Writer.format -> ?io:io -> source -> cursor

(** [io_of_cursor c] is the backing actually in use — [`Mmap] only when
    the file was successfully mapped. *)
val io_of_cursor : cursor -> [ `Memory | `Mmap | `Channel ]

(** [channel_cursor ic] opens a single-shot cursor over a non-seekable
    channel (pipe, FIFO, stdin): total length is unknown (end of trace is
    the first empty read) and {!rewind} raises [Invalid_argument].  [tap]
    observes every raw block as it is read — the CLI spools the blocks to
    a temp file so multi-pass checkers can re-read the trace after the
    pipe is drained.  The channel stays caller-owned: {!close} and GC
    leave it open. *)
val channel_cursor :
  ?format:Writer.format -> ?tap:(string -> unit) -> in_channel -> cursor

(** [detect_cursor c] classifies the encoding from the cursor's first
    bytes, like {!detect} but without reopening the underlying input —
    the only option for channel cursors.  Must be called before the
    cursor reads past its first block. *)
val detect_cursor : cursor -> [ `Ascii | `Binary | `Ambiguous of string ]

(** [close c] releases the file descriptor of a file-backed cursor (also
    done by a GC finaliser; a closed cursor must not be read again);
    no-op for in-memory sources and caller-owned channel cursors. *)
val close : cursor -> unit

(** [is_binary_cursor c] tells which format the magic bytes (or the
    override) selected. *)
val is_binary_cursor : cursor -> bool

(** [version c] is the trace format version the cursor has established:
    binary cursors know it from the magic immediately, ASCII cursors
    learn it when the [v] directive line (if any) is consumed — so for
    ASCII the value is authoritative once the first event has been
    pulled.  Version-2 traces may carry {!Event.Delete} records; a
    delete in a version-1 trace and an unsupported version both raise
    {!Parse_error} from {!next}. *)
val version : cursor -> int

(** [next c] yields the next event, or [None] at end of trace.
    After an ASCII parse error the cursor stands at the next line, so the
    caller may resume; after a binary one the remaining bytes cannot be
    re-synchronised and resuming yields garbage.  ASCII [v] version
    directive lines are consumed invisibly (they are not events).
    @raise Parse_error on malformed input, including an unsupported
    format version. *)
val next : cursor -> Event.t option

(** [last_pos c] is where the most recently yielded event starts (also
    set when {!next} raises, to the failing record's start). *)
val last_pos : cursor -> pos

(** [rewind c] repositions [c] at the first event.
    @raise Invalid_argument on a channel cursor. *)
val rewind : cursor -> unit

(** [iter_cursor c f] streams the remaining events of [c] through [f]. *)
val iter_cursor : cursor -> (Event.t -> unit) -> unit

(** [iter source f] streams every event of the trace through [f], in file
    order.  @raise Parse_error on malformed input. *)
val iter : source -> (Event.t -> unit) -> unit

(** [fold source f init] folds [f] over the events in file order. *)
val fold : source -> ('a -> Event.t -> 'a) -> 'a -> 'a

(** [to_list source] materialises all events (used by tests and the
    trace trimmer). *)
val to_list : source -> Event.t list

(** [size_bytes source] is the byte length of the serialised trace. *)
val size_bytes : source -> int
