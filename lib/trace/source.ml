type t = {
  next : unit -> Event.t option;
  pos : unit -> Reader.pos;
  close : unit -> unit;
  mutable closed : bool;
}

let make ?(close = fun () -> ()) ?(pos = fun () -> Reader.Line 1) next =
  { next; pos; close; closed = false }

let next t = t.next ()

let last_pos t = t.pos ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close ()
  end

let of_cursor ?(close_cursor = false) cur =
  make
    ~close:(fun () -> if close_cursor then Reader.close cur)
    ~pos:(fun () -> Reader.last_pos cur)
    (fun () -> Reader.next cur)

let of_list events =
  let rest = ref events in
  let n = ref 0 in
  make
    ~pos:(fun () -> Reader.Line (max 1 !n))
    (fun () ->
      match !rest with
      | [] -> None
      | e :: tl ->
        rest := tl;
        incr n;
        Some e)

let tap f t =
  {
    t with
    next =
      (fun () ->
        match t.next () with
        | None -> None
        | Some e ->
          f (t.pos ()) e;
          Some e);
  }

let iter f t =
  let rec loop () =
    match t.next () with
    | Some e ->
      f e;
      loop ()
    | None -> ()
  in
  loop ()

let fold f init t =
  let acc = ref init in
  iter (fun e -> acc := f !acc e) t;
  !acc

let drain t sink = iter (Sink.push sink) t
