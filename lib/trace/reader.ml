type pos =
  | Line of int
  | Byte of int

let pp_pos fmt = function
  | Line n -> Format.fprintf fmt "line %d" n
  | Byte n -> Format.fprintf fmt "byte %d" n

let pos_to_string p = Format.asprintf "%a" pp_pos p

exception Parse_error of { pos : pos; msg : string }

let fail pos fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { pos; msg })) fmt

type source =
  | From_string of string
  | From_file of string

let read_source = function
  | From_string s -> s
  | From_file path ->
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s

let binary_magic = "ZKB1"

let is_binary s =
  String.length s >= String.length binary_magic
  && String.sub s 0 (String.length binary_magic) = binary_magic

(* A cursor reads the trace bytes once and then yields events
   incrementally; multi-pass checkers rewind it instead of re-reading
   the file from disk for every pass.  It tracks the position (line for
   ASCII, byte offset for binary) of the event last yielded so that
   callers — the linter above all — can report precise locations. *)
type cursor = {
  data : string;
  binary : bool;
  start : int;
  mutable pos : int;
  mutable line : int;         (* ASCII: 1-based number of the next line *)
  mutable last_pos : pos;     (* where the last yielded event started *)
}

let cursor source =
  let data = read_source source in
  let binary = is_binary data in
  let start = if binary then String.length binary_magic else 0 in
  {
    data;
    binary;
    start;
    pos = start;
    line = 1;
    last_pos = (if binary then Byte start else Line 1);
  }

let is_binary_cursor c = c.binary

let rewind c =
  c.pos <- c.start;
  c.line <- 1;
  c.last_pos <- (if c.binary then Byte c.start else Line 1)

let last_pos c = c.last_pos

let parse_line pos line =
  let parse () =
    match String.split_on_char ' ' line |> List.filter (( <> ) "") with
    | [] -> None
    | "t" :: rest -> (
      match List.map int_of_string rest with
      | [ nvars; num_original ] -> Some (Event.Header { nvars; num_original })
      | _ -> fail pos "bad header line %S" line)
    | "CL" :: rest -> (
      match List.map int_of_string rest with
      | id :: srcs when srcs <> [] ->
        Some (Event.Learned { id; sources = Array.of_list srcs })
      | _ -> fail pos "bad CL line %S" line)
    | "VAR" :: rest -> (
      match List.map int_of_string rest with
      | [ var; value; ante ] when value = 0 || value = 1 ->
        Some (Event.Level0 { var; value = value = 1; ante })
      | _ -> fail pos "bad VAR line %S" line)
    | [ "CONF"; id ] -> (
      match int_of_string_opt id with
      | Some id -> Some (Event.Final_conflict id)
      | None -> fail pos "bad CONF line" )
    | w :: _ -> fail pos "unknown trace record %S" w
  in
  try parse () with Failure _ -> fail pos "non-numeric field in %S" line

(* After an ASCII parse error the cursor already stands past the offending
   line, so calling [next] again resumes at the following record — the
   linter relies on this to report several errors in one pass. *)
let rec next_ascii c =
  let len = String.length c.data in
  if c.pos >= len then None
  else begin
    let nl =
      match String.index_from_opt c.data c.pos '\n' with
      | Some i -> i
      | None -> len
    in
    let line_no = c.line in
    let line = String.trim (String.sub c.data c.pos (nl - c.pos)) in
    c.pos <- nl + 1;
    c.line <- line_no + 1;
    if line = "" then next_ascii c
    else begin
      c.last_pos <- Line line_no;
      parse_line (Line line_no) line
    end
  end

(* a 63-bit int needs at most 9 varint bytes; more means garbage *)
let max_varint_bytes = 9

let next_binary c =
  let len = String.length c.data in
  if c.pos >= len then None
  else begin
    let record_start = Byte c.pos in
    c.last_pos <- record_start;
    let byte () =
      if c.pos >= len then fail record_start "truncated binary trace";
      let b = Char.code c.data.[c.pos] in
      c.pos <- c.pos + 1;
      b
    in
    let varint () =
      let rec loop n shift acc =
        if n > max_varint_bytes then
          fail record_start "garbled varint (over %d bytes)" max_varint_bytes;
        let b = byte () in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 <> 0 then loop (n + 1) (shift + 7) acc else acc
      in
      loop 1 0 0
    in
    match byte () with
    | 0 ->
      let nvars = varint () in
      let num_original = varint () in
      Some (Event.Header { nvars; num_original })
    | 1 ->
      let id = varint () in
      let n = varint () in
      if n < 0 || c.pos + n > len then
        (* each source is at least one byte: fail before allocating an
           attacker-sized array from a garbled count *)
        fail record_start "truncated binary trace (%d sources claimed)" n;
      (* explicit loop: Array.init's application order is unspecified and
         varint reads are stateful *)
      let sources = Array.make n 0 in
      for i = 0 to n - 1 do
        sources.(i) <- varint ()
      done;
      Some (Event.Learned { id; sources })
    | 2 ->
      let packed = varint () in
      let ante = varint () in
      Some (Event.Level0 { var = packed / 2; value = packed land 1 = 1; ante })
    | 3 -> Some (Event.Final_conflict (varint ()))
    | tag -> fail record_start "unknown binary tag %d" tag
  end

let next c = if c.binary then next_binary c else next_ascii c

let iter_cursor c f =
  let rec loop () =
    match next c with
    | Some e ->
      f e;
      loop ()
    | None -> ()
  in
  loop ()

let iter source f = iter_cursor (cursor source) f

let fold source f init =
  let acc = ref init in
  iter source (fun e -> acc := f !acc e);
  !acc

let to_list source = List.rev (fold source (fun acc e -> e :: acc) [])

let size_bytes source = String.length (read_source source)
