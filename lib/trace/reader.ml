exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type source =
  | From_string of string
  | From_file of string

let read_source = function
  | From_string s -> s
  | From_file path ->
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s

let binary_magic = "ZKB1"

let is_binary s =
  String.length s >= String.length binary_magic
  && String.sub s 0 (String.length binary_magic) = binary_magic

(* A cursor reads the trace bytes once and then yields events
   incrementally; multi-pass checkers rewind it instead of re-reading
   the file from disk for every pass. *)
type cursor = {
  data : string;
  binary : bool;
  start : int;
  mutable pos : int;
}

let cursor source =
  let data = read_source source in
  let binary = is_binary data in
  let start = if binary then String.length binary_magic else 0 in
  { data; binary; start; pos = start }

let rewind c = c.pos <- c.start

let parse_line line =
  let parse () =
    match String.split_on_char ' ' line |> List.filter (( <> ) "") with
    | [] -> None
    | "t" :: rest -> (
      match List.map int_of_string rest with
      | [ nvars; num_original ] -> Some (Event.Header { nvars; num_original })
      | _ -> fail "bad header line %S" line)
    | "CL" :: rest -> (
      match List.map int_of_string rest with
      | id :: srcs when srcs <> [] ->
        Some (Event.Learned { id; sources = Array.of_list srcs })
      | _ -> fail "bad CL line %S" line)
    | "VAR" :: rest -> (
      match List.map int_of_string rest with
      | [ var; value; ante ] when value = 0 || value = 1 ->
        Some (Event.Level0 { var; value = value = 1; ante })
      | _ -> fail "bad VAR line %S" line)
    | [ "CONF"; id ] -> (
      match int_of_string_opt id with
      | Some id -> Some (Event.Final_conflict id)
      | None -> fail "bad CONF line" )
    | w :: _ -> fail "unknown trace record %S" w
  in
  try parse () with Failure _ -> fail "non-numeric field in %S" line

let rec next_ascii c =
  let len = String.length c.data in
  if c.pos >= len then None
  else begin
    let nl =
      match String.index_from_opt c.data c.pos '\n' with
      | Some i -> i
      | None -> len
    in
    let line = String.trim (String.sub c.data c.pos (nl - c.pos)) in
    c.pos <- nl + 1;
    if line = "" then next_ascii c else parse_line line
  end

let next_binary c =
  let len = String.length c.data in
  if c.pos >= len then None
  else begin
    let byte () =
      if c.pos >= len then fail "truncated binary trace";
      let b = Char.code c.data.[c.pos] in
      c.pos <- c.pos + 1;
      b
    in
    let varint () =
      let rec loop shift acc =
        let b = byte () in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 <> 0 then loop (shift + 7) acc else acc
      in
      loop 0 0
    in
    match byte () with
    | 0 ->
      let nvars = varint () in
      let num_original = varint () in
      Some (Event.Header { nvars; num_original })
    | 1 ->
      let id = varint () in
      let n = varint () in
      (* explicit loop: Array.init's application order is unspecified and
         varint reads are stateful *)
      let sources = Array.make n 0 in
      for i = 0 to n - 1 do
        sources.(i) <- varint ()
      done;
      Some (Event.Learned { id; sources })
    | 2 ->
      let packed = varint () in
      let ante = varint () in
      Some (Event.Level0 { var = packed / 2; value = packed land 1 = 1; ante })
    | 3 -> Some (Event.Final_conflict (varint ()))
    | tag -> fail "unknown binary tag %d" tag
  end

let next c = if c.binary then next_binary c else next_ascii c

let iter_cursor c f =
  let rec loop () =
    match next c with
    | Some e ->
      f e;
      loop ()
    | None -> ()
  in
  loop ()

let iter source f = iter_cursor (cursor source) f

let fold source f init =
  let acc = ref init in
  iter source (fun e -> acc := f !acc e);
  !acc

let to_list source = List.rev (fold source (fun acc e -> e :: acc) [])

let size_bytes source = String.length (read_source source)
