type pos =
  | Line of int
  | Byte of int

let pp_pos fmt = function
  | Line n -> Format.fprintf fmt "line %d" n
  | Byte n -> Format.fprintf fmt "byte %d" n

let pos_to_string p = Format.asprintf "%a" pp_pos p

exception Parse_error of { pos : pos; msg : string }

let fail pos fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { pos; msg })) fmt

type source =
  | From_string of string
  | From_file of string

type io =
  [ `Auto | `Mmap | `Channel ]

let binary_magic = "ZKB1"
let binary_magic_prefix = "ZKB"

(* The fourth magic byte is the trace format version: "ZKB1" is the
   original paper trace, "ZKB2" the hinted variant (adds delete
   records).  ASCII traces carry the version as a leading [v 2]
   directive line instead; version 1 has no directive.  Unknown future
   digits still classify as binary so the decoder can refuse them with a
   typed error instead of misparsing. *)
let magic_version p =
  if
    String.length p >= 4
    && String.sub p 0 3 = binary_magic_prefix
    && p.[3] >= '0'
    && p.[3] <= '9'
  then Some (Char.code p.[3] - Char.code '0')
  else None

let supported_version v = v = 1 || v = 2

(* Data-plane telemetry: how many trace bytes entered through the mmap
   path, and how often a requested/auto mmap fell back to the block
   buffer (tiny or vanished file, exhausted address space, weird fs). *)
let m_mmap_bytes = Obs.Metrics.counter Obs.Metrics.global "trace.mmap_bytes"

let m_mmap_fallbacks =
  Obs.Metrics.counter Obs.Metrics.global "trace.mmap_fallbacks"

(* A cursor yields events incrementally; multi-pass checkers rewind it
   between passes.  In-memory sources are read in place.  File sources are
   streamed through a fixed [Bytes] block buffer — the checkers' counting
   passes touch every record, so per-record channel reads would be
   syscall-bound, while slurping the whole file would defeat the
   breadth-first checker's bounded-memory guarantee.  All positions are
   absolute byte offsets into the serialised trace (magic included), so
   [Parse_error] locations are identical for both backings.  It tracks the
   position (line for ASCII, byte offset for binary) of the event last
   yielded so that callers — the linter above all — can report precise
   locations.

   Channel-backed cursors ({!channel_cursor}) use the same block buffer
   over a pipe/FIFO/stdin: total length unknown ([total = max_int], end
   of trace is the first empty read), no rewind, and an optional [tap]
   receives every raw block as it arrives — the CLI spools blocks to a
   temp file so later checker passes can re-read what the pipe already
   delivered. *)

let block_size = 65536

type chan = {
  ic : in_channel;
  buf : Bytes.t;
  mutable base : int; (* absolute offset of buf.[0] *)
  mutable len : int;  (* valid bytes in buf *)
  mutable eof : bool; (* an [input] returned 0 (streaming backings only) *)
  tap : (string -> unit) option;
  seekable : bool;
}

(* Regular files are mapped read-only so records are decoded straight out
   of the page cache: no block copies, no per-line [Buffer], no syscalls
   past the initial [mmap].  The mapping is shared ([false] = not
   copy-on-write) and freed by the bigarray finaliser when the cursor is
   collected. *)
type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type backing =
  | Mem of string
  | Map of bigstring
  | Chan of chan

type cursor = {
  backing : backing;
  total : int;                (* serialised length; [max_int] = unknown *)
  binary : bool;
  start : int;
  mutable version : int;      (* format version (magic / [v] directive) *)
  mutable pos : int;          (* absolute offset of the next unread byte *)
  mutable line : int;         (* ASCII: 1-based number of the next line *)
  mutable last_pos : pos;     (* where the last yielded event started *)
  line_buf : Buffer.t;        (* ASCII: scratch for lines spanning blocks *)
}

(* Invariant for [Chan]: the channel's read position is [base + len], and
   [base <= pos <= base + len]; the only seek happens in [rewind]. *)
let refill ch =
  ch.base <- ch.base + ch.len;
  if ch.eof then ch.len <- 0
  else begin
    ch.len <- input ch.ic ch.buf 0 (Bytes.length ch.buf);
    if ch.len = 0 then ch.eof <- true
    else
      match ch.tap with
      | Some f -> f (Bytes.sub_string ch.buf 0 ch.len)
      | None -> ()
  end

(* next byte, or [-1] at end of trace *)
let rec get_byte c =
  if c.pos >= c.total then -1
  else
    match c.backing with
    | Mem s ->
      let b = Char.code (String.unsafe_get s c.pos) in
      c.pos <- c.pos + 1;
      b
    | Map m ->
      let b = Char.code (Bigarray.Array1.unsafe_get m c.pos) in
      c.pos <- c.pos + 1;
      b
    | Chan ch ->
      if c.pos >= ch.base + ch.len then begin
        refill ch;
        if ch.len = 0 then -1 else get_byte c
      end
      else begin
        let b = Char.code (Bytes.unsafe_get ch.buf (c.pos - ch.base)) in
        c.pos <- c.pos + 1;
        b
      end

let at_eof c =
  if c.total <> max_int then c.pos >= c.total
  else
    match c.backing with
    | Mem _ | Map _ -> c.pos >= c.total
    | Chan ch ->
      c.pos >= ch.base + ch.len
      && (ch.eof
          ||
          begin
            refill ch;
            ch.len = 0
          end)

(* Encoding detection: the binary magic decides [`Binary]; a first byte
   that can start an ASCII record (or blank line) decides [`Ascii];
   anything else — including an empty trace or a strict prefix of the
   magic — is ambiguous and the CLI refuses it (exit 2) unless the user
   forces a format. *)
let classify_prefix p =
  let n = String.length p in
  if n = 0 then `Ambiguous "empty trace"
  else if magic_version p <> None then `Binary
  else if n < 4 && String.sub binary_magic_prefix 0 (min n 3) = p then
    `Ambiguous
      (Printf.sprintf "%d-byte trace is a strict prefix of the binary magic" n)
  else
    match p.[0] with
    | 't' | 'C' | 'V' | 'D' | 'v' | ' ' | '\t' | '\r' | '\n' -> `Ascii
    | c -> `Ambiguous (Printf.sprintf "unrecognized first byte 0x%02x" (Char.code c))

let detect src =
  let prefix =
    match src with
    | From_string s -> String.sub s 0 (min 4 (String.length s))
    | From_file path ->
      let ic = open_in_bin path in
      let n = min 4 (in_channel_length ic) in
      let p = really_input_string ic n in
      close_in_noerr ic;
      p
  in
  classify_prefix prefix

let backing_magic backing total =
  let magic = String.length binary_magic in
  if total < magic then None
  else
    match backing with
    | Mem s -> magic_version (String.sub s 0 magic)
    | Map m -> magic_version (String.init magic (Bigarray.Array1.get m))
    | Chan ch ->
      if ch.len >= magic then magic_version (Bytes.sub_string ch.buf 0 magic)
      else None

let make_cursor ?format backing total =
  let magic = backing_magic backing total in
  let binary =
    match format with
    | Some Writer.Binary -> true
    | Some Writer.Ascii -> false
    | None -> magic <> None
  in
  (* a forced-binary read of a magic-less trace starts at offset 0; a
     forced-ASCII read never skips the magic even if present *)
  let start =
    if binary && magic <> None then String.length binary_magic else 0
  in
  {
    backing;
    total;
    binary;
    start;
    version = (match magic with Some v when binary -> v | _ -> 1);
    pos = start;
    line = 1;
    last_pos = (if binary then Byte start else Line 1);
    line_buf = Buffer.create 128;
  }

(* The fd is closed right after [mmap]: the kernel keeps the mapping
   alive until the bigarray is collected.  Any failure — exhausted
   address space, a filesystem without mmap — makes the caller fall
   back to the block-buffered channel path, so [`Mmap] is a preference,
   never a correctness switch.  Files whose stat size is 0 are refused:
   procfs-style files lie about their size, and mapping one would yield
   an empty trace where the channel path reads real bytes.  The channel
   fallback reads whatever is actually there, which for a genuinely
   empty file is the same empty trace. *)
exception Unmappable

let map_file path : bigstring =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let total = (Unix.fstat fd).Unix.st_size in
      if total = 0 then raise Unmappable;
      Bigarray.array1_of_genarray
        (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| total |]))

let cursor ?format ?(io : io = `Auto) source =
  let mapped =
    match source with
    | From_string _ -> None
    | From_file _ when io = `Channel -> None
    | From_file path -> (
      match map_file path with
      | m ->
        if Obs.Ctl.on () then begin
          Obs.Metrics.Counter.incr m_mmap_bytes (Bigarray.Array1.dim m);
          Obs.Span.instant ~cat:"trace" "trace.mmap"
        end;
        Some m
      | exception _ ->
        if Obs.Ctl.on () then Obs.Metrics.Counter.incr m_mmap_fallbacks 1;
        if Obs.Journal.on () then
          Obs.Journal.record ~sub:"trace" "mmap_fallback" [];
        None)
  in
  let backing, total =
    match (mapped, source) with
    | Some m, _ -> (Map m, Bigarray.Array1.dim m)
    | None, From_string s -> (Mem s, String.length s)
    | None, From_file path ->
      let ic = open_in_bin path in
      let total = in_channel_length ic in
      let buf = Bytes.create block_size in
      let len = input ic buf 0 block_size in
      ( Chan { ic; buf; base = 0; len; eof = false; tap = None; seekable = true },
        total )
  in
  let c = make_cursor ?format backing total in
  (match backing with
   | Chan { ic; _ } ->
     (* cursors have no explicit lifetime in the checker API; make sure an
        abandoned one does not leak its file descriptor *)
     Gc.finalise (fun (_ : cursor) -> close_in_noerr ic) c
   | Mem _ | Map _ -> ());
  c

let channel_cursor ?format ?tap ic =
  let ch =
    { ic; buf = Bytes.create block_size; base = 0; len = 0; eof = false; tap;
      seekable = false }
  in
  refill ch;
  (* the channel is caller-owned (it may be stdin): no finaliser *)
  make_cursor ?format (Chan ch) max_int

let detect_cursor c =
  let prefix =
    match c.backing with
    | Mem s -> String.sub s 0 (min 4 (String.length s))
    | Map m ->
      String.init (min 4 (Bigarray.Array1.dim m)) (Bigarray.Array1.get m)
    | Chan ch ->
      if ch.base <> 0 then
        invalid_arg "Trace.Reader.detect_cursor: cursor already read past its first block";
      Bytes.sub_string ch.buf 0 (min 4 ch.len)
  in
  classify_prefix prefix

let close c =
  match c.backing with
  | Mem _ | Map _ -> ()
  | Chan { ic; seekable; _ } -> if seekable then close_in_noerr ic

let is_binary_cursor c = c.binary

let io_of_cursor c =
  match c.backing with
  | Mem _ -> `Memory
  | Map _ -> `Mmap
  | Chan _ -> `Channel

let rewind c =
  (match c.backing with
   | Mem _ | Map _ -> ()
   | Chan ch ->
     if not ch.seekable then
       invalid_arg "Trace.Reader.rewind: non-seekable (channel) cursor";
     if c.start < ch.base then begin
       seek_in ch.ic c.start;
       ch.base <- c.start;
       ch.len <- 0
     end);
  c.pos <- c.start;
  c.line <- 1;
  c.last_pos <- (if c.binary then Byte c.start else Line 1)

let last_pos c = c.last_pos

let version c = c.version

(* Peek a source's format version without constructing a cursor: the
   magic digit for binary traces, the leading [v] directive (if any) for
   ASCII ones.  Unknown future versions are returned as-is so callers
   can refuse them up front. *)
let sniff_version src =
  let prefix =
    match src with
    | From_string s -> String.sub s 0 (min 64 (String.length s))
    | From_file path ->
      let ic = open_in_bin path in
      let n = min 64 (in_channel_length ic) in
      let p = really_input_string ic n in
      close_in_noerr ic;
      p
  in
  match magic_version prefix with
  | Some v -> v
  | None ->
    if String.length prefix >= 2 && prefix.[0] = 'v' && prefix.[1] = ' ' then begin
      let stop =
        match String.index_opt prefix '\n' with
        | Some i -> i
        | None -> String.length prefix
      in
      let line = String.trim (String.sub prefix 0 stop) in
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [ "v"; n ] -> (
        match int_of_string_opt n with Some v -> v | None -> 1)
      | _ -> 1
    end
    else 1

let parse_line pos line =
  let parse () =
    match String.split_on_char ' ' line |> List.filter (( <> ) "") with
    | [] -> None
    | "t" :: rest -> (
      match List.map int_of_string rest with
      | [ nvars; num_original ] -> Some (Event.Header { nvars; num_original })
      | _ -> fail pos "bad header line %S" line)
    | "CL" :: rest -> (
      match List.map int_of_string rest with
      | id :: srcs when srcs <> [] ->
        Some (Event.Learned { id; sources = Array.of_list srcs })
      | _ -> fail pos "bad CL line %S" line)
    | "VAR" :: rest -> (
      match List.map int_of_string rest with
      | [ var; value; ante ] when value = 0 || value = 1 ->
        Some (Event.Level0 { var; value = value = 1; ante })
      | _ -> fail pos "bad VAR line %S" line)
    | [ "CONF"; id ] -> (
      match int_of_string_opt id with
      | Some id -> Some (Event.Final_conflict id)
      | None -> fail pos "bad CONF line" )
    | "D" :: rest ->
      Some (Event.Delete (Array.of_list (List.map int_of_string rest)))
    | w :: _ -> fail pos "unknown trace record %S" w
  in
  try parse () with Failure _ -> fail pos "non-numeric field in %S" line

(* [v <n>] directive lines carry the ASCII trace's format version.  The
   directive is consumed invisibly — it is not an event — so decoding is
   idempotent under rewind. *)
let parse_version_line pos line =
  match String.split_on_char ' ' line |> List.filter (( <> ) "") with
  | [ "v"; n ] -> (
    match int_of_string_opt n with
    | Some v when supported_version v -> v
    | Some v -> fail pos "unsupported trace format version %d" v
    | None -> fail pos "bad version line %S" line)
  | _ -> fail pos "bad version line %S" line

let is_version_line line =
  String.length line > 0
  && line.[0] = 'v'
  && (String.length line = 1 || line.[1] = ' ')

(* a delete record in a version-1 trace is a version-negotiation
   failure, not a parse failure of the record itself *)
let check_version_for_delete c pos = function
  | Some (Event.Delete _) when c.version < 2 ->
    fail pos "delete record requires trace format version 2"
  | e -> e

(* After an ASCII parse error the cursor already stands past the offending
   line, so calling [next] again resumes at the following record — the
   linter relies on this to report several errors in one pass. *)
let rec next_ascii c =
  if at_eof c then None
  else begin
    let line_no = c.line in
    Buffer.clear c.line_buf;
    let stop = ref false in
    while not !stop do
      match get_byte c with
      | -1 | 0x0a (* '\n' *) -> stop := true
      | b -> Buffer.add_char c.line_buf (Char.unsafe_chr b)
    done;
    c.line <- line_no + 1;
    let line = String.trim (Buffer.contents c.line_buf) in
    if line = "" then next_ascii c
    else if is_version_line line then begin
      c.version <- parse_version_line (Line line_no) line;
      next_ascii c
    end
    else begin
      c.last_pos <- Line line_no;
      check_version_for_delete c (Line line_no)
        (parse_line (Line line_no) line)
    end
  end

(* a 63-bit int needs at most 9 varint bytes; more means garbage *)
let max_varint_bytes = 9

(* unknown-length (channel) backings cannot bound a source count by the
   remaining bytes; cap it outright before allocating *)
let max_stream_sources = 1 lsl 26

let next_binary c =
  if at_eof c then None
  else begin
    let record_start = Byte c.pos in
    c.last_pos <- record_start;
    let byte () =
      match get_byte c with
      | -1 -> fail record_start "truncated binary trace"
      | b -> b
    in
    let varint () =
      let rec loop n shift acc =
        if n > max_varint_bytes then
          fail record_start "garbled varint (over %d bytes)" max_varint_bytes;
        let b = byte () in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 <> 0 then loop (n + 1) (shift + 7) acc else acc
      in
      loop 1 0 0
    in
    match byte () with
    | 0 ->
      let nvars = varint () in
      let num_original = varint () in
      Some (Event.Header { nvars; num_original })
    | 1 ->
      let id = varint () in
      let n = varint () in
      if
        n < 0
        || (c.total <> max_int && c.pos + n > c.total)
        || (c.total = max_int && n > max_stream_sources)
      then
        (* each source is at least one byte: fail before allocating an
           attacker-sized array from a garbled count *)
        fail record_start "truncated binary trace (%d sources claimed)" n;
      (* explicit loop: Array.init's application order is unspecified and
         varint reads are stateful *)
      let sources = Array.make n 0 in
      for i = 0 to n - 1 do
        sources.(i) <- varint ()
      done;
      Some (Event.Learned { id; sources })
    | 2 ->
      let packed = varint () in
      let ante = varint () in
      Some (Event.Level0 { var = packed / 2; value = packed land 1 = 1; ante })
    | 3 -> Some (Event.Final_conflict (varint ()))
    | 4 when c.version >= 2 ->
      let n = varint () in
      if
        n < 0
        || (c.total <> max_int && c.pos + n > c.total)
        || (c.total = max_int && n > max_stream_sources)
      then fail record_start "truncated binary trace (%d deletes claimed)" n;
      let ids = Array.make n 0 in
      for i = 0 to n - 1 do
        ids.(i) <- varint ()
      done;
      Some (Event.Delete ids)
    | tag -> fail record_start "unknown binary tag %d" tag
  end

(* In-place record decoding for contiguous backings (in-memory strings
   and mmap'd files).  The hot path indexes the region directly — no
   block refills, no per-line [Buffer], no token lists — and only falls
   back to [parse_line] on inputs the strict lexer does not recognise
   (exotic numerals, wrong arity, unknown keywords), so error messages
   and accepted inputs are byte-identical to the channel path.  Parse
   failures leave [c.pos] exactly where the channel decoder would. *)
module type CONTIG = sig
  type t

  val get : t -> int -> char
  val sub : t -> int -> int -> string
end

module Contig (C : CONTIG) = struct
  exception Slow_path

  (* [String.trim]'s whitespace set *)
  let is_space = function
    | ' ' | '\012' | '\n' | '\r' | '\t' -> true
    | _ -> false

  let skip_spaces data i e =
    let i = ref i in
    while !i < e && C.get data !i = ' ' do
      incr i
    done;
    !i

  let token_end data i e =
    let i = ref i in
    while !i < e && C.get data !i <> ' ' do
      incr i
    done;
    !i

  (* strict plain-decimal ints only; anything [int_of_string] is more
     liberal about (0x/0o/0b/underscores/leading +, overflow) goes back
     through [parse_line] for the exact legacy behaviour *)
  let int_of_span data s e =
    if s >= e then raise_notrace Slow_path;
    let neg = C.get data s = '-' in
    let s = if neg then s + 1 else s in
    if s >= e || e - s > 18 then raise_notrace Slow_path;
    let acc = ref 0 in
    for i = s to e - 1 do
      let ch = C.get data i in
      if ch < '0' || ch > '9' then raise_notrace Slow_path;
      acc := (!acc * 10) + (Char.code ch - Char.code '0')
    done;
    if neg then - !acc else !acc

  let token_equal data s e kw =
    e - s = String.length kw
    &&
    let ok = ref true in
    for i = 0 to String.length kw - 1 do
      if C.get data (s + i) <> String.unsafe_get kw i then ok := false
    done;
    !ok

  (* one int token, which must be the last on the line *)
  let last_int data i e =
    let te = token_end data i e in
    let v = int_of_span data i te in
    if skip_spaces data te e <> e then raise_notrace Slow_path;
    v

  let parse_span data s e =
    let t0e = token_end data s e in
    let i = skip_spaces data t0e e in
    if token_equal data s t0e "CL" then begin
      let ide = token_end data i e in
      let id = int_of_span data i ide in
      let rest = skip_spaces data ide e in
      let n = ref 0 in
      let j = ref rest in
      while !j < e do
        let te = token_end data !j e in
        incr n;
        j := skip_spaces data te e
      done;
      if !n = 0 then raise_notrace Slow_path;
      let sources = Array.make !n 0 in
      let j = ref rest in
      for k = 0 to !n - 1 do
        let te = token_end data !j e in
        sources.(k) <- int_of_span data !j te;
        j := skip_spaces data te e
      done;
      Event.Learned { id; sources }
    end
    else if token_equal data s t0e "VAR" then begin
      let t1e = token_end data i e in
      let var = int_of_span data i t1e in
      let j = skip_spaces data t1e e in
      let t2e = token_end data j e in
      let value = int_of_span data j t2e in
      if value <> 0 && value <> 1 then raise_notrace Slow_path;
      let k = skip_spaces data t2e e in
      let ante = last_int data k e in
      Event.Level0 { var; value = value = 1; ante }
    end
    else if token_equal data s t0e "t" then begin
      let t1e = token_end data i e in
      let nvars = int_of_span data i t1e in
      let j = skip_spaces data t1e e in
      let num_original = last_int data j e in
      Event.Header { nvars; num_original }
    end
    else if token_equal data s t0e "CONF" then
      Event.Final_conflict (last_int data i e)
    else if token_equal data s t0e "D" then begin
      let n = ref 0 in
      let j = ref i in
      while !j < e do
        let te = token_end data !j e in
        incr n;
        j := skip_spaces data te e
      done;
      let ids = Array.make !n 0 in
      let j = ref i in
      for k = 0 to !n - 1 do
        let te = token_end data !j e in
        ids.(k) <- int_of_span data !j te;
        j := skip_spaces data te e
      done;
      Event.Delete ids
    end
    else raise_notrace Slow_path

  let rec next_ascii c (data : C.t) =
    if c.pos >= c.total then None
    else begin
      let line_no = c.line in
      let total = c.total in
      let ls = c.pos in
      let i = ref ls in
      while !i < total && C.get data !i <> '\n' do
        incr i
      done;
      c.pos <- (if !i < total then !i + 1 else total);
      c.line <- line_no + 1;
      (* trim the line span like [String.trim] trims the buffered copy *)
      let s = ref ls
      and e = ref !i in
      while !s < !e && is_space (C.get data !s) do
        incr s
      done;
      while !e > !s && is_space (C.get data (!e - 1)) do
        decr e
      done;
      if !s >= !e then next_ascii c data
      else if
        C.get data !s = 'v' && (!s + 1 >= !e || C.get data (!s + 1) = ' ')
      then begin
        c.version <-
          parse_version_line (Line line_no) (C.sub data !s (!e - !s));
        next_ascii c data
      end
      else begin
        c.last_pos <- Line line_no;
        match parse_span data !s !e with
        | event -> check_version_for_delete c (Line line_no) (Some event)
        | exception Slow_path ->
          if Obs.Journal.on () then
            Obs.Journal.record ~sub:"trace" "slow_path"
              [ ("line", line_no); ("len", !e - !s) ];
          check_version_for_delete c (Line line_no)
            (parse_line (Line line_no) (C.sub data !s (!e - !s)))
      end
    end

  let next_binary c (data : C.t) =
    if c.pos >= c.total then None
    else begin
      let record_start = Byte c.pos in
      c.last_pos <- record_start;
      let pos = ref c.pos in
      let total = c.total in
      (* publish the consumed prefix before raising so the cursor stands
         exactly where the channel decoder's would *)
      let err fmt =
        Printf.ksprintf
          (fun msg ->
            c.pos <- !pos;
            raise (Parse_error { pos = record_start; msg }))
          fmt
      in
      let byte () =
        if !pos >= total then err "truncated binary trace"
        else begin
          let b = Char.code (C.get data !pos) in
          incr pos;
          b
        end
      in
      let varint () =
        let rec loop n shift acc =
          if n > max_varint_bytes then
            err "garbled varint (over %d bytes)" max_varint_bytes;
          let b = byte () in
          let acc = acc lor ((b land 0x7f) lsl shift) in
          if b land 0x80 <> 0 then loop (n + 1) (shift + 7) acc else acc
        in
        loop 1 0 0
      in
      let finish e =
        c.pos <- !pos;
        Some e
      in
      match byte () with
      | 0 ->
        let nvars = varint () in
        let num_original = varint () in
        finish (Event.Header { nvars; num_original })
      | 1 ->
        let id = varint () in
        let n = varint () in
        if n < 0 || !pos + n > total then
          err "truncated binary trace (%d sources claimed)" n;
        let sources = Array.make n 0 in
        for i = 0 to n - 1 do
          sources.(i) <- varint ()
        done;
        finish (Event.Learned { id; sources })
      | 2 ->
        let packed = varint () in
        let ante = varint () in
        finish
          (Event.Level0 { var = packed / 2; value = packed land 1 = 1; ante })
      | 3 -> finish (Event.Final_conflict (varint ()))
      | 4 when c.version >= 2 ->
        let n = varint () in
        if n < 0 || !pos + n > total then
          err "truncated binary trace (%d deletes claimed)" n;
        let ids = Array.make n 0 in
        for i = 0 to n - 1 do
          ids.(i) <- varint ()
        done;
        finish (Event.Delete ids)
      | tag -> err "unknown binary tag %d" tag
    end
end

module Contig_string = Contig (struct
  type t = string

  let get = String.unsafe_get
  let sub = String.sub
end)

module Contig_big = Contig (struct
  type t = bigstring

  (* eta-expanded at the concrete element type so the compiler emits a
     direct byte load instead of the generic bigarray dispatch stub *)
  let get (m : bigstring) i : char = Bigarray.Array1.unsafe_get m i

  let sub m pos len =
    String.init len (fun i -> Bigarray.Array1.unsafe_get m (pos + i))
end)

let next c =
  if c.binary && not (supported_version c.version) then
    fail (Byte 0) "unsupported binary trace format version %d" c.version;
  match c.backing with
  | Mem s ->
    if c.binary then Contig_string.next_binary c s
    else Contig_string.next_ascii c s
  | Map m ->
    if c.binary then Contig_big.next_binary c m else Contig_big.next_ascii c m
  | Chan _ -> if c.binary then next_binary c else next_ascii c

let iter_cursor c f =
  let rec loop () =
    match next c with
    | Some e ->
      f e;
      loop ()
    | None -> ()
  in
  loop ()

let iter source f = iter_cursor (cursor source) f

let fold source f init =
  let acc = ref init in
  iter source (fun e -> acc := f !acc e);
  !acc

let to_list source = List.rev (fold source (fun acc e -> e :: acc) [])

let size_bytes = function
  | From_string s -> String.length s
  | From_file path ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in_noerr ic;
    n
