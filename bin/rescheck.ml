(* rescheck: the command-line frontend.

   Subcommands mirror the paper's workflow and its descendants:
     solve      solve a DIMACS file, optionally emitting a resolution trace
     check      validate an UNSAT trace (df / bf / hybrid)
     lint       statically lint a trace without replaying it
     analyze    profile the whole proof DAG without replaying it
     validate   solve and check in one step
     core       extract / iteratively shrink an unsat core (--minimal: MUC)
     trim       shrink a trace to its core-reachable records
     simplify   preprocess a formula
     drup       convert a trace to DRUP and RUP-verify it
     mc         BMC / interpolation-based model checking
     gen        emit a benchmark-family instance as DIMACS

   Exit-code convention (checking commands): 0 verified / clean, 1 the
   checked artifact is wrong (proof rejected, lint errors, solver bug),
   2 bad input or usage (unreadable or structurally corrupt files),
   3 simulated memory-out.  solve/validate keep the classic 10 (SAT) and
   20 (UNSAT) codes. *)

open Cmdliner

(* --- shared argument pieces -------------------------------------------- *)

let formula_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FORMULA" ~doc:"Input CNF formula in DIMACS format.")

let format_conv =
  let parse = function
    | "ascii" -> Ok Trace.Writer.Ascii
    | "binary" -> Ok Trace.Writer.Binary
    | s -> Error (`Msg (Printf.sprintf "unknown trace format %S" s))
  in
  let print fmt = function
    | Trace.Writer.Ascii -> Format.pp_print_string fmt "ascii"
    | Trace.Writer.Binary -> Format.pp_print_string fmt "binary"
  in
  Arg.conv (parse, print)

let format_arg =
  Arg.(
    value
    & opt format_conv Trace.Writer.Ascii
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Trace format: $(b,ascii) (readable) or $(b,binary) (compact).")

(* Commands that *read* a trace auto-detect its encoding from the first
   bytes; --format overrides the sniffing (needed e.g. for a magic-less
   binary fragment, which is otherwise ambiguous). *)
let in_format_arg =
  Arg.(
    value
    & opt (some format_conv) None
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Force the trace encoding ($(b,ascii) or $(b,binary)) instead of \
           auto-detecting it from the first bytes.")

(* Zero-copy data plane: regular trace files are mmap'd and decoded in
   place by default; --io channel forces the block-buffered path (the one
   streamed inputs always use), --io mmap states the default explicitly.
   Either way the decoded events, reports and diagnostics are
   byte-identical — mmap failure silently falls back to the channel. *)
let io_conv =
  let parse = function
    | "auto" -> Ok `Auto
    | "mmap" -> Ok `Mmap
    | "channel" -> Ok `Channel
    | s -> Error (`Msg (Printf.sprintf "unknown io backend %S" s))
  in
  let print fmt io =
    Format.pp_print_string fmt
      (match io with `Auto -> "auto" | `Mmap -> "mmap" | `Channel -> "channel")
  in
  Arg.conv (parse, print)

let io_arg =
  Arg.(
    value
    & opt io_conv `Auto
    & info [ "io" ] ~docv:"IO"
        ~doc:
          "How to read a regular trace file: $(b,auto) (default) and \
           $(b,mmap) map it into memory and decode in place, falling back \
           to the buffered channel when mapping fails; $(b,channel) always \
           streams through the block buffer.  Output bytes are identical \
           either way; stdin and FIFOs always stream.")

let ambiguous_format_exit msg =
  Printf.eprintf
    "error: cannot tell the trace encoding (%s); force one with --format \
     ascii|binary\n"
    msg;
  exit 2

(* Telemetry flags shared by every instrumented command.  Evaluating the
   term configures the run profile up front; the files are written by the
   [at_exit] finalizer, so the handlers' deep [exit] calls are safe.
   Telemetry output goes only to these files and stderr — stdout stays
   byte-identical with the flags on or off. *)
let telemetry_term =
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write a run-profile JSON (build env, metrics registry, \
             progress samples, span aggregates) to $(docv) on exit.")
  in
  let trace_events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-events" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event timeline to $(docv) on exit; load \
             it in chrome://tracing or Perfetto.")
  in
  let progress_arg =
    Arg.(
      value
      & opt ~vopt:(Some 1.0) (some float) None
      & info [ "progress" ] ~docv:"SECS"
          ~doc:
            "Sample progress (live clauses, arena bytes, buffer occupancy, \
             conflicts/s) every $(docv) seconds — $(b,--progress=SECS), \
             default 1 — printing a heartbeat line to stderr; the series \
             also lands in the $(b,--metrics) profile.")
  in
  let metrics_format_arg =
    let parse = function
      | "json" -> Ok `Json
      | "prom" -> Ok `Prom
      | s -> Error (`Msg (Printf.sprintf "unknown metrics format %S" s))
    in
    let print fmt = function
      | `Json -> Format.pp_print_string fmt "json"
      | `Prom -> Format.pp_print_string fmt "prom"
    in
    Arg.(
      value
      & opt (conv (parse, print)) `Json
      & info [ "metrics-format" ] ~docv:"FMT"
          ~doc:
            "Format of the $(b,--metrics) file: $(b,json) (default) writes \
             the run-profile document, $(b,prom) writes the metrics \
             registry in the Prometheus text exposition format.")
  in
  let journal_arg =
    Arg.(
      value
      & opt ~vopt:(Some 1024) (some int) None
      & info [ "journal" ] ~docv:"N"
          ~doc:
            "Arm the flight recorder: a ring buffer of the last $(docv) \
             (default 1024) structured subsystem events — solver restarts \
             and DB reductions, window spills/reloads, parse slow-path \
             bails, arena fallbacks, wavefront barriers — dumped as \
             deterministic JSON at exit (stderr, or $(b,--journal-file)) \
             and on SIGUSR1.  Verdicts and stdout are byte-identical with \
             the flag on or off.")
  in
  let journal_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-file" ] ~docv:"FILE"
          ~doc:"Write the $(b,--journal) dump to $(docv) instead of stderr.")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt ~vopt:(Some 5.0) (some float) None
      & info [ "watchdog" ] ~docv:"SECS"
          ~doc:
            "Arm the stall watchdog: if no forward progress (sampler \
             ticks) is seen across two $(docv)-second intervals (default \
             5), print a heartbeat to stderr and dump the journal.  \
             Implies $(b,--journal).")
  in
  let wire metrics metrics_format trace_events progress journal journal_file
      watchdog =
    (* --watchdog needs a journal to dump; arm one at default capacity *)
    let journal =
      match (journal, watchdog) with
      | None, Some _ -> Some 1024
      | j, _ -> j
    in
    Obs.Profile.configure ?metrics_file:metrics ~metrics_format
      ?trace_events_file:trace_events ?progress
      ~heartbeat:(progress <> None) ?journal ?journal_file ?watchdog ()
  in
  Term.(
    const wire $ metrics_arg $ metrics_format_arg $ trace_events_arg
    $ progress_arg $ journal_arg $ journal_file_arg $ watchdog_arg)

let seed_arg =
  Arg.(
    value
    & opt int Solver.Cdcl.default_config.seed
    & info [ "seed" ] ~docv:"N" ~doc:"Random seed for the solver.")

let bcp_arg =
  let parse = function
    | "watched" -> Ok Solver.Cdcl.Two_watched
    | "counting" -> Ok Solver.Cdcl.Counting
    | s -> Error (`Msg (Printf.sprintf "unknown BCP scheme %S" s))
  in
  let print fmt = function
    | Solver.Cdcl.Two_watched -> Format.pp_print_string fmt "watched"
    | Solver.Cdcl.Counting -> Format.pp_print_string fmt "counting"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Solver.Cdcl.Two_watched
    & info [ "bcp" ] ~docv:"SCHEME"
        ~doc:"Propagation scheme: $(b,watched) or $(b,counting).")

let no_restarts_arg =
  Arg.(value & flag & info [ "no-restarts" ] ~doc:"Disable restarts.")

let no_deletion_arg =
  Arg.(
    value & flag
    & info [ "no-deletion" ] ~doc:"Disable learned-clause deletion.")

let minimize_arg =
  Arg.(
    value & flag
    & info [ "minimize" ]
        ~doc:
          "Enable conflict-clause minimization (a post-paper technique;            traces remain checkable).")

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Run the solver's runtime sanitizer: validate watched-literal, \
           trail and implication-graph invariants at every decision \
           boundary (large slowdown; debugging aid).")

let config_of seed bcp no_restarts no_deletion minimize sanitize =
  {
    Solver.Cdcl.default_config with
    seed;
    bcp;
    enable_restarts = not no_restarts;
    enable_deletion = not no_deletion;
    enable_minimization = minimize;
    sanitize;
  }

let pre_arg =
  Arg.(
    value & flag
    & info [ "pre" ]
        ~doc:
          "Run the proof-emitting simplifier before search.  The trace \
           opens with the simplifier's derivation records (one $(b,Learned) \
           record per derived clause, resolving original clauses), so it \
           still checks against the $(b,original) formula under every mode \
           and unsat cores keep original DIMACS clause indices; SAT models \
           are reconstructed to models of the original formula.")

(* A sanitizer violation is by definition a solver bug — same exit class
   as a rejected proof. *)
let or_sanitizer_exit f =
  try f ()
  with Solver.Cdcl.Sanitizer_violation m ->
    Printf.printf "c SANITIZER: %s\n" m;
    print_endline "s SANITIZER VIOLATION";
    exit 1

let load_formula path =
  try Ok (Sat.Dimacs.parse_file path)
  with Sat.Dimacs.Parse_error m -> Error m

(* Compact two-line proof-DAG summary shared by `check --analyze` and
   `validate --analyze`; the full profile belongs to `analyze`. *)
let print_dag_summary (p : Analysis.Dag.profile) =
  Printf.printf
    "c dag: %d/%d learned reachable, %d dead, core %d/%d originals, depth %d\n"
    p.reachable_learned p.learned p.dead_learned p.core_originals p.originals
    p.max_depth;
  Printf.printf
    "c dag: predicted peak live df %d bf %d hybrid %d; warnings %s\n"
    p.predicted_peak_live.df p.predicted_peak_live.bf
    p.predicted_peak_live.hybrid
    (Analysis.Dag.warning_summary p)

let analyze_flag_arg =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Also run the whole-proof static analysis (see $(b,analyze)) over \
           the trace and print a two-line DAG summary.")

let print_stats (stats : Solver.Cdcl.stats) =
  Printf.printf
    "c decisions %d, propagations %d, conflicts %d, learned %d, deleted %d, restarts %d\n"
    stats.decisions stats.propagations stats.conflicts stats.learned_clauses
    stats.deleted_clauses stats.restarts

(* --- solve -------------------------------------------------------------- *)

let solve_cmd =
  let run () formula_path trace_path format pre seed bcp no_restarts
      no_deletion minimize sanitize =
    match load_formula formula_path with
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 2
    | Ok f ->
      let config =
        config_of seed bcp no_restarts no_deletion minimize sanitize
      in
      (* no trace requested and no preprocessing: skip the encoder
         entirely, as solve always did *)
      let (result, stats, trace), seconds =
        or_sanitizer_exit (fun () ->
            Harness.Timer.time (fun () ->
                if pre || trace_path <> None then
                  let r, s, t =
                    Pipeline.Validate.solve_with_trace ~config ~format ~pre f
                  in
                  (r, s, Some t)
                else
                  let r, s = Solver.Cdcl.solve ~config f in
                  (r, s, None)))
      in
      print_stats stats;
      Printf.printf "c solved in %.3f s\n" seconds;
      (match result with
       | Solver.Cdcl.Sat a ->
         print_endline "s SATISFIABLE";
         let buf = Buffer.create 256 in
         Buffer.add_string buf "v";
         List.iter
           (fun (v, b) ->
             Buffer.add_char buf ' ';
             Buffer.add_string buf (string_of_int (if b then v else -v)))
           (Sat.Assignment.to_list a);
         Buffer.add_string buf " 0";
         print_endline (Buffer.contents buf);
         exit 10
       | Solver.Cdcl.Unsat ->
         (match trace, trace_path with
          | Some t, Some path ->
            let oc = open_out_bin path in
            output_string oc t;
            close_out oc;
            Printf.printf "c trace written to %s (%d bytes)\n" path
              (String.length t)
          | _ -> ());
         print_endline "s UNSATISFIABLE";
         exit 20)
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace"; "t" ] ~docv:"FILE"
          ~doc:"Write the resolution trace here when UNSAT.")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve a DIMACS formula, optionally with a trace.")
    Term.(
      const run $ telemetry_term $ formula_arg $ trace_arg $ format_arg
      $ pre_arg $ seed_arg $ bcp_arg $ no_restarts_arg $ no_deletion_arg
      $ minimize_arg $ sanitize_arg)

(* --- the checking-mode table -------------------------------------------- *)

(* Everything per-mode — the --mode argument's vocabulary, `check`'s
   checker dispatch, `validate`'s pipeline strategy, and which trace
   format versions the mode reads — derives from this one table, so a
   new mode is one new row, not four scattered match arms. *)

type check_call = {
  cc_meter : Harness.Meter.t;
  cc_format : Trace.Writer.format option;
  cc_io : Trace.Reader.io;
  cc_first_pass : Trace.Source.t;
  cc_jobs : int;
  cc_window : int;
}

type mode = {
  m_name : string;
  m_aliases : string list;
  m_hints : bool;
      (* accepts deletion-hinted (format version 2) traces *)
  m_check :
    (check_call ->
    Sat.Cnf.t ->
    Trace.Reader.source ->
    (Checker.Report.t, Checker.Diagnostics.failure) result)
    option;
      (* None: the mode only exists for `validate` *)
  m_strategy : jobs:int -> window:int -> Pipeline.Validate.strategy;
}

let modes =
  [
    {
      m_name = "df";
      m_aliases = [ "depth-first" ];
      m_hints = false;
      m_check =
        Some
          (fun c f src ->
            Checker.Df.check ~meter:c.cc_meter ?format:c.cc_format
              ~io:c.cc_io ~first_pass:c.cc_first_pass f src);
      m_strategy = (fun ~jobs:_ ~window:_ -> Pipeline.Validate.Depth_first);
    };
    {
      m_name = "bf";
      m_aliases = [ "breadth-first" ];
      m_hints = false;
      m_check =
        Some
          (fun c f src ->
            Checker.Bf.check ~meter:c.cc_meter ?format:c.cc_format
              ~io:c.cc_io ~first_pass:c.cc_first_pass f src);
      m_strategy = (fun ~jobs:_ ~window:_ -> Pipeline.Validate.Breadth_first);
    };
    {
      m_name = "hybrid";
      m_aliases = [];
      m_hints = false;
      m_check =
        Some
          (fun c f src ->
            Checker.Hybrid.check ~meter:c.cc_meter ?format:c.cc_format
              ~io:c.cc_io ~first_pass:c.cc_first_pass f src);
      m_strategy = (fun ~jobs:_ ~window:_ -> Pipeline.Validate.Hybrid);
    };
    {
      m_name = "par";
      m_aliases = [ "parallel" ];
      m_hints = false;
      m_check =
        Some
          (fun c f src ->
            Checker.Par.check ~meter:c.cc_meter ?format:c.cc_format
              ~io:c.cc_io ~jobs:c.cc_jobs ~first_pass:c.cc_first_pass f src);
      m_strategy = (fun ~jobs ~window:_ -> Pipeline.Validate.Parallel jobs);
    };
    {
      m_name = "online";
      m_aliases = [];
      m_hints = false;
      m_check = None;
      m_strategy = (fun ~jobs:_ ~window:_ -> Pipeline.Validate.Online);
    };
    {
      m_name = "hint";
      m_aliases = [ "hinted" ];
      m_hints = true;
      m_check =
        Some
          (fun c f src ->
            Checker.Hint.check ~meter:c.cc_meter ?format:c.cc_format
              ~io:c.cc_io ~first_pass:c.cc_first_pass f src);
      m_strategy = (fun ~jobs:_ ~window:_ -> Pipeline.Validate.Hinted);
    };
    {
      m_name = "window";
      m_aliases = [];
      m_hints = false;
      m_check =
        Some
          (fun c f src ->
            Checker.Window.check ~meter:c.cc_meter ?format:c.cc_format
              ~io:c.cc_io ~window:c.cc_window ~first_pass:c.cc_first_pass f
              src);
      m_strategy = (fun ~jobs:_ ~window -> Pipeline.Validate.Window window);
    };
  ]

(* --- check -------------------------------------------------------------- *)

let strategy_arg =
  let parse s =
    match
      List.find_opt
        (fun m -> m.m_name = s || List.mem s m.m_aliases)
        modes
    with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print fmt m = Format.pp_print_string fmt m.m_name in
  Arg.(
    value
    & opt (conv (parse, print)) (List.hd modes)
    & info [ "strategy"; "s"; "mode" ] ~docv:"S"
        ~doc:
          "Checking mode: $(b,df) (fast, memory-hungry), $(b,bf) \
           (streaming, bounded memory), $(b,hybrid) (best of both, the \
           paper's future work), $(b,par) (bf replayed as wavefronts \
           across $(b,--jobs) domains), $(b,hint) (one-pass checking of a \
           deletion-hinted trace, see $(b,rescheck hint)), $(b,window) \
           (bf with at most $(b,--window) learned clauses resident), or — \
           for $(b,validate) only — $(b,online) (lint and check the live \
           solver stream while it is being produced).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for $(b,--mode par) (ignored by the sequential \
           modes).  Must be at least 1.")

(* --jobs below 1 is a usage error (exit 2), like any other bad input *)
let validate_jobs jobs =
  if jobs < 1 then begin
    Printf.eprintf "error: --jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end

let window_arg =
  Arg.(
    value & opt int 4096
    & info [ "window" ] ~docv:"N"
        ~doc:
          "Window size for $(b,--mode window): at most $(b,N) learned \
           clauses stay arena-resident; everything alive at a window \
           boundary is spilled and reloaded on demand.  Ignored by the \
           other modes.  Must be at least 1.")

let validate_window window =
  if window < 1 then begin
    Printf.eprintf "error: --window must be >= 1 (got %d)\n" window;
    exit 2
  end

let mem_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mem-limit" ] ~docv:"WORDS"
        ~doc:"Simulated memory budget in words (the paper's 800 MB cap).")

let check_cmd =
  let run () formula_path trace_path mode jobs window mem_limit no_lint
      format_override io json analyze refusal_file =
    validate_jobs jobs;
    validate_window window;
    (* [refuse] is the single exit point for every refusal and rejection:
       when --refusal names a file, the structured capture (status,
       message, position, involved ids and codes, journal tail) lands
       there for [rescheck explain]; stdout is already fully printed by
       the time it runs, so the capture never perturbs the verdict. *)
    let refuse ?pos ?(ids = []) ?(codes = []) ~status ~code message =
      (match refusal_file with
       | Some file ->
         Analysis.Explain.write_refusal ~file ~command:"check"
           ~exit_code:code ~status ~message ?pos ~ids ~codes ()
       | None -> ());
      exit code
    in
    let mode_check =
      match mode.m_check with
      | Some c -> c
      | None ->
        prerr_endline
          "error: --mode online belongs to `validate' (check replays an \
           existing trace; pass - or a FIFO to stream one in)";
        exit 2
    in
    match load_formula formula_path with
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 2
    | Ok f ->
      let meter = Harness.Meter.create ?limit_words:mem_limit () in
      (* "-" reads the trace from stdin; a named trace that has no
         seekable length (a FIFO) is likewise streamed.  Streamed bytes
         are spooled to a temp file as pass one consumes them, so the
         multi-pass checkers can re-read the trace afterwards. *)
      let input_channel =
        if trace_path = "-" then Some stdin
        else
          match open_in_bin trace_path with
          | exception Sys_error m ->
            prerr_endline ("error: " ^ m);
            exit 2
          | ic -> (
            match in_channel_length ic with
            | _ ->
              close_in_noerr ic;
              None
            | exception Sys_error _ -> Some ic)
      in
      let spool = ref None in
      let remove_spool () =
        match !spool with
        | Some (path, oc) ->
          close_out_noerr oc;
          (try Sys.remove path with Sys_error _ -> ())
        | None -> ()
      in
      let cur, source =
        match input_channel with
        | None ->
          let src = Trace.Reader.From_file trace_path in
          (match format_override, Trace.Reader.detect src with
           | None, `Ambiguous msg ->
             remove_spool ();
             ambiguous_format_exit msg
           | _ -> ());
          (* version negotiation: refuse a hinted trace up front when the
             selected mode cannot honour deletion hints, instead of
             failing mid-check *)
          (match Trace.Reader.sniff_version src with
           | 1 -> ()
           | 2 when mode.m_hints -> ()
           | v ->
             let msg =
               Printf.sprintf
                 "trace format version %d is not supported by --mode %s" v
                 mode.m_name
             in
             Printf.printf "c bad trace: %s\n" msg;
             print_endline "s BAD TRACE (version)";
             refuse ~status:"s BAD TRACE (version)" ~code:2 msg
           | exception Sys_error m ->
             prerr_endline ("error: " ^ m);
             exit 2);
          (Trace.Reader.cursor ?format:format_override ~io src, src)
        | Some ic ->
          let path = Filename.temp_file "rescheck_spool" ".trc" in
          let oc = open_out_bin path in
          spool := Some (path, oc);
          let cur =
            Trace.Reader.channel_cursor ?format:format_override
              ~tap:(output_string oc) ic
          in
          (match format_override, Trace.Reader.detect_cursor cur with
           | None, `Ambiguous msg ->
             remove_spool ();
             ambiguous_format_exit msg
           | _ -> ());
          (cur, Trace.Reader.From_file path)
      in
      (* One tee'd pass: the linter taps the events pass one decodes, so
         the trace is parsed once, not twice.  A trace that cannot even
         lint is bad input (exit 2), not a refuted proof (exit 1). *)
      let lint_stream =
        if no_lint then None
        else
          Some
            (Analysis.Lint.stream_start ~formula:f
               ~binary:(Trace.Reader.is_binary_cursor cur) ())
      in
      (* the DAG analyzer taps the same single parse as the linter *)
      let dag_stream =
        if analyze then
          Some
            (Analysis.Dag.stream_start
               ~binary:(Trace.Reader.is_binary_cursor cur) ())
        else None
      in
      let tapped =
        let base = Trace.Source.of_cursor ~close_cursor:true cur in
        let base =
          match lint_stream with
          | None -> base
          | Some t -> Trace.Source.tap (Analysis.Lint.stream_event t) base
        in
        match dag_stream with
        | None -> base
        | Some t -> Trace.Source.tap (Analysis.Dag.stream_event t) base
      in
      let first_pass =
        (* closing the first pass (the checkers do, even on failure) also
           flushes the spool, so later passes re-read complete bytes *)
        Trace.Source.make
          ~close:(fun () ->
            Trace.Source.close tapped;
            match !spool with Some (_, oc) -> flush oc | None -> ())
          ~pos:(fun () -> Trace.Source.last_pos tapped)
          (fun () -> Trace.Source.next tapped)
      in
      let checked, seconds =
        try
          Harness.Timer.time (fun () ->
              mode_check
                {
                  cc_meter = meter;
                  cc_format = format_override;
                  cc_io = io;
                  cc_first_pass = first_pass;
                  cc_jobs = jobs;
                  cc_window = window;
                }
                f source)
        with Harness.Meter.Out_of_memory_simulated e ->
          remove_spool ();
          Printf.printf
            "s MEMORY OUT (budget %d words, needed %d)\n" e.limit_words
            e.wanted;
          exit 3
      in
      let lint_fail report =
        Format.printf "@[<v>%a@]@." Analysis.Lint.pp report;
        print_endline "s BAD TRACE (lint)";
        remove_spool ();
        let errors =
          List.filter
            (fun (d : Analysis.Lint.diagnostic) ->
              Analysis.Lint.severity_of d.code = Analysis.Lint.Error)
            report.Analysis.Lint.diagnostics
        in
        let pos, message =
          match errors with
          | d :: _ ->
            ( Some d.Analysis.Lint.pos,
              Printf.sprintf "%s: %s"
                (Analysis.Lint.code_id d.Analysis.Lint.code)
                d.Analysis.Lint.message )
          | [] -> (None, "trace failed lint")
        in
        refuse ?pos
          ~codes:
            (List.map
               (fun (d : Analysis.Lint.diagnostic) ->
                 Analysis.Lint.code_id d.Analysis.Lint.code)
               errors)
          ~status:"s BAD TRACE (lint)" ~code:2 message
      in
      (match checked with
       | Ok report ->
         Checker.Report.observe report;
         (match lint_stream with
          | Some t ->
            let lint = Analysis.Lint.stream_finish t in
            if not (Analysis.Lint.clean lint) then lint_fail lint
          | None -> ());
         remove_spool ();
         if json then
           (* deterministic by construction: the JSON report carries no
              elapsed seconds, so this output is diffable across runs *)
           print_endline (Checker.Report.to_json report)
         else begin
           (match dag_stream with
            | Some t -> (
              match Analysis.Dag.stream_finish t with
              | Ok p -> print_dag_summary p
              | Error e ->
                Printf.printf "c dag: analysis unavailable (%s)\n"
                  e.Analysis.Dag.message)
            | None -> ());
           Format.printf "%a@." Checker.Report.pp report;
           Printf.printf "c checked in %.3f s\n" seconds
         end;
         print_endline "s VERIFIED UNSATISFIABLE";
         exit 0
       | Error Checker.Diagnostics.Hints_unsupported ->
         (* streamed/spooled hinted input reaches the checker before the
            version gate can see the file; the refusal also truncates the
            spool, so re-linting it would only mask the real cause *)
         remove_spool ();
         Printf.printf "c bad trace: %s\n"
           (Checker.Diagnostics.to_string Checker.Diagnostics.Hints_unsupported);
         print_endline "s BAD TRACE (version)";
         refuse ~status:"s BAD TRACE (version)" ~code:2
           (Checker.Diagnostics.to_string Checker.Diagnostics.Hints_unsupported)
       | Error d ->
         (* the tee'd lint stopped where the checker stopped; re-lint the
            (spooled) trace in full so the report matches a standalone
            `rescheck lint` run byte for byte *)
         (if not no_lint then
            let report =
              Analysis.Lint.run ?format:format_override ~io ~formula:f source
            in
            if not (Analysis.Lint.clean report) then lint_fail report);
         remove_spool ();
         (match d with
          | Checker.Diagnostics.Malformed_trace _ ->
            (* unparsable input escapes the bad-input way, even under
               --no-lint, so scripts can tell the failure classes apart *)
            Printf.printf "c bad trace: %s\n"
              (Checker.Diagnostics.to_string d);
            print_endline "s BAD TRACE (parse)";
            refuse
              ?pos:(Checker.Diagnostics.position d)
              ~codes:[ "L001" ] ~status:"s BAD TRACE (parse)" ~code:2
              (Checker.Diagnostics.to_string d)
          | _ ->
            Printf.printf "c check failed: %s\n"
              (Checker.Diagnostics.to_string d);
            print_endline "s CHECK FAILED";
            refuse
              ?pos:(Checker.Diagnostics.position d)
              ~ids:(Checker.Diagnostics.ids d)
              ~status:"s CHECK FAILED" ~code:1
              (Checker.Diagnostics.to_string d)))
  in
  let trace_pos =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Resolution trace produced by solve; $(b,-) reads it from \
             stdin, and a FIFO is streamed (and spooled for the \
             multi-pass modes).")
  in
  let no_lint_arg =
    Arg.(
      value & flag
      & info [ "no-lint" ]
          ~doc:
            "Skip the structural lint pre-pass and hand the trace straight \
             to the semantic checker.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "On success, print the report as deterministic JSON (no \
             elapsed-seconds line) instead of the human-readable text.")
  in
  let refusal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "refusal" ] ~docv:"FILE"
          ~doc:
            "On a refusal (exit 2) or rejected proof (exit 1), write a \
             structured $(b,rescheck-refusal/1) capture — status, message, \
             position, the clause ids and lint codes involved, and the \
             journal tail — to $(docv), consumable by $(b,rescheck \
             explain).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate an unsatisfiability trace against its formula.  The \
          trace encoding is auto-detected unless $(b,--format) forces it; \
          linting and pass one share a single parse.  Exit codes: 0 \
          verified, 1 proof rejected, 2 bad input (lint or parse failure, \
          ambiguous encoding, or bad $(b,--jobs)), 3 memory-out.")
    Term.(
      const run $ telemetry_term $ formula_arg $ trace_pos $ strategy_arg
      $ jobs_arg $ window_arg $ mem_limit_arg $ no_lint_arg $ in_format_arg
      $ io_arg $ json_arg $ analyze_flag_arg $ refusal_arg)

(* --- lint --------------------------------------------------------------- *)

let lint_cmd =
  let run () trace_path formula_path json max_diags format_override io =
    let formula =
      match formula_path with
      | None -> None
      | Some p -> (
        match load_formula p with
        | Ok f -> Some f
        | Error m ->
          prerr_endline ("error: " ^ m);
          exit 2)
    in
    let src = Trace.Reader.From_file trace_path in
    (match format_override with
     | Some _ -> ()
     | None -> (
       match Trace.Reader.detect src with
       | `Ambiguous msg -> ambiguous_format_exit msg
       | `Ascii | `Binary -> ()
       | exception Sys_error m ->
         prerr_endline ("error: " ^ m);
         exit 2));
    let report =
      try
        Analysis.Lint.run ?format:format_override ~io ?formula
          ~max_diagnostics:max_diags src
      with Sys_error m ->
        prerr_endline ("error: " ^ m);
        exit 2
    in
    if json then print_endline (Analysis.Lint.to_json report)
    else begin
      Format.printf "@[<v>%a@]@." Analysis.Lint.pp report;
      print_endline
        (if Analysis.Lint.clean report then "s LINT OK" else "s LINT FAILED")
    end;
    exit (if Analysis.Lint.clean report then 0 else 1)
  in
  let trace_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Resolution trace to lint.")
  in
  let formula_opt =
    Arg.(
      value
      & opt (some file) None
      & info [ "formula"; "f" ] ~docv:"FORMULA"
          ~doc:
            "Cross-check the trace header against this DIMACS formula and \
             lint the formula's clauses (L4xx codes).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as machine-readable JSON.")
  in
  let max_diags_arg =
    Arg.(
      value & opt int 100
      & info [ "max-diagnostics" ] ~docv:"N"
          ~doc:
            "Keep at most $(docv) diagnostics (counts keep accumulating \
             past the cap).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically validate a trace in one streaming pass — no clause \
          construction, no resolution.  Exit codes: 0 clean (warnings \
          allowed), 1 lint errors, 2 unreadable input or ambiguous \
          encoding.")
    Term.(
      const run $ telemetry_term $ trace_pos $ formula_opt $ json_arg
      $ max_diags_arg $ in_format_arg $ io_arg)

(* --- analyze ------------------------------------------------------------- *)

let analyze_cmd =
  let run () trace_path json max_diags format_override io =
    let src = Trace.Reader.From_file trace_path in
    (match format_override with
     | Some _ -> ()
     | None -> (
       match Trace.Reader.detect src with
       | `Ambiguous msg -> ambiguous_format_exit msg
       | `Ascii | `Binary -> ()
       | exception Sys_error m ->
         prerr_endline ("error: " ^ m);
         exit 2));
    match
      Analysis.Dag.run ?format:format_override ~io ~max_diagnostics:max_diags
        src
    with
    | exception Sys_error m ->
      prerr_endline ("error: " ^ m);
      exit 2
    | Error e ->
      (* a trace without a profilable DAG is bad input, same exit class
         as a lint error or an unparsable trace *)
      Printf.printf "c cannot analyze: %s at %s\n" e.Analysis.Dag.message
        (Trace.Reader.pos_to_string e.Analysis.Dag.pos);
      print_endline "s BAD TRACE (analyze)";
      exit 2
    | Ok p ->
      if json then print_endline (Analysis.Dag.to_json p)
      else begin
        Format.printf "@[<v>%a@]@." Analysis.Dag.pp p;
        print_endline "s ANALYZE OK"
      end;
      exit 0
  in
  let trace_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Resolution trace to analyze.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the profile as machine-readable JSON.")
  in
  let max_diags_arg =
    Arg.(
      value & opt int 100
      & info [ "max-diagnostics" ] ~docv:"N"
          ~doc:
            "Keep at most $(docv) diagnostics (counts keep accumulating \
             past the cap).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically profile the whole proof DAG in one streaming pass — \
          reachability from the final conflict, dead and duplicate \
          derivations (L5xx warnings), chain shape, def/use lifetimes and \
          per-strategy peak-live predictions; clause literals are never \
          materialised.  Exit codes: 0 profiled (warnings allowed), 2 \
          unreadable, unparsable or structurally broken input.")
    Term.(
      const run $ telemetry_term $ trace_pos $ json_arg $ max_diags_arg
      $ in_format_arg $ io_arg)

(* --- validate ------------------------------------------------------------ *)

let validate_cmd =
  let run () formula_path mode jobs window format pre seed bcp no_restarts
      no_deletion minimize sanitize analyze =
    validate_jobs jobs;
    validate_window window;
    match load_formula formula_path with
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 2
    | Ok f ->
      let config =
        config_of seed bcp no_restarts no_deletion minimize sanitize
      in
      let strategy = mode.m_strategy ~jobs ~window in
      let o =
        or_sanitizer_exit (fun () ->
            Pipeline.Validate.run ~config ~format ~strategy ~analyze ~pre f)
      in
      print_stats o.stats;
      (match o.pre with
       | Some (s : Solver.Simplify.stats) ->
         Printf.printf
           "c pre: %d units, %d pures, %d subsumed, %d strengthened, %d \
            vars eliminated (+%d resolvents), %d failed literals, %d \
            derived records, %d rounds\n"
           s.units_propagated s.pure_literals s.subsumed_removed
           s.strengthened s.eliminated_vars s.resolvents_added
           s.failed_literals s.derived_records s.rounds
       | None -> ());
      Printf.printf "c solve %.3f s, check %.3f s, trace %d bytes\n"
        o.solve_seconds o.check_seconds o.trace_bytes;
      (match o.online with
       | Some info ->
         Printf.printf "c online: peak buffered %d bytes%s\n"
           info.peak_buffered_bytes
           (match o.verdict with
            | Pipeline.Validate.Unsat_verified _
            | Pipeline.Validate.Unsat_check_failed _ ->
              Printf.sprintf ", live lint %s (%d errors, %d warnings)"
                (if Analysis.Lint.clean info.lint then "clean" else "dirty")
                info.lint.Analysis.Lint.errors
                info.lint.Analysis.Lint.warnings
            | _ -> "")
       | None -> ());
      (match o.dag with Some p -> print_dag_summary p | None -> ());
      (match o.verdict with
       | Pipeline.Validate.Sat_verified _ ->
         print_endline "s SATISFIABLE (model verified)";
         exit 10
       | Pipeline.Validate.Unsat_verified report ->
         Format.printf "%a@." Checker.Report.pp report;
         print_endline "s UNSATISFIABLE (proof verified)";
         exit 20
       | Pipeline.Validate.Sat_model_wrong i ->
         Printf.printf "c SOLVER BUG: clause %d not satisfied by the model\n" i;
         exit 1
       | Pipeline.Validate.Unsat_check_failed d ->
         Printf.printf "c SOLVER BUG: %s\n" (Checker.Diagnostics.to_string d);
         exit 1)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Solve and independently validate the answer in one step.  With \
          $(b,--mode online) the solver's live event stream is teed into \
          the linter and the checker's counting pass while solving runs, \
          so the full encoded trace is never held in memory.")
    Term.(
      const run $ telemetry_term $ formula_arg $ strategy_arg $ jobs_arg
      $ window_arg $ format_arg $ pre_arg $ seed_arg $ bcp_arg
      $ no_restarts_arg $ no_deletion_arg $ minimize_arg $ sanitize_arg
      $ analyze_flag_arg)

(* --- core ---------------------------------------------------------------- *)

let core_cmd =
  let run () formula_path rounds output minimal pre =
    match load_formula formula_path with
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 2
    | Ok f when minimal -> (
      match Pipeline.Muc.minimize ~pre f with
      | Error `Sat ->
        print_endline "s SATISFIABLE (no unsat core)";
        exit 10
      | Ok r ->
        Printf.printf
          "c minimal unsatisfiable core: %d of %d clauses (%d solver calls)\n"
          (Sat.Cnf.nclauses r.formula) (Sat.Cnf.nclauses f) r.solver_calls;
        (match output with
         | Some path ->
           Sat.Dimacs.write_file
             ~comment:(Printf.sprintf "minimal unsat core of %s" formula_path)
             path r.formula;
           Printf.printf "c core written to %s\n" path
         | None -> ());
        exit 20)
    | Ok f -> (
      match Pipeline.Unsat_core.shrink ~pre ~max_rounds:rounds f with
      | Error `Sat ->
        print_endline "s SATISFIABLE (no unsat core)";
        exit 10
      | Error (`Check_failed d) ->
        Printf.printf "c check failed: %s\n" (Checker.Diagnostics.to_string d);
        exit 1
      | Ok s ->
        let rows =
          List.mapi
            (fun i (it : Pipeline.Unsat_core.iteration) ->
              [ string_of_int (i + 1); string_of_int it.clauses;
                string_of_int it.vars ])
            s.iterations
        in
        Harness.Table.print
          (Harness.Table.render
             ~headers:[ "iteration"; "clauses"; "vars" ]
             ([ [ "0 (input)"; string_of_int s.initial.clauses;
                  string_of_int s.initial.vars ] ] @ rows));
        Printf.printf "c fixed point: %b after %d rounds\n" s.reached_fixpoint
          s.rounds;
        (match output with
         | Some path ->
           Sat.Dimacs.write_file
             ~comment:
               (Printf.sprintf "unsat core of %s (%d rounds)" formula_path
                  s.rounds)
             path s.final_core;
           Printf.printf "c core written to %s\n" path
         | None -> ());
        exit 20)
  in
  let rounds_arg =
    Arg.(
      value & opt int 30
      & info [ "rounds"; "r" ] ~docv:"N"
          ~doc:"Maximum shrinking iterations (the paper measured 30).")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE"
          ~doc:"Write the final core as DIMACS.")
  in
  let minimal_arg =
    Arg.(
      value & flag
      & info [ "minimal"; "m" ]
          ~doc:
            "Minimise destructively to a minimal unsatisfiable core \
             (every clause necessary).")
  in
  Cmd.v
    (Cmd.info "core"
       ~doc:
         "Extract and iteratively shrink an unsatisfiable core (§4).  With \
          $(b,--pre) each extraction preprocesses first; indices still \
          point into the input formula.")
    Term.(
      const run $ telemetry_term $ formula_arg $ rounds_arg $ output_arg
      $ minimal_arg $ pre_arg)

(* --- simplify ------------------------------------------------------------ *)

let simplify_stats_json ~verdict ~original ~remaining
    (s : Solver.Simplify.stats) =
  Printf.sprintf
    "{\"verdict\":\"%s\",\"original_clauses\":%d,\"remaining_clauses\":%d,\
     \"rounds\":%d,\"derived_records\":%d,\"passes\":{\
     \"units_propagated\":%d,\"pure_literals\":%d,\
     \"tautologies_removed\":%d,\"subsumed_removed\":%d,\
     \"duplicates_removed\":%d,\"strengthened\":%d,\"eliminated_vars\":%d,\
     \"resolvents_added\":%d,\"failed_literals\":%d}}"
    verdict original remaining s.rounds s.derived_records s.units_propagated
    s.pure_literals s.tautologies_removed s.subsumed_removed
    s.duplicates_removed s.strengthened s.eliminated_vars s.resolvents_added
    s.failed_literals

let simplify_cmd =
  let run () formula_path output trace_path format json =
    match load_formula formula_path with
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 2
    | Ok f ->
      let writer =
        Option.map (fun _ -> Trace.Writer.create ~version:1 format) trace_path
      in
      let outcome, stats =
        Obs.Span.scope ~cat:"pipeline" "simplify.cli" @@ fun () ->
        Solver.Simplify.run ?trace:(Option.map Trace.Writer.as_sink writer) f
      in
      (match writer, trace_path with
       | Some w, Some path ->
         Trace.Writer.to_file w path;
         if not json then
           Printf.printf "c trace written to %s (%d bytes)\n" path
             (Trace.Writer.bytes_written w)
       | _ -> ());
      if not json then begin
        Printf.printf
          "c units %d, pures %d, tautologies %d, subsumed %d, duplicates %d\n"
          stats.units_propagated stats.pure_literals stats.tautologies_removed
          stats.subsumed_removed stats.duplicates_removed;
        Printf.printf
          "c strengthened %d, eliminated %d vars (+%d resolvents), failed \
           literals %d\n"
          stats.strengthened stats.eliminated_vars stats.resolvents_added
          stats.failed_literals;
        Printf.printf "c %d derived records in %d rounds\n"
          stats.derived_records stats.rounds
      end;
      let finish ~verdict ~remaining code =
        if json then
          print_endline
            (simplify_stats_json ~verdict ~original:(Sat.Cnf.nclauses f)
               ~remaining stats);
        exit code
      in
      (match outcome with
       | Solver.Simplify.P_unsat ->
         if not json then print_endline "s UNSATISFIABLE (by preprocessing)";
         finish ~verdict:"unsat" ~remaining:0 20
       | Solver.Simplify.P_sat _ ->
         if not json then print_endline "s SATISFIABLE (by preprocessing)";
         finish ~verdict:"sat" ~remaining:0 10
       | Solver.Simplify.P_simplified { clauses; units; _ } ->
         (* the surviving clause set as a formula: forced assignments have
            been applied, so the unit clauses are not repeated in it *)
         let formula =
           Sat.Cnf.of_clauses (Sat.Cnf.nvars f) (List.map snd clauses)
         in
         if not json then begin
           Printf.printf "c %d/%d clauses remain (%d forced units)\n"
             (Sat.Cnf.nclauses formula) (Sat.Cnf.nclauses f)
             (List.length units);
           match output with
           | Some path ->
             Sat.Dimacs.write_file
               ~comment:(Printf.sprintf "simplified from %s" formula_path)
               path formula;
             Printf.printf "c written to %s\n" path
           | None -> print_string (Sat.Dimacs.to_string formula)
         end
         else
           Option.iter
             (fun path ->
               Sat.Dimacs.write_file
                 ~comment:(Printf.sprintf "simplified from %s" formula_path)
                 path formula)
             output;
         finish ~verdict:"simplified"
           ~remaining:(Sat.Cnf.nclauses formula + List.length units)
           0)
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace"; "t" ] ~docv:"FILE"
          ~doc:
            "Write the simplifier's proof-emitting trace here: one \
             $(b,Learned) record per derived clause, resolving original \
             clauses.  When preprocessing alone proves UNSAT the trace is \
             complete and $(b,rescheck check) validates it against the \
             input formula; otherwise it is the (documented) proof prefix \
             a seeded search run would extend.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the outcome and per-pass statistics as deterministic \
             JSON instead of the human-readable text (the formula itself \
             is only written with $(b,--output)).")
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:
         "Preprocess a formula (units, pure literals, subsumption, \
          self-subsuming resolution, bounded variable elimination, \
          failed-literal probing) into an equisatisfiable smaller one.  \
          Every derived clause carries a resolution justification; \
          $(b,--trace) captures them.  Exit codes: 0 simplified, 10/20 \
          decided by preprocessing alone, 2 malformed DIMACS.")
    Term.(
      const run $ telemetry_term $ formula_arg $ output_arg $ trace_arg
      $ format_arg $ json_arg)

(* --- trim ---------------------------------------------------------------- *)

let trim_cmd =
  let run () formula_path trace_path output format_opt checked io =
    match load_formula formula_path with
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 2
    | Ok f ->
      let src = Trace.Reader.From_file trace_path in
      let detected =
        match Trace.Reader.detect src with
        | `Ascii -> Trace.Writer.Ascii
        | `Binary -> Trace.Writer.Binary
        | `Ambiguous msg -> ambiguous_format_exit msg
        | exception Sys_error m ->
          prerr_endline ("error: " ^ m);
          exit 2
      in
      (* by default the trimmed trace keeps the input's encoding;
         --format rewrites into the other one *)
      let out_format = Option.value ~default:detected format_opt in
      if checked then (
        (* legacy DF-verified path: replay the whole proof, then keep what
           the checker built.  Slower, but the trim is itself checked. *)
        match Checker.Trim.trim f src with
        | Error (Checker.Diagnostics.Malformed_trace _ as d) ->
          Printf.printf "c bad trace: %s\n" (Checker.Diagnostics.to_string d);
          print_endline "s BAD TRACE (parse)";
          exit 2
        | Error d ->
          Printf.printf "c input trace does not check: %s\n"
            (Checker.Diagnostics.to_string d);
          exit 1
        | Ok r ->
          let w = Trace.Writer.create out_format in
          Checker.Trim.write w r;
          Trace.Writer.to_file w output;
          Printf.printf
            "c kept %d learned clauses, dropped %d; trimmed trace: %d bytes \
             -> %s\n"
            r.kept_learned r.dropped_learned
            (Trace.Writer.bytes_written w)
            output;
          exit 0)
      else (
        let w = Trace.Writer.create out_format in
        match Analysis.Dag.trim ~io src w with
        | Error e ->
          Printf.printf "c cannot trim: %s at %s\n" e.Analysis.Dag.message
            (Trace.Reader.pos_to_string e.Analysis.Dag.pos);
          print_endline "s BAD TRACE (analyze)";
          exit 2
        | Ok (stats, _profile) ->
          Trace.Writer.to_file w output;
          Printf.printf
            "c trim: kept %d of %d learned clauses (%d dead dropped), %d -> \
             %d records, %d -> %d bytes -> %s\n"
            stats.kept_learned
            (stats.kept_learned + stats.dropped_learned)
            stats.dropped_learned stats.records_in stats.records_out
            stats.bytes_in stats.bytes_out output;
          exit 0)
  in
  let trace_pos =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Resolution trace produced by solve.")
  in
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Trimmed trace path.")
  in
  let out_format_arg =
    Arg.(
      value
      & opt (some format_conv) None
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Encoding of the trimmed trace ($(b,ascii) or $(b,binary)); \
             defaults to the input's encoding.")
  in
  let checked_arg =
    Arg.(
      value & flag
      & info [ "checked" ]
          ~doc:
            "Replay the proof with the depth-first checker and keep the \
             clauses it built, instead of the default static reachability \
             analysis.  Slower; rejects a trace that does not check \
             (exit 1).")
  in
  Cmd.v
    (Cmd.info "trim"
       ~doc:
         "Shrink a trace to its core-reachable records: dead derivations \
          (never used to reach the final conflict) and trailing junk are \
          dropped, through a static analysis of the proof DAG — the proof \
          is not replayed.  Every checking strategy reaches an identical \
          verdict and core on the trimmed trace, and trimming again is a \
          no-op.  Exit codes: 0 trimmed, 1 $(b,--checked) replay rejected \
          the proof, 2 unreadable, unparsable or structurally broken \
          input.")
    Term.(
      const run $ telemetry_term $ formula_arg $ trace_pos $ output_arg
      $ out_format_arg $ checked_arg $ io_arg)

(* --- hint --------------------------------------------------------------- *)

let hint_cmd =
  let run () trace_path output format_opt strip io =
    let src = Trace.Reader.From_file trace_path in
    let detected =
      match Trace.Reader.detect src with
      | `Ascii -> Trace.Writer.Ascii
      | `Binary -> Trace.Writer.Binary
      | `Ambiguous msg -> ambiguous_format_exit msg
      | exception Sys_error m ->
        prerr_endline ("error: " ^ m);
        exit 2
    in
    (* like trim: the output keeps the input's encoding unless --format
       rewrites into the other one *)
    let out_format = Option.value ~default:detected format_opt in
    if strip then (
      let w = Trace.Writer.create ~version:1 out_format in
      match Analysis.Dag.strip_hints ~io src w with
      | Error e ->
        Printf.printf "c cannot strip: %s at %s\n" e.Analysis.Dag.message
          (Trace.Reader.pos_to_string e.Analysis.Dag.pos);
        print_endline "s BAD TRACE (parse)";
        exit 2
      | Ok stats ->
        Trace.Writer.to_file w output;
        Printf.printf
          "c strip: dropped %d delete records, %d -> %d records, %d bytes \
           -> %s\n"
          stats.Analysis.Dag.dropped_hints stats.Analysis.Dag.h_records_in
          stats.Analysis.Dag.h_records_out
          (Trace.Writer.bytes_written w)
          output;
        exit 0)
    else (
      let w = Trace.Writer.create ~version:2 out_format in
      match Analysis.Dag.hint ~io src w with
      | Error e ->
        Printf.printf "c cannot hint: %s at %s\n" e.Analysis.Dag.message
          (Trace.Reader.pos_to_string e.Analysis.Dag.pos);
        print_endline "s BAD TRACE (analyze)";
        exit 2
      | Ok (stats, _profile) ->
        Trace.Writer.to_file w output;
        Printf.printf
          "c hint: %d delete records cover %d clauses (%d pinned for the \
           final chain, %d stale hints dropped), %d -> %d records, %d \
           bytes -> %s\n"
          stats.Analysis.Dag.hints stats.Analysis.Dag.hinted_clauses
          stats.Analysis.Dag.pinned stats.Analysis.Dag.dropped_hints
          stats.Analysis.Dag.h_records_in stats.Analysis.Dag.h_records_out
          (Trace.Writer.bytes_written w)
          output;
        exit 0)
  in
  let trace_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Resolution trace produced by solve.")
  in
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Hinted trace path.")
  in
  let out_format_arg =
    Arg.(
      value
      & opt (some format_conv) None
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Encoding of the output trace ($(b,ascii) or $(b,binary)); \
             defaults to the input's encoding.")
  in
  let strip_arg =
    Arg.(
      value & flag
      & info [ "strip" ]
          ~doc:
            "Reverse direction: drop every deletion hint and write a plain \
             version-1 trace that any mode can check.")
  in
  Cmd.v
    (Cmd.info "hint"
       ~doc:
         "Rewrite a trace into the deletion-hinted format (version 2): a \
          static last-use analysis of the proof DAG inserts delete records \
          at each clause's final reference, so $(b,check --mode hint) can \
          validate the proof in one pass at breadth-first's peak memory.  \
          Clauses the final conflict chain needs are pinned (never hinted) \
          and hinting an already-hinted trace is a no-op on the schedule.  \
          With $(b,--strip) the rewrite runs the other way.  Exit codes: 0 \
          written, 2 unreadable, unparsable or structurally broken input.")
    Term.(
      const run $ telemetry_term $ trace_pos $ output_arg $ out_format_arg
      $ strip_arg $ io_arg)

(* --- drup ---------------------------------------------------------------- *)

let drup_cmd =
  let run formula_path trace_path output verify =
    match load_formula formula_path with
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 2
    | Ok f -> (
      match Pipeline.Drup.of_trace f (Trace.Reader.From_file trace_path) with
      | Error d ->
        Printf.printf "c conversion failed: %s\n"
          (Checker.Diagnostics.to_string d);
        exit 1
      | Ok derivation ->
        (if verify then
           match Checker.Rup.check f derivation with
           | Ok stats ->
             Printf.printf "c RUP-verified: %d steps, %d propagations\n"
               stats.clauses_checked stats.propagations
           | Error e ->
             Printf.printf "c RUP verification failed: %s\n"
               (Format.asprintf "%a" Checker.Rup.pp_failure e);
             exit 1);
        let text = Pipeline.Drup.to_string derivation in
        (match output with
         | Some path ->
           let oc = open_out path in
           output_string oc text;
           close_out oc;
           Printf.printf "c DRUP written to %s (%d clauses, %d bytes)\n" path
             (List.length derivation) (String.length text)
         | None -> print_string text);
        exit 0)
  in
  let trace_pos =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Resolution trace produced by solve.")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"DRUP output path.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Re-check the derivation with the built-in RUP checker.")
  in
  Cmd.v
    (Cmd.info "drup"
       ~doc:
         "Convert a resolve-source trace into a DRUP derivation (the \
          modern proof format).")
    Term.(const run $ formula_arg $ trace_pos $ output_arg $ verify_arg)

(* --- mc ------------------------------------------------------------------ *)

let parse_system spec =
  match String.split_on_char ':' spec with
  | [ "ring"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 2 -> Ok (Circuit.Transition.token_ring ~nodes:n)
    | _ -> Error "ring:<nodes>, nodes >= 2")
  | [ "ring-buggy"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 2 -> Ok (Circuit.Transition.token_ring_buggy ~nodes:n)
    | _ -> Error "ring-buggy:<nodes>, nodes >= 2")
  | [ "counter"; w; l; t ] -> (
    match int_of_string_opt w, int_of_string_opt l, int_of_string_opt t with
    | Some width, Some limit, Some target -> (
      match Circuit.Transition.saturating_counter ~width ~limit ~target with
      | ts -> Ok ts
      | exception Invalid_argument m -> Error m)
    | _ -> Error "counter:<width>:<limit>:<target>")
  | [ "mutex" ] -> Ok (Circuit.Transition.mutex ())
  | _ ->
    Error
      "unknown system (ring:<n>, ring-buggy:<n>, counter:<w>:<l>:<t>, mutex)"

let mc_cmd =
  let run spec bound unbounded =
    match parse_system spec with
    | Error m ->
      prerr_endline ("error: " ^ m);
      exit 2
    | Ok ts ->
      if unbounded then begin
        match Pipeline.Bmc_engine.interpolation_mc ts with
        | Pipeline.Bmc_engine.Proved_safe { iterations; reachable_nodes } ->
          Printf.printf
            "s SAFE (all depths; %d interpolation rounds, invariant %d BDD \
             nodes)\n"
            iterations reachable_nodes;
          exit 0
        | Pipeline.Bmc_engine.Counterexample { depth } ->
          Printf.printf "s UNSAFE (violated within %d steps)\n" depth;
          exit 1
        | Pipeline.Bmc_engine.Inconclusive { iterations } ->
          Printf.printf "s UNKNOWN (after %d rounds)\n" iterations;
          exit 3
        | Pipeline.Bmc_engine.Mc_check_failed d ->
          Printf.printf "c proof rejected: %s\n"
            (Checker.Diagnostics.to_string d);
          exit 4
      end
      else begin
        match Pipeline.Bmc_engine.bmc ~max_depth:bound ts with
        | Pipeline.Bmc_engine.Cex d ->
          Printf.printf "s UNSAFE (counterexample at depth %d)\n" d;
          exit 1
        | Pipeline.Bmc_engine.Safe_up_to d ->
          Printf.printf "s SAFE UP TO DEPTH %d (use --unbounded to close)\n" d;
          exit 0
        | Pipeline.Bmc_engine.Check_failed x ->
          Printf.printf "c proof rejected: %s\n"
            (Checker.Diagnostics.to_string x);
          exit 4
      end
  in
  let spec_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SYSTEM"
          ~doc:
            "Transition system: $(b,ring:N), $(b,ring-buggy:N), \
             $(b,counter:W:LIMIT:TARGET), or $(b,mutex).")
  in
  let bound_arg =
    Arg.(
      value & opt int 10
      & info [ "bound"; "k" ] ~docv:"K" ~doc:"BMC depth bound.")
  in
  let unbounded_arg =
    Arg.(
      value & flag
      & info [ "unbounded"; "u" ]
          ~doc:"Interpolation-based unbounded checking instead of BMC.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Model-check a built-in transition system: BMC with validated \
          proofs, or interpolation-based unbounded checking.")
    Term.(const run $ spec_arg $ bound_arg $ unbounded_arg)

(* --- gen ----------------------------------------------------------------- *)

let gen_cmd =
  let run name list output =
    if list then begin
      List.iter
        (fun (fam : Gen.Families.family) ->
          Printf.printf "%-14s (stands in for %s)\n" fam.name
            fam.paper_analogue)
        (Gen.Families.suite ());
      exit 0
    end;
    match name with
    | None ->
      prerr_endline "error: FAMILY required (or use --list)";
      exit 2
    | Some name -> (
      match Gen.Families.find name with
      | None ->
        Printf.eprintf "error: unknown family %S (try --list)\n" name;
        exit 2
      | Some fam ->
        let f = fam.generate () in
        let doc =
          Sat.Dimacs.to_string
            ~comment:
              (Printf.sprintf "%s: analogue of %s" fam.name fam.paper_analogue)
            f
        in
        (match output with
         | Some path ->
           let oc = open_out path in
           output_string oc doc;
           close_out oc;
           Printf.printf "c %s: %d vars, %d clauses -> %s\n" fam.name
             (Sat.Cnf.nvars f) (Sat.Cnf.nclauses f) path
         | None -> print_string doc);
        exit 0)
  in
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FAMILY" ~doc:"Benchmark family name.")
  in
  let list_arg =
    Arg.(value & flag & info [ "list"; "l" ] ~doc:"List available families.")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark instance as DIMACS.")
    Term.(const run $ name_arg $ list_arg $ output_arg)

(* --- explain -------------------------------------------------------------- *)

let explain_cmd =
  let run trace_path refusal_path json window format_override io =
    (match Analysis.Explain.read_refusal refusal_path with
     | Error msg ->
       prerr_endline ("error: " ^ msg);
       exit 2
     | Ok refusal -> (
       match
         Analysis.Explain.build ?format:format_override ~io ~window
           ~trace:(Trace.Reader.From_file trace_path)
           ~refusal ()
       with
       | report ->
         if json then print_endline (Analysis.Explain.to_json report)
         else Format.printf "%a@?" Analysis.Explain.pp report;
         exit 0
       | exception Sys_error msg ->
         prerr_endline ("error: " ^ msg);
         exit 2))
  in
  let trace_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"The trace the refusal is about.")
  in
  let refusal_pos =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"REFUSAL"
          ~doc:
            "A $(b,rescheck-refusal/1) capture, as written by $(b,check \
             --refusal).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the report as a deterministic $(b,rescheck-explain/1) \
             JSON document instead of the human-readable text.")
  in
  let window_arg =
    Arg.(
      value & opt int 5
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Context records to keep on each side of the offending record \
             (default 5).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Reconstruct the context of a captured refusal: the offending \
          record with a surrounding trace window, the DAG neighborhood of \
          the clause ids involved, documentation for the lint codes cited, \
          and the journal tail recorded at refusal time.  Works on the \
          refused trace itself — parse errors in the window are reported, \
          not fatal.  Exit codes: 0 report produced, 2 unreadable trace or \
          refusal file.")
    Term.(
      const run $ trace_pos $ refusal_pos $ json_arg $ window_arg
      $ in_format_arg $ io_arg)

(* --- profile diff --------------------------------------------------------- *)

(* Flatten a rescheck-run-profile/1 document into comparable scalars:
   counters as themselves, gauges as .value/.max, histograms as
   .count/.sum.  Bucket shapes are deliberately not compared — two runs
   with equal counts and sums but different bucketing are within noise
   for gating purposes. *)
let flatten_profile j =
  let open Obs.Json in
  let metrics = Option.value ~default:(Obj []) (member "metrics" j) in
  let fields k = Option.value ~default:[] (Option.bind (member k metrics) obj) in
  let scalars = ref [] in
  let add name v = scalars := (name, v) :: !scalars in
  List.iter
    (fun (name, v) -> Option.iter (add name) (number v))
    (fields "counters");
  List.iter
    (fun (name, v) ->
      Option.iter (add (name ^ ".value")) (Option.bind (member "value" v) number);
      Option.iter (add (name ^ ".max")) (Option.bind (member "max" v) number))
    (fields "gauges");
  List.iter
    (fun (name, v) ->
      Option.iter (add (name ^ ".count")) (Option.bind (member "count" v) number);
      Option.iter (add (name ^ ".sum")) (Option.bind (member "sum" v) number))
    (fields "histograms");
  List.sort (fun (a, _) (b, _) -> String.compare a b) !scalars

let profile_diff_cmd =
  let run a_path b_path json gate =
    let load path =
      match Obs.Json.of_file path with
      | j -> (
        match Obs.Json.(Option.bind (member "schema" j) string) with
        | Some "rescheck-run-profile/1" -> j
        | _ ->
          Printf.eprintf "error: %s: not a rescheck-run-profile/1 file\n" path;
          exit 2)
      | exception Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
      | exception Obs.Json.Parse_error msg ->
        Printf.eprintf "error: %s: %s\n" path msg;
        exit 2
    in
    let ja = load a_path and jb = load b_path in
    let fa = flatten_profile ja and fb = flatten_profile jb in
    let wall j =
      Obs.Json.(
        Option.bind (member "env" j) (fun e ->
            Option.bind (member "wall_seconds" e) number))
    in
    (* drift of b relative to a; a zero baseline with a non-zero value is
       unbounded drift and always trips a gate *)
    let pct a b =
      if a = 0.0 then if b = 0.0 then 0.0 else infinity
      else Float.abs (b -. a) /. Float.abs a *. 100.0
    in
    let shared, only_a =
      List.partition_map
        (fun (name, va) ->
          match List.assoc_opt name fb with
          | Some vb -> Left (name, va, vb)
          | None -> Right name)
        fa
    in
    let only_b =
      List.filter_map
        (fun (name, _) ->
          if List.mem_assoc name fa then None else Some name)
        fb
    in
    let gated =
      match gate with
      | None -> []
      | Some limit ->
        List.filter (fun (_, va, vb) -> pct va vb > limit) shared
    in
    let jf = Obs.Metrics.json_float in
    if json then begin
      let b = Buffer.create 2048 in
      Buffer.add_string b
        (Printf.sprintf
           {|{"schema":"rescheck-profile-diff/1","a":"%s","b":"%s","wall_seconds":{"a":%s,"b":%s},"metrics":[|}
           (Obs.Metrics.json_escape a_path)
           (Obs.Metrics.json_escape b_path)
           (match wall ja with Some w -> jf w | None -> "null")
           (match wall jb with Some w -> jf w | None -> "null"));
      List.iteri
        (fun i (name, va, vb) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               {|{"name":"%s","a":%s,"b":%s,"pct":%s}|}
               (Obs.Metrics.json_escape name)
               (jf va) (jf vb)
               (let p = pct va vb in
                if Float.is_finite p then jf p else "\"inf\"")))
        shared;
      let names l =
        String.concat ","
          (List.map
             (fun n -> Printf.sprintf {|"%s"|} (Obs.Metrics.json_escape n))
             l)
      in
      Buffer.add_string b
        (Printf.sprintf
           {|],"only_a":[%s],"only_b":[%s],"gate":%s,"over_gate":%d}|}
           (names only_a) (names only_b)
           (match gate with Some g -> jf g | None -> "null")
           (List.length gated));
      print_endline (Buffer.contents b)
    end
    else begin
      Printf.printf "profile diff: %s vs %s\n" a_path b_path;
      (match (wall ja, wall jb) with
       | Some wa, Some wb ->
         Printf.printf "  wall_seconds: %.6f -> %.6f (info only)\n" wa wb
       | _ -> ());
      List.iter
        (fun (name, va, vb) ->
          if va <> vb then
            let p = pct va vb in
            Printf.printf "  %-32s %s -> %s (%s%%)\n" name (jf va) (jf vb)
              (if Float.is_finite p then jf p else "inf"))
        shared;
      List.iter (fun n -> Printf.printf "  only in A: %s\n" n) only_a;
      List.iter (fun n -> Printf.printf "  only in B: %s\n" n) only_b;
      if shared <> [] && List.for_all (fun (_, va, vb) -> va = vb) shared then
        Printf.printf "  %d metrics identical\n" (List.length shared)
    end;
    match gated with
    | [] -> exit 0
    | _ ->
      List.iter
        (fun (name, va, vb) ->
          Printf.eprintf "profile diff: %s drifted %s -> %s (gate %s%%)\n"
            name (jf va) (jf vb)
            (match gate with Some g -> jf g | None -> "?"))
        gated;
      exit 1
  in
  let a_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"A" ~doc:"Baseline run profile.")
  in
  let b_pos =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"B" ~doc:"Candidate run profile.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the diff as a deterministic \
             $(b,rescheck-profile-diff/1) JSON document.")
  in
  let gate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "gate" ] ~docv:"PCT"
          ~doc:
            "Fail (exit 1) when any metric present in both profiles \
             drifts by more than $(docv) percent.  Wall-clock and \
             metrics present on only one side are reported but never \
             gated.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two rescheck-run-profile/1 files metric by metric: \
          counters, gauge levels and high-water marks, histogram counts \
          and sums.  Exit codes: 0 within gate (or no gate), 1 gated \
          drift, 2 bad input.")
    Term.(const run $ a_pos $ b_pos $ json_arg $ gate_arg)

let profile_cmd =
  Cmd.group
    (Cmd.info "profile"
       ~doc:"Cross-run analytics over recorded run profiles.")
    [ profile_diff_cmd ]

let () =
  let info =
    Cmd.info "rescheck" ~version:"1.0.0"
      ~doc:
        "A CDCL SAT solver with resolution-trace generation and an \
         independent checker (Zhang & Malik, DATE 2003)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd; check_cmd; lint_cmd; analyze_cmd; explain_cmd;
            validate_cmd; core_cmd; trim_cmd; hint_cmd; simplify_cmd;
            drup_cmd; mc_cmd; gen_cmd; profile_cmd;
          ]))
