(** Combinational circuits as growable gate DAGs — the substrate for the
    EDA benchmark families (equivalence-checking miters, multiplier
    comparisons, pipelined-datapath verification).  Nodes are created
    through the smart constructors, which hash-cons structurally equal
    gates and fold constants, so equivalent subcircuits share nodes. *)

type t

(** A node handle, only meaningful with the circuit that created it. *)
type node

val create : unit -> t

(** [input c name] declares a primary input.  Names must be unique. *)
val input : t -> string -> node

val const : t -> bool -> node
val not_ : t -> node -> node
val and_ : t -> node -> node -> node
val or_ : t -> node -> node -> node
val xor_ : t -> node -> node -> node
val nand_ : t -> node -> node -> node
val nor_ : t -> node -> node -> node
val xnor_ : t -> node -> node -> node

(** [mux c ~sel ~if_true ~if_false] is a 2:1 multiplexer. *)
val mux : t -> sel:node -> if_true:node -> if_false:node -> node

(** n-ary balanced reductions; [big_and c []] is constant true,
    [big_or c []] false, [big_xor c []] false. *)
val big_and : t -> node list -> node
val big_or : t -> node list -> node
val big_xor : t -> node list -> node

val num_nodes : t -> int
val num_inputs : t -> int
val input_names : t -> string list

(** [inputs c] in declaration order. *)
val inputs : t -> node list

(** Internal view used by the simulator and the Tseitin encoder. *)
type gate =
  | G_input of string
  | G_const of bool
  | G_not of node
  | G_and of node * node
  | G_or of node * node
  | G_xor of node * node

val gate : t -> node -> gate

(** [node_id n] is a dense index in [0 .. num_nodes-1], topologically
    ordered (a gate's operands have smaller ids). *)
val node_id : node -> int

(** [iter_nodes f c] visits nodes in topological (creation) order. *)
val iter_nodes : (node -> gate -> unit) -> t -> unit
