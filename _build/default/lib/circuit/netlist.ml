type node = int

type gate =
  | G_input of string
  | G_const of bool
  | G_not of node
  | G_and of node * node
  | G_or of node * node
  | G_xor of node * node

type t = {
  gates : gate Sat.Vec.t;
  hash : (gate, node) Hashtbl.t;    (* structural hash-consing *)
  names : (string, unit) Hashtbl.t;
  input_order : string Sat.Vec.t;
  input_nodes : node Sat.Vec.t;
}

let create () = {
  gates = Sat.Vec.create ~dummy:(G_const false);
  hash = Hashtbl.create 256;
  names = Hashtbl.create 64;
  input_order = Sat.Vec.create ~dummy:"";
  input_nodes = Sat.Vec.create ~dummy:0;
}

let add c g =
  match Hashtbl.find_opt c.hash g with
  | Some n -> n
  | None ->
    let n = Sat.Vec.length c.gates in
    Sat.Vec.push c.gates g;
    Hashtbl.replace c.hash g n;
    n

let gate c n = Sat.Vec.get c.gates n

let input c name =
  if Hashtbl.mem c.names name then
    invalid_arg (Printf.sprintf "Circuit.input: duplicate name %S" name);
  Hashtbl.replace c.names name ();
  let n = Sat.Vec.length c.gates in
  Sat.Vec.push c.gates (G_input name);
  Sat.Vec.push c.input_order name;
  Sat.Vec.push c.input_nodes n;
  n

let const c b = add c (G_const b)

let as_const c n =
  match gate c n with
  | G_const b -> Some b
  | G_input _ | G_not _ | G_and _ | G_or _ | G_xor _ -> None

let not_ c a =
  match gate c a with
  | G_const b -> const c (not b)
  | G_not x -> x                               (* ¬¬x = x *)
  | G_input _ | G_and _ | G_or _ | G_xor _ -> add c (G_not a)

let order2 a b = if a <= b then (a, b) else (b, a)

let and_ c a b =
  let a, b = order2 a b in
  match as_const c a, as_const c b with
  | Some false, _ | _, Some false -> const c false
  | Some true, _ -> b
  | _, Some true -> a
  | None, None -> if a = b then a else add c (G_and (a, b))

let or_ c a b =
  let a, b = order2 a b in
  match as_const c a, as_const c b with
  | Some true, _ | _, Some true -> const c true
  | Some false, _ -> b
  | _, Some false -> a
  | None, None -> if a = b then a else add c (G_or (a, b))

let xor_ c a b =
  let a, b = order2 a b in
  match as_const c a, as_const c b with
  | Some x, Some y -> const c (x <> y)
  | Some false, None -> b
  | None, Some false -> a
  | Some true, None -> not_ c b
  | None, Some true -> not_ c a
  | None, None -> if a = b then const c false else add c (G_xor (a, b))

let nand_ c a b = not_ c (and_ c a b)
let nor_ c a b = not_ c (or_ c a b)
let xnor_ c a b = not_ c (xor_ c a b)

let mux c ~sel ~if_true ~if_false =
  or_ c (and_ c sel if_true) (and_ c (not_ c sel) if_false)

let rec reduce c op neutral = function
  | [] -> const c neutral
  | [ x ] -> x
  | xs ->
    (* balanced halving keeps the DAG shallow *)
    let rec split acc n = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> split (x :: acc) (n - 1) rest
    in
    let half = List.length xs / 2 in
    let left, right = split [] half xs in
    op c (reduce c op neutral left) (reduce c op neutral right)

let big_and c xs = reduce c and_ true xs
let big_or c xs = reduce c or_ false xs
let big_xor c xs = reduce c xor_ false xs

let num_nodes c = Sat.Vec.length c.gates
let num_inputs c = Sat.Vec.length c.input_order
let input_names c = Sat.Vec.to_list c.input_order
let inputs c = Sat.Vec.to_list c.input_nodes
let node_id n = n

let iter_nodes f c = Sat.Vec.iteri (fun i g -> f i g) c.gates
