let build c outs1 outs2 =
  if List.length outs1 <> List.length outs2 then
    invalid_arg "Miter.build: output width mismatch";
  let diffs = List.map2 (fun a b -> Netlist.xor_ c a b) outs1 outs2 in
  Netlist.big_or c diffs

let equivalence_cnf c outs1 outs2 =
  let m = build c outs1 outs2 in
  let enc = Tseitin.encode c ~constraints:[ (m, true) ] in
  enc.Tseitin.cnf
