(** Tseitin transformation: circuit → equisatisfiable CNF.  Every node
    gets a fresh SAT variable; each gate contributes the standard defining
    clauses; constraints pin chosen nodes to values.  This is how all the
    EDA benchmark families (CEC, BMC, microprocessor verification) turn
    into the CNF instances the paper's solver consumes. *)

type encoding = {
  cnf : Sat.Cnf.t;
  var_of_node : Netlist.node -> Sat.Lit.var;
      (** the SAT variable standing for a node's value *)
  var_of_input : string -> Sat.Lit.var;
      (** lookup by primary-input name.  @raise Not_found *)
}

(** [encode c ~constraints] encodes the whole circuit; each
    [(node, value)] constraint adds a unit clause forcing the node.  The
    CNF is satisfiable iff some input valuation realises all the
    constraints. *)
val encode : Netlist.t -> constraints:(Netlist.node * bool) list -> encoding

(** [model_to_inputs enc c a] reads back an input valuation from a SAT
    model. *)
val model_to_inputs :
  encoding -> Netlist.t -> Sat.Assignment.t -> (string * bool) list
