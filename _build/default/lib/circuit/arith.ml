type word = Netlist.node list

let word_input c prefix width =
  List.init width (fun i -> Netlist.input c (Printf.sprintf "%s_%d" prefix i))

let const_word c width n =
  List.init width (fun i -> Netlist.const c ((n lsr i) land 1 = 1))

let zero_extend c w width =
  let len = List.length w in
  if len >= width then w
  else w @ List.init (width - len) (fun _ -> Netlist.const c false)

let full_adder c a b cin =
  let s1 = Netlist.xor_ c a b in
  let sum = Netlist.xor_ c s1 cin in
  let carry = Netlist.or_ c (Netlist.and_ c a b) (Netlist.and_ c s1 cin) in
  (sum, carry)

let add_with_width c a b width keep_carry =
  let a = zero_extend c a width and b = zero_extend c b width in
  let rec loop acc cin = function
    | [], [] -> if keep_carry then List.rev (cin :: acc) else List.rev acc
    | x :: xs, y :: ys ->
      let sum, carry = full_adder c x y cin in
      loop (sum :: acc) carry (xs, ys)
    | _, _ -> assert false
  in
  loop [] (Netlist.const c false) (a, b)

let add c a b =
  let width = max (List.length a) (List.length b) in
  add_with_width c a b width true

let add_mod c a b width = add_with_width c a b width false

let sub_mod c a b width =
  let b = zero_extend c b width in
  let not_b = List.map (Netlist.not_ c) b in
  let one = const_word c width 1 in
  add_mod c (add_mod c (zero_extend c a width) not_b width) one width

let shift_left c w n =
  List.init n (fun _ -> Netlist.const c false) @ w

let partial_product c a bi = List.map (fun x -> Netlist.and_ c x bi) a

let mul_shift_add c a b =
  let width = List.length a + List.length b in
  let acc = ref (const_word c width 0) in
  List.iteri
    (fun i bi ->
      let pp = zero_extend c (shift_left c (partial_product c a bi) i) width in
      acc := add_mod c !acc pp width)
    b;
  !acc

let mul_msb_first c a b =
  let width = List.length a + List.length b in
  let acc = ref (const_word c width 0) in
  let rows = List.mapi (fun i bi -> (i, bi)) b in
  List.iter
    (fun (i, bi) ->
      let pp = zero_extend c (shift_left c (partial_product c a bi) i) width in
      acc := add_mod c pp !acc width)
    (List.rev rows);
  !acc

let map2_extended c op a b =
  let width = max (List.length a) (List.length b) in
  List.map2 (op c) (zero_extend c a width) (zero_extend c b width)

let word_and c a b = map2_extended c Netlist.and_ a b
let word_or c a b = map2_extended c Netlist.or_ a b
let word_xor c a b = map2_extended c Netlist.xor_ a b

let mux_word c ~sel ~if_true ~if_false =
  if List.length if_true <> List.length if_false then
    invalid_arg "Arith.mux_word: width mismatch";
  List.map2
    (fun t f -> Netlist.mux c ~sel ~if_true:t ~if_false:f)
    if_true if_false

let equal c a b =
  let width = max (List.length a) (List.length b) in
  let bits =
    List.map2
      (fun x y -> Netlist.xnor_ c x y)
      (zero_extend c a width) (zero_extend c b width)
  in
  Netlist.big_and c bits

let alu c ~op ~a ~b ~width =
  let op0, op1 =
    match op with
    | [ o0; o1 ] -> (o0, o1)
    | _ -> invalid_arg "Arith.alu: opcode must be 2 bits"
  in
  let a = zero_extend c a width and b = zero_extend c b width in
  let sum = add_mod c a b width in
  let diff = sub_mod c a b width in
  let conj = word_and c a b in
  let xo = word_xor c a b in
  (* op1 selects between {arith, logic}; op0 within each group *)
  let arith = mux_word c ~sel:op0 ~if_true:diff ~if_false:sum in
  let logic = mux_word c ~sel:op0 ~if_true:xo ~if_false:conj in
  mux_word c ~sel:op1 ~if_true:logic ~if_false:arith
