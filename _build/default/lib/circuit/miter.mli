(** Miter construction for combinational equivalence checking: XOR the
    corresponding outputs of two implementations sharing the same inputs,
    OR the differences, and ask SAT whether the difference can be 1.
    UNSAT ⇔ equivalent — the c5315/c7552-style workloads of the paper's
    Table 1 and the motivating EDA application from its introduction. *)

(** [build c outs1 outs2] is the difference node.
    @raise Invalid_argument on width mismatch. *)
val build : Netlist.t -> Netlist.node list -> Netlist.node list -> Netlist.node

(** [equivalence_cnf c outs1 outs2] encodes the circuit with the miter
    forced to 1: unsatisfiable iff the two output lists are equivalent. *)
val equivalence_cnf :
  Netlist.t -> Netlist.node list -> Netlist.node list -> Sat.Cnf.t
