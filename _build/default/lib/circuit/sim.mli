(** Reference circuit simulator — the oracle the test suite uses to verify
    that the Tseitin encoding and the arithmetic builders are faithful. *)

(** [eval c ~inputs nodes] evaluates [nodes] under the input valuation
    given by association list [inputs] (input name → value).
    @raise Invalid_argument if an input is missing or unknown. *)
val eval :
  Netlist.t ->
  inputs:(string * bool) list ->
  Netlist.node list ->
  bool list

(** [eval1 c ~inputs node] evaluates a single node. *)
val eval1 : Netlist.t -> inputs:(string * bool) list -> Netlist.node -> bool
