(** Word-level arithmetic builders.  A [word] is a little-endian list of
    nodes (LSB first).  These feed the multiplier-equivalence family (the
    paper's `longmult` analogue: XOR-rich adder trees) and the pipelined
    ALU verification family. *)

type word = Netlist.node list

(** [word_input c prefix width] declares inputs [prefix_0 .. prefix_{w-1}]. *)
val word_input : Netlist.t -> string -> int -> word

(** [const_word c width n] encodes the low [width] bits of [n]. *)
val const_word : Netlist.t -> int -> int -> word

(** [zero_extend c w width] pads with constant-false bits to [width]. *)
val zero_extend : Netlist.t -> word -> int -> word

(** [add c a b] is a ripple-carry sum, one bit wider than the longer
    operand. *)
val add : Netlist.t -> word -> word -> word

(** [add_mod c a b width] is addition truncated to [width] bits. *)
val add_mod : Netlist.t -> word -> word -> int -> word

(** [sub_mod c a b width] is two's-complement subtraction mod 2^width. *)
val sub_mod : Netlist.t -> word -> word -> int -> word

(** [mul_shift_add c a b] multiplies by accumulating shifted partial
    products LSB-first (the schoolbook "shift-add" multiplier); result
    width is [|a| + |b|]. *)
val mul_shift_add : Netlist.t -> word -> word -> word

(** [mul_msb_first c a b] computes the same product with the partial
    products accumulated in the opposite order — structurally different
    gates, identical function.  The miter of the two is the `longmult`-
    style XOR-heavy unsatisfiable instance. *)
val mul_msb_first : Netlist.t -> word -> word -> word

(** bitwise word operators (operands are zero-extended to equal width) *)
val word_and : Netlist.t -> word -> word -> word
val word_or : Netlist.t -> word -> word -> word
val word_xor : Netlist.t -> word -> word -> word

(** [mux_word c ~sel ~if_true ~if_false] selects between equal-width
    words. *)
val mux_word : Netlist.t -> sel:Netlist.node -> if_true:word -> if_false:word -> word

(** [equal c a b] is a single node: words are equal (shorter operand
    zero-extended). *)
val equal : Netlist.t -> word -> word -> Netlist.node

(** A tiny combinational ALU: opcode 2 bits (00 add, 01 sub, 10 and,
    11 xor), [width]-bit result — the datapath replicated by the pipeline
    verification family. *)
val alu : Netlist.t -> op:word -> a:word -> b:word -> width:int -> word
