module N = Netlist

type t = {
  name : string;
  state_width : int;
  init : bool list;
  step :
    N.t -> frame:int -> state:N.node list -> N.node list;
  bad : N.t -> N.node list -> N.node;
}

let exactly_one c bits =
  let at_least = N.big_or c bits in
  let pairs = ref [] in
  List.iteri
    (fun i a ->
      List.iteri (fun j b -> if j > i then pairs := N.and_ c a b :: !pairs) bits)
    bits;
  N.and_ c at_least (N.not_ c (N.big_or c !pairs))

let rotate c ~stall state =
  let arr = Array.of_list state in
  let n = Array.length arr in
  List.init n (fun i ->
      let from = arr.((i - 1 + n) mod n) in
      N.mux c ~sel:stall ~if_true:arr.(i) ~if_false:from)

let token_ring ~nodes =
  if nodes < 2 then invalid_arg "Transition.token_ring";
  {
    name = Printf.sprintf "token_ring_%d" nodes;
    state_width = nodes;
    init = List.init nodes (fun i -> i = 0);
    step =
      (fun c ~frame ~state ->
        let stall = N.input c (Printf.sprintf "stall%d" frame) in
        rotate c ~stall state);
    bad = (fun c state -> N.not_ c (exactly_one c state));
  }

let token_ring_buggy ~nodes =
  if nodes < 2 then invalid_arg "Transition.token_ring_buggy";
  {
    name = Printf.sprintf "token_ring_buggy_%d" nodes;
    state_width = nodes;
    init = List.init nodes (fun i -> i = 0);
    step =
      (fun c ~frame ~state ->
        let stall = N.input c (Printf.sprintf "stall%d" frame) in
        let glitch = N.input c (Printf.sprintf "glitch%d" frame) in
        let rotated = rotate c ~stall state in
        (* fault: under [glitch] the token both moves and stays *)
        let arr = Array.of_list state in
        List.mapi
          (fun i r ->
            N.mux c ~sel:glitch ~if_true:(N.or_ c r arr.(i)) ~if_false:r)
          rotated);
    bad = (fun c state -> N.not_ c (exactly_one c state));
  }

let saturating_counter ~width ~limit ~target =
  if width < 1 then invalid_arg "Transition.saturating_counter";
  if limit < 0 || (width < 62 && limit >= 1 lsl width) then
    invalid_arg "Transition.saturating_counter: limit does not fit";
  if target < 0 || (width < 62 && target >= 1 lsl width) then
    invalid_arg "Transition.saturating_counter: target does not fit";
  {
    name = Printf.sprintf "sat_counter_w%d_l%d_t%d" width limit target;
    state_width = width;
    init = List.init width (fun _ -> false);
    step =
      (fun c ~frame ~state ->
        let inc = N.input c (Printf.sprintf "inc%d" frame) in
        let at_limit =
          Arith.equal c state (Arith.const_word c width limit)
        in
        let sel = N.and_ c inc (N.not_ c at_limit) in
        let incremented =
          Arith.add_mod c state (Arith.const_word c width 1)
            width
        in
        Arith.mux_word c ~sel ~if_true:incremented ~if_false:state);
    bad =
      (fun c state ->
        Arith.equal c state (Arith.const_word c width target));
  }

let mutex () =
  (* state = [c0; c1; turn] *)
  {
    name = "mutex";
    state_width = 3;
    init = [ false; false; false ];
    step =
      (fun c ~frame ~state ->
        match state with
        | [ c0; c1; turn ] ->
          let req0 = N.input c (Printf.sprintf "req0_%d" frame) in
          let req1 = N.input c (Printf.sprintf "req1_%d" frame) in
          let enter0 = N.and_ c (N.not_ c c1) (N.not_ c turn) in
          let enter1 = N.and_ c (N.not_ c c0) turn in
          let c0' = N.and_ c req0 (N.or_ c c0 enter0) in
          let c1' = N.and_ c req1 (N.or_ c c1 enter1) in
          let turn' = N.not_ c turn in
          [ c0'; c1'; turn' ]
        | _ -> invalid_arg "mutex: bad state width");
    bad =
      (fun c state ->
        match state with
        | [ c0; c1; _ ] -> N.and_ c c0 c1
        | _ -> invalid_arg "mutex: bad state width");
  }
