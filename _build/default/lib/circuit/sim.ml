let eval c ~inputs nodes =
  let given = Hashtbl.create 16 in
  List.iter
    (fun (name, b) ->
      if not (List.mem name (Netlist.input_names c)) then
        invalid_arg (Printf.sprintf "Sim.eval: unknown input %S" name);
      Hashtbl.replace given name b)
    inputs;
  let values = Array.make (Netlist.num_nodes c) false in
  Netlist.iter_nodes
    (fun n g ->
      let v =
        match g with
        | Netlist.G_input name -> (
          match Hashtbl.find_opt given name with
          | Some b -> b
          | None ->
            invalid_arg (Printf.sprintf "Sim.eval: input %S not supplied" name))
        | Netlist.G_const b -> b
        | Netlist.G_not a -> not values.(Netlist.node_id a)
        | Netlist.G_and (a, b) ->
          values.(Netlist.node_id a) && values.(Netlist.node_id b)
        | Netlist.G_or (a, b) ->
          values.(Netlist.node_id a) || values.(Netlist.node_id b)
        | Netlist.G_xor (a, b) ->
          values.(Netlist.node_id a) <> values.(Netlist.node_id b)
      in
      values.(Netlist.node_id n) <- v)
    c;
  List.map (fun n -> values.(Netlist.node_id n)) nodes

let eval1 c ~inputs node =
  match eval c ~inputs [ node ] with
  | [ b ] -> b
  | _ -> assert false
