type encoding = {
  cnf : Sat.Cnf.t;
  var_of_node : Netlist.node -> Sat.Lit.var;
  var_of_input : string -> Sat.Lit.var;
}

let encode c ~constraints =
  let nvars = Netlist.num_nodes c in
  let f = Sat.Cnf.create nvars in
  let var n = Netlist.node_id n + 1 in
  let add lits = ignore (Sat.Cnf.add_clause f (Array.of_list lits)) in
  let input_vars = Hashtbl.create 16 in
  Netlist.iter_nodes
    (fun n g ->
      let y = var n in
      match g with
      | Netlist.G_input name -> Hashtbl.replace input_vars name y
      | Netlist.G_const b ->
        add [ (if b then Sat.Lit.pos y else Sat.Lit.neg y) ]
      | Netlist.G_not a ->
        let a = var a in
        add [ Sat.Lit.pos y; Sat.Lit.pos a ];
        add [ Sat.Lit.neg y; Sat.Lit.neg a ]
      | Netlist.G_and (a, b) ->
        let a = var a and b = var b in
        add [ Sat.Lit.neg y; Sat.Lit.pos a ];
        add [ Sat.Lit.neg y; Sat.Lit.pos b ];
        add [ Sat.Lit.pos y; Sat.Lit.neg a; Sat.Lit.neg b ]
      | Netlist.G_or (a, b) ->
        let a = var a and b = var b in
        add [ Sat.Lit.pos y; Sat.Lit.neg a ];
        add [ Sat.Lit.pos y; Sat.Lit.neg b ];
        add [ Sat.Lit.neg y; Sat.Lit.pos a; Sat.Lit.pos b ]
      | Netlist.G_xor (a, b) ->
        let a = var a and b = var b in
        add [ Sat.Lit.neg y; Sat.Lit.pos a; Sat.Lit.pos b ];
        add [ Sat.Lit.neg y; Sat.Lit.neg a; Sat.Lit.neg b ];
        add [ Sat.Lit.pos y; Sat.Lit.pos a; Sat.Lit.neg b ];
        add [ Sat.Lit.pos y; Sat.Lit.neg a; Sat.Lit.pos b ])
    c;
  List.iter
    (fun (n, b) ->
      let y = var n in
      add [ (if b then Sat.Lit.pos y else Sat.Lit.neg y) ])
    constraints;
  {
    cnf = f;
    var_of_node = var;
    var_of_input =
      (fun name ->
        match Hashtbl.find_opt input_vars name with
        | Some v -> v
        | None -> raise Not_found);
  }

let model_to_inputs enc c a =
  List.map
    (fun name ->
      let v = enc.var_of_input name in
      (name, Sat.Assignment.value a v = Sat.Assignment.True))
    (Netlist.input_names c)
