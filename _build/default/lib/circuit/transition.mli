(** Sequential transition systems for the model-checking workflows: a
    symbolic state vector, an initial valuation, a one-step next-state
    builder (instantiated per unrolling frame with fresh primary inputs),
    and a safety property given as its violation predicate.

    These are the systems behind the BMC benchmark family, packaged so
    the BMC engine and the interpolation-based unbounded checker
    (the BMC engine in the pipeline library) can unroll them. *)

type t = {
  name : string;
  state_width : int;
  init : bool list;
      (** initial state values, length [state_width] *)
  step :
    Netlist.t ->
    frame:int ->
    state:Netlist.node list ->
    Netlist.node list;
      (** builds the next state inside the given netlist; [frame] salts
          the names of any fresh primary inputs *)
  bad :
    Netlist.t ->
    Netlist.node list ->
    Netlist.node;
      (** the property violation predicate over a state *)
}

(** A rotating one-hot token ring with a stall input; safe: the one-hot
    invariant is inductive. *)
val token_ring : nodes:int -> t

(** The same ring with a fault: when the per-frame [glitch] input fires,
    the token duplicates.  Unsafe: a counterexample exists at depth 1. *)
val token_ring_buggy : nodes:int -> t

(** A [width]-bit saturating counter with an increment input; property:
    the counter never reaches [target].  Safe iff [target] exceeds
    [limit], the saturation bound. *)
val saturating_counter : width:int -> limit:int -> target:int -> t

(** Two-process mutual exclusion with a turn-taking arbiter; safe: both
    critical sections never coincide. *)
val mutex : unit -> t
