lib/circuit/sim.ml: Array Hashtbl List Netlist Printf
