lib/circuit/tseitin.mli: Netlist Sat
