lib/circuit/miter.ml: List Netlist Tseitin
