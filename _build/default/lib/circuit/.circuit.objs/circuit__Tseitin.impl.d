lib/circuit/tseitin.ml: Array Hashtbl List Netlist Sat
