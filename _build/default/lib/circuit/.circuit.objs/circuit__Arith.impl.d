lib/circuit/arith.ml: List Netlist Printf
