lib/circuit/miter.mli: Netlist Sat
