lib/circuit/netlist.mli:
