lib/circuit/transition.ml: Arith Array List Netlist Printf
