lib/circuit/arith.mli: Netlist
