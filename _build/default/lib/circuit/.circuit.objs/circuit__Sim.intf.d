lib/circuit/sim.mli: Netlist
