(** Streaming trace reader.  The breadth-first checker (§3.3) must be able
    to scan the trace several times without holding it in memory, so a
    reader is created from a re-readable {!source} and exposes a
    fold-style pass.  Format (ASCII vs binary) is auto-detected from the
    magic bytes. *)

exception Parse_error of string

type source =
  | From_string of string  (** in-memory trace, e.g. from {!Writer.contents} *)
  | From_file of string    (** trace file on disk *)

(** [iter source f] streams every event of the trace through [f], in file
    order.  @raise Parse_error on malformed input. *)
val iter : source -> (Event.t -> unit) -> unit

(** [fold source f init] folds [f] over the events in file order. *)
val fold : source -> ('a -> Event.t -> 'a) -> 'a -> 'a

(** [to_list source] materialises all events (used by tests and the
    depth-first checker, which reads the whole trace into memory —
    the paper's §3.2 caveat). *)
val to_list : source -> Event.t list

(** [size_bytes source] is the byte length of the serialised trace. *)
val size_bytes : source -> int
