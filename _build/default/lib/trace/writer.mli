(** Trace serialisation.  Two on-disk formats, as discussed in the paper's
    §4: a human-readable ASCII format (the default, large) and a compact
    binary format using LEB128 varints (the "2-3x compaction" the paper
    predicts, which also speeds up checking since parsing dominates).

    ASCII grammar, one event per line:
    {v
    t <nvars> <num_original>
    CL <id> <src_1> ... <src_k>
    VAR <var> <0|1> <ante_id>
    CONF <id>
    v}

    Binary format: magic "ZKB1", then per event a tag byte
    (0 header, 1 learned, 2 level0, 3 final-conflict) followed by LEB128
    unsigned varints; the learned-source list is length-prefixed; the
    level-0 value is folded into the variable varint's low bit. *)

type format = Ascii | Binary

(** A writer appends events to an internal buffer.  [bytes_written] lets
    the harness report trace sizes (Table 2, column "Trace Size"). *)
type t

val create : format -> t
val format : t -> format
val emit : t -> Event.t -> unit
val bytes_written : t -> int

(** [contents w] is the serialised trace so far. *)
val contents : t -> string

(** [to_file w path] writes the serialised trace to disk. *)
val to_file : t -> string -> unit
