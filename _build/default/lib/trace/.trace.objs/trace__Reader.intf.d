lib/trace/reader.mli: Event
