lib/trace/event.mli: Format Sat
