lib/trace/event.ml: Array Format Sat
