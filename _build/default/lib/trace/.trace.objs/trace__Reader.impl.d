lib/trace/reader.ml: Array Char Event List Printf String
