lib/trace/writer.ml: Array Buffer Bytes Char Event
