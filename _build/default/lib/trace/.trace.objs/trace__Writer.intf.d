lib/trace/writer.mli: Event
