type format = Ascii | Binary

type t = { fmt : format; buf : Buffer.t }

let binary_magic = "ZKB1"

let create fmt =
  let buf = Buffer.create 65536 in
  if fmt = Binary then Buffer.add_string buf binary_magic;
  { fmt; buf }

let format w = w.fmt

let add_varint buf n =
  assert (n >= 0);
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      loop (n lsr 7)
    end
  in
  loop n

(* Trace emission sits on the solver's hot path (Table 1 measures its
   overhead), so integers are rendered by hand instead of through
   Printf's interpreter. *)
let add_uint buf n =
  assert (n >= 0);
  if n < 10 then Buffer.add_char buf (Char.chr (Char.code '0' + n))
  else begin
    let digits = Bytes.create 19 in
    let rec fill i n =
      if n = 0 then i
      else begin
        Bytes.set digits i (Char.chr (Char.code '0' + (n mod 10)));
        fill (i + 1) (n / 10)
      end
    in
    let len = fill 0 n in
    for i = len - 1 downto 0 do
      Buffer.add_char buf (Bytes.get digits i)
    done
  end

let emit_ascii buf (e : Event.t) =
  (match e with
   | Header h ->
     Buffer.add_string buf "t ";
     add_uint buf h.nvars;
     Buffer.add_char buf ' ';
     add_uint buf h.num_original
   | Learned l ->
     Buffer.add_string buf "CL ";
     add_uint buf l.id;
     Array.iter
       (fun s ->
         Buffer.add_char buf ' ';
         add_uint buf s)
       l.sources
   | Level0 v ->
     Buffer.add_string buf "VAR ";
     add_uint buf v.var;
     Buffer.add_string buf (if v.value then " 1 " else " 0 ");
     add_uint buf v.ante
   | Final_conflict id ->
     Buffer.add_string buf "CONF ";
     add_uint buf id);
  Buffer.add_char buf '\n'

let emit_binary buf (e : Event.t) =
  match e with
  | Header h ->
    Buffer.add_char buf '\000';
    add_varint buf h.nvars;
    add_varint buf h.num_original
  | Learned l ->
    Buffer.add_char buf '\001';
    add_varint buf l.id;
    add_varint buf (Array.length l.sources);
    Array.iter (add_varint buf) l.sources
  | Level0 v ->
    Buffer.add_char buf '\002';
    add_varint buf ((v.var * 2) + if v.value then 1 else 0);
    add_varint buf v.ante
  | Final_conflict id ->
    Buffer.add_char buf '\003';
    add_varint buf id

let emit w e =
  match w.fmt with
  | Ascii -> emit_ascii w.buf e
  | Binary -> emit_binary w.buf e

let bytes_written w = Buffer.length w.buf

let contents w = Buffer.contents w.buf

let to_file w path =
  let oc = open_out_bin path in
  Buffer.output_buffer oc w.buf;
  close_out oc
