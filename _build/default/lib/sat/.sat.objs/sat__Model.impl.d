lib/sat/model.ml: Array Assignment Cnf Lit
