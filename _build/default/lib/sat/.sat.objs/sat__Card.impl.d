lib/sat/card.ml: Array Cnf List Lit
