lib/sat/model.mli: Assignment Clause Cnf Lit
