lib/sat/assignment.ml: Bytes List Lit
