lib/sat/cnf.ml: Array Clause Format Int List Lit Printf Vec
