lib/sat/card.mli: Cnf Lit
