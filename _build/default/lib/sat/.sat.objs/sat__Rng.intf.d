lib/sat/rng.mli:
