lib/sat/rng.ml: Array Int64
