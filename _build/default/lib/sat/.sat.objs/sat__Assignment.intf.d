lib/sat/assignment.mli: Lit
