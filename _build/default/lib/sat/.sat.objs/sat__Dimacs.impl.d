lib/sat/dimacs.ml: Array Buffer Clause Cnf List Lit Printf String
