lib/sat/vec.mli:
