(** Deterministic pseudo-random number generator (splitmix64-based) so every
    generated benchmark instance and randomised solver decision is
    reproducible from a seed, independent of the OCaml stdlib [Random]
    state. *)

type t

val create : int -> t

(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument when
    [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [pick t arr] is a uniformly chosen element of [arr]. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives an independent generator, e.g. one per benchmark
    family. *)
val split : t -> t
