(** Resizable arrays with amortised O(1) push, used pervasively by the
    solver and checkers in place of linked lists.  A [Vec.t] owns its
    backing array; [dummy] fills unused slots so the GC never sees stale
    pointers. *)

type 'a t

(** [create ~dummy] is an empty vector whose spare capacity is filled with
    [dummy]. *)
val create : dummy:'a -> 'a t

(** [make n x ~dummy] is a vector of [n] copies of [x]. *)
val make : int -> 'a -> dummy:'a -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [get v i] is the [i]-th element.  @raise Invalid_argument when out of
    bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : 'a t -> 'a

(** [last v] is the last element without removing it. *)
val last : 'a t -> 'a

(** [shrink v n] truncates [v] to its first [n] elements. *)
val shrink : 'a t -> int -> unit

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> dummy:'a -> 'a t

(** [grow_to v n x] extends [v] with copies of [x] until its length is at
    least [n]. *)
val grow_to : 'a t -> int -> 'a -> unit

(** [filter_in_place p v] keeps only elements satisfying [p], preserving
    order. *)
val filter_in_place : ('a -> bool) -> 'a t -> unit
