type t = { nvars : int; clauses : Clause.t Vec.t }

let create nvars =
  if nvars < 0 then invalid_arg "Cnf.create: negative variable count";
  { nvars; clauses = Vec.create ~dummy:[||] }

let check_clause f c =
  Array.iter
    (fun l ->
      let v = Lit.var l in
      if v < 1 || v > f.nvars then
        invalid_arg
          (Printf.sprintf "Cnf: variable %d outside 1..%d" v f.nvars))
    c

let add_clause f c =
  check_clause f c;
  Vec.push f.clauses c;
  Vec.length f.clauses - 1

let of_clauses nvars clauses =
  let f = create nvars in
  List.iter (fun c -> ignore (add_clause f c)) clauses;
  f

let nvars f = f.nvars
let nclauses f = Vec.length f.clauses
let clause f i = Vec.get f.clauses i
let clauses f = Vec.to_array f.clauses
let iter_clauses g f = Vec.iteri g f.clauses

let num_distinct_vars f =
  let seen = Array.make (f.nvars + 1) false in
  Vec.iter (fun c -> Array.iter (fun l -> seen.(Lit.var l) <- true) c) f.clauses;
  let n = ref 0 in
  for v = 1 to f.nvars do
    if seen.(v) then incr n
  done;
  !n

let num_literals f = Vec.fold (fun acc c -> acc + Array.length c) 0 f.clauses

let restrict_to f indices =
  let idx = List.sort_uniq Int.compare indices in
  let g = create f.nvars in
  List.iter
    (fun i ->
      if i < 0 || i >= nclauses f then invalid_arg "Cnf.restrict_to";
      ignore (add_clause g (clause f i)))
    idx;
  g

let copy f =
  let g = create f.nvars in
  Vec.iter (fun c -> ignore (add_clause g c)) f.clauses;
  g

let pp fmt f =
  Format.fprintf fmt "@[<v>p cnf %d %d" f.nvars (nclauses f);
  Vec.iter (fun c -> Format.fprintf fmt "@,%s" (Clause.to_string c)) f.clauses;
  Format.fprintf fmt "@]"
