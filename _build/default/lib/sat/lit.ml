type var = int
type t = int

let undef = 0

let make v sign =
  if v < 1 then invalid_arg "Lit.make: variable must be >= 1";
  (v * 2) + if sign then 1 else 0

let pos v = make v false
let neg v = make v true
let var l = l / 2
let is_neg l = l land 1 = 1
let negate l = l lxor 1

let of_int d =
  if d = 0 then invalid_arg "Lit.of_int: 0 is not a literal";
  if d > 0 then pos d else neg (-d)

let to_int l = if is_neg l then -(var l) else var l

let to_string l = string_of_int (to_int l)
let pp fmt l = Format.pp_print_int fmt (to_int l)
let compare = Int.compare
