exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Tokenize into ints, skipping 'c' comment lines and the '%' / '0' tail
   some old benchmark files carry. *)
let tokens_of_string s =
  let toks = ref [] in
  let lines = String.split_on_char '\n' s in
  let header = ref None in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; nc ] -> (
          match int_of_string_opt nv, int_of_string_opt nc with
          | Some nv, Some nc -> header := Some (nv, nc)
          | _ -> fail "bad header %S" line)
        | _ -> fail "bad header %S" line
      end
      else
        String.split_on_char ' ' line
        |> List.iter (fun w ->
               String.split_on_char '\t' w
               |> List.iter (fun w ->
                      if w <> "" then
                        match int_of_string_opt w with
                        | Some d -> toks := d :: !toks
                        | None -> fail "unexpected token %S" w)))
    lines;
  (!header, List.rev !toks)

let parse_string s =
  match tokens_of_string s with
  | None, _ -> fail "missing 'p cnf' header"
  | Some (nvars, nclauses), toks ->
    let f = Cnf.create nvars in
    let cur = ref [] in
    List.iter
      (fun d ->
        if d = 0 then begin
          ignore (Cnf.add_clause f (Clause.of_lits (List.rev !cur)));
          cur := []
        end
        else begin
          let v = abs d in
          if v > nvars then fail "variable %d exceeds declared %d" v nvars;
          cur := Lit.of_int d :: !cur
        end)
      toks;
    if !cur <> [] then fail "trailing literals without terminating 0";
    if Cnf.nclauses f <> nclauses then
      fail "header declares %d clauses, found %d" nclauses (Cnf.nclauses f);
    f

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  try parse_string s
  with Parse_error m -> fail "%s: %s" path m

let to_string ?comment f =
  let buf = Buffer.create (16 * Cnf.nclauses f) in
  (match comment with
   | None -> ()
   | Some c ->
     String.split_on_char '\n' c
     |> List.iter (fun line -> Buffer.add_string buf ("c " ^ line ^ "\n")));
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Cnf.nvars f) (Cnf.nclauses f));
  Cnf.iter_clauses
    (fun _ c ->
      Array.iter
        (fun l ->
          Buffer.add_string buf (Lit.to_string l);
          Buffer.add_char buf ' ')
        c;
      Buffer.add_string buf "0\n")
    f;
  Buffer.contents buf

let write_file ?comment path f =
  let oc = open_out_bin path in
  output_string oc (to_string ?comment f);
  close_out oc
