type clause_status =
  | Satisfied
  | Conflicting
  | Unit of Lit.t
  | Unresolved

let clause_status a c =
  let unassigned = ref Lit.undef in
  let n_unassigned = ref 0 in
  let sat = ref false in
  Array.iter
    (fun l ->
      match Assignment.lit_value a l with
      | Assignment.True -> sat := true
      | Assignment.False -> ()
      | Assignment.Unassigned ->
        incr n_unassigned;
        unassigned := l)
    c;
  if !sat then Satisfied
  else
    match !n_unassigned with
    | 0 -> Conflicting
    | 1 -> Unit !unassigned
    | _ -> Unresolved

let clause_satisfied a c =
  Array.exists (fun l -> Assignment.lit_value a l = Assignment.True) c

let first_falsified a f =
  let n = Cnf.nclauses f in
  let rec loop i =
    if i >= n then None
    else if clause_satisfied a (Cnf.clause f i) then loop (i + 1)
    else Some i
  in
  loop 0

let satisfies a f = first_falsified a f = None
