type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = [||]; len = 0; dummy }

let make n x ~dummy = { data = Array.make (max n 1) x; len = n; dummy }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i = check v i; v.data.(i)

let set v i x = check v i; v.data.(i) <- x

let ensure v n =
  if n > Array.length v.data then begin
    let cap = max 16 (max n (2 * Array.length v.data)) in
    let data = Array.make cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.len - 1)

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  for i = n to v.len - 1 do
    v.data.(i) <- v.dummy
  done;
  v.len <- n

let clear v = shrink v 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_list xs ~dummy =
  let v = create ~dummy in
  List.iter (push v) xs;
  v

let grow_to v n x =
  ensure v n;
  while v.len < n do
    v.data.(v.len) <- x;
    v.len <- v.len + 1
  done

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = v.data.(i) in
    if p x then begin
      v.data.(!j) <- x;
      incr j
    end
  done;
  shrink v !j
