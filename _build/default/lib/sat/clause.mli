(** Clauses as immutable literal arrays, plus the resolution operation the
    whole checker is built on (paper §2.1). *)

type t = Lit.t array

val of_lits : Lit.t list -> t
val of_ints : int list -> t
val to_ints : t -> int list
val size : t -> int
val is_empty : t -> bool

(** [mem l c] tests literal membership (linear scan; clauses are short). *)
val mem : Lit.t -> t -> bool

(** [normalize c] sorts, removes duplicate literals, and returns [None] if
    [c] is a tautology (contains both phases of some variable). *)
val normalize : t -> t option

(** [is_tautology c] holds when [c] contains a variable in both phases. *)
val is_tautology : t -> bool

(** [clashing_vars c1 c2] lists the variables appearing with opposite
    phases in [c1] and [c2]; resolution is defined only when this is a
    singleton. *)
val clashing_vars : t -> t -> Lit.var list

(** [resolve c1 c2 v] is the resolvent of [c1] and [c2] on pivot [v]: the
    union of their literals minus both phases of [v], duplicates removed.
    This is exactly the paper's [resolve(cl1, cl2, var)].
    @raise Invalid_argument if [v] does not appear in opposite phases, or
    if some other variable also clashes (the resolvent would be a
    tautology, which the paper's framework never produces). *)
val resolve : t -> t -> Lit.var -> t

(** [equal_modulo_order c1 c2] compares clauses as literal sets. *)
val equal_modulo_order : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
