(** Partial variable assignments, shared by the model verifier (the easy
    half of the paper's validation story: SAT answers are checked in
    linear time, §1) and by the checkers when replaying level-0
    implications. *)

type value = True | False | Unassigned

type t

val create : int -> t
val nvars : t -> int

val value : t -> Lit.var -> value
val set : t -> Lit.var -> bool -> unit
val unset : t -> Lit.var -> unit
val is_assigned : t -> Lit.var -> bool

(** [lit_value a l] is the truth value of literal [l] under [a]. *)
val lit_value : t -> Lit.t -> value

(** [of_bool_list bs] assigns variable [i+1] the [i]-th boolean. *)
val of_bool_list : bool list -> t

(** [to_list a] lists [(var, bool)] for every assigned variable. *)
val to_list : t -> (Lit.var * bool) list

val copy : t -> t
