type value = True | False | Unassigned

(* one byte per variable: 0 unassigned, 1 true, 2 false *)
type t = Bytes.t

let create nvars = Bytes.make (nvars + 1) '\000'

let nvars a = Bytes.length a - 1

let check a v =
  if v < 1 || v >= Bytes.length a then invalid_arg "Assignment: bad variable"

let value a v =
  check a v;
  match Bytes.get a v with
  | '\001' -> True
  | '\002' -> False
  | _ -> Unassigned

let set a v b =
  check a v;
  Bytes.set a v (if b then '\001' else '\002')

let unset a v =
  check a v;
  Bytes.set a v '\000'

let is_assigned a v = value a v <> Unassigned

let lit_value a l =
  match value a (Lit.var l), Lit.is_neg l with
  | True, false | False, true -> True
  | True, true | False, false -> False
  | Unassigned, _ -> Unassigned

let of_bool_list bs =
  let a = create (List.length bs) in
  List.iteri (fun i b -> set a (i + 1) b) bs;
  a

let to_list a =
  let out = ref [] in
  for v = nvars a downto 1 do
    match value a v with
    | True -> out := (v, true) :: !out
    | False -> out := (v, false) :: !out
    | Unassigned -> ()
  done;
  !out

let copy = Bytes.copy
