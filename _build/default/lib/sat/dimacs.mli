(** DIMACS CNF reader/writer — the interchange format the paper's
    benchmarks are distributed in.  The parser is tolerant the way real
    solvers are: comments anywhere, clauses spanning lines, and a header
    whose counts are taken as declarations (the clause count is checked,
    the variable count may over-declare, cf. Table 3's remark). *)

exception Parse_error of string

(** [parse_string s] reads a DIMACS document.
    @raise Parse_error on malformed input, including a clause count that
    disagrees with the header. *)
val parse_string : string -> Cnf.t

(** [parse_file path] reads a DIMACS file from disk. *)
val parse_file : string -> Cnf.t

(** [to_string ?comment f] renders [f] as a DIMACS document, one clause per
    line, with an optional leading [c] comment. *)
val to_string : ?comment:string -> Cnf.t -> string

val write_file : ?comment:string -> string -> Cnf.t -> unit
