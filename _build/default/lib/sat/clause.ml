type t = Lit.t array

let of_lits lits = Array.of_list lits
let of_ints ds = Array.of_list (List.map Lit.of_int ds)
let to_ints c = Array.to_list (Array.map Lit.to_int c)
let size = Array.length
let is_empty c = Array.length c = 0

let mem l c = Array.exists (fun x -> x = l) c

let sorted_dedup c =
  let c = Array.copy c in
  Array.sort Lit.compare c;
  let n = Array.length c in
  if n = 0 then c
  else begin
    let out = ref [ c.(0) ] in
    for i = 1 to n - 1 do
      match !out with
      | last :: _ when last = c.(i) -> ()
      | _ -> out := c.(i) :: !out
    done;
    Array.of_list (List.rev !out)
  end

let is_tautology c =
  let d = sorted_dedup c in
  (* after sorting by packed int, the two phases of a variable are
     adjacent *)
  let rec loop i =
    i + 1 < Array.length d
    && (Lit.var d.(i) = Lit.var d.(i + 1) || loop (i + 1))
  in
  loop 0

let normalize c =
  let d = sorted_dedup c in
  if is_tautology d then None else Some d

let clashing_vars c1 c2 =
  let clash = ref [] in
  Array.iter
    (fun l1 -> if mem (Lit.negate l1) c2 then clash := Lit.var l1 :: !clash)
    c1;
  List.sort_uniq Int.compare !clash

let resolve c1 c2 v =
  (match clashing_vars c1 c2 with
   | [ u ] when u = v -> ()
   | [ _ ] -> invalid_arg "Clause.resolve: pivot does not clash"
   | [] -> invalid_arg "Clause.resolve: no clashing variable"
   | _ :: _ :: _ -> invalid_arg "Clause.resolve: more than one clashing variable");
  let keep l = Lit.var l <> v in
  let lits =
    Array.to_list (Array.of_seq (Seq.filter keep (Array.to_seq c1)))
    @ Array.to_list (Array.of_seq (Seq.filter keep (Array.to_seq c2)))
  in
  sorted_dedup (Array.of_list lits)

let equal_modulo_order c1 c2 = sorted_dedup c1 = sorted_dedup c2

let to_string c =
  "(" ^ String.concat " + " (List.map Lit.to_string (Array.to_list c)) ^ ")"

let pp fmt c = Format.pp_print_string fmt (to_string c)
