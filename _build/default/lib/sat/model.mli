(** Independent verification of SAT answers.  When the solver claims
    satisfiability it hands back a model; checking it is linear in the
    formula size (paper §1).  This module is that checker, plus clause
    status queries used throughout the test suite. *)

type clause_status =
  | Satisfied          (** some literal true *)
  | Conflicting        (** all literals false *)
  | Unit of Lit.t      (** exactly one unassigned literal, the rest false *)
  | Unresolved         (** at least two unassigned literals, none true *)

val clause_status : Assignment.t -> Clause.t -> clause_status

(** [satisfies a f] holds when every clause of [f] has a true literal under
    [a].  Unassigned variables are not defaulted: a clause with no true
    literal fails even if some literals are unassigned. *)
val satisfies : Assignment.t -> Cnf.t -> bool

(** [first_falsified a f] is the index of the first clause not satisfied by
    [a], used for error reporting. *)
val first_falsified : Assignment.t -> Cnf.t -> int option
