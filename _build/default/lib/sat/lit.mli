(** Literals and variables.

    A variable is a positive integer [1 .. nvars], as in DIMACS.  A literal
    packs a variable and a sign into one int: [lit = var * 2 + sign] where
    sign 0 is the positive phase and sign 1 the negated phase.  Literal 0/1
    (variable 0) is reserved as an invalid sentinel.  This is the encoding
    used by Chaff-family solvers: negation is one XOR, array indexing by
    literal is direct. *)

type var = int
type t = int

(** Sentinel distinct from every real literal. *)
val undef : t

(** [make v sign] is the literal for variable [v]; [sign = true] means
    negated.  @raise Invalid_argument when [v < 1]. *)
val make : var -> bool -> t

(** [pos v] / [neg v] are the two phases of variable [v]. *)
val pos : var -> t
val neg : var -> t

val var : t -> var

(** [is_neg l] is [true] on negated literals. *)
val is_neg : t -> bool

(** [negate l] flips the phase. *)
val negate : t -> t

(** [of_int d] converts a DIMACS signed integer ([3] ↦ x3, [-3] ↦ ¬x3).
    @raise Invalid_argument on [0]. *)
val of_int : int -> t

(** [to_int l] is the DIMACS signed integer for [l]. *)
val to_int : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Total order on literals (by the packed int). *)
val compare : t -> t -> int
