type fresh = unit -> Lit.var

let allocator ~first =
  let next = ref first in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  (fresh, fun () -> !next - first)

let add f lits = ignore (Cnf.add_clause f (Array.of_list lits))

let at_least_one f lits =
  if lits = [] then add f []   (* vacuously unsatisfiable *)
  else add f lits

let at_most_one_pairwise f lits =
  let arr = Array.of_list lits in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      add f [ Lit.negate arr.(i); Lit.negate arr.(j) ]
    done
  done

let at_most_one_sequential f fresh lits =
  match lits with
  | [] | [ _ ] -> ()
  | first :: rest ->
    (* s_i = "some literal among the first i+1 is true" *)
    let s = ref (fresh ()) in
    add f [ Lit.negate first; Lit.pos !s ];
    let rec loop = function
      | [] -> ()
      | [ l ] ->
        (* the last literal only needs the conflict clause *)
        add f [ Lit.negate l; Lit.neg !s ]
      | l :: rest ->
        let s' = fresh () in
        add f [ Lit.negate l; Lit.pos s' ];        (* l -> s' *)
        add f [ Lit.neg !s; Lit.pos s' ];          (* s -> s' *)
        add f [ Lit.negate l; Lit.neg !s ];        (* ¬(l ∧ s) *)
        s := s';
        loop rest
    in
    loop rest

let exactly_one f lits =
  at_least_one f lits;
  at_most_one_pairwise f lits

(* Sinz's sequential counter: registers r_{i,j} = "at least j of the
   first i+1 literals are true". *)
let at_most_k_sequential f fresh lits k =
  if k < 0 then invalid_arg "Card.at_most_k_sequential: negative k";
  let arr = Array.of_list lits in
  let n = Array.length arr in
  if k = 0 then Array.iter (fun l -> add f [ Lit.negate l ]) arr
  else if n > k then begin
    let r = Array.make_matrix n k 0 in
    for i = 0 to n - 1 do
      for j = 0 to k - 1 do
        r.(i).(j) <- fresh ()
      done
    done;
    for i = 0 to n - 1 do
      (* x_i -> r_{i,1} *)
      add f [ Lit.negate arr.(i); Lit.pos r.(i).(0) ];
      if i > 0 then begin
        for j = 0 to k - 1 do
          (* r_{i-1,j} -> r_{i,j} *)
          add f [ Lit.neg r.(i - 1).(j); Lit.pos r.(i).(j) ]
        done;
        for j = 1 to k - 1 do
          (* x_i ∧ r_{i-1,j} -> r_{i,j+1} *)
          add f
            [ Lit.negate arr.(i); Lit.neg r.(i - 1).(j - 1);
              Lit.pos r.(i).(j) ]
        done;
        (* overflow: x_i with the counter already at k *)
        add f [ Lit.negate arr.(i); Lit.neg r.(i - 1).(k - 1) ]
      end
    done
  end

let at_least_k f fresh lits k =
  let n = List.length lits in
  if k > n then add f []   (* unsatisfiable *)
  else if k > 0 then
    at_most_k_sequential f fresh (List.map Lit.negate lits) (n - k)

let exactly_k f fresh lits k =
  at_most_k_sequential f fresh lits k;
  at_least_k f fresh lits k
