(** Cardinality-constraint encodings — the CNF idioms behind the EDA
    formulations the paper cites (FPGA routing's track-capacity limits,
    exclusivity constraints, one-hot controls).

    Encodings write clauses into an existing formula; auxiliary variables
    are allocated by the caller-supplied {!fresh} allocator so encodings
    compose.  All encodings are satisfiability-preserving in both
    directions over the original variables (checked by enumeration in the
    test suite). *)

(** Fresh-variable allocator over a growing variable space. *)
type fresh = unit -> Lit.var

(** [allocator ~first] hands out [first], [first+1], ... — the caller
    sizes the formula's variable space accordingly (or builds the formula
    with {!Cnf.create} after counting). *)
val allocator : first:Lit.var -> fresh * (unit -> int)

(** [at_least_one f lits] — one clause. *)
val at_least_one : Cnf.t -> Lit.t list -> unit

(** [at_most_one_pairwise f lits] — the quadratic classic: one binary
    clause per pair.  No auxiliaries. *)
val at_most_one_pairwise : Cnf.t -> Lit.t list -> unit

(** [at_most_one_sequential f fresh lits] — the linear encoding with a
    chain of commander auxiliaries (Sinz 2005's LTSeq specialised to
    k = 1). *)
val at_most_one_sequential : Cnf.t -> fresh -> Lit.t list -> unit

(** [exactly_one f lits] — pairwise at-most-one plus at-least-one. *)
val exactly_one : Cnf.t -> Lit.t list -> unit

(** [at_most_k_sequential f fresh lits k] — Sinz's sequential-counter
    encoding of Σ lits ≤ k; O(n·k) clauses and auxiliaries. *)
val at_most_k_sequential : Cnf.t -> fresh -> Lit.t list -> int -> unit

(** [at_least_k f fresh lits k] — via at-most on the negations:
    Σ lits ≥ k  ⇔  Σ ¬lits ≤ n−k. *)
val at_least_k : Cnf.t -> fresh -> Lit.t list -> int -> unit

(** [exactly_k f fresh lits k]. *)
val exactly_k : Cnf.t -> fresh -> Lit.t list -> int -> unit
