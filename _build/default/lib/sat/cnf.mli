(** CNF formulas: a variable count and an ordered list of clauses.  Clause
    order matters — the paper's convention is that original clause IDs are
    the order of appearance in the formula, agreed between solver and
    checker (§3.1). *)

type t

(** [create nvars] is an empty formula over variables [1 .. nvars]. *)
val create : int -> t

(** [of_clauses nvars clauses] builds a formula; clauses keep the given
    order.  @raise Invalid_argument if a clause mentions a variable
    outside [1 .. nvars]. *)
val of_clauses : int -> Clause.t list -> t

val nvars : t -> int
val nclauses : t -> int

(** [clause f i] is the [i]-th clause, 0-indexed by order of appearance. *)
val clause : t -> int -> Clause.t

val clauses : t -> Clause.t array
val iter_clauses : (int -> Clause.t -> unit) -> t -> unit

(** [add_clause f c] appends [c], returning its 0-based index. *)
val add_clause : t -> Clause.t -> int

(** [num_distinct_vars f] counts variables that actually occur — the paper
    notes (Table 3) that headers over-declare. *)
val num_distinct_vars : t -> int

(** [num_literals f] is the total literal count across clauses. *)
val num_literals : t -> int

(** [restrict_to f indices] is a new formula containing only the clauses at
    the given 0-based [indices] (sorted, deduplicated), over the same
    variable space.  Used by the iterated unsat-core loop. *)
val restrict_to : t -> int list -> t

val copy : t -> t
val pp : Format.formatter -> t -> unit
