let index_width regs =
  let rec bits n = if n <= 1 then 0 else 1 + bits ((n + 1) / 2) in
  max 1 (bits regs)

(* read port: mux tree selecting [regfile.(r)] where r = idx *)
let reg_read c regfile idx =
  let acc = ref regfile.(0) in
  Array.iteri
    (fun r w ->
      if r > 0 then begin
        let sel = Circuit.Arith.equal c idx (Circuit.Arith.const_word c (List.length idx) r) in
        acc := Circuit.Arith.mux_word c ~sel ~if_true:w ~if_false:!acc
      end)
    regfile;
  !acc

(* write port: conditional update of every register *)
let reg_write c regfile idx value enable =
  Array.mapi
    (fun r w ->
      let hit = Circuit.Arith.equal c idx (Circuit.Arith.const_word c (List.length idx) r) in
      let sel = Circuit.Netlist.and_ c hit enable in
      Circuit.Arith.mux_word c ~sel ~if_true:value ~if_false:w)
    regfile

type instr = {
  op : Circuit.Arith.word;
  rs1 : Circuit.Arith.word;
  rs2 : Circuit.Arith.word;
  rd : Circuit.Arith.word;
}

let declare_instr c t iw =
  {
    op = Circuit.Arith.word_input c (Printf.sprintf "op%d" t) 2;
    rs1 = Circuit.Arith.word_input c (Printf.sprintf "rs1_%d" t) iw;
    rs2 = Circuit.Arith.word_input c (Printf.sprintf "rs2_%d" t) iw;
    rd = Circuit.Arith.word_input c (Printf.sprintf "rd_%d" t) iw;
  }

(* reference semantics: immediate write-back *)
let spec_machine c ~width regfile0 instrs =
  List.fold_left
    (fun regfile i ->
      let v1 = reg_read c regfile i.rs1 in
      let v2 = reg_read c regfile i.rs2 in
      let res = Circuit.Arith.alu c ~op:i.op ~a:v1 ~b:v2 ~width in
      reg_write c regfile i.rd res (Circuit.Netlist.const c true))
    regfile0 instrs

(* pipelined semantics: write-back delayed one instruction, with a
   forwarding network reading the in-flight result when a source register
   matches the pending destination *)
let impl_machine c ~width ~forward_rs2 regfile0 instrs =
  let iw = match instrs with i :: _ -> List.length i.rd | [] -> 1 in
  let no_pending =
    (Circuit.Netlist.const c false, Circuit.Arith.const_word c iw 0, Circuit.Arith.const_word c width 0)
  in
  let read_bypassed regfile (valid, prd, pval) rs ~forward =
    let raw = reg_read c regfile rs in
    if not forward then raw
    else begin
      let hit = Circuit.Netlist.and_ c valid (Circuit.Arith.equal c rs prd) in
      Circuit.Arith.mux_word c ~sel:hit ~if_true:pval ~if_false:raw
    end
  in
  let final_regfile, pending =
    List.fold_left
      (fun (regfile, pending) i ->
        let v1 = read_bypassed regfile pending i.rs1 ~forward:true in
        let v2 = read_bypassed regfile pending i.rs2 ~forward:forward_rs2 in
        let res = Circuit.Arith.alu c ~op:i.op ~a:v1 ~b:v2 ~width in
        (* retire the pending write while this instruction executes *)
        let valid, prd, pval = pending in
        let regfile = reg_write c regfile prd pval valid in
        (regfile, (Circuit.Netlist.const c true, i.rd, res)))
      (regfile0, no_pending) instrs
  in
  (* flush the write-back stage *)
  let valid, prd, pval = pending in
  reg_write c final_regfile prd pval valid

let build ~regs ~width ~depth ~forward_rs2 =
  if regs < 2 then invalid_arg "Pipeline_cpu: need at least 2 registers";
  if depth < 1 then invalid_arg "Pipeline_cpu: need at least 1 instruction";
  let c = Circuit.Netlist.create () in
  let iw = index_width regs in
  let regfile0 =
    Array.init regs (fun r -> Circuit.Arith.word_input c (Printf.sprintf "r%d" r) width)
  in
  let instrs = List.init depth (fun t -> declare_instr c t iw) in
  let spec = spec_machine c ~width regfile0 instrs in
  let impl = impl_machine c ~width ~forward_rs2 regfile0 instrs in
  let spec_bits = List.concat (Array.to_list (Array.map (fun w -> w) spec)) in
  let impl_bits = List.concat (Array.to_list (Array.map (fun w -> w) impl)) in
  Circuit.Miter.equivalence_cnf c spec_bits impl_bits

let correct ~regs ~width ~depth = build ~regs ~width ~depth ~forward_rs2:true

let buggy ~regs ~width ~depth = build ~regs ~width ~depth ~forward_rs2:false
