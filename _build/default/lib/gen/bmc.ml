let counter_reach ~width ~steps ~target =
  if width < 1 || steps < 0 then invalid_arg "Bmc.counter_reach";
  if target < 0 || (width < 62 && target >= 1 lsl width) then
    invalid_arg "Bmc.counter_reach: target does not fit the counter";
  let c = Circuit.Netlist.create () in
  let state = ref (Circuit.Arith.const_word c width 0) in
  for t = 1 to steps do
    let en = Circuit.Netlist.input c (Printf.sprintf "en%d" t) in
    let incremented = Circuit.Arith.add_mod c !state (Circuit.Arith.const_word c width 1) width in
    state := Circuit.Arith.mux_word c ~sel:en ~if_true:incremented ~if_false:!state
  done;
  let reached = Circuit.Arith.equal c !state (Circuit.Arith.const_word c width target) in
  let enc = Circuit.Tseitin.encode c ~constraints:[ (reached, true) ] in
  enc.Circuit.Tseitin.cnf

let exactly_one c bits =
  let at_least = Circuit.Netlist.big_or c bits in
  let pairs = ref [] in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b -> if j > i then pairs := Circuit.Netlist.and_ c a b :: !pairs)
        bits)
    bits;
  let two = Circuit.Netlist.big_or c !pairs in
  Circuit.Netlist.and_ c at_least (Circuit.Netlist.not_ c two)

let token_ring ~nodes ~steps =
  if nodes < 2 || steps < 1 then invalid_arg "Bmc.token_ring";
  let c = Circuit.Netlist.create () in
  let state =
    ref (List.init nodes (fun i -> Circuit.Netlist.const c (i = 0)))
  in
  for t = 1 to steps do
    let stall = Circuit.Netlist.input c (Printf.sprintf "stall%d" t) in
    let cur = Array.of_list !state in
    state :=
      List.init nodes (fun i ->
          let from = cur.((i - 1 + nodes) mod nodes) in
          Circuit.Netlist.mux c ~sel:stall ~if_true:cur.(i) ~if_false:from)
  done;
  let ok = exactly_one c !state in
  let enc = Circuit.Tseitin.encode c ~constraints:[ (ok, false) ] in
  enc.Circuit.Tseitin.cnf
