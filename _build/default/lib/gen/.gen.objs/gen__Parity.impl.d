lib/gen/parity.ml: Sat
