lib/gen/planning.mli: Sat
