lib/gen/random3sat.ml: Array Sat
