lib/gen/families.ml: Bmc Equiv List Multiplier Php Pipeline_cpu Planning Random3sat Routing Sat
