lib/gen/families.mli: Sat
