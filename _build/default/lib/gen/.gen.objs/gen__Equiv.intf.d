lib/gen/equiv.mli: Sat
