lib/gen/routing.ml: Array List Sat
