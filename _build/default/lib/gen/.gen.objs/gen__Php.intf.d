lib/gen/php.mli: Sat
