lib/gen/multiplier.mli: Sat
