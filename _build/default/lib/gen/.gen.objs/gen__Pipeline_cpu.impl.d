lib/gen/pipeline_cpu.ml: Array Circuit List Printf
