lib/gen/pipeline_cpu.mli: Sat
