lib/gen/bmc.mli: Sat
