lib/gen/multiplier.ml: Circuit List
