lib/gen/parity.mli: Sat
