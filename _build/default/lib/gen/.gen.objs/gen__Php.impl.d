lib/gen/php.ml: Array Sat
