lib/gen/random3sat.mli: Sat
