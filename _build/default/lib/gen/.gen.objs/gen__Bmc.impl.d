lib/gen/bmc.ml: Array Circuit List Printf
