lib/gen/equiv.ml: Array Circuit List Printf Sat
