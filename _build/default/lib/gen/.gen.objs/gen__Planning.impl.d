lib/gen/planning.ml: Array List Sat
