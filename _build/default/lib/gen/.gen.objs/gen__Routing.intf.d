lib/gen/routing.mli: Sat
