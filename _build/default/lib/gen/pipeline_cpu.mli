(** Microprocessor-verification workload — the analogue of the paper's
    Velev 2dlx/5pipe/9vliw instances [1].

    A register-file machine executes [depth] symbolic instructions
    (opcode, two source registers, destination register — all primary
    inputs).  The specification applies each write-back immediately; the
    implementation delays write-back by one instruction and compensates
    with a forwarding (bypass) network, the classic pipeline hazard
    mechanism.  The two are equivalent for every program and every initial
    register file, so the miter over the final register states is
    unsatisfiable — and structurally it is exactly the
    comparator-plus-bypass logic that makes the Velev instances hard. *)

(** [correct ~regs ~width ~depth] is the UNSAT equivalence miter.
    [regs ≥ 2] registers of [width] bits, [depth] instructions. *)
val correct : regs:int -> width:int -> depth:int -> Sat.Cnf.t

(** [buggy ~regs ~width ~depth] omits the forwarding path on the second
    source operand — a real pipeline bug; the SAT model is a program
    exhibiting the hazard. *)
val buggy : regs:int -> width:int -> depth:int -> Sat.Cnf.t
