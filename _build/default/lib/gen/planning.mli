(** AI-planning workload (the paper's `bw_large` family): step-bounded
    reachability on a grid.  An agent starts at the top-left cell and may
    move to a 4-neighbour each step; the goal cell must be occupied at the
    horizon.  With a horizon shorter than the Manhattan distance the
    encoding is unsatisfiable, and the unsatisfiable core is the temporal
    cone around the goal — small against the full encoding, which is the
    paper's point about planning cores (§4, Table 3). *)

(** [unreachable_goal ~width ~height ~horizon] — UNSAT whenever
    [horizon < (width-1) + (height-1)].  Variables [x_{cell,t}]; clauses:
    the start cell holds at t=0 and nothing else does, occupancy
    regresses to a neighbour (or the same cell) one step earlier, the
    goal holds at [horizon]. *)
val unreachable_goal : width:int -> height:int -> horizon:int -> Sat.Cnf.t

(** [reachable_goal ~width ~height ~horizon] — the satisfiable control
    with a long enough horizon (asserts nothing about minimality). *)
val reachable_goal : width:int -> height:int -> horizon:int -> Sat.Cnf.t
