(** Combinational-equivalence workload (the paper's c5315/c7552-style
    instances).  Each output implements a random truth table over shared
    inputs twice: once as a Shannon-expansion mux tree, once as a
    minterm sum-of-products — structurally unrelated, functionally equal —
    and the miter of the two is unsatisfiable. *)

(** [miter rng ~inputs ~outputs] builds the UNSAT equivalence instance;
    [inputs ≤ 12] keeps the SOP expansion bounded. *)
val miter : Sat.Rng.t -> inputs:int -> outputs:int -> Sat.Cnf.t

(** [miter_buggy rng ~inputs ~outputs] flips one minterm in one output of
    the second implementation, so the instance is satisfiable and any
    model is a counterexample input — the debugging direction of CEC. *)
val miter_buggy : Sat.Rng.t -> inputs:int -> outputs:int -> Sat.Cnf.t
