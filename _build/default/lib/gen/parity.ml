(* CNF expansion of a ⊕ b = c for constant c *)
let xor2 f a b c =
  if c then begin
    ignore (Sat.Cnf.add_clause f [| Sat.Lit.pos a; Sat.Lit.pos b |]);
    ignore (Sat.Cnf.add_clause f [| Sat.Lit.neg a; Sat.Lit.neg b |])
  end
  else begin
    ignore (Sat.Cnf.add_clause f [| Sat.Lit.pos a; Sat.Lit.neg b |]);
    ignore (Sat.Cnf.add_clause f [| Sat.Lit.neg a; Sat.Lit.pos b |])
  end

(* CNF expansion of a ⊕ b ⊕ c = 0, i.e. c = a ⊕ b *)
let xor3 f a b c =
  ignore (Sat.Cnf.add_clause f [| Sat.Lit.neg a; Sat.Lit.neg b; Sat.Lit.neg c |]);
  ignore (Sat.Cnf.add_clause f [| Sat.Lit.pos a; Sat.Lit.pos b; Sat.Lit.neg c |]);
  ignore (Sat.Cnf.add_clause f [| Sat.Lit.pos a; Sat.Lit.neg b; Sat.Lit.pos c |]);
  ignore (Sat.Cnf.add_clause f [| Sat.Lit.neg a; Sat.Lit.pos b; Sat.Lit.pos c |])

let odd_cycle n =
  if n < 2 then invalid_arg "Parity.odd_cycle: need at least 2 variables";
  let f = Sat.Cnf.create n in
  for i = 1 to n - 1 do
    xor2 f i (i + 1) false
  done;
  xor2 f n 1 true;
  f

let chain ?(parity = true) n =
  if n < 1 then invalid_arg "Parity.chain";
  (* variables: x_1..x_n are 1..n; chaining s_1..s_n are n+1..2n *)
  let x i = i in
  let s i = n + i in
  let f = Sat.Cnf.create (2 * n) in
  xor2 f (s 1) (x 1) false;   (* s1 = x1 *)
  for i = 2 to n do
    xor3 f (s (i - 1)) (x i) (s i)
  done;
  (* pin the inputs to zero *)
  for i = 1 to n do
    ignore (Sat.Cnf.add_clause f [| Sat.Lit.neg (x i) |])
  done;
  (* demand the chain output equal [parity] *)
  let final = if parity then Sat.Lit.pos (s n) else Sat.Lit.neg (s n) in
  ignore (Sat.Cnf.add_clause f [| final |]);
  f
