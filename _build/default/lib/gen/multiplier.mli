(** Multiplier-equivalence workload — the analogue of the paper's
    `longmult` BMC instances, whose XOR-rich adder trees force long
    resolution proofs (the Built% outlier of Table 2).  Two structurally
    different implementations of w-bit multiplication (LSB-first vs
    MSB-first partial-product accumulation) are mitered. *)

(** [miter ~width] compares full products of two [width]-bit operands;
    UNSAT. *)
val miter : width:int -> Sat.Cnf.t

(** [miter_high_bits ~width ~bits] compares only the top [bits] output
    bits — like `longmult`'s per-output-bit instances, hardest at the
    MSB. *)
val miter_high_bits : width:int -> bits:int -> Sat.Cnf.t

(** [miter_buggy ~width] drops one partial product from the second
    implementation: satisfiable, with the model exhibiting the operand
    pair on which the broken multiplier differs. *)
val miter_buggy : width:int -> Sat.Cnf.t
