(** Uniform random k-SAT.  At clause/variable ratio ≈ 4.27 random 3-SAT
    crosses the satisfiability threshold; above it instances are almost
    surely unsatisfiable and hard for resolution — the standard synthetic
    control next to the structured EDA families. *)

(** [generate ?k rng ~nvars ~nclauses] draws [nclauses] clauses of [k]
    distinct variables each with random phases.  Deterministic in [rng]. *)
val generate : ?k:int -> Sat.Rng.t -> nvars:int -> nclauses:int -> Sat.Cnf.t

(** [generate_at_ratio ?k rng ~nvars ~ratio] is
    [generate ~nclauses:(ratio * nvars)]. *)
val generate_at_ratio : ?k:int -> Sat.Rng.t -> nvars:int -> ratio:float -> Sat.Cnf.t
