(** FPGA channel-routing workload (the paper's `too_largefs3w8v262` family
    [3]): every net must be assigned one of [tracks] routing tracks, and
    nets whose horizontal spans overlap may not share a track.  When a set
    of mutually overlapping nets exceeds the track count the channel is
    unroutable — UNSAT — and the unsatisfiable core localises the
    congested region, exactly the designer feedback application of the
    paper's §4. *)

(** [channel rng ~nets ~tracks ~extra_conflict_density] builds an
    over-subscribed instance: nets [1 .. tracks+1] form a mutually
    overlapping clique (the unroutable hot spot) and every other net pair
    conflicts independently with the given probability.  Variables:
    [x_{n,t}] = net n uses track t.  UNSAT, with a core concentrated on
    the clique (Table 3's "small core" row). *)
val channel :
  Sat.Rng.t ->
  nets:int ->
  tracks:int ->
  extra_conflict_density:float ->
  Sat.Cnf.t

(** [routable rng ~nets ~tracks ~conflict_density] builds an instance with
    no planted clique; typically satisfiable (a routing exists), used as
    the SAT-side control. *)
val routable :
  Sat.Rng.t -> nets:int -> tracks:int -> conflict_density:float -> Sat.Cnf.t

(** [capacity ~nets ~tracks ~capacity] — global-routing style: every net
    picks exactly one track ({!Sat.Card.exactly_one} via the sequential
    encoding), and each track carries at most [capacity] nets (Sinz
    sequential counters).  Unsatisfiable iff [nets > tracks × capacity] —
    a generalised pigeonhole with realistic EDA structure. *)
val capacity : nets:int -> tracks:int -> capacity:int -> Sat.Cnf.t
