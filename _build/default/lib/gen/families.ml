type family = {
  name : string;
  paper_analogue : string;
  generate : unit -> Sat.Cnf.t;
}

let mk name paper_analogue generate = { name; paper_analogue; generate }

let suite () =
  [
    mk "equiv_small" "c5315"
      (fun () -> Equiv.miter (Sat.Rng.create 11) ~inputs:7 ~outputs:8);
    mk "bw_grid" "bw_large.d"
      (fun () -> Planning.unreachable_goal ~width:12 ~height:12 ~horizon:18);
    mk "fpga_route" "too_largefs3w8v262"
      (fun () ->
        Routing.channel (Sat.Rng.create 23) ~nets:48 ~tracks:8
          ~extra_conflict_density:0.06);
    mk "equiv_large" "c7552"
      (fun () -> Equiv.miter (Sat.Rng.create 12) ~inputs:8 ~outputs:10);
    mk "barrel_ring" "barrel"
      (fun () -> Bmc.token_ring ~nodes:9 ~steps:11);
    mk "counter_bmc" "barrel (counter variant)"
      (fun () -> Bmc.counter_reach ~width:8 ~steps:24 ~target:40);
    mk "pipe_2" "2dlx_cc_mc_ex_bp_f"
      (fun () -> Pipeline_cpu.correct ~regs:4 ~width:4 ~depth:2);
    mk "longmult_hi" "longmult12"
      (fun () -> Multiplier.miter_high_bits ~width:6 ~bits:5);
    mk "php_8" "hole-n (control)" (fun () -> Php.unsat ~holes:8);
    mk "rand_unsat" "random 3-SAT (control)"
      (fun () ->
        Random3sat.generate_at_ratio (Sat.Rng.create 5) ~nvars:220 ~ratio:4.6);
    mk "vliw_wide" "9vliw_bp_mc"
      (fun () -> Pipeline_cpu.correct ~regs:8 ~width:4 ~depth:2);
    mk "pipe_5" "6pipe"
      (fun () -> Pipeline_cpu.correct ~regs:4 ~width:2 ~depth:5);
    mk "pipe_6" "7pipe"
      (fun () -> Pipeline_cpu.correct ~regs:4 ~width:4 ~depth:3);
  ]

let quick () =
  [
    mk "equiv_tiny" "c5315"
      (fun () -> Equiv.miter (Sat.Rng.create 11) ~inputs:5 ~outputs:4);
    mk "php_6" "hole-n (control)" (fun () -> Php.unsat ~holes:6);
    mk "ring_small" "barrel" (fun () -> Bmc.token_ring ~nodes:6 ~steps:7);
  ]

let find name = List.find_opt (fun f -> f.name = name) (suite () @ quick ())

let names () = List.map (fun f -> f.name) (suite ())
