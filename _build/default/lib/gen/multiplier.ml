let build ~width ~bits ~drop_pp =
  if width < 1 then invalid_arg "Multiplier: width must be positive";
  let c = Circuit.Netlist.create () in
  let a = Circuit.Arith.word_input c "a" width in
  let b = Circuit.Arith.word_input c "b" width in
  let p1 = Circuit.Arith.mul_shift_add c a b in
  let p2 =
    if drop_pp then begin
      (* a broken MSB-first multiplier that forgets the final (highest)
         partial product *)
      let b_broken =
        List.mapi
          (fun i bi -> if i = width - 1 then Circuit.Netlist.const c false else bi)
          b
      in
      Circuit.Arith.mul_msb_first c a b_broken
    end
    else Circuit.Arith.mul_msb_first c a b
  in
  let take_last n xs =
    let len = List.length xs in
    List.filteri (fun i _ -> i >= len - n) xs
  in
  let o1, o2 =
    if bits >= 2 * width then (p1, p2)
    else (take_last bits p1, take_last bits p2)
  in
  Circuit.Miter.equivalence_cnf c o1 o2

let miter ~width = build ~width ~bits:(2 * width) ~drop_pp:false

let miter_high_bits ~width ~bits = build ~width ~bits ~drop_pp:false

let miter_buggy ~width = build ~width ~bits:(2 * width) ~drop_pp:true
