let generate ~pigeons ~holes =
  if pigeons < 1 || holes < 1 then invalid_arg "Php.generate";
  let var i j = ((i - 1) * holes) + j in
  let f = Sat.Cnf.create (pigeons * holes) in
  (* each pigeon occupies some hole *)
  for i = 1 to pigeons do
    let c = Array.init holes (fun j -> Sat.Lit.pos (var i (j + 1))) in
    ignore (Sat.Cnf.add_clause f c)
  done;
  (* no hole holds two pigeons *)
  for j = 1 to holes do
    for i1 = 1 to pigeons do
      for i2 = i1 + 1 to pigeons do
        ignore
          (Sat.Cnf.add_clause f
             [| Sat.Lit.neg (var i1 j); Sat.Lit.neg (var i2 j) |])
      done
    done
  done;
  f

let unsat ~holes = generate ~pigeons:(holes + 1) ~holes
