let build ~width ~height ~horizon =
  if width < 1 || height < 1 || horizon < 0 then invalid_arg "Planning";
  let cells = width * height in
  let cell x y = (y * width) + x in
  (* variable for cell c occupied at time t *)
  let var c t = (t * cells) + c + 1 in
  let f = Sat.Cnf.create (cells * (horizon + 1)) in
  (* initial state: agent at (0,0), nowhere else *)
  ignore (Sat.Cnf.add_clause f [| Sat.Lit.pos (var (cell 0 0) 0) |]);
  for c = 1 to cells - 1 do
    ignore (Sat.Cnf.add_clause f [| Sat.Lit.neg (var c 0) |])
  done;
  (* regression: occupied at t implies some neighbour (or self, a wait
     move) was occupied at t-1 *)
  let neighbours x y =
    let own = [ (x, y) ] in
    let cand = [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ] in
    own
    @ List.filter
        (fun (a, b) -> a >= 0 && a < width && b >= 0 && b < height)
        cand
  in
  for t = 1 to horizon do
    for y = 0 to height - 1 do
      for x = 0 to width - 1 do
        let c = cell x y in
        let pre =
          List.map (fun (a, b) -> Sat.Lit.pos (var (cell a b) (t - 1)))
            (neighbours x y)
        in
        ignore
          (Sat.Cnf.add_clause f
             (Array.of_list (Sat.Lit.neg (var c t) :: pre)))
      done
    done
  done;
  (* goal: bottom-right occupied at the horizon *)
  ignore
    (Sat.Cnf.add_clause f
       [| Sat.Lit.pos (var (cell (width - 1) (height - 1)) horizon) |]);
  f

let unreachable_goal ~width ~height ~horizon = build ~width ~height ~horizon
let reachable_goal ~width ~height ~horizon = build ~width ~height ~horizon
