let build rng ~nets ~tracks ~density ~plant_clique =
  if nets < 1 || tracks < 1 then invalid_arg "Routing.channel";
  if plant_clique && nets < tracks + 1 then
    invalid_arg "Routing.channel: need tracks+1 nets for the unroutable clique";
  let var n t = ((n - 1) * tracks) + t in
  let f = Sat.Cnf.create (nets * tracks) in
  (* every net is assigned at least one track *)
  for n = 1 to nets do
    let c = Array.init tracks (fun t -> Sat.Lit.pos (var n (t + 1))) in
    ignore (Sat.Cnf.add_clause f c)
  done;
  let conflict n1 n2 =
    for t = 1 to tracks do
      ignore
        (Sat.Cnf.add_clause f
           [| Sat.Lit.neg (var n1 t); Sat.Lit.neg (var n2 t) |])
    done
  in
  for n1 = 1 to nets do
    for n2 = n1 + 1 to nets do
      let in_clique = plant_clique && n1 <= tracks + 1 && n2 <= tracks + 1 in
      if in_clique then conflict n1 n2
      else if Sat.Rng.float rng < density then conflict n1 n2
    done
  done;
  f

let channel rng ~nets ~tracks ~extra_conflict_density =
  build rng ~nets ~tracks ~density:extra_conflict_density ~plant_clique:true

let routable rng ~nets ~tracks ~conflict_density =
  build rng ~nets ~tracks ~density:conflict_density ~plant_clique:false

let capacity ~nets ~tracks ~capacity =
  if nets < 1 || tracks < 1 || capacity < 1 then invalid_arg "Routing.capacity";
  let var n t = ((n - 1) * tracks) + t in
  (* generous bound on auxiliaries: one AMO chain per net plus one
     sequential counter per track *)
  let primary = nets * tracks in
  let aux_bound = (nets * tracks) + (tracks * nets * capacity) + 8 in
  let f = Sat.Cnf.create (primary + aux_bound) in
  let fresh, _used = Sat.Card.allocator ~first:(primary + 1) in
  for n = 1 to nets do
    let lits = List.init tracks (fun t -> Sat.Lit.pos (var n (t + 1))) in
    Sat.Card.at_least_one f lits;
    Sat.Card.at_most_one_sequential f fresh lits
  done;
  for t = 1 to tracks do
    let lits = List.init nets (fun n -> Sat.Lit.pos (var (n + 1) t)) in
    Sat.Card.at_most_k_sequential f fresh lits capacity
  done;
  f
