(** XOR/parity chain formulas.  A chain of XOR constraints
    [x1 ⊕ x2 = c1, x2 ⊕ x3 = c2, …] closed into a cycle with odd total
    parity is unsatisfiable, and — like the multiplier-derived `longmult`
    instances in the paper — XOR structure forces resolution proofs that
    touch a large fraction of the learned clauses (the paper's Built%
    outlier). *)

(** [odd_cycle n] is the unsatisfiable odd-parity cycle over [n ≥ 2]
    variables, CNF-expanded (4 clauses per XOR for inner links). *)
val odd_cycle : int -> Sat.Cnf.t

(** [chain ?parity n] is a satisfiable-or-not parity chain: variables
    [x1..xn], constraint [x1 ⊕ … ⊕ xn = parity] decomposed with chaining
    variables, plus units pinning [x1..xn] to zero.  With [parity = true]
    this is unsatisfiable. *)
val chain : ?parity:bool -> int -> Sat.Cnf.t
