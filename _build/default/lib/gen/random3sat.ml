let generate ?(k = 3) rng ~nvars ~nclauses =
  if nvars < k then invalid_arg "Random3sat: nvars < k";
  let f = Sat.Cnf.create nvars in
  for _ = 1 to nclauses do
    (* draw k distinct variables by rejection; k is tiny *)
    let vars = Array.make k 0 in
    let n = ref 0 in
    while !n < k do
      let v = 1 + Sat.Rng.int rng nvars in
      let dup = ref false in
      for i = 0 to !n - 1 do
        if vars.(i) = v then dup := true
      done;
      if not !dup then begin
        vars.(!n) <- v;
        incr n
      end
    done;
    let c = Array.map (fun v -> Sat.Lit.make v (Sat.Rng.bool rng)) vars in
    ignore (Sat.Cnf.add_clause f c)
  done;
  f

let generate_at_ratio ?k rng ~nvars ~ratio =
  generate ?k rng ~nvars
    ~nclauses:(int_of_float (ratio *. float_of_int nvars))
