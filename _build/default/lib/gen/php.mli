(** Pigeonhole formulas PHP(p, h): p pigeons into h holes.  Unsatisfiable
    whenever [p > h], with exponentially long resolution proofs — the
    classic stress test for resolution-based checking. *)

(** [generate ~pigeons ~holes] uses variable [x_{i,j}] ⇔ pigeon [i] sits in
    hole [j]; clauses: each pigeon somewhere, no two pigeons share a
    hole. *)
val generate : pigeons:int -> holes:int -> Sat.Cnf.t

(** [unsat ~holes] is the standard hard instance PHP(holes+1, holes). *)
val unsat : holes:int -> Sat.Cnf.t
