(** The benchmark suite: one generated instance per benchmark family of
    the paper's evaluation (Tables 1–3), sized to finish on a laptop while
    keeping the paper's qualitative contrasts.  Each entry names the paper
    benchmark it stands in for; DESIGN.md documents why each substitution
    preserves the relevant behaviour. *)

type family = {
  name : string;             (** our instance name *)
  paper_analogue : string;   (** the paper benchmark it reproduces *)
  generate : unit -> Sat.Cnf.t;  (** deterministic (internally seeded) *)
}

(** [suite ()] is the standard table suite, ordered roughly by solving
    difficulty like the paper's tables. *)
val suite : unit -> family list

(** [quick ()] is a small sub-suite for smoke benches. *)
val quick : unit -> family list

(** [find name] looks a family up by {!family.name}. *)
val find : string -> family option

val names : unit -> string list
