(* Shannon expansion of a truth table: mux on the top variable, recursing
   into halves; [tt] is a bool array of size 2^k over inputs x0..x{k-1},
   x0 the least significant selector. *)
let rec shannon c xs tt lo len =
  match xs with
  | [] -> Circuit.Netlist.const c tt.(lo)
  | x :: rest ->
    let half = len / 2 in
    let f0 = shannon c rest tt lo half in
    let f1 = shannon c rest tt (lo + half) half in
    Circuit.Netlist.mux c ~sel:x ~if_true:f1 ~if_false:f0

(* Sum of products: one AND term per true minterm, ORed together. *)
let sop c xs tt =
  let k = List.length xs in
  let terms = ref [] in
  for m = 0 to (1 lsl k) - 1 do
    if tt.(m) then begin
      let lits =
        List.mapi
          (fun i x -> if (m lsr i) land 1 = 1 then x else Circuit.Netlist.not_ c x)
          xs
      in
      terms := Circuit.Netlist.big_and c lits :: !terms
    end
  done;
  Circuit.Netlist.big_or c !terms

let build rng ~inputs ~outputs ~inject_bug =
  if inputs < 1 || inputs > 12 then invalid_arg "Equiv: inputs must be 1..12";
  let c = Circuit.Netlist.create () in
  let xs = List.init inputs (fun i -> Circuit.Netlist.input c (Printf.sprintf "x%d" i)) in
  let size = 1 lsl inputs in
  let tables =
    List.init outputs (fun _ -> Array.init size (fun _ -> Sat.Rng.bool rng))
  in
  (* implementation A: mux trees; the selector order sees x_{k-1} on top *)
  let impl_a =
    List.map (fun tt -> shannon c (List.rev xs) tt 0 size) tables
  in
  (* implementation B: sum of products, with an optional injected bug *)
  let bug_output = if outputs = 0 then 0 else Sat.Rng.int rng outputs in
  let bug_minterm = Sat.Rng.int rng size in
  let impl_b =
    List.mapi
      (fun i tt ->
        let tt =
          if inject_bug && i = bug_output then begin
            let tt' = Array.copy tt in
            tt'.(bug_minterm) <- not tt'.(bug_minterm);
            tt'
          end
          else tt
        in
        sop c xs tt)
      tables
  in
  Circuit.Miter.equivalence_cnf c impl_a impl_b

let miter rng ~inputs ~outputs = build rng ~inputs ~outputs ~inject_bug:false

let miter_buggy rng ~inputs ~outputs =
  build rng ~inputs ~outputs ~inject_bug:true
