(** Bounded-model-checking workload (the paper's `barrel`/BMC family [2]):
    a sequential circuit is unrolled for [steps] transitions from a fixed
    initial state and the negation of a safety property is asserted at the
    final step.  When the property actually holds within the bound, the
    CNF is unsatisfiable and its resolution proof is what the checker
    validates. *)

(** [counter_reach ~width ~steps ~target] — a [width]-bit counter starts
    at 0 and each step either holds or increments (per-step enable
    inputs).  Asserting [counter = target] after [steps] transitions is
    UNSAT iff [target > steps].
    @raise Invalid_argument when [target] does not fit in [width] bits. *)
val counter_reach : width:int -> steps:int -> target:int -> Sat.Cnf.t

(** [token_ring ~nodes ~steps] — a one-hot token rotates around [nodes]
    stations (with a per-step stall input); asserting that the one-hot
    invariant breaks at the final step is UNSAT (the invariant is
    inductive). *)
val token_ring : nodes:int -> steps:int -> Sat.Cnf.t
