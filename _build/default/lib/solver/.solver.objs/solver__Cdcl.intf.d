lib/solver/cdcl.mli: Sat Trace
