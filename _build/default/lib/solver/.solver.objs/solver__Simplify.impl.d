lib/solver/simplify.ml: Array Hashtbl Int List Option Sat Seq
