lib/solver/enumerate.ml: Array Cdcl Sat
