lib/solver/enumerate.mli: Cdcl Sat
