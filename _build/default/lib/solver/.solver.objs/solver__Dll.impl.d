lib/solver/dll.ml: Array Cdcl List Sat
