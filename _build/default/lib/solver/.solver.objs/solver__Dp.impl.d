lib/solver/dp.ml: Array Sat Set Stdlib
