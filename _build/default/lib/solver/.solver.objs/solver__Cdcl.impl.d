lib/solver/cdcl.ml: Array Bytes Float Heap Int List Sat Trace
