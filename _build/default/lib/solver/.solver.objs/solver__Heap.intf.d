lib/solver/heap.mli:
