lib/solver/dll.mli: Cdcl Sat
