lib/solver/heap.ml: Array List Sat
