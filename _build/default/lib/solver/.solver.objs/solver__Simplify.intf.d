lib/solver/simplify.mli: Sat
