lib/solver/dp.mli: Sat
