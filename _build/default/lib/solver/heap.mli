(** Binary max-heap over variables keyed by an external score function,
    with an index side-array so that [decrease]/[increase] after an
    activity bump is O(log n).  This is the decision-variable order used
    by the VSIDS heuristic. *)

type t

(** [create n ~score] covers variables [1 .. n]; [score v] is read at
    comparison time, so bumping activities requires notifying the heap via
    [update]. *)
val create : int -> score:(int -> float) -> t

val size : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

(** [insert h v] adds variable [v]; no-op if already present. *)
val insert : t -> int -> unit

(** [pop_max h] removes and returns the variable with the highest score.
    @raise Not_found when empty. *)
val pop_max : t -> int

(** [update h v] restores heap order after [score v] changed; no-op when
    [v] is not in the heap. *)
val update : t -> int -> unit

(** [rebuild h vars] resets the heap to exactly [vars]. *)
val rebuild : t -> int list -> unit
