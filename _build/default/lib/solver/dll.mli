(** Plain DLL (Davis–Logemann–Loveland [9]) search without learning or
    non-chronological backtracking — the historical baseline the paper's
    §2 narrative starts from, and a useful differential-testing partner
    for the CDCL solver.  Recursion over a functional assignment with BCP
    at each node; branching on the most frequent unassigned variable. *)

type stats = { decisions : int; propagations : int }

(** [solve ?node_limit f] decides [f].  Returns [None] when the node limit
    is exhausted (plain DLL blows up where CDCL does not — that contrast is
    one of the ablation benches). *)
val solve : ?node_limit:int -> Sat.Cnf.t -> (Cdcl.result * stats) option
