type outcome =
  | Sat_dp
  | Unsat_dp
  | Out_of_budget

type stats = {
  eliminations : int;
  resolvents : int;
  peak_clauses : int;
}

module Clause_set = Set.Make (struct
  type t = int array    (* sorted, deduplicated literal array *)
  let compare = Stdlib.compare
end)

let normalize_opt c = Sat.Clause.normalize c

(* Resolve every pos-occurrence against every neg-occurrence of [v],
   dropping tautologies; this is one Davis–Putnam elimination step. *)
let eliminate v clauses resolvent_count =
  let with_pos, without =
    Clause_set.partition (fun c -> Sat.Clause.mem (Sat.Lit.pos v) c) clauses
  in
  let with_neg, rest =
    Clause_set.partition (fun c -> Sat.Clause.mem (Sat.Lit.neg v) c) without
  in
  let acc = ref rest in
  Clause_set.iter
    (fun cp ->
      Clause_set.iter
        (fun cn ->
          incr resolvent_count;
          match Sat.Clause.clashing_vars cp cn with
          | [ u ] when u = v -> (
            let r = Sat.Clause.resolve cp cn v in
            match normalize_opt r with
            | Some r -> acc := Clause_set.add r !acc
            | None -> ())
          | _ -> () (* double clash: resolvent is a tautology, drop *))
        with_neg)
    with_pos;
  !acc

let solve ?(clause_budget = 200_000) f =
  let clauses = ref Clause_set.empty in
  let trivially_unsat = ref false in
  Sat.Cnf.iter_clauses
    (fun _ c ->
      match normalize_opt c with
      | Some [||] -> trivially_unsat := true
      | Some d -> clauses := Clause_set.add d !clauses
      | None -> ())
    f;
  let eliminations = ref 0 in
  let resolvents = ref 0 in
  let peak = ref (Clause_set.cardinal !clauses) in
  let stats () =
    { eliminations = !eliminations; resolvents = !resolvents; peak_clauses = !peak }
  in
  if !trivially_unsat then (Unsat_dp, stats ())
  else begin
    let outcome = ref None in
    while !outcome = None do
      if Clause_set.is_empty !clauses then outcome := Some Sat_dp
      else if Clause_set.mem [||] !clauses then outcome := Some Unsat_dp
      else if Clause_set.cardinal !clauses > clause_budget then
        outcome := Some Out_of_budget
      else begin
        (* cheapest variable first: fewest pos*neg product *)
        let nvars = Sat.Cnf.nvars f in
        let pos = Array.make (nvars + 1) 0 in
        let neg = Array.make (nvars + 1) 0 in
        Clause_set.iter
          (fun c ->
            Array.iter
              (fun l ->
                let v = Sat.Lit.var l in
                if Sat.Lit.is_neg l then neg.(v) <- neg.(v) + 1
                else pos.(v) <- pos.(v) + 1)
              c)
          !clauses;
        let best = ref 0 in
        let best_cost = ref max_int in
        for v = 1 to nvars do
          if pos.(v) + neg.(v) > 0 then begin
            let cost = pos.(v) * neg.(v) in
            if cost < !best_cost then begin
              best := v;
              best_cost := cost
            end
          end
        done;
        if !best = 0 then outcome := Some Sat_dp
        else begin
          incr eliminations;
          clauses := eliminate !best !clauses resolvents;
          if Clause_set.cardinal !clauses > !peak then
            peak := Clause_set.cardinal !clauses
        end
      end
    done;
    match !outcome with
    | Some o -> (o, stats ())
    | None -> assert false
  end
