type t = {
  score : int -> float;
  heap : int Sat.Vec.t;          (* heap.(i) = variable at heap slot i *)
  indices : int array;           (* indices.(v) = slot of v, or -1 *)
}

let create n ~score =
  { score; heap = Sat.Vec.create ~dummy:0; indices = Array.make (n + 1) (-1) }

let size h = Sat.Vec.length h.heap
let is_empty h = size h = 0
let mem h v = h.indices.(v) >= 0

let swap h i j =
  let vi = Sat.Vec.get h.heap i and vj = Sat.Vec.get h.heap j in
  Sat.Vec.set h.heap i vj;
  Sat.Vec.set h.heap j vi;
  h.indices.(vi) <- j;
  h.indices.(vj) <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.score (Sat.Vec.get h.heap i) > h.score (Sat.Vec.get h.heap parent)
    then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = size h in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && h.score (Sat.Vec.get h.heap l) > h.score (Sat.Vec.get h.heap !best)
  then best := l;
  if r < n && h.score (Sat.Vec.get h.heap r) > h.score (Sat.Vec.get h.heap !best)
  then best := r;
  if !best <> i then begin
    swap h i !best;
    sift_down h !best
  end

let insert h v =
  if not (mem h v) then begin
    Sat.Vec.push h.heap v;
    h.indices.(v) <- size h - 1;
    sift_up h (size h - 1)
  end

let pop_max h =
  if is_empty h then raise Not_found;
  let top = Sat.Vec.get h.heap 0 in
  let n = size h in
  swap h 0 (n - 1);
  ignore (Sat.Vec.pop h.heap);
  h.indices.(top) <- -1;
  if not (is_empty h) then sift_down h 0;
  top

let update h v =
  let i = h.indices.(v) in
  if i >= 0 then begin
    sift_up h i;
    sift_down h h.indices.(v)
  end

let rebuild h vars =
  Sat.Vec.iter (fun v -> h.indices.(v) <- -1) h.heap;
  Sat.Vec.clear h.heap;
  List.iter (insert h) vars
