(** Exhaustive truth-table solver, the test oracle: correct by
    construction, exponential, usable up to ~20 variables.  The test suite
    cross-checks every other solver against this on random small
    formulas. *)

(** [solve f] decides [f] by enumerating assignments over the variables
    that actually occur.  @raise Invalid_argument beyond 24 occurring
    variables (the point of an oracle is that it always finishes). *)
val solve : Sat.Cnf.t -> Cdcl.result

(** [count_models f] counts satisfying assignments over the occurring
    variables (unused variables do not multiply the count). *)
val count_models : Sat.Cnf.t -> int
