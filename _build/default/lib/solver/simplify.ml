type outcome =
  | Simplified of {
      formula : Sat.Cnf.t;
      forced : (Sat.Lit.var * bool) list;
      reconstruct : Sat.Assignment.t -> Sat.Assignment.t;
    }
  | Proved_unsat
  | Proved_sat of Sat.Assignment.t

type stats = {
  units_propagated : int;
  pure_literals : int;
  tautologies_removed : int;
  subsumed_removed : int;
  duplicates_removed : int;
}

exception Empty_clause_derived

(* working state: clause set as sorted literal lists, current forced
   assignment *)
type work = {
  nvars : int;
  mutable clauses : Sat.Clause.t list;
  value : Sat.Assignment.t;
  mutable forced_rev : (Sat.Lit.var * bool) list;
  mutable s_units : int;
  mutable s_pures : int;
  mutable s_tauts : int;
  mutable s_subsumed : int;
  mutable s_dups : int;
}

let assign w v b =
  match Sat.Assignment.value w.value v with
  | Sat.Assignment.Unassigned ->
    Sat.Assignment.set w.value v b;
    w.forced_rev <- (v, b) :: w.forced_rev
  | Sat.Assignment.True -> if not b then raise Empty_clause_derived
  | Sat.Assignment.False -> if b then raise Empty_clause_derived

(* apply the current assignment to every clause; detect units and
   conflicts; returns true when some new assignment was made *)
let propagate_pass w =
  let progress = ref false in
  let keep = ref [] in
  List.iter
    (fun c ->
      match Sat.Model.clause_status w.value c with
      | Sat.Model.Satisfied -> ()
      | Sat.Model.Conflicting -> raise Empty_clause_derived
      | Sat.Model.Unit l ->
        w.s_units <- w.s_units + 1;
        assign w (Sat.Lit.var l) (not (Sat.Lit.is_neg l));
        progress := true
      | Sat.Model.Unresolved -> keep := c :: !keep)
    w.clauses;
  w.clauses <- List.rev !keep;
  !progress

let pure_pass w =
  let seen_pos = Array.make (w.nvars + 1) false in
  let seen_neg = Array.make (w.nvars + 1) false in
  List.iter
    (fun c ->
      Array.iter
        (fun l ->
          match Sat.Assignment.lit_value w.value l with
          | Sat.Assignment.True | Sat.Assignment.False -> ()
          | Sat.Assignment.Unassigned ->
            if Sat.Lit.is_neg l then seen_neg.(Sat.Lit.var l) <- true
            else seen_pos.(Sat.Lit.var l) <- true)
        c)
    w.clauses;
  let progress = ref false in
  for v = 1 to w.nvars do
    if not (Sat.Assignment.is_assigned w.value v) then
      if seen_pos.(v) && not seen_neg.(v) then begin
        w.s_pures <- w.s_pures + 1;
        assign w v true;
        progress := true
      end
      else if seen_neg.(v) && not seen_pos.(v) then begin
        w.s_pures <- w.s_pures + 1;
        assign w v false;
        progress := true
      end
  done;
  !progress

(* structural cleanup under the current assignment: reduce each clause to
   its unassigned literals, drop tautologies and duplicates *)
let cleanup w =
  let seen = Hashtbl.create 256 in
  let keep = ref [] in
  List.iter
    (fun c ->
      match Sat.Model.clause_status w.value c with
      | Sat.Model.Satisfied -> ()
      | Sat.Model.Conflicting | Sat.Model.Unit _ ->
        (* propagate_pass runs first; these should not persist here, but
           be safe and keep them for the next propagation round *)
        keep := c :: !keep
      | Sat.Model.Unresolved -> (
        let remaining =
          Array.of_seq
            (Seq.filter
               (fun l ->
                 Sat.Assignment.lit_value w.value l
                 = Sat.Assignment.Unassigned)
               (Array.to_seq c))
        in
        match Sat.Clause.normalize remaining with
        | None -> w.s_tauts <- w.s_tauts + 1
        | Some d ->
          if Hashtbl.mem seen d then w.s_dups <- w.s_dups + 1
          else begin
            Hashtbl.replace seen d ();
            keep := d :: !keep
          end))
    w.clauses;
  w.clauses <- List.rev !keep

(* forward subsumption: a clause is removed when a (strictly shorter or
   equal) clause is a subset of it.  Occurrence lists on the least
   frequent literal keep it near-linear for our sizes. *)
let subsumption_pass w =
  let clauses = Array.of_list w.clauses in
  let n = Array.length clauses in
  let removed = Array.make n false in
  (* occurrence lists: literal -> clause indexes *)
  let occurs = Hashtbl.create 1024 in
  Array.iteri
    (fun i c ->
      Array.iter
        (fun l ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt occurs l) in
          Hashtbl.replace occurs l (i :: cur))
        c)
    clauses;
  let subset small big =
    Array.for_all (fun l -> Sat.Clause.mem l big) small
  in
  (* sort indexes by clause size so subsumers are processed first *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j -> Int.compare (Array.length clauses.(i)) (Array.length clauses.(j)))
    order;
  Array.iter
    (fun i ->
      if not removed.(i) then begin
        let c = clauses.(i) in
        if Array.length c > 0 then begin
          (* candidates: clauses containing c's first literal *)
          let best = ref c.(0) in
          Array.iter
            (fun l ->
              let len ll =
                List.length
                  (Option.value ~default:[] (Hashtbl.find_opt occurs ll))
              in
              if len l < len !best then best := l)
            c;
          List.iter
            (fun j ->
              if
                j <> i && not removed.(j)
                && Array.length clauses.(j) >= Array.length c
                && subset c clauses.(j)
              then begin
                removed.(j) <- true;
                w.s_subsumed <- w.s_subsumed + 1
              end)
            (Option.value ~default:[] (Hashtbl.find_opt occurs !best))
        end
      end)
    order;
  let keep = ref [] in
  for i = n - 1 downto 0 do
    if not removed.(i) then keep := clauses.(i) :: !keep
  done;
  w.clauses <- !keep

let simplify f =
  let w = {
    nvars = Sat.Cnf.nvars f;
    clauses = Array.to_list (Sat.Cnf.clauses f);
    value = Sat.Assignment.create (Sat.Cnf.nvars f);
    forced_rev = [];
    s_units = 0;
    s_pures = 0;
    s_tauts = 0;
    s_subsumed = 0;
    s_dups = 0;
  } in
  let stats () = {
    units_propagated = w.s_units;
    pure_literals = w.s_pures;
    tautologies_removed = w.s_tauts;
    subsumed_removed = w.s_subsumed;
    duplicates_removed = w.s_dups;
  } in
  try
    let continue_ = ref true in
    while !continue_ do
      let p1 = propagate_pass w in
      if not p1 then begin
        cleanup w;
        subsumption_pass w;
        let p2 = pure_pass w in
        continue_ := p2
      end
    done;
    cleanup w;
    let forced = List.rev w.forced_rev in
    if w.clauses = [] then begin
      let a = Sat.Assignment.create w.nvars in
      List.iter (fun (v, b) -> Sat.Assignment.set a v b) forced;
      for v = 1 to w.nvars do
        if not (Sat.Assignment.is_assigned a v) then
          Sat.Assignment.set a v false
      done;
      (Proved_sat a, stats ())
    end
    else begin
      let formula = Sat.Cnf.of_clauses w.nvars w.clauses in
      let reconstruct model =
        let a = Sat.Assignment.copy model in
        List.iter (fun (v, b) -> Sat.Assignment.set a v b) forced;
        for v = 1 to w.nvars do
          if not (Sat.Assignment.is_assigned a v) then
            Sat.Assignment.set a v false
        done;
        a
      in
      (Simplified { formula; forced; reconstruct }, stats ())
    end
  with Empty_clause_derived -> (Proved_unsat, stats ())
