(** The classic Davis–Putnam procedure [8]: ordered variable elimination by
    resolution.  This is the algorithm the paper's Lemma rests on — a CNF
    formula is unsatisfiable iff resolution can derive the empty clause —
    and the historical motivation for resolution-based checking.  Space
    blows up in practice (the reason DLL displaced it, §1), so a clause
    budget caps the run. *)

type outcome =
  | Sat_dp
  | Unsat_dp
  | Out_of_budget

type stats = {
  eliminations : int;      (** variables eliminated *)
  resolvents : int;        (** resolvents generated (incl. discarded) *)
  peak_clauses : int;      (** high-water clause count — the blow-up *)
}

(** [solve ?clause_budget f] runs ordered elimination, cheapest variable
    first.  [Unsat_dp] means the empty clause was derived — a resolution
    proof exists, which is exactly what the checker validates for CDCL. *)
val solve : ?clause_budget:int -> Sat.Cnf.t -> outcome * stats
