type stats = { decisions : int; propagations : int }

exception Node_limit

type state = {
  f : Sat.Cnf.t;
  a : Sat.Assignment.t;
  mutable s_decisions : int;
  mutable s_propagations : int;
  mutable budget : int;
}

(* BCP by repeated full scans; simplicity over speed, this is a baseline.
   Returns the literals assigned (for undo) and whether a conflict was
   reached. *)
let bcp st =
  let assigned = ref [] in
  let conflict = ref false in
  let progress = ref true in
  while !progress && not !conflict do
    progress := false;
    Sat.Cnf.iter_clauses
      (fun _ c ->
        if not !conflict then
          match Sat.Model.clause_status st.a c with
          | Sat.Model.Conflicting -> conflict := true
          | Sat.Model.Unit l ->
            Sat.Assignment.set st.a (Sat.Lit.var l) (not (Sat.Lit.is_neg l));
            st.s_propagations <- st.s_propagations + 1;
            assigned := Sat.Lit.var l :: !assigned;
            progress := true
          | Sat.Model.Satisfied | Sat.Model.Unresolved -> ())
      st.f
  done;
  (!assigned, !conflict)

let undo st vars = List.iter (Sat.Assignment.unset st.a) vars

let pick_var st =
  let nvars = Sat.Cnf.nvars st.f in
  let count = Array.make (nvars + 1) 0 in
  Sat.Cnf.iter_clauses
    (fun _ c ->
      if Sat.Model.clause_status st.a c <> Sat.Model.Satisfied then
        Array.iter
          (fun l ->
            let v = Sat.Lit.var l in
            if not (Sat.Assignment.is_assigned st.a v) then
              count.(v) <- count.(v) + 1)
          c)
    st.f;
  let best = ref 0 in
  for v = 1 to nvars do
    if count.(v) > 0 && (!best = 0 || count.(v) > count.(!best)) then best := v
  done;
  !best

let rec search st =
  if st.budget <= 0 then raise Node_limit;
  st.budget <- st.budget - 1;
  let assigned, conflict = bcp st in
  let result =
    if conflict then false
    else begin
      let v = pick_var st in
      if v = 0 then true  (* every clause satisfied *)
      else begin
        st.s_decisions <- st.s_decisions + 1;
        let try_phase b =
          Sat.Assignment.set st.a v b;
          let ok = search st in
          if not ok then Sat.Assignment.unset st.a v;
          ok
        in
        try_phase false || try_phase true
      end
    end
  in
  if not result then undo st assigned;
  result

let solve ?(node_limit = max_int) f =
  let st = {
    f;
    a = Sat.Assignment.create (Sat.Cnf.nvars f);
    s_decisions = 0;
    s_propagations = 0;
    budget = node_limit;
  } in
  match search st with
  | true ->
    for v = 1 to Sat.Cnf.nvars f do
      if not (Sat.Assignment.is_assigned st.a v) then
        Sat.Assignment.set st.a v false
    done;
    Some
      (Cdcl.Sat st.a,
       { decisions = st.s_decisions; propagations = st.s_propagations })
  | false ->
    Some (Cdcl.Unsat, { decisions = st.s_decisions; propagations = st.s_propagations })
  | exception Node_limit -> None
