let occurring_vars f =
  let seen = Array.make (Sat.Cnf.nvars f + 1) false in
  Sat.Cnf.iter_clauses
    (fun _ c -> Array.iter (fun l -> seen.(Sat.Lit.var l) <- true) c)
    f;
  let out = ref [] in
  for v = Sat.Cnf.nvars f downto 1 do
    if seen.(v) then out := v :: !out
  done;
  !out

let fold_assignments f g init =
  let vars = Array.of_list (occurring_vars f) in
  let n = Array.length vars in
  if n > 24 then invalid_arg "Enumerate: too many variables for the oracle";
  let a = Sat.Assignment.create (Sat.Cnf.nvars f) in
  let acc = ref init in
  for mask = 0 to (1 lsl n) - 1 do
    for i = 0 to n - 1 do
      Sat.Assignment.set a vars.(i) ((mask lsr i) land 1 = 1)
    done;
    acc := g !acc a
  done;
  !acc

let solve f =
  let found =
    try
      fold_assignments f
        (fun acc a ->
          match acc with
          | Some _ -> acc
          | None -> if Sat.Model.satisfies a f then Some (Sat.Assignment.copy a) else None)
        None
    with Invalid_argument _ as e -> raise e
  in
  match found with
  | Some a ->
    (* complete the model over unused variables *)
    for v = 1 to Sat.Cnf.nvars f do
      if not (Sat.Assignment.is_assigned a v) then Sat.Assignment.set a v false
    done;
    Cdcl.Sat a
  | None -> Cdcl.Unsat

let count_models f =
  fold_assignments f
    (fun acc a -> if Sat.Model.satisfies a f then acc + 1 else acc)
    0
