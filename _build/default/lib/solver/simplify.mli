(** CNF preprocessing: satisfiability-preserving simplification applied
    before search, in the spirit of the preprocess() step of the paper's
    Figure 1 but as a standalone formula-to-formula pass.

    Techniques (iterated to a fixed point):
    - unit propagation — forced assignments are applied, satisfied
      clauses removed, falsified literals deleted;
    - pure-literal elimination — a variable occurring in one phase only
      is assigned that phase;
    - tautology and duplicate-literal removal;
    - subsumption — a clause that contains another as a subset is
      removed.

    The simplified formula lives in the same variable space (no
    renumbering), so clause provenance stays obvious; [reconstruct] lifts
    a model of the simplified formula to a model of the original by
    replaying the forced and pure assignments.

    Note: the solver's UNSAT traces refer to the formula actually given
    to it — validate a preprocessed run against the simplified formula. *)

type outcome =
  | Simplified of {
      formula : Sat.Cnf.t;
      forced : (Sat.Lit.var * bool) list;
          (** assignments applied by propagation / purity, in order *)
      reconstruct : Sat.Assignment.t -> Sat.Assignment.t;
          (** lift a model of [formula] to a model of the input *)
    }
  | Proved_unsat  (** propagation alone derived the empty clause *)
  | Proved_sat of Sat.Assignment.t
      (** everything simplified away; a model of the input *)

type stats = {
  units_propagated : int;
  pure_literals : int;
  tautologies_removed : int;
  subsumed_removed : int;
  duplicates_removed : int;
}

val simplify : Sat.Cnf.t -> outcome * stats
