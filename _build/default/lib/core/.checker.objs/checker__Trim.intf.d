lib/core/trim.mli: Diagnostics Sat Stdlib Trace
