lib/core/level0.mli: Sat
