lib/core/resolution.ml: Array Diagnostics Int List Sat
