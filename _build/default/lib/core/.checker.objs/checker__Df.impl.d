lib/core/df.ml: Array Diagnostics Final_chain Harness Hashtbl Int Level0 List Report Resolution Sat Trace
