lib/core/df.mli: Diagnostics Harness Report Sat Trace
