lib/core/rup.ml: Array Format Sat
