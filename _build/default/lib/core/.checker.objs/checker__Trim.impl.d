lib/core/trim.ml: Df Hashtbl List Report Trace
