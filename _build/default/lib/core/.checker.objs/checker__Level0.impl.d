lib/core/level0.ml: Array Diagnostics Hashtbl Printf Sat
