lib/core/final_chain.ml: Array Diagnostics Level0 Resolution Sat
