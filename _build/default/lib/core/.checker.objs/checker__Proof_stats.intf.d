lib/core/proof_stats.mli: Diagnostics Format Sat Trace
