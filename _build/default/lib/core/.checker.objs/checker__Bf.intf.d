lib/core/bf.mli: Diagnostics Harness Report Sat Trace
