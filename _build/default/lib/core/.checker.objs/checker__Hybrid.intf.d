lib/core/hybrid.mli: Diagnostics Harness Report Sat Trace
