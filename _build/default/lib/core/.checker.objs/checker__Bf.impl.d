lib/core/bf.ml: Array Diagnostics Filename Final_chain Harness Hashtbl Int Level0 List Option Report Resolution Sat Sys Trace
