lib/core/hybrid.ml: Array Diagnostics Final_chain Harness Hashtbl Int Level0 List Option Report Resolution Sat Trace
