lib/core/proof_stats.ml: Array Diagnostics Final_chain Format Hashtbl Level0 List Option Resolution Sat Trace
