lib/core/diagnostics.ml: Format List Sat String
