lib/core/final_chain.mli: Level0 Resolution Sat
