lib/core/diagnostics.mli: Format Sat
