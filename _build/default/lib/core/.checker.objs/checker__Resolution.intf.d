lib/core/resolution.mli: Sat
