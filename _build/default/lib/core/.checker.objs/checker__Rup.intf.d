lib/core/rup.mli: Format Sat
