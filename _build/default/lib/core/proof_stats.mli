(** Structural statistics of a resolution proof — the shape information
    behind Table 2's Built% column: how much of the trace the proof
    really uses, how deep the resolve-source DAG is, and how wide the
    rebuilt clauses get (the XOR-rich instances of the paper show up here
    as deep/wide proofs). *)

type t = {
  learned_total : int;       (** learned clauses recorded in the trace *)
  learned_needed : int;      (** reachable from the final conflict (incl.
                                 level-0 antecedents) *)
  resolution_steps : int;    (** resolutions to rebuild every learned
                                 clause, plus the final chain *)
  dag_depth : int;           (** longest source path from an original
                                 clause to the final conflict *)
  max_clause_width : int;    (** widest rebuilt learned clause *)
  mean_clause_width : float; (** mean width over rebuilt learned clauses *)
  final_chain_length : int;  (** resolutions in the empty-clause
                                 construction *)
}

(** [analyze f source] validates the trace breadth-first while measuring
    it. *)
val analyze :
  Sat.Cnf.t -> Trace.Reader.source -> (t, Diagnostics.failure) result

val pp : Format.formatter -> t -> unit
