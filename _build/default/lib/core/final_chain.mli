(** The empty-clause construction of Proposition 3, shared by both
    checkers: starting from the final conflicting clause, repeatedly
    resolve away the most recently assigned level-0 variable against its
    recorded antecedent until the clause is empty.

    Every step is checked: the start clause must be fully falsified by the
    level-0 assignment, each antecedent must pass
    {!Level0.check_antecedent}, and the resolution pivot must be the
    chosen variable. *)

(** [run engine l0 ~start ~start_id ~fetch] returns the number of
    resolution steps performed.  [fetch id] must yield the (built)
    literals of clause [id] and may itself raise
    {!Diagnostics.Check_failed}.
    @raise Diagnostics.Check_failed when the proof is invalid. *)
val run :
  Resolution.engine ->
  Level0.t ->
  start:Sat.Clause.t ->
  start_id:int ->
  fetch:(int -> Sat.Clause.t) ->
  int
